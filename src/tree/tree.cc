#include "src/tree/tree.h"

#include <algorithm>

#include "src/base/logging.h"

namespace xtc {

Node* TreeBuilder::Make(int label, std::span<Node* const> children) {
  Node* n = arena_->New<Node>();
  n->label = label;
  n->child_count = static_cast<uint32_t>(children.size());
  if (children.empty()) {
    n->children = nullptr;
  } else {
    n->children = arena_->NewArray<Node*>(children.size());
    std::copy(children.begin(), children.end(), n->children);
  }
  return n;
}

Node* TreeBuilder::Clone(const Node* node) {
  XTC_CHECK(node != nullptr);
  std::vector<Node*> kids;
  kids.reserve(node->child_count);
  for (Node* c : node->Children()) kids.push_back(Clone(c));
  return Make(node->label, kids);
}

int Depth(const Node* tree) {
  if (tree == nullptr) return 0;
  int best = 0;
  for (Node* c : tree->Children()) best = std::max(best, Depth(c));
  return best + 1;
}

int HedgeDepth(const Hedge& hedge) {
  int best = 0;
  for (const Node* t : hedge) best = std::max(best, Depth(t));
  return best;
}

std::size_t NodeCount(const Node* tree) {
  if (tree == nullptr) return 0;
  std::size_t n = 1;
  for (Node* c : tree->Children()) n += NodeCount(c);
  return n;
}

std::size_t HedgeNodeCount(const Hedge& hedge) {
  std::size_t n = 0;
  for (const Node* t : hedge) n += NodeCount(t);
  return n;
}

std::vector<int> TopString(const Hedge& hedge) {
  std::vector<int> out;
  out.reserve(hedge.size());
  for (const Node* t : hedge) out.push_back(t->label);
  return out;
}

bool TreeEqual(const Node* a, const Node* b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->label != b->label || a->child_count != b->child_count) return false;
  for (uint32_t i = 0; i < a->child_count; ++i) {
    if (!TreeEqual(a->children[i], b->children[i])) return false;
  }
  return true;
}

bool HedgeEqual(const Hedge& a, const Hedge& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!TreeEqual(a[i], b[i])) return false;
  }
  return true;
}

}  // namespace xtc
