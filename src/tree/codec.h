#ifndef XTC_TREE_CODEC_H_
#define XTC_TREE_CODEC_H_

#include <string>
#include <string_view>

#include "src/base/status.h"
#include "src/fa/alphabet.h"
#include "src/tree/tree.h"

namespace xtc {

/// Serializes a tree in the paper's term syntax, e.g. "book(title chapter(
/// title intro section(title paragraph)))". A leaf `a()` is printed as `a`.
std::string ToTermString(const Node* tree, const Alphabet& alphabet);

/// Parses the term syntax; symbol names are interned into `alphabet` and
/// nodes allocated via `builder`.
StatusOr<Node*> ParseTerm(std::string_view text, Alphabet* alphabet,
                          TreeBuilder* builder);

/// Serializes a tree as structure-only XML: `<a><b/><c/></a>`. If `indent`
/// is true, pretty-prints with two-space indentation.
std::string ToXml(const Node* tree, const Alphabet& alphabet,
                  bool indent = false);

/// Parses structure-only XML (elements only; attributes, text content,
/// comments, processing instructions and doctypes are rejected — the paper's
/// abstraction, like Milo–Suciu–Vianu's, focuses on structure, not content).
StatusOr<Node*> ParseXml(std::string_view text, Alphabet* alphabet,
                         TreeBuilder* builder);

}  // namespace xtc

#endif  // XTC_TREE_CODEC_H_
