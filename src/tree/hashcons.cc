#include "src/tree/hashcons.h"

#include <algorithm>

#include "src/base/logging.h"

namespace xtc {

int SharedForest::Make(int label, std::span<const int> children) {
  std::pair<int, std::vector<int>> key(
      label, std::vector<int>(children.begin(), children.end()));
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  int id = static_cast<int>(nodes_.size());
  nodes_.push_back(Entry{label, key.second});
  index_.emplace(std::move(key), id);
  return id;
}

uint64_t SharedForest::UnfoldedSize(int id) const {
  if (size_memo_.size() < nodes_.size()) size_memo_.resize(nodes_.size(), 0);
  if (size_memo_[id] != 0) return size_memo_[id];
  // Children have smaller ids than their parents (interning is bottom-up),
  // so a simple recursion terminates.
  uint64_t total = 1;
  for (int c : nodes_[id].children) {
    uint64_t cs = UnfoldedSize(c);
    if (cs == kSaturated || total + cs < total) {
      total = kSaturated;
      break;
    }
    total += cs;
  }
  size_memo_[id] = total;
  return total;
}

int SharedForest::UnfoldedDepth(int id) const {
  if (depth_memo_.size() < nodes_.size()) depth_memo_.resize(nodes_.size(), 0);
  if (depth_memo_[id] != 0) return depth_memo_[id];
  int best = 0;
  for (int c : nodes_[id].children) best = std::max(best, UnfoldedDepth(c));
  depth_memo_[id] = best + 1;
  return best + 1;
}

StatusOr<Node*> SharedForest::Materialize(int id, TreeBuilder* builder,
                                          uint64_t max_nodes) const {
  if (UnfoldedSize(id) > max_nodes) {
    return ResourceExhaustedError(
        "unfolded tree exceeds the materialization budget");
  }
  std::vector<Node*> kids;
  kids.reserve(nodes_[id].children.size());
  for (int c : nodes_[id].children) {
    StatusOr<Node*> k = Materialize(c, builder, max_nodes);
    if (!k.ok()) return k;
    kids.push_back(*k);
  }
  return builder->Make(nodes_[id].label, kids);
}

int SharedForest::Intern(const Node* tree) {
  XTC_CHECK(tree != nullptr);
  std::vector<int> kids;
  kids.reserve(tree->child_count);
  for (const Node* c : tree->Children()) kids.push_back(Intern(c));
  return Make(tree->label, kids);
}

}  // namespace xtc
