#ifndef XTC_TREE_TREE_H_
#define XTC_TREE_TREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/base/arena.h"

namespace xtc {

/// A node of an unranked Sigma-tree (Section 2.1). Nodes are plain data
/// owned by an Arena; child arrays live in the same arena. There is no
/// a-priori bound on the number of children.
struct Node {
  int32_t label;
  uint32_t child_count;
  Node** children;

  std::span<Node* const> Children() const { return {children, child_count}; }
};

/// A hedge is a finite sequence of trees (Section 2.1).
using Hedge = std::vector<Node*>;

/// Allocates nodes in an arena. The builder does not own the arena.
class TreeBuilder {
 public:
  explicit TreeBuilder(Arena* arena) : arena_(arena) {}

  /// A leaf node labelled `label`.
  Node* Leaf(int label) { return Make(label, {}); }

  /// A node labelled `label` with the given children (copied into the
  /// arena's child array).
  Node* Make(int label, std::span<Node* const> children);

  /// Deep-copies `node` (which may live in another arena).
  Node* Clone(const Node* node);

  Arena* arena() const { return arena_; }

 private:
  Arena* arena_;
};

/// depth(t): a single root has depth 1; depth(ε)=0 is represented by the
/// null tree.
int Depth(const Node* tree);

/// Max depth over the trees of a hedge.
int HedgeDepth(const Hedge& hedge);

/// Number of nodes in the tree.
std::size_t NodeCount(const Node* tree);
std::size_t HedgeNodeCount(const Hedge& hedge);

/// top(h): the string of root labels of the hedge (Section 2.1).
std::vector<int> TopString(const Hedge& hedge);

/// Structural equality.
bool TreeEqual(const Node* a, const Node* b);
bool HedgeEqual(const Hedge& a, const Hedge& b);

}  // namespace xtc

#endif  // XTC_TREE_TREE_H_
