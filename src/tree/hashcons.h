#ifndef XTC_TREE_HASHCONS_H_
#define XTC_TREE_HASHCONS_H_

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "src/base/status.h"
#include "src/tree/tree.h"

namespace xtc {

/// A hash-consed forest: structurally equal subtrees are interned once, so a
/// tree whose unfolding is exponential (like the paper's `t_vast` witness in
/// Section 5, which doubles children under every `+`) is stored as a DAG of
/// polynomially many distinct nodes. Algorithms over shared trees memoize
/// per node id. This also serves as the "description of a tree" that
/// Proposition 4(3) and Corollary 38 output.
class SharedForest {
 public:
  /// Interns a node; returns its id. Equal (label, children) pairs share one
  /// id.
  int Make(int label, std::span<const int> children);

  int Leaf(int label) { return Make(label, {}); }

  int label(int id) const { return nodes_[id].label; }
  const std::vector<int>& children(int id) const { return nodes_[id].children; }

  /// Number of distinct (shared) nodes.
  int size() const { return static_cast<int>(nodes_.size()); }

  /// Node count of the full unfolding, saturating at kSaturated.
  static constexpr uint64_t kSaturated = ~uint64_t{0};
  uint64_t UnfoldedSize(int id) const;

  /// Depth of the unfolding.
  int UnfoldedDepth(int id) const;

  /// Expands to a real tree. Fails with kResourceExhausted if the unfolding
  /// exceeds `max_nodes`.
  StatusOr<Node*> Materialize(int id, TreeBuilder* builder,
                              uint64_t max_nodes) const;

  /// Interns an existing tree.
  int Intern(const Node* tree);

 private:
  struct Entry {
    int label;
    std::vector<int> children;
  };

  std::vector<Entry> nodes_;
  std::map<std::pair<int, std::vector<int>>, int> index_;
  mutable std::vector<uint64_t> size_memo_;
  mutable std::vector<int> depth_memo_;
};

}  // namespace xtc

#endif  // XTC_TREE_HASHCONS_H_
