#ifndef XTC_TREE_XML_GRAMMAR_H_
#define XTC_TREE_XML_GRAMMAR_H_

#include <cctype>

namespace xtc {

/// The shared tokenizer contract between the DOM codec (src/tree/codec.cc)
/// and the streaming event reader (src/stream/event_reader.h). Both accept
/// exactly the same structure-only XML subset; a document accepted by one
/// parser is accepted by the other, and a document rejected by one is
/// rejected by the other (the regression suite in malformed_input_test and
/// the differential sweep in stream_test pin this down). The grammar:
///
///   document  ::= ws element ws                 (exactly one root; anything
///                                                but whitespace after the
///                                                root is "trailing
///                                                characters")
///   element   ::= '<' name ws '/>'              (leaf)
///               | '<' name ws '>' content '</' name ws '>'
///   content   ::= (ws element)* ws              (elements only: attributes,
///                                                text, comments, PIs and
///                                                doctypes are rejected)
///   name      ::= namechar+                     (IsXmlNameChar below)
///   ws        ::= isspace*
///
/// Closing-tag names must match their opening tag. Nesting beyond
/// kMaxXmlDepth is rejected with InvalidArgument ("depth limit") instead of
/// risking unbounded recursion (DOM) or an unbounded element stack
/// (streaming): both parsers hold O(depth) state, and the fuel makes that a
/// hard bound an adversarial document cannot grow.
inline constexpr int kMaxXmlDepth = 256;

/// Characters allowed in element names and term-syntax labels. This is
/// deliberately the same set for the term codec, the XML codec and the
/// streaming reader, so a label round-trips between all three syntaxes.
inline bool IsXmlNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '#' ||
         c == '$' || c == '.' || c == ':' || c == '-';
}

}  // namespace xtc

#endif  // XTC_TREE_XML_GRAMMAR_H_
