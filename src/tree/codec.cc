#include "src/tree/codec.h"

#include <cctype>
#include <vector>

#include "src/tree/xml_grammar.h"

namespace xtc {
namespace {

// Maximum nesting depth accepted by the recursive-descent parsers; beyond
// this the input is rejected with InvalidArgument rather than risking a
// native stack overflow. The XML side of the contract (grammar, name
// charset, depth fuel, trailing-garbage rejection) is shared with the
// streaming XmlEventReader — see src/tree/xml_grammar.h.
constexpr int kMaxParseDepth = kMaxXmlDepth;

bool IsNameChar(char c) { return IsXmlNameChar(c); }

void TermRec(const Node* tree, const Alphabet& alphabet, std::string* out) {
  out->append(alphabet.Name(tree->label));
  if (tree->child_count == 0) return;
  out->push_back('(');
  for (uint32_t i = 0; i < tree->child_count; ++i) {
    if (i > 0) out->push_back(' ');
    TermRec(tree->children[i], alphabet, out);
  }
  out->push_back(')');
}

class TermParser {
 public:
  TermParser(std::string_view text, Alphabet* alphabet, TreeBuilder* builder)
      : text_(text), alphabet_(alphabet), builder_(builder) {}

  StatusOr<Node*> Parse() {
    StatusOr<Node*> t = ParseTree();
    if (!t.ok()) return t;
    SkipSpace();
    if (pos_ != text_.size()) {
      return InvalidArgumentError("trailing characters in term at position " +
                                  std::to_string(pos_));
    }
    return t;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  StatusOr<Node*> ParseTree() {
    // Depth fuel: adversarially nested "a(a(a(..." must fail cleanly with a
    // Status instead of overflowing the C++ stack.
    if (depth_ >= kMaxParseDepth) {
      return InvalidArgumentError("term nesting exceeds depth limit " +
                                  std::to_string(kMaxParseDepth));
    }
    ++depth_;
    StatusOr<Node*> t = ParseTreeInner();
    --depth_;
    return t;
  }

  StatusOr<Node*> ParseTreeInner() {
    SkipSpace();
    std::size_t start = pos_;
    while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
    if (pos_ == start) {
      return InvalidArgumentError("expected a label at position " +
                                  std::to_string(pos_));
    }
    int label = alphabet_->Intern(text_.substr(start, pos_ - start));
    std::vector<Node*> children;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '(') {
      ++pos_;
      SkipSpace();
      while (pos_ < text_.size() && text_[pos_] != ')') {
        StatusOr<Node*> child = ParseTree();
        if (!child.ok()) return child;
        children.push_back(*child);
        SkipSpace();
      }
      if (pos_ >= text_.size()) return InvalidArgumentError("missing ')'");
      ++pos_;  // consume ')'
    }
    return builder_->Make(label, children);
  }

  std::string_view text_;
  Alphabet* alphabet_;
  TreeBuilder* builder_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void XmlRec(const Node* tree, const Alphabet& alphabet, bool indent, int depth,
            std::string* out) {
  if (indent) out->append(static_cast<std::size_t>(depth) * 2, ' ');
  out->push_back('<');
  out->append(alphabet.Name(tree->label));
  if (tree->child_count == 0) {
    out->append("/>");
    if (indent) out->push_back('\n');
    return;
  }
  out->push_back('>');
  if (indent) out->push_back('\n');
  for (Node* c : tree->Children()) XmlRec(c, alphabet, indent, depth + 1, out);
  if (indent) out->append(static_cast<std::size_t>(depth) * 2, ' ');
  out->append("</");
  out->append(alphabet.Name(tree->label));
  out->push_back('>');
  if (indent) out->push_back('\n');
}

class XmlParser {
 public:
  XmlParser(std::string_view text, Alphabet* alphabet, TreeBuilder* builder)
      : text_(text), alphabet_(alphabet), builder_(builder) {}

  StatusOr<Node*> Parse() {
    StatusOr<Node*> t = ParseElement();
    if (!t.ok()) return t;
    SkipSpace();
    if (pos_ != text_.size()) {
      return InvalidArgumentError(
          "trailing characters after root element at position " +
          std::to_string(pos_));
    }
    return t;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  StatusOr<Node*> ParseElement() {
    // Same depth fuel as TermParser: "<a><a><a>..." is attacker-controlled
    // recursion.
    if (depth_ >= kMaxParseDepth) {
      return InvalidArgumentError("element nesting exceeds depth limit " +
                                  std::to_string(kMaxParseDepth));
    }
    ++depth_;
    StatusOr<Node*> t = ParseElementInner();
    --depth_;
    return t;
  }

  StatusOr<Node*> ParseElementInner() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '<') {
      return InvalidArgumentError("expected '<' at position " +
                                  std::to_string(pos_));
    }
    ++pos_;
    std::size_t start = pos_;
    while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
    if (pos_ == start) return InvalidArgumentError("expected element name");
    std::string name(text_.substr(start, pos_ - start));
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '/') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] != '>') {
        return InvalidArgumentError("expected '>' after '/'");
      }
      ++pos_;
      return builder_->Leaf(alphabet_->Intern(name));
    }
    if (pos_ >= text_.size() || text_[pos_] != '>') {
      return InvalidArgumentError(
          "expected '>' (attributes and text content are not supported)");
    }
    ++pos_;
    std::vector<Node*> children;
    while (true) {
      SkipSpace();
      if (pos_ + 1 < text_.size() && text_[pos_] == '<' &&
          text_[pos_ + 1] == '/') {
        break;
      }
      StatusOr<Node*> child = ParseElement();
      if (!child.ok()) return child;
      children.push_back(*child);
    }
    pos_ += 2;  // consume "</"
    std::size_t cstart = pos_;
    while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
    if (text_.substr(cstart, pos_ - cstart) != name) {
      return InvalidArgumentError("mismatched closing tag for <" + name + ">");
    }
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '>') {
      return InvalidArgumentError("expected '>' in closing tag");
    }
    ++pos_;
    return builder_->Make(alphabet_->Intern(name), children);
  }

  std::string_view text_;
  Alphabet* alphabet_;
  TreeBuilder* builder_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::string ToTermString(const Node* tree, const Alphabet& alphabet) {
  if (tree == nullptr) return "";
  std::string out;
  TermRec(tree, alphabet, &out);
  return out;
}

StatusOr<Node*> ParseTerm(std::string_view text, Alphabet* alphabet,
                          TreeBuilder* builder) {
  return TermParser(text, alphabet, builder).Parse();
}

std::string ToXml(const Node* tree, const Alphabet& alphabet, bool indent) {
  if (tree == nullptr) return "";
  std::string out;
  XmlRec(tree, alphabet, indent, 0, &out);
  return out;
}

StatusOr<Node*> ParseXml(std::string_view text, Alphabet* alphabet,
                         TreeBuilder* builder) {
  return XmlParser(text, alphabet, builder).Parse();
}

}  // namespace xtc
