#include "src/xpath/to_dfa.h"

#include <vector>

#include "src/fa/regex.h"

namespace xtc {
namespace {

RegexPtr AnySymbol(int num_symbols) {
  std::vector<RegexPtr> alts;
  alts.reserve(static_cast<std::size_t>(num_symbols));
  for (int s = 0; s < num_symbols; ++s) alts.push_back(Regex::Sym(s));
  return Regex::Alt(std::move(alts));
}

/// Path-language regex of φ: the label strings read from the node where φ
/// is evaluated down to a selected node (both inclusive).
StatusOr<RegexPtr> ExprPathRegex(const XPathExpr& e, int num_symbols) {
  switch (e.kind) {
    case XPathExpr::Kind::kTest:
      return Regex::Sym(e.symbol);
    case XPathExpr::Kind::kWildcard:
      return AnySymbol(num_symbols);
    case XPathExpr::Kind::kDisj: {
      StatusOr<RegexPtr> l = ExprPathRegex(*e.left, num_symbols);
      if (!l.ok()) return l;
      StatusOr<RegexPtr> r = ExprPathRegex(*e.right, num_symbols);
      if (!r.ok()) return r;
      return Regex::Alt({*l, *r});
    }
    case XPathExpr::Kind::kChild: {
      StatusOr<RegexPtr> l = ExprPathRegex(*e.left, num_symbols);
      if (!l.ok()) return l;
      StatusOr<RegexPtr> r = ExprPathRegex(*e.right, num_symbols);
      if (!r.ok()) return r;
      return Regex::Concat({*l, *r});
    }
    case XPathExpr::Kind::kDescendant: {
      StatusOr<RegexPtr> l = ExprPathRegex(*e.left, num_symbols);
      if (!l.ok()) return l;
      StatusOr<RegexPtr> r = ExprPathRegex(*e.right, num_symbols);
      if (!r.ok()) return r;
      return Regex::Concat({*l, Regex::Star(AnySymbol(num_symbols)), *r});
    }
    case XPathExpr::Kind::kFilter:
      return UnimplementedError(
          "filters have no path-language translation; only vertical "
          "XPath{/, //, |, *} patterns compile to selector automata");
  }
  return InvalidArgumentError("unknown XPath node");
}

}  // namespace

StatusOr<Nfa> XPathToPathNfa(const XPathPattern& pattern, int num_symbols) {
  StatusOr<RegexPtr> body = ExprPathRegex(*pattern.body, num_symbols);
  if (!body.ok()) return body.status();
  RegexPtr full =
      pattern.descendant
          ? Regex::Concat({Regex::Star(AnySymbol(num_symbols)), *body})
          : *body;
  return RegexToNfa(*full, num_symbols);
}

StatusOr<Dfa> XPathToDfa(const XPathPattern& pattern, int num_symbols) {
  StatusOr<Nfa> nfa = XPathToPathNfa(pattern, num_symbols);
  if (!nfa.ok()) return nfa.status();
  return Dfa::FromNfa(*nfa);
}

}  // namespace xtc
