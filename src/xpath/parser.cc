#include "src/xpath/parser.h"

#include <cctype>

namespace xtc {
namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '#' ||
         c == '$' || c == ':' || c == '-';
}

class Parser {
 public:
  Parser(std::string_view text, Alphabet* alphabet)
      : text_(text), alphabet_(alphabet) {}

  StatusOr<XPathPatternPtr> Parse() {
    StatusOr<XPathPatternPtr> p = ParsePattern();
    if (!p.ok()) return p;
    SkipSpace();
    if (pos_ != text_.size()) {
      return InvalidArgumentError("trailing characters in XPath pattern");
    }
    return p;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool Eat(char c) {
    if (Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<XPathPatternPtr> ParsePattern() {
    if (!Eat('.')) {
      return InvalidArgumentError("pattern must start with '.'");
    }
    if (!Eat('/')) {
      return InvalidArgumentError("pattern must start with './' or './/'");
    }
    bool descendant = Eat('/');
    StatusOr<XPathExprPtr> body = ParseDisj();
    if (!body.ok()) return body.status();
    return XPathPattern::Make(descendant, *body);
  }

  StatusOr<XPathExprPtr> ParseDisj() {
    StatusOr<XPathExprPtr> left = ParsePath();
    if (!left.ok()) return left;
    XPathExprPtr e = *left;
    while (Eat('|')) {
      StatusOr<XPathExprPtr> right = ParsePath();
      if (!right.ok()) return right;
      e = XPathExpr::Disj(e, *right);
    }
    return e;
  }

  StatusOr<XPathExprPtr> ParsePath() {
    StatusOr<XPathExprPtr> left = ParseAtom();
    if (!left.ok()) return left;
    XPathExprPtr e = *left;
    while (Peek() == '/') {
      ++pos_;
      bool descendant = Eat('/');
      StatusOr<XPathExprPtr> right = ParseAtom();
      if (!right.ok()) return right;
      e = descendant ? XPathExpr::Descendant(e, *right)
                     : XPathExpr::Child(e, *right);
    }
    return e;
  }

  StatusOr<XPathExprPtr> ParseAtom() {
    StatusOr<XPathExprPtr> prim = ParsePrimary();
    if (!prim.ok()) return prim;
    XPathExprPtr e = *prim;
    while (Peek() == '[') {
      ++pos_;
      StatusOr<XPathPatternPtr> filter = ParsePattern();
      if (!filter.ok()) return filter.status();
      if (!Eat(']')) return InvalidArgumentError("expected ']'");
      e = XPathExpr::Filter(e, *filter);
    }
    return e;
  }

  StatusOr<XPathExprPtr> ParsePrimary() {
    char c = Peek();
    if (c == '*') {
      ++pos_;
      return XPathExpr::Wildcard();
    }
    if (c == '(') {
      ++pos_;
      StatusOr<XPathExprPtr> inner = ParseDisj();
      if (!inner.ok()) return inner;
      if (!Eat(')')) return InvalidArgumentError("expected ')'");
      return inner;
    }
    if (IsNameChar(c) && c != '\0') {
      std::size_t start = pos_;
      while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
      return XPathExpr::Test(
          alphabet_->Intern(text_.substr(start, pos_ - start)));
    }
    return InvalidArgumentError("unexpected character in XPath pattern");
  }

  std::string_view text_;
  Alphabet* alphabet_;
  std::size_t pos_ = 0;
};

}  // namespace

StatusOr<XPathPatternPtr> ParseXPath(std::string_view text,
                                     Alphabet* alphabet) {
  return Parser(text, alphabet).Parse();
}

}  // namespace xtc
