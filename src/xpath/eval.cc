#include "src/xpath/eval.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "src/base/logging.h"
#include "src/fa/dfa.h"

namespace xtc {
namespace {

using NodeSet = std::set<const Node*>;

void EvalExprAt(const XPathExpr& e, const Node* v, NodeSet* out);

// Union of EvalExprAt over all children of w.
void EvalAtChildren(const XPathExpr& e, const Node* w, NodeSet* out) {
  for (const Node* z : w->Children()) EvalExprAt(e, z, out);
}

// Union of EvalExprAt over all proper descendants of w.
void EvalAtDescendants(const XPathExpr& e, const Node* w, NodeSet* out) {
  for (const Node* z : w->Children()) {
    EvalExprAt(e, z, out);
    EvalAtDescendants(e, z, out);
  }
}

bool PatternNonEmptyAt(const XPathPattern& p, const Node* v) {
  NodeSet out;
  if (p.descendant) {
    EvalAtDescendants(*p.body, v, &out);
  } else {
    EvalAtChildren(*p.body, v, &out);
  }
  return !out.empty();
}

void EvalExprAt(const XPathExpr& e, const Node* v, NodeSet* out) {
  switch (e.kind) {
    case XPathExpr::Kind::kTest:
      if (v->label == e.symbol) out->insert(v);
      break;
    case XPathExpr::Kind::kWildcard:
      out->insert(v);
      break;
    case XPathExpr::Kind::kDisj:
      EvalExprAt(*e.left, v, out);
      EvalExprAt(*e.right, v, out);
      break;
    case XPathExpr::Kind::kChild: {
      NodeSet mid;
      EvalExprAt(*e.left, v, &mid);
      for (const Node* w : mid) EvalAtChildren(*e.right, w, out);
      break;
    }
    case XPathExpr::Kind::kDescendant: {
      NodeSet mid;
      EvalExprAt(*e.left, v, &mid);
      for (const Node* w : mid) EvalAtDescendants(*e.right, w, out);
      break;
    }
    case XPathExpr::Kind::kFilter: {
      NodeSet mid;
      EvalExprAt(*e.left, v, &mid);
      for (const Node* w : mid) {
        if (PatternNonEmptyAt(*e.filter, w)) out->insert(w);
      }
      break;
    }
  }
}

void AssignPreorder(const Node* n, int* counter,
                    std::unordered_map<const Node*, int>* index) {
  (*index)[n] = (*counter)++;
  for (const Node* c : n->Children()) AssignPreorder(c, counter, index);
}

std::vector<const Node*> InDocumentOrder(const NodeSet& set,
                                         const Node* context) {
  std::unordered_map<const Node*, int> index;
  int counter = 0;
  AssignPreorder(context, &counter, &index);
  std::vector<const Node*> out(set.begin(), set.end());
  std::sort(out.begin(), out.end(), [&](const Node* a, const Node* b) {
    return index.at(a) < index.at(b);
  });
  return out;
}

}  // namespace

std::vector<const Node*> EvalXPath(const XPathPattern& pattern,
                                   const Node* context) {
  XTC_CHECK(context != nullptr);
  NodeSet set;
  if (pattern.descendant) {
    EvalAtDescendants(*pattern.body, context, &set);
  } else {
    EvalAtChildren(*pattern.body, context, &set);
  }
  return InDocumentOrder(set, context);
}

namespace {

void DfaSelectRec(const Dfa& dfa, int state, const Node* n,
                  std::vector<const Node*>* out) {
  for (const Node* c : n->Children()) {
    if (c->label < 0 || c->label >= dfa.num_symbols()) continue;
    int next = dfa.Step(state, c->label);
    if (next == Dfa::kDead) continue;
    if (dfa.final(next)) out->push_back(c);
    DfaSelectRec(dfa, next, c, out);
  }
}

}  // namespace

std::vector<const Node*> EvalDfaSelector(const Dfa& dfa, const Node* context) {
  XTC_CHECK(context != nullptr);
  std::vector<const Node*> out;
  if (dfa.initial() == Dfa::kDead) return out;
  DfaSelectRec(dfa, dfa.initial(), context, &out);
  return out;
}

}  // namespace xtc
