#include "src/xpath/ast.h"

#include "src/base/logging.h"

namespace xtc {

namespace {

XPathExpr MakeExpr(XPathExpr::Kind kind) {
  XPathExpr e;
  e.kind = kind;
  return e;
}

}  // namespace

XPathExprPtr XPathExpr::Disj(XPathExprPtr l, XPathExprPtr r) {
  XPathExpr e = MakeExpr(Kind::kDisj);
  e.left = std::move(l);
  e.right = std::move(r);
  return std::make_shared<XPathExpr>(std::move(e));
}
XPathExprPtr XPathExpr::Child(XPathExprPtr l, XPathExprPtr r) {
  XPathExpr e = MakeExpr(Kind::kChild);
  e.left = std::move(l);
  e.right = std::move(r);
  return std::make_shared<XPathExpr>(std::move(e));
}
XPathExprPtr XPathExpr::Descendant(XPathExprPtr l, XPathExprPtr r) {
  XPathExpr e = MakeExpr(Kind::kDescendant);
  e.left = std::move(l);
  e.right = std::move(r);
  return std::make_shared<XPathExpr>(std::move(e));
}
XPathExprPtr XPathExpr::Filter(XPathExprPtr l, XPathPatternPtr p) {
  XPathExpr e = MakeExpr(Kind::kFilter);
  e.left = std::move(l);
  e.filter = std::move(p);
  return std::make_shared<XPathExpr>(std::move(e));
}
XPathExprPtr XPathExpr::Test(int symbol) {
  XPathExpr e = MakeExpr(Kind::kTest);
  e.symbol = symbol;
  return std::make_shared<XPathExpr>(std::move(e));
}
XPathExprPtr XPathExpr::Wildcard() {
  return std::make_shared<XPathExpr>(MakeExpr(Kind::kWildcard));
}

XPathPatternPtr XPathPattern::Make(bool descendant, XPathExprPtr body) {
  XPathPattern p;
  p.descendant = descendant;
  p.body = std::move(body);
  return std::make_shared<XPathPattern>(std::move(p));
}

namespace {

void CollectFeatures(const XPathExpr& e, XPathFeatures* f) {
  switch (e.kind) {
    case XPathExpr::Kind::kDisj:
      f->disjunction = true;
      CollectFeatures(*e.left, f);
      CollectFeatures(*e.right, f);
      break;
    case XPathExpr::Kind::kChild:
      f->child = true;
      CollectFeatures(*e.left, f);
      CollectFeatures(*e.right, f);
      break;
    case XPathExpr::Kind::kDescendant:
      f->descendant = true;
      CollectFeatures(*e.left, f);
      CollectFeatures(*e.right, f);
      break;
    case XPathExpr::Kind::kFilter: {
      f->filter = true;
      CollectFeatures(*e.left, f);
      XPathFeatures inner = FeaturesOf(*e.filter);
      f->child |= inner.child;
      f->descendant |= inner.descendant;
      f->filter |= inner.filter;
      f->disjunction |= inner.disjunction;
      f->wildcard |= inner.wildcard;
      break;
    }
    case XPathExpr::Kind::kTest:
      break;
    case XPathExpr::Kind::kWildcard:
      f->wildcard = true;
      break;
  }
}

int ExprSize(const XPathExpr& e) {
  int n = 1;
  if (e.left != nullptr) n += ExprSize(*e.left);
  if (e.right != nullptr) n += ExprSize(*e.right);
  if (e.filter != nullptr) n += PatternSize(*e.filter);
  return n;
}

void ExprToString(const XPathExpr& e, const Alphabet& alphabet,
                  int parent_prec, std::string* out) {
  // Precedence: disj(0) < path steps(1) < atoms.
  switch (e.kind) {
    case XPathExpr::Kind::kDisj: {
      bool paren = parent_prec > 0;
      if (paren) out->push_back('(');
      ExprToString(*e.left, alphabet, 0, out);
      out->push_back('|');
      ExprToString(*e.right, alphabet, 0, out);
      if (paren) out->push_back(')');
      break;
    }
    case XPathExpr::Kind::kChild:
      ExprToString(*e.left, alphabet, 1, out);
      out->push_back('/');
      ExprToString(*e.right, alphabet, 2, out);
      break;
    case XPathExpr::Kind::kDescendant:
      ExprToString(*e.left, alphabet, 1, out);
      out->append("//");
      ExprToString(*e.right, alphabet, 2, out);
      break;
    case XPathExpr::Kind::kFilter:
      ExprToString(*e.left, alphabet, 2, out);
      out->push_back('[');
      out->append(PatternToString(*e.filter, alphabet));
      out->push_back(']');
      break;
    case XPathExpr::Kind::kTest:
      out->append(alphabet.Name(e.symbol));
      break;
    case XPathExpr::Kind::kWildcard:
      out->push_back('*');
      break;
  }
}

}  // namespace

XPathFeatures FeaturesOf(const XPathPattern& pattern) {
  XPathFeatures f;
  if (pattern.descendant) f.descendant = true;
  CollectFeatures(*pattern.body, &f);
  return f;
}

bool IsChildOnlyPattern(const XPathPattern& pattern) {
  XPathFeatures f = FeaturesOf(pattern);
  return !f.descendant && !f.filter && !f.disjunction;
}

int PatternSize(const XPathPattern& pattern) {
  return 1 + ExprSize(*pattern.body);
}

std::string PatternToString(const XPathPattern& pattern,
                            const Alphabet& alphabet) {
  std::string out = pattern.descendant ? ".//" : "./";
  ExprToString(*pattern.body, alphabet, 2, &out);
  return out;
}

}  // namespace xtc
