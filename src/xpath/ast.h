#ifndef XTC_XPATH_AST_H_
#define XTC_XPATH_AST_H_

#include <memory>
#include <string>

#include "src/fa/alphabet.h"

namespace xtc {

struct XPathExpr;
using XPathExprPtr = std::shared_ptr<const XPathExpr>;
struct XPathPattern;
using XPathPatternPtr = std::shared_ptr<const XPathPattern>;

/// A φ of the XPath{/, //, [], |, *} grammar (Definition 21).
struct XPathExpr {
  enum class Kind {
    kDisj,        ///< φ1 | φ2
    kChild,       ///< φ1 / φ2
    kDescendant,  ///< φ1 // φ2
    kFilter,      ///< φ1 [P]
    kTest,        ///< element test a
    kWildcard,    ///< *
  };

  Kind kind = Kind::kTest;
  int symbol = -1;           ///< kTest
  XPathExprPtr left, right;  ///< kDisj/kChild/kDescendant; kFilter uses left
  XPathPatternPtr filter;    ///< kFilter's [P]

  static XPathExprPtr Disj(XPathExprPtr l, XPathExprPtr r);
  static XPathExprPtr Child(XPathExprPtr l, XPathExprPtr r);
  static XPathExprPtr Descendant(XPathExprPtr l, XPathExprPtr r);
  static XPathExprPtr Filter(XPathExprPtr l, XPathPatternPtr p);
  static XPathExprPtr Test(int symbol);
  static XPathExprPtr Wildcard();
};

/// A pattern P: ·/φ or ·//φ. Patterns always start at the context node, so
/// the context node itself is never selected (Section 4).
struct XPathPattern {
  bool descendant = false;  ///< true for ·//φ
  XPathExprPtr body;

  static XPathPatternPtr Make(bool descendant, XPathExprPtr body);
};

/// Which fragment features a pattern uses; fragments XPath{X} of the paper
/// are described by subsets of these bits.
struct XPathFeatures {
  bool child = false;
  bool descendant = false;
  bool filter = false;
  bool disjunction = false;
  bool wildcard = false;
};

XPathFeatures FeaturesOf(const XPathPattern& pattern);

/// Whether the pattern lies in XPath{/, *} (Theorem 23's tractable
/// fragment).
bool IsChildOnlyPattern(const XPathPattern& pattern);

/// Number of AST nodes (pattern size measure).
int PatternSize(const XPathPattern& pattern);

/// Renders a pattern, e.g. "./(a|b)//c[.//e]/*".
std::string PatternToString(const XPathPattern& pattern,
                            const Alphabet& alphabet);

}  // namespace xtc

#endif  // XTC_XPATH_AST_H_
