#ifndef XTC_XPATH_TO_DFA_H_
#define XTC_XPATH_TO_DFA_H_

#include "src/base/status.h"
#include "src/fa/dfa.h"
#include "src/fa/nfa.h"
#include "src/xpath/ast.h"

namespace xtc {

/// Compiles a filter-free pattern (XPath{/, //, |, *}) into an NFA over
/// label paths: the NFA accepts a1...an iff the pattern selects the
/// an-labelled node of the tree r(a1(...(an))) evaluated from the root —
/// the A_P encoding of Theorem 23. Fails on filters.
StatusOr<Nfa> XPathToPathNfa(const XPathPattern& pattern, int num_symbols);

/// Determinization of XPathToPathNfa. For XPath{/, *} the result is acyclic
/// with linearly many states (Theorem 23); for patterns with descendant axes
/// the subset construction can blow up by O(n^c) in the number of wildcards
/// between descendant axes (Green et al.), and is exponential only beyond
/// that fragment.
StatusOr<Dfa> XPathToDfa(const XPathPattern& pattern, int num_symbols);

}  // namespace xtc

#endif  // XTC_XPATH_TO_DFA_H_
