#ifndef XTC_XPATH_PARSER_H_
#define XTC_XPATH_PARSER_H_

#include <string_view>

#include "src/base/status.h"
#include "src/fa/alphabet.h"
#include "src/xpath/ast.h"

namespace xtc {

/// Parses an XPath{/, //, [], |, *} pattern such as "./(a|b)//c[.//e]/*".
/// Patterns must begin with "./" or ".//" (all patterns start at the
/// context node, Definition 21). Element names are interned into `alphabet`.
StatusOr<XPathPatternPtr> ParseXPath(std::string_view text,
                                     Alphabet* alphabet);

}  // namespace xtc

#endif  // XTC_XPATH_PARSER_H_
