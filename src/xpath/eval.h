#ifndef XTC_XPATH_EVAL_H_
#define XTC_XPATH_EVAL_H_

#include <vector>

#include "src/fa/dfa.h"
#include "src/tree/tree.h"
#include "src/xpath/ast.h"

namespace xtc {

/// Evaluates f_P(t, ε) where t is the subtree rooted at `context`
/// (Definition 21's semantics): the nodes of the subtree selected by the
/// pattern, in document order (depth-first, left-to-right). The context node
/// itself is never selected (patterns start with ./ or .//).
std::vector<const Node*> EvalXPath(const XPathPattern& pattern,
                                   const Node* context);

/// Selection by a DFA (Section 4, T^DFA transducers): a proper descendant v
/// of `context` is selected iff the DFA accepts the label string of the path
/// from the first level below `context` down to and including v (matching
/// the encoding of Theorem 23's A_P automata). Returned in document order.
std::vector<const Node*> EvalDfaSelector(const Dfa& dfa, const Node* context);

}  // namespace xtc

#endif  // XTC_XPATH_EVAL_H_
