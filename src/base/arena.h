#ifndef XTC_BASE_ARENA_H_
#define XTC_BASE_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace xtc {

class Budget;

/// A bump allocator. Unranked trees (Section 2.1 of the paper) are built
/// out of many small nodes with child arrays; owning them individually is
/// slow and error-prone, so a tree's nodes live in an Arena and are freed
/// all at once when the arena dies. Allocations are never individually
/// released. The arena is move-only.
///
/// Thread-compatibility: single-thread only while allocating. An Arena is
/// owned by one run on one thread; once the run finishes, the trees inside
/// it may be read concurrently, but no thread may call Allocate/New (or
/// set_budget) after the arena is shared (see src/base/README.md).
class Arena {
 public:
  Arena() = default;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` bytes aligned to `align` (a power of two).
  void* Allocate(std::size_t bytes, std::size_t align);

  /// Allocates and default-constructs a T. T must be trivially destructible
  /// (the arena never runs destructors).
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena-allocated types must be trivially destructible");
    void* p = Allocate(sizeof(T), alignof(T));
    return new (p) T(static_cast<Args&&>(args)...);
  }

  /// Allocates an uninitialized array of n T's.
  template <typename T>
  T* NewArray(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena-allocated types must be trivially destructible");
    if (n == 0) return nullptr;
    return static_cast<T*>(Allocate(sizeof(T) * n, alignof(T)));
  }

  /// Total bytes handed out (diagnostics).
  std::size_t bytes_allocated() const { return bytes_allocated_; }

  /// Attaches a resource governor: every allocation is charged against it
  /// (the budget reports exhaustion at its next checkpoint — allocation
  /// itself never fails). Non-owning; pass nullptr to detach. The budget
  /// must outlive all allocations made while attached, so scope the
  /// attachment with ArenaBudgetScope.
  void set_budget(Budget* budget) { budget_ = budget; }
  Budget* budget() const { return budget_; }

 private:
  static constexpr std::size_t kBlockSize = 64 * 1024;

  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  std::vector<Block> blocks_;
  std::size_t bytes_allocated_ = 0;
  Budget* budget_ = nullptr;
};

/// RAII attachment of a Budget to an Arena. Engines attach their caller's
/// budget to the result arena only for the duration of the run: the arena
/// routinely outlives the budget (it is handed to the caller inside
/// TypecheckResult), so a persistent pointer would dangle.
///
/// Prefer the shared_ptr constructor when the arena is shared-owned: it
/// pins the arena for the scope's lifetime, so the scope stays valid even
/// if the owner's pointer is swapped mid-run (e.g. an engine adopting a
/// sub-engine's counterexample arena).
class ArenaBudgetScope {
 public:
  ArenaBudgetScope(Arena* arena, Budget* budget) : arena_(arena) {
    if (arena_ != nullptr) arena_->set_budget(budget);
  }
  ArenaBudgetScope(std::shared_ptr<Arena> arena, Budget* budget)
      : arena_(arena.get()), pinned_(std::move(arena)) {
    if (arena_ != nullptr) arena_->set_budget(budget);
  }
  ~ArenaBudgetScope() {
    if (arena_ != nullptr) arena_->set_budget(nullptr);
  }
  ArenaBudgetScope(const ArenaBudgetScope&) = delete;
  ArenaBudgetScope& operator=(const ArenaBudgetScope&) = delete;

 private:
  Arena* arena_;
  std::shared_ptr<Arena> pinned_;
};

}  // namespace xtc

#endif  // XTC_BASE_ARENA_H_
