#ifndef XTC_BASE_BUDGET_H_
#define XTC_BASE_BUDGET_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>

#include "src/base/status.h"

namespace xtc {

/// Why a governed computation ran out of resources.
enum class ExhaustionCause {
  kNone = 0,
  kDeadline,  ///< the wall-clock deadline passed
  kSteps,     ///< the step fuel was spent
  kBytes,     ///< the byte ceiling was crossed
  kInjected,  ///< a deterministic injected fault fired
};

const char* ExhaustionCauseName(ExhaustionCause cause);

/// A resource governor shared by one typechecking run. Every potentially
/// super-linear loop in the engines calls Check() ("checkpoint"); the first
/// checkpoint past a limit returns kResourceExhausted and every later one
/// repeats it, so governed loops unwind softly — no aborts, no partial
/// state escaping. The paper's hard instances (Theorems 18/28) make this
/// mandatory for a service: exponential blowup must degrade into a clean
/// error within a bounded delay, not thrash CPU and memory.
///
/// Three independent limits, each optional:
///  - a wall-clock deadline (steady clock, re-read every kClockStride
///    checkpoints to keep Check() cheap),
///  - step fuel: a hard cap on the number of checkpoints passed,
///  - a byte ceiling fed by Arena allocation accounting (ChargeBytes).
///
/// The same checkpoints double as a deterministic fault-injection
/// mechanism: set_fail_at_checkpoint(n) makes the n-th checkpoint fail with
/// an injected kResourceExhausted, which lets tests sweep every failure
/// point of an engine and assert each path is clean (fault_injection_test).
///
/// Thread-compatibility: single-thread only. One Budget governs one run on
/// one thread; the service layer creates a fresh Budget per request on the
/// worker thread that executes it (see src/base/README.md).
class Budget {
 public:
  Budget() = default;

  /// Convenience factories for the common single-limit cases.
  static Budget WithDeadline(std::chrono::milliseconds deadline);
  static Budget WithMaxSteps(std::uint64_t steps);
  static Budget WithMaxBytes(std::uint64_t bytes);

  /// Starts the wall-clock countdown now. Re-arming resets the clock.
  void set_deadline(std::chrono::milliseconds deadline);
  /// Anchors the deadline at an absolute steady-clock instant. This is the
  /// deadline-propagation form: the service anchors at request *admission*,
  /// so time spent queued counts against the client's deadline and
  /// server-side work never outlives the client's patience. An instant
  /// already in the past trips the very first Check().
  void set_deadline_until(std::chrono::steady_clock::time_point at);
  /// Milliseconds of deadline left (never negative); nullopt when no
  /// deadline is armed. Used to cap subordinate work (e.g. artifact
  /// compiles) at the caller's remaining patience.
  std::optional<double> remaining_ms() const;
  /// Caps the total number of checkpoints (0 disables).
  void set_max_steps(std::uint64_t steps) { max_steps_ = steps; }
  /// Caps the bytes charged via ChargeBytes (0 disables).
  void set_max_bytes(std::uint64_t bytes) { max_bytes_ = bytes; }
  /// Fault injection: the n-th checkpoint (1-based) fails; 0 disables.
  void set_fail_at_checkpoint(std::uint64_t n) { fail_at_ = n; }

  /// The checkpoint. `where` names the governed loop for the error message.
  /// Exhaustion is sticky: once a limit trips, every later Check() fails
  /// with the same cause.
  Status Check(const char* where);

  /// Bulk checkpoint: accounts `steps` checkpoints at once and applies the
  /// same limits (deadline re-read unconditionally, injected fault if
  /// `fail_at` falls inside the charged range). This is the reconciliation
  /// form used by the parallel lazy engine: workers count steps in plain
  /// per-thread counters during an epoch and the coordinator charges the
  /// aggregate at the epoch barrier, so the hot loop never touches the
  /// budget (src/base/README.md — budgets stay single-thread only).
  /// Exhaustion is detected at most one epoch late; same soft-unwind
  /// semantics as Check().
  Status ChargeSteps(std::uint64_t steps, const char* where);

  /// The absolute steady-clock deadline, if armed. The parallel engine
  /// snapshots this so workers can watch the clock themselves mid-epoch
  /// (flagging a shared abort) without touching the single-thread Budget.
  std::optional<std::chrono::steady_clock::time_point> deadline_instant()
      const {
    return deadline_at_;
  }

  /// Account allocated bytes (never fails; exceeding the ceiling is
  /// reported by the next Check()). Hooked into Arena::Allocate.
  void ChargeBytes(std::size_t bytes) {
    bytes_charged_ += static_cast<std::uint64_t>(bytes);
  }

  std::uint64_t checkpoints() const { return checkpoints_; }
  std::uint64_t bytes_charged() const { return bytes_charged_; }
  /// Milliseconds since construction / the last set_deadline().
  double elapsed_ms() const;
  /// The configured deadline, if any (used to derive degraded-mode
  /// budgets).
  std::optional<std::chrono::milliseconds> deadline() const;
  bool exhausted() const { return cause_ != ExhaustionCause::kNone; }
  ExhaustionCause cause() const { return cause_; }

 private:
  // Deadline re-read stride: a power of two so the test is a mask.
  static constexpr std::uint64_t kClockStride = 32;

  Status Exhaust(ExhaustionCause cause, const char* where);

  std::uint64_t checkpoints_ = 0;
  std::uint64_t bytes_charged_ = 0;
  std::uint64_t max_steps_ = 0;
  std::uint64_t max_bytes_ = 0;
  std::uint64_t fail_at_ = 0;
  std::optional<std::chrono::steady_clock::time_point> deadline_at_;
  std::chrono::milliseconds deadline_duration_{0};
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  ExhaustionCause cause_ = ExhaustionCause::kNone;
  Status exhausted_status_;
};

/// Wall-clock stopwatch for ungoverned runs: engines stamp
/// TypecheckStats::elapsed_ms from the governing Budget when there is one
/// and from a WallTimer started at entry otherwise, so latency telemetry
/// (read by the service layer) is populated either way.
class WallTimer {
 public:
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

/// Null-tolerant checkpoint: ungoverned runs pass a nullptr budget and
/// every checkpoint is free.
inline Status BudgetCheck(Budget* budget, const char* where) {
  if (budget == nullptr) return Status::Ok();
  return budget->Check(where);
}

/// Amortized checkpointing for the tightest inner loops. A full Check()
/// per iteration would dominate the word-parallel kernels it governs, so a
/// gate forwards only every `stride`-th Poll() to the Budget (one local
/// countdown decrement otherwise) and answers from the latched status in
/// between. Exhaustion is therefore detected at most `stride` iterations
/// late — bounded staleness, same soft-unwind semantics. Note the step-fuel
/// unit changes accordingly: one Budget checkpoint ≈ `stride` gated steps.
class BudgetGate {
 public:
  static constexpr std::uint32_t kDefaultStride = 1024;

  explicit BudgetGate(Budget* budget, std::uint32_t stride = kDefaultStride)
      : budget_(budget), stride_(stride), countdown_(stride) {}

  Status Poll(const char* where) {
    if (budget_ == nullptr) return Status::Ok();
    if (tripped_) return budget_->Check(where);  // sticky, repeats the cause
    if (--countdown_ != 0) return Status::Ok();
    countdown_ = stride_;
    Status s = budget_->Check(where);
    if (!s.ok()) tripped_ = true;
    return s;
  }

 private:
  Budget* budget_;
  std::uint32_t stride_;
  std::uint32_t countdown_;
  bool tripped_ = false;
};

}  // namespace xtc

#endif  // XTC_BASE_BUDGET_H_
