#ifndef XTC_BASE_SNAPSHOT_H_
#define XTC_BASE_SNAPSHOT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

// Under ThreadSanitizer the slot degrades to a mutex-guarded shared_ptr:
// libstdc++'s atomic<shared_ptr> serializes its plain internal pointer
// accesses with an embedded lock *bit*, but the load path releases it with
// a relaxed RMW, so tsan sees no happens-before edge to the next store and
// reports the library's own internals. The fallback keeps every race in
// *our* code visible (init-before-publish ordering, map vs snapshot
// divergence) while taking the library idiom out of the picture; release
// builds keep the genuinely mutex-free read path, which is what
// BM_CacheWarmHitContention and ci/cache_gate.py measure.
#if defined(__SANITIZE_THREAD__)
#define XTC_SNAPSHOT_TSAN_FALLBACK 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define XTC_SNAPSHOT_TSAN_FALLBACK 1
#endif
#endif
#if defined(XTC_SNAPSHOT_TSAN_FALLBACK)
#include <mutex>
#endif

namespace xtc {

/// A single published-pointer slot for read-mostly data structures, the
/// snapshot/RCU-style analog of the init-before-publish discipline in
/// concurrent_interner.h: a writer fully constructs an immutable object,
/// then Publish()es it with release semantics; readers Acquire() the
/// current version with acquire semantics and may keep using it for as
/// long as they hold the shared_ptr, even while newer versions land.
///
/// Readers never block writers and writers never block readers — there is
/// no mutex anywhere in this class. Old versions are reclaimed by the
/// shared_ptr control block when the last reader drops them, which is
/// exactly the grace-period rule RCU implements by hand.
///
/// Thread-compatibility: thread-safe.
template <typename T>
class SnapshotSlot {
 public:
  SnapshotSlot() = default;
  explicit SnapshotSlot(std::shared_ptr<T> initial) {
    Publish(std::move(initial));
  }
  SnapshotSlot(const SnapshotSlot&) = delete;
  SnapshotSlot& operator=(const SnapshotSlot&) = delete;

  /// The current published version (null before the first Publish).
  std::shared_ptr<T> Acquire() const {
#if defined(XTC_SNAPSHOT_TSAN_FALLBACK)
    std::lock_guard<std::mutex> lock(mu_);
    return slot_;
#elif defined(__cpp_lib_atomic_shared_ptr)
    return slot_.load(std::memory_order_acquire);
#else
    return std::atomic_load_explicit(&slot_, std::memory_order_acquire);
#endif
  }

  /// Atomically replaces the published version. The object behind `next`
  /// must be immutable (or externally synchronized) from this point on.
  void Publish(std::shared_ptr<T> next) {
#if defined(XTC_SNAPSHOT_TSAN_FALLBACK)
    std::lock_guard<std::mutex> lock(mu_);
    slot_ = std::move(next);
#elif defined(__cpp_lib_atomic_shared_ptr)
    slot_.store(std::move(next), std::memory_order_release);
#else
    std::atomic_store_explicit(&slot_, std::move(next),
                               std::memory_order_release);
#endif
  }

 private:
#if defined(XTC_SNAPSHOT_TSAN_FALLBACK)
  mutable std::mutex mu_;
  std::shared_ptr<T> slot_;
#elif defined(__cpp_lib_atomic_shared_ptr)
  std::atomic<std::shared_ptr<T>> slot_;
#else
  std::shared_ptr<T> slot_;
#endif
};

/// An immutable open-addressed hash index over shared entries, built once
/// by a writer (under its lock) and published through a SnapshotSlot. The
/// entry type must expose `hash` (a 64-bit content hash, e.g. HashBytes of
/// the key) and `key` (the full key, compared on probe — collisions cost a
/// probe, never a wrong entry) data members.
///
/// The table owns shared_ptrs to its entries, so a reader holding the
/// table's shared_ptr can safely read any entry it finds even if a writer
/// concurrently publishes a successor table without that entry.
///
/// Thread-compatibility: thread-safe for reads once published (the slot
/// array is never mutated after Build returns).
template <typename EntryT>
class SnapshotTable {
 public:
  /// Builds a table over `entries` at <= 50% load factor.
  static std::shared_ptr<const SnapshotTable> Build(
      std::vector<std::shared_ptr<EntryT>> entries) {
    auto table = std::make_shared<SnapshotTable>();
    std::size_t capacity = 4;
    while (capacity < entries.size() * 2) capacity <<= 1;
    table->slots_.assign(capacity, nullptr);
    table->mask_ = capacity - 1;
    table->size_ = entries.size();
    for (std::shared_ptr<EntryT>& entry : entries) {
      std::size_t i = entry->hash & table->mask_;
      while (table->slots_[i] != nullptr) i = (i + 1) & table->mask_;
      table->slots_[i] = std::move(entry);
    }
    return table;
  }

  /// The entry whose full key equals `key`, or null. The returned pointer
  /// stays valid while the caller holds the table's shared_ptr.
  EntryT* Find(std::uint64_t hash, std::string_view key) const {
    std::size_t i = hash & mask_;
    while (slots_[i] != nullptr) {
      if (slots_[i]->hash == hash && slots_[i]->key == key) {
        return slots_[i].get();
      }
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  std::size_t size() const { return size_; }

  /// Visits every entry (order unspecified).
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const std::shared_ptr<EntryT>& slot : slots_) {
      if (slot != nullptr) fn(*slot);
    }
  }

 private:
  std::vector<std::shared_ptr<EntryT>> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace xtc

#endif  // XTC_BASE_SNAPSHOT_H_
