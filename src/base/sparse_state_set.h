#ifndef XTC_BASE_SPARSE_STATE_SET_H_
#define XTC_BASE_SPARSE_STATE_SET_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/base/state_set.h"

namespace xtc {

/// Universe size at which AdaptiveStateSet switches from the dense
/// word-parallel StateSet to the sorted-sparse representation. The dense
/// kernel pays O(universe/64) per construction/merge regardless of how few
/// members a set has; on the constructed hardness families (Thm 18 /
/// Lemma 27 universes of many thousands of states, subsets of a handful)
/// that fixed cost dominates, and the sorted-sparse kernels — O(members)
/// with word-free merges — win. Under a few thousand states the packed
/// words fit a few cache lines and the dense kernel is unbeatable, hence
/// the threshold. Overridable per engine run via
/// LazyOptions::dense_threshold.
inline constexpr int kDefaultDenseThreshold = 2048;

/// A set of small non-negative integers stored as a sorted, duplicate-free
/// member vector: O(members) storage and iteration independent of the
/// universe size. Complements StateSet (src/base/state_set.h), which this
/// representation beats only when the universe is much larger than the
/// membership — the exact shape of determinized-subset masks on
/// large-universe instances.
class SparseStateSet {
 public:
  SparseStateSet() = default;

  /// Builds from an already-sorted, duplicate-free member list over the
  /// universe {0, .., universe-1}.
  static SparseStateSet FromSorted(std::span<const int> sorted, int universe) {
    SparseStateSet out;
    out.universe_ = universe;
    out.members_.assign(sorted.begin(), sorted.end());
    return out;
  }

  int universe() const { return universe_; }
  int Count() const { return static_cast<int>(members_.size()); }
  std::span<const int> members() const { return members_; }

  /// Membership by binary search: O(log members), not O(1) — callers on a
  /// hot path with dense-universe sets should be holding a StateSet.
  bool Test(int i) const {
    return std::binary_search(members_.begin(), members_.end(), i);
  }

  /// Whether every member of `other` is a member of this set, by a single
  /// merge walk: O(|this| + |other|), no word scans.
  bool ContainsAll(const SparseStateSet& other) const {
    std::size_t i = 0;
    for (const int x : other.members_) {
      while (i < members_.size() && members_[i] < x) ++i;
      if (i == members_.size() || members_[i] != x) return false;
      ++i;
    }
    return true;
  }

  friend bool operator==(const SparseStateSet& a, const SparseStateSet& b) {
    return a.universe_ == b.universe_ && a.members_ == b.members_;
  }

 private:
  std::vector<int> members_;  ///< sorted, duplicate-free
  int universe_ = 0;
};

/// The adaptive representation the lazy engines store their determinized
/// subset masks in: word-parallel dense StateSet while the universe fits
/// the dense sweet spot (<= dense_threshold states), sorted-sparse above
/// it. Both sides of every comparison in one engine run share a universe
/// and threshold, so the kernels below never need a mixed-mode fast path —
/// the elementwise fallback exists only for defensive completeness.
class AdaptiveStateSet {
 public:
  AdaptiveStateSet() = default;

  /// Builds from a sorted, duplicate-free member list over the universe
  /// {0, .., universe-1}; representation chosen by universe vs threshold.
  AdaptiveStateSet(std::span<const int> sorted, int universe,
                   int dense_threshold) {
    sparse_mode_ = universe > dense_threshold;
    if (sparse_mode_) {
      sparse_ = SparseStateSet::FromSorted(sorted, universe);
    } else {
      dense_ = StateSet::FromSorted(sorted, universe);
    }
  }

  bool sparse() const { return sparse_mode_; }
  int universe() const {
    return sparse_mode_ ? sparse_.universe() : dense_.size_bits();
  }
  int Count() const { return sparse_mode_ ? sparse_.Count() : dense_.Count(); }

  bool Test(int i) const {
    return sparse_mode_ ? sparse_.Test(i) : dense_.Test(i);
  }

  /// Whether every member of `other` is a member of this set — the
  /// subsumption kernel of the antichain index (src/base/antichain.h).
  bool ContainsAll(const AdaptiveStateSet& other) const {
    if (sparse_mode_ == other.sparse_mode_) {
      return sparse_mode_ ? sparse_.ContainsAll(other.sparse_)
                          : dense_.ContainsAll(other.dense_);
    }
    // Mixed representations only arise if two runs with different
    // thresholds share sets — never the engines' case. Correct, slow path.
    if (other.sparse_mode_) {
      for (const int x : other.sparse_.members()) {
        if (!dense_.Test(x)) return false;
      }
      return true;
    }
    bool ok = true;
    other.dense_.ForEach([&](int x) { ok = ok && sparse_.Test(x); });
    return ok;
  }

 private:
  StateSet dense_;
  SparseStateSet sparse_;
  bool sparse_mode_ = false;
};

/// Reusable successor accumulator for the horizontal subset steps (StepH
/// and the lazy engines' StepDet): a dense word array sized to the
/// universe, plus a touched-word list so extraction and reset cost
/// O(touched + members) instead of the O(universe/64) that allocating and
/// scanning a fresh StateSet per step costs. One instance per engine (or
/// per worker in the parallel engine); not thread-safe.
class ScratchSet {
 public:
  /// Ensures capacity for the universe {0, .., num_bits-1}. The set must be
  /// logically empty when called (i.e. after ExtractSortedAndClear).
  void EnsureUniverse(int num_bits) {
    const std::size_t words =
        (static_cast<std::size_t>(num_bits) + 63) / 64;
    if (words > words_.size()) words_.resize(words, 0);
  }

  /// Adds `i`; returns whether it was newly added.
  bool Add(int i) {
    const std::size_t w = static_cast<std::size_t>(i) / 64;
    const std::uint64_t mask = std::uint64_t{1} << (static_cast<unsigned>(i) %
                                                    64);
    const std::uint64_t before = words_[w];
    if ((before & mask) != 0) return false;
    if (before == 0) touched_.push_back(static_cast<int>(w));
    words_[w] = before | mask;
    return true;
  }

  bool Test(int i) const {
    const std::size_t w = static_cast<std::size_t>(i) / 64;
    return w < words_.size() &&
           ((words_[w] >> (static_cast<unsigned>(i) % 64)) & 1) != 0;
  }

  /// Writes the members to `*out` in increasing order (replacing its
  /// contents) and empties the set, clearing only the touched words.
  void ExtractSortedAndClear(std::vector<int>* out) {
    out->clear();
    std::sort(touched_.begin(), touched_.end());
    for (const int w : touched_) {
      std::uint64_t bits = words_[static_cast<std::size_t>(w)];
      words_[static_cast<std::size_t>(w)] = 0;
      while (bits != 0) {
        out->push_back(w * 64 + std::countr_zero(bits));
        bits &= bits - 1;
      }
    }
    touched_.clear();
  }

 private:
  std::vector<std::uint64_t> words_;
  std::vector<int> touched_;  ///< word indices with at least one bit set
};

}  // namespace xtc

#endif  // XTC_BASE_SPARSE_STATE_SET_H_
