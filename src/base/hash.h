#ifndef XTC_BASE_HASH_H_
#define XTC_BASE_HASH_H_

#include <cstdint>
#include <string_view>

namespace xtc {

/// FNV-1a over bytes with a splitmix64 finalizer — the same recipe as
/// StateSet::Hash, lifted to strings. The compile cache addresses artifacts
/// by the hash of their canonical text; the full text is kept alongside and
/// compared on lookup, so a hash collision costs a probe, never a wrong
/// artifact.
inline std::uint64_t HashBytes(std::string_view bytes,
                               std::uint64_t seed = 0xcbf29ce484222325ull) {
  std::uint64_t h = seed;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  // splitmix64 finalizer: FNV alone is weak in the high bits.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

}  // namespace xtc

#endif  // XTC_BASE_HASH_H_
