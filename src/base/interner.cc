#include "src/base/interner.h"

#include <algorithm>

namespace xtc {
namespace {

// splitmix64 finalizer: full-avalanche mixing of one 64-bit lane.
inline std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::size_t kMinTableSize = 16;

}  // namespace

std::uint64_t SubsetInterner::HashKey(std::span<const int> key) {
  // FNV-1a over avalanche-mixed elements: cheap per int, and the final mix
  // keeps short keys (the common 1-3 int case) well distributed.
  std::uint64_t h = 0xcbf29ce484222325ULL ^ key.size();
  for (int v : key) {
    h = (h ^ Mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)))) *
        0x100000001b3ULL;
  }
  return Mix(h);
}

void SubsetInterner::Rehash(std::size_t new_size) {
  table_.assign(new_size, -1);
  mask_ = new_size - 1;
  for (std::size_t id = 0; id < hashes_.size(); ++id) {
    std::size_t slot = hashes_[id] & mask_;
    while (table_[slot] != -1) slot = (slot + 1) & mask_;
    table_[slot] = static_cast<int>(id);
  }
}

void SubsetInterner::Reserve(std::size_t keys, std::size_t ints_per_key) {
  pool_.reserve(keys * ints_per_key);
  offsets_.reserve(keys + 1);
  hashes_.reserve(keys);
  std::size_t table = kMinTableSize;
  while (table < keys * 2) table *= 2;
  if (table > table_.size()) Rehash(table);
}

void SubsetInterner::Clear() {
  pool_.clear();
  offsets_.assign(1, 0);
  hashes_.clear();
  std::fill(table_.begin(), table_.end(), -1);
}

int SubsetInterner::Find(std::span<const int> key) const {
  if (table_.empty()) return -1;
  const std::uint64_t h = HashKey(key);
  std::size_t slot = h & mask_;
  while (true) {
    const int id = table_[slot];
    if (id == -1) return -1;
    if (hashes_[static_cast<std::size_t>(id)] == h) {
      std::span<const int> k = Get(id);
      if (k.size() == key.size() &&
          std::equal(k.begin(), k.end(), key.begin())) {
        return id;
      }
    }
    slot = (slot + 1) & mask_;
  }
}

int SubsetInterner::Intern(std::span<const int> key) {
  if (table_.empty()) Rehash(kMinTableSize);
  const std::uint64_t h = HashKey(key);
  std::size_t slot = h & mask_;
  while (true) {
    const int id = table_[slot];
    if (id == -1) break;
    if (hashes_[static_cast<std::size_t>(id)] == h) {
      std::span<const int> k = Get(id);
      if (k.size() == key.size() &&
          std::equal(k.begin(), k.end(), key.begin())) {
        return id;
      }
    }
    slot = (slot + 1) & mask_;
  }
  const int id = static_cast<int>(hashes_.size());
  pool_.insert(pool_.end(), key.begin(), key.end());
  offsets_.push_back(pool_.size());
  hashes_.push_back(h);
  table_[slot] = id;
  // Keep the load factor under 2/3.
  if (hashes_.size() * 3 >= table_.size() * 2) Rehash(table_.size() * 2);
  return id;
}

}  // namespace xtc
