#ifndef XTC_BASE_ANTICHAIN_H_
#define XTC_BASE_ANTICHAIN_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

namespace xtc {

/// Hash signature over the existential coordinates of a product config key.
/// Two configs are comparable under the subsumption order only when their
/// existential coordinates agree exactly (the order relaxes only the
/// determinized subset slots), so bucketing by this signature partitions
/// the config space into independent comparability classes. FNV-1a over
/// splitmix-mixed coordinates, matching SubsetInterner::HashKey's shape.
inline std::uint64_t ExSignature(std::span<const int> key,
                                 std::span<const int> ex_positions) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const int pos : ex_positions) {
    std::uint64_t x =
        static_cast<std::uint64_t>(key[static_cast<std::size_t>(pos)]);
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    h = (h ^ x) * 0x100000001b3ULL;
  }
  return h;
}

/// Maintains the set of live (non-subsumed) product configs as an antichain
/// under a caller-supplied dominance order: configs bucketed by existential
/// signature, each bucket holding mutually incomparable entries. Insert
/// either prunes the newcomer (some live entry dominates it), or admits it
/// and displaces every live entry it dominates. DESIGN.md §3e gives the
/// soundness argument for why the lazy engines may skip pruned configs.
///
/// Thread-compatibility: single-thread only; the parallel engine wraps
/// per-signature stripes in SharedAntichainIndex below.
class AntichainIndex {
 public:
  /// `ex_positions`: the key positions holding existential (exact-match)
  /// coordinates. The remaining positions are the determinized subset ids
  /// the dominance callback compares.
  void Configure(std::vector<int> ex_positions) {
    ex_positions_ = std::move(ex_positions);
  }

  /// Offers config `id` with interned `key` to the antichain.
  /// `dominates(a_key, b_key)` must return whether the config keyed a_key
  /// subsumes the config keyed b_key (a partial order; both keys have the
  /// caller's full layout). Returns true when `id` is dominated by a live
  /// entry — the caller should mark it pruned and not expand it. Otherwise
  /// appends the ids of every entry `id` displaced to `*displaced` (without
  /// clearing it) and returns false.
  ///
  /// The key is copied into the bucket entry, so callers may pass spans
  /// invalidated by their interner's next insertion.
  template <typename Dominates>
  bool Insert(int id, std::span<const int> key, Dominates&& dominates,
              std::vector<int>* displaced) {
    Bucket& bucket = buckets_[ExSignature(key, ex_positions_)];
    for (const Entry& e : bucket.entries) {
      if (dominates(std::span<const int>(e.key), key)) return true;
    }
    // No live entry dominates the newcomer, so (antichain invariant) any
    // entry it dominates cannot dominate it back; displacement is safe.
    std::size_t w = 0;
    for (std::size_t r = 0; r < bucket.entries.size(); ++r) {
      if (dominates(key, std::span<const int>(bucket.entries[r].key))) {
        displaced->push_back(bucket.entries[r].id);
      } else {
        if (w != r) bucket.entries[w] = std::move(bucket.entries[r]);
        ++w;
      }
    }
    bucket.entries.resize(w);
    bucket.entries.push_back(
        Entry{id, std::vector<int>(key.begin(), key.end())});
    return false;
  }

  /// The number of live (never-displaced) entries across all buckets.
  std::size_t live() const {
    std::size_t n = 0;
    for (const auto& [sig, bucket] : buckets_) n += bucket.entries.size();
    return n;
  }

 private:
  struct Entry {
    int id;
    std::vector<int> key;
  };
  struct Bucket {
    std::vector<Entry> entries;
  };

  std::vector<int> ex_positions_;
  std::unordered_map<std::uint64_t, Bucket> buckets_;
};

/// Mutex-striped AntichainIndex for the parallel engine. Comparable configs
/// share an existential signature, hence a stripe, so dominance decisions
/// within a comparability class are serialized; incomparable configs on
/// different stripes proceed without contention. Insert has the same
/// contract as AntichainIndex::Insert.
class SharedAntichainIndex {
 public:
  void Configure(std::vector<int> ex_positions) {
    ex_positions_ = ex_positions;
    for (Stripe& s : stripes_) s.index.Configure(ex_positions);
  }

  template <typename Dominates>
  bool Insert(int id, std::span<const int> key, Dominates&& dominates,
              std::vector<int>* displaced) {
    Stripe& s = stripes_[ExSignature(key, ex_positions_) % kStripes];
    std::lock_guard<std::mutex> lock(s.mu);
    return s.index.Insert(id, key, dominates, displaced);
  }

 private:
  static constexpr std::size_t kStripes = 64;
  struct Stripe {
    std::mutex mu;
    AntichainIndex index;
  };

  std::vector<int> ex_positions_;
  Stripe stripes_[kStripes];
};

}  // namespace xtc

#endif  // XTC_BASE_ANTICHAIN_H_
