#ifndef XTC_BASE_INTERNER_H_
#define XTC_BASE_INTERNER_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace xtc {

/// Hash-based interning of int sequences: sorted state subsets (the subset
/// constructions of Section 4 and `Dfa::FromNfa`), obligation tuples (the
/// Lemma 14 saturation keys), and product-configuration vectors all reduce
/// to "give this int vector a dense id, idempotently". The ordered
/// `std::map<std::vector<int>, int>` this replaces costs O(log n) vector
/// comparisons per lookup; interning here is one FNV/splitmix-style hash
/// plus expected O(1) probes in an open-addressed power-of-two table, and
/// all key storage is a single flat pool (one allocation amortized, no
/// per-key nodes).
///
/// Ids are dense and assigned in first-insertion order, so callers can use
/// them directly as indices into side arrays (worklists, entry tables).
///
/// Thread-compatibility: single-thread only. Each engine run owns its
/// interners; Intern rehashes and grows the pool, so concurrent readers of
/// Get()/Find() would race with any writer (see src/base/README.md).
class SubsetInterner {
 public:
  SubsetInterner() = default;

  /// The id of `key`, inserting it if new. Ids count up from 0.
  int Intern(std::span<const int> key);

  /// The id of `key`, or -1 when it was never interned.
  int Find(std::span<const int> key) const;

  /// The interned key for `id` (valid until the interner is destroyed;
  /// pool storage is stable only between Intern calls, so don't hold
  /// spans across insertions).
  std::span<const int> Get(int id) const {
    const std::size_t b = offsets_[static_cast<std::size_t>(id)];
    const std::size_t e = offsets_[static_cast<std::size_t>(id) + 1];
    return std::span<const int>(pool_.data() + b, e - b);
  }

  int size() const { return static_cast<int>(hashes_.size()); }

  /// The cached hash of the key interned as `id` — lets callers bucket ids
  /// (e.g. the antichain signature stripes) without rehashing the key.
  std::uint64_t HashOf(int id) const {
    return hashes_[static_cast<std::size_t>(id)];
  }

  /// Pre-sizes the table and pool for about `keys` keys of about
  /// `ints_per_key` ints each.
  void Reserve(std::size_t keys, std::size_t ints_per_key);

  /// Forgets every key but keeps the table and pool capacity. Search loops
  /// that run once per saturation entry reuse one interner instead of
  /// reallocating the table each call.
  void Clear();

  static std::uint64_t HashKey(std::span<const int> key);

 private:
  void Rehash(std::size_t new_size);

  // Flat key storage: key i lives at pool_[offsets_[i] .. offsets_[i+1]).
  std::vector<int> pool_;
  std::vector<std::size_t> offsets_{0};
  std::vector<std::uint64_t> hashes_;  // per id, cached for rehash/compare
  // Open-addressed table of ids (-1 = empty); size is a power of two.
  std::vector<int> table_;
  std::size_t mask_ = 0;
};

}  // namespace xtc

#endif  // XTC_BASE_INTERNER_H_
