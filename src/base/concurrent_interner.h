#ifndef XTC_BASE_CONCURRENT_INTERNER_H_
#define XTC_BASE_CONCURRENT_INTERNER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "src/base/interner.h"
#include "src/base/logging.h"

namespace xtc {

/// Thread-safe interning of int sequences for the parallel lazy frontier
/// engine (src/nta/lazy_parallel.cc): the shared config-hash → global-id
/// map of DESIGN.md §3d. Same job as SubsetInterner — dense first-insertion
/// ids for int vectors — but insertable from many threads at once:
///
///  - an open-addressed table of atomic slots claimed by CAS (empty →
///    pending → id), hashed with the same FNV/splitmix recipe as
///    SubsetInterner::HashKey / base/hash.h;
///  - a segmented, append-only entry log (id → key span + cached hash)
///    whose segments are published once and never move, so Get(id) spans
///    are pointer-stable forever — unlike SubsetInterner, whose pool
///    reallocates under Intern;
///  - per-thread key pools, so copying a key in never contends.
///
/// Insertion protocol: a claimer CASes a slot to "pending", takes the next
/// dense id, copies the key into its own pool, writes the entry, runs the
/// caller's init callback (side tables indexed by id), and only then
/// publishes the id into the slot with a release store. Racing inserters
/// of the same key spin on the pending slot, so by the time any thread
/// observes an id — through this table or through any release/acquire
/// channel downstream of the winner — the entry and every init write are
/// visible. Ids are therefore safe to pass between threads as plain ints.
///
/// The table does NOT grow concurrently. Capacity is fixed while threads
/// are inserting; once the fill limit is reached TryIntern reports
/// `full`, and the owner grows the table at a quiescent point (the
/// parallel engine's epoch barrier) via Grow(). `max_entries` is the hard
/// id-space cap (the engine's config/state caps); `full` with
/// NeedsGrow() == false means the cap itself is exhausted.
///
/// Thread-safety: TryIntern/Find/Get/size are safe from any thread, with
/// the per-thread pool index `thread` exclusive to its caller. Grow() and
/// the constructor/destructor require external quiescence (no concurrent
/// calls at all).
class ConcurrentInterner {
 public:
  struct InternResult {
    int id = -1;          ///< the key's dense id (-1 when full)
    bool inserted = false;  ///< this call created the id (winner duties)
    bool full = false;      ///< table at fill limit or max_entries reached
  };

  ConcurrentInterner(int num_threads, std::size_t max_entries,
                     std::size_t initial_capacity = 1024)
      : max_entries_(max_entries), pools_(static_cast<std::size_t>(
                                       num_threads > 0 ? num_threads : 1)) {
    std::size_t cap = 64;
    while (cap < initial_capacity) cap <<= 1;
    AllocateTable(cap);
    num_seg_slots_ = (max_entries_ >> kSegBits) + 1;
    segs_ = std::make_unique<std::atomic<Entry*>[]>(num_seg_slots_);
    for (std::size_t i = 0; i < num_seg_slots_; ++i) {
      segs_[i].store(nullptr, std::memory_order_relaxed);
    }
  }

  ~ConcurrentInterner() {
    for (std::size_t i = 0; i < num_seg_slots_; ++i) {
      delete[] segs_[i].load(std::memory_order_relaxed);
    }
  }

  ConcurrentInterner(const ConcurrentInterner&) = delete;
  ConcurrentInterner& operator=(const ConcurrentInterner&) = delete;

  /// Interns `key` from worker `thread`. When this call wins the insertion
  /// race, `init(id)` runs before the id is published anywhere, so writes
  /// it makes to id-indexed side tables happen-before any other thread's
  /// use of the id.
  template <typename Init>
  InternResult TryIntern(int thread, std::span<const int> key, Init&& init) {
    const std::uint64_t h = SubsetInterner::HashKey(key);
    std::size_t i = h & mask_;
    while (true) {
      int s = table_[i].load(std::memory_order_acquire);
      if (s >= 0) {
        if (EntryEquals(s, h, key)) return {s, false, false};
        i = (i + 1) & mask_;
        continue;
      }
      if (s == kPending) {
        // The claimer is between CAS and publish; its window is a key copy
        // plus the init callback — short. Spin on this same slot.
        std::this_thread::yield();
        continue;
      }
      // Empty. The fill check is approximate (racers may overshoot by at
      // most one slot each); the limit leaves slack for that.
      if (static_cast<std::size_t>(count_.load(std::memory_order_relaxed)) >=
          fill_limit_) {
        return {-1, false, true};
      }
      int expected = kEmpty;
      if (!table_[i].compare_exchange_weak(expected, kPending,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        continue;  // lost the claim; re-examine the slot
      }
      const int id = count_.fetch_add(1, std::memory_order_acq_rel);
      if (static_cast<std::size_t>(id) >= max_entries_) {
        // Hard cap: release the slot so spinners can observe the full
        // table instead of a stuck pending marker. The id is burned, but
        // the whole run is about to unwind with kResourceExhausted.
        table_[i].store(kEmpty, std::memory_order_release);
        return {-1, false, true};
      }
      Entry* e = EnsureSegment(id) + (id & (kSegSize - 1));
      e->data = CopyKey(thread, key);
      e->len = static_cast<std::uint32_t>(key.size());
      e->hash = h;
      init(id);
      table_[i].store(id, std::memory_order_release);
      return {id, true, false};
    }
  }

  InternResult TryIntern(int thread, std::span<const int> key) {
    return TryIntern(thread, key, [](int) {});
  }

  /// The id of `key`, or -1 when it was never (fully) interned.
  int Find(std::span<const int> key) const {
    const std::uint64_t h = SubsetInterner::HashKey(key);
    std::size_t i = h & mask_;
    while (true) {
      int s = table_[i].load(std::memory_order_acquire);
      if (s == kEmpty) return -1;
      if (s >= 0) {
        if (EntryEquals(s, h, key)) return s;
        i = (i + 1) & mask_;
        continue;
      }
      std::this_thread::yield();  // pending: the inserter is about to publish
    }
  }

  /// The interned key for `id`. Storage is pointer-stable for the
  /// interner's lifetime. The caller must have received `id` through a
  /// synchronized channel (this table, or any release/acquire handoff
  /// downstream of the inserting thread).
  std::span<const int> Get(int id) const {
    const Entry& e = SegmentOf(id)[id & (kSegSize - 1)];
    return std::span<const int>(e.data, e.len);
  }

  /// The cached hash of id's key (work distribution by key-hash ownership).
  std::uint64_t HashOf(int id) const {
    return SegmentOf(id)[id & (kSegSize - 1)].hash;
  }

  /// Number of interned keys. An acquire read: every id < size() returned
  /// here is safe to Get from the calling thread.
  int size() const {
    const int n = count_.load(std::memory_order_acquire);
    return n < static_cast<int>(max_entries_) ? n
                                              : static_cast<int>(max_entries_);
  }

  /// True when the table is at its fill limit but the id-space cap is not
  /// reached — i.e. Grow() (at a quiescent point) would make progress.
  /// False + a `full` TryIntern means max_entries itself is exhausted.
  bool NeedsGrow() const {
    return static_cast<std::size_t>(size()) >= fill_limit_ &&
           fill_limit_ < max_entries_;
  }

  /// True when occupancy crossed the proactive-growth threshold (half the
  /// fill limit); the engine grows at barriers before pressure develops.
  bool NearCapacity() const {
    return static_cast<std::size_t>(size()) * 2 >= fill_limit_;
  }

  /// True when the slot table is still below the id-space cap, i.e. Grow()
  /// can raise the fill limit at all.
  bool CanGrow() const { return fill_limit_ < max_entries_; }

  /// Quadruples the slot table and reinserts every entry (ids unchanged).
  /// Requires external quiescence: no concurrent calls of any kind.
  void Grow() {
    const std::size_t new_cap = (mask_ + 1) * 4;
    AllocateTable(new_cap);
    const int n = size();
    for (int id = 0; id < n; ++id) {
      const Entry& e = SegmentOf(id)[id & (kSegSize - 1)];
      std::size_t i = e.hash & mask_;
      while (table_[i].load(std::memory_order_relaxed) != kEmpty) {
        i = (i + 1) & mask_;
      }
      table_[i].store(id, std::memory_order_relaxed);
    }
    // Publish the rebuilt table to the (quiescent) world; the barrier that
    // restarts the workers is the real synchronization point.
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

 private:
  static constexpr int kEmpty = -1;
  static constexpr int kPending = -2;
  static constexpr std::size_t kSegBits = 12;
  static constexpr std::size_t kSegSize = std::size_t{1} << kSegBits;

  struct Entry {
    const int* data = nullptr;
    std::uint32_t len = 0;
    std::uint64_t hash = 0;
  };

  struct Pool {
    std::vector<std::unique_ptr<int[]>> chunks;
    std::size_t used = 0;
    std::size_t cap = 0;
  };

  void AllocateTable(std::size_t cap) {
    table_ = std::make_unique<std::atomic<int>[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      table_[i].store(kEmpty, std::memory_order_relaxed);
    }
    mask_ = cap - 1;
    const std::size_t limit = cap - cap / 4;  // 75% + claim-race slack below
    fill_limit_ = limit < max_entries_ ? limit : max_entries_;
  }

  bool EntryEquals(int id, std::uint64_t h, std::span<const int> key) const {
    const Entry& e = SegmentOf(id)[id & (kSegSize - 1)];
    return e.hash == h && e.len == key.size() &&
           (key.empty() ||
            std::memcmp(e.data, key.data(), key.size() * sizeof(int)) == 0);
  }

  Entry* SegmentOf(int id) const {
    return segs_[static_cast<std::size_t>(id) >> kSegBits].load(
        std::memory_order_acquire);
  }

  Entry* EnsureSegment(int id) {
    const std::size_t seg = static_cast<std::size_t>(id) >> kSegBits;
    Entry* p = segs_[seg].load(std::memory_order_acquire);
    if (p != nullptr) return p;
    std::lock_guard<std::mutex> lock(seg_mutex_);
    p = segs_[seg].load(std::memory_order_acquire);
    if (p == nullptr) {
      p = new Entry[kSegSize];
      segs_[seg].store(p, std::memory_order_release);
    }
    return p;
  }

  const int* CopyKey(int thread, std::span<const int> key) {
    if (key.empty()) return nullptr;  // a fresh pool has no chunk to point at
    Pool& pool = pools_[static_cast<std::size_t>(thread)];
    if (pool.used + key.size() > pool.cap) {
      std::size_t chunk = kSegSize * 4;
      if (chunk < key.size()) chunk = key.size();
      pool.chunks.push_back(std::make_unique<int[]>(chunk));
      pool.used = 0;
      pool.cap = chunk;
    }
    int* dst = pool.chunks.back().get() + pool.used;
    if (!key.empty()) std::memcpy(dst, key.data(), key.size() * sizeof(int));
    pool.used += key.size();
    return dst;
  }

  std::size_t max_entries_;
  std::unique_ptr<std::atomic<int>[]> table_;
  std::size_t mask_ = 0;        ///< capacity - 1; mutated only in Grow()
  std::size_t fill_limit_ = 0;  ///< mutated only in Grow()
  std::atomic<int> count_{0};
  std::unique_ptr<std::atomic<Entry*>[]> segs_;
  std::size_t num_seg_slots_ = 0;
  std::mutex seg_mutex_;
  std::vector<Pool> pools_;
};

/// Segmented, write-once side table indexed by ConcurrentInterner ids:
/// segments are allocated on demand (mutex-guarded, published with a
/// release store) and never move, so `Get` references stay valid. The
/// synchronization contract piggybacks on the interner's: the id winner
/// writes `Slot(id)` inside its init callback (before the id is
/// published), every other thread only reads — through an id it received
/// over a release/acquire channel. Entries holding atomics (e.g. memo
/// cells) may instead be mutated through their own atomic operations.
template <typename T>
class ConcurrentLog {
 public:
  explicit ConcurrentLog(std::size_t max_entries) {
    num_seg_slots_ = (max_entries >> kSegBits) + 1;
    segs_ = std::make_unique<std::atomic<T*>[]>(num_seg_slots_);
    for (std::size_t i = 0; i < num_seg_slots_; ++i) {
      segs_[i].store(nullptr, std::memory_order_relaxed);
    }
  }

  ~ConcurrentLog() {
    for (std::size_t i = 0; i < num_seg_slots_; ++i) {
      delete[] segs_[i].load(std::memory_order_relaxed);
    }
  }

  ConcurrentLog(const ConcurrentLog&) = delete;
  ConcurrentLog& operator=(const ConcurrentLog&) = delete;

  /// The (default-constructed until written) cell for `id`, allocating its
  /// segment if needed. Safe from any thread; writing the returned
  /// reference is the caller's synchronization problem (see class comment).
  T& Slot(int id) {
    const std::size_t seg = static_cast<std::size_t>(id) >> kSegBits;
    XTC_CHECK(seg < num_seg_slots_);
    T* p = segs_[seg].load(std::memory_order_acquire);
    if (p == nullptr) {
      std::lock_guard<std::mutex> lock(mutex_);
      p = segs_[seg].load(std::memory_order_acquire);
      if (p == nullptr) {
        p = new T[kSegSize]();
        segs_[seg].store(p, std::memory_order_release);
      }
    }
    return p[id & (kSegSize - 1)];
  }

  const T& Get(int id) const {
    return segs_[static_cast<std::size_t>(id) >> kSegBits].load(
        std::memory_order_acquire)[id & (kSegSize - 1)];
  }

 private:
  static constexpr std::size_t kSegBits = 12;
  static constexpr std::size_t kSegSize = std::size_t{1} << kSegBits;

  std::unique_ptr<std::atomic<T*>[]> segs_;
  std::size_t num_seg_slots_ = 0;
  std::mutex mutex_;
};

/// Segmented atomic flag log: the parallel engine's antichain tombstones
/// (config id → "displaced, skip expanding"). Unlike ConcurrentLog<T>,
/// Test() tolerates ids whose segment was never allocated — most configs
/// are never tombstoned, and the reader side must not pay an allocation
/// (or a null-deref) to learn that. Set() uses exchange so each id's
/// displacement is observed by exactly one caller (the engine counts
/// displacements from Set's return value).
///
/// Tombstones are monotone (set-only) and advisory: a racing worker that
/// expands a config before observing its tombstone does sound extra work,
/// so relaxed ordering suffices.
class TombstoneLog {
 public:
  explicit TombstoneLog(std::size_t max_entries) {
    num_seg_slots_ = (max_entries >> kSegBits) + 1;
    segs_ = std::make_unique<std::atomic<std::atomic<std::uint8_t>*>[]>(
        num_seg_slots_);
    for (std::size_t i = 0; i < num_seg_slots_; ++i) {
      segs_[i].store(nullptr, std::memory_order_relaxed);
    }
  }

  ~TombstoneLog() {
    for (std::size_t i = 0; i < num_seg_slots_; ++i) {
      delete[] segs_[i].load(std::memory_order_relaxed);
    }
  }

  TombstoneLog(const TombstoneLog&) = delete;
  TombstoneLog& operator=(const TombstoneLog&) = delete;

  /// Whether `id` was tombstoned. False (without allocating) when the
  /// segment does not exist yet.
  bool Test(int id) const {
    const std::atomic<std::uint8_t>* seg =
        segs_[static_cast<std::size_t>(id) >> kSegBits].load(
            std::memory_order_acquire);
    if (seg == nullptr) return false;
    return seg[id & (kSegSize - 1)].load(std::memory_order_relaxed) != 0;
  }

  /// Tombstones `id`; returns whether this call flipped it (exactly one
  /// caller per id sees true).
  bool Set(int id) {
    std::atomic<std::uint8_t>* seg = EnsureSegment(id);
    return seg[id & (kSegSize - 1)].exchange(1, std::memory_order_relaxed) ==
           0;
  }

 private:
  static constexpr std::size_t kSegBits = 12;
  static constexpr std::size_t kSegSize = std::size_t{1} << kSegBits;

  std::atomic<std::uint8_t>* EnsureSegment(int id) {
    const std::size_t seg = static_cast<std::size_t>(id) >> kSegBits;
    XTC_CHECK(seg < num_seg_slots_);
    std::atomic<std::uint8_t>* p = segs_[seg].load(std::memory_order_acquire);
    if (p == nullptr) {
      std::lock_guard<std::mutex> lock(mutex_);
      p = segs_[seg].load(std::memory_order_acquire);
      if (p == nullptr) {
        p = new std::atomic<std::uint8_t>[kSegSize]();
        segs_[seg].store(p, std::memory_order_release);
      }
    }
    return p;
  }

  std::unique_ptr<std::atomic<std::atomic<std::uint8_t>*>[]> segs_;
  std::size_t num_seg_slots_ = 0;
  std::mutex mutex_;
};

}  // namespace xtc

#endif  // XTC_BASE_CONCURRENT_INTERNER_H_
