#ifndef XTC_BASE_STATE_SET_H_
#define XTC_BASE_STATE_SET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace xtc {

/// A packed set of small non-negative integers (automaton states, alphabet
/// symbols) stored as contiguous 64-bit words. Every PTIME algorithm in the
/// paper bottoms out in set-of-states fixpoints — NFA reachability (the
/// Lemma 14 engines), NTA emptiness/finiteness (Proposition 4), the
/// Section 4 determinization — and those fixpoints live or die by the cost
/// of membership tests, unions, and iteration. The word-parallel kernel
/// here replaces bit-at-a-time `std::vector<bool>` in all of them: union,
/// intersection, subtraction, emptiness, and popcount all run 64 states per
/// instruction, and set-bit iteration uses countr_zero rather than a
/// per-index probe.
///
/// The value-type interface mirrors `std::vector<bool>` closely enough
/// (size/operator[]) that reference implementations remain easy to write
/// against it in tests; mutation goes through named methods so the
/// word-parallel paths stay explicit.
class StateSet {
 public:
  StateSet() = default;
  /// A set over the universe {0, .., num_bits-1}, initially empty (or full
  /// when `value` is true).
  explicit StateSet(int num_bits, bool value = false) {
    Assign(num_bits, value);
  }

  /// Resets to a universe of `num_bits` bits, all equal to `value`.
  void Assign(int num_bits, bool value) {
    num_bits_ = num_bits;
    words_.assign(WordCount(num_bits), value ? ~std::uint64_t{0} : 0);
    if (value) ClearPadding();
  }

  /// Grows (or shrinks) the universe, preserving existing members.
  void Resize(int num_bits) {
    num_bits_ = num_bits;
    words_.resize(WordCount(num_bits), 0);
    ClearPadding();
  }

  int size_bits() const { return num_bits_; }
  /// vector<bool>-compatible spelling; used by generic/test code.
  std::size_t size() const { return static_cast<std::size_t>(num_bits_); }
  bool empty_universe() const { return num_bits_ == 0; }

  bool Test(int i) const {
    return (words_[WordOf(i)] >> BitOf(i)) & std::uint64_t{1};
  }
  /// vector<bool>-compatible membership test.
  bool operator[](int i) const { return Test(i); }

  void Set(int i) { words_[WordOf(i)] |= std::uint64_t{1} << BitOf(i); }
  void Reset(int i) { words_[WordOf(i)] &= ~(std::uint64_t{1} << BitOf(i)); }
  void SetTo(int i, bool value) {
    if (value) {
      Set(i);
    } else {
      Reset(i);
    }
  }
  /// Sets bit i and reports whether it was previously clear. The
  /// test-and-set of every BFS/worklist loop, in one word access.
  bool TestAndSet(int i) {
    std::uint64_t& w = words_[WordOf(i)];
    const std::uint64_t mask = std::uint64_t{1} << BitOf(i);
    if ((w & mask) != 0) return false;
    w |= mask;
    return true;
  }

  /// Empties the set without changing the universe.
  void Clear() {
    for (std::uint64_t& w : words_) w = 0;
  }

  bool Any() const {
    for (std::uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }
  bool None() const { return !Any(); }

  int Count() const {
    int n = 0;
    for (std::uint64_t w : words_) n += std::popcount(w);
    return n;
  }

  /// this |= other; returns whether this changed (fixpoint loops test it).
  bool UnionWith(const StateSet& other) {
    std::uint64_t changed = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t before = words_[i];
      const std::uint64_t after = before | other.words_[i];
      words_[i] = after;
      changed |= before ^ after;
    }
    return changed != 0;
  }

  /// this &= other.
  void IntersectWith(const StateSet& other) {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] &= other.words_[i];
    }
  }

  /// this &= ~other.
  void SubtractWith(const StateSet& other) {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] &= ~other.words_[i];
    }
  }

  /// Whether the sets share a member (word-parallel early-out).
  bool Intersects(const StateSet& other) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & other.words_[i]) != 0) return true;
    }
    return false;
  }

  /// Whether every member of `other` is a member of this set.
  bool ContainsAll(const StateSet& other) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if ((other.words_[i] & ~words_[i]) != 0) return false;
    }
    return true;
  }

  /// Calls f(int bit) for every member, in increasing order, via
  /// countr_zero over the packed words.
  template <typename F>
  void ForEach(F&& f) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      std::uint64_t w = words_[i];
      while (w != 0) {
        const int bit = std::countr_zero(w);
        f(static_cast<int>(i * 64) + bit);
        w &= w - 1;
      }
    }
  }

  /// The members as a sorted vector (interner keys, witnesses).
  std::vector<int> ToVector() const {
    std::vector<int> out;
    out.reserve(static_cast<std::size_t>(Count()));
    ForEach([&out](int b) { out.push_back(b); });
    return out;
  }

  friend bool operator==(const StateSet& a, const StateSet& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }

  /// FNV-1a-style hash over the packed words with 64-bit avalanche mixing;
  /// suitable for hashed subset interning.
  std::uint64_t Hash() const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint64_t w : words_) {
      h = (h ^ Mix(w)) * 0x100000001b3ULL;
    }
    return h ^ static_cast<std::uint64_t>(num_bits_);
  }

  /// Builds from a sorted, duplicate-free member list over the universe
  /// {0, .., universe-1} — the shape interner keys and ScratchSet
  /// extractions already have.
  static StateSet FromSorted(std::span<const int> sorted, int universe) {
    StateSet out(universe);
    for (const int i : sorted) out.Set(i);
    return out;
  }

  static StateSet FromBools(const std::vector<bool>& bools) {
    StateSet out(static_cast<int>(bools.size()));
    for (std::size_t i = 0; i < bools.size(); ++i) {
      if (bools[i]) out.Set(static_cast<int>(i));
    }
    return out;
  }

  std::vector<bool> ToBools() const {
    std::vector<bool> out(static_cast<std::size_t>(num_bits_), false);
    ForEach([&out](int b) { out[static_cast<std::size_t>(b)] = true; });
    return out;
  }

 private:
  static std::size_t WordCount(int num_bits) {
    return (static_cast<std::size_t>(num_bits) + 63) / 64;
  }
  static std::size_t WordOf(int i) {
    return static_cast<std::size_t>(i) / 64;
  }
  static unsigned BitOf(int i) { return static_cast<unsigned>(i) % 64; }

  static std::uint64_t Mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  // Bits past num_bits_ in the last word stay zero so that ==, Hash, Count
  // and friends never see garbage.
  void ClearPadding() {
    const unsigned rem = static_cast<unsigned>(num_bits_) % 64;
    if (rem != 0 && !words_.empty()) {
      words_.back() &= (~std::uint64_t{0}) >> (64 - rem);
    }
  }

  int num_bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace xtc

#endif  // XTC_BASE_STATE_SET_H_
