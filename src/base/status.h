#ifndef XTC_BASE_STATUS_H_
#define XTC_BASE_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "src/base/logging.h"

namespace xtc {

/// Error category for recoverable failures (parsing, ill-formed inputs,
/// out-of-scope requests). Library code never throws; fallible operations
/// return Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kUnimplemented,
  kFailedPrecondition,
  kNotFound,
  kResourceExhausted,
};

/// A success-or-error value in the style of absl::Status.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "INVALID_ARGUMENT: unbalanced ')'".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

Status InvalidArgumentError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status FailedPreconditionError(std::string message);
Status NotFoundError(std::string message);
Status ResourceExhaustedError(std::string message);

/// Either a value of type T or an error Status. Minimal analogue of
/// absl::StatusOr for this project.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    XTC_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    XTC_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    XTC_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    XTC_CHECK_MSG(ok(), status_.ToString().c_str());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Evaluates an expression returning Status and propagates any error to the
// caller. Replaces hand-rolled `Status s = ...; if (!s.ok()) return s;`
// chains.
#define XTC_RETURN_IF_ERROR(expr)                        \
  do {                                                   \
    ::xtc::Status xtc_status_macro_tmp_ = (expr);        \
    if (!xtc_status_macro_tmp_.ok()) {                   \
      return xtc_status_macro_tmp_;                      \
    }                                                    \
  } while (0)

// Evaluates an expression returning StatusOr<T>; on success moves the value
// into `lhs` (a declaration or an existing lvalue), on error propagates the
// Status. Usage: XTC_ASSIGN_OR_RETURN(Dfa det, Dfa::FromNfa(nfa, budget));
#define XTC_STATUS_MACROS_CONCAT_INNER_(x, y) x##y
#define XTC_STATUS_MACROS_CONCAT_(x, y) \
  XTC_STATUS_MACROS_CONCAT_INNER_(x, y)

#define XTC_ASSIGN_OR_RETURN(lhs, rexpr)                                     \
  XTC_ASSIGN_OR_RETURN_IMPL_(                                                \
      XTC_STATUS_MACROS_CONCAT_(xtc_status_or_tmp_, __LINE__), lhs, rexpr)

#define XTC_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                               \
  if (!statusor.ok()) {                                  \
    return statusor.status();                            \
  }                                                      \
  lhs = *std::move(statusor)

}  // namespace xtc

#endif  // XTC_BASE_STATUS_H_
