#include "src/base/arena.h"

#include <algorithm>

#include "src/base/budget.h"
#include "src/base/logging.h"

namespace xtc {

void* Arena::Allocate(std::size_t bytes, std::size_t align) {
  XTC_CHECK(align != 0 && (align & (align - 1)) == 0);
  if (bytes == 0) bytes = 1;
  if (budget_ != nullptr) budget_->ChargeBytes(bytes);
  if (!blocks_.empty()) {
    Block& b = blocks_.back();
    // Align the absolute address, not the block offset: the block base has
    // no alignment guarantee beyond operator new's.
    std::uintptr_t base = reinterpret_cast<std::uintptr_t>(b.data.get());
    std::size_t offset = ((base + b.used + align - 1) & ~(align - 1)) - base;
    if (offset + bytes <= b.size) {
      b.used = offset + bytes;
      bytes_allocated_ += bytes;
      return b.data.get() + offset;
    }
  }
  std::size_t block_size = std::max(kBlockSize, bytes + align);
  Block b;
  b.data = std::make_unique<char[]>(block_size);
  b.size = block_size;
  blocks_.push_back(std::move(b));
  Block& nb = blocks_.back();
  std::size_t offset =
      ((reinterpret_cast<std::uintptr_t>(nb.data.get()) + align - 1) &
       ~(align - 1)) -
      reinterpret_cast<std::uintptr_t>(nb.data.get());
  nb.used = offset + bytes;
  bytes_allocated_ += bytes;
  return nb.data.get() + offset;
}

}  // namespace xtc
