#include "src/base/budget.h"

#include <string>

namespace xtc {

const char* ExhaustionCauseName(ExhaustionCause cause) {
  switch (cause) {
    case ExhaustionCause::kNone:
      return "none";
    case ExhaustionCause::kDeadline:
      return "deadline";
    case ExhaustionCause::kSteps:
      return "steps";
    case ExhaustionCause::kBytes:
      return "bytes";
    case ExhaustionCause::kInjected:
      return "injected";
  }
  return "unknown";
}

Budget Budget::WithDeadline(std::chrono::milliseconds deadline) {
  Budget b;
  b.set_deadline(deadline);
  return b;
}

Budget Budget::WithMaxSteps(std::uint64_t steps) {
  Budget b;
  b.set_max_steps(steps);
  return b;
}

Budget Budget::WithMaxBytes(std::uint64_t bytes) {
  Budget b;
  b.set_max_bytes(bytes);
  return b;
}

void Budget::set_deadline(std::chrono::milliseconds deadline) {
  start_ = std::chrono::steady_clock::now();
  deadline_duration_ = deadline;
  deadline_at_ = start_ + deadline;
}

void Budget::set_deadline_until(std::chrono::steady_clock::time_point at) {
  start_ = std::chrono::steady_clock::now();
  deadline_duration_ = std::chrono::duration_cast<std::chrono::milliseconds>(
      at > start_ ? at - start_ : std::chrono::steady_clock::duration::zero());
  deadline_at_ = at;
}

std::optional<double> Budget::remaining_ms() const {
  if (!deadline_at_.has_value()) return std::nullopt;
  double left = std::chrono::duration<double, std::milli>(
                    *deadline_at_ - std::chrono::steady_clock::now())
                    .count();
  return left > 0 ? left : 0;
}

double Budget::elapsed_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

std::optional<std::chrono::milliseconds> Budget::deadline() const {
  if (!deadline_at_.has_value()) return std::nullopt;
  return deadline_duration_;
}

Status Budget::Exhaust(ExhaustionCause cause, const char* where) {
  cause_ = cause;
  exhausted_status_ = ResourceExhaustedError(
      std::string("budget exhausted (") + ExhaustionCauseName(cause) +
      ") in " + where + " after " + std::to_string(checkpoints_) +
      " checkpoints, " + std::to_string(bytes_charged_) + " bytes");
  return exhausted_status_;
}

Status Budget::ChargeSteps(std::uint64_t steps, const char* where) {
  if (cause_ != ExhaustionCause::kNone) return exhausted_status_;
  const std::uint64_t before = checkpoints_;
  checkpoints_ += steps;
  if (fail_at_ != 0 && before < fail_at_ && checkpoints_ >= fail_at_) {
    return Exhaust(ExhaustionCause::kInjected, where);
  }
  if (max_steps_ != 0 && checkpoints_ > max_steps_) {
    return Exhaust(ExhaustionCause::kSteps, where);
  }
  if (max_bytes_ != 0 && bytes_charged_ > max_bytes_) {
    return Exhaust(ExhaustionCause::kBytes, where);
  }
  if (deadline_at_.has_value() &&
      std::chrono::steady_clock::now() > *deadline_at_) {
    return Exhaust(ExhaustionCause::kDeadline, where);
  }
  return Status::Ok();
}

Status Budget::Check(const char* where) {
  if (cause_ != ExhaustionCause::kNone) return exhausted_status_;
  ++checkpoints_;
  if (fail_at_ != 0 && checkpoints_ == fail_at_) {
    return Exhaust(ExhaustionCause::kInjected, where);
  }
  if (max_steps_ != 0 && checkpoints_ > max_steps_) {
    return Exhaust(ExhaustionCause::kSteps, where);
  }
  if (max_bytes_ != 0 && bytes_charged_ > max_bytes_) {
    return Exhaust(ExhaustionCause::kBytes, where);
  }
  if (deadline_at_.has_value() && (checkpoints_ % kClockStride) == 0 &&
      std::chrono::steady_clock::now() > *deadline_at_) {
    return Exhaust(ExhaustionCause::kDeadline, where);
  }
  return Status::Ok();
}

}  // namespace xtc
