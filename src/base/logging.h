#ifndef XTC_BASE_LOGGING_H_
#define XTC_BASE_LOGGING_H_

#include <cstdio>
#include <cstdlib>

// Checked assertions for invariant violations. Following the session style
// guides we do not use exceptions; a failed check is a programming error and
// aborts with a diagnostic. Checks are always on (they guard correctness of
// decision procedures, not hot inner loops).

#define XTC_CHECK(cond)                                                      \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "XTC_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define XTC_CHECK_MSG(cond, msg)                                             \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "XTC_CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #cond, msg);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define XTC_CHECK_EQ(a, b) XTC_CHECK((a) == (b))
#define XTC_CHECK_NE(a, b) XTC_CHECK((a) != (b))
#define XTC_CHECK_LT(a, b) XTC_CHECK((a) < (b))
#define XTC_CHECK_LE(a, b) XTC_CHECK((a) <= (b))
#define XTC_CHECK_GT(a, b) XTC_CHECK((a) > (b))
#define XTC_CHECK_GE(a, b) XTC_CHECK((a) >= (b))

#endif  // XTC_BASE_LOGGING_H_
