#include "src/service/stream.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

namespace xtc {

StreamSession::StreamSession(TypecheckService* service,
                             ServiceResponse response, bool record)
    : service_(service), response_(std::move(response)), record_(record) {
  latched_ = response_.status;
  if (latched_.ok()) {
    // A prefailed session always carries a non-ok status; keep the
    // invariant even if a caller hands us an ok one.
    latched_ = InvalidArgumentError("stream session was never opened");
    response_.status = latched_;
  }
}

StreamSession::StreamSession(
    TypecheckService* service, const ServiceRequest& request,
    AdmissionTier tier, std::chrono::steady_clock::time_point admit_time)
    : service_(service) {
  response_.id = request.id;
  response_.op = request.op;
  response_.attempt = request.attempt;
  response_.tier = tier;
  response_.queue_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - admit_time)
                           .count();

  // The same checkpoint ladder as the queued Execute path, so the fault
  // sweep proves mid-stream failures also end in well-formed responses.
  if (Injected("execute")) {
    Latch(ResourceExhaustedError("injected fault at 'execute'"));
    return;
  }

  std::uint64_t deadline_ms = request.deadline_ms != 0
                                  ? request.deadline_ms
                                  : service_->options_.default_deadline_ms;
  if (deadline_ms != 0) {
    budget_.set_deadline_until(admit_time +
                               std::chrono::milliseconds(deadline_ms));
    budget_ptr_ = &budget_;
    if (budget_.remaining_ms().value_or(1) <= 0) {
      service_->expired_in_queue_.fetch_add(1, std::memory_order_relaxed);
      response_.shed_reason = ShedReason::kDeadline;
      Latch(ResourceExhaustedError(
          "deadline expired after " + std::to_string(deadline_ms) +
          "ms before the stream opened"));
      return;
    }
  }
  auto compile_cap_ms = [&]() -> std::uint64_t {
    if (budget_ptr_ == nullptr) return 0;
    std::optional<double> left = budget_ptr_->remaining_ms();
    if (!left.has_value()) return 0;
    return static_cast<std::uint64_t>(std::llround(std::max(*left, 1.0)));
  };

  StatusOr<std::vector<std::string>> universe = CollectUniverse(request);
  if (!universe.ok()) {
    Latch(universe.status());
    return;
  }
  universe_ = service_->cache_.GetOrCreateAlphabet(*universe);

  if (Injected("compile")) {
    Latch(ResourceExhaustedError("injected fault at 'compile'"));
    return;
  }

  bool hit = false;
  if (request.op == ServiceOp::kValidateStream) {
    StatusOr<std::shared_ptr<const CompiledSchema>> schema =
        service_->cache_.GetOrCompileSchema(request.schema, universe_, &hit,
                                            compile_cap_ms());
    if (!schema.ok()) {
      Latch(schema.status());
      return;
    }
    schema_ = *std::move(schema);
  } else {
    StatusOr<std::shared_ptr<const CompiledTransducer>> td =
        service_->cache_.GetOrCompileTransducer(request.transducer, universe_,
                                                &hit, compile_cap_ms());
    if (!td.ok()) {
      Latch(td.status());
      return;
    }
    compiled_transducer_ = *std::move(td);
  }
  (hit ? response_.cache_hits : response_.cache_misses) += 1;

  if (Injected("cache-adopt")) {
    Latch(ResourceExhaustedError("injected fault at 'cache-adopt'"));
    return;
  }

  // The document's labels go into a request-private alphabet seeded with
  // the universe, exactly like the DOM paths: known names line up with
  // artifact ids, unknown ones get ids past the universe and range-reject.
  for (int i = 0; i < universe_->size(); ++i) local_.Intern(universe_->Name(i));

  XmlEventReader::Options reader_options;
  reader_options.budget = budget_ptr_;
  reader_.emplace(&local_, reader_options);

  if (request.op == ServiceOp::kValidateStream) {
    StreamValidator::Options options;
    options.budget = budget_ptr_;
    validator_.emplace(schema_->dtd.get(), options);
  } else {
    sink_.emplace(&output_);
    StreamTransducer::Options options;
    options.budget = budget_ptr_;
    // The streaming executor runs the selector-free compilation (identical
    // pointer when the transducer never had selectors), mirroring the
    // typecheck engines; selectors need subtree replay a stream lacks.
    StatusOr<std::unique_ptr<StreamTransducer>> t = StreamTransducer::Create(
        compiled_transducer_->selector_free.get(), &*sink_, options);
    if (!t.ok()) {
      Latch(t.status());
      return;
    }
    transducer_ = *std::move(t);
  }
}

StreamSession::~StreamSession() {
  // An abandoned session still resolves: stats count every opened stream.
  if (!finished_) Finish();
}

bool StreamSession::Injected(const char* checkpoint) {
  ServiceFaultInjector* injector = service_->options_.fault_injector;
  return injector != nullptr && injector->Check(checkpoint);
}

void StreamSession::Latch(Status status) {
  if (latched_.ok() && !status.ok()) latched_ = std::move(status);
}

void StreamSession::Pump() {
  if (!reader_.has_value()) return;
  XmlEvent event;
  while (latched_.ok()) {
    StatusOr<XmlEventReader::ReadResult> r = reader_->Next(&event);
    if (!r.ok()) {
      Latch(r.status());
      return;
    }
    if (*r != XmlEventReader::ReadResult::kEvent) return;
    Status s = validator_.has_value() ? validator_->OnEvent(event)
                                     : transducer_->OnEvent(event);
    if (!s.ok()) Latch(s);
  }
}

void StreamSession::Push(std::string_view chunk) {
  if (finished_ || !latched_.ok() || !reader_.has_value()) return;
  reader_->Push(chunk);
  Pump();
}

ServiceResponse StreamSession::Finish() {
  if (finished_) return response_;
  finished_ = true;
  if (holds_stream_slot_) {
    holds_stream_slot_ = false;
    service_->ReleaseStreamSlot();
  }
  if (latched_.ok() && reader_.has_value()) {
    reader_->FinishInput();
    Pump();
  }
  if (latched_.ok() && validator_.has_value()) {
    response_.valid = validator_->AtEndOfDocument();
  }
  if (latched_.ok() && transducer_ != nullptr) {
    Status s = transducer_->Finish();
    if (s.ok()) {
      response_.output = std::move(output_);
    } else {
      Latch(std::move(s));
    }
  }
  if (record_ && Injected("respond")) {
    latched_ = ResourceExhaustedError("injected fault at 'respond'");
  }
  response_.status = latched_;
  response_.elapsed_ms = timer_.elapsed_ms();
  if (record_) {
    service_->latency_.Record(response_.elapsed_ms);
    service_->RecordCost(response_.elapsed_ms);
    (response_.status.ok() ? service_->completed_ : service_->failed_)
        .fetch_add(1, std::memory_order_relaxed);
  }
  return response_;
}

std::unique_ptr<StreamSession> TypecheckService::OpenStream(
    ServiceRequest request) {
  auto prefailed = [&](ServiceResponse response) {
    return std::unique_ptr<StreamSession>(
        new StreamSession(this, std::move(response), /*record=*/false));
  };
  if (!IsStreamOp(request.op)) {
    ServiceResponse response;
    response.id = request.id;
    response.op = request.op;
    response.attempt = request.attempt;
    response.status = InvalidArgumentError(
        "OpenStream requires a validate_stream or transform_stream request");
    return prefailed(std::move(response));
  }
  if (options_.fault_injector != nullptr &&
      options_.fault_injector->Check("enqueue")) {
    return prefailed(
        ShedResponse(request, ShedReason::kFault, /*retry_after_ms=*/0));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_ || stopping_) {
      return prefailed(
          ShedResponse(request, ShedReason::kStopping, /*retry_after_ms=*/0));
    }
    // Backpressure: streams bypass the bounded worker queue, so the open-
    // session count is their queue. Past the cap the open is shed with a
    // retry hint (same clamp as queue sheds); a slot frees at Finish.
    if (options_.max_open_streams != 0 &&
        open_streams_ >= options_.max_open_streams) {
      constexpr double kMinRetryAfterMs = 10, kMaxRetryAfterMs = 5000;
      const std::uint64_t hint = static_cast<std::uint64_t>(std::llround(
          std::clamp(EstimatedWaitMsLocked(), kMinRetryAfterMs,
                     kMaxRetryAfterMs)));
      return prefailed(ShedResponse(request, ShedReason::kStreamLimit, hint));
    }
    ++open_streams_;
  }
  // Streams bypass the worker queue (their bytes arrive interactively on
  // the caller's thread), so admission is just the drain gate plus the
  // open-session cap; they still count as exact-tier traffic in the stats.
  submitted_.fetch_add(1, std::memory_order_relaxed);
  tier_exact_.fetch_add(1, std::memory_order_relaxed);
  auto session = std::unique_ptr<StreamSession>(new StreamSession(
      this, request, AdmissionTier::kExact, std::chrono::steady_clock::now()));
  session->holds_stream_slot_ = true;
  return session;
}

void TypecheckService::ReleaseStreamSlot() {
  std::lock_guard<std::mutex> lock(mu_);
  if (open_streams_ > 0) --open_streams_;
}

}  // namespace xtc
