#include "src/service/service.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <utility>

#include "src/base/arena.h"
#include "src/core/approximate.h"
#include "src/core/relab.h"
#include "src/core/typecheck.h"
#include "src/service/stream.h"
#include "src/td/exec.h"
#include "src/tree/codec.h"

namespace xtc {
namespace {

// Retry hints are clamped so clients neither spin (sub-10ms retries on a
// loaded service) nor stall (multi-second waits on a momentary spike).
constexpr std::uint64_t kMinRetryAfterMs = 10;
constexpr std::uint64_t kMaxRetryAfterMs = 5000;

}  // namespace

void LatencyHistogram::Record(double ms) {
  auto ns = static_cast<std::uint64_t>(ms * 1e6);
  if (ns == 0) ns = 1;
  int bucket = std::bit_width(ns) - 1;  // floor(log2(ns))
  if (bucket >= kBuckets) bucket = kBuckets - 1;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::Percentile(double p) const {
  std::uint64_t counts[kBuckets];
  std::uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0;
  auto rank = static_cast<std::uint64_t>(std::ceil(p / 100.0 * total));
  if (rank < 1) rank = 1;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) {
      // Geometric midpoint of [2^i, 2^(i+1)) ns, reported in ms.
      return std::exp2(i + 0.5) / 1e6;
    }
  }
  return max_ms();
}

double LatencyHistogram::max_ms() const {
  return max_ns_.load(std::memory_order_relaxed) / 1e6;
}

TypecheckService::TypecheckService(const Options& options)
    : options_(options),
      cache_(options.cache),
      cost_ewma_ms_(options.cost_prior_ms > 0 ? options.cost_prior_ms : 1.0) {
  workers_.reserve(static_cast<std::size_t>(options_.num_threads));
  for (int i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TypecheckService::~TypecheckService() {
  // Destruction is an immediate drain: admission closes, queued-but-
  // unstarted requests are failed cleanly, every future is fulfilled.
  Stop(std::chrono::milliseconds(0));
}

double TypecheckService::EstimatedWaitMsLocked() const {
  int lanes = std::max(options_.num_threads, 1);
  return (static_cast<double>(queue_.size()) +
          static_cast<double>(in_flight_)) *
         cost_ewma_ms_ / static_cast<double>(lanes);
}

void TypecheckService::RecordCost(double elapsed_ms) {
  double alpha = options_.cost_ewma_alpha;
  if (alpha <= 0 || alpha > 1) alpha = 0.2;
  std::lock_guard<std::mutex> lock(mu_);
  cost_ewma_ms_ += alpha * (elapsed_ms - cost_ewma_ms_);
}

ServiceResponse TypecheckService::ShedResponse(const ServiceRequest& request,
                                               ShedReason reason,
                                               std::uint64_t retry_after_ms) {
  shed_.fetch_add(1, std::memory_order_relaxed);
  switch (reason) {
    case ShedReason::kQueueFull:
      shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ShedReason::kOverload:
      shed_overload_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ShedReason::kDeadline:
      shed_deadline_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ShedReason::kStopping:
      shed_stopping_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ShedReason::kFault:
      shed_fault_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ShedReason::kStreamLimit:
      shed_stream_limit_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ShedReason::kNone:
      break;
  }
  ServiceResponse response;
  response.id = request.id;
  response.op = request.op;
  response.attempt = request.attempt;
  response.tier = AdmissionTier::kRejected;
  response.shed_reason = reason;
  response.retry_after_ms = retry_after_ms;
  switch (reason) {
    case ShedReason::kStopping:
      response.status = ResourceExhaustedError("service shutting down");
      break;
    case ShedReason::kQueueFull:
      response.status = ResourceExhaustedError("request queue is full");
      break;
    case ShedReason::kOverload:
      response.status =
          ResourceExhaustedError("service overloaded; request shed");
      break;
    case ShedReason::kDeadline:
      response.status = ResourceExhaustedError(
          "predicted queue wait exceeds the request deadline");
      break;
    case ShedReason::kFault:
      response.status =
          ResourceExhaustedError("injected fault at service checkpoint");
      break;
    case ShedReason::kStreamLimit:
      response.status = ResourceExhaustedError(
          "too many concurrently open stream sessions");
      break;
    case ShedReason::kNone:
      response.status = ResourceExhaustedError("request shed");
      break;
  }
  return response;
}

std::future<ServiceResponse> TypecheckService::Submit(ServiceRequest request) {
  Job job;
  job.request = std::move(request);
  std::future<ServiceResponse> future = job.promise.get_future();

  if (options_.fault_injector != nullptr &&
      options_.fault_injector->Check("enqueue")) {
    job.promise.set_value(
        ShedResponse(job.request, ShedReason::kFault, /*retry_after_ms=*/0));
    return future;
  }

  ShedReason reason = ShedReason::kNone;
  std::uint64_t retry_hint = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t hint = static_cast<std::uint64_t>(std::llround(
        std::clamp(EstimatedWaitMsLocked(),
                   static_cast<double>(kMinRetryAfterMs),
                   static_cast<double>(kMaxRetryAfterMs))));
    if (draining_ || stopping_) {
      // Not retryable against this instance: the service is going away.
      reason = ShedReason::kStopping;
    } else if (queue_.size() >= options_.queue_capacity) {
      reason = ShedReason::kQueueFull;
      retry_hint = hint;
    } else {
      // Tiered admission: the load factor folds together how full the
      // queue is and how long the new request would wait relative to its
      // deadline (queue depth x smoothed per-request cost over the worker
      // lanes). One request degrades before the service does.
      double depth_load =
          options_.queue_capacity > 0
              ? static_cast<double>(queue_.size()) /
                    static_cast<double>(options_.queue_capacity)
              : 1.0;
      double est_wait_ms = EstimatedWaitMsLocked();
      std::uint64_t deadline_ms = job.request.deadline_ms != 0
                                      ? job.request.deadline_ms
                                      : options_.default_deadline_ms;
      double pressure =
          (deadline_ms != 0 && options_.num_threads > 0)
              ? est_wait_ms / static_cast<double>(deadline_ms)
              : 0.0;
      double load = std::max(depth_load, pressure);
      if (pressure >= 1.0) {
        // The request would (almost surely) expire before a worker picks
        // it up; shedding now is strictly kinder than queueing it to die.
        reason = ShedReason::kDeadline;
        retry_hint = hint;
      } else if (load >= options_.reject_load) {
        reason = ShedReason::kOverload;
        retry_hint = hint;
      } else {
        job.tier = (load >= options_.degrade_load &&
                    job.request.op == ServiceOp::kTypecheck)
                       ? AdmissionTier::kApproximate
                       : AdmissionTier::kExact;
        job.admit_time = std::chrono::steady_clock::now();
        (job.tier == AdmissionTier::kApproximate ? tier_approximate_
                                                 : tier_exact_)
            .fetch_add(1, std::memory_order_relaxed);
        queue_.push_back(std::move(job));
        submitted_.fetch_add(1, std::memory_order_relaxed);
        queue_cv_.notify_one();
        return future;
      }
    }
  }
  // Graceful shedding: the caller gets an immediate, well-formed response
  // with a shed reason and (when useful) a backoff hint instead of
  // unbounded queueing.
  job.promise.set_value(ShedResponse(job.request, reason, retry_hint));
  return future;
}

ServiceResponse TypecheckService::Process(const ServiceRequest& request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  tier_exact_.fetch_add(1, std::memory_order_relaxed);
  return Execute(request, AdmissionTier::kExact,
                 std::chrono::steady_clock::now());
}

void TypecheckService::WorkerLoop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_, nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    job.promise.set_value(Execute(job.request, job.tier, job.admit_time));
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (draining_ && queue_.empty() && in_flight_ == 0) {
        drain_cv_.notify_all();
      }
    }
  }
}

DrainReport TypecheckService::Stop(std::chrono::milliseconds drain_deadline) {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (stopped_) return drain_report_;

  DrainReport report;
  std::uint64_t done_before = completed_.load(std::memory_order_relaxed) +
                              failed_.load(std::memory_order_relaxed);
  std::deque<Job> cancelled;
  {
    std::unique_lock<std::mutex> lock(mu_);
    draining_ = true;  // Submit sheds with kStopping from here on
    report.clean = drain_cv_.wait_until(
        lock, std::chrono::steady_clock::now() + drain_deadline,
        [this] { return queue_.empty() && in_flight_ == 0; });
    stopping_ = true;
    cancelled.swap(queue_);
  }
  queue_cv_.notify_all();
  // In-flight work always runs to completion — per-request budgets bound
  // it; the drain deadline bounds queued-but-unstarted work only.
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();

  report.drained = completed_.load(std::memory_order_relaxed) +
                   failed_.load(std::memory_order_relaxed) - done_before;
  report.cancelled = cancelled.size();
  for (Job& job : cancelled) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    drain_cancelled_.fetch_add(1, std::memory_order_relaxed);
    ServiceResponse response;
    response.id = job.request.id;
    response.op = job.request.op;
    response.attempt = job.request.attempt;
    response.tier = AdmissionTier::kRejected;
    response.shed_reason = ShedReason::kStopping;
    response.status = ResourceExhaustedError("service shutting down");
    job.promise.set_value(std::move(response));
  }

  stopped_ = true;
  drain_report_ = report;
  return report;
}

ServiceResponse TypecheckService::Execute(
    const ServiceRequest& request, AdmissionTier tier,
    std::chrono::steady_clock::time_point admit_time) {
  if (IsStreamOp(request.op)) {
    // Inline-doc stream requests (queued or Process()ed) run the same
    // session the chunk transport uses; the whole document is just one
    // chunk. The session records latency/cost/completion stats itself.
    if (request.chunked) {
      ServiceResponse response;
      response.id = request.id;
      response.op = request.op;
      response.attempt = request.attempt;
      response.tier = tier;
      response.status = InvalidArgumentError(
          "chunked stream requests need a chunk transport (xtcd) or "
          "OpenStream; submit an inline 'doc' instead");
      failed_.fetch_add(1, std::memory_order_relaxed);
      return response;
    }
    StreamSession session(this, request, tier, admit_time);
    session.Push(request.doc);
    return session.Finish();
  }
  WallTimer timer;
  ServiceResponse response;
  response.id = request.id;
  response.op = request.op;
  response.attempt = request.attempt;
  response.tier = tier;
  response.queue_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - admit_time)
                          .count();

  ServiceFaultInjector* injector = options_.fault_injector;
  auto injected = [&](const char* checkpoint) {
    return injector != nullptr && injector->Check(checkpoint);
  };

  auto finish = [&](Status status) -> ServiceResponse {
    // The `respond` checkpoint proves that even a failure at the very
    // last step still yields a well-formed response line.
    if (injected("respond")) {
      status = ResourceExhaustedError("injected fault at 'respond'");
    }
    response.status = std::move(status);
    response.elapsed_ms = timer.elapsed_ms();
    latency_.Record(response.elapsed_ms);
    RecordCost(response.elapsed_ms);
    (response.status.ok() ? completed_ : failed_)
        .fetch_add(1, std::memory_order_relaxed);
    return std::move(response);
  };

  if (injected("execute")) {
    return finish(ResourceExhaustedError("injected fault at 'execute'"));
  }

  // The per-request governor lives and dies on this worker thread
  // (src/base/README.md: budgets never cross threads). Its deadline is
  // anchored at admission, so queue wait already counts against it.
  Budget budget;
  Budget* budget_ptr = nullptr;
  std::uint64_t deadline_ms = request.deadline_ms != 0
                                  ? request.deadline_ms
                                  : options_.default_deadline_ms;
  if (deadline_ms != 0) {
    budget.set_deadline_until(admit_time +
                              std::chrono::milliseconds(deadline_ms));
    budget_ptr = &budget;
    if (budget.remaining_ms().value_or(1) <= 0) {
      expired_in_queue_.fetch_add(1, std::memory_order_relaxed);
      response.shed_reason = ShedReason::kDeadline;
      return finish(ResourceExhaustedError(
          "deadline expired after " + std::to_string(deadline_ms) +
          "ms before execution started"));
    }
  }
  // Cap on subordinate compile work: the request's remaining patience,
  // rounded up so a nearly-expired deadline still caps rather than
  // disabling the cap (0 means "no cap" to the cache).
  auto compile_cap_ms = [&]() -> std::uint64_t {
    if (budget_ptr == nullptr) return 0;
    std::optional<double> left = budget_ptr->remaining_ms();
    if (!left.has_value()) return 0;
    return static_cast<std::uint64_t>(std::llround(std::max(*left, 1.0)));
  };

  StatusOr<std::vector<std::string>> universe = CollectUniverse(request);
  if (!universe.ok()) return finish(universe.status());
  std::shared_ptr<Alphabet> alphabet = cache_.GetOrCreateAlphabet(*universe);

  auto count_lookup = [&response](bool hit) {
    (hit ? response.cache_hits : response.cache_misses) += 1;
  };

  if (injected("compile")) {
    return finish(ResourceExhaustedError("injected fault at 'compile'"));
  }

  // Validate/transform parse the input document against a request-private
  // alphabet seeded with the universe: document ids line up with artifact
  // ids, labels outside the universe get ids past it (every schema check
  // range-rejects those), and the shared alphabet is never interned into.
  auto parse_tree = [&](Alphabet* local,
                        TreeBuilder* builder) -> StatusOr<Node*> {
    for (int i = 0; i < alphabet->size(); ++i) local->Intern(alphabet->Name(i));
    return request.format == DocFormat::kXml
               ? ParseXml(request.tree, local, builder)
               : ParseTerm(request.tree, local, builder);
  };

  switch (request.op) {
    case ServiceOp::kTypecheck: {
      bool hit = false;
      StatusOr<std::shared_ptr<const CompiledSchema>> din =
          cache_.GetOrCompileSchema(request.din, alphabet, &hit,
                                    compile_cap_ms());
      if (!din.ok()) return finish(din.status());
      count_lookup(hit);
      StatusOr<std::shared_ptr<const CompiledSchema>> dout =
          cache_.GetOrCompileSchema(request.dout, alphabet, &hit,
                                    compile_cap_ms());
      if (!dout.ok()) return finish(dout.status());
      count_lookup(hit);
      StatusOr<std::shared_ptr<const CompiledTransducer>> td =
          cache_.GetOrCompileTransducer(request.transducer, alphabet, &hit,
                                        compile_cap_ms());
      if (!td.ok()) return finish(td.status());
      count_lookup(hit);

      if (injected("cache-adopt")) {
        return finish(
            ResourceExhaustedError("injected fault at 'cache-adopt'"));
      }

      if (tier == AdmissionTier::kApproximate) {
        // Degraded tier: only the sound, bounded-cost approximate engine
        // runs. A `typechecks == true` verdict is still definitive; a
        // false verdict may be a false alarm and is flagged approximate
        // (the same contract as the PR 1 budget fallback).
        StatusOr<ApproximateResult> approx = TypecheckApproximate(
            *(*td)->selector_free, *(*din)->dtd, *(*dout)->dtd,
            options_.approximate_max_dfa_states, budget_ptr);
        if (!approx.ok()) return finish(approx.status());
        response.typechecks =
            approx->verdict == ApproximateVerdict::kTypechecks;
        response.approximate = true;
        response.engine_ms = approx->stats.elapsed_ms;
        return finish(Status::Ok());
      }

      TypecheckOptions options;
      options.budget = budget_ptr;
      options.want_counterexample = request.want_counterexample;
      options.approximate_fallback = request.approximate_fallback;
      // Per-request engine parallelism, operator-clamped. The pool worker
      // running this request acts as the parallel engine's coordinator, so
      // `threads == n` adds n-1 transient threads for the emptiness phase.
      const int max_threads =
          options_.max_request_threads > 0 ? options_.max_request_threads : 1;
      options.emptiness_threads =
          request.threads > max_threads ? max_threads
          : request.threads > 1        ? request.threads
                                       : 1;
      // Antichain knobs: a request's explicit setting wins; the unset
      // tri-state defers to the operator's configured default.
      options.antichain = request.antichain >= 0 ? request.antichain != 0
                                                 : options_.antichain;
      options.dense_threshold = request.dense_threshold > 0
                                    ? request.dense_threshold
                                    : options_.dense_threshold;
      options.widths = &(*td)->widths;
      options.din_determinized = (*din)->determinized.get();
      options.dout_determinized = (*dout)->determinized.get();
      // Resumable lazy exploration (delrelab engine only — the auto front
      // door dispatches to engines that never touch these tables): equal
      // artifact keys pose the identical emptiness query, so discovered
      // tables from an earlier request warm-start this one. '\x1f' never
      // occurs in canonical texts, so the join is injective.
      // The antichain flag joins the key: a pruned discovery table is a
      // different (smaller) fixpoint than the full one, so snapshots are
      // cached per-configuration rather than cross-resumed.
      const std::string lazy_key = (*din)->key + '\x1f' + (*dout)->key +
                                   '\x1f' + (*td)->key + '\x1f' +
                                   (options.antichain ? '1' : '0');
      std::shared_ptr<const LazySnapshot> lazy_resume;
      LazySnapshot lazy_export;
      if (request.engine == TypecheckEngine::kDelRelab) {
        lazy_resume = cache_.GetLazySnapshot(lazy_key);
        options.lazy_resume = lazy_resume.get();
        options.lazy_export = &lazy_export;
      }
      StatusOr<TypecheckResult> result =
          request.engine == TypecheckEngine::kDelRelab
              ? TypecheckDelRelab(*(*td)->selector_free, *(*din)->dtd,
                                  *(*dout)->dtd, options)
              : Typecheck(*(*td)->selector_free, *(*din)->dtd, *(*dout)->dtd,
                          options);
      if (!result.ok()) return finish(result.status());
      if (lazy_export.complete) {
        // Only completed runs export; Put keeps the first insert on a race.
        cache_.PutLazySnapshot(
            lazy_key, std::make_shared<LazySnapshot>(std::move(lazy_export)));
      }
      response.typechecks = result->typechecks;
      response.approximate = result->approximate;
      response.engine_ms = result->stats.elapsed_ms;
      pruned_configs_.fetch_add(result->stats.pruned_configs,
                                std::memory_order_relaxed);
      displaced_configs_.fetch_add(result->stats.displaced_configs,
                                   std::memory_order_relaxed);
      if (result->counterexample != nullptr) {
        response.counterexample =
            ToTermString(result->counterexample, *alphabet);
      }
      return finish(Status::Ok());
    }
    case ServiceOp::kValidate: {
      bool hit = false;
      StatusOr<std::shared_ptr<const CompiledSchema>> schema =
          cache_.GetOrCompileSchema(request.schema, alphabet, &hit,
                                    compile_cap_ms());
      if (!schema.ok()) return finish(schema.status());
      count_lookup(hit);
      if (injected("cache-adopt")) {
        return finish(
            ResourceExhaustedError("injected fault at 'cache-adopt'"));
      }
      Alphabet local;
      Arena arena;
      TreeBuilder builder(&arena);
      StatusOr<Node*> tree = parse_tree(&local, &builder);
      if (!tree.ok()) return finish(tree.status());
      response.valid = (*schema)->dtd->Valid(*tree);
      return finish(Status::Ok());
    }
    case ServiceOp::kTransform: {
      bool hit = false;
      StatusOr<std::shared_ptr<const CompiledTransducer>> td =
          cache_.GetOrCompileTransducer(request.transducer, alphabet, &hit,
                                        compile_cap_ms());
      if (!td.ok()) return finish(td.status());
      count_lookup(hit);
      if (injected("cache-adopt")) {
        return finish(
            ResourceExhaustedError("injected fault at 'cache-adopt'"));
      }
      Alphabet local;
      Arena arena;
      TreeBuilder builder(&arena);
      StatusOr<Node*> tree = parse_tree(&local, &builder);
      if (!tree.ok()) return finish(tree.status());
      Node* output = Apply(*(*td)->original, *tree, &builder);
      if (output == nullptr) {
        return finish(FailedPreconditionError(
            "transducer output at the root is not a single tree"));
      }
      // The output rides in the same syntax the input document used.
      response.output = request.format == DocFormat::kXml
                            ? ToXml(output, local)
                            : ToTermString(output, local);
      return finish(Status::Ok());
    }
    case ServiceOp::kValidateStream:
    case ServiceOp::kTransformStream:
      break;  // dispatched to a StreamSession before the switch
  }
  return finish(InvalidArgumentError("unknown op"));
}

ServiceStats TypecheckService::stats() const {
  ServiceStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.tier_exact = tier_exact_.load(std::memory_order_relaxed);
  stats.tier_approximate = tier_approximate_.load(std::memory_order_relaxed);
  stats.shed_queue_full = shed_queue_full_.load(std::memory_order_relaxed);
  stats.shed_overload = shed_overload_.load(std::memory_order_relaxed);
  stats.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  stats.shed_stopping = shed_stopping_.load(std::memory_order_relaxed);
  stats.shed_fault = shed_fault_.load(std::memory_order_relaxed);
  stats.shed_stream_limit =
      shed_stream_limit_.load(std::memory_order_relaxed);
  stats.expired_in_queue = expired_in_queue_.load(std::memory_order_relaxed);
  stats.drain_cancelled = drain_cancelled_.load(std::memory_order_relaxed);
  stats.pruned_configs = pruned_configs_.load(std::memory_order_relaxed);
  stats.displaced_configs =
      displaced_configs_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.queue_depth = queue_.size();
    stats.cost_ewma_ms = cost_ewma_ms_;
    stats.open_streams = open_streams_;
  }
  stats.latency_count = latency_.count();
  stats.latency_p50_ms = latency_.Percentile(50);
  stats.latency_p99_ms = latency_.Percentile(99);
  stats.latency_max_ms = latency_.max_ms();
  stats.cache = cache_.stats();
  return stats;
}

}  // namespace xtc
