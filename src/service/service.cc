#include "src/service/service.h"

#include <bit>
#include <chrono>
#include <cmath>
#include <utility>

#include "src/base/arena.h"
#include "src/core/relab.h"
#include "src/core/typecheck.h"
#include "src/td/exec.h"
#include "src/tree/codec.h"

namespace xtc {

void LatencyHistogram::Record(double ms) {
  auto ns = static_cast<std::uint64_t>(ms * 1e6);
  if (ns == 0) ns = 1;
  int bucket = std::bit_width(ns) - 1;  // floor(log2(ns))
  if (bucket >= kBuckets) bucket = kBuckets - 1;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::Percentile(double p) const {
  std::uint64_t counts[kBuckets];
  std::uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0;
  auto rank = static_cast<std::uint64_t>(std::ceil(p / 100.0 * total));
  if (rank < 1) rank = 1;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) {
      // Geometric midpoint of [2^i, 2^(i+1)) ns, reported in ms.
      return std::exp2(i + 0.5) / 1e6;
    }
  }
  return max_ms();
}

double LatencyHistogram::max_ms() const {
  return max_ns_.load(std::memory_order_relaxed) / 1e6;
}

TypecheckService::TypecheckService(const Options& options)
    : options_(options), cache_(options.cache) {
  workers_.reserve(static_cast<std::size_t>(options_.num_threads));
  for (int i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TypecheckService::~TypecheckService() {
  std::deque<Job> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    orphaned.swap(queue_);
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  for (Job& job : orphaned) {
    ServiceResponse response;
    response.id = job.request.id;
    response.op = job.request.op;
    response.status = ResourceExhaustedError("service shutting down");
    job.promise.set_value(std::move(response));
  }
}

std::future<ServiceResponse> TypecheckService::Submit(ServiceRequest request) {
  Job job;
  job.request = std::move(request);
  std::future<ServiceResponse> future = job.promise.get_future();
  bool was_stopping;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_ && queue_.size() < options_.queue_capacity) {
      queue_.push_back(std::move(job));
      submitted_.fetch_add(1, std::memory_order_relaxed);
      queue_cv_.notify_one();
      return future;
    }
    was_stopping = stopping_;
  }
  // Graceful shedding: the caller gets an immediate, well-formed
  // kResourceExhausted response instead of unbounded queueing.
  shed_.fetch_add(1, std::memory_order_relaxed);
  ServiceResponse response;
  response.id = job.request.id;
  response.op = job.request.op;
  response.status = ResourceExhaustedError(
      was_stopping ? "service shutting down" : "request queue is full");
  job.promise.set_value(std::move(response));
  return future;
}

ServiceResponse TypecheckService::Process(const ServiceRequest& request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return Execute(request);
}

void TypecheckService::WorkerLoop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_, nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job.promise.set_value(Execute(job.request));
  }
}

ServiceResponse TypecheckService::Execute(const ServiceRequest& request) {
  WallTimer timer;
  ServiceResponse response;
  response.id = request.id;
  response.op = request.op;

  // The per-request governor lives and dies on this worker thread
  // (src/base/README.md: budgets never cross threads).
  Budget budget;
  Budget* budget_ptr = nullptr;
  std::uint64_t deadline_ms = request.deadline_ms != 0
                                  ? request.deadline_ms
                                  : options_.default_deadline_ms;
  if (deadline_ms != 0) {
    budget.set_deadline(std::chrono::milliseconds(deadline_ms));
    budget_ptr = &budget;
  }

  auto finish = [&](Status status) -> ServiceResponse {
    response.status = std::move(status);
    response.elapsed_ms = timer.elapsed_ms();
    latency_.Record(response.elapsed_ms);
    (response.status.ok() ? completed_ : failed_)
        .fetch_add(1, std::memory_order_relaxed);
    return std::move(response);
  };

  StatusOr<std::vector<std::string>> universe = CollectUniverse(request);
  if (!universe.ok()) return finish(universe.status());
  std::shared_ptr<Alphabet> alphabet = cache_.GetOrCreateAlphabet(*universe);

  auto count_lookup = [&response](bool hit) {
    (hit ? response.cache_hits : response.cache_misses) += 1;
  };

  // Validate/transform parse the input document against a request-private
  // alphabet seeded with the universe: document ids line up with artifact
  // ids, labels outside the universe get ids past it (every schema check
  // range-rejects those), and the shared alphabet is never interned into.
  auto parse_tree = [&](Alphabet* local,
                        TreeBuilder* builder) -> StatusOr<Node*> {
    for (int i = 0; i < alphabet->size(); ++i) local->Intern(alphabet->Name(i));
    return ParseTerm(request.tree, local, builder);
  };

  switch (request.op) {
    case ServiceOp::kTypecheck: {
      bool hit = false;
      StatusOr<std::shared_ptr<const CompiledSchema>> din =
          cache_.GetOrCompileSchema(request.din, alphabet, &hit);
      if (!din.ok()) return finish(din.status());
      count_lookup(hit);
      StatusOr<std::shared_ptr<const CompiledSchema>> dout =
          cache_.GetOrCompileSchema(request.dout, alphabet, &hit);
      if (!dout.ok()) return finish(dout.status());
      count_lookup(hit);
      StatusOr<std::shared_ptr<const CompiledTransducer>> td =
          cache_.GetOrCompileTransducer(request.transducer, alphabet, &hit);
      if (!td.ok()) return finish(td.status());
      count_lookup(hit);

      TypecheckOptions options;
      options.budget = budget_ptr;
      options.want_counterexample = request.want_counterexample;
      options.approximate_fallback = request.approximate_fallback;
      options.widths = &(*td)->widths;
      options.din_determinized = (*din)->determinized.get();
      options.dout_determinized = (*dout)->determinized.get();
      // Resumable lazy exploration (delrelab engine only — the auto front
      // door dispatches to engines that never touch these tables): equal
      // artifact keys pose the identical emptiness query, so discovered
      // tables from an earlier request warm-start this one. '\x1f' never
      // occurs in canonical texts, so the join is injective.
      const std::string lazy_key =
          (*din)->key + '\x1f' + (*dout)->key + '\x1f' + (*td)->key;
      std::shared_ptr<const LazySnapshot> lazy_resume;
      LazySnapshot lazy_export;
      if (request.engine == TypecheckEngine::kDelRelab) {
        lazy_resume = cache_.GetLazySnapshot(lazy_key);
        options.lazy_resume = lazy_resume.get();
        options.lazy_export = &lazy_export;
      }
      StatusOr<TypecheckResult> result =
          request.engine == TypecheckEngine::kDelRelab
              ? TypecheckDelRelab(*(*td)->selector_free, *(*din)->dtd,
                                  *(*dout)->dtd, options)
              : Typecheck(*(*td)->selector_free, *(*din)->dtd, *(*dout)->dtd,
                          options);
      if (!result.ok()) return finish(result.status());
      if (lazy_export.complete) {
        // Only completed runs export; Put keeps the first insert on a race.
        cache_.PutLazySnapshot(
            lazy_key, std::make_shared<LazySnapshot>(std::move(lazy_export)));
      }
      response.typechecks = result->typechecks;
      response.approximate = result->approximate;
      response.engine_ms = result->stats.elapsed_ms;
      if (result->counterexample != nullptr) {
        response.counterexample =
            ToTermString(result->counterexample, *alphabet);
      }
      return finish(Status::Ok());
    }
    case ServiceOp::kValidate: {
      bool hit = false;
      StatusOr<std::shared_ptr<const CompiledSchema>> schema =
          cache_.GetOrCompileSchema(request.schema, alphabet, &hit);
      if (!schema.ok()) return finish(schema.status());
      count_lookup(hit);
      Alphabet local;
      Arena arena;
      TreeBuilder builder(&arena);
      StatusOr<Node*> tree = parse_tree(&local, &builder);
      if (!tree.ok()) return finish(tree.status());
      response.valid = (*schema)->dtd->Valid(*tree);
      return finish(Status::Ok());
    }
    case ServiceOp::kTransform: {
      bool hit = false;
      StatusOr<std::shared_ptr<const CompiledTransducer>> td =
          cache_.GetOrCompileTransducer(request.transducer, alphabet, &hit);
      if (!td.ok()) return finish(td.status());
      count_lookup(hit);
      Alphabet local;
      Arena arena;
      TreeBuilder builder(&arena);
      StatusOr<Node*> tree = parse_tree(&local, &builder);
      if (!tree.ok()) return finish(tree.status());
      Node* output = Apply(*(*td)->original, *tree, &builder);
      if (output == nullptr) {
        return finish(FailedPreconditionError(
            "transducer output at the root is not a single tree"));
      }
      response.output = ToTermString(output, local);
      return finish(Status::Ok());
    }
  }
  return finish(InvalidArgumentError("unknown op"));
}

ServiceStats TypecheckService::stats() const {
  ServiceStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.queue_depth = queue_.size();
  }
  stats.latency_count = latency_.count();
  stats.latency_p50_ms = latency_.Percentile(50);
  stats.latency_p99_ms = latency_.Percentile(99);
  stats.latency_max_ms = latency_.max_ms();
  stats.cache = cache_.stats();
  return stats;
}

}  // namespace xtc
