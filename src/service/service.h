#ifndef XTC_SERVICE_SERVICE_H_
#define XTC_SERVICE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/service/compile_cache.h"
#include "src/service/request.h"

namespace xtc {

class StreamSession;

/// Lock-free latency telemetry: power-of-two nanosecond buckets, so Record
/// is two relaxed atomic ops on the request path and percentiles are
/// bucket-resolution estimates (within 2x below 1 second, exact max).
/// Thread-compatibility: thread-safe.
class LatencyHistogram {
 public:
  void Record(double ms);
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  /// Estimated percentile in [0, 100], in ms; 0 when nothing was recorded.
  double Percentile(double p) const;
  double max_ms() const;

 private:
  static constexpr int kBuckets = 48;  ///< bucket i covers [2^i, 2^(i+1)) ns

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

/// Deterministic service-level fault injection: the n-th service
/// checkpoint crossed (enqueue, execute, compile, cache-adopt, respond —
/// service-wide, across all threads) fails with kResourceExhausted,
/// mirroring Budget::set_fail_at_checkpoint for the engines. Tests sweep n
/// to prove every failure point yields a well-formed response line, never
/// a hang or a torn cache entry. Thread-compatibility: thread-safe.
class ServiceFaultInjector {
 public:
  /// Arms the injector: the n-th (1-based) checkpoint fails. Resets the
  /// crossing counter and the fired record. Not thread-safe against
  /// concurrent Check() — arm before submitting traffic.
  void FailAt(std::uint64_t n) {
    fired_.store(nullptr, std::memory_order_relaxed);
    crossed_.store(0, std::memory_order_relaxed);
    countdown_.store(static_cast<std::int64_t>(n), std::memory_order_relaxed);
  }

  /// The checkpoint: returns true exactly once, on the armed crossing.
  bool Check(const char* checkpoint) {
    crossed_.fetch_add(1, std::memory_order_relaxed);
    if (countdown_.load(std::memory_order_relaxed) <= 0) return false;
    if (countdown_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      fired_.store(checkpoint, std::memory_order_release);
      return true;
    }
    return false;
  }

  /// The checkpoint name that fired, or null while none has.
  const char* fired() const { return fired_.load(std::memory_order_acquire); }
  /// Total checkpoints crossed since FailAt (sweep-termination detection).
  std::uint64_t crossed() const {
    return crossed_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> countdown_{0};  ///< 0 = disarmed
  std::atomic<std::uint64_t> crossed_{0};
  std::atomic<const char*> fired_{nullptr};
};

/// A telemetry snapshot; all counters are cumulative since construction.
struct ServiceStats {
  std::uint64_t submitted = 0;  ///< accepted into the queue (or Process())
  std::uint64_t completed = 0;  ///< responses produced with status ok
  std::uint64_t failed = 0;     ///< responses with a non-ok status
  std::uint64_t shed = 0;       ///< rejected at Submit (all reasons)
  std::size_t queue_depth = 0;  ///< instantaneous

  // Admission-control telemetry (DESIGN.md §4, overload semantics).
  std::uint64_t tier_exact = 0;        ///< admitted at the exact tier
  std::uint64_t tier_approximate = 0;  ///< admitted degraded
  std::uint64_t shed_queue_full = 0;   ///< shed: bounded queue at capacity
  std::uint64_t shed_overload = 0;     ///< shed: load factor past reject
  std::uint64_t shed_deadline = 0;     ///< shed: predicted deadline miss
  std::uint64_t shed_stopping = 0;     ///< shed: draining / shut down
  std::uint64_t shed_fault = 0;        ///< shed: injected fault (tests)
  std::uint64_t shed_stream_limit = 0; ///< shed: open-stream cap reached
  std::size_t open_streams = 0;        ///< instantaneous OpenStream sessions
  std::uint64_t expired_in_queue = 0;  ///< admitted, deadline died queued
  std::uint64_t drain_cancelled = 0;   ///< queued work failed by Stop()
  double cost_ewma_ms = 0;             ///< smoothed per-request cost

  // Antichain telemetry aggregated across typecheck requests (DESIGN.md
  // §3e): configs dropped or displaced by subsumption in the lazy
  // emptiness runs this service executed.
  std::uint64_t pruned_configs = 0;
  std::uint64_t displaced_configs = 0;

  std::uint64_t latency_count = 0;
  double latency_p50_ms = 0;
  double latency_p99_ms = 0;
  double latency_max_ms = 0;
  CompileCache::Stats cache;
};

/// What Stop() did with the work that was in the system.
struct DrainReport {
  bool clean = false;          ///< queue emptied before the drain deadline
  std::uint64_t drained = 0;   ///< requests that completed during the drain
  std::uint64_t cancelled = 0; ///< queued requests failed at the deadline
};

/// The concurrent typechecking service: a fixed pool of worker threads
/// draining a bounded MPMC queue of ServiceRequests, sharing one
/// content-addressed CompileCache. Each request is executed under its own
/// Budget (created on the worker thread — budgets never cross threads)
/// whose deadline is anchored at *admission*, so queue wait counts against
/// the client's patience. Compiled artifacts are immutable and shared.
///
/// Overload degrades through tiers instead of failing hard: admission
/// computes a load factor from queue depth and deadline pressure (queue
/// length x EWMA of recent per-request cost vs. the request's deadline);
/// past `degrade_load` typecheck requests run only the sound approximate
/// engine (bounded cost), past `reject_load` requests are shed with a
/// `retry_after_ms` hint. Sheds resolve the future immediately with
/// kResourceExhausted — never unbounded queueing, never a dropped promise.
///
/// Thread-compatibility: thread-safe (Submit/Process/Stop/stats from any
/// thread). Destruction routes through Stop(0): admission closes, queued
/// requests are failed cleanly, every submitted future is fulfilled.
class TypecheckService {
 public:
  struct Options {
    /// Worker threads. 0 runs no workers: Submit() only queues (tests use
    /// this to fill the queue deterministically and assert shedding).
    int num_threads = 4;
    /// Queue slots; Submit sheds once the queue holds this many requests.
    std::size_t queue_capacity = 256;
    /// Deadline for requests that do not carry one (0 = ungoverned).
    std::uint64_t default_deadline_ms = 0;

    /// Load factor at which typecheck requests degrade to the
    /// approximate-only tier. Load is max(queue_depth/capacity, predicted
    /// wait / request deadline).
    double degrade_load = 0.75;
    /// Load factor at which requests are shed outright.
    double reject_load = 0.95;
    /// EWMA smoothing for per-request cost (higher = more reactive).
    double cost_ewma_alpha = 0.2;
    /// EWMA seed before any request has completed.
    double cost_prior_ms = 1.0;
    /// DFA state cap for the approximate-tier engine (bounds its cost on
    /// hostile schemas).
    int approximate_max_dfa_states = 1 << 14;

    /// Upper bound on the per-request `threads` wire field (the parallel
    /// lazy emptiness engine's worker count). Requests asking for more are
    /// clamped, not rejected; 1 disables request-driven parallelism
    /// entirely. The product num_threads * max_request_threads bounds the
    /// process's worst-case engine thread count.
    int max_request_threads = 8;

    /// Default for requests whose `antichain` wire field is unset:
    /// subsumption pruning in the lazy emptiness engine (DESIGN.md §3e).
    /// A request's explicit true/false always wins.
    bool antichain = true;
    /// Default for requests whose `dense_threshold` wire field is unset:
    /// the dense/sparse switch-over for determinized subset masks. 0
    /// defers to the engine default (kDefaultDenseThreshold).
    int dense_threshold = 0;

    /// Backpressure cap on concurrently open chunked-stream sessions
    /// (OpenStream). Streams run on caller threads and bypass the bounded
    /// worker queue, so without a cap a slow-client fleet could hold
    /// unbounded per-session state (reader buffers, compiled artifacts).
    /// Opens past the cap are shed with kResourceExhausted, reason
    /// `stream_limit`, and a retry_after_ms hint; the slot frees when the
    /// session finishes (or is destroyed). 0 = unbounded.
    std::size_t max_open_streams = 64;

    /// Deterministic fault injection (tests only). Borrowed; must outlive
    /// the service.
    ServiceFaultInjector* fault_injector = nullptr;

    CompileCache::Options cache;
  };

  explicit TypecheckService(const Options& options);
  ~TypecheckService();

  TypecheckService(const TypecheckService&) = delete;
  TypecheckService& operator=(const TypecheckService&) = delete;

  /// Enqueues a request. The future is always valid: a shed request
  /// resolves immediately with kResourceExhausted, tier `rejected`, a
  /// shed_reason, and (when retrying could help) a retry_after_ms hint.
  std::future<ServiceResponse> Submit(ServiceRequest request);

  /// Executes a request synchronously on the calling thread, bypassing the
  /// queue and admission control (the xtc_replay emit path and unit
  /// tests). Always runs at the exact tier.
  ServiceResponse Process(const ServiceRequest& request);

  /// Opens a streaming session for a validate_stream / transform_stream
  /// request whose document arrives in chunks (src/service/stream.h). The
  /// session runs on the caller's thread, bypassing the worker queue, with
  /// its deadline anchored now. Always returns a session: shed or
  /// malformed opens come back latched, so Push is a no-op and Finish
  /// yields the well-formed error response. The session borrows this
  /// service and must be finished (or destroyed) before Stop returns —
  /// in-flight streams are the caller's to drain.
  std::unique_ptr<StreamSession> OpenStream(ServiceRequest request);

  /// Graceful drain: closes admission (new Submits shed with `stopping`),
  /// lets the workers finish queued work until `drain_deadline`, then
  /// fails whatever is still queued with kResourceExhausted and joins the
  /// workers. In-flight requests always run to completion — their own
  /// budgets bound them; the drain deadline bounds *queued* work only.
  /// Idempotent: later calls return the first call's report. After Stop,
  /// Submit sheds and Process still works (tests, final stats).
  DrainReport Stop(
      std::chrono::milliseconds drain_deadline = std::chrono::milliseconds(0));

  ServiceStats stats() const;
  CompileCache& cache() { return cache_; }

 private:
  friend class StreamSession;  ///< shares cache, budget policy, and stats

  struct Job {
    ServiceRequest request;
    std::promise<ServiceResponse> promise;
    AdmissionTier tier = AdmissionTier::kExact;
    std::chrono::steady_clock::time_point admit_time;
  };

  void WorkerLoop();
  ServiceResponse Execute(const ServiceRequest& request, AdmissionTier tier,
                          std::chrono::steady_clock::time_point admit_time);
  ServiceResponse ShedResponse(const ServiceRequest& request,
                               ShedReason reason,
                               std::uint64_t retry_after_ms);
  /// Estimated queue wait for a newly admitted request, in ms (mu_ held).
  double EstimatedWaitMsLocked() const;
  void RecordCost(double elapsed_ms);
  /// Frees the open-stream slot a counted StreamSession held (at Finish).
  void ReleaseStreamSlot();

  const Options options_;
  CompileCache cache_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::condition_variable drain_cv_;
  std::deque<Job> queue_;
  bool draining_ = false;  ///< admission closed; workers still draining
  bool stopping_ = false;  ///< workers exit once the queue is empty
  std::size_t open_streams_ = 0;  ///< OpenStream sessions not yet finished
  int in_flight_ = 0;      ///< jobs popped but not yet finished
  double cost_ewma_ms_;    ///< guarded by mu_
  std::vector<std::thread> workers_;

  std::mutex stop_mu_;  ///< serializes Stop(); taken before mu_
  bool stopped_ = false;
  DrainReport drain_report_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> tier_exact_{0};
  std::atomic<std::uint64_t> tier_approximate_{0};
  std::atomic<std::uint64_t> shed_queue_full_{0};
  std::atomic<std::uint64_t> shed_overload_{0};
  std::atomic<std::uint64_t> shed_deadline_{0};
  std::atomic<std::uint64_t> shed_stopping_{0};
  std::atomic<std::uint64_t> shed_fault_{0};
  std::atomic<std::uint64_t> shed_stream_limit_{0};
  std::atomic<std::uint64_t> expired_in_queue_{0};
  std::atomic<std::uint64_t> drain_cancelled_{0};
  std::atomic<std::uint64_t> pruned_configs_{0};
  std::atomic<std::uint64_t> displaced_configs_{0};
  LatencyHistogram latency_;
};

}  // namespace xtc

#endif  // XTC_SERVICE_SERVICE_H_
