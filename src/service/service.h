#ifndef XTC_SERVICE_SERVICE_H_
#define XTC_SERVICE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/service/compile_cache.h"
#include "src/service/request.h"

namespace xtc {

/// Lock-free latency telemetry: power-of-two nanosecond buckets, so Record
/// is two relaxed atomic ops on the request path and percentiles are
/// bucket-resolution estimates (within 2x below 1 second, exact max).
/// Thread-compatibility: thread-safe.
class LatencyHistogram {
 public:
  void Record(double ms);
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  /// Estimated percentile in [0, 100], in ms; 0 when nothing was recorded.
  double Percentile(double p) const;
  double max_ms() const;

 private:
  static constexpr int kBuckets = 48;  ///< bucket i covers [2^i, 2^(i+1)) ns

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

/// A telemetry snapshot; all counters are cumulative since construction.
struct ServiceStats {
  std::uint64_t submitted = 0;  ///< accepted into the queue (or Process())
  std::uint64_t completed = 0;  ///< responses produced with status ok
  std::uint64_t failed = 0;     ///< responses with a non-ok status
  std::uint64_t shed = 0;       ///< rejected at Submit: queue full/stopping
  std::size_t queue_depth = 0;  ///< instantaneous
  std::uint64_t latency_count = 0;
  double latency_p50_ms = 0;
  double latency_p99_ms = 0;
  double latency_max_ms = 0;
  CompileCache::Stats cache;
};

/// The concurrent typechecking service: a fixed pool of worker threads
/// draining a bounded MPMC queue of ServiceRequests, sharing one
/// content-addressed CompileCache. Each request is executed under its own
/// Budget (created on the worker thread — budgets never cross threads),
/// compiled artifacts are immutable and shared, and overload is shed at
/// the front door with kResourceExhausted rather than queued without bound.
///
/// Thread-compatibility: thread-safe (Submit/Process/stats from any
/// thread). The destructor drains nothing: queued-but-unstarted requests
/// are failed with kResourceExhausted ("service shutting down").
class TypecheckService {
 public:
  struct Options {
    /// Worker threads. 0 runs no workers: Submit() only queues (tests use
    /// this to fill the queue deterministically and assert shedding).
    int num_threads = 4;
    /// Queue slots; Submit sheds once the queue holds this many requests.
    std::size_t queue_capacity = 256;
    /// Deadline for requests that do not carry one (0 = ungoverned).
    std::uint64_t default_deadline_ms = 0;
    CompileCache::Options cache;
  };

  explicit TypecheckService(const Options& options);
  ~TypecheckService();

  TypecheckService(const TypecheckService&) = delete;
  TypecheckService& operator=(const TypecheckService&) = delete;

  /// Enqueues a request. The future is always valid: a shed request
  /// resolves immediately with kResourceExhausted.
  std::future<ServiceResponse> Submit(ServiceRequest request);

  /// Executes a request synchronously on the calling thread, bypassing the
  /// queue (the xtc_replay emit path and unit tests).
  ServiceResponse Process(const ServiceRequest& request);

  ServiceStats stats() const;
  CompileCache& cache() { return cache_; }

 private:
  struct Job {
    ServiceRequest request;
    std::promise<ServiceResponse> promise;
  };

  void WorkerLoop();
  ServiceResponse Execute(const ServiceRequest& request);

  const Options options_;
  CompileCache cache_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> shed_{0};
  LatencyHistogram latency_;
};

}  // namespace xtc

#endif  // XTC_SERVICE_SERVICE_H_
