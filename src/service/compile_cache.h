#ifndef XTC_SERVICE_COMPILE_CACHE_H_
#define XTC_SERVICE_COMPILE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/budget.h"
#include "src/base/snapshot.h"
#include "src/base/status.h"
#include "src/fa/alphabet.h"
#include "src/nta/lazy.h"
#include "src/schema/dtd.h"
#include "src/service/request.h"
#include "src/td/transducer.h"
#include "src/td/widths.h"

namespace xtc {

/// An immutable, fully compiled schema artifact. `dtd` has been
/// Dtd::Compile()d (every lazy cache forced) and `determinized` — present
/// exactly when the schema is not DTD(DFA) — likewise, so concurrent reads
/// from service workers are pure. Both share the universe `alphabet`
/// object; the engines compare alphabets by pointer, so artifacts may only
/// be combined with artifacts of the same universe (the cache guarantees
/// this by keying every artifact on the universe's id->name section).
struct CompiledSchema {
  std::shared_ptr<Alphabet> alphabet;
  std::shared_ptr<const Dtd> dtd;
  std::shared_ptr<const Dtd> determinized;  ///< null when dtd->IsDfaDtd()
  std::string key;                          ///< CanonicalDtdText(*dtd)
  std::uint64_t hash = 0;                   ///< HashBytes(key)
  std::size_t bytes = 0;                    ///< accounted size (LRU unit)
};

/// An immutable compiled transducer artifact: the transducer as parsed
/// (selectors intact, for `transform`), its selector-free compilation
/// (Theorems 23/29; identical pointer when already selector-free), and the
/// width analysis of the selector-free form (Proposition 16) so typecheck
/// requests skip re-deriving C and K.
struct CompiledTransducer {
  std::shared_ptr<Alphabet> alphabet;
  std::shared_ptr<const Transducer> original;
  std::shared_ptr<const Transducer> selector_free;
  WidthAnalysis widths;  ///< of *selector_free
  std::string key;       ///< CanonicalTransducerText(*original)
  std::uint64_t hash = 0;
  std::size_t bytes = 0;
};

/// A content-addressed cache of compiled schema/transducer artifacts plus
/// the registry of universe alphabets they are bound to.
///
/// Content addressing: the key is the canonical text of the component
/// (src/schema/canonical.h, src/td/canonical.h), which embeds the universe
/// id->name section; the 64-bit structural hash picks the shard and
/// buckets within it, equality is always by full key comparison — hash
/// collisions can cost a lookup, never alias artifacts.
///
/// Universes: one immutable Alphabet object per distinct sorted name set,
/// interned in sorted order so ids are deterministic. Artifacts hold a
/// shared_ptr to their universe's alphabet; evicting a universe cascades to
/// its artifacts across every shard (a re-created universe is a *different*
/// Alphabet object, and the engines' pointer comparison must never see a
/// stale one).
///
/// Sharding + snapshots: artifacts are hash-partitioned into
/// `Options::shards` shards. Each shard publishes an immutable
/// SnapshotTable of its entries through a SnapshotSlot; warm lookups do an
/// atomic snapshot acquire and probe it — no mutex anywhere on the hit
/// path. Only misses, inserts, evictions, and universe cascades take the
/// per-shard writer mutex, mutate the authoritative map, and publish a new
/// snapshot (init-before-publish, like concurrent_interner.h). The
/// universe registry gets the same treatment with a single table.
///
/// Eviction: approximate LRU over generation stamps. Every entry carries
/// an atomic `last_used` stamp from a global clock; snapshot hits bump it
/// with a relaxed store (readers never publish). Each shard locally evicts
/// its coldest entries past its budget (`max_bytes / shards`); after an
/// insert the shard reconciles against the global ceiling by evicting the
/// globally coldest entries (one shard lock at a time), so accounted bytes
/// never exceed `max_bytes` — the sum of the shard budgets — except when
/// the just-inserted artifact alone is larger than the whole ceiling (it
/// survives, exactly like the old single-lock cache's newest-entry
/// carve-out). Universe registry is stamp-LRU-capped by count. Evicted
/// artifacts stay alive while in-flight requests hold them.
///
/// Concurrency: warm hits are lock-free snapshot reads; slow paths are
/// per-shard mutexes; compilation runs outside any lock. Two workers
/// missing on the same key both compile; the first insert wins and the
/// loser adopts it — slightly wasteful, never incorrect. Stale-generation
/// detection is preserved: a snapshot or map hit whose artifact alphabet
/// is not the caller's (a worker raced a cascade eviction) is treated as a
/// miss, erased, and recompiled.
///
/// Thread-compatibility: thread-safe (all public methods).
class CompileCache {
 public:
  struct Options {
    /// Artifact byte ceiling before LRU eviction starts (sum of the
    /// per-shard budgets).
    std::size_t max_bytes = std::size_t{64} << 20;
    /// Max distinct universe alphabets kept.
    std::size_t max_universes = 64;
    /// Per-compile Budget byte ceiling: one hostile schema cannot blow up
    /// the process during subset construction (kResourceExhausted instead).
    std::size_t compile_max_bytes = std::size_t{64} << 20;
    /// Per-compile deadline (0 = none).
    std::uint64_t compile_deadline_ms = 0;
    /// Per-rule DFA state cap for DTD(NFA) determinization.
    int max_dfa_states = 1 << 16;
    /// Hash partitions. Rounded up to a power of two, clamped to
    /// [1, 4096]. 1 reproduces the old single-lock strict-LRU behaviour.
    std::size_t shards = 8;
  };

  /// Per-shard contention/occupancy counters (Stats::per_shard).
  struct ShardStats {
    std::uint64_t hits = 0;           ///< warm lookups served (any path)
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t snapshot_hits = 0;  ///< hits served lock-free
    std::uint64_t lock_waits = 0;     ///< contended writer-mutex acquires
    std::size_t bytes = 0;
    std::size_t entries = 0;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t lazy_hits = 0;    ///< lazy-snapshot lookups served
    std::uint64_t lazy_misses = 0;  ///< lazy-snapshot lookups missed
    std::uint64_t snapshot_hits = 0;  ///< hits served without any mutex
    std::uint64_t lock_waits = 0;   ///< convoy counter: contended acquires
    std::size_t bytes = 0;
    std::size_t entries = 0;
    std::size_t universes = 0;
    std::size_t shards = 0;
    std::vector<ShardStats> per_shard;
  };

  CompileCache();  ///< default Options
  explicit CompileCache(const Options& options);

  /// The shared Alphabet for `universe` (sorted unique names, as returned
  /// by CollectUniverse), creating and registering it on first use. The
  /// returned object is frozen by contract: callers must never Intern into
  /// it (src/base/README.md). Warm lookups are lock-free snapshot reads.
  std::shared_ptr<Alphabet> GetOrCreateAlphabet(
      const std::vector<std::string>& universe);

  /// Returns the compiled artifact for `spec` under `alphabet`, compiling
  /// on miss. `cache_hit` (optional) reports whether this call was served
  /// from cache. Compile failures (budget exhaustion, bad rules) are not
  /// cached; the next request retries. `deadline_cap_ms`, when non-zero,
  /// further bounds the compile's wall clock — deadline propagation: a
  /// request with 20ms of patience left must not pay a multi-second
  /// hostile determinization, even if the configured compile deadline
  /// would allow it.
  StatusOr<std::shared_ptr<const CompiledSchema>> GetOrCompileSchema(
      const SchemaSpec& spec, const std::shared_ptr<Alphabet>& alphabet,
      bool* cache_hit = nullptr, std::uint64_t deadline_cap_ms = 0);

  StatusOr<std::shared_ptr<const CompiledTransducer>> GetOrCompileTransducer(
      const TransducerSpec& spec, const std::shared_ptr<Alphabet>& alphabet,
      bool* cache_hit = nullptr, std::uint64_t deadline_cap_ms = 0);

  /// Returns the cached lazy discovered-state snapshot for `key` (the
  /// caller's content address for the emptiness query, e.g. the joined
  /// artifact keys plus engine parameters), or null on miss. Snapshots are
  /// complete or partial interned state tables of src/nta/lazy.h runs:
  /// resuming from one replays discovery instead of re-deriving it.
  std::shared_ptr<const LazySnapshot> GetLazySnapshot(const std::string& key);

  /// Stores `snapshot` under `key`, byte-accounted on the artifact LRU
  /// (ApproxBytes + flat overhead). First insert wins: equal keys describe
  /// the same query, so the tables are interchangeable and a racing worker
  /// adopts whichever landed first. Null snapshots are ignored.
  void PutLazySnapshot(const std::string& key,
                       std::shared_ptr<const LazySnapshot> snapshot);

  Stats stats() const;

  /// Drops all artifacts and universes (cumulative counters are kept).
  void Clear();

  std::size_t shard_count() const { return shard_count_; }

 private:
  // One cached artifact. Every payload field is immutable after
  // construction; `last_used` is the only mutable field and is a relaxed
  // atomic so lock-free snapshot readers can record recency without the
  // shard writer mutex. Exactly one of schema/transducer/lazy is set.
  // Lazy entries carry an empty universe_key: their tables are interned
  // int tuples with no Alphabet binding, so universe cascade eviction
  // never touches them.
  struct CacheEntry {
    std::string key;
    std::uint64_t hash = 0;
    std::string universe_key;
    std::shared_ptr<const CompiledSchema> schema;
    std::shared_ptr<const CompiledTransducer> transducer;
    std::shared_ptr<const LazySnapshot> lazy;
    std::size_t bytes = 0;
    mutable std::atomic<std::uint64_t> last_used{0};
  };

  // One universe registration, snapshot-readable like CacheEntry.
  struct UniverseEntry {
    std::string key;  // id->name section, '\n'-joined (names never contain it)
    std::uint64_t hash = 0;
    std::shared_ptr<Alphabet> alphabet;
    mutable std::atomic<std::uint64_t> last_used{0};
  };

  // A hash partition. `entries`/`bytes` are the authoritative state,
  // guarded by `mu`; `snapshot` is the published immutable index rebuilt
  // after every mutation. Counters are atomics: hits/snapshot_hits are
  // bumped by lock-free readers, the rest under mu (atomic anyway so
  // stats() needs no lock to read them).
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::shared_ptr<CacheEntry>> entries;
    std::size_t bytes = 0;
    SnapshotSlot<const SnapshotTable<CacheEntry>> snapshot;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> snapshot_hits{0};
    std::atomic<std::uint64_t> lock_waits{0};
    std::atomic<std::uint64_t> lazy_hits{0};
    std::atomic<std::uint64_t> lazy_misses{0};
  };

  Budget MakeCompileBudget(std::uint64_t deadline_cap_ms) const;
  std::string UniverseKeyOf(const Alphabet& alphabet) const;

  Shard& ShardOf(std::uint64_t hash) const {
    return shards_[hash & shard_mask_];
  }
  // Locks `mu`, counting a convoy event into `lock_waits` when the lock
  // was contended (try_lock failed and we had to block).
  static std::unique_lock<std::mutex> LockCounted(
      std::mutex& mu, std::atomic<std::uint64_t>& lock_waits);
  std::uint64_t NextStamp() const {
    return clock_.fetch_add(1, std::memory_order_relaxed);
  }

  // All *Locked helpers require the shard's mu held.
  std::shared_ptr<CacheEntry> FindLocked(Shard& shard, const std::string& key);
  void InsertLocked(Shard& shard, std::shared_ptr<CacheEntry> entry);
  void EraseLocked(Shard& shard, const std::string& key);
  // Evicts the shard's coldest entries past its budget; `protect` (the
  // just-inserted key) always survives.
  void EvictShardOverflowLocked(Shard& shard, const std::string& protect);
  void PublishLocked(Shard& shard);
  // Takes one shard lock at a time; evicts globally coldest entries until
  // total accounted bytes fit the global ceiling. Never called with a
  // shard lock held.
  void ReconcileGlobalBytes(const std::string& protect);
  // Erases every artifact bound to `universe_key` in every shard (requires
  // universe_mu_ held; takes shard locks one at a time — the lock order is
  // universe_mu_ before shard mu, never the reverse).
  void CascadeEvictUniverseLocked(const std::string& universe_key);
  void PublishUniversesLocked();

  const Options options_;
  std::size_t shard_count_ = 1;
  std::size_t shard_mask_ = 0;
  std::size_t shard_budget_ = 0;  ///< max_bytes / shard_count_
  std::unique_ptr<Shard[]> shards_;
  std::atomic<std::size_t> total_bytes_{0};
  mutable std::atomic<std::uint64_t> clock_{1};  ///< approximate LRU clock

  mutable std::mutex universe_mu_;
  std::unordered_map<std::string, std::shared_ptr<UniverseEntry>> universes_;
  SnapshotSlot<const SnapshotTable<UniverseEntry>> universe_snapshot_;
  std::atomic<std::uint64_t> universe_lock_waits_{0};
};

}  // namespace xtc

#endif  // XTC_SERVICE_COMPILE_CACHE_H_
