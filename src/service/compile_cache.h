#ifndef XTC_SERVICE_COMPILE_CACHE_H_
#define XTC_SERVICE_COMPILE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/budget.h"
#include "src/base/status.h"
#include "src/fa/alphabet.h"
#include "src/nta/lazy.h"
#include "src/schema/dtd.h"
#include "src/service/request.h"
#include "src/td/transducer.h"
#include "src/td/widths.h"

namespace xtc {

/// An immutable, fully compiled schema artifact. `dtd` has been
/// Dtd::Compile()d (every lazy cache forced) and `determinized` — present
/// exactly when the schema is not DTD(DFA) — likewise, so concurrent reads
/// from service workers are pure. Both share the universe `alphabet`
/// object; the engines compare alphabets by pointer, so artifacts may only
/// be combined with artifacts of the same universe (the cache guarantees
/// this by keying every artifact on the universe's id->name section).
struct CompiledSchema {
  std::shared_ptr<Alphabet> alphabet;
  std::shared_ptr<const Dtd> dtd;
  std::shared_ptr<const Dtd> determinized;  ///< null when dtd->IsDfaDtd()
  std::string key;                          ///< CanonicalDtdText(*dtd)
  std::uint64_t hash = 0;                   ///< HashBytes(key)
  std::size_t bytes = 0;                    ///< accounted size (LRU unit)
};

/// An immutable compiled transducer artifact: the transducer as parsed
/// (selectors intact, for `transform`), its selector-free compilation
/// (Theorems 23/29; identical pointer when already selector-free), and the
/// width analysis of the selector-free form (Proposition 16) so typecheck
/// requests skip re-deriving C and K.
struct CompiledTransducer {
  std::shared_ptr<Alphabet> alphabet;
  std::shared_ptr<const Transducer> original;
  std::shared_ptr<const Transducer> selector_free;
  WidthAnalysis widths;  ///< of *selector_free
  std::string key;       ///< CanonicalTransducerText(*original)
  std::uint64_t hash = 0;
  std::size_t bytes = 0;
};

/// A content-addressed cache of compiled schema/transducer artifacts plus
/// the registry of universe alphabets they are bound to.
///
/// Content addressing: the key is the canonical text of the component
/// (src/schema/canonical.h, src/td/canonical.h), which embeds the universe
/// id->name section; the 64-bit structural hash only buckets, equality is
/// always by full key comparison — hash collisions can cost a lookup, never
/// alias artifacts.
///
/// Universes: one immutable Alphabet object per distinct sorted name set,
/// interned in sorted order so ids are deterministic. Artifacts hold a
/// shared_ptr to their universe's alphabet; evicting a universe cascades to
/// its artifacts (a re-created universe is a *different* Alphabet object,
/// and the engines' pointer comparison must never see a stale one).
///
/// Eviction: strict LRU over artifacts, triggered when accounted bytes
/// exceed `max_bytes` (sizes are measured with the PR-1 Budget byte
/// accounting during compilation). Universe registry is LRU-capped by
/// count. Evicted artifacts stay alive while in-flight requests hold them.
///
/// Concurrency: lookups and inserts are mutex-guarded; compilation runs
/// outside the lock. Two workers missing on the same key both compile;
/// the first insert wins and the loser adopts it — slightly wasteful,
/// never incorrect.
///
/// Thread-compatibility: thread-safe (all public methods).
class CompileCache {
 public:
  struct Options {
    /// Artifact byte ceiling before LRU eviction starts.
    std::size_t max_bytes = std::size_t{64} << 20;
    /// Max distinct universe alphabets kept.
    std::size_t max_universes = 64;
    /// Per-compile Budget byte ceiling: one hostile schema cannot blow up
    /// the process during subset construction (kResourceExhausted instead).
    std::size_t compile_max_bytes = std::size_t{64} << 20;
    /// Per-compile deadline (0 = none).
    std::uint64_t compile_deadline_ms = 0;
    /// Per-rule DFA state cap for DTD(NFA) determinization.
    int max_dfa_states = 1 << 16;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t lazy_hits = 0;    ///< lazy-snapshot lookups served
    std::uint64_t lazy_misses = 0;  ///< lazy-snapshot lookups missed
    std::size_t bytes = 0;
    std::size_t entries = 0;
    std::size_t universes = 0;
  };

  CompileCache();  ///< default Options
  explicit CompileCache(const Options& options);

  /// The shared Alphabet for `universe` (sorted unique names, as returned
  /// by CollectUniverse), creating and registering it on first use. The
  /// returned object is frozen by contract: callers must never Intern into
  /// it (src/base/README.md).
  std::shared_ptr<Alphabet> GetOrCreateAlphabet(
      const std::vector<std::string>& universe);

  /// Returns the compiled artifact for `spec` under `alphabet`, compiling
  /// on miss. `cache_hit` (optional) reports whether this call was served
  /// from cache. Compile failures (budget exhaustion, bad rules) are not
  /// cached; the next request retries. `deadline_cap_ms`, when non-zero,
  /// further bounds the compile's wall clock — deadline propagation: a
  /// request with 20ms of patience left must not pay a multi-second
  /// hostile determinization, even if the configured compile deadline
  /// would allow it.
  StatusOr<std::shared_ptr<const CompiledSchema>> GetOrCompileSchema(
      const SchemaSpec& spec, const std::shared_ptr<Alphabet>& alphabet,
      bool* cache_hit = nullptr, std::uint64_t deadline_cap_ms = 0);

  StatusOr<std::shared_ptr<const CompiledTransducer>> GetOrCompileTransducer(
      const TransducerSpec& spec, const std::shared_ptr<Alphabet>& alphabet,
      bool* cache_hit = nullptr, std::uint64_t deadline_cap_ms = 0);

  /// Returns the cached lazy discovered-state snapshot for `key` (the
  /// caller's content address for the emptiness query, e.g. the joined
  /// artifact keys plus engine parameters), or null on miss. Snapshots are
  /// complete or partial interned state tables of src/nta/lazy.h runs:
  /// resuming from one replays discovery instead of re-deriving it.
  std::shared_ptr<const LazySnapshot> GetLazySnapshot(const std::string& key);

  /// Stores `snapshot` under `key`, byte-accounted on the artifact LRU
  /// (ApproxBytes + flat overhead). First insert wins: equal keys describe
  /// the same query, so the tables are interchangeable and a racing worker
  /// adopts whichever landed first. Null snapshots are ignored.
  void PutLazySnapshot(const std::string& key,
                       std::shared_ptr<const LazySnapshot> snapshot);

  Stats stats() const;

  /// Drops all artifacts and universes (cumulative counters are kept).
  void Clear();

 private:
  struct Entry {
    // Exactly one of schema/transducer/lazy is set. Lazy entries carry an
    // empty universe_key: their tables are interned int tuples with no
    // Alphabet binding, so universe cascade eviction never touches them.
    std::string universe_key;
    std::shared_ptr<const CompiledSchema> schema;
    std::shared_ptr<const CompiledTransducer> transducer;
    std::shared_ptr<const LazySnapshot> lazy;
    std::size_t bytes = 0;
    std::list<std::string>::iterator lru_it;
  };
  struct Universe {
    std::shared_ptr<Alphabet> alphabet;
    std::list<std::string>::iterator lru_it;
  };

  Budget MakeCompileBudget(std::uint64_t deadline_cap_ms) const;
  std::string UniverseKeyOf(const Alphabet& alphabet) const;
  // All *Locked helpers require mu_ held.
  Entry* LookupLocked(const std::string& key);
  void InsertLocked(std::string key, Entry entry);
  void EvictOverflowLocked();
  void EraseEntryLocked(const std::string& key);

  const Options options_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  ///< front = most recently used artifact key
  std::unordered_map<std::string, Universe> universes_;
  std::list<std::string> universe_lru_;  ///< front = most recently used
  std::size_t bytes_ = 0;
  Stats counters_;  ///< hits/misses/evictions (sizes derived on read)
};

}  // namespace xtc

#endif  // XTC_SERVICE_COMPILE_CACHE_H_
