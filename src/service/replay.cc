#include "src/service/replay.h"

#include <utility>

#include "src/fa/regex.h"
#include "src/workload/families.h"

namespace xtc {

StatusOr<SchemaSpec> SerializeSchema(const Dtd& dtd) {
  const Alphabet& alphabet = *dtd.alphabet();
  SchemaSpec spec;
  spec.start = alphabet.Name(dtd.start());
  for (int s = 0; s < dtd.num_symbols(); ++s) {
    if (!dtd.HasRule(s)) continue;
    const RegexPtr& re = dtd.RuleRegex(s);
    if (re == nullptr) {
      return UnimplementedError(
          "schema rule for '" + alphabet.Name(s) +
          "' is an explicit NFA/DFA; only regex rules are wire-serializable");
    }
    spec.rules.emplace_back(alphabet.Name(s), RegexToString(*re, alphabet));
  }
  return spec;
}

StatusOr<TransducerSpec> SerializeTransducer(const Transducer& t) {
  for (int i = 0; i < t.num_selectors(); ++i) {
    if (t.selector(i).pattern == nullptr) {
      return UnimplementedError(
          "DFA selectors have no wire syntax; compile them away first");
    }
  }
  TransducerSpec spec;
  for (int q = 0; q < t.num_states(); ++q) spec.states.push_back(t.StateName(q));
  spec.initial = t.StateName(t.initial());
  for (const auto& [key, rhs] : t.rules()) {
    spec.rules.push_back({t.StateName(key.first),
                          t.alphabet()->Name(key.second),
                          t.RhsToString(rhs)});
  }
  return spec;
}

StatusOr<ServiceRequest> TypecheckRequestFromExample(const PaperExample& ex) {
  ServiceRequest request;
  request.op = ServiceOp::kTypecheck;
  XTC_ASSIGN_OR_RETURN(request.din, SerializeSchema(*ex.din));
  XTC_ASSIGN_OR_RETURN(request.dout, SerializeSchema(*ex.dout));
  XTC_ASSIGN_OR_RETURN(request.transducer,
                       SerializeTransducer(*ex.transducer));
  return request;
}

StatusOr<std::vector<ServiceRequest>> MakeFamilyBatch(const std::string& family,
                                                      int n, int count,
                                                      int distinct) {
  if (count <= 0 || distinct <= 0 || n <= 0) {
    return InvalidArgumentError("family batch needs n, count, distinct >= 1");
  }
  std::vector<ServiceRequest> batch;
  batch.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    int size = n + i % distinct;
    PaperExample ex;
    if (family == "filter") {
      ex = FilterFamily(size);
    } else if (family == "failing") {
      ex = FailingFilterFamily(size);
    } else if (family == "width") {
      ex = WidthFamily(/*c=*/size, /*k=*/size);
    } else if (family == "relab") {
      ex = RelabFamily(size);
    } else if (family == "replus") {
      ex = RePlusCopyFamily(size);
    } else if (family == "xpath") {
      ex = XPathChainFamily(size);
    } else if (family == "nfa") {
      ex = NfaSchemaFamily(size);
    } else {
      return InvalidArgumentError(
          "unknown family '" + family +
          "' (filter | failing | width | relab | replus | xpath | nfa)");
    }
    XTC_ASSIGN_OR_RETURN(ServiceRequest request,
                         TypecheckRequestFromExample(ex));
    request.id = i + 1;
    batch.push_back(std::move(request));
  }
  return batch;
}

}  // namespace xtc
