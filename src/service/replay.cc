#include "src/service/replay.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "src/fa/regex.h"
#include "src/stream/doc_gen.h"
#include "src/workload/families.h"

namespace xtc {
namespace {

// splitmix64 (Steele et al.): a full-avalanche mix, so consecutive
// (id, attempt) pairs land on decorrelated jitter values.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

StatusOr<SchemaSpec> SerializeSchema(const Dtd& dtd) {
  const Alphabet& alphabet = *dtd.alphabet();
  SchemaSpec spec;
  spec.start = alphabet.Name(dtd.start());
  for (int s = 0; s < dtd.num_symbols(); ++s) {
    if (!dtd.HasRule(s)) continue;
    const RegexPtr& re = dtd.RuleRegex(s);
    if (re == nullptr) {
      return UnimplementedError(
          "schema rule for '" + alphabet.Name(s) +
          "' is an explicit NFA/DFA; only regex rules are wire-serializable");
    }
    spec.rules.emplace_back(alphabet.Name(s), RegexToString(*re, alphabet));
  }
  return spec;
}

StatusOr<TransducerSpec> SerializeTransducer(const Transducer& t) {
  for (int i = 0; i < t.num_selectors(); ++i) {
    if (t.selector(i).pattern == nullptr) {
      return UnimplementedError(
          "DFA selectors have no wire syntax; compile them away first");
    }
  }
  TransducerSpec spec;
  for (int q = 0; q < t.num_states(); ++q) spec.states.push_back(t.StateName(q));
  spec.initial = t.StateName(t.initial());
  for (const auto& [key, rhs] : t.rules()) {
    spec.rules.push_back({t.StateName(key.first),
                          t.alphabet()->Name(key.second),
                          t.RhsToString(rhs)});
  }
  return spec;
}

StatusOr<ServiceRequest> TypecheckRequestFromExample(const PaperExample& ex) {
  ServiceRequest request;
  request.op = ServiceOp::kTypecheck;
  XTC_ASSIGN_OR_RETURN(request.din, SerializeSchema(*ex.din));
  XTC_ASSIGN_OR_RETURN(request.dout, SerializeSchema(*ex.dout));
  XTC_ASSIGN_OR_RETURN(request.transducer,
                       SerializeTransducer(*ex.transducer));
  return request;
}

SchemaSpec StreamDocSchemaSpec() {
  SchemaSpec spec;
  spec.start = "root";
  spec.rules.emplace_back("root", "(section|item)*");
  spec.rules.emplace_back("section", "(section|item)*");
  spec.rules.emplace_back("item", "%");
  return spec;
}

TransducerSpec StreamDocTransducerSpec() {
  TransducerSpec spec;
  spec.states = {"m"};
  spec.initial = "m";
  spec.rules.push_back({"m", "root", "root(m)"});
  spec.rules.push_back({"m", "section", "section(m)"});
  spec.rules.push_back({"m", "item", "item"});
  return spec;
}

TransducerSpec StreamDocCopyTransducerSpec() {
  TransducerSpec spec;
  spec.states = {"m"};
  spec.initial = "m";
  spec.rules.push_back({"m", "root", "root(m)"});
  // Two state leaves under one label: the second copy of every section's
  // children cannot stream and lands in the spill buffer.
  spec.rules.push_back({"m", "section", "section(m m)"});
  spec.rules.push_back({"m", "item", "item"});
  return spec;
}

StatusOr<std::vector<ServiceRequest>> MakeFamilyBatch(const std::string& family,
                                                      int n, int count,
                                                      int distinct) {
  if (count <= 0 || distinct <= 0 || n <= 0) {
    return InvalidArgumentError("family batch needs n, count, distinct >= 1");
  }
  std::vector<ServiceRequest> batch;
  batch.reserve(static_cast<std::size_t>(count));
  if (family == "vstream" || family == "tstream") {
    for (int i = 0; i < count; ++i) {
      StreamDocSpec doc_spec;
      doc_spec.shape = StreamDocSpec::Shape::kMixed;
      doc_spec.nodes = static_cast<std::uint64_t>(n + i % distinct);
      ServiceRequest request;
      request.id = i + 1;
      request.doc = RenderDoc(doc_spec);
      if (family == "vstream") {
        request.op = ServiceOp::kValidateStream;
        request.schema = StreamDocSchemaSpec();
      } else {
        request.op = ServiceOp::kTransformStream;
        request.transducer = StreamDocTransducerSpec();
      }
      batch.push_back(std::move(request));
    }
    return batch;
  }
  for (int i = 0; i < count; ++i) {
    int size = n + i % distinct;
    PaperExample ex;
    if (family == "filter") {
      ex = FilterFamily(size);
    } else if (family == "failing") {
      ex = FailingFilterFamily(size);
    } else if (family == "width") {
      ex = WidthFamily(/*c=*/size, /*k=*/size);
    } else if (family == "relab") {
      ex = RelabFamily(size);
    } else if (family == "replus") {
      ex = RePlusCopyFamily(size);
    } else if (family == "xpath") {
      ex = XPathChainFamily(size);
    } else if (family == "nfa") {
      ex = NfaSchemaFamily(size);
    } else {
      return InvalidArgumentError(
          "unknown family '" + family +
          "' (filter | failing | width | relab | replus | xpath | nfa | "
          "vstream | tstream)");
    }
    XTC_ASSIGN_OR_RETURN(ServiceRequest request,
                         TypecheckRequestFromExample(ex));
    request.id = i + 1;
    batch.push_back(std::move(request));
  }
  return batch;
}

std::uint64_t RetryBackoffMs(const RetryPolicy& policy, std::uint64_t attempt,
                             std::uint64_t retry_after_ms,
                             std::uint64_t request_id) {
  if (attempt == 0) attempt = 1;
  std::uint64_t base = policy.base_backoff_ms > 0 ? policy.base_backoff_ms : 1;
  // base << (attempt-1), saturating well before the shift overflows.
  std::uint64_t backoff = attempt - 1 < 32 ? base << (attempt - 1)
                                           : policy.max_backoff_ms;
  backoff = std::min(backoff, policy.max_backoff_ms);
  backoff = std::max(backoff, retry_after_ms);
  std::uint64_t jitter_range = backoff / 4 + 1;
  std::uint64_t jitter =
      Mix64(policy.jitter_seed ^ Mix64(request_id) ^ attempt) % jitter_range;
  return backoff + jitter;
}

RetryOutcome SubmitWithRetry(TypecheckService& service, ServiceRequest request,
                             const RetryPolicy& policy) {
  RetryOutcome outcome;
  int max_attempts = std::max(policy.max_attempts, 1);
  for (int attempt = 1;; ++attempt) {
    request.attempt = static_cast<std::uint64_t>(attempt - 1);
    ServiceRequest copy = request;  // keep one for the next attempt
    outcome.attempts = static_cast<std::uint64_t>(attempt);
    outcome.response = service.Submit(std::move(copy)).get();
    if (outcome.response.status.ok() ||
        outcome.response.retry_after_ms == 0 || attempt >= max_attempts) {
      return outcome;
    }
    std::uint64_t backoff = RetryBackoffMs(
        policy, static_cast<std::uint64_t>(attempt),
        outcome.response.retry_after_ms, request.id);
    outcome.backoff_ms_total += backoff;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
  }
}

}  // namespace xtc
