// xtcd: the NDJSON typechecking daemon. Reads one request object per stdin
// line, dispatches it to the concurrent TypecheckService, and streams one
// response object per line to stdout in submission order. See DESIGN.md
// section 4 and the README quick-start for the request schema.
//
//   ./xtcd --threads=4 --queue=256 < requests.ndjson > responses.ndjson

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>

#include "src/service/service.h"

namespace {

struct Flags {
  int threads = 4;
  std::size_t queue = 256;
  std::uint64_t deadline_ms = 0;
  std::size_t cache_mb = 64;
  bool print_stats = false;
};

bool ParseFlag(const char* arg, const char* name, long long* out) {
  std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  char* end = nullptr;
  long long v = std::strtoll(arg + len + 1, &end, 10);
  if (end == nullptr || *end != '\0' || v < 0) return false;
  *out = v;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--threads=N] [--queue=N] [--deadline-ms=N]\n"
               "          [--cache-mb=N] [--stats]\n"
               "Reads NDJSON requests from stdin, writes NDJSON responses to "
               "stdout.\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    long long v = 0;
    if (ParseFlag(argv[i], "--threads", &v)) {
      flags.threads = static_cast<int>(v);
    } else if (ParseFlag(argv[i], "--queue", &v)) {
      flags.queue = static_cast<std::size_t>(v);
    } else if (ParseFlag(argv[i], "--deadline-ms", &v)) {
      flags.deadline_ms = static_cast<std::uint64_t>(v);
    } else if (ParseFlag(argv[i], "--cache-mb", &v)) {
      flags.cache_mb = static_cast<std::size_t>(v);
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      flags.print_stats = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (flags.threads < 1 || flags.queue < 1) return Usage(argv[0]);

  xtc::TypecheckService::Options options;
  options.num_threads = flags.threads;
  options.queue_capacity = flags.queue;
  options.default_deadline_ms = flags.deadline_ms;
  options.cache.max_bytes = flags.cache_mb << 20;
  xtc::TypecheckService service(options);

  // The reader (main thread) submits; the writer drains futures in
  // submission order so responses stream out ordered even though workers
  // complete out of order. The hand-off buffer is bounded: with the service
  // queue full, submission blocks here instead of buffering every future of
  // an arbitrarily long input.
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::future<xtc::ServiceResponse>> pending;
  bool done = false;
  const std::size_t max_pending = flags.queue + 64;

  std::thread writer([&] {
    while (true) {
      std::future<xtc::ServiceResponse> next;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return done || !pending.empty(); });
        if (pending.empty()) return;
        next = std::move(pending.front());
        pending.pop_front();
      }
      cv.notify_all();
      std::string line = next.get().ToJsonLine();
      line.push_back('\n');
      std::fwrite(line.data(), 1, line.size(), stdout);
      std::fflush(stdout);
    }
  });

  std::string line;
  std::int64_t line_number = 0;
  while (std::getline(std::cin, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::future<xtc::ServiceResponse> future;
    xtc::StatusOr<xtc::ServiceRequest> request =
        xtc::ParseServiceRequest(line);
    if (request.ok()) {
      if (request->id == 0) request->id = line_number;
      future = service.Submit(*std::move(request));
    } else {
      // Protocol errors still produce a response line, keeping the
      // one-line-in/one-line-out pairing intact for the client.
      xtc::ServiceResponse response;
      response.id = line_number;
      response.status = request.status();
      std::promise<xtc::ServiceResponse> ready;
      future = ready.get_future();
      ready.set_value(std::move(response));
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return pending.size() < max_pending; });
    pending.push_back(std::move(future));
    cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    done = true;
  }
  cv.notify_all();
  writer.join();

  if (flags.print_stats) {
    xtc::ServiceStats stats = service.stats();
    std::fprintf(stderr,
                 "xtcd: submitted=%llu completed=%llu failed=%llu shed=%llu "
                 "p50=%.3fms p99=%.3fms cache_hits=%llu cache_misses=%llu "
                 "cache_bytes=%zu cache_entries=%zu\n",
                 static_cast<unsigned long long>(stats.submitted),
                 static_cast<unsigned long long>(stats.completed),
                 static_cast<unsigned long long>(stats.failed),
                 static_cast<unsigned long long>(stats.shed),
                 stats.latency_p50_ms, stats.latency_p99_ms,
                 static_cast<unsigned long long>(stats.cache.hits),
                 static_cast<unsigned long long>(stats.cache.misses),
                 stats.cache.bytes, stats.cache.entries);
  }
  return 0;
}
