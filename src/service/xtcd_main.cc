// xtcd: the NDJSON typechecking daemon. Reads one request object per stdin
// line, dispatches it to the concurrent TypecheckService, and streams one
// response object per line to stdout in submission order. See DESIGN.md
// section 4 and the README quick-start for the request schema.
//
//   ./xtcd --threads=4 --queue=256 < requests.ndjson > responses.ndjson

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>

#include "src/service/service.h"
#include "src/service/stream.h"

namespace {

struct Flags {
  int threads = 4;
  std::size_t queue = 256;
  std::uint64_t deadline_ms = 0;
  std::size_t cache_mb = 64;
  std::size_t cache_shards = 8;   // compile-cache hash partitions
  std::size_t max_streams = 64;   // open chunked-stream session cap (0 = off)
  std::uint64_t drain_ms = 5000;  // grace period for queued work on signal
  int degrade_pct = 75;           // load %: typechecks go approximate-only
  int reject_pct = 95;            // load %: requests are shed
  int antichain = 1;              // default for requests not setting it (0/1)
  int dense_threshold = 0;        // subset-mask dense/sparse cap (0 = engine)
  bool print_stats = false;
};

// SIGTERM/SIGINT request a graceful drain: stop reading stdin, let queued
// work finish within --drain-ms, fail the rest cleanly, then exit. The
// handler only sets a flag; sigaction is installed without SA_RESTART so a
// blocking stdin read returns EINTR and the reader loop observes the flag.
std::atomic<bool> g_shutdown{false};

void HandleSignal(int) { g_shutdown.store(true, std::memory_order_relaxed); }

void InstallSignalHandlers() {
  struct sigaction action = {};
  action.sa_handler = HandleSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: interrupt the blocking getline
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

bool ParseFlag(const char* arg, const char* name, long long* out) {
  std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  char* end = nullptr;
  long long v = std::strtoll(arg + len + 1, &end, 10);
  if (end == nullptr || *end != '\0' || v < 0) return false;
  *out = v;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--threads=N] [--queue=N] [--deadline-ms=N]\n"
               "          [--cache-mb=N] [--cache-shards=N] [--max-streams=N]\n"
               "          [--drain-ms=N] [--degrade-pct=N]\n"
               "          [--reject-pct=N] [--antichain=0|1]\n"
               "          [--dense-threshold=N] [--stats]\n"
               "Reads NDJSON requests from stdin, writes NDJSON responses to "
               "stdout.\n"
               "SIGTERM/SIGINT drain gracefully: queued work gets --drain-ms "
               "to finish.\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    long long v = 0;
    if (ParseFlag(argv[i], "--threads", &v)) {
      flags.threads = static_cast<int>(v);
    } else if (ParseFlag(argv[i], "--queue", &v)) {
      flags.queue = static_cast<std::size_t>(v);
    } else if (ParseFlag(argv[i], "--deadline-ms", &v)) {
      flags.deadline_ms = static_cast<std::uint64_t>(v);
    } else if (ParseFlag(argv[i], "--cache-mb", &v)) {
      flags.cache_mb = static_cast<std::size_t>(v);
    } else if (ParseFlag(argv[i], "--cache-shards", &v)) {
      flags.cache_shards = static_cast<std::size_t>(v);
    } else if (ParseFlag(argv[i], "--max-streams", &v)) {
      flags.max_streams = static_cast<std::size_t>(v);
    } else if (ParseFlag(argv[i], "--drain-ms", &v)) {
      flags.drain_ms = static_cast<std::uint64_t>(v);
    } else if (ParseFlag(argv[i], "--degrade-pct", &v)) {
      flags.degrade_pct = static_cast<int>(v);
    } else if (ParseFlag(argv[i], "--reject-pct", &v)) {
      flags.reject_pct = static_cast<int>(v);
    } else if (ParseFlag(argv[i], "--antichain", &v)) {
      if (v > 1) return Usage(argv[0]);
      flags.antichain = static_cast<int>(v);
    } else if (ParseFlag(argv[i], "--dense-threshold", &v)) {
      flags.dense_threshold = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      flags.print_stats = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (flags.threads < 1 || flags.queue < 1) return Usage(argv[0]);

  InstallSignalHandlers();

  xtc::TypecheckService::Options options;
  options.num_threads = flags.threads;
  options.queue_capacity = flags.queue;
  options.default_deadline_ms = flags.deadline_ms;
  options.degrade_load = flags.degrade_pct / 100.0;
  options.reject_load = flags.reject_pct / 100.0;
  options.cache.max_bytes = flags.cache_mb << 20;
  options.cache.shards = flags.cache_shards;
  options.max_open_streams = flags.max_streams;
  options.antichain = flags.antichain != 0;
  options.dense_threshold = flags.dense_threshold;
  xtc::TypecheckService service(options);

  // The reader (main thread) submits; the writer drains futures in
  // submission order so responses stream out ordered even though workers
  // complete out of order. The hand-off buffer is bounded: with the service
  // queue full, submission blocks here instead of buffering every future of
  // an arbitrarily long input.
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::future<xtc::ServiceResponse>> pending;
  bool done = false;
  const std::size_t max_pending = flags.queue + 64;

  std::thread writer([&] {
    while (true) {
      std::future<xtc::ServiceResponse> next;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return done || !pending.empty(); });
        if (pending.empty()) return;
        next = std::move(pending.front());
        pending.pop_front();
      }
      cv.notify_all();
      std::string line = next.get().ToJsonLine();
      line.push_back('\n');
      std::fwrite(line.data(), 1, line.size(), stdout);
      std::fflush(stdout);
    }
  });

  std::string line;
  std::int64_t line_number = 0;
  while (!g_shutdown.load(std::memory_order_relaxed) &&
         std::getline(std::cin, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::future<xtc::ServiceResponse> future;
    xtc::StatusOr<xtc::ServiceRequest> request =
        xtc::ParseServiceRequest(line);
    if (request.ok() && request->chunked && xtc::IsStreamOp(request->op)) {
      // Chunked stream: the document follows as doc_chunk lines, pumped on
      // this thread straight into the session — no queue hop, O(depth)
      // memory end to end. A malformed chunk line aborts the stream (the
      // framing is lost), but still yields exactly one response line.
      if (request->id == 0) request->id = line_number;
      std::unique_ptr<xtc::StreamSession> session =
          service.OpenStream(*std::move(request));
      bool saw_last = false;
      xtc::Status framing = xtc::Status::Ok();
      while (!saw_last && !g_shutdown.load(std::memory_order_relaxed) &&
             std::getline(std::cin, line)) {
        ++line_number;
        xtc::StatusOr<xtc::DocChunk> chunk = xtc::ParseDocChunk(line);
        if (!chunk.ok()) {
          framing = chunk.status();
          break;
        }
        session->Push(chunk->data);
        saw_last = chunk->last;
      }
      xtc::ServiceResponse response = session->Finish();
      if (!framing.ok()) {
        response.status = framing;
      } else if (!saw_last && response.status.ok()) {
        response.status = xtc::InvalidArgumentError(
            "stream ended before a last:true doc_chunk line");
      }
      std::promise<xtc::ServiceResponse> ready;
      future = ready.get_future();
      ready.set_value(std::move(response));
    } else if (request.ok()) {
      if (request->id == 0) request->id = line_number;
      future = service.Submit(*std::move(request));
    } else {
      // Protocol errors still produce a response line, keeping the
      // one-line-in/one-line-out pairing intact for the client.
      xtc::ServiceResponse response;
      response.id = line_number;
      response.status = request.status();
      std::promise<xtc::ServiceResponse> ready;
      future = ready.get_future();
      ready.set_value(std::move(response));
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return pending.size() < max_pending; });
    pending.push_back(std::move(future));
    cv.notify_all();
  }
  const bool interrupted = g_shutdown.load(std::memory_order_relaxed);
  xtc::DrainReport report;
  if (interrupted) {
    // Graceful drain: close admission now, give queued work --drain-ms to
    // finish, fail the remainder cleanly. Every pending future resolves,
    // so the writer below flushes a response line for every request read.
    report = service.Stop(std::chrono::milliseconds(flags.drain_ms));
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    done = true;
  }
  cv.notify_all();
  writer.join();
  if (!interrupted) {
    // EOF path: the writer has drained every future, so the queue is
    // already empty and this records a clean zero-cancellation drain.
    report = service.Stop(std::chrono::milliseconds(0));
  }

  if (flags.print_stats || interrupted) {
    xtc::ServiceStats stats = service.stats();
    // Per-shard contention telemetry, compact: hits:misses:evictions per
    // shard in index order — a convoying shard shows up as one hot column.
    std::string shard_hme;
    for (const xtc::CompileCache::ShardStats& shard : stats.cache.per_shard) {
      if (!shard_hme.empty()) shard_hme += ',';
      shard_hme += std::to_string(shard.hits) + ':' +
                   std::to_string(shard.misses) + ':' +
                   std::to_string(shard.evictions);
    }
    std::fprintf(stderr,
                 "xtcd: %s drain=%s drained=%llu cancelled=%llu "
                 "submitted=%llu completed=%llu failed=%llu shed=%llu "
                 "tier_exact=%llu tier_approximate=%llu "
                 "shed_queue_full=%llu shed_overload=%llu shed_deadline=%llu "
                 "shed_stopping=%llu shed_stream_limit=%llu "
                 "expired_in_queue=%llu "
                 "pruned=%llu displaced=%llu "
                 "p50=%.3fms p99=%.3fms cache_hits=%llu cache_misses=%llu "
                 "cache_snapshot_hits=%llu cache_lock_waits=%llu "
                 "cache_bytes=%zu cache_entries=%zu cache_shards=%zu "
                 "cache_shard_hme=%s\n",
                 interrupted ? "signal" : "eof",
                 report.clean ? "clean" : "deadline",
                 static_cast<unsigned long long>(report.drained),
                 static_cast<unsigned long long>(report.cancelled),
                 static_cast<unsigned long long>(stats.submitted),
                 static_cast<unsigned long long>(stats.completed),
                 static_cast<unsigned long long>(stats.failed),
                 static_cast<unsigned long long>(stats.shed),
                 static_cast<unsigned long long>(stats.tier_exact),
                 static_cast<unsigned long long>(stats.tier_approximate),
                 static_cast<unsigned long long>(stats.shed_queue_full),
                 static_cast<unsigned long long>(stats.shed_overload),
                 static_cast<unsigned long long>(stats.shed_deadline),
                 static_cast<unsigned long long>(stats.shed_stopping),
                 static_cast<unsigned long long>(stats.shed_stream_limit),
                 static_cast<unsigned long long>(stats.expired_in_queue),
                 static_cast<unsigned long long>(stats.pruned_configs),
                 static_cast<unsigned long long>(stats.displaced_configs),
                 stats.latency_p50_ms, stats.latency_p99_ms,
                 static_cast<unsigned long long>(stats.cache.hits),
                 static_cast<unsigned long long>(stats.cache.misses),
                 static_cast<unsigned long long>(stats.cache.snapshot_hits),
                 static_cast<unsigned long long>(stats.cache.lock_waits),
                 stats.cache.bytes, stats.cache.entries, stats.cache.shards,
                 shard_hme.c_str());
  }
  return 0;
}
