// xtc_loadgen: open-loop load harness for the typechecking service.
//
// Replays a mixed warm/cold/hostile schedule at a target offered rate and
// reports throughput, latency percentiles (p50/p99/p999), and per-tier
// shed rates as one JSON document.
//
//   gate mode (default) — calibrate the sustainable warm-cache rate, then
//     run the mix unloaded (0.5x) and overloaded (2x); the CI overload
//     smoke (ci/overload_gate.py) checks the invariants on the output:
//       ./xtc_loadgen --threads=2 --duration-s=2
//   run mode — one run at an explicit rate:
//       ./xtc_loadgen --mode=run --qps=200 --duration-s=5 --threads=4

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/service/loadgen.h"

namespace {

struct Flags {
  std::string mode = "gate";
  std::string mix = "standard";  // standard | warm (95% warm repeats)
  double qps = 100;        // run mode only; gate mode calibrates
  double duration_s = 2.0;
  int threads = 2;
  std::size_t queue = 64;
  std::uint64_t seed = 1;
  std::uint64_t deadline_ms = 250;  // warm/cold patience in the mix
  std::uint64_t hostile_deadline_ms = 100;
  int antichain = 1;        // service default for the generated traffic
  int dense_threshold = 0;  // 0 = engine default (kDefaultDenseThreshold)
};

bool ParseNum(const char* arg, const char* name, double* out) {
  std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  char* end = nullptr;
  double v = std::strtod(arg + len + 1, &end);
  if (end == nullptr || *end != '\0' || v < 0) return false;
  *out = v;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--mode=gate|run] [--mix=standard|warm] [--qps=N] "
               "[--duration-s=N]\n"
               "          [--threads=N] [--queue=N] [--seed=N] "
               "[--deadline-ms=N] [--hostile-deadline-ms=N]\n"
               "          [--antichain=0|1] [--dense-threshold=N]\n",
               argv0);
  return 2;
}

// The canonical overload mix (DESIGN.md section 4): mostly warm repeats of
// one hot key, a cold tail of distinct compiles, and a hostile slice of
// NfaSchemaFamily instances — the Theorem 18 EXPTIME inclusion shape whose
// determinization cost dwarfs its deadline, so it must be degraded or
// shed, never allowed to starve the warm traffic.
std::vector<xtc::LoadClass> MixClasses(const Flags& flags) {
  xtc::LoadClass warm;
  warm.name = "warm";
  warm.family = "filter";
  warm.n = 6;
  warm.distinct = 1;
  warm.weight = 0.8;
  warm.deadline_ms = flags.deadline_ms;
  warm.prewarm = true;

  if (flags.mix == "warm") {
    // Warm-heavy mix: ~95% warm repeats over a small prewarmed key set,
    // with a thin cold tail. This is the sharded cache's target workload —
    // nearly every request should resolve on the lock-free snapshot path,
    // so cache_lock_waits should stay near zero and cache_snapshot_hits
    // should track cache_hits.
    warm.distinct = 4;
    warm.weight = 0.95;

    xtc::LoadClass trickle;
    trickle.name = "cold";
    trickle.family = "xpath";
    trickle.n = 2;
    trickle.distinct = 6;
    trickle.weight = 0.05;
    trickle.deadline_ms = flags.deadline_ms;
    return {warm, trickle};
  }

  xtc::LoadClass cold;
  cold.name = "cold";
  cold.family = "xpath";
  cold.n = 2;
  cold.distinct = 6;
  cold.weight = 0.1;
  cold.deadline_ms = flags.deadline_ms;

  xtc::LoadClass hostile;
  hostile.name = "hostile";
  hostile.family = "nfa";
  hostile.n = 10;
  hostile.distinct = 4;
  hostile.weight = 0.1;
  hostile.deadline_ms = flags.hostile_deadline_ms;

  return {warm, cold, hostile};
}

void PrintReport(const char* key, const xtc::LoadgenReport& report,
                 bool trailing_comma) {
  std::printf("  \"%s\": {\"offered_qps\": %.1f, \"achieved_qps\": %.1f, "
              "\"wall_s\": %.3f, \"offered\": %llu, \"ok\": %llu, "
              "\"shed\": %llu, \"failed\": %llu, \"classes\": {",
              key, report.offered_qps, report.achieved_qps, report.wall_s,
              static_cast<unsigned long long>(report.offered),
              static_cast<unsigned long long>(report.ok),
              static_cast<unsigned long long>(report.shed),
              static_cast<unsigned long long>(report.failed));
  bool first = true;
  for (const auto& [name, cls] : report.classes) {
    std::printf("%s\"%s\": {\"offered\": %llu, \"ok\": %llu, "
                "\"shed\": %llu, \"failed\": %llu, \"tier_exact\": %llu, "
                "\"tier_approximate\": %llu, \"p50_ms\": %.3f, "
                "\"p99_ms\": %.3f, \"p999_ms\": %.3f, \"max_ms\": %.3f}",
                first ? "" : ", ", name.c_str(),
                static_cast<unsigned long long>(cls.offered),
                static_cast<unsigned long long>(cls.ok),
                static_cast<unsigned long long>(cls.shed),
                static_cast<unsigned long long>(cls.failed),
                static_cast<unsigned long long>(cls.tier_exact),
                static_cast<unsigned long long>(cls.tier_approximate),
                cls.p50_ms, cls.p99_ms, cls.p999_ms, cls.max_ms);
    first = false;
  }
  const xtc::ServiceStats& stats = report.service;
  std::printf("}, \"service\": {\"shed_queue_full\": %llu, "
              "\"shed_overload\": %llu, \"shed_deadline\": %llu, "
              "\"shed_stream_limit\": %llu, "
              "\"expired_in_queue\": %llu, \"cost_ewma_ms\": %.3f, "
              "\"cache_hits\": %llu, \"cache_misses\": %llu, "
              "\"cache_snapshot_hits\": %llu, \"cache_lock_waits\": %llu, "
              "\"cache_shards\": [",
              static_cast<unsigned long long>(stats.shed_queue_full),
              static_cast<unsigned long long>(stats.shed_overload),
              static_cast<unsigned long long>(stats.shed_deadline),
              static_cast<unsigned long long>(stats.shed_stream_limit),
              static_cast<unsigned long long>(stats.expired_in_queue),
              stats.cost_ewma_ms,
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.misses),
              static_cast<unsigned long long>(stats.cache.snapshot_hits),
              static_cast<unsigned long long>(stats.cache.lock_waits));
  // Per-shard convoy telemetry: a single hot shard (skewed key space) or a
  // high lock_waits column is visible here before it shows up as latency.
  first = true;
  for (const xtc::CompileCache::ShardStats& shard : stats.cache.per_shard) {
    std::printf("%s{\"hits\": %llu, \"misses\": %llu, \"evictions\": %llu, "
                "\"snapshot_hits\": %llu, \"lock_waits\": %llu}",
                first ? "" : ", ",
                static_cast<unsigned long long>(shard.hits),
                static_cast<unsigned long long>(shard.misses),
                static_cast<unsigned long long>(shard.evictions),
                static_cast<unsigned long long>(shard.snapshot_hits),
                static_cast<unsigned long long>(shard.lock_waits));
    first = false;
  }
  std::printf("]}}%s\n", trailing_comma ? "," : "");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    double v = 0;
    std::size_t len = std::strlen("--mode");
    if (std::strncmp(argv[i], "--mode", len) == 0 && argv[i][len] == '=') {
      flags.mode = argv[i] + len + 1;
    } else if (std::strncmp(argv[i], "--mix", 5) == 0 && argv[i][5] == '=') {
      flags.mix = argv[i] + 6;
    } else if (ParseNum(argv[i], "--qps", &v)) {
      flags.qps = v;
    } else if (ParseNum(argv[i], "--duration-s", &v)) {
      flags.duration_s = v;
    } else if (ParseNum(argv[i], "--threads", &v)) {
      flags.threads = static_cast<int>(v);
    } else if (ParseNum(argv[i], "--queue", &v)) {
      flags.queue = static_cast<std::size_t>(v);
    } else if (ParseNum(argv[i], "--seed", &v)) {
      flags.seed = static_cast<std::uint64_t>(v);
    } else if (ParseNum(argv[i], "--deadline-ms", &v)) {
      flags.deadline_ms = static_cast<std::uint64_t>(v);
    } else if (ParseNum(argv[i], "--hostile-deadline-ms", &v)) {
      flags.hostile_deadline_ms = static_cast<std::uint64_t>(v);
    } else if (ParseNum(argv[i], "--antichain", &v)) {
      if (v > 1) return Usage(argv[0]);
      flags.antichain = static_cast<int>(v);
    } else if (ParseNum(argv[i], "--dense-threshold", &v)) {
      flags.dense_threshold = static_cast<int>(v);
    } else {
      return Usage(argv[0]);
    }
  }
  if (flags.threads < 1 || flags.queue < 1 || flags.duration_s <= 0) {
    return Usage(argv[0]);
  }
  if (flags.mix != "standard" && flags.mix != "warm") return Usage(argv[0]);

  xtc::LoadgenOptions options;
  options.duration_s = flags.duration_s;
  options.seed = flags.seed;
  options.service.num_threads = flags.threads;
  options.service.queue_capacity = flags.queue;
  // Generated requests leave the wire knobs unset, so the service defaults
  // set here govern the whole run — one switch flips the entire mix.
  options.service.antichain = flags.antichain != 0;
  options.service.dense_threshold = flags.dense_threshold;
  options.classes = MixClasses(flags);

  if (flags.mode == "run") {
    options.offered_qps = flags.qps;
    xtc::StatusOr<xtc::LoadgenReport> report = xtc::RunLoadgen(options);
    if (!report.ok()) {
      std::fprintf(stderr, "xtc_loadgen: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("{\"format\": \"xtc-loadgen-v1\",\n");
    PrintReport("run", *report, /*trailing_comma=*/false);
    std::printf("}\n");
    return 0;
  }
  if (flags.mode != "gate") return Usage(argv[0]);

  // Gate mode: measure the warm-cache sustainable rate, then bracket it.
  xtc::StatusOr<double> sustainable =
      xtc::EstimateSustainableQps(options, options.classes[0]);
  if (!sustainable.ok()) {
    std::fprintf(stderr, "xtc_loadgen: calibration failed: %s\n",
                 sustainable.status().ToString().c_str());
    return 1;
  }
  // Clamp: a fast machine's warm filter requests can calibrate to hundreds
  // of thousands of qps, where the dispatcher itself becomes the
  // bottleneck; the gate's invariants are about ratios, not absolute rate.
  double base = std::min(std::max(*sustainable, 50.0), 2000.0);

  // Unloaded baseline: warm traffic only, at half the sustainable rate —
  // the reference point for "p99 under overload within 5x unloaded".
  xtc::LoadgenOptions baseline = options;
  baseline.classes = {options.classes[0]};
  baseline.offered_qps = base * 0.5;
  xtc::StatusOr<xtc::LoadgenReport> unloaded = xtc::RunLoadgen(baseline);
  if (!unloaded.ok()) {
    std::fprintf(stderr, "xtc_loadgen: unloaded run failed: %s\n",
                 unloaded.status().ToString().c_str());
    return 1;
  }
  double warm_p99_unloaded = unloaded->classes.at("warm").p99_ms;

  // Overload run at 2x: the warm class's deadline becomes its latency SLO
  // (5x the unloaded p99, floored against timer noise). This is deadline
  // propagation doing its job: admission turns the SLO into shed decisions
  // (predicted misses shed up front), the in-queue expiry check fails
  // anything that slipped through, so an *admitted* warm request can never
  // be served arbitrarily late — the ok-response p99 stays near the SLO no
  // matter how hard the hostile slice pounds the queue.
  double warm_slo_ms = 5.0 * std::max(warm_p99_unloaded, 2.0);
  options.classes[0].deadline_ms =
      static_cast<std::uint64_t>(warm_slo_ms) + 1;
  options.offered_qps = base * 2.0;
  options.seed = flags.seed + 1;
  xtc::StatusOr<xtc::LoadgenReport> overload = xtc::RunLoadgen(options);
  if (!overload.ok()) {
    std::fprintf(stderr, "xtc_loadgen: overload run failed: %s\n",
                 overload.status().ToString().c_str());
    return 1;
  }

  std::printf("{\"format\": \"xtc-loadgen-v1\", \"sustainable_qps\": %.1f, "
              "\"warm_slo_ms\": %.3f,\n",
              *sustainable, warm_slo_ms);
  PrintReport("unloaded", *unloaded, /*trailing_comma=*/true);
  PrintReport("overload", *overload, /*trailing_comma=*/false);
  std::printf("}\n");
  return 0;
}
