#include "src/service/request.h"

#include <algorithm>
#include <cmath>

#include "src/fa/regex.h"
#include "src/service/json.h"

namespace xtc {
namespace {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
  }
  return "unknown";
}

Status FieldError(const char* field, const char* expected) {
  return InvalidArgumentError(std::string("request field '") + field + "' " +
                              expected);
}

StatusOr<SchemaSpec> SchemaFromJson(const JsonValue& v, const char* field) {
  if (v.kind() != JsonValue::Kind::kObject) {
    return FieldError(field, "must be an object {start, rules}");
  }
  SchemaSpec spec;
  const JsonValue* start = v.Find("start");
  if (start == nullptr || start->kind() != JsonValue::Kind::kString) {
    return FieldError(field, "needs a string 'start'");
  }
  spec.start = start->AsString();
  if (const JsonValue* rules = v.Find("rules")) {
    if (rules->kind() != JsonValue::Kind::kObject) {
      return FieldError(field, "needs 'rules' as an object {symbol: regex}");
    }
    for (const auto& [symbol, regex] : rules->AsObject()) {
      if (regex.kind() != JsonValue::Kind::kString) {
        return FieldError(field, "has a non-string rule regex");
      }
      spec.rules.emplace_back(symbol, regex.AsString());
    }
  }
  return spec;
}

JsonValue SchemaToJson(const SchemaSpec& spec) {
  JsonValue o = JsonValue::Object();
  o.Set("start", JsonValue::Str(spec.start));
  JsonValue rules = JsonValue::Object();
  for (const auto& [symbol, regex] : spec.rules) {
    rules.Set(symbol, JsonValue::Str(regex));
  }
  o.Set("rules", std::move(rules));
  return o;
}

StatusOr<TransducerSpec> TransducerFromJson(const JsonValue& v) {
  if (v.kind() != JsonValue::Kind::kObject) {
    return FieldError("transducer", "must be an object {states, initial, rules}");
  }
  TransducerSpec spec;
  const JsonValue* states = v.Find("states");
  if (states == nullptr || states->kind() != JsonValue::Kind::kArray) {
    return FieldError("transducer", "needs 'states' as an array of names");
  }
  for (const JsonValue& s : states->AsArray()) {
    if (s.kind() != JsonValue::Kind::kString) {
      return FieldError("transducer", "has a non-string state name");
    }
    spec.states.push_back(s.AsString());
  }
  const JsonValue* initial = v.Find("initial");
  if (initial == nullptr || initial->kind() != JsonValue::Kind::kString) {
    return FieldError("transducer", "needs a string 'initial'");
  }
  spec.initial = initial->AsString();
  if (const JsonValue* rules = v.Find("rules")) {
    if (rules->kind() != JsonValue::Kind::kArray) {
      return FieldError("transducer",
                        "needs 'rules' as an array of [state, symbol, rhs]");
    }
    for (const JsonValue& rule : rules->AsArray()) {
      if (rule.kind() != JsonValue::Kind::kArray ||
          rule.AsArray().size() != 3 ||
          rule.AsArray()[0].kind() != JsonValue::Kind::kString ||
          rule.AsArray()[1].kind() != JsonValue::Kind::kString ||
          rule.AsArray()[2].kind() != JsonValue::Kind::kString) {
        return FieldError("transducer",
                          "rules must be [state, symbol, rhs] string triples");
      }
      spec.rules.push_back({rule.AsArray()[0].AsString(),
                            rule.AsArray()[1].AsString(),
                            rule.AsArray()[2].AsString()});
    }
  }
  return spec;
}

JsonValue TransducerToJson(const TransducerSpec& spec) {
  JsonValue o = JsonValue::Object();
  JsonValue states = JsonValue::Array();
  for (const std::string& s : spec.states) {
    states.MutableArray().push_back(JsonValue::Str(s));
  }
  o.Set("states", std::move(states));
  o.Set("initial", JsonValue::Str(spec.initial));
  JsonValue rules = JsonValue::Array();
  for (const auto& rule : spec.rules) {
    JsonValue triple = JsonValue::Array();
    triple.MutableArray().push_back(JsonValue::Str(rule[0]));
    triple.MutableArray().push_back(JsonValue::Str(rule[1]));
    triple.MutableArray().push_back(JsonValue::Str(rule[2]));
    rules.MutableArray().push_back(std::move(triple));
  }
  o.Set("rules", std::move(rules));
  return o;
}

// Rounds durations to whole microseconds so NDJSON lines stay short and
// deterministic in width.
double RoundMs(double ms) { return std::round(ms * 1000.0) / 1000.0; }

}  // namespace

const char* AdmissionTierName(AdmissionTier tier) {
  switch (tier) {
    case AdmissionTier::kExact:
      return "exact";
    case AdmissionTier::kApproximate:
      return "approximate";
    case AdmissionTier::kRejected:
      return "rejected";
  }
  return "unknown";
}

const char* ShedReasonName(ShedReason reason) {
  switch (reason) {
    case ShedReason::kNone:
      return "none";
    case ShedReason::kQueueFull:
      return "queue_full";
    case ShedReason::kOverload:
      return "overload";
    case ShedReason::kDeadline:
      return "deadline";
    case ShedReason::kStopping:
      return "stopping";
    case ShedReason::kFault:
      return "fault";
    case ShedReason::kStreamLimit:
      return "stream_limit";
  }
  return "unknown";
}

const char* ServiceOpName(ServiceOp op) {
  switch (op) {
    case ServiceOp::kTypecheck:
      return "typecheck";
    case ServiceOp::kValidate:
      return "validate";
    case ServiceOp::kTransform:
      return "transform";
    case ServiceOp::kValidateStream:
      return "validate_stream";
    case ServiceOp::kTransformStream:
      return "transform_stream";
  }
  return "unknown";
}

bool IsStreamOp(ServiceOp op) {
  return op == ServiceOp::kValidateStream || op == ServiceOp::kTransformStream;
}

StatusOr<ServiceRequest> ParseServiceRequest(std::string_view json_line) {
  XTC_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(json_line));
  if (doc.kind() != JsonValue::Kind::kObject) {
    return InvalidArgumentError("request must be a JSON object");
  }
  ServiceRequest request;
  if (const JsonValue* id = doc.Find("id")) {
    if (id->kind() != JsonValue::Kind::kNumber) {
      return FieldError("id", "must be a number");
    }
    request.id = static_cast<std::int64_t>(std::llround(id->AsNumber()));
  }
  const JsonValue* op = doc.Find("op");
  if (op == nullptr || op->kind() != JsonValue::Kind::kString) {
    return FieldError("op", "is required (typecheck | validate | transform)");
  }
  const std::string& op_name = op->AsString();
  if (op_name == "typecheck") {
    request.op = ServiceOp::kTypecheck;
  } else if (op_name == "validate") {
    request.op = ServiceOp::kValidate;
  } else if (op_name == "transform") {
    request.op = ServiceOp::kTransform;
  } else if (op_name == "validate_stream") {
    request.op = ServiceOp::kValidateStream;
  } else if (op_name == "transform_stream") {
    request.op = ServiceOp::kTransformStream;
  } else {
    return FieldError("op",
                      "must be typecheck, validate, transform, "
                      "validate_stream, or transform_stream");
  }

  if (const JsonValue* deadline = doc.Find("deadline_ms")) {
    if (deadline->kind() != JsonValue::Kind::kNumber ||
        deadline->AsNumber() < 0) {
      return FieldError("deadline_ms", "must be a non-negative number");
    }
    request.deadline_ms =
        static_cast<std::uint64_t>(std::llround(deadline->AsNumber()));
  }
  if (const JsonValue* attempt = doc.Find("attempt")) {
    if (attempt->kind() != JsonValue::Kind::kNumber ||
        attempt->AsNumber() < 0) {
      return FieldError("attempt", "must be a non-negative number");
    }
    request.attempt =
        static_cast<std::uint64_t>(std::llround(attempt->AsNumber()));
  }
  if (const JsonValue* want = doc.Find("want_counterexample")) {
    if (want->kind() != JsonValue::Kind::kBool) {
      return FieldError("want_counterexample", "must be a bool");
    }
    request.want_counterexample = want->AsBool();
  }
  if (const JsonValue* approx = doc.Find("approximate_fallback")) {
    if (approx->kind() != JsonValue::Kind::kBool) {
      return FieldError("approximate_fallback", "must be a bool");
    }
    request.approximate_fallback = approx->AsBool();
  }
  if (const JsonValue* threads = doc.Find("threads")) {
    if (threads->kind() != JsonValue::Kind::kNumber ||
        threads->AsNumber() < 1) {
      return FieldError("threads", "must be a number >= 1");
    }
    request.threads = static_cast<int>(std::llround(threads->AsNumber()));
  }
  if (const JsonValue* antichain = doc.Find("antichain")) {
    if (antichain->kind() != JsonValue::Kind::kBool) {
      return FieldError("antichain", "must be a bool");
    }
    request.antichain = antichain->AsBool() ? 1 : 0;
  }
  if (const JsonValue* dense = doc.Find("dense_threshold")) {
    if (dense->kind() != JsonValue::Kind::kNumber || dense->AsNumber() < 1) {
      return FieldError("dense_threshold", "must be a number >= 1");
    }
    request.dense_threshold =
        static_cast<int>(std::llround(dense->AsNumber()));
  }
  if (const JsonValue* engine = doc.Find("engine")) {
    if (engine->kind() != JsonValue::Kind::kString) {
      return FieldError("engine", "must be a string");
    }
    if (engine->AsString() == "auto") {
      request.engine = TypecheckEngine::kAuto;
    } else if (engine->AsString() == "delrelab") {
      request.engine = TypecheckEngine::kDelRelab;
    } else {
      return FieldError("engine", "must be auto or delrelab");
    }
  }
  if (const JsonValue* tree = doc.Find("tree")) {
    if (tree->kind() != JsonValue::Kind::kString) {
      return FieldError("tree", "must be a term-syntax string");
    }
    request.tree = tree->AsString();
  }
  if (const JsonValue* format = doc.Find("format")) {
    if (format->kind() != JsonValue::Kind::kString) {
      return FieldError("format", "must be a string");
    }
    if (format->AsString() == "term") {
      request.format = DocFormat::kTerm;
    } else if (format->AsString() == "xml") {
      request.format = DocFormat::kXml;
    } else {
      return FieldError("format", "must be term or xml");
    }
  }
  if (const JsonValue* d = doc.Find("doc")) {
    if (d->kind() != JsonValue::Kind::kString) {
      return FieldError("doc", "must be an XML string");
    }
    request.doc = d->AsString();
  }
  if (const JsonValue* chunked = doc.Find("chunked")) {
    if (chunked->kind() != JsonValue::Kind::kBool) {
      return FieldError("chunked", "must be a bool");
    }
    request.chunked = chunked->AsBool();
  }

  auto require = [&doc](const char* field) -> StatusOr<const JsonValue*> {
    const JsonValue* v = doc.Find(field);
    if (v == nullptr) {
      return InvalidArgumentError(std::string("request field '") + field +
                                  "' is required for this op");
    }
    return v;
  };
  switch (request.op) {
    case ServiceOp::kTypecheck: {
      XTC_ASSIGN_OR_RETURN(const JsonValue* din, require("din"));
      XTC_ASSIGN_OR_RETURN(request.din, SchemaFromJson(*din, "din"));
      XTC_ASSIGN_OR_RETURN(const JsonValue* dout, require("dout"));
      XTC_ASSIGN_OR_RETURN(request.dout, SchemaFromJson(*dout, "dout"));
      XTC_ASSIGN_OR_RETURN(const JsonValue* td, require("transducer"));
      XTC_ASSIGN_OR_RETURN(request.transducer, TransducerFromJson(*td));
      break;
    }
    case ServiceOp::kValidate: {
      XTC_ASSIGN_OR_RETURN(const JsonValue* schema, require("schema"));
      XTC_ASSIGN_OR_RETURN(request.schema, SchemaFromJson(*schema, "schema"));
      XTC_RETURN_IF_ERROR(require("tree").status());
      break;
    }
    case ServiceOp::kTransform: {
      XTC_ASSIGN_OR_RETURN(const JsonValue* td, require("transducer"));
      XTC_ASSIGN_OR_RETURN(request.transducer, TransducerFromJson(*td));
      XTC_RETURN_IF_ERROR(require("tree").status());
      break;
    }
    case ServiceOp::kValidateStream: {
      XTC_ASSIGN_OR_RETURN(const JsonValue* schema, require("schema"));
      XTC_ASSIGN_OR_RETURN(request.schema, SchemaFromJson(*schema, "schema"));
      if (!request.chunked && doc.Find("doc") == nullptr) {
        return FieldError("doc", "is required unless 'chunked' is true");
      }
      break;
    }
    case ServiceOp::kTransformStream: {
      XTC_ASSIGN_OR_RETURN(const JsonValue* td, require("transducer"));
      XTC_ASSIGN_OR_RETURN(request.transducer, TransducerFromJson(*td));
      if (!request.chunked && doc.Find("doc") == nullptr) {
        return FieldError("doc", "is required unless 'chunked' is true");
      }
      break;
    }
  }
  return request;
}

std::string ServiceRequestToJson(const ServiceRequest& request) {
  JsonValue o = JsonValue::Object();
  o.Set("id", JsonValue::Number(static_cast<double>(request.id)));
  o.Set("op", JsonValue::Str(ServiceOpName(request.op)));
  switch (request.op) {
    case ServiceOp::kTypecheck:
      o.Set("din", SchemaToJson(request.din));
      o.Set("dout", SchemaToJson(request.dout));
      o.Set("transducer", TransducerToJson(request.transducer));
      break;
    case ServiceOp::kValidate:
      o.Set("schema", SchemaToJson(request.schema));
      o.Set("tree", JsonValue::Str(request.tree));
      break;
    case ServiceOp::kTransform:
      o.Set("transducer", TransducerToJson(request.transducer));
      o.Set("tree", JsonValue::Str(request.tree));
      break;
    case ServiceOp::kValidateStream:
      o.Set("schema", SchemaToJson(request.schema));
      break;
    case ServiceOp::kTransformStream:
      o.Set("transducer", TransducerToJson(request.transducer));
      break;
  }
  if (IsStreamOp(request.op)) {
    if (request.chunked) {
      o.Set("chunked", JsonValue::Bool(true));
    } else {
      o.Set("doc", JsonValue::Str(request.doc));
    }
  }
  if (request.format == DocFormat::kXml &&
      (request.op == ServiceOp::kValidate ||
       request.op == ServiceOp::kTransform)) {
    o.Set("format", JsonValue::Str("xml"));
  }
  if (request.deadline_ms != 0) {
    o.Set("deadline_ms",
          JsonValue::Number(static_cast<double>(request.deadline_ms)));
  }
  if (request.attempt != 0) {
    o.Set("attempt", JsonValue::Number(static_cast<double>(request.attempt)));
  }
  if (!request.want_counterexample) {
    o.Set("want_counterexample", JsonValue::Bool(false));
  }
  if (request.approximate_fallback) {
    o.Set("approximate_fallback", JsonValue::Bool(true));
  }
  if (request.engine == TypecheckEngine::kDelRelab) {
    o.Set("engine", JsonValue::Str("delrelab"));
  }
  if (request.threads > 1) {
    o.Set("threads", JsonValue::Number(static_cast<double>(request.threads)));
  }
  if (request.antichain >= 0) {
    o.Set("antichain", JsonValue::Bool(request.antichain != 0));
  }
  if (request.dense_threshold > 0) {
    o.Set("dense_threshold",
          JsonValue::Number(static_cast<double>(request.dense_threshold)));
  }
  return o.Dump();
}

std::string ServiceResponse::ToJsonLine() const {
  JsonValue o = JsonValue::Object();
  o.Set("id", JsonValue::Number(static_cast<double>(id)));
  o.Set("op", JsonValue::Str(ServiceOpName(op)));
  o.Set("status", JsonValue::Str(StatusCodeName(status.code())));
  if (!status.ok()) {
    o.Set("error", JsonValue::Str(status.message()));
  } else {
    switch (op) {
      case ServiceOp::kTypecheck:
        o.Set("typechecks", JsonValue::Bool(typechecks));
        if (approximate) o.Set("approximate", JsonValue::Bool(true));
        if (!counterexample.empty()) {
          o.Set("counterexample", JsonValue::Str(counterexample));
        }
        break;
      case ServiceOp::kValidate:
        o.Set("valid", JsonValue::Bool(valid));
        break;
      case ServiceOp::kTransform:
      case ServiceOp::kTransformStream:
        o.Set("output", JsonValue::Str(output));
        break;
      case ServiceOp::kValidateStream:
        o.Set("valid", JsonValue::Bool(valid));
        break;
    }
  }
  o.Set("tier", JsonValue::Str(AdmissionTierName(tier)));
  if (shed_reason != ShedReason::kNone) {
    o.Set("shed_reason", JsonValue::Str(ShedReasonName(shed_reason)));
  }
  if (retry_after_ms > 0) {
    o.Set("retry_after_ms",
          JsonValue::Number(static_cast<double>(retry_after_ms)));
  }
  if (attempt > 0) {
    o.Set("attempt", JsonValue::Number(static_cast<double>(attempt)));
  }
  o.Set("elapsed_ms", JsonValue::Number(RoundMs(elapsed_ms)));
  if (engine_ms > 0) o.Set("engine_ms", JsonValue::Number(RoundMs(engine_ms)));
  if (queue_ms > 0) o.Set("queue_ms", JsonValue::Number(RoundMs(queue_ms)));
  JsonValue cache = JsonValue::Object();
  cache.Set("hits", JsonValue::Number(static_cast<double>(cache_hits)));
  cache.Set("misses", JsonValue::Number(static_cast<double>(cache_misses)));
  o.Set("cache", std::move(cache));
  return o.Dump();
}

StatusOr<DocChunk> ParseDocChunk(std::string_view json_line) {
  XTC_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(json_line));
  if (doc.kind() != JsonValue::Kind::kObject) {
    return InvalidArgumentError("doc chunk must be a JSON object");
  }
  const JsonValue* data = doc.Find("doc_chunk");
  if (data == nullptr || data->kind() != JsonValue::Kind::kString) {
    return FieldError("doc_chunk", "is required and must be a string");
  }
  DocChunk chunk;
  chunk.data = data->AsString();
  if (const JsonValue* last = doc.Find("last")) {
    if (last->kind() != JsonValue::Kind::kBool) {
      return FieldError("last", "must be a bool");
    }
    chunk.last = last->AsBool();
  }
  return chunk;
}

std::string DocChunkToJson(const DocChunk& chunk) {
  JsonValue o = JsonValue::Object();
  o.Set("doc_chunk", JsonValue::Str(chunk.data));
  if (chunk.last) o.Set("last", JsonValue::Bool(true));
  return o.Dump();
}

StatusOr<std::vector<std::string>> CollectUniverse(
    const ServiceRequest& request) {
  Alphabet probe;
  auto probe_schema = [&probe](const SchemaSpec& spec,
                               const char* which) -> Status {
    if (spec.start.empty()) {
      return InvalidArgumentError(std::string(which) +
                                  ": missing start symbol");
    }
    probe.Intern(spec.start);
    for (const auto& [symbol, regex] : spec.rules) {
      probe.Intern(symbol);
      StatusOr<RegexPtr> re = ParseRegex(regex, &probe);
      if (!re.ok()) {
        return InvalidArgumentError(std::string(which) + " rule '" + symbol +
                                    "': " + re.status().message());
      }
    }
    return Status::Ok();
  };
  switch (request.op) {
    case ServiceOp::kTypecheck: {
      XTC_RETURN_IF_ERROR(probe_schema(request.din, "din"));
      XTC_RETURN_IF_ERROR(probe_schema(request.dout, "dout"));
      XTC_RETURN_IF_ERROR(
          BuildTransducerSkeleton(request.transducer, &probe).status());
      break;
    }
    case ServiceOp::kValidate:
    case ServiceOp::kValidateStream:
      XTC_RETURN_IF_ERROR(probe_schema(request.schema, "schema"));
      break;
    case ServiceOp::kTransform:
    case ServiceOp::kTransformStream:
      XTC_RETURN_IF_ERROR(
          BuildTransducerSkeleton(request.transducer, &probe).status());
      break;
  }
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(probe.size()));
  for (int i = 0; i < probe.size(); ++i) names.push_back(probe.Name(i));
  std::sort(names.begin(), names.end());
  return names;
}

StatusOr<Dtd> BuildSchemaSkeleton(const SchemaSpec& spec, Alphabet* alphabet) {
  std::optional<int> start = alphabet->Find(spec.start);
  if (!start.has_value()) {
    // The universe was collected from this very spec, so the start symbol is
    // always present; reaching this means the caller passed the wrong
    // alphabet.
    return InvalidArgumentError("start symbol '" + spec.start +
                                "' is not in the request universe");
  }
  Dtd dtd(alphabet, *start);
  for (const auto& [symbol, regex] : spec.rules) {
    XTC_RETURN_IF_ERROR(dtd.SetRule(symbol, regex));
  }
  return dtd;
}

StatusOr<Transducer> BuildTransducerSkeleton(const TransducerSpec& spec,
                                             Alphabet* alphabet) {
  if (spec.states.empty()) {
    return InvalidArgumentError("transducer has no states");
  }
  Transducer t(alphabet);
  for (const std::string& name : spec.states) {
    if (t.FindState(name).has_value()) {
      return InvalidArgumentError("duplicate transducer state '" + name + "'");
    }
    t.AddState(name);
  }
  std::optional<int> initial = t.FindState(spec.initial);
  if (!initial.has_value()) {
    return InvalidArgumentError("unknown initial state '" + spec.initial +
                                "'");
  }
  t.SetInitial(*initial);
  for (const auto& rule : spec.rules) {
    XTC_RETURN_IF_ERROR(t.SetRuleFromString(rule[0], rule[1], rule[2]));
  }
  return t;
}

}  // namespace xtc
