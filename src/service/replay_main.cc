// xtc_replay: batch-replay client for the typechecking service, driven
// from the src/workload scaling families.
//
//   emit mode  — print a family batch as NDJSON request lines (pipe into
//                xtcd):
//                  ./xtc_replay --mode=emit --family=filter --n=6 --count=32
//   drive mode — run the batch against an in-process service and print a
//                one-line JSON summary (throughput, latency, cache stats):
//                  ./xtc_replay --mode=drive --family=nfa --n=9 --count=64
//                      --threads=4 --distinct=4

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "src/service/replay.h"
#include "src/service/service.h"

namespace {

struct Flags {
  std::string mode = "drive";
  std::string family = "filter";
  int n = 4;
  int count = 32;
  int distinct = 1;
  int threads = 4;
  std::size_t queue = 1024;
  std::uint64_t deadline_ms = 0;
  int retries = 1;       // total attempts per request (1 = no retry)
  int antichain = -1;    // -1 leaves the wire field unset (service default)
  int dense_threshold = 0;  // 0 leaves the wire field unset
};

bool ParseInt(const char* arg, const char* name, long long* out) {
  std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  char* end = nullptr;
  long long v = std::strtoll(arg + len + 1, &end, 10);
  if (end == nullptr || *end != '\0' || v < 0) return false;
  *out = v;
  return true;
}

bool ParseStr(const char* arg, const char* name, std::string* out) {
  std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--mode=emit|drive] [--family=filter|failing|width|relab|"
      "replus|xpath|nfa|vstream|tstream]\n"
      "          [--n=N] [--count=N] [--distinct=N] [--threads=N] "
      "[--queue=N] [--deadline-ms=N] [--retries=N]\n"
      "          [--antichain=0|1] [--dense-threshold=N]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    long long v = 0;
    if (ParseStr(argv[i], "--mode", &flags.mode) ||
        ParseStr(argv[i], "--family", &flags.family)) {
      continue;
    } else if (ParseInt(argv[i], "--n", &v)) {
      flags.n = static_cast<int>(v);
    } else if (ParseInt(argv[i], "--count", &v)) {
      flags.count = static_cast<int>(v);
    } else if (ParseInt(argv[i], "--distinct", &v)) {
      flags.distinct = static_cast<int>(v);
    } else if (ParseInt(argv[i], "--threads", &v)) {
      flags.threads = static_cast<int>(v);
    } else if (ParseInt(argv[i], "--queue", &v)) {
      flags.queue = static_cast<std::size_t>(v);
    } else if (ParseInt(argv[i], "--deadline-ms", &v)) {
      flags.deadline_ms = static_cast<std::uint64_t>(v);
    } else if (ParseInt(argv[i], "--retries", &v)) {
      flags.retries = static_cast<int>(v);
    } else if (ParseInt(argv[i], "--antichain", &v)) {
      if (v > 1) return Usage(argv[0]);
      flags.antichain = static_cast<int>(v);
    } else if (ParseInt(argv[i], "--dense-threshold", &v)) {
      flags.dense_threshold = static_cast<int>(v);
    } else {
      return Usage(argv[0]);
    }
  }

  xtc::StatusOr<std::vector<xtc::ServiceRequest>> batch =
      xtc::MakeFamilyBatch(flags.family, flags.n, flags.count, flags.distinct);
  if (!batch.ok()) {
    std::fprintf(stderr, "xtc_replay: %s\n", batch.status().ToString().c_str());
    return 1;
  }
  for (xtc::ServiceRequest& request : *batch) {
    request.deadline_ms = flags.deadline_ms;
    // Antichain knobs ride the wire fields, so emit mode reproduces them
    // and drive mode exercises the same request-level resolution as xtcd.
    if (flags.antichain >= 0) request.antichain = flags.antichain;
    if (flags.dense_threshold > 0) {
      request.dense_threshold = flags.dense_threshold;
    }
  }

  if (flags.mode == "emit") {
    for (const xtc::ServiceRequest& request : *batch) {
      std::string line = xtc::ServiceRequestToJson(request);
      line.push_back('\n');
      std::fwrite(line.data(), 1, line.size(), stdout);
    }
    return 0;
  }
  if (flags.mode != "drive") return Usage(argv[0]);

  xtc::TypecheckService::Options options;
  options.num_threads = flags.threads;
  options.queue_capacity = flags.queue;
  xtc::TypecheckService service(options);

  // Wave-pipelined retries: every wave submits its whole batch (keeping
  // the workers saturated), collects terminal/retryable responses, then
  // sleeps the longest per-request deterministic backoff before the next
  // wave. RetryBackoffMs keeps per-request jitter reproducible.
  xtc::RetryPolicy policy;
  policy.max_attempts = flags.retries < 1 ? 1 : flags.retries;

  auto start = std::chrono::steady_clock::now();
  int ok = 0;
  int errors = 0;
  unsigned long long tier_exact = 0, tier_approx = 0, rejected = 0;
  unsigned long long retries_total = 0, backoff_ms_total = 0;
  std::vector<xtc::ServiceRequest> wave = *std::move(batch);
  for (int attempt = 1; !wave.empty(); ++attempt) {
    std::vector<std::future<xtc::ServiceResponse>> futures;
    futures.reserve(wave.size());
    for (xtc::ServiceRequest& request : wave) {
      request.attempt = static_cast<std::uint64_t>(attempt - 1);
      xtc::ServiceRequest copy = request;
      futures.push_back(service.Submit(std::move(copy)));
    }
    std::vector<xtc::ServiceRequest> next_wave;
    std::uint64_t max_backoff = 0;
    for (std::size_t i = 0; i < futures.size(); ++i) {
      xtc::ServiceResponse response = futures[i].get();
      bool retryable = !response.status.ok() && response.retry_after_ms > 0 &&
                       attempt < policy.max_attempts;
      if (retryable) {
        max_backoff = std::max(
            max_backoff,
            xtc::RetryBackoffMs(policy, static_cast<std::uint64_t>(attempt),
                                response.retry_after_ms, wave[i].id));
        next_wave.push_back(std::move(wave[i]));
        continue;
      }
      (response.status.ok() ? ok : errors) += 1;
      switch (response.tier) {
        case xtc::AdmissionTier::kExact: ++tier_exact; break;
        case xtc::AdmissionTier::kApproximate: ++tier_approx; break;
        case xtc::AdmissionTier::kRejected: ++rejected; break;
      }
    }
    retries_total += next_wave.size();
    if (!next_wave.empty()) {
      backoff_ms_total += max_backoff;
      std::this_thread::sleep_for(std::chrono::milliseconds(max_backoff));
    }
    wave = std::move(next_wave);
  }
  double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  xtc::ServiceStats stats = service.stats();
  std::printf(
      "{\"family\": \"%s\", \"n\": %d, \"count\": %d, \"distinct\": %d, "
      "\"threads\": %d, \"ok\": %d, \"errors\": %d, \"elapsed_s\": %.4f, "
      "\"requests_per_s\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
      "\"cache_hits\": %llu, \"cache_misses\": %llu, "
      "\"cache_snapshot_hits\": %llu, \"cache_lock_waits\": %llu, "
      "\"cache_shards\": %zu, \"shed\": %llu, "
      "\"tier_exact\": %llu, \"tier_approximate\": %llu, "
      "\"rejected\": %llu, \"retries\": %llu, \"backoff_ms\": %llu}\n",
      flags.family.c_str(), flags.n, flags.count, flags.distinct,
      flags.threads, ok, errors, elapsed_s,
      elapsed_s > 0 ? static_cast<double>(ok + errors) / elapsed_s : 0.0,
      stats.latency_p50_ms, stats.latency_p99_ms,
      static_cast<unsigned long long>(stats.cache.hits),
      static_cast<unsigned long long>(stats.cache.misses),
      static_cast<unsigned long long>(stats.cache.snapshot_hits),
      static_cast<unsigned long long>(stats.cache.lock_waits),
      stats.cache.shards,
      static_cast<unsigned long long>(stats.shed), tier_exact, tier_approx,
      rejected, retries_total, backoff_ms_total);
  return errors == 0 ? 0 : 1;
}
