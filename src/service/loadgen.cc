#include "src/service/loadgen.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/service/replay.h"

namespace xtc {
namespace {

// splitmix64, for the deterministic weighted class pick per arrival.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct ClassState {
  LoadClass spec;
  std::vector<ServiceRequest> variants;  // cycled through per arrival
  std::size_t next_variant = 0;
  std::atomic<std::uint64_t> offered{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> tier_exact{0};
  std::atomic<std::uint64_t> tier_approximate{0};
  LatencyHistogram latency;  // server-side end-to-end, ok responses only
};

}  // namespace

StatusOr<LoadgenReport> RunLoadgen(const LoadgenOptions& options) {
  if (options.classes.empty()) {
    return InvalidArgumentError("loadgen needs at least one traffic class");
  }
  if (options.offered_qps <= 0 || options.duration_s <= 0) {
    return InvalidArgumentError("loadgen needs offered_qps, duration_s > 0");
  }

  std::vector<std::unique_ptr<ClassState>> classes;
  double total_weight = 0;
  for (const LoadClass& spec : options.classes) {
    if (spec.weight <= 0) {
      return InvalidArgumentError("class '" + spec.name +
                                  "' needs weight > 0");
    }
    auto state = std::make_unique<ClassState>();
    state->spec = spec;
    XTC_ASSIGN_OR_RETURN(
        state->variants,
        MakeFamilyBatch(spec.family, spec.n, spec.distinct, spec.distinct));
    for (ServiceRequest& request : state->variants) {
      request.deadline_ms = spec.deadline_ms;
    }
    total_weight += spec.weight;
    classes.push_back(std::move(state));
  }

  TypecheckService service(options.service);
  for (const auto& state : classes) {
    if (!state->spec.prewarm) continue;
    for (const ServiceRequest& request : state->variants) {
      // Populate the compile cache before the clock starts; verdicts and
      // failures here are irrelevant (hostile prewarms may time out).
      ServiceRequest warm = request;
      warm.deadline_ms = 0;
      (void)service.Process(warm);
    }
  }

  // Harvest thread: drains futures in submission order, attributing each
  // response to its class. Submission order is fine — every future
  // resolves (the service guarantees it), and total wall time is bounded
  // by the slowest outstanding request, not by harvest order.
  struct Pending {
    std::size_t class_index;
    std::future<ServiceResponse> future;
  };
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Pending> pending;
  bool dispatch_done = false;

  std::thread harvester([&] {
    while (true) {
      Pending next;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return dispatch_done || !pending.empty(); });
        if (pending.empty()) return;
        next = std::move(pending.front());
        pending.pop_front();
      }
      ServiceResponse response = next.future.get();
      ClassState& state = *classes[next.class_index];
      if (response.status.ok()) {
        state.ok.fetch_add(1, std::memory_order_relaxed);
        (response.tier == AdmissionTier::kApproximate ? state.tier_approximate
                                                      : state.tier_exact)
            .fetch_add(1, std::memory_order_relaxed);
        state.latency.Record(response.queue_ms + response.elapsed_ms);
      } else if (response.tier == AdmissionTier::kRejected) {
        state.shed.fetch_add(1, std::memory_order_relaxed);
      } else {
        state.failed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  // Open-loop dispatch: arrival i fires at start + i/qps whether or not
  // earlier arrivals have completed. Falling behind schedule (a saturated
  // machine) degenerates to back-to-back submission — offered load is
  // never silently reduced to match service speed.
  const auto start = std::chrono::steady_clock::now();
  const auto total =
      static_cast<std::uint64_t>(options.offered_qps * options.duration_s);
  const double interval_s = 1.0 / options.offered_qps;
  for (std::uint64_t i = 0; i < total; ++i) {
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(i * interval_s)));
    double r = static_cast<double>(Mix64(options.seed ^ i) >> 11) *
               0x1.0p-53 * total_weight;
    std::size_t pick = 0;
    for (; pick + 1 < classes.size(); ++pick) {
      r -= classes[pick]->spec.weight;
      if (r < 0) break;
    }
    ClassState& state = *classes[pick];
    ServiceRequest request =
        state.variants[state.next_variant++ % state.variants.size()];
    request.id = static_cast<std::int64_t>(i + 1);
    state.offered.fetch_add(1, std::memory_order_relaxed);
    Pending item{pick, service.Submit(std::move(request))};
    {
      std::lock_guard<std::mutex> lock(mu);
      pending.push_back(std::move(item));
    }
    cv.notify_one();
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    dispatch_done = true;
  }
  cv.notify_all();
  harvester.join();
  double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // All futures are harvested; the queue is empty, so this is a clean stop
  // and the report reflects final counters.
  service.Stop(std::chrono::milliseconds(0));

  LoadgenReport report;
  report.offered_qps = options.offered_qps;
  report.wall_s = wall_s;
  for (const auto& state : classes) {
    ClassReport cls;
    cls.offered = state->offered.load();
    cls.ok = state->ok.load();
    cls.shed = state->shed.load();
    cls.failed = state->failed.load();
    cls.tier_exact = state->tier_exact.load();
    cls.tier_approximate = state->tier_approximate.load();
    cls.p50_ms = state->latency.Percentile(50);
    cls.p99_ms = state->latency.Percentile(99);
    cls.p999_ms = state->latency.Percentile(99.9);
    cls.max_ms = state->latency.max_ms();
    report.offered += cls.offered;
    report.ok += cls.ok;
    report.shed += cls.shed;
    report.failed += cls.failed;
    report.classes.emplace(state->spec.name, cls);
  }
  report.achieved_qps =
      wall_s > 0 ? static_cast<double>(report.ok) / wall_s : 0;
  report.service = service.stats();
  return report;
}

StatusOr<double> EstimateSustainableQps(const LoadgenOptions& options,
                                        const LoadClass& cls, int samples) {
  if (samples < 1) samples = 1;
  XTC_ASSIGN_OR_RETURN(
      std::vector<ServiceRequest> variants,
      MakeFamilyBatch(cls.family, cls.n, cls.distinct, cls.distinct));
  TypecheckService service(options.service);
  for (const ServiceRequest& request : variants) {
    (void)service.Process(request);  // warm the compile cache
  }
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < samples; ++i) {
    ServiceRequest request = variants[static_cast<std::size_t>(i) %
                                      variants.size()];
    ServiceResponse response = service.Process(request);
    XTC_RETURN_IF_ERROR(response.status);
  }
  double mean_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count() /
                  samples;
  if (mean_s <= 0) mean_s = 1e-6;
  int lanes = options.service.num_threads > 0 ? options.service.num_threads : 1;
  return static_cast<double>(lanes) / mean_s;
}

}  // namespace xtc
