#ifndef XTC_SERVICE_REPLAY_H_
#define XTC_SERVICE_REPLAY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/core/paper_examples.h"
#include "src/service/request.h"
#include "src/service/service.h"

namespace xtc {

/// Serializes an in-process Dtd to its wire SchemaSpec. Only regex rules
/// travel over the wire; NFA/DFA rules fail with kUnimplemented.
StatusOr<SchemaSpec> SerializeSchema(const Dtd& dtd);

/// Serializes a transducer to its wire TransducerSpec. XPath selectors are
/// re-rendered through RhsToString; DFA selectors have no wire syntax and
/// fail with kUnimplemented.
StatusOr<TransducerSpec> SerializeTransducer(const Transducer& t);

/// Wraps a workload instance (src/workload/families.h) as a typecheck
/// request, the unit of the replay client and the service bench.
StatusOr<ServiceRequest> TypecheckRequestFromExample(const PaperExample& ex);

/// The wire schema the synthetic stream documents (src/stream/doc_gen.h)
/// satisfy: root -> (section|item)*, section -> (section|item)*, item -> eps.
SchemaSpec StreamDocSchemaSpec();

/// A linear (non-copying) identity transducer over the stream vocabulary —
/// the streaming executor's best case: one live write-through chain, zero
/// copy-spill.
TransducerSpec StreamDocTransducerSpec();

/// A copying transducer (every section duplicates its translated children)
/// that exercises the byte-accounted copy-spill path.
TransducerSpec StreamDocCopyTransducerSpec();

/// A named batch of requests generated from the scaling families:
/// `family` in {filter, failing, width, relab, replus, xpath, nfa} for
/// typechecking, plus the streaming-document families {vstream, tstream}
/// (validate_stream / transform_stream over generated mixed-shape docs of
/// `size` elements, inline-doc form). The family's size parameter is swept
/// over `distinct` consecutive values starting at `n` (cycled until `count`
/// requests exist), so `distinct` controls how many different compile-cache
/// keys (or document sizes) the batch touches.
StatusOr<std::vector<ServiceRequest>> MakeFamilyBatch(const std::string& family,
                                                      int n, int count,
                                                      int distinct);

/// Client-side retry policy for shed responses. A response is retryable
/// exactly when it carries `retry_after_ms > 0` (admission sheds: queue
/// full, overload, predicted deadline miss); engine failures and
/// `stopping` sheds are terminal and are never retried.
struct RetryPolicy {
  int max_attempts = 3;               ///< total submits, including the first
  std::uint64_t base_backoff_ms = 10;  ///< first retry's backoff before jitter
  std::uint64_t max_backoff_ms = 2000;
  std::uint64_t jitter_seed = 0;  ///< folded into the jitter hash
};

/// Deterministic capped exponential backoff for the retry after `attempt`
/// failed submits (attempt >= 1): doubling from `base_backoff_ms`, capped
/// at `max_backoff_ms`, floored at the server's `retry_after_ms` hint, plus
/// up to 25% jitter derived from splitmix64(seed, request id, attempt) —
/// reproducible across runs, decorrelated across requests, so a shed burst
/// does not re-arrive as a synchronized thundering herd.
std::uint64_t RetryBackoffMs(const RetryPolicy& policy, std::uint64_t attempt,
                             std::uint64_t retry_after_ms,
                             std::uint64_t request_id);

/// What SubmitWithRetry did for one request.
struct RetryOutcome {
  ServiceResponse response;           ///< the final (terminal) response
  std::uint64_t attempts = 1;         ///< submits performed
  std::uint64_t backoff_ms_total = 0; ///< total time slept between submits
};

/// Submits `request` and, while the response is a retryable shed and the
/// policy allows another attempt, sleeps RetryBackoffMs and resubmits with
/// an incremented `attempt` field (servers log and echo it). Blocking; the
/// replay client's drive loop is the caller.
RetryOutcome SubmitWithRetry(TypecheckService& service, ServiceRequest request,
                             const RetryPolicy& policy);

}  // namespace xtc

#endif  // XTC_SERVICE_REPLAY_H_
