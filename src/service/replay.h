#ifndef XTC_SERVICE_REPLAY_H_
#define XTC_SERVICE_REPLAY_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/core/paper_examples.h"
#include "src/service/request.h"

namespace xtc {

/// Serializes an in-process Dtd to its wire SchemaSpec. Only regex rules
/// travel over the wire; NFA/DFA rules fail with kUnimplemented.
StatusOr<SchemaSpec> SerializeSchema(const Dtd& dtd);

/// Serializes a transducer to its wire TransducerSpec. XPath selectors are
/// re-rendered through RhsToString; DFA selectors have no wire syntax and
/// fail with kUnimplemented.
StatusOr<TransducerSpec> SerializeTransducer(const Transducer& t);

/// Wraps a workload instance (src/workload/families.h) as a typecheck
/// request, the unit of the replay client and the service bench.
StatusOr<ServiceRequest> TypecheckRequestFromExample(const PaperExample& ex);

/// A named batch of requests generated from the scaling families:
/// `family` in {filter, failing, width, relab, replus, xpath, nfa}. The
/// family's size parameter is swept over `distinct` consecutive values
/// starting at `n` (cycled until `count` requests exist), so `distinct`
/// controls how many different compile-cache keys the batch touches.
StatusOr<std::vector<ServiceRequest>> MakeFamilyBatch(const std::string& family,
                                                      int n, int count,
                                                      int distinct);

}  // namespace xtc

#endif  // XTC_SERVICE_REPLAY_H_
