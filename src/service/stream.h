#ifndef XTC_SERVICE_STREAM_H_
#define XTC_SERVICE_STREAM_H_

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "src/base/budget.h"
#include "src/base/status.h"
#include "src/fa/alphabet.h"
#include "src/service/compile_cache.h"
#include "src/service/request.h"
#include "src/service/service.h"
#include "src/stream/event_reader.h"
#include "src/stream/transform.h"
#include "src/stream/validate.h"

namespace xtc {

/// One open streaming request (validate_stream / transform_stream): wire
/// chunks in, one ServiceResponse out, O(depth) working memory end to end.
///
/// Sessions are created by TypecheckService::OpenStream (the xtcd chunk
/// transport) or internally by Execute for inline-doc stream requests; both
/// run on the *caller's* thread — a stream cannot sit in the worker queue
/// because its bytes arrive interactively. Compilation still goes through
/// the shared CompileCache and the per-request Budget is anchored at open,
/// so a slow client burns its own deadline, not a worker.
///
/// Setup errors (shed, bad schema, budget) latch: Push becomes a no-op and
/// Finish returns the well-formed error response — the transport can always
/// pump remaining chunk lines without special-casing, keeping the NDJSON
/// framing intact. Finish is idempotent; an abandoned session records its
/// response at destruction so service stats never lose a request. The
/// session borrows the service and must not outlive it.
///
/// Thread-compatibility: single-thread, like the Budget it owns.
class StreamSession {
 public:
  ~StreamSession();

  StreamSession(const StreamSession&) = delete;
  StreamSession& operator=(const StreamSession&) = delete;

  /// Feeds the next slice of the document's XML text. Events are parsed
  /// and executed as they complete; errors latch into the final response.
  void Push(std::string_view chunk);

  /// Ends the document and returns the response (idempotent; later Push
  /// calls are ignored).
  ServiceResponse Finish();

  /// The error the session has latched so far (ok while healthy). Lets a
  /// transport stop reading chunks early if it wants to; not required.
  const Status& stream_status() const { return latched_; }

  bool finished() const { return finished_; }

 private:
  friend class TypecheckService;

  StreamSession(TypecheckService* service, const ServiceRequest& request,
                AdmissionTier tier,
                std::chrono::steady_clock::time_point admit_time);
  /// A session that was shed (or otherwise failed) before setup: Push is a
  /// no-op, Finish returns `response` as-is. `record` controls whether
  /// Finish counts completion stats (sheds were already counted).
  StreamSession(TypecheckService* service, ServiceResponse response,
                bool record);

  void Pump();
  void Latch(Status status);
  bool Injected(const char* checkpoint);

  TypecheckService* service_;
  ServiceResponse response_;
  WallTimer timer_;
  Budget budget_;
  Budget* budget_ptr_ = nullptr;
  std::shared_ptr<Alphabet> universe_;
  std::shared_ptr<const CompiledSchema> schema_;
  std::shared_ptr<const CompiledTransducer> compiled_transducer_;
  Alphabet local_;  ///< request-private, seeded with the universe
  std::optional<XmlEventReader> reader_;
  std::optional<StreamValidator> validator_;
  std::string output_;
  std::optional<StringSink> sink_;
  std::unique_ptr<StreamTransducer> transducer_;
  Status latched_ = Status::Ok();
  bool finished_ = false;
  bool record_ = true;  ///< count completed/failed + latency at Finish
  bool holds_stream_slot_ = false;  ///< counted against max_open_streams
};

}  // namespace xtc

#endif  // XTC_SERVICE_STREAM_H_
