#ifndef XTC_SERVICE_JSON_H_
#define XTC_SERVICE_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/base/status.h"

namespace xtc {

/// A minimal JSON document model for the NDJSON request protocol (one
/// request object per line, one response object per line). The container
/// has no external dependencies by design; the service cannot pull in a
/// JSON library. Objects preserve insertion order and allow duplicate-free
/// lookup by key; numbers are stored as doubles (the protocol only carries
/// small integers: deadlines, ids, counts).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  bool AsBool() const;      ///< requires kBool
  double AsNumber() const;  ///< requires kNumber
  const std::string& AsString() const;                      ///< kString
  const std::vector<JsonValue>& AsArray() const;            ///< kArray
  std::vector<JsonValue>& MutableArray();                   ///< kArray
  const std::vector<std::pair<std::string, JsonValue>>& AsObject()
      const;  ///< kObject

  /// Object field lookup; nullptr when absent (or not an object).
  const JsonValue* Find(std::string_view key) const;

  /// Appends/overwrites an object field (linear scan; objects are tiny).
  void Set(std::string key, JsonValue value);

  /// Serializes on one line (NDJSON-safe: no raw newlines, all control
  /// characters escaped).
  std::string Dump() const;
  void DumpTo(std::string* out) const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses one JSON document. Rejects trailing garbage, depth beyond 64
/// (malformed-input hardening: parser recursion is fuel-limited like the
/// regex/term/XML parsers), and invalid escapes. \uXXXX escapes are decoded
/// to UTF-8 (surrogate pairs included).
StatusOr<JsonValue> ParseJson(std::string_view text);

/// Escapes `s` as a JSON string literal including the quotes.
void AppendJsonString(std::string_view s, std::string* out);

}  // namespace xtc

#endif  // XTC_SERVICE_JSON_H_
