#include "src/service/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/base/logging.h"

namespace xtc {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

bool JsonValue::AsBool() const {
  XTC_CHECK(kind_ == Kind::kBool);
  return bool_;
}

double JsonValue::AsNumber() const {
  XTC_CHECK(kind_ == Kind::kNumber);
  return number_;
}

const std::string& JsonValue::AsString() const {
  XTC_CHECK(kind_ == Kind::kString);
  return string_;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  XTC_CHECK(kind_ == Kind::kArray);
  return array_;
}

std::vector<JsonValue>& JsonValue::MutableArray() {
  XTC_CHECK(kind_ == Kind::kArray);
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::AsObject()
    const {
  XTC_CHECK(kind_ == Kind::kObject);
  return object_;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::Set(std::string key, JsonValue value) {
  XTC_CHECK(kind_ == Kind::kObject);
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

void AppendJsonString(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void JsonValue::DumpTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      out->append("null");
      break;
    case Kind::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Kind::kNumber: {
      // Integers (the common case: ids, deadlines, counts) print exactly.
      if (std::floor(number_) == number_ && std::abs(number_) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(number_));
        out->append(buf);
      } else {
        // Shortest representation that round-trips ("9.446", not
        // "9.4459999999999997").
        char buf[32];
        auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), number_);
        XTC_CHECK(ec == std::errc());
        out->append(buf, end);
      }
      break;
    }
    case Kind::kString:
      AppendJsonString(string_, out);
      break;
    case Kind::kArray: {
      out->push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        array_[i].DumpTo(out);
      }
      out->push_back(']');
      break;
    }
    case Kind::kObject: {
      out->push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out->push_back(',');
        AppendJsonString(object_[i].first, out);
        out->push_back(':');
        object_[i].second.DumpTo(out);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    StatusOr<JsonValue> v = ParseValue(/*depth=*/0);
    if (!v.ok()) return v;
    SkipSpace();
    if (pos_ != text_.size()) {
      return InvalidArgumentError("trailing characters after JSON value at " +
                                  Where());
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  std::string Where() const { return "offset " + std::to_string(pos_); }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) {
      return InvalidArgumentError("JSON nesting exceeds depth fuel (64)");
    }
    SkipSpace();
    if (pos_ >= text_.size()) {
      return InvalidArgumentError("unexpected end of JSON input");
    }
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      XTC_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue::Str(std::move(s));
    }
    if (ConsumeWord("true")) return JsonValue::Bool(true);
    if (ConsumeWord("false")) return JsonValue::Bool(false);
    if (ConsumeWord("null")) return JsonValue::Null();
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    return InvalidArgumentError(std::string("unexpected character '") + c +
                                "' at " + Where());
  }

  StatusOr<JsonValue> ParseNumber() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token.empty()) {
      return InvalidArgumentError("malformed number '" + token + "' at " +
                                  Where());
    }
    return JsonValue::Number(d);
  }

  void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  StatusOr<unsigned> ParseHex4() {
    if (pos_ + 4 > text_.size()) {
      return InvalidArgumentError("truncated \\u escape at " + Where());
    }
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_ + static_cast<std::size_t>(i)];
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        return InvalidArgumentError("invalid \\u escape at " + Where());
      }
    }
    pos_ += 4;
    return code;
  }

  StatusOr<std::string> ParseString() {
    if (!Consume('"')) {
      return InvalidArgumentError("expected '\"' at " + Where());
    }
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        return InvalidArgumentError("unterminated string");
      }
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return InvalidArgumentError("raw control character in string at " +
                                    Where());
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        return InvalidArgumentError("truncated escape at end of input");
      }
      c = text_[pos_++];
      switch (c) {
        case '"':
        case '\\':
        case '/':
          out.push_back(c);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          XTC_ASSIGN_OR_RETURN(unsigned code, ParseHex4());
          if (code >= 0xD800 && code <= 0xDBFF) {
            // Surrogate pair.
            if (!ConsumeWord("\\u")) {
              return InvalidArgumentError("lone high surrogate at " + Where());
            }
            XTC_ASSIGN_OR_RETURN(unsigned low, ParseHex4());
            if (low < 0xDC00 || low > 0xDFFF) {
              return InvalidArgumentError("invalid low surrogate at " +
                                          Where());
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          AppendUtf8(code, &out);
          break;
        }
        default:
          return InvalidArgumentError(std::string("invalid escape '\\") + c +
                                      "' at " + Where());
      }
    }
  }

  StatusOr<JsonValue> ParseArray(int depth) {
    Consume('[');
    JsonValue out = JsonValue::Array();
    SkipSpace();
    if (Consume(']')) return out;
    while (true) {
      XTC_ASSIGN_OR_RETURN(JsonValue v, ParseValue(depth + 1));
      out.MutableArray().push_back(std::move(v));
      SkipSpace();
      if (Consume(']')) return out;
      if (!Consume(',')) {
        return InvalidArgumentError("expected ',' or ']' at " + Where());
      }
    }
  }

  StatusOr<JsonValue> ParseObject(int depth) {
    Consume('{');
    JsonValue out = JsonValue::Object();
    SkipSpace();
    if (Consume('}')) return out;
    while (true) {
      SkipSpace();
      XTC_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipSpace();
      if (!Consume(':')) {
        return InvalidArgumentError("expected ':' at " + Where());
      }
      XTC_ASSIGN_OR_RETURN(JsonValue v, ParseValue(depth + 1));
      out.Set(std::move(key), std::move(v));
      SkipSpace();
      if (Consume('}')) return out;
      if (!Consume(',')) {
        return InvalidArgumentError("expected ',' or '}' at " + Where());
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace xtc
