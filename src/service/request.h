#ifndef XTC_SERVICE_REQUEST_H_
#define XTC_SERVICE_REQUEST_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/base/status.h"
#include "src/fa/alphabet.h"
#include "src/schema/dtd.h"
#include "src/td/transducer.h"

namespace xtc {

/// Textual form of a DTD as carried by the wire protocol: a start symbol
/// and (symbol, regex) rules in the library's regex syntax. Only
/// regex-representable schemas travel over the wire; explicit NFA/DFA rules
/// are an in-process construction.
struct SchemaSpec {
  std::string start;
  std::vector<std::pair<std::string, std::string>> rules;
};

/// Textual form of a transducer: state names (declaration order fixes ids),
/// the initial state, and (state, symbol, rhs) rules in the paper's term
/// syntax — including ⟨q, P⟩ selector leaves ("<q, .//title>").
struct TransducerSpec {
  std::vector<std::string> states;
  std::string initial;
  std::vector<std::array<std::string, 3>> rules;
};

enum class ServiceOp {
  kTypecheck,        ///< din + dout + transducer
  kValidate,         ///< schema + tree
  kTransform,        ///< transducer + tree
  kValidateStream,   ///< schema + doc (XML text, inline or chunked)
  kTransformStream,  ///< transducer + doc (XML text, inline or chunked)
};

const char* ServiceOpName(ServiceOp op);

/// Returns true for the streaming document ops (validate_stream /
/// transform_stream), which carry the document as XML text in `doc` (or as
/// doc_chunk continuation lines when `chunked`) and run on the caller's
/// thread with O(depth) working memory (src/stream/).
bool IsStreamOp(ServiceOp op);

/// Syntax of the `tree` field on validate/transform requests (wire field
/// `format`): the paper's term syntax (default) or the structure-only XML
/// codec syntax. Transform responses serialize their output in the same
/// format the input used.
enum class DocFormat {
  kTerm,
  kXml,
};

/// The admission tier a request was served at (wire field `tier`).
/// Admission control degrades requests one tier at a time as load rises
/// (DESIGN.md §4): `kExact` runs the full engine dispatch, `kApproximate`
/// runs only the sound-but-incomplete approximate engine (bounded cost; a
/// `typechecks == false` answer may be a false alarm and is flagged
/// `approximate`), `kRejected` never ran — the response carries a
/// `retry_after_ms` hint instead.
enum class AdmissionTier {
  kExact,
  kApproximate,
  kRejected,
};

const char* AdmissionTierName(AdmissionTier tier);

/// Why a request was shed or cancelled without (fully) executing; the
/// service stats break shed totals down by reason.
enum class ShedReason {
  kNone,       ///< not shed
  kQueueFull,  ///< the bounded queue held queue_capacity requests
  kOverload,   ///< load factor (depth + deadline pressure) past reject_load
  kDeadline,   ///< predicted or actual deadline expiry before execution
  kStopping,   ///< the service is draining or shut down
  kFault,      ///< a deterministic injected fault fired (tests)
  kStreamLimit,  ///< open chunked-stream sessions at max_open_streams
};

const char* ShedReasonName(ShedReason reason);

/// Engine selection for typecheck requests (wire field `engine`). `kAuto`
/// defers to the library front door, which picks the cheapest applicable
/// engine (usually T_trac). `kDelRelab` requests the Theorem 20
/// deleting-relabeling engine explicitly: it rejects transducers outside
/// the class (`kFailedPrecondition`), but its lazy emptiness exploration is
/// resumable — completed state tables are parked on the compile cache and
/// warm-start later identical requests (DESIGN.md §3c).
enum class TypecheckEngine {
  kAuto,
  kDelRelab,
};

/// One NDJSON request line, parsed. `deadline_ms == 0` defers to the
/// service default.
struct ServiceRequest {
  std::int64_t id = 0;
  ServiceOp op = ServiceOp::kTypecheck;
  SchemaSpec din;
  SchemaSpec dout;
  SchemaSpec schema;  ///< validate
  TransducerSpec transducer;
  std::string tree;  ///< validate/transform input document (`format` syntax)
  DocFormat format = DocFormat::kTerm;  ///< syntax of `tree` (and the output)
  /// Stream ops: the whole document as XML text. Mutually exclusive with
  /// `chunked` — an inline doc rides the request line itself.
  std::string doc;
  /// Stream ops: the document follows the request line as doc_chunk
  /// NDJSON continuation lines (`{"doc_chunk": "...", "last": bool}`),
  /// ending with the first `last: true` line. Only xtcd's transport pumps
  /// chunk lines; in-process callers use TypecheckService::OpenStream.
  bool chunked = false;
  std::uint64_t deadline_ms = 0;
  /// Retry ordinal, 0 on the first try. Echoed in the response; the
  /// client-side retry helper (replay.h) increments it so server logs and
  /// stats can distinguish fresh traffic from retries.
  std::uint64_t attempt = 0;
  bool want_counterexample = true;
  bool approximate_fallback = false;
  TypecheckEngine engine = TypecheckEngine::kAuto;
  /// Worker threads for the lazy emptiness exploration (wire field
  /// `threads`, default 1 = sequential). The service clamps this to
  /// [1, Options::max_request_threads] at execution, so a client can ask
  /// but the operator bounds the per-request fan-out.
  int threads = 1;
  /// Antichain subsumption pruning in the lazy emptiness engine (wire field
  /// `antichain`). Tri-state: -1 defers to the service's configured
  /// default, 0 forces off, 1 forces on.
  int antichain = -1;
  /// Dense/sparse switch-over for determinized subset masks (wire field
  /// `dense_threshold`). 0 defers to the service default / engine default.
  int dense_threshold = 0;
};

/// Parses one request line. Errors are protocol-shaped (missing fields,
/// bad JSON); schema/transducer *content* errors surface later, from the
/// worker that compiles the request.
StatusOr<ServiceRequest> ParseServiceRequest(std::string_view json_line);

/// Renders a request back to its NDJSON line (replay client, tests).
std::string ServiceRequestToJson(const ServiceRequest& request);

/// One continuation line of a chunked stream request: a slice of the
/// document's XML text plus the end-of-document marker. A malformed chunk
/// line aborts the whole stream (the transport cannot tell where the
/// document was meant to resume), so the response carries the parse error.
struct DocChunk {
  std::string data;
  bool last = false;
};

StatusOr<DocChunk> ParseDocChunk(std::string_view json_line);
std::string DocChunkToJson(const DocChunk& chunk);

/// One NDJSON response line. `status` mirrors the library Status; every
/// response echoes the request id so out-of-order transports can rejoin.
struct ServiceResponse {
  std::int64_t id = 0;
  ServiceOp op = ServiceOp::kTypecheck;
  Status status;
  bool typechecks = false;
  bool approximate = false;
  bool valid = false;           ///< validate
  std::string output;           ///< transform result (term syntax)
  std::string counterexample;   ///< term syntax; empty when none/suppressed
  double elapsed_ms = 0;        ///< wall clock incl. compile/cache work
  double engine_ms = 0;         ///< the engine run alone (stats.elapsed_ms)
  double queue_ms = 0;          ///< admission-to-execution wait
  std::uint64_t cache_hits = 0;      ///< artifact lookups served from cache
  std::uint64_t cache_misses = 0;    ///< artifact compiles this request paid
  AdmissionTier tier = AdmissionTier::kExact;  ///< tier served (or rejected)
  ShedReason shed_reason = ShedReason::kNone;  ///< why, when tier==kRejected
  /// Backoff hint on shed responses: > 0 means "retryable, wait about this
  /// long". Engine/budget failures leave it 0 — retrying those would burn
  /// the same budget again.
  std::uint64_t retry_after_ms = 0;
  std::uint64_t attempt = 0;  ///< echoed from the request
  std::string ToJsonLine() const;
};

/// The request's symbol universe: every name that compiling or executing it
/// can intern, in sorted order. Derived by actually parsing all components
/// against a private probe alphabet — not by lexical scanning — so it is
/// complete by construction. The universe is the alphabet-identity part of
/// every artifact's content address: artifacts compiled under the same
/// universe share one immutable Alphabet object (pointer-compared by the
/// engines), and request processing never interns a new name into a shared
/// alphabet (src/base/README.md).
///
/// The input document's labels are deliberately *excluded* (documents vary
/// per request; schemas must stay cache-stable). Validate/transform parse
/// the tree against a request-private alphabet seeded with the universe;
/// unknown document labels get ids past the universe, which every schema
/// check range-rejects.
StatusOr<std::vector<std::string>> CollectUniverse(
    const ServiceRequest& request);

/// Builds the cheap, uncompiled form of a schema spec against `alphabet`
/// (which must already contain the request universe): parses each rule and
/// installs it (Glushkov NFA only — no subset construction, no analysis).
StatusOr<Dtd> BuildSchemaSkeleton(const SchemaSpec& spec, Alphabet* alphabet);

/// Builds the transducer skeleton: states, initial, parsed rules. No
/// selector compilation, no width analysis.
StatusOr<Transducer> BuildTransducerSkeleton(const TransducerSpec& spec,
                                             Alphabet* alphabet);

}  // namespace xtc

#endif  // XTC_SERVICE_REQUEST_H_
