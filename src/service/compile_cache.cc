#include "src/service/compile_cache.h"

#include <chrono>
#include <utility>

#include "src/base/hash.h"
#include "src/core/nfa_dtd.h"
#include "src/schema/canonical.h"
#include "src/td/canonical.h"
#include "src/td/compile_selectors.h"

namespace xtc {
namespace {

// Flat overhead charged per artifact on top of the measured automata bytes:
// the canonical key strings, map nodes, and the artifact struct itself.
constexpr std::size_t kEntryBaseBytes = 1024;

}  // namespace

CompileCache::CompileCache() : CompileCache(Options()) {}

CompileCache::CompileCache(const Options& options) : options_(options) {}

Budget CompileCache::MakeCompileBudget(std::uint64_t deadline_cap_ms) const {
  Budget budget;
  if (options_.compile_max_bytes != 0) {
    budget.set_max_bytes(options_.compile_max_bytes);
  }
  // The effective compile deadline is the tighter of the configured
  // ceiling and the caller's remaining patience (deadline propagation).
  std::uint64_t deadline_ms = options_.compile_deadline_ms;
  if (deadline_cap_ms != 0 &&
      (deadline_ms == 0 || deadline_cap_ms < deadline_ms)) {
    deadline_ms = deadline_cap_ms;
  }
  if (deadline_ms != 0) {
    budget.set_deadline(std::chrono::milliseconds(deadline_ms));
  }
  return budget;
}

std::string CompileCache::UniverseKeyOf(const Alphabet& alphabet) const {
  // Names never contain '\n' (every parser in the repo shares the
  // [A-Za-z0-9_#$.:-] name charset), so the join is injective.
  std::string key;
  for (int i = 0; i < alphabet.size(); ++i) {
    key += alphabet.Name(i);
    key += '\n';
  }
  return key;
}

std::shared_ptr<Alphabet> CompileCache::GetOrCreateAlphabet(
    const std::vector<std::string>& universe) {
  std::string key;
  for (const std::string& name : universe) {
    key += name;
    key += '\n';
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = universes_.find(key);
  if (it != universes_.end()) {
    universe_lru_.splice(universe_lru_.begin(), universe_lru_,
                         it->second.lru_it);
    return it->second.alphabet;
  }
  auto alphabet = std::make_shared<Alphabet>();
  for (const std::string& name : universe) alphabet->Intern(name);
  universe_lru_.push_front(key);
  universes_.emplace(std::move(key),
                     Universe{alphabet, universe_lru_.begin()});
  while (universes_.size() > options_.max_universes) {
    // Cascade: artifacts of the evicted universe reference an Alphabet
    // object that a later identical universe would NOT be (pointer
    // identity), so they must go with it.
    const std::string victim = universe_lru_.back();
    universe_lru_.pop_back();
    universes_.erase(victim);
    std::vector<std::string> stale;
    for (const auto& [entry_key, entry] : entries_) {
      if (entry.universe_key == victim) stale.push_back(entry_key);
    }
    for (const std::string& entry_key : stale) EraseEntryLocked(entry_key);
  }
  return alphabet;
}

CompileCache::Entry* CompileCache::LookupLocked(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return &it->second;
}

void CompileCache::InsertLocked(std::string key, Entry entry) {
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
  bytes_ += entry.bytes;
  entries_.emplace(std::move(key), std::move(entry));
  EvictOverflowLocked();
}

void CompileCache::EvictOverflowLocked() {
  // Evict from the cold end until under the ceiling; the just-touched front
  // entry always survives (an artifact larger than the whole ceiling would
  // otherwise never be usable at all).
  while (bytes_ > options_.max_bytes && entries_.size() > 1) {
    std::string victim = lru_.back();
    EraseEntryLocked(victim);
    ++counters_.evictions;
  }
}

void CompileCache::EraseEntryLocked(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

StatusOr<std::shared_ptr<const CompiledSchema>>
CompileCache::GetOrCompileSchema(const SchemaSpec& spec,
                                 const std::shared_ptr<Alphabet>& alphabet,
                                 bool* cache_hit,
                                 std::uint64_t deadline_cap_ms) {
  if (cache_hit != nullptr) *cache_hit = false;
  // The skeleton build (parse + Glushkov) is cheap and performs no
  // interning: the universe alphabet already contains every name the spec
  // can mention (CollectUniverse derived it from this very spec), so
  // concurrent skeleton builds against the shared alphabet are pure reads.
  XTC_ASSIGN_OR_RETURN(Dtd skeleton, BuildSchemaSkeleton(spec, alphabet.get()));
  std::string key = CanonicalDtdText(skeleton);
  std::uint64_t hash = HashBytes(key);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (Entry* entry = LookupLocked(key); entry != nullptr) {
      if (entry->schema->alphabet == alphabet) {
        ++counters_.hits;
        if (cache_hit != nullptr) *cache_hit = true;
        return entry->schema;
      }
      // Stale generation: the entry was compiled against a prior Alphabet
      // instance of this universe (inserted by a worker that raced a
      // cascade eviction). Engines assert alphabet pointer identity, so it
      // is unusable with the caller's alphabet — drop it and recompile.
      EraseEntryLocked(key);
    }
    ++counters_.misses;
  }

  // Compile outside the lock: subset construction + completion +
  // inhabitation, and determinization for non-DFA schemas — the expensive,
  // worst-case-exponential work the cache exists to amortize.
  Budget budget = MakeCompileBudget(deadline_cap_ms);
  auto artifact = std::make_shared<CompiledSchema>();
  artifact->alphabet = alphabet;
  artifact->key = key;
  artifact->hash = hash;
  auto dtd = std::make_shared<Dtd>(std::move(skeleton));
  XTC_RETURN_IF_ERROR(dtd->Compile(&budget));
  if (!dtd->IsDfaDtd()) {
    XTC_ASSIGN_OR_RETURN(
        Dtd det, DeterminizeDtd(*dtd, options_.max_dfa_states, &budget));
    auto det_ptr = std::make_shared<Dtd>(std::move(det));
    XTC_RETURN_IF_ERROR(det_ptr->Compile(&budget));
    artifact->determinized = std::move(det_ptr);
  }
  artifact->dtd = std::move(dtd);
  artifact->bytes = kEntryBaseBytes + 2 * key.size() +
                    static_cast<std::size_t>(budget.bytes_charged()) +
                    artifact->dtd->Size() * sizeof(int);

  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* entry = LookupLocked(key); entry != nullptr) {
    if (entry->schema->alphabet == alphabet) {
      // A concurrent worker compiled the same content first; adopt its
      // artifact so equal content has one pointer identity cache-wide.
      return entry->schema;
    }
    EraseEntryLocked(key);  // stale generation; replace with ours below
  }
  Entry entry;
  entry.universe_key = UniverseKeyOf(*alphabet);
  entry.schema = artifact;
  entry.bytes = artifact->bytes;
  InsertLocked(std::move(key), std::move(entry));
  return std::shared_ptr<const CompiledSchema>(artifact);
}

StatusOr<std::shared_ptr<const CompiledTransducer>>
CompileCache::GetOrCompileTransducer(const TransducerSpec& spec,
                                     const std::shared_ptr<Alphabet>& alphabet,
                                     bool* cache_hit,
                                     std::uint64_t deadline_cap_ms) {
  // Selector compilation and width analysis are polynomial (Theorems
  // 23/29, Proposition 16) — no budget hooks to cap, unlike the
  // worst-case-exponential schema determinization.
  (void)deadline_cap_ms;
  if (cache_hit != nullptr) *cache_hit = false;
  XTC_ASSIGN_OR_RETURN(Transducer skeleton,
                       BuildTransducerSkeleton(spec, alphabet.get()));
  std::string key = CanonicalTransducerText(skeleton);
  std::uint64_t hash = HashBytes(key);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (Entry* entry = LookupLocked(key); entry != nullptr) {
      if (entry->transducer->alphabet == alphabet) {
        ++counters_.hits;
        if (cache_hit != nullptr) *cache_hit = true;
        return entry->transducer;
      }
      EraseEntryLocked(key);  // stale generation (see GetOrCompileSchema)
    }
    ++counters_.misses;
  }

  auto artifact = std::make_shared<CompiledTransducer>();
  artifact->alphabet = alphabet;
  artifact->key = key;
  artifact->hash = hash;
  auto original = std::make_shared<Transducer>(std::move(skeleton));
  if (original->HasSelectors()) {
    XTC_ASSIGN_OR_RETURN(Transducer compiled, CompileSelectors(*original));
    artifact->selector_free =
        std::make_shared<const Transducer>(std::move(compiled));
  } else {
    artifact->selector_free = original;
  }
  artifact->original = std::move(original);
  artifact->widths = AnalyzeWidths(*artifact->selector_free);
  artifact->bytes =
      kEntryBaseBytes + 2 * key.size() +
      (artifact->original->Size() + artifact->selector_free->Size()) * 64;

  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* entry = LookupLocked(key); entry != nullptr) {
    if (entry->transducer->alphabet == alphabet) return entry->transducer;
    EraseEntryLocked(key);  // stale generation; replace with ours below
  }
  Entry entry;
  entry.universe_key = UniverseKeyOf(*alphabet);
  entry.transducer = artifact;
  entry.bytes = artifact->bytes;
  InsertLocked(std::move(key), std::move(entry));
  return std::shared_ptr<const CompiledTransducer>(artifact);
}

std::shared_ptr<const LazySnapshot> CompileCache::GetLazySnapshot(
    const std::string& key) {
  // Namespaced so a snapshot key can never alias a canonical-text artifact
  // key ('\n' ends the prefix; canonical texts never start with "lazy\n").
  const std::string full_key = "lazy\n" + key;
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* entry = LookupLocked(full_key);
      entry != nullptr && entry->lazy != nullptr) {
    ++counters_.lazy_hits;
    return entry->lazy;
  }
  ++counters_.lazy_misses;
  return nullptr;
}

void CompileCache::PutLazySnapshot(
    const std::string& key, std::shared_ptr<const LazySnapshot> snapshot) {
  if (snapshot == nullptr) return;
  std::string full_key = "lazy\n" + key;
  std::lock_guard<std::mutex> lock(mu_);
  if (LookupLocked(full_key) != nullptr) return;  // first insert wins
  Entry entry;
  entry.bytes =
      kEntryBaseBytes + 2 * full_key.size() + snapshot->ApproxBytes();
  entry.lazy = std::move(snapshot);
  InsertLocked(std::move(full_key), std::move(entry));
}

CompileCache::Stats CompileCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats = counters_;
  stats.bytes = bytes_;
  stats.entries = entries_.size();
  stats.universes = universes_.size();
  return stats;
}

void CompileCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  universes_.clear();
  universe_lru_.clear();
  bytes_ = 0;
}

}  // namespace xtc
