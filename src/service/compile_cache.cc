#include "src/service/compile_cache.h"

#include <chrono>
#include <cstddef>
#include <limits>
#include <utility>

#include "src/base/hash.h"
#include "src/core/nfa_dtd.h"
#include "src/schema/canonical.h"
#include "src/td/canonical.h"
#include "src/td/compile_selectors.h"

namespace xtc {
namespace {

// Flat overhead charged per artifact on top of the measured automata bytes:
// the canonical key strings, map nodes, and the artifact struct itself.
constexpr std::size_t kEntryBaseBytes = 1024;

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

CompileCache::CompileCache() : CompileCache(Options()) {}

CompileCache::CompileCache(const Options& options) : options_(options) {
  std::size_t shards = options.shards == 0 ? 1 : options.shards;
  if (shards > 4096) shards = 4096;
  shard_count_ = RoundUpPow2(shards);
  shard_mask_ = shard_count_ - 1;
  shard_budget_ = options_.max_bytes / shard_count_;
  shards_ = std::make_unique<Shard[]>(shard_count_);
}

std::unique_lock<std::mutex> CompileCache::LockCounted(
    std::mutex& mu, std::atomic<std::uint64_t>& lock_waits) {
  std::unique_lock<std::mutex> lock(mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    // Convoy telemetry: someone else holds the writer lock, so this
    // acquisition will block. The count approximates contended waits, not
    // wait time — enough to see a convoy form under the loadgen.
    lock_waits.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  return lock;
}

Budget CompileCache::MakeCompileBudget(std::uint64_t deadline_cap_ms) const {
  Budget budget;
  if (options_.compile_max_bytes != 0) {
    budget.set_max_bytes(options_.compile_max_bytes);
  }
  // The effective compile deadline is the tighter of the configured
  // ceiling and the caller's remaining patience (deadline propagation).
  std::uint64_t deadline_ms = options_.compile_deadline_ms;
  if (deadline_cap_ms != 0 &&
      (deadline_ms == 0 || deadline_cap_ms < deadline_ms)) {
    deadline_ms = deadline_cap_ms;
  }
  if (deadline_ms != 0) {
    budget.set_deadline(std::chrono::milliseconds(deadline_ms));
  }
  return budget;
}

std::string CompileCache::UniverseKeyOf(const Alphabet& alphabet) const {
  // Names never contain '\n' (every parser in the repo shares the
  // [A-Za-z0-9_#$.:-] name charset), so the join is injective.
  std::string key;
  for (int i = 0; i < alphabet.size(); ++i) {
    key += alphabet.Name(i);
    key += '\n';
  }
  return key;
}

void CompileCache::PublishUniversesLocked() {
  std::vector<std::shared_ptr<UniverseEntry>> entries;
  entries.reserve(universes_.size());
  for (const auto& [key, entry] : universes_) entries.push_back(entry);
  universe_snapshot_.Publish(SnapshotTable<UniverseEntry>::Build(
      std::move(entries)));
}

void CompileCache::CascadeEvictUniverseLocked(const std::string& universe_key) {
  // Cascade: artifacts of the evicted universe reference an Alphabet
  // object that a later identical universe would NOT be (pointer
  // identity), so they must go with it — in every shard. Lock order is
  // universe_mu_ (held by the caller) then one shard mu at a time.
  for (std::size_t i = 0; i < shard_count_; ++i) {
    Shard& shard = shards_[i];
    auto lock = LockCounted(shard.mu, shard.lock_waits);
    std::vector<std::string> stale;
    for (const auto& [entry_key, entry] : shard.entries) {
      if (entry->universe_key == universe_key) stale.push_back(entry_key);
    }
    if (stale.empty()) continue;
    for (const std::string& entry_key : stale) EraseLocked(shard, entry_key);
    PublishLocked(shard);
  }
}

std::shared_ptr<Alphabet> CompileCache::GetOrCreateAlphabet(
    const std::vector<std::string>& universe) {
  std::string key;
  for (const std::string& name : universe) {
    key += name;
    key += '\n';
  }
  const std::uint64_t hash = HashBytes(key);
  // Warm path: snapshot acquire, no mutex. Recency is recorded with a
  // relaxed stamp store so the count-capped eviction below stays LRU-ish.
  if (auto table = universe_snapshot_.Acquire()) {
    if (UniverseEntry* entry = table->Find(hash, key)) {
      entry->last_used.store(NextStamp(), std::memory_order_relaxed);
      return entry->alphabet;
    }
  }
  auto lock = LockCounted(universe_mu_, universe_lock_waits_);
  if (auto it = universes_.find(key); it != universes_.end()) {
    it->second->last_used.store(NextStamp(), std::memory_order_relaxed);
    return it->second->alphabet;
  }
  auto entry = std::make_shared<UniverseEntry>();
  entry->key = key;
  entry->hash = hash;
  entry->alphabet = std::make_shared<Alphabet>();
  for (const std::string& name : universe) entry->alphabet->Intern(name);
  entry->last_used.store(NextStamp(), std::memory_order_relaxed);
  std::shared_ptr<Alphabet> alphabet = entry->alphabet;
  universes_.emplace(std::move(key), std::move(entry));
  while (universes_.size() > options_.max_universes) {
    // Evict the stalest universe (the just-created one is by construction
    // the freshest stamp, so it always survives).
    auto victim = universes_.end();
    std::uint64_t coldest = std::numeric_limits<std::uint64_t>::max();
    for (auto it = universes_.begin(); it != universes_.end(); ++it) {
      const std::uint64_t stamp =
          it->second->last_used.load(std::memory_order_relaxed);
      if (stamp < coldest) {
        coldest = stamp;
        victim = it;
      }
    }
    if (victim == universes_.end()) break;
    CascadeEvictUniverseLocked(victim->first);
    universes_.erase(victim);
  }
  PublishUniversesLocked();
  return alphabet;
}

std::shared_ptr<CompileCache::CacheEntry> CompileCache::FindLocked(
    Shard& shard, const std::string& key) {
  auto it = shard.entries.find(key);
  return it == shard.entries.end() ? nullptr : it->second;
}

void CompileCache::InsertLocked(Shard& shard,
                                std::shared_ptr<CacheEntry> entry) {
  shard.bytes += entry->bytes;
  total_bytes_.fetch_add(entry->bytes, std::memory_order_relaxed);
  entry->last_used.store(NextStamp(), std::memory_order_relaxed);
  std::string key = entry->key;
  shard.entries.emplace(std::move(key), std::move(entry));
}

void CompileCache::EraseLocked(Shard& shard, const std::string& key) {
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return;
  shard.bytes -= it->second->bytes;
  total_bytes_.fetch_sub(it->second->bytes, std::memory_order_relaxed);
  shard.entries.erase(it);
}

void CompileCache::EvictShardOverflowLocked(Shard& shard,
                                            const std::string& protect) {
  // Evict stalest-first until under the shard budget; the just-inserted
  // entry always survives locally (the global reconcile pass below it may
  // still drop it once it is no longer the freshest).
  while (shard.bytes > shard_budget_) {
    std::string victim_key;
    bool found = false;
    std::uint64_t coldest = std::numeric_limits<std::uint64_t>::max();
    for (const auto& [entry_key, entry] : shard.entries) {
      if (entry_key == protect) continue;
      const std::uint64_t stamp =
          entry->last_used.load(std::memory_order_relaxed);
      if (stamp < coldest) {
        coldest = stamp;
        victim_key = entry_key;
        found = true;
      }
    }
    if (!found) break;
    EraseLocked(shard, victim_key);
    shard.evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

void CompileCache::PublishLocked(Shard& shard) {
  std::vector<std::shared_ptr<CacheEntry>> entries;
  entries.reserve(shard.entries.size());
  for (const auto& [key, entry] : shard.entries) entries.push_back(entry);
  shard.snapshot.Publish(SnapshotTable<CacheEntry>::Build(std::move(entries)));
}

void CompileCache::ReconcileGlobalBytes(const std::string& protect) {
  // Per-shard budgets sum to the global ceiling, but the newest-entry
  // carve-out lets an individual shard run over its slice; reconcile by
  // evicting the globally coldest entries (approximate LRU over the stamp
  // clock) until the total fits. One shard lock at a time, never nested.
  while (total_bytes_.load(std::memory_order_relaxed) > options_.max_bytes) {
    std::size_t victim_shard = shard_count_;
    std::string victim_key;
    std::uint64_t coldest = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < shard_count_; ++i) {
      Shard& shard = shards_[i];
      auto lock = LockCounted(shard.mu, shard.lock_waits);
      for (const auto& [entry_key, entry] : shard.entries) {
        if (entry_key == protect) continue;
        const std::uint64_t stamp =
            entry->last_used.load(std::memory_order_relaxed);
        if (stamp < coldest) {
          coldest = stamp;
          victim_shard = i;
          victim_key = entry_key;
        }
      }
    }
    if (victim_shard == shard_count_) break;  // only the protected entry left
    Shard& shard = shards_[victim_shard];
    auto lock = LockCounted(shard.mu, shard.lock_waits);
    if (shard.entries.find(victim_key) == shard.entries.end()) {
      // A racing writer got there first; its own reconcile pass owns the
      // remainder — bail instead of rescanning forever.
      break;
    }
    EraseLocked(shard, victim_key);
    shard.evictions.fetch_add(1, std::memory_order_relaxed);
    PublishLocked(shard);
  }
}

StatusOr<std::shared_ptr<const CompiledSchema>>
CompileCache::GetOrCompileSchema(const SchemaSpec& spec,
                                 const std::shared_ptr<Alphabet>& alphabet,
                                 bool* cache_hit,
                                 std::uint64_t deadline_cap_ms) {
  if (cache_hit != nullptr) *cache_hit = false;
  // The skeleton build (parse + Glushkov) is cheap and performs no
  // interning: the universe alphabet already contains every name the spec
  // can mention (CollectUniverse derived it from this very spec), so
  // concurrent skeleton builds against the shared alphabet are pure reads.
  XTC_ASSIGN_OR_RETURN(Dtd skeleton, BuildSchemaSkeleton(spec, alphabet.get()));
  std::string key = CanonicalDtdText(skeleton);
  std::uint64_t hash = HashBytes(key);
  Shard& shard = ShardOf(hash);
  // Warm path: one atomic snapshot acquire, an immutable-table probe, and
  // a relaxed recency stamp — no mutex. This is the dominant serving case
  // (warm@4threads = 17x cold@1 per BENCH_pr3), so it must scale with
  // cores instead of convoying on a lock.
  if (auto table = shard.snapshot.Acquire()) {
    if (CacheEntry* entry = table->Find(hash, key)) {
      if (entry->schema != nullptr && entry->schema->alphabet == alphabet) {
        entry->last_used.store(NextStamp(), std::memory_order_relaxed);
        shard.hits.fetch_add(1, std::memory_order_relaxed);
        shard.snapshot_hits.fetch_add(1, std::memory_order_relaxed);
        if (cache_hit != nullptr) *cache_hit = true;
        return entry->schema;
      }
      // Stale generation (or a torn race with an eviction): re-check under
      // the writer lock below before recompiling.
    }
  }
  {
    auto lock = LockCounted(shard.mu, shard.lock_waits);
    if (auto entry = FindLocked(shard, key); entry != nullptr) {
      if (entry->schema != nullptr && entry->schema->alphabet == alphabet) {
        // Published after our snapshot acquire (or the snapshot probe
        // raced): still a warm hit, just served under the lock.
        entry->last_used.store(NextStamp(), std::memory_order_relaxed);
        shard.hits.fetch_add(1, std::memory_order_relaxed);
        if (cache_hit != nullptr) *cache_hit = true;
        return entry->schema;
      }
      // Stale generation: the entry was compiled against a prior Alphabet
      // instance of this universe (inserted by a worker that raced a
      // cascade eviction). Engines assert alphabet pointer identity, so it
      // is unusable with the caller's alphabet — drop it and recompile.
      EraseLocked(shard, key);
      PublishLocked(shard);
    }
    shard.misses.fetch_add(1, std::memory_order_relaxed);
  }

  // Compile outside the lock: subset construction + completion +
  // inhabitation, and determinization for non-DFA schemas — the expensive,
  // worst-case-exponential work the cache exists to amortize.
  Budget budget = MakeCompileBudget(deadline_cap_ms);
  auto artifact = std::make_shared<CompiledSchema>();
  artifact->alphabet = alphabet;
  artifact->key = key;
  artifact->hash = hash;
  auto dtd = std::make_shared<Dtd>(std::move(skeleton));
  XTC_RETURN_IF_ERROR(dtd->Compile(&budget));
  if (!dtd->IsDfaDtd()) {
    XTC_ASSIGN_OR_RETURN(
        Dtd det, DeterminizeDtd(*dtd, options_.max_dfa_states, &budget));
    auto det_ptr = std::make_shared<Dtd>(std::move(det));
    XTC_RETURN_IF_ERROR(det_ptr->Compile(&budget));
    artifact->determinized = std::move(det_ptr);
  }
  artifact->dtd = std::move(dtd);
  artifact->bytes = kEntryBaseBytes + 2 * key.size() +
                    static_cast<std::size_t>(budget.bytes_charged()) +
                    artifact->dtd->Size() * sizeof(int);

  {
    auto lock = LockCounted(shard.mu, shard.lock_waits);
    if (auto entry = FindLocked(shard, key); entry != nullptr) {
      if (entry->schema != nullptr && entry->schema->alphabet == alphabet) {
        // A concurrent worker compiled the same content first; adopt its
        // artifact so equal content has one pointer identity cache-wide.
        return entry->schema;
      }
      EraseLocked(shard, key);  // stale generation; replace with ours below
    }
    auto entry = std::make_shared<CacheEntry>();
    entry->key = key;
    entry->hash = hash;
    entry->universe_key = UniverseKeyOf(*alphabet);
    entry->schema = artifact;
    entry->bytes = artifact->bytes;
    InsertLocked(shard, std::move(entry));
    EvictShardOverflowLocked(shard, key);
    PublishLocked(shard);
  }
  ReconcileGlobalBytes(key);
  return std::shared_ptr<const CompiledSchema>(artifact);
}

StatusOr<std::shared_ptr<const CompiledTransducer>>
CompileCache::GetOrCompileTransducer(const TransducerSpec& spec,
                                     const std::shared_ptr<Alphabet>& alphabet,
                                     bool* cache_hit,
                                     std::uint64_t deadline_cap_ms) {
  // Selector compilation and width analysis are polynomial (Theorems
  // 23/29, Proposition 16) — no budget hooks to cap, unlike the
  // worst-case-exponential schema determinization.
  (void)deadline_cap_ms;
  if (cache_hit != nullptr) *cache_hit = false;
  XTC_ASSIGN_OR_RETURN(Transducer skeleton,
                       BuildTransducerSkeleton(spec, alphabet.get()));
  std::string key = CanonicalTransducerText(skeleton);
  std::uint64_t hash = HashBytes(key);
  Shard& shard = ShardOf(hash);
  if (auto table = shard.snapshot.Acquire()) {
    if (CacheEntry* entry = table->Find(hash, key)) {
      if (entry->transducer != nullptr &&
          entry->transducer->alphabet == alphabet) {
        entry->last_used.store(NextStamp(), std::memory_order_relaxed);
        shard.hits.fetch_add(1, std::memory_order_relaxed);
        shard.snapshot_hits.fetch_add(1, std::memory_order_relaxed);
        if (cache_hit != nullptr) *cache_hit = true;
        return entry->transducer;
      }
    }
  }
  {
    auto lock = LockCounted(shard.mu, shard.lock_waits);
    if (auto entry = FindLocked(shard, key); entry != nullptr) {
      if (entry->transducer != nullptr &&
          entry->transducer->alphabet == alphabet) {
        entry->last_used.store(NextStamp(), std::memory_order_relaxed);
        shard.hits.fetch_add(1, std::memory_order_relaxed);
        if (cache_hit != nullptr) *cache_hit = true;
        return entry->transducer;
      }
      EraseLocked(shard, key);  // stale generation (see GetOrCompileSchema)
      PublishLocked(shard);
    }
    shard.misses.fetch_add(1, std::memory_order_relaxed);
  }

  auto artifact = std::make_shared<CompiledTransducer>();
  artifact->alphabet = alphabet;
  artifact->key = key;
  artifact->hash = hash;
  auto original = std::make_shared<Transducer>(std::move(skeleton));
  if (original->HasSelectors()) {
    XTC_ASSIGN_OR_RETURN(Transducer compiled, CompileSelectors(*original));
    artifact->selector_free =
        std::make_shared<const Transducer>(std::move(compiled));
  } else {
    artifact->selector_free = original;
  }
  artifact->original = std::move(original);
  artifact->widths = AnalyzeWidths(*artifact->selector_free);
  artifact->bytes =
      kEntryBaseBytes + 2 * key.size() +
      (artifact->original->Size() + artifact->selector_free->Size()) * 64;

  {
    auto lock = LockCounted(shard.mu, shard.lock_waits);
    if (auto entry = FindLocked(shard, key); entry != nullptr) {
      if (entry->transducer != nullptr &&
          entry->transducer->alphabet == alphabet) {
        return entry->transducer;
      }
      EraseLocked(shard, key);  // stale generation; replace with ours below
    }
    auto entry = std::make_shared<CacheEntry>();
    entry->key = key;
    entry->hash = hash;
    entry->universe_key = UniverseKeyOf(*alphabet);
    entry->transducer = artifact;
    entry->bytes = artifact->bytes;
    InsertLocked(shard, std::move(entry));
    EvictShardOverflowLocked(shard, key);
    PublishLocked(shard);
  }
  ReconcileGlobalBytes(key);
  return std::shared_ptr<const CompiledTransducer>(artifact);
}

std::shared_ptr<const LazySnapshot> CompileCache::GetLazySnapshot(
    const std::string& key) {
  // Namespaced so a snapshot key can never alias a canonical-text artifact
  // key ('\n' ends the prefix; canonical texts never start with "lazy\n").
  const std::string full_key = "lazy\n" + key;
  const std::uint64_t hash = HashBytes(full_key);
  Shard& shard = ShardOf(hash);
  if (auto table = shard.snapshot.Acquire()) {
    if (CacheEntry* entry = table->Find(hash, full_key)) {
      if (entry->lazy != nullptr) {
        entry->last_used.store(NextStamp(), std::memory_order_relaxed);
        shard.lazy_hits.fetch_add(1, std::memory_order_relaxed);
        shard.snapshot_hits.fetch_add(1, std::memory_order_relaxed);
        return entry->lazy;
      }
    }
  }
  auto lock = LockCounted(shard.mu, shard.lock_waits);
  if (auto entry = FindLocked(shard, full_key);
      entry != nullptr && entry->lazy != nullptr) {
    entry->last_used.store(NextStamp(), std::memory_order_relaxed);
    shard.lazy_hits.fetch_add(1, std::memory_order_relaxed);
    return entry->lazy;
  }
  shard.lazy_misses.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void CompileCache::PutLazySnapshot(
    const std::string& key, std::shared_ptr<const LazySnapshot> snapshot) {
  if (snapshot == nullptr) return;
  std::string full_key = "lazy\n" + key;
  const std::uint64_t hash = HashBytes(full_key);
  Shard& shard = ShardOf(hash);
  {
    auto lock = LockCounted(shard.mu, shard.lock_waits);
    if (auto entry = FindLocked(shard, full_key); entry != nullptr) {
      // First insert wins; refresh recency so the kept table stays warm.
      entry->last_used.store(NextStamp(), std::memory_order_relaxed);
      return;
    }
    auto entry = std::make_shared<CacheEntry>();
    entry->key = full_key;
    entry->hash = hash;
    entry->bytes =
        kEntryBaseBytes + 2 * full_key.size() + snapshot->ApproxBytes();
    entry->lazy = std::move(snapshot);
    InsertLocked(shard, std::move(entry));
    EvictShardOverflowLocked(shard, full_key);
    PublishLocked(shard);
  }
  ReconcileGlobalBytes(full_key);
}

CompileCache::Stats CompileCache::stats() const {
  Stats stats;
  stats.shards = shard_count_;
  stats.per_shard.reserve(shard_count_);
  for (std::size_t i = 0; i < shard_count_; ++i) {
    Shard& shard = shards_[i];
    ShardStats per;
    per.hits = shard.hits.load(std::memory_order_relaxed);
    per.misses = shard.misses.load(std::memory_order_relaxed);
    per.evictions = shard.evictions.load(std::memory_order_relaxed);
    per.snapshot_hits = shard.snapshot_hits.load(std::memory_order_relaxed);
    per.lock_waits = shard.lock_waits.load(std::memory_order_relaxed);
    {
      // Plain lock (not LockCounted): a stats scrape contending with a
      // writer is not a serving-path convoy.
      std::lock_guard<std::mutex> lock(shard.mu);
      per.bytes = shard.bytes;
      per.entries = shard.entries.size();
    }
    stats.hits += per.hits;
    stats.misses += per.misses;
    stats.evictions += per.evictions;
    stats.snapshot_hits += per.snapshot_hits;
    stats.lock_waits += per.lock_waits;
    stats.lazy_hits += shard.lazy_hits.load(std::memory_order_relaxed);
    stats.lazy_misses += shard.lazy_misses.load(std::memory_order_relaxed);
    stats.bytes += per.bytes;
    stats.entries += per.entries;
    stats.per_shard.push_back(per);
  }
  stats.lock_waits += universe_lock_waits_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(universe_mu_);
    stats.universes = universes_.size();
  }
  return stats;
}

void CompileCache::Clear() {
  for (std::size_t i = 0; i < shard_count_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    total_bytes_.fetch_sub(shard.bytes, std::memory_order_relaxed);
    shard.bytes = 0;
    shard.entries.clear();
    shard.snapshot.Publish(nullptr);
  }
  std::lock_guard<std::mutex> lock(universe_mu_);
  universes_.clear();
  universe_snapshot_.Publish(nullptr);
}

}  // namespace xtc
