#ifndef XTC_SERVICE_LOADGEN_H_
#define XTC_SERVICE_LOADGEN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/service/service.h"

namespace xtc {

/// One traffic class in a mixed load schedule: requests drawn from a
/// workload family (src/workload/families.h) at a relative weight. The
/// canonical overload mix is warm (one hot cache key), cold (many distinct
/// keys, every arrival compiling), and hostile (NfaSchemaFamily — the
/// Theorem 18 EXPTIME inclusion shape whose cost lives in determinization).
struct LoadClass {
  std::string name;      ///< report key ("warm", "cold", "hostile", ...)
  std::string family;    ///< MakeFamilyBatch family
  int n = 4;             ///< family size parameter
  int distinct = 1;      ///< distinct compile-cache keys cycled through
  double weight = 1.0;   ///< relative share of arrivals
  std::uint64_t deadline_ms = 0;  ///< per-request deadline (0 = none)
  bool prewarm = false;  ///< compile all variants before the clock starts
};

struct LoadgenOptions {
  double offered_qps = 100;  ///< open-loop arrival rate
  double duration_s = 2.0;   ///< schedule length (arrivals = qps x duration)
  std::uint64_t seed = 1;    ///< class-pick determinism
  TypecheckService::Options service;
  std::vector<LoadClass> classes;
};

/// Per-class outcome accounting. `offered` always equals
/// ok + shed + failed once RunLoadgen returns: every arrival is accounted
/// for, which is the harness's zero-hang proof. Latencies are server-side
/// end-to-end (queue wait + execution) over ok responses.
struct ClassReport {
  std::uint64_t offered = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;    ///< rejected at admission
  std::uint64_t failed = 0;  ///< admitted but finished with an error
  std::uint64_t tier_exact = 0;        ///< ok responses served exactly
  std::uint64_t tier_approximate = 0;  ///< ok responses served degraded
  double p50_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  double max_ms = 0;
};

struct LoadgenReport {
  double offered_qps = 0;
  double achieved_qps = 0;  ///< ok responses per wall-clock second
  double wall_s = 0;
  std::uint64_t offered = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
  std::map<std::string, ClassReport> classes;
  ServiceStats service;  ///< the service's own telemetry at shutdown
};

/// Replays an open-loop mixed schedule against a fresh in-process service:
/// arrivals are scheduled at `offered_qps` regardless of completions (a
/// slow service faces a growing backlog, exactly like a real client
/// population — no coordinated omission), classes are picked by a
/// deterministic weighted hash of the arrival index, and every future is
/// harvested before returning. Ends with a graceful Stop() so queued work
/// is either finished or cleanly cancelled, never leaked.
StatusOr<LoadgenReport> RunLoadgen(const LoadgenOptions& options);

/// Closed-loop calibration: measures the mean warm-cache cost of `cls`
/// (after compiling its variants once) over `samples` sequential requests
/// and returns threads / mean_cost — the rough max throughput the service
/// can sustain. The overload harness drives 2x this rate.
StatusOr<double> EstimateSustainableQps(const LoadgenOptions& options,
                                        const LoadClass& cls,
                                        int samples = 32);

}  // namespace xtc

#endif  // XTC_SERVICE_LOADGEN_H_
