#include "src/schema/witness.h"

#include <algorithm>
#include <queue>

#include "src/base/logging.h"

namespace xtc {
namespace {

// Saturating addition on tree-size costs.
uint64_t SatAdd(uint64_t a, uint64_t b) {
  if (a == kInfiniteCost || b == kInfiniteCost) return kInfiniteCost;
  uint64_t s = a + b;
  return s < a ? kInfiniteCost : s;
}

// Minimal total symbol-cost of a word accepted by `nfa`, where letter s
// costs costs[s]; also returns such a word when `word` is non-null.
// Dijkstra over NFA states.
uint64_t CheapestWord(const Nfa& nfa, const std::vector<uint64_t>& costs,
                      std::vector<int>* word) {
  const uint64_t kInf = kInfiniteCost;
  std::vector<uint64_t> dist(static_cast<std::size_t>(nfa.num_states()), kInf);
  std::vector<std::pair<int, int>> pred(
      static_cast<std::size_t>(nfa.num_states()), {-1, -1});
  using Item = std::pair<uint64_t, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  for (int s = 0; s < nfa.num_states(); ++s) {
    if (nfa.initial(s)) {
      dist[static_cast<std::size_t>(s)] = 0;
      pq.emplace(0, s);
    }
  }
  int best_final = -1;
  uint64_t best = kInf;
  while (!pq.empty()) {
    auto [d, s] = pq.top();
    pq.pop();
    if (d != dist[static_cast<std::size_t>(s)]) continue;
    if (nfa.final(s)) {
      best_final = s;
      best = d;
      break;  // Dijkstra: first settled final is cheapest.
    }
    for (const auto& [sym, t] : nfa.Edges(s)) {
      uint64_t c = costs[static_cast<std::size_t>(sym)];
      if (c == kInf) continue;
      uint64_t nd = SatAdd(d, c);
      if (nd < dist[static_cast<std::size_t>(t)]) {
        dist[static_cast<std::size_t>(t)] = nd;
        pred[static_cast<std::size_t>(t)] = {s, sym};
        pq.emplace(nd, t);
      }
    }
  }
  if (best_final == -1) return kInf;
  if (word != nullptr) {
    word->clear();
    for (int cur = best_final; pred[static_cast<std::size_t>(cur)].first != -1;
         cur = pred[static_cast<std::size_t>(cur)].first) {
      word->push_back(pred[static_cast<std::size_t>(cur)].second);
    }
    std::reverse(word->begin(), word->end());
  }
  return best;
}

}  // namespace

std::vector<uint64_t> MinimalTreeCosts(const Dtd& dtd) {
  return *MinimalTreeCosts(dtd, nullptr);
}

StatusOr<std::vector<uint64_t>> MinimalTreeCosts(const Dtd& dtd,
                                                 Budget* budget) {
  const int n = dtd.num_symbols();
  std::vector<uint64_t> costs(static_cast<std::size_t>(n), kInfiniteCost);
  bool changed = true;
  while (changed) {
    changed = false;
    for (int s = 0; s < n; ++s) {
      XTC_RETURN_IF_ERROR(BudgetCheck(budget, "MinimalTreeCosts"));
      uint64_t w = CheapestWord(dtd.RuleNfa(s), costs, nullptr);
      uint64_t c = SatAdd(1, w);
      if (c < costs[static_cast<std::size_t>(s)]) {
        costs[static_cast<std::size_t>(s)] = c;
        changed = true;
      }
    }
  }
  return costs;
}

namespace {

StatusOr<Node*> MinimalTreeRec(const Dtd& dtd, int symbol,
                               const std::vector<uint64_t>& costs,
                               TreeBuilder* builder, Budget* budget) {
  XTC_RETURN_IF_ERROR(BudgetCheck(budget, "MinimalValidTree"));
  std::vector<int> word;
  uint64_t w = CheapestWord(dtd.RuleNfa(symbol), costs, &word);
  XTC_CHECK_MSG(w != kInfiniteCost, "symbol is not inhabited");
  std::vector<Node*> kids;
  kids.reserve(word.size());
  for (int c : word) {
    XTC_ASSIGN_OR_RETURN(Node * kid,
                         MinimalTreeRec(dtd, c, costs, builder, budget));
    kids.push_back(kid);
  }
  return builder->Make(symbol, kids);
}

}  // namespace

Node* MinimalValidTree(const Dtd& dtd, int symbol, TreeBuilder* builder) {
  StatusOr<Node*> tree = MinimalValidTree(dtd, symbol, builder, nullptr);
  XTC_CHECK_MSG(tree.ok(), tree.status().ToString().c_str());
  return *tree;
}

StatusOr<Node*> MinimalValidTree(const Dtd& dtd, int symbol,
                                 TreeBuilder* builder, Budget* budget) {
  XTC_ASSIGN_OR_RETURN(std::vector<uint64_t> costs,
                       MinimalTreeCosts(dtd, budget));
  if (costs[static_cast<std::size_t>(symbol)] == kInfiniteCost) {
    return FailedPreconditionError("symbol is not inhabited");
  }
  return MinimalTreeRec(dtd, symbol, costs, builder, budget);
}

namespace {

// Builds t_min / t_vast for `symbol`, detecting recursive (hence
// uninhabited) symbols via the `visiting` mark.
void BuildWitnessRec(const Dtd& dtd, int symbol, RePlusWitnesses* out,
                     std::vector<char>* visiting) {
  if (out->t_min[static_cast<std::size_t>(symbol)] != -2) return;  // done
  if ((*visiting)[static_cast<std::size_t>(symbol)]) {
    out->t_min[static_cast<std::size_t>(symbol)] = -1;
    out->t_vast[static_cast<std::size_t>(symbol)] = -1;
    return;
  }
  (*visiting)[static_cast<std::size_t>(symbol)] = 1;
  const RePlus* rp = dtd.RuleRePlus(symbol);
  XTC_CHECK(rp != nullptr);
  std::vector<int> min_kids;
  std::vector<int> vast_kids;
  bool inhabited = true;
  for (const RePlus::Factor& f : rp->factors()) {
    BuildWitnessRec(dtd, f.symbol, out, visiting);
    int cmin = out->t_min[static_cast<std::size_t>(f.symbol)];
    int cvast = out->t_vast[static_cast<std::size_t>(f.symbol)];
    if (cmin == -1) {
      inhabited = false;
      break;
    }
    min_kids.push_back(cmin);
    vast_kids.push_back(cvast);
    if (f.plus) vast_kids.push_back(cvast);
  }
  (*visiting)[static_cast<std::size_t>(symbol)] = 0;
  if (!inhabited) {
    out->t_min[static_cast<std::size_t>(symbol)] = -1;
    out->t_vast[static_cast<std::size_t>(symbol)] = -1;
    return;
  }
  out->t_min[static_cast<std::size_t>(symbol)] =
      out->forest.Make(symbol, min_kids);
  out->t_vast[static_cast<std::size_t>(symbol)] =
      out->forest.Make(symbol, vast_kids);
}

}  // namespace

StatusOr<RePlusWitnesses> BuildRePlusWitnesses(const Dtd& dtd) {
  if (!dtd.IsRePlusDtd()) {
    return FailedPreconditionError("DTD is not a DTD(RE+)");
  }
  RePlusWitnesses out;
  const std::size_t n = static_cast<std::size_t>(dtd.num_symbols());
  out.t_min.assign(n, -2);
  out.t_vast.assign(n, -2);
  std::vector<char> visiting(n, 0);
  for (int s = 0; s < dtd.num_symbols(); ++s) {
    BuildWitnessRec(dtd, s, &out, &visiting);
  }
  return out;
}

}  // namespace xtc
