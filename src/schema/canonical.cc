#include "src/schema/canonical.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/base/hash.h"
#include "src/fa/regex.h"

namespace xtc {
namespace {

void AppendNfa(const Nfa& nfa, std::string* out) {
  out->append("nfa ");
  out->append(std::to_string(nfa.num_states()));
  for (int s = 0; s < nfa.num_states(); ++s) {
    out->push_back(' ');
    out->push_back(nfa.initial(s) ? 'i' : '.');
    out->push_back(nfa.final(s) ? 'f' : '.');
    // Edge insertion order is not part of the automaton's identity.
    std::vector<std::pair<int, int>> edges = nfa.Edges(s);
    std::sort(edges.begin(), edges.end());
    for (const auto& [symbol, target] : edges) {
      out->push_back(' ');
      out->append(std::to_string(symbol));
      out->push_back('>');
      out->append(std::to_string(target));
    }
    out->push_back(';');
  }
}

void AppendDfa(const Dfa& dfa, std::string* out) {
  out->append("dfa ");
  out->append(std::to_string(dfa.num_states()));
  out->append(" init ");
  out->append(std::to_string(dfa.initial()));
  for (int s = 0; s < dfa.num_states(); ++s) {
    out->push_back(' ');
    out->push_back(dfa.final(s) ? 'f' : '.');
    for (int a = 0; a < dfa.num_symbols(); ++a) {
      const int to = dfa.Step(s, a);
      if (to == Dfa::kDead) continue;
      out->push_back(' ');
      out->append(std::to_string(a));
      out->push_back('>');
      out->append(std::to_string(to));
    }
    out->push_back(';');
  }
}

}  // namespace

std::string CanonicalDtdText(const Dtd& dtd) {
  const Alphabet& alphabet = *dtd.alphabet();
  std::string out = "dtd-v1\nalphabet";
  // Only the id space the Dtd snapshotted matters; names interned after
  // construction cannot occur in any rule.
  for (int s = 0; s < dtd.num_symbols(); ++s) {
    out.push_back(' ');
    out.append(alphabet.Name(s));
  }
  out.append("\nstart ");
  out.append(alphabet.Name(dtd.start()));
  out.push_back('\n');

  std::vector<int> declared;
  for (int s = 0; s < dtd.num_symbols(); ++s) {
    if (dtd.HasRule(s)) declared.push_back(s);
  }
  std::sort(declared.begin(), declared.end(),
            [&](int a, int b) { return alphabet.Name(a) < alphabet.Name(b); });
  for (int s : declared) {
    out.append("rule ");
    out.append(alphabet.Name(s));
    out.append(" = ");
    switch (dtd.rule_kind(s)) {
      case Dtd::RuleKind::kEpsilonDefault:
        out.append("%");
        break;
      case Dtd::RuleKind::kRePlus:
      case Dtd::RuleKind::kDetRegex:
      case Dtd::RuleKind::kNondetRegex:
        // Re-rendered from the AST: whitespace/comma noise canonicalizes,
        // structural differences survive.
        out.append(RegexToString(*dtd.RuleRegex(s), alphabet));
        break;
      case Dtd::RuleKind::kNfa:
        AppendNfa(dtd.RuleNfa(s), &out);
        break;
      case Dtd::RuleKind::kDfa:
        // SetRuleDfa keeps the DFA it was given; the derived NFA mirrors it.
        AppendDfa(dtd.RuleDfa(s), &out);
        break;
    }
    out.push_back('\n');
  }
  return out;
}

std::uint64_t StructuralDtdHash(const Dtd& dtd) {
  return HashBytes(CanonicalDtdText(dtd));
}

}  // namespace xtc
