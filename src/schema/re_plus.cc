#include "src/schema/re_plus.h"

#include <algorithm>

#include "src/base/logging.h"

namespace xtc {

StatusOr<RePlus> RePlus::FromRegex(const Regex& re) {
  std::vector<Factor> factors;
  std::vector<const Regex*> parts;
  if (re.kind == Regex::Kind::kConcat) {
    for (const RegexPtr& c : re.children) parts.push_back(c.get());
  } else {
    parts.push_back(&re);
  }
  for (const Regex* p : parts) {
    switch (p->kind) {
      case Regex::Kind::kEpsilon:
        break;
      case Regex::Kind::kSymbol:
        factors.push_back({p->symbol, false});
        break;
      case Regex::Kind::kPlus:
        if (p->children[0]->kind != Regex::Kind::kSymbol) {
          return InvalidArgumentError("RE+ allows '+' on single symbols only");
        }
        factors.push_back({p->children[0]->symbol, true});
        break;
      default:
        return InvalidArgumentError(
            "not an RE+ expression: factors must be epsilon, a, or a+");
    }
  }
  return RePlus(std::move(factors));
}

StatusOr<RePlus> RePlus::Parse(std::string_view text, Alphabet* alphabet) {
  StatusOr<RegexPtr> re = ParseRegex(text, alphabet);
  if (!re.ok()) return re.status();
  return FromRegex(**re);
}

std::vector<RePlus::NormFactor> RePlus::Normalized() const {
  std::vector<NormFactor> out;
  for (const Factor& f : factors_) {
    if (!out.empty() && out.back().symbol == f.symbol) {
      out.back().min_count += 1;
      out.back().unbounded = out.back().unbounded || f.plus;
    } else {
      out.push_back({f.symbol, 1, f.plus});
    }
  }
  return out;
}

std::vector<int> RePlus::MinString() const {
  std::vector<int> out;
  for (const NormFactor& f : Normalized()) {
    out.insert(out.end(), f.min_count, f.symbol);
  }
  return out;
}

std::vector<int> RePlus::VastString() const {
  std::vector<int> out;
  for (const NormFactor& f : Normalized()) {
    int count = f.min_count + (f.unbounded ? 1 : 0);
    out.insert(out.end(), count, f.symbol);
  }
  return out;
}

bool RePlus::Matches(std::span<const int> word) const {
  std::vector<NormFactor> norm = Normalized();
  std::size_t pos = 0;
  for (const NormFactor& f : norm) {
    std::size_t run = 0;
    while (pos + run < word.size() && word[pos + run] == f.symbol) ++run;
    if (run < static_cast<std::size_t>(f.min_count)) return false;
    if (!f.unbounded) run = static_cast<std::size_t>(f.min_count);
    pos += run;
  }
  return pos == word.size();
}

Dfa RePlus::ToDfa(int num_symbols) const {
  // One state per position in the minimal string; unbounded factors loop on
  // their last mandatory occurrence.
  std::vector<NormFactor> norm = Normalized();
  Dfa dfa(num_symbols);
  int start = dfa.AddState(false);
  dfa.SetInitial(start);
  int cur = start;
  for (const NormFactor& f : norm) {
    XTC_CHECK_LT(f.symbol, num_symbols);
    for (int i = 0; i < f.min_count; ++i) {
      int next = dfa.AddState(false);
      dfa.SetTransition(cur, f.symbol, next);
      cur = next;
    }
    if (f.unbounded) dfa.SetTransition(cur, f.symbol, cur);
  }
  dfa.SetFinal(cur);
  return dfa;
}

RegexPtr RePlus::ToRegex() const {
  std::vector<RegexPtr> parts;
  for (const Factor& f : factors_) {
    RegexPtr s = Regex::Sym(f.symbol);
    parts.push_back(f.plus ? Regex::Plus(s) : s);
  }
  return Regex::Concat(std::move(parts));
}

std::string RePlus::ToString(const Alphabet& alphabet) const {
  if (factors_.empty()) return "%";
  std::string out;
  for (std::size_t i = 0; i < factors_.size(); ++i) {
    if (i > 0) out.push_back(' ');
    out.append(alphabet.Name(factors_[i].symbol));
    if (factors_[i].plus) out.push_back('+');
  }
  return out;
}

bool RePlus::IncludedIn(const RePlus& other) const {
  // Lemma 31 / Corollary 32: L(e) ⊆ L(f) iff f matches both e_min and an
  // e-vast string.
  std::vector<int> min = MinString();
  std::vector<int> vast = VastString();
  return other.Matches(min) && other.Matches(vast);
}

bool RePlus::EquivalentTo(const RePlus& other) const {
  return IncludedIn(other) && other.IncludedIn(*this);
}

bool RePlus::IntersectionEmpty(std::span<const RePlus> exprs) {
  if (exprs.empty()) return false;
  // A word shared by all RE+ languages has maximal-block structure equal to
  // every expression's normalized symbol sequence, so all sequences must
  // coincide and the per-block count constraints must be jointly satisfiable.
  std::vector<RePlus::NormFactor> base = exprs[0].Normalized();
  std::vector<int> exact(base.size(), -1);  // -1: no exact constraint yet
  std::vector<int> lower(base.size(), 0);
  for (const RePlus& e : exprs) {
    std::vector<RePlus::NormFactor> norm = e.Normalized();
    if (norm.size() != base.size()) return true;
    for (std::size_t i = 0; i < norm.size(); ++i) {
      if (norm[i].symbol != base[i].symbol) return true;
      if (norm[i].unbounded) {
        lower[i] = std::max(lower[i], norm[i].min_count);
      } else {
        if (exact[i] != -1 && exact[i] != norm[i].min_count) return true;
        exact[i] = norm[i].min_count;
      }
    }
  }
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (exact[i] != -1 && exact[i] < lower[i]) return true;
  }
  return false;
}

}  // namespace xtc
