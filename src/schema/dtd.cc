#include "src/schema/dtd.h"

#include <algorithm>
#include <deque>

#include "src/base/logging.h"

namespace xtc {

Dtd::Dtd(Alphabet* alphabet, int start_symbol)
    : alphabet_(alphabet),
      num_symbols_(alphabet->size()),
      start_(start_symbol),
      rules_(static_cast<std::size_t>(num_symbols_)) {
  XTC_CHECK(start_symbol >= 0 && start_symbol < num_symbols_);
  // The shared default rule accepts exactly ε.
  Nfa eps(num_symbols_);
  eps.AddState(/*initial=*/true, /*final=*/true);
  default_rule_.nfa = std::move(eps);
  default_rule_.re_plus = RePlus();
  default_rule_.regex = Regex::Epsilon();
}

void Dtd::SetRule(int symbol, RegexPtr re) {
  Rule& r = mutable_rule(symbol);
  r.regex = re;
  r.nfa = RegexToNfa(*re, num_symbols_);
  r.dfa.reset();
  r.dfa_complete.reset();
  StatusOr<RePlus> rp = RePlus::FromRegex(*re);
  if (rp.ok()) {
    r.re_plus = *std::move(rp);
    r.kind = RuleKind::kRePlus;
  } else {
    r.re_plus.reset();
    r.kind = RegexIsOneUnambiguous(*re, num_symbols_) ? RuleKind::kDetRegex
                                                      : RuleKind::kNondetRegex;
  }
  InvalidateAnalysis();
}

Status Dtd::SetRule(std::string_view symbol_name, std::string_view regex) {
  std::optional<int> symbol = alphabet_->Find(symbol_name);
  if (!symbol.has_value() || *symbol >= num_symbols_) {
    return InvalidArgumentError("symbol '" + std::string(symbol_name) +
                                "' was not interned before Dtd construction");
  }
  StatusOr<RegexPtr> re = ParseRegex(regex, alphabet_);
  if (!re.ok()) return re.status();
  std::vector<bool> used(static_cast<std::size_t>(alphabet_->size()), false);
  RegexSymbols(**re, &used);
  for (int s = num_symbols_; s < alphabet_->size(); ++s) {
    if (used[static_cast<std::size_t>(s)]) {
      return InvalidArgumentError(
          "rule mentions symbol '" + alphabet_->Name(s) +
          "' that was not interned before Dtd construction");
    }
  }
  SetRule(*symbol, *re);
  return Status::Ok();
}

void Dtd::SetRuleNfa(int symbol, Nfa nfa) {
  XTC_CHECK_EQ(nfa.num_symbols(), num_symbols_);
  Rule& r = mutable_rule(symbol);
  r.regex = nullptr;
  r.re_plus.reset();
  r.nfa = std::move(nfa);
  r.dfa.reset();
  r.dfa_complete.reset();
  r.kind = RuleKind::kNfa;
  InvalidateAnalysis();
}

void Dtd::SetRuleDfa(int symbol, Dfa dfa) {
  XTC_CHECK_EQ(dfa.num_symbols(), num_symbols_);
  Rule& r = mutable_rule(symbol);
  r.regex = nullptr;
  r.re_plus.reset();
  r.nfa = dfa.ToNfa();
  r.dfa = std::move(dfa);
  r.dfa_complete.reset();
  r.kind = RuleKind::kDfa;
  InvalidateAnalysis();
}

const Dtd::Rule& Dtd::rule(int symbol) const {
  XTC_CHECK(symbol >= 0 && symbol < num_symbols_);
  const Rule& r = rules_[static_cast<std::size_t>(symbol)];
  if (r.kind == RuleKind::kEpsilonDefault && !r.nfa.has_value()) {
    return default_rule_;
  }
  return r;
}

Dtd::Rule& Dtd::mutable_rule(int symbol) {
  XTC_CHECK(symbol >= 0 && symbol < num_symbols_);
  return rules_[static_cast<std::size_t>(symbol)];
}

void Dtd::InvalidateAnalysis() { inhabited_.reset(); }

Dtd::RuleKind Dtd::rule_kind(int symbol) const { return rule(symbol).kind; }

bool Dtd::HasRule(int symbol) const {
  return rule(symbol).kind != RuleKind::kEpsilonDefault;
}

const RegexPtr& Dtd::RuleRegex(int symbol) const { return rule(symbol).regex; }

const Nfa& Dtd::RuleNfa(int symbol) const {
  const Rule& r = rule(symbol);
  XTC_CHECK(r.nfa.has_value());
  return *r.nfa;
}

const Dfa& Dtd::RuleDfa(int symbol) const {
  const Rule& r = rule(symbol);
  if (!r.dfa.has_value()) {
    r.dfa = Dfa::FromNfa(*r.nfa);
  }
  return *r.dfa;
}

const Dfa& Dtd::RuleDfaComplete(int symbol) const {
  const Rule& r = rule(symbol);
  if (!r.dfa_complete.has_value()) {
    r.dfa_complete = RuleDfa(symbol).Completed();
  }
  return *r.dfa_complete;
}

const RePlus* Dtd::RuleRePlus(int symbol) const {
  const Rule& r = rule(symbol);
  return r.re_plus.has_value() ? &*r.re_plus : nullptr;
}

Status Dtd::Compile(Budget* budget) {
  // The shared default-ε rule is forced too: RuleDfa on an undeclared
  // symbol would otherwise write into default_rule_ on first use.
  auto force = [&](const Rule& r) -> Status {
    XTC_RETURN_IF_ERROR(BudgetCheck(budget, "Dtd::Compile"));
    if (!r.dfa.has_value()) {
      XTC_ASSIGN_OR_RETURN(r.dfa, Dfa::FromNfa(*r.nfa, budget));
      if (budget != nullptr) budget->ChargeBytes(r.dfa->Size() * sizeof(int));
    }
    if (!r.dfa_complete.has_value()) {
      r.dfa_complete = r.dfa->Completed();
      if (budget != nullptr) {
        budget->ChargeBytes(r.dfa_complete->Size() * sizeof(int));
      }
    }
    return Status::Ok();
  };
  XTC_RETURN_IF_ERROR(force(default_rule_));
  for (int s = 0; s < num_symbols_; ++s) {
    const Rule& r = rules_[static_cast<std::size_t>(s)];
    if (r.kind == RuleKind::kEpsilonDefault && !r.nfa.has_value()) continue;
    XTC_RETURN_IF_ERROR(force(r));
  }
  (void)InhabitedSymbols();
  return Status::Ok();
}

bool Dtd::IsCompiled() const {
  if (!inhabited_.has_value()) return false;
  if (!default_rule_.dfa_complete.has_value()) return false;
  for (int s = 0; s < num_symbols_; ++s) {
    const Rule& r = rules_[static_cast<std::size_t>(s)];
    if (r.kind == RuleKind::kEpsilonDefault && !r.nfa.has_value()) continue;
    if (!r.dfa.has_value() || !r.dfa_complete.has_value()) return false;
  }
  return true;
}

bool Dtd::IsRePlusDtd() const {
  for (int s = 0; s < num_symbols_; ++s) {
    const Rule& r = rule(s);
    if (r.kind != RuleKind::kEpsilonDefault && r.kind != RuleKind::kRePlus) {
      return false;
    }
  }
  return true;
}

bool Dtd::IsDfaDtd() const {
  for (int s = 0; s < num_symbols_; ++s) {
    switch (rule(s).kind) {
      case RuleKind::kEpsilonDefault:
      case RuleKind::kRePlus:
      case RuleKind::kDetRegex:
      case RuleKind::kDfa:
        break;
      case RuleKind::kNondetRegex:
      case RuleKind::kNfa:
        return false;
    }
  }
  return true;
}

std::size_t Dtd::Size() const {
  std::size_t total = 0;
  for (int s = 0; s < num_symbols_; ++s) {
    const Rule& r = rule(s);
    if (r.kind == RuleKind::kEpsilonDefault) continue;
    total += r.nfa->Size();
  }
  return total;
}

namespace {

bool NodeChildrenMatch(const Dtd& dtd, const Node* node) {
  std::vector<int> labels;
  labels.reserve(node->child_count);
  for (const Node* c : node->Children()) {
    if (c->label < 0 || c->label >= dtd.num_symbols()) return false;
    labels.push_back(c->label);
  }
  return dtd.RuleNfa(node->label).Accepts(labels);
}

bool LocallyValidRec(const Dtd& dtd, const Node* node) {
  if (node->label < 0 || node->label >= dtd.num_symbols()) return false;
  if (!NodeChildrenMatch(dtd, node)) return false;
  for (const Node* c : node->Children()) {
    if (!LocallyValidRec(dtd, c)) return false;
  }
  return true;
}

}  // namespace

bool Dtd::Valid(const Node* tree) const {
  if (tree == nullptr) return false;
  if (tree->label != start_) return false;
  return LocallyValidRec(*this, tree);
}

bool Dtd::LocallyValid(const Node* tree) const {
  if (tree == nullptr) return false;
  return LocallyValidRec(*this, tree);
}

bool Dtd::PartlySatisfies(const Hedge& hedge) const {
  for (const Node* t : hedge) {
    if (!LocallyValidRec(*this, t)) return false;
  }
  return true;
}

const StateSet& Dtd::InhabitedSymbols() const {
  if (inhabited_.has_value()) return *inhabited_;
  StateSet inhabited(num_symbols_);
  bool changed = true;
  while (changed) {
    changed = false;
    for (int s = 0; s < num_symbols_; ++s) {
      if (inhabited.Test(s)) continue;
      if (RuleNfa(s).AcceptsSomeOver(&inhabited)) {
        inhabited.Set(s);
        changed = true;
      }
    }
  }
  inhabited_ = std::move(inhabited);
  return *inhabited_;
}

bool Dtd::LanguageEmpty() const { return !InhabitedSymbols().Test(start_); }

StateSet Dtd::UsableChildren(int parent) const {
  return RuleNfa(parent).SymbolsOnAcceptingPaths(&InhabitedSymbols());
}

std::optional<std::vector<int>> Dtd::ShortestUsableWord(int parent) const {
  return RuleNfa(parent).ShortestAcceptedOver(&InhabitedSymbols());
}

std::optional<std::vector<int>> Dtd::UsableWordContaining(int parent,
                                                          int child) const {
  // Product of the rule NFA with the two-state automaton "saw `child` at
  // least once", then a shortest accepted word.
  const Nfa& base = RuleNfa(parent);
  Nfa seen(num_symbols_);
  int s0 = seen.AddState(/*initial=*/true, /*final=*/false);
  int s1 = seen.AddState(/*initial=*/false, /*final=*/true);
  for (int sym = 0; sym < num_symbols_; ++sym) {
    seen.AddTransition(s0, sym, sym == child ? s1 : s0);
    seen.AddTransition(s1, sym, s1);
  }
  Nfa prod = Nfa::Intersection(base, seen);
  return prod.ShortestAcceptedOver(&InhabitedSymbols());
}

}  // namespace xtc
