#ifndef XTC_SCHEMA_WITNESS_H_
#define XTC_SCHEMA_WITNESS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/base/budget.h"
#include "src/base/status.h"
#include "src/schema/dtd.h"
#include "src/tree/hashcons.h"
#include "src/tree/tree.h"

namespace xtc {

inline constexpr uint64_t kInfiniteCost = ~uint64_t{0};

/// Node count of a smallest tree in L(d, a) per symbol a (kInfiniteCost for
/// uninhabited symbols). Least fixpoint with weighted shortest words. The
/// governed overload checkpoints per fixpoint entry examined.
std::vector<uint64_t> MinimalTreeCosts(const Dtd& dtd);
StatusOr<std::vector<uint64_t>> MinimalTreeCosts(const Dtd& dtd,
                                                 Budget* budget);

/// A smallest tree of L(d, symbol); the symbol must be inhabited (the
/// ungoverned form aborts otherwise). The governed overload instead
/// returns kFailedPrecondition for uninhabited symbols and
/// kResourceExhausted when the budget trips mid-build; it checkpoints per
/// node of the tree under construction.
Node* MinimalValidTree(const Dtd& dtd, int symbol, TreeBuilder* builder);
StatusOr<Node*> MinimalValidTree(const Dtd& dtd, int symbol,
                                 TreeBuilder* builder, Budget* budget);

/// The Section 5 witness trees t_min and t_vast for a DTD(RE+), represented
/// hash-consed (t_vast unfolds exponentially). Ids are per symbol; -1 marks
/// uninhabited symbols (a recursive RE+ rule makes its symbol uninhabited:
/// every RE+ factor is mandatory, so recursion cannot bottom out).
struct RePlusWitnesses {
  SharedForest forest;
  std::vector<int> t_min;   // forest id per symbol, or -1
  std::vector<int> t_vast;  // forest id per symbol, or -1
};

/// Builds the witnesses; fails if the DTD is not a DTD(RE+).
StatusOr<RePlusWitnesses> BuildRePlusWitnesses(const Dtd& dtd);

}  // namespace xtc

#endif  // XTC_SCHEMA_WITNESS_H_
