#ifndef XTC_SCHEMA_RE_PLUS_H_
#define XTC_SCHEMA_RE_PLUS_H_

#include <span>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/fa/alphabet.h"
#include "src/fa/dfa.h"
#include "src/fa/regex.h"

namespace xtc {

/// An RE+ expression (Section 5): a concatenation α1···αk where every αi is
/// ε, a, or a+ for an alphabet symbol a. DTD(RE+) schemas admit PTIME
/// typechecking for arbitrary transducers (Theorem 37).
class RePlus {
 public:
  /// One concatenation factor; `plus` distinguishes a+ from a (ε factors are
  /// dropped on construction).
  struct Factor {
    int symbol;
    bool plus;

    bool operator==(const Factor&) const = default;
  };

  RePlus() = default;
  explicit RePlus(std::vector<Factor> factors) : factors_(std::move(factors)) {}

  /// Extracts the RE+ shape from a regex AST; fails if the expression is not
  /// a concatenation of symbols, symbol-pluses and epsilons.
  static StatusOr<RePlus> FromRegex(const Regex& re);

  /// Parses e.g. "title author+ chapter+".
  static StatusOr<RePlus> Parse(std::string_view text, Alphabet* alphabet);

  const std::vector<Factor>& factors() const { return factors_; }

  /// Normal form of Section 5: successive equal symbols merged into
  /// a^{=x} (exact) or a^{>=x}; adjacent normalized factors have distinct
  /// symbols.
  struct NormFactor {
    int symbol;
    int min_count;
    bool unbounded;

    bool operator==(const NormFactor&) const = default;
  };
  std::vector<NormFactor> Normalized() const;

  /// The minimal string e_min (each factor contributes min_count symbols).
  std::vector<int> MinString() const;

  /// An e-vast string: min_count+1 occurrences for every unbounded factor
  /// (Section 5; {e_min, e_vast} is RE+-equivalent to L(e), Lemma 31).
  std::vector<int> VastString() const;

  bool Matches(std::span<const int> word) const;

  Dfa ToDfa(int num_symbols) const;
  RegexPtr ToRegex() const;
  std::string ToString(const Alphabet& alphabet) const;

  /// Language inclusion L(this) ⊆ L(other), decided syntactically via
  /// Lemma 31: it suffices that `other` matches MinString() and
  /// VastString().
  bool IncludedIn(const RePlus& other) const;
  bool EquivalentTo(const RePlus& other) const;

  /// Emptiness of the intersection of many RE+ languages in PTIME
  /// ([MNS, MFCS 2004], used by the paper's Section 5 discussion).
  static bool IntersectionEmpty(std::span<const RePlus> exprs);

 private:
  std::vector<Factor> factors_;
};

}  // namespace xtc

#endif  // XTC_SCHEMA_RE_PLUS_H_
