#ifndef XTC_SCHEMA_CANONICAL_H_
#define XTC_SCHEMA_CANONICAL_H_

#include <cstdint>
#include <string>

#include "src/schema/dtd.h"

namespace xtc {

/// A canonical, content-complete text rendering of a DTD, used as the
/// content address of compiled schema artifacts (src/service). Two DTDs get
/// the same text iff they are structurally identical: same alphabet id->name
/// mapping, same start symbol, and per-symbol rules whose representations
/// (regex AST, NFA, or DFA) are equal. Rules are listed in symbol-name
/// order and regexes re-rendered from their ASTs, so serialization noise
/// (rule order, whitespace, ',' vs ' ' concatenation) does not split cache
/// entries, while structurally different rules ("a|b" vs "b|a") do.
///
/// The alphabet section pins the id space: a schema parsed under a
/// different symbol universe compiles to different automata (rule NFAs are
/// sized by the alphabet), so it must — and does — get a different address.
std::string CanonicalDtdText(const Dtd& dtd);

/// HashBytes(CanonicalDtdText(dtd)): the bucket key of the compile cache.
/// Collisions are resolved by full-text comparison, never by trust.
std::uint64_t StructuralDtdHash(const Dtd& dtd);

}  // namespace xtc

#endif  // XTC_SCHEMA_CANONICAL_H_
