#ifndef XTC_SCHEMA_DTD_H_
#define XTC_SCHEMA_DTD_H_

#include <optional>
#include <string_view>
#include <vector>

#include "src/base/budget.h"
#include "src/base/state_set.h"
#include "src/base/status.h"
#include "src/fa/alphabet.h"
#include "src/fa/dfa.h"
#include "src/fa/nfa.h"
#include "src/fa/regex.h"
#include "src/schema/re_plus.h"
#include "src/tree/tree.h"

namespace xtc {

/// A DTD (d, s_d) in the sense of Definition 1: a start symbol plus a map
/// from symbols to regular string languages over the alphabet. The
/// representation class M of DTD(M) is tracked per rule: rules can be
/// installed from regular expressions (RE+ shape detected automatically),
/// NFAs, or DFAs. Symbols without a rule default to the content model ε
/// (leaves), matching the convention of the paper's examples, where e.g.
/// `title` has no declared rule.
///
/// The alphabet must be fully interned before the Dtd is created; the Dtd
/// snapshots the alphabet size and all rule automata run over it.
class Dtd {
 public:
  /// How a rule was provided; determines which DTD(M) classes the schema
  /// belongs to.
  enum class RuleKind {
    kEpsilonDefault,  ///< no declared rule; content model ε
    kRePlus,          ///< RE+ expression (Section 5)
    kDetRegex,        ///< one-unambiguous regex (DFA-convertible in PTIME)
    kNondetRegex,     ///< general regex (NFA)
    kNfa,             ///< explicit NFA
    kDfa,             ///< explicit DFA
  };

  Dtd(Alphabet* alphabet, int start_symbol);

  /// Installs d(symbol) = L(re).
  void SetRule(int symbol, RegexPtr re);

  /// Convenience: parses `regex` and installs it for `symbol_name`. Fails
  /// only on parse errors. New names are interned (they must have been
  /// interned before Dtd construction to be usable as node labels; interning
  /// here keeps error messages readable).
  Status SetRule(std::string_view symbol_name, std::string_view regex);

  void SetRuleNfa(int symbol, Nfa nfa);
  void SetRuleDfa(int symbol, Dfa dfa);

  Alphabet* alphabet() const { return alphabet_; }
  int num_symbols() const { return num_symbols_; }
  int start() const { return start_; }
  void SetStart(int symbol) { start_ = symbol; }

  RuleKind rule_kind(int symbol) const;
  bool HasRule(int symbol) const;
  const RegexPtr& RuleRegex(int symbol) const;  ///< may be null (NFA/DFA rule)

  /// The rule's NFA (default-ε for undeclared symbols).
  const Nfa& RuleNfa(int symbol) const;

  /// The rule as a (partial) DFA; subset construction is cached. For
  /// kNondetRegex/kNfa rules this can be exponential — that is the
  /// DTD(NFA) → DTD(DFA) cost the paper's PSPACE row charges.
  const Dfa& RuleDfa(int symbol) const;

  /// The rule as a complete DFA (cached); the Lemma 14 engine runs these.
  const Dfa& RuleDfaComplete(int symbol) const;

  /// The rule's RE+ shape, if it has one.
  const RePlus* RuleRePlus(int symbol) const;

  /// Forces every lazily computed member — each rule's (complete) DFA and
  /// the inhabitation fixpoint — so that all later const access is a pure
  /// read. A Dtd is thread-compatible only after Compile(): RuleDfa /
  /// RuleDfaComplete / InhabitedSymbols populate `mutable` caches on first
  /// use, which is a data race when a cached schema artifact is shared
  /// across service workers (src/base/README.md). The subset constructions
  /// are governed by `budget` — for DTD(NFA) rules they are worst-case
  /// exponential (the PSPACE price of Table 1), and a compile cache must
  /// degrade softly rather than thrash on a hostile schema.
  Status Compile(Budget* budget = nullptr);

  /// Whether Compile() has run (and no rule was reinstalled since).
  bool IsCompiled() const;

  /// Whether every rule is RE+ (DTD(RE+), Section 5).
  bool IsRePlusDtd() const;

  /// Whether every rule is deterministic without subset construction
  /// (DTD(DFA): explicit DFA, one-unambiguous regex, RE+, or default ε).
  bool IsDfaDtd() const;

  /// Paper size measure: sum of rule representation sizes.
  std::size_t Size() const;

  // --- Validation (Definition 1) ---

  /// Whether `tree` satisfies the DTD (root label = start symbol and every
  /// node's child string matches its rule).
  bool Valid(const Node* tree) const;

  /// Whether `tree` is in L(d, lab(root)): every node's child string matches
  /// its rule, but the root label is not required to be the start symbol.
  bool LocallyValid(const Node* tree) const;

  /// Whether the hedge "partly satisfies" the DTD (Lemma 14 terminology):
  /// child strings match everywhere; no constraint on the hedge's roots.
  bool PartlySatisfies(const Hedge& hedge) const;

  // --- Analysis ---

  /// Symbols b with L(d, b) nonempty (least fixpoint).
  const StateSet& InhabitedSymbols() const;

  /// Whether L(d) = ∅.
  bool LanguageEmpty() const;

  /// Symbols occurring in some word of L(d(parent)) all of whose letters are
  /// inhabited (i.e. labels that can actually appear below `parent` in a
  /// valid tree).
  StateSet UsableChildren(int parent) const;

  /// A shortest word of L(d(parent)) over inhabited symbols.
  std::optional<std::vector<int>> ShortestUsableWord(int parent) const;

  /// A shortest word of L(d(parent)) over inhabited symbols containing
  /// `child`; used to embed counterexample contexts (Corollary 38).
  std::optional<std::vector<int>> UsableWordContaining(int parent,
                                                       int child) const;

 private:
  struct Rule {
    RuleKind kind = RuleKind::kEpsilonDefault;
    RegexPtr regex;
    std::optional<RePlus> re_plus;
    std::optional<Nfa> nfa;
    mutable std::optional<Dfa> dfa;
    mutable std::optional<Dfa> dfa_complete;
  };

  const Rule& rule(int symbol) const;
  Rule& mutable_rule(int symbol);
  void InvalidateAnalysis();

  Alphabet* alphabet_;
  int num_symbols_;
  int start_;
  std::vector<Rule> rules_;
  Rule default_rule_;  // shared ε rule for undeclared symbols
  mutable std::optional<StateSet> inhabited_;
};

}  // namespace xtc

#endif  // XTC_SCHEMA_DTD_H_
