#include "src/core/reachable.h"

#include "src/base/logging.h"
#include "src/schema/witness.h"

namespace xtc {

void StatesInRhs(const RhsHedge& rhs, StateSet* states) {
  for (const RhsNode& n : rhs) {
    switch (n.kind) {
      case RhsNode::Kind::kLabel:
        StatesInRhs(n.children, states);
        break;
      case RhsNode::Kind::kState:
      case RhsNode::Kind::kSelect:
        states->Set(n.state);
        break;
    }
  }
}

int ReachablePairs::Index(int state, int symbol) const {
  return state * din_.num_symbols() + symbol;
}

ReachablePairs::ReachablePairs(const Transducer& t, const Dtd& din)
    : t_(t), din_(din) {
  XTC_CHECK_MSG(!t.HasSelectors(),
                "compile selectors before reachability analysis");
  const int total = t.num_states() * din.num_symbols();
  reachable_.Assign(total, false);
  origin_.assign(static_cast<std::size_t>(total), -1);
  if (din.LanguageEmpty() || t.initial() < 0) return;

  // pairs_ doubles as the BFS queue: new pairs append, `head` walks forward.
  auto visit = [&](int state, int symbol, int origin_pair) {
    int idx = Index(state, symbol);
    if (!reachable_.TestAndSet(idx)) return;
    origin_[static_cast<std::size_t>(idx)] = origin_pair;
    pairs_.emplace_back(state, symbol);
  };
  visit(t.initial(), din.start(), -1);
  StateSet states(t.num_states());
  for (std::size_t head = 0; head < pairs_.size(); ++head) {
    auto [q, a] = pairs_[head];
    const RhsHedge* rhs = t.rule(q, a);
    if (rhs == nullptr) continue;
    states.Clear();
    StatesInRhs(*rhs, &states);
    const StateSet children = din.UsableChildren(a);
    const int pair_pos = static_cast<int>(head);
    states.ForEach([&](int p) {
      children.ForEach([&](int b) { visit(p, b, pair_pos); });
    });
  }
}

bool ReachablePairs::IsReachable(int state, int symbol) const {
  return reachable_.Test(Index(state, symbol));
}

Node* ReachablePairs::EmbedWitness(int state, int symbol, Node* subtree,
                                   TreeBuilder* builder) const {
  XTC_CHECK(IsReachable(state, symbol));
  // Recover the symbol chain root -> ... -> (state, symbol).
  std::vector<int> chain;  // symbols from target up to root
  int pos = -1;
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    if (pairs_[i] == std::make_pair(state, symbol)) {
      pos = static_cast<int>(i);
      break;
    }
  }
  XTC_CHECK_GE(pos, 0);
  std::vector<int> pair_chain;
  for (int cur = pos; cur != -1;
       cur = origin_[static_cast<std::size_t>(Index(
           pairs_[static_cast<std::size_t>(cur)].first,
           pairs_[static_cast<std::size_t>(cur)].second))]) {
    pair_chain.push_back(cur);
  }
  // pair_chain goes target..root; build top-down.
  Node* current = subtree;
  for (std::size_t i = 0; i + 1 < pair_chain.size(); ++i) {
    int child_symbol =
        pairs_[static_cast<std::size_t>(pair_chain[i])].second;
    int parent_symbol =
        pairs_[static_cast<std::size_t>(pair_chain[i + 1])].second;
    std::optional<std::vector<int>> word =
        din_.UsableWordContaining(parent_symbol, child_symbol);
    XTC_CHECK(word.has_value());
    std::vector<Node*> kids;
    bool placed = false;
    for (int b : *word) {
      if (!placed && b == child_symbol) {
        kids.push_back(current);
        placed = true;
      } else {
        kids.push_back(MinimalValidTree(din_, b, builder));
      }
    }
    XTC_CHECK(placed);
    current = builder->Make(parent_symbol, kids);
  }
  return current;
}

}  // namespace xtc
