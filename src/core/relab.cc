#include "src/core/relab.h"

#include <algorithm>
#include <vector>

#include "src/base/logging.h"
#include "src/base/state_set.h"
#include "src/core/brute_force.h"
#include "src/fa/eps_nfa.h"
#include "src/nta/analysis.h"
#include "src/nta/lazy.h"
#include "src/nta/product.h"
#include "src/schema/witness.h"
#include "src/td/classes.h"

namespace xtc {
namespace {

// The #-marked totalized template of one rule of T': trees whose nodes
// carry labels over Σ ∪ {#} plus at most one state leaf.
struct MarkedNode {
  int label = -1;  // -1 for the state leaf
  int state = -1;
  std::vector<int> children;  // node ids
};

struct MarkedRule {
  int state;                      // q_T
  int symbol;                     // a
  std::vector<MarkedNode> nodes;  // indexed by id
  std::vector<int> roots;         // top-level trees, in order (>= 1)
  int state_node = -1;            // id of the unique state leaf, or -1
  int state_parent = -1;          // its parent node id
  int state_pos = -1;             // its position among the parent's children
};

int AddMarkedRec(const RhsNode& n, MarkedRule* rule) {
  MarkedNode node;
  if (n.kind == RhsNode::Kind::kState) {
    node.state = n.state;
  } else {
    XTC_CHECK(n.kind == RhsNode::Kind::kLabel);
    node.label = n.label;
  }
  int id = static_cast<int>(rule->nodes.size());
  rule->nodes.push_back(node);
  for (const RhsNode& c : n.children) {
    int cid = AddMarkedRec(c, rule);
    rule->nodes[static_cast<std::size_t>(id)].children.push_back(cid);
  }
  return id;
}

// Builds T''s rule for (state, symbol): wrap top-level states as #(q) and
// turn missing/empty templates into the single leaf #.
MarkedRule MarkRule(const Transducer& t, int state, int symbol,
                    int hash_symbol) {
  MarkedRule rule;
  rule.state = state;
  rule.symbol = symbol;
  const RhsHedge* rhs = t.rule(state, symbol);
  if (rhs == nullptr || rhs->empty()) {
    MarkedNode hash;
    hash.label = hash_symbol;
    rule.nodes.push_back(hash);
    rule.roots.push_back(0);
    return rule;
  }
  for (const RhsNode& n : *rhs) {
    if (n.kind == RhsNode::Kind::kState) {
      MarkedNode hash;
      hash.label = hash_symbol;
      int hid = static_cast<int>(rule.nodes.size());
      rule.nodes.push_back(hash);
      MarkedNode leaf;
      leaf.state = n.state;
      int sid = static_cast<int>(rule.nodes.size());
      rule.nodes.push_back(leaf);
      rule.nodes[static_cast<std::size_t>(hid)].children.push_back(sid);
      rule.roots.push_back(hid);
    } else {
      rule.roots.push_back(AddMarkedRec(n, &rule));
    }
  }
  for (std::size_t id = 0; id < rule.nodes.size(); ++id) {
    const MarkedNode& n = rule.nodes[id];
    for (std::size_t j = 0; j < n.children.size(); ++j) {
      int c = n.children[j];
      if (rule.nodes[static_cast<std::size_t>(c)].state != -1) {
        XTC_CHECK_EQ(rule.state_node, -1);  // del-relab: at most one state
        rule.state_node = c;
        rule.state_parent = static_cast<int>(id);
        rule.state_pos = static_cast<int>(j);
      }
    }
  }
  return rule;
}

}  // namespace

StatusOr<Nta> OutputLanguageNta(const Transducer& t, const Nta& ain,
                                int hash_symbol, Budget* budget) {
  if (!IsDelRelab(t)) {
    return FailedPreconditionError(
        "Lemma 19 requires templates with at most one state (T_del-relab)");
  }
  const int base = hash_symbol;  // input symbols are 0..base-1
  XTC_CHECK_EQ(ain.num_symbols(), base);
  const int n_a = ain.num_states();

  // Inhabitation of (root symbol, A_in state) pairs: stateless templates
  // produce fixed output without traversing the input subtree, so B_in must
  // separately certify that an input subtree with root c and run state q_A
  // exists at all (otherwise the image picks up spurious trees).
  XTC_ASSIGN_OR_RETURN(StateSet reach, ReachableStates(ain, budget));
  auto rootable = [&](int c, int qa) {
    const Nfa* h = ain.Horizontal(qa, c);
    return h != nullptr && h->AcceptsSomeOver(&reach);
  };

  // T''s rules for every (transducer state, base symbol), q-major, so the
  // index is pure arithmetic.
  std::vector<MarkedRule> rules;
  rules.reserve(static_cast<std::size_t>(t.num_states()) *
                static_cast<std::size_t>(base));
  for (int q = 0; q < t.num_states(); ++q) {
    for (int a = 0; a < base; ++a) {
      rules.push_back(MarkRule(t, q, a, hash_symbol));
    }
  }
  auto rule_index = [&](int q, int a) { return q * base + a; };

  // B_in states: (rule, qA, non-state node of the template). Non-state
  // nodes get dense per-rule slots, so the id is offset arithmetic instead
  // of a tuple-map lookup.
  std::vector<std::vector<int>> node_slot(rules.size());
  std::vector<int> rule_slots(rules.size(), 0);
  std::vector<int> rule_base(rules.size(), 0);
  int num_states = 0;
  for (std::size_t r = 0; r < rules.size(); ++r) {
    node_slot[r].assign(rules[r].nodes.size(), -1);
    int slot = 0;
    for (std::size_t u = 0; u < rules[r].nodes.size(); ++u) {
      if (rules[r].nodes[u].state != -1) continue;
      node_slot[r][u] = slot++;
    }
    rule_slots[r] = slot;
    rule_base[r] = num_states;
    num_states += n_a * slot;
  }
  auto id_of = [&](int r, int qa, int u) {
    const std::size_t ri = static_cast<std::size_t>(r);
    return rule_base[ri] + qa * rule_slots[ri] +
           node_slot[ri][static_cast<std::size_t>(u)];
  };

  Nta out(hash_symbol + 1, num_states);

  // Finals: roots of initial-state rules paired with accepting a_in states.
  for (int a = 0; a < base; ++a) {
    int r = rule_index(t.initial(), a);
    // Hedge-shaped initial templates never produce trees; such roots are
    // handled by the Definition 5 pre-check at the Dtd-level entry point.
    if (rules[static_cast<std::size_t>(r)].roots.size() != 1) continue;
    int root = rules[static_cast<std::size_t>(r)].roots[0];
    if (rules[static_cast<std::size_t>(r)]
            .nodes[static_cast<std::size_t>(root)]
            .state != -1) {
      continue;
    }
    for (int qa = 0; qa < n_a; ++qa) {
      if (ain.final(qa)) out.SetFinal(id_of(r, qa, root));
    }
  }

  for (std::size_t ri = 0; ri < rules.size(); ++ri) {
    const int r = static_cast<int>(ri);
    const MarkedRule& rule = rules[ri];
    for (int qa = 0; qa < n_a; ++qa) {
      for (std::size_t ui = 0; ui < rule.nodes.size(); ++ui) {
        if (node_slot[ri][ui] == -1) continue;  // state leaf: no B_in state
        XTC_RETURN_IF_ERROR(BudgetCheck(budget, "OutputLanguageNta"));
        const int u = static_cast<int>(ui);
        const int id = id_of(r, qa, u);
        const MarkedNode& node = rule.nodes[ui];
        if (rule.state_node == -1 && !rootable(rule.symbol, qa)) {
          // Stateless template whose input subtree cannot exist with this
          // A_in state: the B_in state stays uninhabited.
          continue;
        }
        if (u != rule.state_parent) {
          // Fixed children word (possibly empty for leaves).
          std::vector<int> word;
          word.reserve(node.children.size());
          for (int c : node.children) word.push_back(id_of(r, qa, c));
          out.SetTransition(id, node.label, Nfa::SingleWord(num_states, word));
          continue;
        }
        // The state leaf sits at position state_pos among u's children:
        // splice in the substituted language of delta_Ain(qa, a) (the D' of
        // Lemma 19).
        const Nfa* d = ain.Horizontal(qa, rule.symbol);
        if (d == nullptr) continue;  // empty horizontal: no transition at all
        EpsNfa enfa(num_states);
        int cur = enfa.AddState(/*initial=*/true);
        for (int j = 0; j < rule.state_pos; ++j) {
          int next = enfa.AddState();
          enfa.AddEdge(
              cur, id_of(r, qa, node.children[static_cast<std::size_t>(j)]),
              next);
          cur = next;
        }
        // Embed D: reading child state q'_A becomes reading the chain of
        // template roots of rhs'(q', c) for every input symbol c.
        std::vector<int> dmap(static_cast<std::size_t>(d->num_states()));
        for (int s = 0; s < d->num_states(); ++s) {
          dmap[static_cast<std::size_t>(s)] = enfa.AddState();
        }
        for (int s = 0; s < d->num_states(); ++s) {
          if (d->initial(s)) {
            enfa.AddEdge(cur, -1, dmap[static_cast<std::size_t>(s)]);
          }
        }
        int qprime =
            rule.nodes[static_cast<std::size_t>(rule.state_node)].state;
        for (int s = 0; s < d->num_states(); ++s) {
          for (const auto& [child_state, to] : d->Edges(s)) {
            for (int c = 0; c < base; ++c) {
              int r2 = rule_index(qprime, c);
              const std::vector<int>& roots =
                  rules[static_cast<std::size_t>(r2)].roots;
              int from = dmap[static_cast<std::size_t>(s)];
              for (std::size_t k = 0; k < roots.size(); ++k) {
                int target = (k + 1 == roots.size())
                                 ? dmap[static_cast<std::size_t>(to)]
                                 : enfa.AddState();
                enfa.AddEdge(from, id_of(r2, child_state, roots[k]), target);
                from = target;
              }
            }
          }
        }
        // Suffix chain after the spliced language.
        int tail = enfa.AddState();
        for (int s = 0; s < d->num_states(); ++s) {
          if (d->final(s)) {
            enfa.AddEdge(dmap[static_cast<std::size_t>(s)], -1, tail);
          }
        }
        cur = tail;
        for (std::size_t j = static_cast<std::size_t>(rule.state_pos) + 1;
             j < node.children.size(); ++j) {
          int next = enfa.AddState();
          enfa.AddEdge(cur, id_of(r, qa, node.children[j]), next);
          cur = next;
        }
        enfa.SetFinal(cur);
        out.SetTransition(id, node.label, enfa.Build());
      }
    }
  }
  return out;
}

Nta HashEliminationNta(const Nta& aout, int hash_symbol) {
  const int base = hash_symbol;
  XTC_CHECK_EQ(aout.num_symbols(), base);
  const int n = aout.num_states();

  // Index the horizontal NFAs of aout; pair states (h, x, y) mark #-nodes
  // whose spliced-out children drive h from x to y.
  struct HInfo {
    int state;
    int symbol;
    const Nfa* nfa;
    int pair_offset;  // first pair-state id
  };
  std::vector<HInfo> hs;
  int num_states = n;
  for (const auto& [key, nfa] : aout.transitions()) {
    HInfo info;
    info.state = key.first;
    info.symbol = key.second;
    info.nfa = &nfa;
    info.pair_offset = num_states;
    num_states += nfa.num_states() * nfa.num_states();
    hs.push_back(info);
  }

  Nta out(base + 1, num_states);
  for (int q = 0; q < n; ++q) out.SetFinal(q, aout.final(q));

  for (const HInfo& info : hs) {
    const Nfa& h = *info.nfa;
    const int m = h.num_states();
    auto pair_id = [&](int x, int y) { return info.pair_offset + x * m + y; };

    // The lifted automaton: original edges read normal child states; jump
    // edges x --(h,x,y)--> y read #-children. All m^2 + 1 lifted copies
    // share the same edge lists and differ only in initial/final flags, so
    // the edge structure is built once and bulk-copied per copy instead of
    // re-inserted edge by edge (O(m^2) edges per copy, m^2 copies).
    Nfa proto(num_states);
    proto.ReserveStates(m);
    for (int s = 0; s < m; ++s) proto.AddState(false, false);
    for (int s = 0; s < m; ++s) {
      auto& row = proto.MutableEdges(s);
      row.reserve(h.Edges(s).size() + static_cast<std::size_t>(m));
      row = h.Edges(s);
      for (int y = 0; y < m; ++y) row.emplace_back(pair_id(s, y), y);
    }

    auto lift = [&](int init, int fin) {
      // init/fin == -1 keep the original initials/finals.
      Nfa lifted = proto;
      for (int s = 0; s < m; ++s) {
        lifted.SetInitial(s, init == -1 ? h.initial(s) : s == init);
        lifted.SetFinal(s, fin == -1 ? h.final(s) : s == fin);
      }
      return lifted;
    };

    // Normal node: delta(q, a) lifted.
    out.SetTransition(info.state, info.symbol, lift(-1, -1));
    // Pair nodes: labelled #, children must drive h from x to y.
    for (int x = 0; x < m; ++x) {
      for (int y = 0; y < m; ++y) {
        out.SetTransition(pair_id(x, y), hash_symbol, lift(x, y));
      }
    }
  }
  return out;
}

namespace {

StatusOr<bool> DelRelabEmptiness(const Transducer& t, const Nta& ain,
                                 const Nta& aout_dtac, TypecheckStats* stats,
                                 const TypecheckOptions& options) {
  Budget* budget = options.budget;
  const int base = ain.num_symbols();
  Nta aout_complement = ComplementedDtac(aout_dtac);
  StatusOr<Nta> bin = OutputLanguageNta(t, ain, base, budget);
  if (!bin.ok()) return bin.status();
  Nta bout = HashEliminationNta(aout_complement, base);
  if (options.emptiness_engine == EmptinessEngine::kLazy) {
    // On-the-fly product emptiness: B_in × B_out is never materialized —
    // only configurations reachable bottom-up are discovered, and the run
    // stops at the first accepting one (DESIGN.md §3c).
    LazyProductSpec spec;
    spec.AddNta(&*bin);
    spec.AddNta(&bout);
    LazyOptions lazy_options;
    lazy_options.budget = budget;
    lazy_options.max_configs = static_cast<int>(
        std::min<std::uint64_t>(options.max_configs, 1u << 30));
    lazy_options.max_h_configs = lazy_options.max_configs;
    lazy_options.threads = options.emptiness_threads;
    lazy_options.antichain = options.antichain;
    lazy_options.dense_threshold = options.dense_threshold;
    lazy_options.resume = options.lazy_resume;
    lazy_options.export_snapshot = options.lazy_export;
    StatusOr<EmptinessOutcome> outcome =
        LazyEmptiness(spec, nullptr, lazy_options);
    if (outcome.ok()) {
      stats->nta_states = outcome->stats.configs;
      stats->nta_size = outcome->stats.h_configs + outcome->stats.steps;
      stats->pruned_configs = outcome->stats.pruned_configs;
      stats->displaced_configs = outcome->stats.displaced_configs;
      return outcome->empty;
    }
    // A tripped Budget is sticky and must surface; only the lazy engine's
    // own state caps fall back to the eager reference pipeline.
    if (budget != nullptr && budget->exhausted()) return outcome.status();
    if (outcome.status().code() != StatusCode::kResourceExhausted) {
      return outcome.status();
    }
  }
  XTC_ASSIGN_OR_RETURN(Nta product, Intersect(*bin, bout, budget));
  stats->nta_states = static_cast<std::uint64_t>(product.num_states());
  stats->nta_size = product.Size();
  return IsEmptyLanguage(product, budget);
}

}  // namespace

StatusOr<TypecheckResult> TypecheckDelRelabNta(const Transducer& t,
                                               const Nta& ain,
                                               const Nta& aout_dtac,
                                               const TypecheckOptions& options) {
  WallTimer timer;
  TypecheckResult result;
  result.arena = std::make_shared<Arena>();
  ArenaBudgetScope arena_scope(result.arena, options.budget);
  StatusOr<bool> empty =
      DelRelabEmptiness(t, ain, aout_dtac, &result.stats, options);
  if (!empty.ok()) return empty.status();
  result.typechecks = *empty;
  if (options.budget != nullptr) {
    result.stats.budget_checkpoints = options.budget->checkpoints();
    result.stats.budget_bytes = options.budget->bytes_charged();
    result.stats.elapsed_ms = options.budget->elapsed_ms();
    result.stats.exhaustion = options.budget->cause();
  } else {
    result.stats.elapsed_ms = timer.elapsed_ms();
  }
  return result;
}

StatusOr<TypecheckResult> TypecheckDelRelab(const Transducer& t,
                                            const Dtd& din, const Dtd& dout,
                                            const TypecheckOptions& options) {
  XTC_CHECK(t.alphabet() == din.alphabet() && t.alphabet() == dout.alphabet());
  WallTimer timer;
  TypecheckResult result;
  result.arena = std::make_shared<Arena>();
  TreeBuilder builder(result.arena.get());
  // The scope pins the arena: result.arena may be swapped for the
  // brute-force engine's arena on the counterexample path below.
  ArenaBudgetScope arena_scope(result.arena, options.budget);
  auto finalize = [&] {
    if (options.budget != nullptr) {
      result.stats.budget_checkpoints = options.budget->checkpoints();
      result.stats.budget_bytes = options.budget->bytes_charged();
      result.stats.elapsed_ms = options.budget->elapsed_ms();
      result.stats.exhaustion = options.budget->cause();
    } else {
      result.stats.elapsed_ms = timer.elapsed_ms();
    }
  };
  if (din.LanguageEmpty()) {
    result.typechecks = true;
    finalize();
    return result;
  }
  // Root pre-check: the translation must be a single tree (Definition 5).
  const RhsHedge* root_rhs = t.rule(t.initial(), din.start());
  if (root_rhs == nullptr || root_rhs->size() != 1 ||
      (*root_rhs)[0].kind != RhsNode::Kind::kLabel) {
    result.typechecks = false;
    if (options.want_counterexample) {
      // Best effort: a tripped budget only drops the counterexample.
      StatusOr<Node*> tree =
          MinimalValidTree(din, din.start(), &builder, options.budget);
      if (tree.ok()) result.counterexample = *tree;
    }
    finalize();
    return result;
  }
  Nta ain = Nta::FromDtd(din);
  Nta aout = CompletedDeterministic(Nta::FromDtd(dout));
  StatusOr<bool> empty =
      DelRelabEmptiness(t, ain, aout, &result.stats, options);
  if (!empty.ok()) return empty.status();
  result.typechecks = *empty;
  if (!result.typechecks && options.want_counterexample) {
    // Recover an input counterexample by bounded search (the product
    // witness is an output tree; see DESIGN.md).
    for (int depth = 2; depth <= 6 && result.counterexample == nullptr;
         ++depth) {
      BruteForceOptions bf;
      bf.max_depth = depth;
      bf.max_width = 4;
      bf.budget = options.budget;
      StatusOr<TypecheckResult> brute = TypecheckBruteForce(t, din, dout, bf);
      if (!brute.ok()) break;  // budget tripped: keep the verdict, no tree
      if (!brute->typechecks) {
        result.arena = brute->arena;
        result.counterexample = brute->counterexample;
      }
    }
  }
  finalize();
  return result;
}

}  // namespace xtc
