#ifndef XTC_CORE_ALMOST_ALWAYS_H_
#define XTC_CORE_ALMOST_ALWAYS_H_

#include "src/base/status.h"
#include "src/core/typecheck.h"

namespace xtc {

/// Almost-always typechecking (Corollary 39, after Engelfriet & Maneth):
/// whether {t ∈ L(d_in) | T(t) ∉ L(d_out)} is finite. Decided by building
/// the explicit counterexample NTA of Lemma 14 and running the finiteness
/// test of Proposition 4(1). PTIME for T_trac with DTD(DFA) schemas.
/// A non-null `budget` governs both the construction and the finiteness
/// analysis (kResourceExhausted on a tripped deadline/step/byte limit).
StatusOr<bool> TypechecksAlmostAlways(const Transducer& t, const Dtd& din,
                                      const Dtd& dout, int max_states = 200000,
                                      Budget* budget = nullptr);

}  // namespace xtc

#endif  // XTC_CORE_ALMOST_ALWAYS_H_
