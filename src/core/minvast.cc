#include "src/core/minvast.h"

#include <map>

#include "src/base/logging.h"
#include "src/schema/witness.h"
#include "src/tree/hashcons.h"

namespace xtc {
namespace {

// Symbolic conformance of T(t) to d_out for hash-consed t: validity and
// output-DFA effects are memoized per (state, shared node), so the check is
// polynomial in the DAG size even when t unfolds exponentially.
class SymbolicChecker {
 public:
  SymbolicChecker(const Transducer& t, const Dtd& dout,
                  const SharedForest& forest, Budget* budget)
      : t_(t), dout_(dout), forest_(forest), budget_(budget) {}

  // Whether T(t_root) is a tree satisfying d_out.
  bool OutputConforms(int root) {
    const RhsHedge* rhs = t_.rule(t_.initial(), forest_.label(root));
    // The translation must be a single tree rooted at the output start
    // symbol (Definition 5).
    if (rhs == nullptr || rhs->size() != 1 ||
        (*rhs)[0].kind != RhsNode::Kind::kLabel ||
        (*rhs)[0].label != dout_.start()) {
      return false;
    }
    return TemplateValid(*rhs, root);
  }

  // Latched budget failure: the recursive memoization returns references
  // into memo tables and cannot propagate a Status, so exhaustion latches
  // here and every later call early-outs with a neutral answer. Verdicts
  // are meaningless while status() is non-OK.
  const Status& status() const { return status_; }

 private:
  // delta* of the complete DFA for d_out(sigma) over the string
  // top(T^{p}(t_node)), as a function table Q_sigma -> Q_sigma.
  const std::vector<int>& Eff(int p, int node, int sigma) {
    auto key = std::make_tuple(p, node, sigma);
    auto it = eff_memo_.find(key);
    if (it != eff_memo_.end()) return it->second;
    if (status_.ok()) status_ = BudgetCheck(budget_, "TypecheckMinVast/Eff");
    const Dfa& d = dout_.RuleDfaComplete(sigma);
    std::vector<int> f(static_cast<std::size_t>(d.num_states()));
    for (int x = 0; x < d.num_states(); ++x) f[static_cast<std::size_t>(x)] = x;
    const RhsHedge* rhs = t_.rule(p, forest_.label(node));
    if (rhs != nullptr && status_.ok()) {
      for (int x = 0; x < d.num_states(); ++x) {
        int cur = x;
        for (const RhsNode& n : *rhs) {
          if (n.kind == RhsNode::Kind::kLabel) {
            cur = d.Step(cur, n.label);
          } else {
            XTC_CHECK(n.kind == RhsNode::Kind::kState);
            for (int c : forest_.children(node)) {
              cur = Eff(n.state, c, sigma)[static_cast<std::size_t>(cur)];
            }
          }
        }
        f[static_cast<std::size_t>(x)] = cur;
      }
    }
    return eff_memo_.emplace(key, std::move(f)).first->second;
  }

  // Whether T^{p}(t_node) partly satisfies d_out.
  bool Valid(int p, int node) {
    if (!status_.ok()) return true;  // unwinding; verdict discarded
    auto key = std::make_pair(p, node);
    auto it = valid_memo_.find(key);
    if (it != valid_memo_.end()) return it->second;
    if (status_.ok()) status_ = BudgetCheck(budget_, "TypecheckMinVast/Valid");
    if (!status_.ok()) return true;
    valid_memo_.emplace(key, true);  // harmless on DAGs (no real cycles)
    const RhsHedge* rhs = t_.rule(p, forest_.label(node));
    bool ok = rhs == nullptr || TemplateValid(*rhs, node);
    valid_memo_[key] = ok;
    return ok;
  }

  // Checks all output nodes produced by this template instantiated at
  // `node`, including everything produced below its states.
  bool TemplateValid(const RhsHedge& rhs, int node) {
    if (!status_.ok()) return true;  // unwinding; verdict discarded
    for (const RhsNode& n : rhs) {
      if (n.kind == RhsNode::Kind::kState) {
        for (int c : forest_.children(node)) {
          if (!Valid(n.state, c)) return false;
        }
        continue;
      }
      XTC_CHECK(n.kind == RhsNode::Kind::kLabel);
      // The children string of this produced node must match d_out(label).
      const Dfa& d = dout_.RuleDfaComplete(n.label);
      int x = d.initial();
      for (const RhsNode& ch : n.children) {
        if (ch.kind == RhsNode::Kind::kLabel) {
          x = d.Step(x, ch.label);
        } else {
          for (int c : forest_.children(node)) {
            x = Eff(ch.state, c, n.label)[static_cast<std::size_t>(x)];
          }
        }
      }
      if (!d.final(x)) return false;
      if (!TemplateValid(n.children, node)) return false;
    }
    return true;
  }

  const Transducer& t_;
  const Dtd& dout_;
  const SharedForest& forest_;
  Budget* budget_;
  Status status_;
  std::map<std::pair<int, int>, bool> valid_memo_;
  std::map<std::tuple<int, int, int>, std::vector<int>> eff_memo_;
};

}  // namespace

StatusOr<TypecheckResult> TypecheckMinVast(const Transducer& t, const Dtd& din,
                                           const Dtd& dout,
                                           const TypecheckOptions& options) {
  if (t.HasSelectors()) {
    return FailedPreconditionError("compile selectors before typechecking");
  }
  if (!din.IsRePlusDtd() || !dout.IsRePlusDtd()) {
    return FailedPreconditionError(
        "the t_min/t_vast algorithm requires DTD(RE+) schemas");
  }
  WallTimer timer;
  TypecheckResult result;
  result.arena = std::make_shared<Arena>();
  TreeBuilder builder(result.arena.get());
  ArenaBudgetScope arena_scope(result.arena, options.budget);
  auto finalize = [&] {
    if (options.budget != nullptr) {
      result.stats.budget_checkpoints = options.budget->checkpoints();
      result.stats.budget_bytes = options.budget->bytes_charged();
      result.stats.elapsed_ms = options.budget->elapsed_ms();
      result.stats.exhaustion = options.budget->cause();
    } else {
      result.stats.elapsed_ms = timer.elapsed_ms();
    }
  };

  if (din.LanguageEmpty()) {
    result.typechecks = true;
    finalize();
    return result;
  }
  StatusOr<RePlusWitnesses> witnesses = BuildRePlusWitnesses(din);
  if (!witnesses.ok()) return witnesses.status();
  int t_min = witnesses->t_min[static_cast<std::size_t>(din.start())];
  int t_vast = witnesses->t_vast[static_cast<std::size_t>(din.start())];
  XTC_CHECK_GE(t_min, 0);  // start symbol inhabited

  SymbolicChecker checker(t, dout, witnesses->forest, options.budget);
  int bad = -1;
  if (!checker.OutputConforms(t_min)) {
    bad = t_min;
  } else if (!checker.OutputConforms(t_vast)) {
    bad = t_vast;
  }
  // A latched budget failure invalidates both verdicts above.
  XTC_RETURN_IF_ERROR(checker.status());
  result.stats.configs = static_cast<std::uint64_t>(witnesses->forest.size());
  if (bad == -1) {
    result.typechecks = true;
    finalize();
    return result;
  }
  result.typechecks = false;
  if (options.want_counterexample) {
    StatusOr<Node*> tree =
        witnesses->forest.Materialize(bad, &builder, std::uint64_t{1} << 20);
    if (tree.ok()) result.counterexample = *tree;
  }
  finalize();
  return result;
}

}  // namespace xtc
