#include "src/core/brute_force.h"

#include <map>

#include "src/base/logging.h"
#include "src/td/exec.h"

namespace xtc {
namespace {

// Enumerates words of the rule language of `symbol` with length <= max_width.
StatusOr<std::vector<std::vector<int>>> RuleWords(const Dtd& dtd, int symbol,
                                                  int max_width,
                                                  Budget* budget) {
  const Nfa& nfa = dtd.RuleNfa(symbol);
  std::vector<std::vector<int>> out;
  // DFS over (state-set, word) pairs.
  struct Item {
    std::vector<bool> states;
    std::vector<int> word;
  };
  std::vector<bool> init(static_cast<std::size_t>(nfa.num_states()), false);
  for (int s = 0; s < nfa.num_states(); ++s) {
    if (nfa.initial(s)) init[static_cast<std::size_t>(s)] = true;
  }
  std::vector<Item> stack;
  stack.push_back({init, {}});
  while (!stack.empty()) {
    XTC_RETURN_IF_ERROR(BudgetCheck(budget, "BruteForce/RuleWords"));
    Item item = std::move(stack.back());
    stack.pop_back();
    bool accepting = false;
    for (int s = 0; s < nfa.num_states(); ++s) {
      if (item.states[static_cast<std::size_t>(s)] && nfa.final(s)) {
        accepting = true;
      }
    }
    if (accepting) out.push_back(item.word);
    if (static_cast<int>(item.word.size()) >= max_width) continue;
    // Group successors by symbol.
    std::map<int, std::vector<bool>> succ;
    for (int s = 0; s < nfa.num_states(); ++s) {
      if (!item.states[static_cast<std::size_t>(s)]) continue;
      for (const auto& [sym, t] : nfa.Edges(s)) {
        auto [it, inserted] = succ.try_emplace(
            sym,
            std::vector<bool>(static_cast<std::size_t>(nfa.num_states()),
                              false));
        it->second[static_cast<std::size_t>(t)] = true;
      }
    }
    for (auto& [sym, states] : succ) {
      Item next;
      next.states = std::move(states);
      next.word = item.word;
      next.word.push_back(sym);
      stack.push_back(std::move(next));
    }
  }
  return out;
}

class Enumerator {
 public:
  Enumerator(const Dtd& dtd, const BruteForceOptions& options,
             TreeBuilder* builder)
      : dtd_(dtd), options_(options), builder_(builder) {}

  // All trees of L(d, symbol) with depth <= depth, up to the budget. The
  // memoized recursion returns references, so governor failures latch into
  // status_ (checked by EnumerateValidTrees) and unwind with empty sets.
  const std::vector<Node*>& Trees(int symbol, int depth) {
    if (!status_.ok()) return empty_;
    auto key = std::make_pair(symbol, depth);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    std::vector<Node*> result;
    if (depth >= 1) {
      StatusOr<std::vector<std::vector<int>>> words =
          RuleWords(dtd_, symbol, options_.max_width, options_.budget);
      if (!words.ok()) {
        status_ = words.status();
        return empty_;
      }
      for (const std::vector<int>& word : *words) {
        if (word.empty()) {
          result.push_back(builder_->Leaf(symbol));
          continue;
        }
        if (depth == 1) continue;
        // Cartesian product of child tree sets.
        std::vector<const std::vector<Node*>*> sets;
        bool empty = false;
        for (int c : word) {
          sets.push_back(&Trees(c, depth - 1));
          if (sets.back()->empty()) {
            empty = true;
            break;
          }
        }
        if (empty || !status_.ok()) continue;
        std::vector<std::size_t> idx(word.size(), 0);
        while (true) {
          status_ = BudgetCheck(options_.budget, "BruteForce/Trees");
          if (!status_.ok()) break;
          std::vector<Node*> kids;
          kids.reserve(word.size());
          for (std::size_t i = 0; i < word.size(); ++i) {
            kids.push_back((*sets[i])[idx[i]]);
          }
          result.push_back(builder_->Make(symbol, kids));
          if (++produced_ >= options_.max_trees) break;
          std::size_t pos = 0;
          while (pos < idx.size()) {
            if (++idx[pos] < sets[pos]->size()) break;
            idx[pos] = 0;
            ++pos;
          }
          if (pos == idx.size()) break;
        }
        if (produced_ >= options_.max_trees || !status_.ok()) break;
      }
    }
    if (!status_.ok()) return empty_;
    return memo_.emplace(key, std::move(result)).first->second;
  }

  const Status& status() const { return status_; }

 private:
  const Dtd& dtd_;
  BruteForceOptions options_;
  TreeBuilder* builder_;
  Status status_;
  std::map<std::pair<int, int>, std::vector<Node*>> memo_;
  std::vector<Node*> empty_;
  std::uint64_t produced_ = 0;
};

}  // namespace

StatusOr<std::vector<Node*>> EnumerateValidTrees(
    const Dtd& dtd, int symbol, const BruteForceOptions& options,
    TreeBuilder* builder) {
  Enumerator e(dtd, options, builder);
  std::vector<Node*> trees = e.Trees(symbol, options.max_depth);
  XTC_RETURN_IF_ERROR(e.status());
  return trees;
}

StatusOr<TypecheckResult> TypecheckBruteForce(const Transducer& t,
                                              const Dtd& din, const Dtd& dout,
                                              const BruteForceOptions& options) {
  WallTimer timer;
  TypecheckResult result;
  result.arena = std::make_shared<Arena>();
  TreeBuilder builder(result.arena.get());
  ArenaBudgetScope arena_scope(result.arena, options.budget);
  XTC_ASSIGN_OR_RETURN(
      std::vector<Node*> trees,
      EnumerateValidTrees(din, din.start(), options, &builder));
  result.typechecks = true;
  for (Node* input : trees) {
    XTC_RETURN_IF_ERROR(BudgetCheck(options.budget, "TypecheckBruteForce"));
    Arena scratch;
    TreeBuilder out_builder(&scratch);
    Node* output = Apply(t, input, &out_builder);
    ++result.stats.evaluations;
    if (output == nullptr || !dout.Valid(output)) {
      result.typechecks = false;
      result.counterexample = input;
      break;
    }
  }
  if (options.budget != nullptr) {
    result.stats.budget_checkpoints = options.budget->checkpoints();
    result.stats.budget_bytes = options.budget->bytes_charged();
    result.stats.elapsed_ms = options.budget->elapsed_ms();
    result.stats.exhaustion = options.budget->cause();
  } else {
    result.stats.elapsed_ms = timer.elapsed_ms();
  }
  return result;
}

}  // namespace xtc
