#include "src/core/nfa_dtd.h"

#include "src/core/trac.h"

namespace xtc {

StatusOr<Dtd> DeterminizeDtd(const Dtd& dtd, int max_dfa_states) {
  Dtd out(dtd.alphabet(), dtd.start());
  for (int s = 0; s < dtd.num_symbols(); ++s) {
    if (!dtd.HasRule(s)) continue;
    Dfa dfa = Dfa::FromNfa(dtd.RuleNfa(s));
    if (dfa.num_states() > max_dfa_states) {
      return ResourceExhaustedError(
          "subset construction exceeded the DFA state budget for rule '" +
          dtd.alphabet()->Name(s) + "'");
    }
    out.SetRuleDfa(s, std::move(dfa));
  }
  return out;
}

StatusOr<TypecheckResult> TypecheckViaDeterminization(
    const Transducer& t, const Dtd& din, const Dtd& dout,
    const TypecheckOptions& options, int max_dfa_states) {
  StatusOr<Dtd> din_det = DeterminizeDtd(din, max_dfa_states);
  if (!din_det.ok()) return din_det.status();
  StatusOr<Dtd> dout_det = DeterminizeDtd(dout, max_dfa_states);
  if (!dout_det.ok()) return dout_det.status();
  return TypecheckTrac(t, *din_det, *dout_det, options);
}

}  // namespace xtc
