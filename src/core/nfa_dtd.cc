#include "src/core/nfa_dtd.h"

#include <utility>
#include <vector>

#include "src/core/trac.h"

namespace xtc {
namespace {

void CollectTemplateLabels(const RhsNode& node, StateSet* labels) {
  if (node.kind == RhsNode::Kind::kLabel) {
    if (node.label >= 0 && node.label < labels->size_bits()) {
      labels->Set(node.label);
    }
    for (const RhsNode& child : node.children) {
      CollectTemplateLabels(child, labels);
    }
  }
}

}  // namespace

StatusOr<Dtd> DeterminizeDtd(const Dtd& dtd, int max_dfa_states,
                             Budget* budget, const StateSet* needed) {
  Dtd out(dtd.alphabet(), dtd.start());
  for (int s = 0; s < dtd.num_symbols(); ++s) {
    if (!dtd.HasRule(s)) continue;
    if (needed != nullptr && !needed->Test(s)) {
      // The engine will never consult this rule's DFA; keep the NFA form
      // (same language) and skip its subset construction entirely.
      out.SetRuleNfa(s, dtd.RuleNfa(s));
      continue;
    }
    XTC_ASSIGN_OR_RETURN(Dfa dfa, Dfa::FromNfa(dtd.RuleNfa(s), budget));
    if (dfa.num_states() > max_dfa_states) {
      return ResourceExhaustedError(
          "subset construction exceeded the DFA state budget for rule '" +
          dtd.alphabet()->Name(s) + "'");
    }
    out.SetRuleDfa(s, std::move(dfa));
  }
  return out;
}

StateSet ConsultedInputSymbols(const Dtd& din) {
  // Closure of the start symbol under rule-NFA edge labels: the Lemma 14
  // engine only evaluates input nodes reachable from the root of a valid
  // tree, so only these rules' DFAs are ever stepped.
  StateSet seen(din.num_symbols());
  std::vector<int> frontier;
  if (din.start() >= 0 && din.start() < din.num_symbols()) {
    seen.Set(din.start());
    frontier.push_back(din.start());
  }
  while (!frontier.empty()) {
    const int s = frontier.back();
    frontier.pop_back();
    if (!din.HasRule(s)) continue;
    const Nfa& nfa = din.RuleNfa(s);
    for (int st = 0; st < nfa.num_states(); ++st) {
      for (const auto& [sym, to] : nfa.Edges(st)) {
        if (sym >= 0 && sym < din.num_symbols() && !seen.Test(sym)) {
          seen.Set(sym);
          frontier.push_back(sym);
        }
      }
    }
  }
  return seen;
}

StateSet ConsultedOutputSymbols(const Transducer& t, const Dtd& dout) {
  // Output rules are only run at labels the transducer can emit (template
  // labels), plus the output start symbol (the root acceptance check).
  StateSet labels(dout.num_symbols());
  if (dout.start() >= 0 && dout.start() < dout.num_symbols()) {
    labels.Set(dout.start());
  }
  for (int q = 0; q < t.num_states(); ++q) {
    for (int a = 0; a < dout.num_symbols(); ++a) {
      const RhsHedge* rhs = t.rule(q, a);
      if (rhs == nullptr) continue;
      for (const RhsNode& node : *rhs) CollectTemplateLabels(node, &labels);
    }
  }
  return labels;
}

StatusOr<TypecheckResult> TypecheckViaDeterminization(
    const Transducer& t, const Dtd& din, const Dtd& dout,
    const TypecheckOptions& options, int max_dfa_states) {
  // Lazy mode: determinize only the rules the Lemma 14 engine can actually
  // consult — the input symbols reachable from the start symbol and the
  // output symbols the transducer can emit. The remaining rules keep their
  // NFA form (identical language, no subset construction). Eager mode
  // keeps the historical determinize-everything behaviour as the reference.
  // This pre-pass is engine-shape-only: options.emptiness_threads rides
  // through untouched and picks the sequential vs. parallel frontier engine
  // downstream (relab.cc -> LazyOptions::threads).
  const bool lazy = options.emptiness_engine == EmptinessEngine::kLazy;
  StateSet needed_in, needed_out;
  if (lazy) {
    needed_in = ConsultedInputSymbols(din);
    needed_out = ConsultedOutputSymbols(t, dout);
  }
  XTC_ASSIGN_OR_RETURN(
      Dtd din_det, DeterminizeDtd(din, max_dfa_states, options.budget,
                                  lazy ? &needed_in : nullptr));
  XTC_ASSIGN_OR_RETURN(
      Dtd dout_det, DeterminizeDtd(dout, max_dfa_states, options.budget,
                                   lazy ? &needed_out : nullptr));
  return TypecheckTrac(t, din_det, dout_det, options);
}

}  // namespace xtc
