#include "src/core/nfa_dtd.h"

#include "src/core/trac.h"

namespace xtc {

StatusOr<Dtd> DeterminizeDtd(const Dtd& dtd, int max_dfa_states,
                             Budget* budget) {
  Dtd out(dtd.alphabet(), dtd.start());
  for (int s = 0; s < dtd.num_symbols(); ++s) {
    if (!dtd.HasRule(s)) continue;
    XTC_ASSIGN_OR_RETURN(Dfa dfa, Dfa::FromNfa(dtd.RuleNfa(s), budget));
    if (dfa.num_states() > max_dfa_states) {
      return ResourceExhaustedError(
          "subset construction exceeded the DFA state budget for rule '" +
          dtd.alphabet()->Name(s) + "'");
    }
    out.SetRuleDfa(s, std::move(dfa));
  }
  return out;
}

StatusOr<TypecheckResult> TypecheckViaDeterminization(
    const Transducer& t, const Dtd& din, const Dtd& dout,
    const TypecheckOptions& options, int max_dfa_states) {
  XTC_ASSIGN_OR_RETURN(Dtd din_det,
                       DeterminizeDtd(din, max_dfa_states, options.budget));
  XTC_ASSIGN_OR_RETURN(Dtd dout_det,
                       DeterminizeDtd(dout, max_dfa_states, options.budget));
  return TypecheckTrac(t, din_det, dout_det, options);
}

}  // namespace xtc
