#include "src/core/replus.h"

#include <map>
#include <set>

#include "src/base/logging.h"
#include "src/core/minvast.h"
#include "src/core/reachable.h"
#include "src/schema/witness.h"

namespace xtc {
namespace {

// Boolean state-pair relations over the complete output DFA for one sigma.
using Rel = std::vector<std::vector<bool>>;

Rel IdentityRel(int n) {
  Rel r(static_cast<std::size_t>(n),
        std::vector<bool>(static_cast<std::size_t>(n), false));
  for (int i = 0; i < n; ++i) r[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = true;
  return r;
}

Rel Compose(const Rel& a, const Rel& b) {
  const int n = static_cast<int>(a.size());
  Rel out(static_cast<std::size_t>(n),
          std::vector<bool>(static_cast<std::size_t>(n), false));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (!a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]) continue;
      for (int k = 0; k < n; ++k) {
        if (b[static_cast<std::size_t>(j)][static_cast<std::size_t>(k)]) {
          out[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] = true;
        }
      }
    }
  }
  return out;
}

bool RelEqual(const Rel& a, const Rel& b) { return a == b; }

Rel Union(const Rel& a, const Rel& b) {
  Rel out = a;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < a.size(); ++j) {
      if (b[i][j]) out[i][j] = true;
    }
  }
  return out;
}

// R+ = R ∪ R∘R ∪ ... (for the X+ exponents of the extended grammar).
Rel TransitiveClosure(const Rel& r) {
  Rel acc = r;
  while (true) {
    Rel next = Union(acc, Compose(acc, r));
    if (RelEqual(next, acc)) return acc;
    acc = std::move(next);
  }
}

// Advances a relation by one DFA symbol step.
Rel StepSymbol(const Rel& r, const Dfa& d, int symbol) {
  const int n = static_cast<int>(r.size());
  Rel out(static_cast<std::size_t>(n),
          std::vector<bool>(static_cast<std::size_t>(n), false));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (r[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]) {
        int k = d.Step(j, symbol);
        out[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] = true;
      }
    }
  }
  return out;
}

class GrammarEngine {
 public:
  GrammarEngine(const Transducer& t, const Dtd& din, const Dtd& dout,
                Budget* budget)
      : t_(t), din_(din), dout_(dout), budget_(budget) {}

  // The relation of nonterminal <p, b> against d_out(sigma)'s DFA:
  // pairs (x, y) with delta*(x, w) = y for some w in L(<p, b>).
  //
  // The recursive memoization cannot thread a Status through its return
  // type (references into memo_), so failures latch into status_: once it
  // is non-OK every call short-circuits with a well-formed placeholder
  // relation and the caller must discard the run. This turns both budget
  // exhaustion and recursive DTD(RE+) rules (formerly a hard abort) into
  // soft errors.
  const Rel& NontermRel(int p, int b, int sigma) {
    auto key = std::make_tuple(p, b, sigma);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    const Dfa& d = dout_.RuleDfaComplete(sigma);
    if (status_.ok()) {
      status_ = BudgetCheck(budget_, "TypecheckRePlus/NontermRel");
    }
    if (status_.ok() && visiting_.count(key) != 0) {
      status_ = FailedPreconditionError(
          "recursive DTD(RE+) rule reached from a reachable pair");
    }
    if (!status_.ok()) {
      // Park an identity relation so unwinding callers still index a table
      // of the right dimensions; the memo is poisoned but the engine is
      // single-run and the caller checks status().
      return memo_.emplace(key, IdentityRel(d.num_states())).first->second;
    }
    visiting_.insert(key);
    Rel rel = IdentityRel(d.num_states());
    const RhsHedge* rhs = t_.rule(p, b);
    if (rhs != nullptr) {
      // Body: s_0 <p_1,b_1>^{a_1}...<p_1,b_m>^{a_m} s_1 ... — the grammar of
      // Section 5, driven by top(rhs(p, b)) and the RE+ factors of d_in(b).
      const RePlus* factors = din_.RuleRePlus(b);
      XTC_CHECK(factors != nullptr);
      for (const RhsNode& n : *rhs) {
        if (!status_.ok()) break;
        if (n.kind == RhsNode::Kind::kLabel) {
          rel = StepSymbol(rel, d, n.label);
        } else {
          for (const RePlus::Factor& f : factors->factors()) {
            const Rel& child = NontermRel(n.state, f.symbol, sigma);
            if (!status_.ok()) break;
            rel = Compose(rel, f.plus ? TransitiveClosure(child) : child);
          }
        }
      }
    }
    visiting_.erase(key);
    return memo_.emplace(key, std::move(rel)).first->second;
  }

  // The start-rule relation for rhs node u of rule (q, a): the pattern
  // z_0 q_1 z_1 ... q_k z_k evaluated against d_out(sigma).
  Rel StartRel(int a, const RhsHedge& children, int sigma) {
    const Dfa& d = dout_.RuleDfaComplete(sigma);
    Rel rel = IdentityRel(d.num_states());
    const RePlus* factors = din_.RuleRePlus(a);
    XTC_CHECK(factors != nullptr);
    for (const RhsNode& n : children) {
      if (status_.ok()) {
        status_ = BudgetCheck(budget_, "TypecheckRePlus/StartRel");
      }
      if (!status_.ok()) break;
      if (n.kind == RhsNode::Kind::kLabel) {
        rel = StepSymbol(rel, d, n.label);
      } else {
        for (const RePlus::Factor& f : factors->factors()) {
          const Rel& child = NontermRel(n.state, f.symbol, sigma);
          if (!status_.ok()) break;
          rel = Compose(rel, f.plus ? TransitiveClosure(child) : child);
        }
      }
    }
    return rel;
  }

  std::uint64_t num_nonterminals() const { return memo_.size(); }

  // Latched failure of this engine run; non-OK verdicts are meaningless.
  const Status& status() const { return status_; }

 private:
  const Transducer& t_;
  const Dtd& din_;
  const Dtd& dout_;
  Budget* budget_;
  Status status_;
  std::map<std::tuple<int, int, int>, Rel> memo_;
  std::set<std::tuple<int, int, int>> visiting_;
};

}  // namespace

StatusOr<TypecheckResult> TypecheckRePlus(const Transducer& t, const Dtd& din,
                                          const Dtd& dout,
                                          const TypecheckOptions& options) {
  if (t.HasSelectors()) {
    return FailedPreconditionError("compile selectors before typechecking");
  }
  if (!din.IsRePlusDtd() || !dout.IsRePlusDtd()) {
    return FailedPreconditionError(
        "the Section 5 algorithm requires DTD(RE+) schemas");
  }
  XTC_CHECK(t.alphabet() == din.alphabet() && t.alphabet() == dout.alphabet());

  WallTimer timer;
  TypecheckResult result;
  result.arena = std::make_shared<Arena>();
  TreeBuilder builder(result.arena.get());
  // The scope pins the arena: result.arena is swapped for the minvast
  // engine's arena on the counterexample path below.
  ArenaBudgetScope arena_scope(result.arena, options.budget);
  auto finalize = [&] {
    if (options.budget != nullptr) {
      result.stats.budget_checkpoints = options.budget->checkpoints();
      result.stats.budget_bytes = options.budget->bytes_charged();
      result.stats.elapsed_ms = options.budget->elapsed_ms();
      result.stats.exhaustion = options.budget->cause();
    } else {
      result.stats.elapsed_ms = timer.elapsed_ms();
    }
  };

  if (din.LanguageEmpty()) {
    result.typechecks = true;
    finalize();
    return result;
  }
  const RhsHedge* root_rhs = t.rule(t.initial(), din.start());
  bool violated = false;
  if (root_rhs == nullptr || root_rhs->size() != 1 ||
      (*root_rhs)[0].kind != RhsNode::Kind::kLabel ||
      (*root_rhs)[0].label != dout.start()) {
    violated = true;
  }

  if (!violated) {
    GrammarEngine engine(t, din, dout, options.budget);
    ReachablePairs reach(t, din);
    for (const auto& [q, a] : reach.pairs()) {
      const RhsHedge* rhs = t.rule(q, a);
      if (rhs == nullptr) continue;
      std::vector<const RhsNode*> stack;
      for (const RhsNode& n : *rhs) stack.push_back(&n);
      while (!stack.empty() && !violated) {
        const RhsNode* u = stack.back();
        stack.pop_back();
        if (u->kind != RhsNode::Kind::kLabel) continue;
        for (const RhsNode& c : u->children) stack.push_back(&c);
        Rel rel = engine.StartRel(a, u->children, u->label);
        XTC_RETURN_IF_ERROR(engine.status());
        const Dfa& d = dout.RuleDfaComplete(u->label);
        ++result.stats.evaluations;
        for (int y = 0; y < d.num_states() && !violated; ++y) {
          if (!d.final(y) &&
              rel[static_cast<std::size_t>(d.initial())]
                 [static_cast<std::size_t>(y)]) {
            violated = true;
          }
        }
      }
      if (violated) break;
    }
    result.stats.configs = engine.num_nonterminals();
  }

  result.typechecks = !violated;
  if (violated && options.want_counterexample) {
    // Corollary 38: t_min or t_vast is a counterexample; the Section 6
    // algorithm finds and materializes it. Its verdict must agree.
    StatusOr<TypecheckResult> mv = TypecheckMinVast(t, din, dout, options);
    if (!mv.ok()) return mv.status();
    XTC_CHECK_MSG(!mv->typechecks,
                  "grammar and t_min/t_vast engines disagree (bug)");
    result.arena = mv->arena;
    result.counterexample = mv->counterexample;
  }
  finalize();
  return result;
}

}  // namespace xtc
