#ifndef XTC_CORE_REPLUS_H_
#define XTC_CORE_REPLUS_H_

#include "src/base/status.h"
#include "src/core/typecheck.h"

namespace xtc {

/// Decides TC[T_d,c, DTD(RE+)] — Section 5 / Theorem 37 — for ARBITRARY
/// deterministic top–down transducers (unbounded copying and deletion) in
/// PTIME. For every reachable pair (q, a) and rhs node u labelled σ it
/// builds the non-recursive extended grammar G_{q,a,u} (whose language is
/// RE+-equivalent to the real output language L_{q,a,u}, Theorem 30) and
/// checks L(G_{q,a,u}) ⊆ L(dout(σ)) by a state-pair-relation fixpoint over
/// the output DFA (the PTIME CFG ∩ DFA emptiness construction).
/// Counterexamples come from the t_min / t_vast witnesses (Corollary 38).
StatusOr<TypecheckResult> TypecheckRePlus(const Transducer& t, const Dtd& din,
                                          const Dtd& dout,
                                          const TypecheckOptions& options = {});

}  // namespace xtc

#endif  // XTC_CORE_REPLUS_H_
