#ifndef XTC_CORE_TRAC_H_
#define XTC_CORE_TRAC_H_

#include "src/base/status.h"
#include "src/core/typecheck.h"

namespace xtc {

/// Decides TC[T_trac, DTD(DFA)] — Lemma 14 / Theorem 15 — in time
/// O((|din| · |T|^{CK} · |dout|^{CK})^α) for transducers of copying width C
/// and deletion path width K. Implementation: instead of materializing the
/// paper's counterexample automaton B, its emptiness is decided lazily by a
/// least fixpoint over configurations
///
///     Sat(b, A_σ, [(p_1, ℓ_1, r_1), ..., (p_m, ℓ_m, r_m)])  :=
///       ∃ t ∈ L(d_in, b) such that for every i,
///       top(T^{p_i}(t)) drives the output DFA A_σ from ℓ_i to r_i,
///
/// which are exactly the "(a, (q_1, ℓ^b_1, r^b_1), ...)" states of B that
/// are reachable top-down; the violation checks at each rhs node u mirror
/// B's (a, q, check) states with complemented acceptance. Counterexamples
/// are reconstructed from fixpoint witnesses (Corollary 38).
///
/// Preconditions: selector-free transducer, DTD(DFA) schemas over one
/// shared alphabet. The engine is correct for any deterministic top–down
/// transducer; outside T_trac (unbounded deletion path width) the
/// configuration space is unbounded and the run ends with
/// kResourceExhausted at the configured limits.
StatusOr<TypecheckResult> TypecheckTrac(const Transducer& t, const Dtd& din,
                                        const Dtd& dout,
                                        const TypecheckOptions& options = {});

}  // namespace xtc

#endif  // XTC_CORE_TRAC_H_
