#include "src/core/almost_always.h"

#include "src/core/explicit_nta.h"
#include "src/nta/analysis.h"

namespace xtc {

StatusOr<bool> TypechecksAlmostAlways(const Transducer& t, const Dtd& din,
                                      const Dtd& dout, int max_states,
                                      Budget* budget) {
  StatusOr<Nta> b = BuildCounterexampleNta(t, din, dout, max_states, budget);
  if (!b.ok()) return b.status();
  return IsFiniteLanguage(*b, budget);
}

}  // namespace xtc
