#include "src/core/approximate.h"

#include <map>

#include "src/base/logging.h"
#include "src/base/state_set.h"
#include "src/core/reachable.h"
#include "src/fa/eps_nfa.h"

namespace xtc {
namespace {

// Builds one shared epsilon-NFA containing, per reachable pair (p, b), a
// sub-automaton whose entry→exit language over-approximates
// { top(T^p(t)) | t ∈ L(d_in, b) }: literal template symbols become edges,
// and a state occurrence becomes a loop node that may absorb the languages
// of all (state, usable child symbol) sub-automata, any number of times in
// any order.
class Approximator {
 public:
  Approximator(const Transducer& t, const Dtd& din, const Dtd& dout)
      : t_(t), din_(din), dout_(dout), reach_(t, din),
        enfa_(din.num_symbols()) {}

  StatusOr<ApproximateResult> Run(int max_dfa_states, Budget* budget);

 private:
  // The entry/exit of the (p, b) sub-automaton, built on demand (cycles in
  // the deletion graph are fine: states first, edges after).
  std::pair<int, int> PairPorts(int p, int b) {
    auto it = ports_.find({p, b});
    if (it != ports_.end()) return it->second;
    int entry = enfa_.AddState();
    int exit = enfa_.AddState();
    ports_.emplace(std::make_pair(p, b), std::make_pair(entry, exit));
    pending_.emplace_back(p, b);
    return {entry, exit};
  }

  // Appends one star-substitution node for state `s` processing children of
  // a `parent`-labelled node; returns the chain's new tail.
  int StateLoopNode(int s, int parent, int chain_from) {
    int node = enfa_.AddState();
    enfa_.AddEdge(chain_from, -1, node);
    const StateSet children = din_.UsableChildren(parent);
    children.ForEach([&](int c) {
      auto [entry, exit] = PairPorts(s, c);
      enfa_.AddEdge(node, -1, entry);
      enfa_.AddEdge(exit, -1, node);
    });
    return node;
  }

  // Lays out a sibling sequence (template children or a rule's top level)
  // as a chain from `from`; returns the tail state.
  int LayoutSiblings(const RhsHedge& hedge, int parent_symbol, int from) {
    int cur = from;
    for (const RhsNode& n : hedge) {
      if (n.kind == RhsNode::Kind::kLabel) {
        int next = enfa_.AddState();
        enfa_.AddEdge(cur, n.label, next);
        cur = next;
      } else {
        XTC_CHECK(n.kind == RhsNode::Kind::kState);
        cur = StateLoopNode(n.state, parent_symbol, cur);
      }
    }
    return cur;
  }

  void EmitPair(int p, int b) {
    auto [entry, exit] = ports_.at({p, b});
    const RhsHedge* rhs = t_.rule(p, b);
    if (rhs == nullptr) {
      enfa_.AddEdge(entry, -1, exit);  // top(T^p(t)) = epsilon
      return;
    }
    int tail = LayoutSiblings(*rhs, b, entry);
    enfa_.AddEdge(tail, -1, exit);
  }

  const Transducer& t_;
  const Dtd& din_;
  const Dtd& dout_;
  ReachablePairs reach_;
  EpsNfa enfa_;
  std::map<std::pair<int, int>, std::pair<int, int>> ports_;
  std::vector<std::pair<int, int>> pending_;
};

StatusOr<ApproximateResult> Approximator::Run(int max_dfa_states,
                                              Budget* budget) {
  ApproximateResult result;
  result.verdict = ApproximateVerdict::kTypechecks;
  if (din_.LanguageEmpty()) return result;

  const RhsHedge* root_rhs = t_.rule(t_.initial(), din_.start());
  if (root_rhs == nullptr || root_rhs->size() != 1 ||
      (*root_rhs)[0].kind != RhsNode::Kind::kLabel ||
      (*root_rhs)[0].label != dout_.start()) {
    // Not even the root shape matches: genuinely fails (no approximation
    // involved), reported as kUnknown for a uniform interface.
    result.verdict = ApproximateVerdict::kUnknown;
    return result;
  }

  // Collect one check per label node of every reachable template: the
  // node's approximated children language, laid out as a fresh chain.
  struct Check {
    int sigma;
    int start;
    int end;
  };
  std::vector<Check> checks;
  for (const auto& [q, a] : reach_.pairs()) {
    const RhsHedge* rhs = t_.rule(q, a);
    if (rhs == nullptr) continue;
    std::vector<const RhsNode*> stack;
    for (const RhsNode& n : *rhs) stack.push_back(&n);
    while (!stack.empty()) {
      const RhsNode* u = stack.back();
      stack.pop_back();
      if (u->kind != RhsNode::Kind::kLabel) continue;
      for (const RhsNode& c : u->children) stack.push_back(&c);
      Check check;
      check.sigma = u->label;
      check.start = enfa_.AddState();
      check.end = LayoutSiblings(u->children, a, check.start);
      checks.push_back(check);
    }
  }
  // Emit all referenced pair sub-automata (discovering more as we go).
  while (!pending_.empty()) {
    XTC_RETURN_IF_ERROR(BudgetCheck(budget, "TypecheckApproximate"));
    auto [p, b] = pending_.back();
    pending_.pop_back();
    EmitPair(p, b);
    ++result.stats.configs;
  }

  for (const Check& check : checks) {
    XTC_RETURN_IF_ERROR(BudgetCheck(budget, "TypecheckApproximate"));
    ++result.stats.evaluations;
    // The shared automaton re-ported to this check's start/end (epsilon
    // closure decides acceptance, so trailing epsilon paths count).
    Nfa local = enfa_.BuildPort(check.start, check.end);
    XTC_ASSIGN_OR_RETURN(Dfa det, Dfa::FromNfa(local, budget));
    if (det.num_states() > max_dfa_states) {
      return ResourceExhaustedError(
          "approximate typechecker exceeded the DFA budget");
    }
    result.stats.product_states += static_cast<std::uint64_t>(det.num_states());
    XTC_ASSIGN_OR_RETURN(
        Dfa diff, Dfa::Product(det, dout_.RuleDfa(check.sigma),
                               Dfa::BoolOp::kDiff, budget));
    if (!diff.IsEmpty()) {
      result.verdict = ApproximateVerdict::kUnknown;
      return result;
    }
  }
  return result;
}

}  // namespace

StatusOr<ApproximateResult> TypecheckApproximate(const Transducer& t,
                                                 const Dtd& din,
                                                 const Dtd& dout,
                                                 int max_dfa_states,
                                                 Budget* budget) {
  if (t.HasSelectors()) {
    return FailedPreconditionError("compile selectors before typechecking");
  }
  XTC_CHECK(t.alphabet() == din.alphabet() && t.alphabet() == dout.alphabet());
  Approximator approx(t, din, dout);
  return approx.Run(max_dfa_states, budget);
}

}  // namespace xtc
