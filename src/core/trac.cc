#include "src/core/trac.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <vector>

#include "src/base/interner.h"
#include "src/base/logging.h"
#include "src/base/state_set.h"
#include "src/core/reachable.h"
#include "src/fa/dfa_reach.h"
#include "src/schema/witness.h"
#include "src/td/exec.h"

namespace xtc {
namespace {

// One obligation: top(T^{p}(t)) must drive A_sigma from `l` to `r`.
struct Obl {
  int p;
  int l;
  int r;

  auto operator<=>(const Obl&) const = default;
};

// A template's top level split into constant label segments and states:
// seps[0] s[0] seps[1] s[1] ... s[k-1] seps[k].
struct TopPattern {
  std::vector<int> states;
  std::vector<std::vector<int>> seps;
};

TopPattern SplitTop(const RhsHedge& rhs) {
  TopPattern out;
  out.seps.emplace_back();
  for (const RhsNode& n : rhs) {
    if (n.kind == RhsNode::Kind::kLabel) {
      out.seps.back().push_back(n.label);
    } else {
      out.states.push_back(n.state);
      out.seps.emplace_back();
    }
  }
  return out;
}

// One simulated copy of A_sigma during the hedge product: `state` is the
// transducer state whose output this copy tracks; `start` is the DFA state
// it begins in, or -1 when it must be guessed (within-obligation chaining).
struct Copy {
  int state;
  int start;
};

// How one obligation's copies are verified at the end of the hedge.
struct Group {
  int first_copy;                      // index of its first copy
  int count;                           // number of copies (k_i >= 1)
  std::vector<std::vector<int>> seps;  // w_0..w_k
  int target;                          // r_i, or -1 for a complement check
};

class Engine {
 public:
  Engine(const Transducer& t, const Dtd& din, const Dtd& dout,
         const TypecheckOptions& options)
      : t_(t),
        din_(din),
        dout_(dout),
        options_(options),
        reach_(t, din) {}

  StatusOr<TypecheckResult> Run();

 private:
  struct Entry {
    // Sat configuration (is_top == false): exists t in L(din, b) meeting all
    // obligations against A_sigma. Top check (is_top == true): the rhs node
    // `u` of rule (q, a) labelled sigma can produce a child string rejected
    // by A_sigma.
    bool is_top = false;
    int b = -1;      // input symbol (Sat) / input symbol a (top)
    int sigma = -1;  // output DFA index
    std::vector<Obl> obls;    // Sat only
    TopPattern pattern;       // top only
    int q = -1;               // top only: the rule's state

    bool status = false;
    // Entries whose evaluation consulted this one while it was false; they
    // are re-queued when it flips. Insertion sites dedup consecutive adds
    // (the common repeat pattern); Solve's queued_ guard absorbs the rest.
    std::vector<int> dependents;
    // Witness: per child position, (input symbol, child config id or -1).
    std::vector<std::pair<int, int>> witness;
    bool has_witness = false;
  };

  const Dfa& OutDfa(int sigma) const { return dout_.RuleDfaComplete(sigma); }
  // Partial DFA: dead steps prune the child-symbol enumeration.
  const Dfa& InDfa(int b) const { return din_.RuleDfa(b); }

  // Demand-driven reachability over OutDfa(sigma): obligation targets r
  // with no path from l are unsatisfiable (the obligation constrains the
  // run delta*(l, top(T^p(t))), which only follows real edges), so the
  // singleton enumeration skips them. RuleDfaComplete's cached DFA is
  // address-stable after first use, so the borrowed pointer stays valid.
  const StateSet& OutReachable(int sigma, int from) {
    if (out_reach_.size() < static_cast<std::size_t>(sigma + 1)) {
      out_reach_.resize(static_cast<std::size_t>(sigma + 1));
    }
    std::unique_ptr<DfaReachability>& reach =
        out_reach_[static_cast<std::size_t>(sigma)];
    if (reach == nullptr) {
      reach = std::make_unique<DfaReachability>(&OutDfa(sigma));
    }
    return reach->From(from);
  }

  // Interns a Sat configuration; returns -1 when it is statically false
  // (contradictory obligations: one state, one start, two targets).
  // Sorts and dedups *obls in place; the caller's buffer is scratch.
  int GetSatConfig(int b, int sigma, std::vector<Obl>* obls);

  // Runs the worklist to the least fixpoint.
  Status Solve();

  // Evaluates entry `id` under current knowledge; true = satisfiable.
  StatusOr<bool> Eval(int id);

  // Expands a Sat entry's obligations to copies/groups. Returns false if an
  // obligation is statically violated (no copies case mismatch).
  bool ExpandSat(const Entry& e, std::vector<Copy>* copies,
                 std::vector<Group>* groups) const;

  // Shared hedge product search for entry `id` (with input symbol `b` and
  // output DFA `sigma`). Returns true and stores the witness into the entry
  // if an accepting configuration is found. Entries are addressed by id
  // because interning child configurations may reallocate entries_.
  StatusOr<bool> HedgeSearch(int id, int b, int sigma,
                             const std::vector<Copy>& copies,
                             std::vector<Group> groups);

  Node* BuildConfigWitness(int id, TreeBuilder* builder,
                           std::size_t* budget) const;

  const Transducer& t_;
  const Dtd& din_;
  const Dtd& dout_;
  TypecheckOptions options_;
  ReachablePairs reach_;
  TypecheckStats stats_;

  // Records `dep` as a dependent of entry `id`, skipping consecutive
  // duplicates (the odometer re-consults the same child many times in a
  // row).
  void AddDependent(int id, int dep) {
    std::vector<int>& deps = entries_[static_cast<std::size_t>(id)].dependents;
    if (deps.empty() || deps.back() != dep) deps.push_back(dep);
  }

  std::vector<Entry> entries_;
  // Sat configurations interned by hashed key [b, sigma, (p,l,r)*];
  // sat_entry_ids_ maps the dense interner id to the entry id (top-check
  // entries share entries_, so the two id spaces differ by an offset map).
  SubsetInterner sat_ids_;
  std::vector<int> sat_entry_ids_;
  std::vector<int> sat_key_buf_;
  std::deque<int> worklist_;
  std::vector<bool> queued_;

  // Scratch reused across HedgeSearch calls (it runs once per saturation
  // entry evaluation; its inner loops must stay allocation-free). Safe
  // because HedgeSearch never reenters itself.
  SubsetInterner cfg_ids_;
  std::vector<int> cfg_key_;
  std::vector<std::vector<int>> cand_;
  std::vector<int> z_buf_;
  std::vector<Obl> single_obl_buf_;
  std::vector<Obl> child_obl_buf_;
  std::vector<std::unique_ptr<DfaReachability>> out_reach_;  // per sigma
};

int Engine::GetSatConfig(int b, int sigma, std::vector<Obl>* obls) {
  if (obls->size() > 1) {
    std::sort(obls->begin(), obls->end());
    obls->erase(std::unique(obls->begin(), obls->end()), obls->end());
  }
  // Contradiction: same transducer state and start, different targets — the
  // output string is a function of t, so no tree can satisfy both.
  for (std::size_t i = 1; i < obls->size(); ++i) {
    if ((*obls)[i].p == (*obls)[i - 1].p && (*obls)[i].l == (*obls)[i - 1].l &&
        (*obls)[i].r != (*obls)[i - 1].r) {
      return -1;
    }
  }
  sat_key_buf_.clear();
  sat_key_buf_.reserve(2 + 3 * obls->size());
  sat_key_buf_.push_back(b);
  sat_key_buf_.push_back(sigma);
  for (const Obl& obl : *obls) {
    sat_key_buf_.push_back(obl.p);
    sat_key_buf_.push_back(obl.l);
    sat_key_buf_.push_back(obl.r);
  }
  int iid = sat_ids_.Intern(sat_key_buf_);
  if (iid < static_cast<int>(sat_entry_ids_.size())) {
    return sat_entry_ids_[static_cast<std::size_t>(iid)];
  }
  int id = static_cast<int>(entries_.size());
  sat_entry_ids_.push_back(id);
  Entry e;
  e.b = b;
  e.sigma = sigma;
  e.obls = *obls;
  entries_.push_back(std::move(e));
  queued_.push_back(true);
  worklist_.push_back(id);
  ++stats_.configs;
  return id;
}

bool Engine::ExpandSat(const Entry& e, std::vector<Copy>* copies,
                       std::vector<Group>* groups) const {
  const Dfa& a_sigma = OutDfa(e.sigma);
  for (const Obl& obl : e.obls) {
    const RhsHedge* rhs = t_.rule(obl.p, e.b);
    if (rhs == nullptr) {
      // top(T^p(t)) = epsilon: the obligation holds iff l == r.
      if (obl.l != obl.r) return false;
      continue;
    }
    TopPattern pat = SplitTop(*rhs);
    if (pat.states.empty()) {
      // Constant top string: check it directly.
      if (a_sigma.Run(obl.l, pat.seps[0]) != obl.r) return false;
      continue;
    }
    Group g;
    g.first_copy = static_cast<int>(copies->size());
    g.count = static_cast<int>(pat.states.size());
    g.seps = pat.seps;
    g.target = obl.r;
    for (int j = 0; j < g.count; ++j) {
      Copy c;
      c.state = pat.states[static_cast<std::size_t>(j)];
      c.start = j == 0 ? a_sigma.Run(obl.l, pat.seps[0]) : -1;
      copies->push_back(c);
    }
    groups->push_back(std::move(g));
  }
  return true;
}

StatusOr<bool> Engine::HedgeSearch(int id, int b, int sigma,
                                   const std::vector<Copy>& copies,
                                   std::vector<Group> groups) {
  const Dfa& a_sigma = OutDfa(sigma);
  const Dfa& d_in = InDfa(b);
  const int k = static_cast<int>(copies.size());
  const int n_sigma = a_sigma.num_states();
  const StateSet& inhabited = din_.InhabitedSymbols();

  // Guessed starts: copies with start == -1.
  std::vector<int> guess_pos;
  for (int c = 0; c < k; ++c) {
    if (copies[static_cast<std::size_t>(c)].start == -1) guess_pos.push_back(c);
  }

  // Acceptance test for a product configuration (din state d, copy states y).
  auto accepts = [&](int d, const std::vector<int>& y,
                     const std::vector<int>& guesses) {
    if (!d_in.final(d)) return false;
    for (const Group& g : groups) {
      for (int j = 0; j < g.count; ++j) {
        int end = a_sigma.Run(y[static_cast<std::size_t>(g.first_copy + j)],
                              g.seps[static_cast<std::size_t>(j) + 1]);
        if (j + 1 < g.count) {
          // Must equal the guessed start of the next copy in the chain.
          int next = g.first_copy + j + 1;
          int gi = -1;
          for (std::size_t gp = 0; gp < guess_pos.size(); ++gp) {
            if (guess_pos[gp] == next) gi = static_cast<int>(gp);
          }
          XTC_CHECK_GE(gi, 0);
          if (end != guesses[static_cast<std::size_t>(gi)]) return false;
        } else if (g.target >= 0) {
          if (end != g.target) return false;
        } else {
          // Complement acceptance (top check): the produced string must be
          // REJECTED by A_sigma.
          if (a_sigma.final(end)) return false;
        }
      }
    }
    return true;
  };

  if (d_in.initial() == Dfa::kDead) return false;

  Budget* budget = options_.budget;
  // The odometer is the innermost loop of the whole engine; a full Check()
  // per tick would dominate it, so polling is amortized through a gate.
  BudgetGate gate(budget);

  // Iterate over all guess vectors.
  std::vector<int> guesses(guess_pos.size(), 0);
  while (true) {
    // Product BFS from the initial configuration.
    std::vector<int> y0(static_cast<std::size_t>(k));
    for (int c = 0; c < k; ++c) {
      int start = copies[static_cast<std::size_t>(c)].start;
      if (start == -1) {
        for (std::size_t gp = 0; gp < guess_pos.size(); ++gp) {
          if (guess_pos[gp] == c) start = guesses[gp];
        }
      }
      y0[static_cast<std::size_t>(c)] = start;
    }

    struct Parent {
      int prev;
      int symbol;
      int child_cfg;
    };
    // Product configurations (d, y) are interned by hash; ids are dense and
    // assigned in discovery order, so an id cursor doubles as the BFS queue.
    // The interner and key buffer are member scratch: cleared here, capacity
    // kept across the ~#entries calls of a run.
    SubsetInterner& cfg_ids = cfg_ids_;
    cfg_ids.Clear();
    std::vector<Parent> parents;
    std::vector<int>& cfg_key = cfg_key_;
    cfg_key.reserve(static_cast<std::size_t>(k) + 1);
    auto intern = [&](int d, const std::vector<int>& y, Parent par) {
      cfg_key.clear();
      cfg_key.push_back(d);
      cfg_key.insert(cfg_key.end(), y.begin(), y.end());
      int id = cfg_ids.Intern(cfg_key);
      if (id < static_cast<int>(parents.size())) return -1;  // seen before
      parents.push_back(par);
      ++stats_.product_states;
      return id;
    };
    intern(d_in.initial(), y0, Parent{-1, -1, -1});
    int accept_id = -1;
    std::vector<int> y;
    for (int pid = 0; pid < cfg_ids.size() && accept_id == -1; ++pid) {
      XTC_RETURN_IF_ERROR(BudgetCheck(budget, "TypecheckTrac/HedgeSearch"));
      // Copy out: the interner pool may reallocate as new configurations
      // are minted below.
      const std::span<const int> stored = cfg_ids.Get(pid);
      const int d = stored[0];
      y.assign(stored.begin() + 1, stored.end());
      if (accepts(d, y, guesses)) {
        accept_id = pid;
        break;
      }
      if (stats_.product_states > options_.max_product_states_per_eval) {
        return ResourceExhaustedError(
            "trac engine exceeded the product-state budget (is the "
            "transducer outside T_trac?)");
      }
      for (int c = 0; c < din_.num_symbols(); ++c) {
        if (!inhabited.Test(c)) continue;
        int d2 = d_in.Step(d, c);
        if (d2 == Dfa::kDead) continue;
        // Per-copy candidate end states via singleton configurations: a
        // tree witnessing the joint configuration also witnesses each
        // singleton, so currently-false singletons cannot contribute (and
        // re-evaluation is scheduled for when they flip). This replaces the
        // n_sigma^k enumeration by a product of (typically tiny) sets.
        // cand_ is member scratch: inner vectors keep their capacity.
        if (cand_.size() < static_cast<std::size_t>(k)) {
          cand_.resize(static_cast<std::size_t>(k));
        }
        std::vector<std::vector<int>>& cand = cand_;
        for (int i = 0; i < k; ++i) cand[static_cast<std::size_t>(i)].clear();
        bool dead_copy = false;
        for (int i = 0; i < k && !dead_copy; ++i) {
          // Only targets reachable from y[i] in A_sigma can be satisfied.
          const StateSet& zreach =
              OutReachable(sigma, y[static_cast<std::size_t>(i)]);
          for (int zi = 0; zi < n_sigma; ++zi) {
            if (!zreach.Test(zi)) continue;
            single_obl_buf_.assign(
                1, Obl{copies[static_cast<std::size_t>(i)].state,
                       y[static_cast<std::size_t>(i)], zi});
            int sid = GetSatConfig(c, sigma, &single_obl_buf_);
            if (stats_.configs > options_.max_configs) {
              return ResourceExhaustedError(
                  "trac engine exceeded the configuration budget (is the "
                  "transducer outside T_trac?)");
            }
            if (sid < 0) continue;
            if (entries_[static_cast<std::size_t>(sid)].status) {
              cand[static_cast<std::size_t>(i)].push_back(zi);
            } else {
              AddDependent(sid, id);
            }
          }
          if (cand[static_cast<std::size_t>(i)].empty()) dead_copy = true;
        }
        if (dead_copy) continue;
        // Joint enumeration over the candidate product.
        std::vector<std::size_t> idx(static_cast<std::size_t>(k), 0);
        while (true) {
          XTC_RETURN_IF_ERROR(gate.Poll("TypecheckTrac/odometer"));
          std::vector<int>& z = z_buf_;
          z.assign(static_cast<std::size_t>(k), 0);
          std::vector<Obl>& child = child_obl_buf_;
          child.clear();
          child.reserve(static_cast<std::size_t>(k));
          for (int i = 0; i < k; ++i) {
            z[static_cast<std::size_t>(i)] =
                cand[static_cast<std::size_t>(i)]
                    [idx[static_cast<std::size_t>(i)]];
            child.push_back(Obl{copies[static_cast<std::size_t>(i)].state,
                                y[static_cast<std::size_t>(i)],
                                z[static_cast<std::size_t>(i)]});
          }
          int cfg = GetSatConfig(c, sigma, &child);
          if (stats_.configs > options_.max_configs) {
            return ResourceExhaustedError(
                "trac engine exceeded the configuration budget (is the "
                "transducer outside T_trac?)");
          }
          if (cfg >= 0) {
            if (entries_[static_cast<std::size_t>(cfg)].status) {
              intern(d2, z, Parent{pid, c, cfg});
            } else {
              // Re-evaluate this entry when the child flips.
              AddDependent(cfg, id);
            }
          }
          // Odometer over the candidate indices.
          int pos = 0;
          while (pos < k) {
            if (++idx[static_cast<std::size_t>(pos)] <
                cand[static_cast<std::size_t>(pos)].size()) {
              break;
            }
            idx[static_cast<std::size_t>(pos)] = 0;
            ++pos;
          }
          if (pos == k) break;
        }
      }
    }
    if (accept_id != -1) {
      // Reconstruct the accepted child sequence.
      Entry& e = entries_[static_cast<std::size_t>(id)];
      e.witness.clear();
      for (int cur = accept_id;
           parents[static_cast<std::size_t>(cur)].prev != -1;
           cur = parents[static_cast<std::size_t>(cur)].prev) {
        e.witness.emplace_back(parents[static_cast<std::size_t>(cur)].symbol,
                               parents[static_cast<std::size_t>(cur)].child_cfg);
      }
      std::reverse(e.witness.begin(), e.witness.end());
      e.has_witness = true;
      return true;
    }
    // Next guess vector.
    std::size_t pos = 0;
    while (pos < guesses.size()) {
      if (++guesses[pos] < n_sigma) break;
      guesses[pos] = 0;
      ++pos;
    }
    if (pos == guesses.size()) return false;
  }
}

StatusOr<bool> Engine::Eval(int id) {
  ++stats_.evaluations;
  // Copy the immutable fields: entries_ may reallocate below.
  const bool is_top = entries_[static_cast<std::size_t>(id)].is_top;
  const int b = entries_[static_cast<std::size_t>(id)].b;
  const int sigma = entries_[static_cast<std::size_t>(id)].sigma;
  std::vector<Copy> copies;
  std::vector<Group> groups;
  if (is_top) {
    const TopPattern pattern = entries_[static_cast<std::size_t>(id)].pattern;
    const Dfa& a_sigma = OutDfa(sigma);
    if (pattern.states.empty()) {
      return !a_sigma.Accepts(pattern.seps[0]);
    }
    Group g;
    g.first_copy = 0;
    g.count = static_cast<int>(pattern.states.size());
    g.seps = pattern.seps;
    g.target = -1;  // complement acceptance
    for (int j = 0; j < g.count; ++j) {
      Copy c;
      c.state = pattern.states[static_cast<std::size_t>(j)];
      c.start = j == 0 ? a_sigma.Run(a_sigma.initial(), pattern.seps[0]) : -1;
      copies.push_back(c);
    }
    groups.push_back(std::move(g));
    return HedgeSearch(id, b, sigma, copies, std::move(groups));
  }
  if (!ExpandSat(entries_[static_cast<std::size_t>(id)], &copies, &groups)) {
    return false;
  }
  if (copies.empty()) {
    return din_.InhabitedSymbols().Test(b);
  }
  return HedgeSearch(id, b, sigma, copies, std::move(groups));
}

Status Engine::Solve() {
  while (!worklist_.empty()) {
    XTC_RETURN_IF_ERROR(BudgetCheck(options_.budget, "TypecheckTrac/Solve"));
    int id = worklist_.front();
    worklist_.pop_front();
    queued_[static_cast<std::size_t>(id)] = false;
    if (entries_[static_cast<std::size_t>(id)].status) continue;
    StatusOr<bool> v = Eval(id);
    if (!v.ok()) return v.status();
    if (*v) {
      Entry& e = entries_[static_cast<std::size_t>(id)];
      e.status = true;
      for (int dep : e.dependents) {
        if (!queued_[static_cast<std::size_t>(dep)] &&
            !entries_[static_cast<std::size_t>(dep)].status) {
          queued_[static_cast<std::size_t>(dep)] = true;
          worklist_.push_back(dep);
        }
      }
    }
  }
  return Status::Ok();
}

Node* Engine::BuildConfigWitness(int id, TreeBuilder* builder,
                                 std::size_t* node_budget) const {
  if (*node_budget == 0) return nullptr;
  --*node_budget;
  const Entry& e = entries_[static_cast<std::size_t>(id)];
  XTC_CHECK(e.status);
  if (!e.has_witness) {
    // Witness construction is best-effort under a governor: exhaustion here
    // degrades to "no counterexample", not to a failed run.
    StatusOr<Node*> leaf =
        MinimalValidTree(din_, e.b, builder, options_.budget);
    return leaf.ok() ? *leaf : nullptr;
  }
  std::vector<Node*> kids;
  for (const auto& [symbol, child_cfg] : e.witness) {
    Node* child = BuildConfigWitness(child_cfg, builder, node_budget);
    if (child == nullptr) return nullptr;
    kids.push_back(child);
  }
  return builder->Make(e.b, kids);
}

StatusOr<TypecheckResult> Engine::Run() {
  XTC_CHECK_MSG(!t_.HasSelectors(),
                "compile selectors before typechecking (Theorems 23/29)");
  XTC_CHECK(t_.alphabet() == din_.alphabet() &&
            t_.alphabet() == dout_.alphabet());
  WallTimer timer;
  TypecheckResult result;
  result.arena = std::make_shared<Arena>();
  TreeBuilder builder(result.arena.get());
  // Charge witness-tree allocations against the caller's budget for the
  // duration of the run only — the arena escapes inside the result.
  ArenaBudgetScope arena_scope(result.arena, options_.budget);
  auto finalize = [&] {
    result.stats = stats_;
    if (options_.budget != nullptr) {
      result.stats.budget_checkpoints = options_.budget->checkpoints();
      result.stats.budget_bytes = options_.budget->bytes_charged();
      result.stats.elapsed_ms = options_.budget->elapsed_ms();
      result.stats.exhaustion = options_.budget->cause();
    } else {
      result.stats.elapsed_ms = timer.elapsed_ms();
    }
  };

  // Vacuous: empty input language.
  if (din_.LanguageEmpty()) {
    result.typechecks = true;
    finalize();
    return result;
  }

  // Root checks: T(t) is the single tree produced by rhs(q0, s_in); its
  // root label must be the output start symbol, and it must exist at all.
  const RhsHedge* root_rhs = t_.rule(t_.initial(), din_.start());
  if (root_rhs == nullptr || root_rhs->size() != 1 ||
      (*root_rhs)[0].kind != RhsNode::Kind::kLabel ||
      (*root_rhs)[0].label != dout_.start()) {
    result.typechecks = false;
    if (options_.want_counterexample) {
      StatusOr<Node*> tree =
          MinimalValidTree(din_, din_.start(), &builder, options_.budget);
      if (tree.ok()) result.counterexample = *tree;
    }
    finalize();
    return result;
  }

  // One top check per Sigma-labelled node of every reachable rule template.
  struct TopRef {
    int entry;
    int q;
    int a;
  };
  std::vector<TopRef> tops;
  for (const auto& [q, a] : reach_.pairs()) {
    const RhsHedge* rhs = t_.rule(q, a);
    if (rhs == nullptr) continue;
    // Walk all label nodes of the template.
    struct Item {
      const RhsNode* node;
    };
    std::vector<const RhsNode*> stack;
    for (const RhsNode& n : *rhs) stack.push_back(&n);
    while (!stack.empty()) {
      const RhsNode* u = stack.back();
      stack.pop_back();
      if (u->kind != RhsNode::Kind::kLabel) continue;
      for (const RhsNode& c : u->children) stack.push_back(&c);
      Entry e;
      e.is_top = true;
      e.b = a;
      e.q = q;
      e.sigma = u->label;
      e.pattern = SplitTop(u->children);
      int id = static_cast<int>(entries_.size());
      entries_.push_back(std::move(e));
      queued_.push_back(true);
      worklist_.push_back(id);
      ++stats_.configs;
      tops.push_back(TopRef{id, q, a});
    }
  }

  Status solve = Solve();
  if (!solve.ok()) return solve;

  result.typechecks = true;
  for (const TopRef& top : tops) {
    const Entry& e = entries_[static_cast<std::size_t>(top.entry)];
    if (!e.status) continue;
    result.typechecks = false;
    if (!options_.want_counterexample) break;
    // Build the violating subtree rooted at the input node (q, a).
    std::vector<Node*> kids;
    bool ok = true;
    if (e.has_witness) {
      std::size_t budget = std::size_t{1} << 20;
      for (const auto& [symbol, child_cfg] : e.witness) {
        Node* child = BuildConfigWitness(child_cfg, &builder, &budget);
        if (child == nullptr) {
          ok = false;
          break;
        }
        kids.push_back(child);
      }
    } else {
      std::optional<std::vector<int>> word = din_.ShortestUsableWord(top.a);
      XTC_CHECK(word.has_value());
      for (int b : *word) {
        StatusOr<Node*> kid =
            MinimalValidTree(din_, b, &builder, options_.budget);
        if (!kid.ok()) {
          ok = false;
          break;
        }
        kids.push_back(*kid);
      }
    }
    if (!ok) break;
    Node* subtree = builder.Make(top.a, kids);
    result.counterexample =
        reach_.EmbedWitness(top.q, top.a, subtree, &builder);
    break;
  }
  finalize();
  return result;
}

}  // namespace

StatusOr<TypecheckResult> TypecheckTrac(const Transducer& t, const Dtd& din,
                                        const Dtd& dout,
                                        const TypecheckOptions& options) {
  Engine engine(t, din, dout, options);
  return engine.Run();
}

}  // namespace xtc
