#ifndef XTC_CORE_NFA_DTD_H_
#define XTC_CORE_NFA_DTD_H_

#include "src/base/state_set.h"
#include "src/base/status.h"
#include "src/core/typecheck.h"

namespace xtc {

/// Converts every rule of a DTD(NFA) to a DFA by subset construction.
/// `max_dfa_states` caps each rule's DFA — the exponential blowup here is
/// exactly the PSPACE price of DTD(NFA) schemas (Table 1, nd/bc column).
/// A non-null `budget` additionally checkpoints the subset construction.
///
/// When `needed` is non-null, only rules of symbols in the mask are
/// determinized; the rest keep their NFA form (same language). Callers must
/// prove the engine never steps an un-determinized rule's DFA — if one is
/// consulted anyway, Dtd::RuleDfa falls back to its own (ungoverned,
/// uncapped) cached subset construction, so the result stays sound. Shared
/// artifacts (the service compile cache) pass null: Dtd::Compile forces
/// every rule's DFA cache anyway — concurrent readers need them frozen —
/// so masking would only defer, not skip, the work there.
StatusOr<Dtd> DeterminizeDtd(const Dtd& dtd, int max_dfa_states,
                             Budget* budget = nullptr,
                             const StateSet* needed = nullptr);

/// The input symbols whose rule DFAs the Lemma 14 engine can consult when
/// checking against `din`: the closure of the start symbol under rule-NFA
/// edge labels (every evaluated input node is reachable from the root).
StateSet ConsultedInputSymbols(const Dtd& din);

/// The output symbols whose rule DFAs the engine can consult: labels
/// occurring in the transducer's templates plus the output start symbol.
StateSet ConsultedOutputSymbols(const Transducer& t, const Dtd& dout);

/// Complete typechecker for DTD(NFA) schemas: determinize both schemas,
/// then run the Lemma 14 engine. Worst-case exponential in the schema
/// sizes, matching the PSPACE-hardness of TC[T_nd,bc, DTD(NFA)].
StatusOr<TypecheckResult> TypecheckViaDeterminization(
    const Transducer& t, const Dtd& din, const Dtd& dout,
    const TypecheckOptions& options = {}, int max_dfa_states = 1 << 16);

}  // namespace xtc

#endif  // XTC_CORE_NFA_DTD_H_
