#ifndef XTC_CORE_NFA_DTD_H_
#define XTC_CORE_NFA_DTD_H_

#include "src/base/status.h"
#include "src/core/typecheck.h"

namespace xtc {

/// Converts every rule of a DTD(NFA) to a DFA by subset construction.
/// `max_dfa_states` caps each rule's DFA — the exponential blowup here is
/// exactly the PSPACE price of DTD(NFA) schemas (Table 1, nd/bc column).
/// A non-null `budget` additionally checkpoints the subset construction.
StatusOr<Dtd> DeterminizeDtd(const Dtd& dtd, int max_dfa_states,
                             Budget* budget = nullptr);

/// Complete typechecker for DTD(NFA) schemas: determinize both schemas,
/// then run the Lemma 14 engine. Worst-case exponential in the schema
/// sizes, matching the PSPACE-hardness of TC[T_nd,bc, DTD(NFA)].
StatusOr<TypecheckResult> TypecheckViaDeterminization(
    const Transducer& t, const Dtd& din, const Dtd& dout,
    const TypecheckOptions& options = {}, int max_dfa_states = 1 << 16);

}  // namespace xtc

#endif  // XTC_CORE_NFA_DTD_H_
