#ifndef XTC_CORE_BRUTE_FORCE_H_
#define XTC_CORE_BRUTE_FORCE_H_

#include <cstdint>
#include <vector>

#include "src/core/typecheck.h"

namespace xtc {

/// Bounds for exhaustive enumeration. `budget`, when non-null, governs the
/// enumeration in addition to the structural bounds (borrowed, not owned).
struct BruteForceOptions {
  int max_depth = 4;    ///< max tree depth
  int max_width = 3;    ///< max children per node
  std::uint64_t max_trees = 200000;  ///< total enumeration budget
  Budget* budget = nullptr;
};

/// Enumerates every tree of L(d, symbol) within the bounds (up to the
/// budget), in increasing depth. Used as the testing oracle and as the
/// naive baseline in benches. Fails with kResourceExhausted only under a
/// tripped options.budget; the structural bounds themselves truncate
/// silently as before.
StatusOr<std::vector<Node*>> EnumerateValidTrees(
    const Dtd& dtd, int symbol, const BruteForceOptions& options,
    TreeBuilder* builder);

/// Baseline typechecker: transforms every enumerated input tree and
/// validates the output. Complete only up to the enumeration bounds — a
/// result with typechecks == true means "no counterexample within bounds".
/// Sound for counterexamples: when typechecks == false the returned tree is
/// a genuine counterexample.
StatusOr<TypecheckResult> TypecheckBruteForce(
    const Transducer& t, const Dtd& din, const Dtd& dout,
    const BruteForceOptions& options = {});

}  // namespace xtc

#endif  // XTC_CORE_BRUTE_FORCE_H_
