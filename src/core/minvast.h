#ifndef XTC_CORE_MINVAST_H_
#define XTC_CORE_MINVAST_H_

#include "src/base/status.h"
#include "src/core/typecheck.h"

namespace xtc {

/// The alternative Section 6 algorithm for TC[T_d,c, DTD(RE+)]: an instance
/// typechecks iff neither t_min nor t_vast (Section 5's witness trees for
/// the input DTD) is a counterexample. Both witnesses are kept hash-consed
/// (t_vast's unfolding doubles below every +, so it is exponential as a
/// tree but polynomial as a DAG) and T(t)'s conformance to d_out is checked
/// symbolically with per-(shared node, state) memoization, keeping the
/// whole check polynomial.
StatusOr<TypecheckResult> TypecheckMinVast(const Transducer& t, const Dtd& din,
                                           const Dtd& dout,
                                           const TypecheckOptions& options = {});

}  // namespace xtc

#endif  // XTC_CORE_MINVAST_H_
