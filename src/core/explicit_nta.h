#ifndef XTC_CORE_EXPLICIT_NTA_H_
#define XTC_CORE_EXPLICIT_NTA_H_

#include "src/base/status.h"
#include "src/core/typecheck.h"
#include "src/nta/nta.h"

namespace xtc {

/// Materializes the counterexample automaton B of Lemma 14 (its top-down
/// reachable part) as an explicit NTA(NFA):
///
///     L(B) = { t ∈ L(d_in) | T(t) ∉ L(d_out) }.
///
/// State kinds mirror the paper's: Σ-states (din-valid subtrees), (a, q)
/// "find" states, (a, q, check) states, and the (a, (q_1, ℓ_1, r_1), ...)
/// obligation tuples; horizontal languages are built as explicit NFAs.
/// This is the faithful construction — exponential in C·K — used to
/// cross-validate the lazy engine, to measure the Lemma 14 size bound, and
/// for almost-always typechecking (Corollary 39) via NTA finiteness.
/// `max_states` bounds the construction; a non-null `budget` checkpoints
/// the worklist and product loops (deadline/step/byte governance).
StatusOr<Nta> BuildCounterexampleNta(const Transducer& t, const Dtd& din,
                                     const Dtd& dout, int max_states,
                                     Budget* budget = nullptr);

}  // namespace xtc

#endif  // XTC_CORE_EXPLICIT_NTA_H_
