#ifndef XTC_CORE_REACHABLE_H_
#define XTC_CORE_REACHABLE_H_

#include <optional>
#include <utility>
#include <vector>

#include "src/base/state_set.h"
#include "src/schema/dtd.h"
#include "src/td/transducer.h"
#include "src/tree/tree.h"

namespace xtc {

/// The (state, symbol) pairs (q, a) such that some tree in L(d_in) has an
/// a-labelled node processed by the transducer in state q (Section 5
/// terminology, also the backbone of the Lemma 14 engine). Witness
/// back-pointers support embedding counterexample subtrees into valid
/// contexts (Corollary 38).
class ReachablePairs {
 public:
  /// `t` must be selector-free (compile selectors first).
  ReachablePairs(const Transducer& t, const Dtd& din);

  bool IsReachable(int state, int symbol) const;

  /// All reachable pairs in discovery (BFS) order.
  const std::vector<std::pair<int, int>>& pairs() const { return pairs_; }

  /// Builds a tree of L(d_in) in which the node at the witness position of
  /// (state, symbol) is replaced by `subtree` (whose root must be labelled
  /// `symbol` for the result to satisfy d_in). The pair must be reachable.
  Node* EmbedWitness(int state, int symbol, Node* subtree,
                     TreeBuilder* builder) const;

 private:
  int Index(int state, int symbol) const;

  const Transducer& t_;
  const Dtd& din_;
  StateSet reachable_;
  std::vector<int> origin_;  // index of parent pair, -1 for the root pair
  std::vector<std::pair<int, int>> pairs_;
};

/// Collects the states occurring anywhere in a template hedge.
void StatesInRhs(const RhsHedge& rhs, StateSet* states);

}  // namespace xtc

#endif  // XTC_CORE_REACHABLE_H_
