#include "src/core/explicit_nta.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "src/base/interner.h"
#include "src/base/logging.h"
#include "src/base/state_set.h"
#include "src/core/reachable.h"
#include "src/fa/dfa_reach.h"

namespace xtc {
namespace {

// One obligation (p, l, r) against the output DFA of one sigma.
struct Obl {
  int p;
  int l;
  int r;

  auto operator<=>(const Obl&) const = default;
};

// B-state identities. `u` indexes label nodes of rhs(q, a) in preorder.
struct StateKey {
  enum class Kind { kValid, kFind, kCheck, kOblig };
  Kind kind;
  int a = -1;      // input symbol
  int q = -1;      // kFind/kCheck
  int u = -1;      // kCheck: label-node index
  int sigma = -1;  // kOblig
  std::vector<Obl> obls;

  auto operator<=>(const StateKey&) const = default;
};

// An under-construction horizontal NFA: edges carry B-state ids as symbols.
struct HSpec {
  int symbol;  // the input symbol this transition reads
  int num_local = 0;
  std::vector<int> initials;
  std::vector<int> finals;
  std::vector<std::tuple<int, int, int>> edges;  // (from, B-state, to)
};

// The top-level split of a template hedge (see trac.cc).
struct TopPattern {
  std::vector<int> states;
  std::vector<std::vector<int>> seps;
};

TopPattern SplitTop(const RhsHedge& rhs) {
  TopPattern out;
  out.seps.emplace_back();
  for (const RhsNode& n : rhs) {
    if (n.kind == RhsNode::Kind::kLabel) {
      out.seps.back().push_back(n.label);
    } else {
      out.states.push_back(n.state);
      out.seps.emplace_back();
    }
  }
  return out;
}

// Collects the label nodes of a template in preorder.
void LabelNodes(const RhsHedge& rhs, std::vector<const RhsNode*>* out) {
  for (const RhsNode& n : rhs) {
    if (n.kind != RhsNode::Kind::kLabel) continue;
    out->push_back(&n);
    LabelNodes(n.children, out);
  }
}

class Builder {
 public:
  Builder(const Transducer& t, const Dtd& din, const Dtd& dout,
          int max_states, Budget* budget)
      : t_(t), din_(din), dout_(dout), max_states_(max_states),
        budget_(budget), reach_(t, din) {}

  StatusOr<Nta> Build();

 private:
  int Intern(StateKey key) {
    // Encoded as a flat int key; the interner id is dense and doubles as
    // the B-state id (keys_ mirrors it for decoding in Emit).
    key_buf_.clear();
    key_buf_.reserve(5 + 3 * key.obls.size());
    key_buf_.push_back(static_cast<int>(key.kind));
    key_buf_.push_back(key.a);
    key_buf_.push_back(key.q);
    key_buf_.push_back(key.u);
    key_buf_.push_back(key.sigma);
    for (const Obl& obl : key.obls) {
      key_buf_.push_back(obl.p);
      key_buf_.push_back(obl.l);
      key_buf_.push_back(obl.r);
    }
    int id = ids_.Intern(key_buf_);
    if (id < static_cast<int>(keys_.size())) return id;
    keys_.push_back(std::move(key));
    specs_.emplace_back();
    worklist_.push_back(id);
    return id;
  }

  Status Emit(int id);
  void EmitValid(int id, int a);
  void EmitFind(int id, int a, int q);
  // Shared product construction for check (complement = true, target unused)
  // and oblig (exact targets) states.
  Status EmitProduct(int id, int a, int sigma,
                     const std::vector<int>& copy_states,
                     const std::vector<int>& copy_starts,  // -1 = guessed
                     const std::vector<std::vector<int>>& group_first,
                     const std::vector<std::vector<std::vector<int>>>& group_seps,
                     const std::vector<int>& group_targets);
  void EmitDinLifted(int id, int a);

  // Reachable-set cache over A_sigma = dout.RuleDfaComplete(sigma); the
  // borrowed DFA pointer is address-stable (the rule cache never moves).
  const StateSet& OutReachable(int sigma, int from) {
    if (out_reach_.size() < static_cast<std::size_t>(sigma) + 1) {
      out_reach_.resize(static_cast<std::size_t>(sigma) + 1);
    }
    std::unique_ptr<DfaReachability>& reach =
        out_reach_[static_cast<std::size_t>(sigma)];
    if (reach == nullptr) {
      reach = std::make_unique<DfaReachability>(&dout_.RuleDfaComplete(sigma));
    }
    return reach->From(from);
  }

  const Transducer& t_;
  const Dtd& din_;
  const Dtd& dout_;
  int max_states_;
  Budget* budget_;
  ReachablePairs reach_;

  SubsetInterner ids_;
  std::vector<int> key_buf_;
  std::vector<StateKey> keys_;
  std::deque<int> worklist_;
  std::vector<std::vector<HSpec>> specs_;  // per B-state, parallel to keys_
  std::vector<int> finals_;
  std::vector<std::unique_ptr<DfaReachability>> out_reach_;  // per sigma
};

// valid(a): the rule DFA of d_in(a) lifted over valid(c) child states.
void Builder::EmitValid(int id, int a) { EmitDinLifted(id, a); }

void Builder::EmitDinLifted(int id, int a) {
  const Dfa& d = din_.RuleDfa(a);
  HSpec spec;
  spec.symbol = a;
  spec.num_local = d.num_states();
  if (d.initial() == Dfa::kDead) return;
  spec.initials.push_back(d.initial());
  for (int s = 0; s < d.num_states(); ++s) {
    if (d.final(s)) spec.finals.push_back(s);
    for (int c = 0; c < d.num_symbols(); ++c) {
      int to = d.Step(s, c);
      if (to == Dfa::kDead) continue;
      StateKey child;
      child.kind = StateKey::Kind::kValid;
      child.a = c;
      spec.edges.emplace_back(s, Intern(child), to);
    }
  }
  specs_[id].push_back(std::move(spec));
}

void Builder::EmitFind(int id, int a, int q) {
  const RhsHedge* rhs = t_.rule(q, a);
  if (rhs == nullptr) return;  // no violation can originate below
  StateSet states(t_.num_states());
  StatesInRhs(*rhs, &states);
  const Dfa& d = din_.RuleDfa(a);
  if (d.initial() == Dfa::kDead) return;
  // Local states: (din DFA state, marked-seen flag) encoded as s*2+flag.
  HSpec spec;
  spec.symbol = a;
  spec.num_local = d.num_states() * 2;
  spec.initials.push_back(d.initial() * 2);
  for (int s = 0; s < d.num_states(); ++s) {
    if (d.final(s)) spec.finals.push_back(s * 2 + 1);
    for (int c = 0; c < d.num_symbols(); ++c) {
      int to = d.Step(s, c);
      if (to == Dfa::kDead) continue;
      StateKey vchild;
      vchild.kind = StateKey::Kind::kValid;
      vchild.a = c;
      int vid = Intern(vchild);
      spec.edges.emplace_back(s * 2, vid, to * 2);
      spec.edges.emplace_back(s * 2 + 1, vid, to * 2 + 1);
      // The single marked child: (c, p) "find" or (c, p, u) "check".
      for (int p = 0; p < t_.num_states(); ++p) {
        if (!states.Test(p)) continue;
        if (!reach_.IsReachable(p, c)) continue;
        StateKey fchild;
        fchild.kind = StateKey::Kind::kFind;
        fchild.a = c;
        fchild.q = p;
        spec.edges.emplace_back(s * 2, Intern(fchild), to * 2 + 1);
        const RhsHedge* crhs = t_.rule(p, c);
        if (crhs == nullptr) continue;
        std::vector<const RhsNode*> labels;
        LabelNodes(*crhs, &labels);
        for (std::size_t u = 0; u < labels.size(); ++u) {
          StateKey cchild;
          cchild.kind = StateKey::Kind::kCheck;
          cchild.a = c;
          cchild.q = p;
          cchild.u = static_cast<int>(u);
          spec.edges.emplace_back(s * 2, Intern(cchild), to * 2 + 1);
        }
      }
    }
  }
  specs_[id].push_back(std::move(spec));
}

Status Builder::EmitProduct(
    int id, int a, int sigma, const std::vector<int>& copy_states,
    const std::vector<int>& copy_starts,
    const std::vector<std::vector<int>>& group_first,
    const std::vector<std::vector<std::vector<int>>>& group_seps,
    const std::vector<int>& group_targets) {
  const Dfa& a_sigma = dout_.RuleDfaComplete(sigma);
  const Dfa& d = din_.RuleDfa(a);
  if (d.initial() == Dfa::kDead) return Status::Ok();
  const int k = static_cast<int>(copy_states.size());
  const int n_sigma = a_sigma.num_states();

  // Local states: (din state, y-vector, guess-vector), explored lazily from
  // all initial guess combinations.
  std::vector<int> guess_pos;
  for (int c = 0; c < k; ++c) {
    if (copy_starts[static_cast<std::size_t>(c)] == -1) guess_pos.push_back(c);
  }
  using Local = std::pair<int, std::vector<int>>;  // (din state, y ++ guesses)
  // Locals interned by hashed key [ds, rest...]; ids are dense in discovery
  // order, so an id cursor doubles as the BFS queue below.
  SubsetInterner local_ids;
  std::vector<Local> locals;
  std::vector<int> local_key;
  auto intern_local = [&](int ds, std::vector<int> rest) {
    local_key.clear();
    local_key.reserve(rest.size() + 1);
    local_key.push_back(ds);
    local_key.insert(local_key.end(), rest.begin(), rest.end());
    int lid = local_ids.Intern(local_key);
    if (lid < static_cast<int>(locals.size())) return lid;
    locals.emplace_back(ds, std::move(rest));
    return lid;
  };

  HSpec spec;
  spec.symbol = a;

  // All guess combinations seed the initial states.
  std::vector<int> guesses(guess_pos.size(), 0);
  while (true) {
    std::vector<int> rest(static_cast<std::size_t>(k) + guesses.size());
    for (int c = 0; c < k; ++c) {
      int start = copy_starts[static_cast<std::size_t>(c)];
      if (start == -1) {
        for (std::size_t gp = 0; gp < guess_pos.size(); ++gp) {
          if (guess_pos[gp] == c) start = guesses[gp];
        }
      }
      rest[static_cast<std::size_t>(c)] = start;
    }
    for (std::size_t gp = 0; gp < guesses.size(); ++gp) {
      rest[static_cast<std::size_t>(k) + gp] = guesses[gp];
    }
    spec.initials.push_back(intern_local(d.initial(), std::move(rest)));
    std::size_t pos = 0;
    while (pos < guesses.size()) {
      if (++guesses[pos] < n_sigma) break;
      guesses[pos] = 0;
      ++pos;
    }
    if (pos == guesses.size()) break;
  }

  auto is_final = [&](const Local& local) {
    int ds = local.first;
    if (!d.final(ds)) return false;
    const std::vector<int>& rest = local.second;
    for (std::size_t g = 0; g < group_first.size(); ++g) {
      const std::vector<int>& firsts = group_first[g];
      const std::vector<std::vector<int>>& seps = group_seps[g];
      for (std::size_t j = 0; j < firsts.size(); ++j) {
        int copy = firsts[j];
        int end = a_sigma.Run(rest[static_cast<std::size_t>(copy)],
                              seps[j + 1]);
        if (j + 1 < firsts.size()) {
          // Chained: must equal the guessed start of the next copy.
          int next = firsts[j + 1];
          int gi = -1;
          for (std::size_t gp = 0; gp < guess_pos.size(); ++gp) {
            if (guess_pos[gp] == next) gi = static_cast<int>(gp);
          }
          XTC_CHECK_GE(gi, 0);
          if (end != static_cast<int>(
                         rest[static_cast<std::size_t>(k) +
                              static_cast<std::size_t>(gi)])) {
            return false;
          }
        } else if (group_targets[g] >= 0) {
          if (end != group_targets[g]) return false;
        } else if (a_sigma.final(end)) {
          return false;  // complement acceptance (check states)
        }
      }
    }
    return true;
  };

  // The z-odometer below is the innermost loop; its polling is amortized.
  BudgetGate gate(budget_);
  for (int lid = 0; lid < static_cast<int>(locals.size()); ++lid) {
    XTC_RETURN_IF_ERROR(
        BudgetCheck(budget_, "BuildCounterexampleNta/EmitProduct"));
    // Copy: locals may reallocate as new configurations are minted below.
    Local local = locals[static_cast<std::size_t>(lid)];
    if (is_final(local)) spec.finals.push_back(lid);
    if (static_cast<int>(locals.size()) > max_states_ * 4) {
      return ResourceExhaustedError(
          "explicit Lemma 14 construction exceeded the local-state budget");
    }
    // Per-copy target candidates: an obligation (p, l, r) is satisfiable
    // only when r is reachable from l in A_sigma (the run follows real
    // edges), so the odometer ranges over the reachable sets instead of
    // all of n_sigma^k. Depends only on the local state, not on c.
    std::vector<std::vector<int>> cand(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) {
      cand[static_cast<std::size_t>(i)] =
          OutReachable(sigma, local.second[static_cast<std::size_t>(i)])
              .ToVector();
    }
    for (int c = 0; c < d.num_symbols(); ++c) {
      int ds2 = d.Step(local.first, c);
      if (ds2 == Dfa::kDead) continue;
      std::vector<std::size_t> zi(static_cast<std::size_t>(k), 0);
      std::vector<int> z(static_cast<std::size_t>(k));
      for (int i = 0; i < k; ++i) {
        z[static_cast<std::size_t>(i)] = cand[static_cast<std::size_t>(i)][0];
      }
      while (true) {
        XTC_RETURN_IF_ERROR(gate.Poll("BuildCounterexampleNta/odometer"));
        std::vector<Obl> obls;
        obls.reserve(static_cast<std::size_t>(k));
        for (int i = 0; i < k; ++i) {
          obls.push_back(Obl{copy_states[static_cast<std::size_t>(i)],
                             local.second[static_cast<std::size_t>(i)],
                             z[static_cast<std::size_t>(i)]});
        }
        std::sort(obls.begin(), obls.end());
        obls.erase(std::unique(obls.begin(), obls.end()), obls.end());
        bool contradictory = false;
        for (std::size_t i = 1; i < obls.size(); ++i) {
          if (obls[i].p == obls[i - 1].p && obls[i].l == obls[i - 1].l &&
              obls[i].r != obls[i - 1].r) {
            contradictory = true;
          }
        }
        if (!contradictory) {
          StateKey child;
          child.kind = StateKey::Kind::kOblig;
          child.a = c;
          child.sigma = sigma;
          child.obls = std::move(obls);
          int cid = Intern(child);
          if (static_cast<int>(keys_.size()) > max_states_) {
            return ResourceExhaustedError(
                "explicit Lemma 14 construction exceeded the state budget");
          }
          std::vector<int> rest2 = local.second;
          for (int i = 0; i < k; ++i) {
            rest2[static_cast<std::size_t>(i)] = z[static_cast<std::size_t>(i)];
          }
          spec.edges.emplace_back(lid, cid, intern_local(ds2, std::move(rest2)));
        }
        int pos = 0;
        while (pos < k) {
          const std::vector<int>& ci = cand[static_cast<std::size_t>(pos)];
          if (++zi[static_cast<std::size_t>(pos)] < ci.size()) {
            z[static_cast<std::size_t>(pos)] =
                ci[zi[static_cast<std::size_t>(pos)]];
            break;
          }
          zi[static_cast<std::size_t>(pos)] = 0;
          z[static_cast<std::size_t>(pos)] = ci[0];
          ++pos;
        }
        if (pos == k) break;
      }
    }
  }
  spec.num_local = static_cast<int>(locals.size());
  specs_[id].push_back(std::move(spec));
  return Status::Ok();
}

Status Builder::Emit(int id) {
  const StateKey key = keys_[static_cast<std::size_t>(id)];
  switch (key.kind) {
    case StateKey::Kind::kValid:
      EmitValid(id, key.a);
      return Status::Ok();
    case StateKey::Kind::kFind:
      EmitFind(id, key.a, key.q);
      return Status::Ok();
    case StateKey::Kind::kCheck: {
      const RhsHedge* rhs = t_.rule(key.q, key.a);
      XTC_CHECK(rhs != nullptr);
      std::vector<const RhsNode*> labels;
      LabelNodes(*rhs, &labels);
      const RhsNode* u = labels[static_cast<std::size_t>(key.u)];
      TopPattern pat = SplitTop(u->children);
      const Dfa& a_sigma = dout_.RuleDfaComplete(u->label);
      if (pat.states.empty()) {
        // Constant child string: a violation iff rejected by A_sigma.
        if (!a_sigma.Accepts(pat.seps[0])) EmitDinLifted(id, key.a);
        return Status::Ok();
      }
      std::vector<int> starts(pat.states.size(), -1);
      starts[0] = a_sigma.Run(a_sigma.initial(), pat.seps[0]);
      std::vector<int> firsts(pat.states.size());
      for (std::size_t j = 0; j < pat.states.size(); ++j) {
        firsts[j] = static_cast<int>(j);
      }
      return EmitProduct(id, key.a, u->label, pat.states, starts, {firsts},
                         {pat.seps}, {-1});
    }
    case StateKey::Kind::kOblig: {
      const Dfa& a_sigma = dout_.RuleDfaComplete(key.sigma);
      std::vector<int> copy_states;
      std::vector<int> copy_starts;
      std::vector<std::vector<int>> group_first;
      std::vector<std::vector<std::vector<int>>> group_seps;
      std::vector<int> group_targets;
      for (const Obl& obl : key.obls) {
        const RhsHedge* rhs = t_.rule(obl.p, key.a);
        if (rhs == nullptr) {
          if (obl.l != obl.r) return Status::Ok();  // empty language
          continue;
        }
        TopPattern pat = SplitTop(*rhs);
        if (pat.states.empty()) {
          if (a_sigma.Run(obl.l, pat.seps[0]) != obl.r) return Status::Ok();
          continue;
        }
        std::vector<int> firsts;
        for (std::size_t j = 0; j < pat.states.size(); ++j) {
          firsts.push_back(static_cast<int>(copy_states.size()) +
                           static_cast<int>(j));
        }
        for (std::size_t j = 0; j < pat.states.size(); ++j) {
          copy_states.push_back(pat.states[j]);
          copy_starts.push_back(j == 0 ? a_sigma.Run(obl.l, pat.seps[0]) : -1);
        }
        group_first.push_back(std::move(firsts));
        group_seps.push_back(pat.seps);
        group_targets.push_back(obl.r);
      }
      if (copy_states.empty()) {
        // All obligations statically satisfied: any valid subtree works.
        EmitDinLifted(id, key.a);
        return Status::Ok();
      }
      return EmitProduct(id, key.a, key.sigma, copy_states, copy_starts,
                         group_first, group_seps, group_targets);
    }
  }
  return Status::Ok();
}

StatusOr<Nta> Builder::Build() {
  XTC_CHECK_MSG(!t_.HasSelectors(), "compile selectors first");
  // Root handling (see trac.cc): B is the d_in automaton when every valid
  // input is a counterexample.
  const RhsHedge* root_rhs = t_.rule(t_.initial(), din_.start());
  bool all_bad = root_rhs == nullptr || root_rhs->size() != 1 ||
                 (*root_rhs)[0].kind != RhsNode::Kind::kLabel ||
                 (*root_rhs)[0].label != dout_.start();
  if (all_bad) {
    StateKey root;
    root.kind = StateKey::Kind::kValid;
    root.a = din_.start();
    finals_.push_back(Intern(root));
  } else if (!din_.LanguageEmpty()) {
    StateKey find_root;
    find_root.kind = StateKey::Kind::kFind;
    find_root.a = din_.start();
    find_root.q = t_.initial();
    finals_.push_back(Intern(find_root));
    std::vector<const RhsNode*> labels;
    LabelNodes(*root_rhs, &labels);
    for (std::size_t u = 0; u < labels.size(); ++u) {
      StateKey check_root;
      check_root.kind = StateKey::Kind::kCheck;
      check_root.a = din_.start();
      check_root.q = t_.initial();
      check_root.u = static_cast<int>(u);
      finals_.push_back(Intern(check_root));
    }
  }

  while (!worklist_.empty()) {
    XTC_RETURN_IF_ERROR(BudgetCheck(budget_, "BuildCounterexampleNta/Build"));
    int id = worklist_.front();
    worklist_.pop_front();
    if (static_cast<int>(keys_.size()) > max_states_) {
      return ResourceExhaustedError(
          "explicit Lemma 14 construction exceeded the state budget");
    }
    Status s = Emit(id);
    if (!s.ok()) return s;
  }

  const int n = static_cast<int>(keys_.size());
  Nta out(din_.num_symbols(), n);
  for (int f : finals_) out.SetFinal(f);
  for (int id = 0; id < n; ++id) {
    for (const HSpec& spec : specs_[static_cast<std::size_t>(id)]) {
      Nfa h(n);
      h.ReserveStates(spec.num_local);
      for (int s = 0; s < spec.num_local; ++s) h.AddState();
      for (int s : spec.initials) h.SetInitial(s);
      for (int s : spec.finals) h.SetFinal(s);
      for (const auto& [from, sym, to] : spec.edges) {
        h.AddTransition(from, sym, to);
      }
      out.SetTransition(id, spec.symbol, std::move(h));
    }
  }
  return out;
}

}  // namespace

StatusOr<Nta> BuildCounterexampleNta(const Transducer& t, const Dtd& din,
                                     const Dtd& dout, int max_states,
                                     Budget* budget) {
  Builder builder(t, din, dout, max_states, budget);
  return builder.Build();
}

}  // namespace xtc
