#ifndef XTC_CORE_TYPECHECK_H_
#define XTC_CORE_TYPECHECK_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/base/arena.h"
#include "src/base/budget.h"
#include "src/base/status.h"
#include "src/nta/lazy.h"
#include "src/schema/dtd.h"
#include "src/td/transducer.h"
#include "src/td/widths.h"
#include "src/tree/tree.h"

namespace xtc {

/// Instrumentation counters shared by the typechecking engines; benches
/// report these next to wall-clock times (they track the paper's size
/// bounds, e.g. Lemma 14's automaton size).
struct TypecheckStats {
  std::uint64_t configs = 0;          ///< distinct fixpoint configurations
  std::uint64_t evaluations = 0;      ///< configuration (re-)evaluations
  std::uint64_t product_states = 0;   ///< product states explored
  std::uint64_t nta_states = 0;       ///< states of constructed NTAs
  std::uint64_t nta_size = 0;         ///< total size of constructed NTAs
  /// Antichain telemetry from the lazy emptiness runs (DESIGN.md §3e):
  /// configs dropped at mint because a live config subsumed them, and live
  /// configs displaced by a later dominating config. Zero with the
  /// antichain knob off or on paths that pose no emptiness query.
  std::uint64_t pruned_configs = 0;
  std::uint64_t displaced_configs = 0;

  // Resource-governor telemetry (zero when the run was ungoverned).
  std::uint64_t budget_checkpoints = 0;  ///< checkpoints passed
  std::uint64_t budget_bytes = 0;        ///< arena bytes charged
  double elapsed_ms = 0;                 ///< wall-clock of the governed run
  ExhaustionCause exhaustion = ExhaustionCause::kNone;  ///< why it stopped
};

/// Outcome of a typechecking run (Definition 9). When the instance does not
/// typecheck, `counterexample` is a tree t in L(d_in) with T(t) not in
/// L(d_out) (Corollary 38), owned by `arena`.
///
/// `approximate` is set when the exact engine exhausted its budget and the
/// answer comes from the degraded path (core/approximate): a `typechecks ==
/// true` verdict is then still sound, but `typechecks == false` may be a
/// false alarm and carries no counterexample. `exact_status` preserves the
/// exact engine's kResourceExhausted error in that case.
struct TypecheckResult {
  bool typechecks = false;
  std::shared_ptr<Arena> arena;
  Node* counterexample = nullptr;
  bool approximate = false;
  Status exact_status;
  TypecheckStats stats;
};

/// Resource limits for the engines; decision procedures fail softly with
/// kResourceExhausted instead of thrashing (the hard instances of Sections
/// 3.2 and 4 are exponential by design).
///
/// `budget`, when non-null, governs the run: every super-linear loop
/// checkpoints it and the engines unwind with kResourceExhausted as soon as
/// its deadline/step/byte limit trips. The budget is borrowed, not owned,
/// and must outlive the Typecheck call (not the result).
///
/// `approximate_fallback` turns exhaustion of the *exact* engine into a
/// degraded answer instead of an error: Typecheck() re-runs the sound
/// over-approximation (core/approximate) under a fresh budget of the same
/// deadline and marks the result `approximate`.
struct TypecheckOptions {
  std::uint64_t max_configs = 1u << 22;
  std::uint64_t max_product_states_per_eval = 1u << 22;
  bool want_counterexample = true;
  Budget* budget = nullptr;
  bool approximate_fallback = false;

  /// Which engine answers NTA product-emptiness queries in the paths that
  /// pose them (Theorem 20 relabeling, determinization-backed dispatch):
  /// the lazy frontier engine (src/nta/lazy.h, reachable-only with early
  /// exit) by default, falling back to the eager materializing pipeline
  /// when the lazy engine overruns its own state caps. kEager forces the
  /// reference pipeline throughout.
  EmptinessEngine emptiness_engine = EmptinessEngine::kLazy;

  /// Worker threads for the lazy emptiness engine (LazyOptions::threads).
  /// 1 (the default) keeps the single-threaded engine; >1 shards the
  /// frontier across a worker pool with identical verdicts and failure
  /// semantics. Ignored by the eager engine.
  int emptiness_threads = 1;

  /// Antichain subsumption pruning in the lazy emptiness engine
  /// (LazyOptions::antichain, DESIGN.md §3e). On by default; the escape
  /// hatch preserves the full discovery fixpoint (differential testing,
  /// maximal cached snapshot tables). Ignored by the eager engine.
  bool antichain = true;

  /// Dense/sparse switch-over for determinized subset masks
  /// (LazyOptions::dense_threshold); values < 1 mean the engine default
  /// (kDefaultDenseThreshold). Ignored by the eager engine.
  int dense_threshold = 0;

  // --- Pre-compiled artifacts (the service compile cache) ---
  //
  // All three are borrowed and must outlive the call. They let repeated
  // requests against cached schemas/transducers skip the per-call analysis
  // and determinization work; correctness is the caller's contract — the
  // artifacts must genuinely describe the `t`/`din`/`dout` being passed.

  /// Width analysis of the (selector-free) transducer; when null the
  /// dispatch runs AnalyzeWidths itself.
  const WidthAnalysis* widths = nullptr;

  /// DTD(DFA) determinizations of `din`/`dout`, used instead of re-running
  /// the subset construction when a schema is not already DTD(DFA). Must
  /// share the schema's Alphabet object.
  const Dtd* din_determinized = nullptr;
  const Dtd* dout_determinized = nullptr;

  /// Resumable lazy-engine state (the service compile cache). `lazy_resume`
  /// warm-starts the lazy emptiness run with previously discovered tables;
  /// it must come from an identical request (same schemas and transducer).
  /// When `lazy_export` is non-null and the lazy run completes cleanly, it
  /// receives the discovered tables for caching; a failed or skipped run
  /// leaves it untouched.
  const LazySnapshot* lazy_resume = nullptr;
  LazySnapshot* lazy_export = nullptr;
};

/// Checks a claimed counterexample against the definition: t must satisfy
/// d_in and T(t) must violate d_out. Used by tests and by the engines'
/// self-verification.
bool VerifyCounterexample(const Transducer& t, const Dtd& din, const Dtd& dout,
                          const Node* tree);

/// Front door: dispatches to the paper's algorithms by scenario. Selectors
/// are compiled away (Theorems 23/29); DTD(NFA) schemas are determinized
/// (the PSPACE price of Table 1); transducers with bounded deletion path
/// width run the Lemma 14 engine (Theorem 15); unbounded transducers over
/// DTD(RE+) run the Section 5 algorithm (Theorem 37). Everything else is
/// provably intractable (Theorems 18/28) and is reported as such.
StatusOr<TypecheckResult> Typecheck(const Transducer& t, const Dtd& din,
                                    const Dtd& dout,
                                    const TypecheckOptions& options = {});

}  // namespace xtc

#endif  // XTC_CORE_TYPECHECK_H_
