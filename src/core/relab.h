#ifndef XTC_CORE_RELAB_H_
#define XTC_CORE_RELAB_H_

#include "src/base/status.h"
#include "src/core/typecheck.h"
#include "src/nta/nta.h"

namespace xtc {

/// Lemma 19 applied to the #-marked totalization T' of a T_del-relab
/// transducer: returns an NTA(NFA) B with L(B) = T'(L(a_in)). Top-level
/// (deleting) states of rules are wrapped as #(q) and missing rules become
/// the single leaf #, so T' is non-deleting and total with at most one
/// state per template; `hash_symbol` is the id used for # (typically the
/// base alphabet size; the result runs over hash_symbol + 1 symbols).
/// A non-null `budget` checkpoints the per-state construction loop.
StatusOr<Nta> OutputLanguageNta(const Transducer& t, const Nta& ain,
                                int hash_symbol, Budget* budget = nullptr);

/// The #-eliminating automaton of Theorem 20: accepts a tree t over
/// Σ ∪ {#} iff γ(t) ∈ L(aout), where γ splices out #-labelled nodes.
/// `aout` must be a complete bottom-up deterministic automaton over the
/// base alphabet (pass the complemented output DTAc to obtain B_out).
Nta HashEliminationNta(const Nta& aout, int hash_symbol);

/// Theorem 20: TC[T_del-relab, DTAc(DFA)] in PTIME, here applied to DTD
/// schemas (the input DTD becomes an NTA(NFA), the output DTD a DTAc by
/// completion; both canonical automata are deterministic already):
/// typechecks iff L(B_in ∩ B_out) = ∅. Counterexamples (in terms of the
/// *input* tree) are recovered by a bounded search when requested.
StatusOr<TypecheckResult> TypecheckDelRelab(const Transducer& t,
                                            const Dtd& din, const Dtd& dout,
                                            const TypecheckOptions& options = {});

/// The NTA-schema variant of Theorem 20: `ain` is any NTA(NFA) over the
/// base alphabet, `aout_dtac` must be a complete bottom-up deterministic
/// automaton (determinize first otherwise — the exponential step the
/// paper's EXPTIME cells charge).
StatusOr<TypecheckResult> TypecheckDelRelabNta(const Transducer& t,
                                               const Nta& ain,
                                               const Nta& aout_dtac,
                                               const TypecheckOptions& options = {});

}  // namespace xtc

#endif  // XTC_CORE_RELAB_H_
