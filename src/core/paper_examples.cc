#include "src/core/paper_examples.h"

#include "src/base/logging.h"
#include "src/tree/codec.h"

namespace xtc {
namespace {

void MustSetRule(Transducer* t, std::string_view state,
                 std::string_view symbol, std::string_view rhs) {
  Status s = t->SetRuleFromString(state, symbol, rhs);
  XTC_CHECK_MSG(s.ok(), s.ToString().c_str());
}

void MustSetDtdRule(Dtd* d, std::string_view symbol, std::string_view regex) {
  Status s = d->SetRule(symbol, regex);
  XTC_CHECK_MSG(s.ok(), s.ToString().c_str());
}

}  // namespace

PaperExample MakeExample6() {
  PaperExample ex;
  ex.alphabet = std::make_shared<Alphabet>();
  for (const char* s : {"a", "b", "c", "d", "e"}) ex.alphabet->Intern(s);
  ex.transducer = std::make_shared<Transducer>(ex.alphabet.get());
  int p = ex.transducer->AddState("p");
  ex.transducer->AddState("q");
  ex.transducer->SetInitial(p);
  MustSetRule(ex.transducer.get(), "p", "a", "d(e)");
  MustSetRule(ex.transducer.get(), "p", "b", "d(q)");
  MustSetRule(ex.transducer.get(), "q", "a", "c p");
  MustSetRule(ex.transducer.get(), "q", "b", "c(p q)");
  return ex;
}

Node* MakeExample7Tree(Alphabet* alphabet, TreeBuilder* builder) {
  StatusOr<Node*> t = ParseTerm("b(b(a b) a)", alphabet, builder);
  XTC_CHECK(t.ok());
  return *t;
}

PaperExample MakeBookExample(bool with_summary) {
  PaperExample ex;
  ex.alphabet = std::make_shared<Alphabet>();
  for (const char* s : {"book", "title", "author", "chapter", "intro",
                        "section", "paragraph"}) {
    ex.alphabet->Intern(s);
  }
  int book = *ex.alphabet->Find("book");

  ex.din = std::make_shared<Dtd>(ex.alphabet.get(), book);
  MustSetDtdRule(ex.din.get(), "book", "title author+ chapter+");
  MustSetDtdRule(ex.din.get(), "chapter", "title intro section+");
  MustSetDtdRule(ex.din.get(), "section", "title paragraph+ section*");

  ex.transducer = std::make_shared<Transducer>(ex.alphabet.get());
  int q = ex.transducer->AddState("q");
  ex.transducer->SetInitial(q);
  ex.dout = std::make_shared<Dtd>(ex.alphabet.get(), book);
  if (!with_summary) {
    MustSetRule(ex.transducer.get(), "q", "book", "book(q)");
    MustSetRule(ex.transducer.get(), "q", "chapter", "chapter q");
    MustSetRule(ex.transducer.get(), "q", "title", "title");
    MustSetRule(ex.transducer.get(), "q", "section", "q");
    // The chapter's own title plus at least one section title follow every
    // chapter element.
    MustSetDtdRule(ex.dout.get(), "book", "title (chapter title title+)+");
  } else {
    ex.transducer->AddState("p");
    ex.transducer->AddState("p2");
    MustSetRule(ex.transducer.get(), "q", "book", "book(q p)");
    MustSetRule(ex.transducer.get(), "q", "chapter", "chapter q");
    MustSetRule(ex.transducer.get(), "q", "title", "title");
    MustSetRule(ex.transducer.get(), "q", "section", "q");
    MustSetRule(ex.transducer.get(), "p", "chapter", "chapter(p2)");
    MustSetRule(ex.transducer.get(), "p2", "title", "title");
    MustSetRule(ex.transducer.get(), "p2", "intro", "intro");
    // Example 11's output DTD.
    MustSetDtdRule(ex.dout.get(), "book", "title (chapter title*)* chapter*");
    MustSetDtdRule(ex.dout.get(), "chapter", "title intro | %");
  }
  return ex;
}

PaperExample MakeExample12() {
  PaperExample ex;
  ex.alphabet = std::make_shared<Alphabet>();
  ex.alphabet->Intern("a");
  ex.transducer = std::make_shared<Transducer>(ex.alphabet.get());
  int q0 = ex.transducer->AddState("q0");
  for (const char* s : {"q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8"}) {
    ex.transducer->AddState(s);
  }
  ex.transducer->SetInitial(q0);
  MustSetRule(ex.transducer.get(), "q0", "a", "a(q1 q5)");
  MustSetRule(ex.transducer.get(), "q1", "a", "q2 a q2 a");
  MustSetRule(ex.transducer.get(), "q2", "a", "a q3 q3 a q3");
  MustSetRule(ex.transducer.get(), "q3", "a", "q4");
  MustSetRule(ex.transducer.get(), "q4", "a", "a");
  MustSetRule(ex.transducer.get(), "q5", "a", "q6 a a q6");
  MustSetRule(ex.transducer.get(), "q6", "a", "q7 q7");
  MustSetRule(ex.transducer.get(), "q7", "a", "a q8 a");
  MustSetRule(ex.transducer.get(), "q8", "a", "a a q7");
  return ex;
}

PaperExample MakeExample22() {
  PaperExample ex = MakeBookExample(false);
  // Rewrite the ToC transducer with an XPath selector: all section-title
  // bookkeeping is replaced by ⟨q, .//title⟩ on chapters.
  ex.transducer = std::make_shared<Transducer>(ex.alphabet.get());
  int q = ex.transducer->AddState("q");
  ex.transducer->SetInitial(q);
  MustSetRule(ex.transducer.get(), "q", "book", "book(q)");
  MustSetRule(ex.transducer.get(), "q", "chapter", "chapter <q, .//title>");
  MustSetRule(ex.transducer.get(), "q", "title", "title");
  return ex;
}

}  // namespace xtc
