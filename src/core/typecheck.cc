#include "src/core/typecheck.h"

#include <optional>

#include "src/base/budget.h"
#include "src/core/approximate.h"
#include "src/core/nfa_dtd.h"
#include "src/core/replus.h"
#include "src/core/trac.h"
#include "src/td/classes.h"
#include "src/td/compile_selectors.h"
#include "src/td/exec.h"
#include "src/td/widths.h"

namespace xtc {
namespace {

// The exact-engine dispatch (selectors already compiled away).
StatusOr<TypecheckResult> TypecheckExact(const Transducer& t, const Dtd& din,
                                         const Dtd& dout,
                                         const TypecheckOptions& options) {
  // DTD(NFA) schemas: swap in a cached determinization when the caller has
  // one, otherwise determinize here (the PSPACE price), then re-dispatch.
  if (!din.IsDfaDtd() || !dout.IsDfaDtd()) {
    const Dtd* ein = &din;
    const Dtd* eout = &dout;
    if (!din.IsDfaDtd() && options.din_determinized != nullptr) {
      ein = options.din_determinized;
    }
    if (!dout.IsDfaDtd() && options.dout_determinized != nullptr) {
      eout = options.dout_determinized;
    }
    if (!ein->IsDfaDtd() || !eout->IsDfaDtd()) {
      return TypecheckViaDeterminization(t, *ein, *eout, options);
    }
    return TypecheckExact(t, *ein, *eout, options);
  }

  WidthAnalysis local_widths;
  const WidthAnalysis* widths = options.widths;
  if (widths == nullptr) {
    local_widths = AnalyzeWidths(t);
    widths = &local_widths;
  }
  if (widths->dpw_bounded) {
    // T_trac: the Lemma 14 engine (Theorem 15), PTIME for fixed C, K.
    return TypecheckTrac(t, din, dout, options);
  }
  if (din.IsRePlusDtd() && dout.IsRePlusDtd()) {
    // Unbounded copying/deletion but RE+ schemas: Theorem 37.
    return TypecheckRePlus(t, din, dout, options);
  }
  return UnimplementedError(
      "instance is outside the paper's tractable fragments (unbounded "
      "deletion path width with non-RE+ schemas is PSPACE/coNP-hard; "
      "Theorems 18 and 28) — use TypecheckBruteForce for bounded checking");
}

}  // namespace

bool VerifyCounterexample(const Transducer& t, const Dtd& din, const Dtd& dout,
                          const Node* tree) {
  if (tree == nullptr || !din.Valid(tree)) return false;
  Arena scratch;
  TreeBuilder builder(&scratch);
  Node* output = Apply(t, tree, &builder);
  return output == nullptr || !dout.Valid(output);
}

StatusOr<TypecheckResult> Typecheck(const Transducer& t, const Dtd& din,
                                    const Dtd& dout,
                                    const TypecheckOptions& options) {
  WallTimer timer;
  // Selectors are compiled away first (Theorems 23/29).
  std::optional<Transducer> compiled;
  const Transducer* effective = &t;
  TypecheckOptions effective_options = options;
  if (t.HasSelectors()) {
    StatusOr<Transducer> c = CompileSelectors(t);
    if (!c.ok()) return c.status();
    compiled = *std::move(c);
    effective = &*compiled;
    // A caller-supplied width analysis describes the caller's selector-free
    // transducer, not the one compiled here.
    effective_options.widths = nullptr;
  }

  StatusOr<TypecheckResult> exact =
      TypecheckExact(*effective, din, dout, effective_options);
  if (exact.ok() && exact->stats.elapsed_ms == 0) {
    // Engines stamp governed runs from their Budget; the front door covers
    // whatever is left (including selector compilation) so service latency
    // telemetry is never zero.
    exact->stats.elapsed_ms = timer.elapsed_ms();
  }
  if (exact.ok() || !options.approximate_fallback ||
      exact.status().code() != StatusCode::kResourceExhausted) {
    return exact;
  }

  // Graceful degradation: the exact engine ran out of budget, so re-run the
  // sound-but-incomplete approximate engine under a fresh budget derived
  // from the original deadline (step/byte limits are not carried over — the
  // exact engine already spent them). The whole call is thus bounded by
  // roughly twice the configured deadline.
  Budget fallback;
  Budget* fallback_budget = nullptr;
  if (options.budget != nullptr) {
    if (std::optional<std::chrono::milliseconds> deadline =
            options.budget->deadline()) {
      fallback.set_deadline(*deadline);
    }
    fallback_budget = &fallback;
  }
  StatusOr<ApproximateResult> approx =
      TypecheckApproximate(*effective, din, dout, /*max_dfa_states=*/1 << 14,
                           fallback_budget);
  if (!approx.ok()) return exact.status();  // degraded mode also exhausted

  TypecheckResult result;
  result.arena = std::make_shared<Arena>();
  result.typechecks = approx->verdict == ApproximateVerdict::kTypechecks;
  result.approximate = true;
  result.exact_status = exact.status();
  result.stats = approx->stats;
  if (fallback_budget != nullptr) {
    result.stats.budget_checkpoints = fallback_budget->checkpoints();
    result.stats.budget_bytes = fallback_budget->bytes_charged();
    result.stats.exhaustion = fallback_budget->cause();
  }
  // Degraded-path latency covers the exhausted exact attempt as well.
  result.stats.elapsed_ms = timer.elapsed_ms();
  return result;
}

}  // namespace xtc
