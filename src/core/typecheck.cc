#include "src/core/typecheck.h"

#include <optional>

#include "src/core/nfa_dtd.h"
#include "src/core/replus.h"
#include "src/core/trac.h"
#include "src/td/classes.h"
#include "src/td/compile_selectors.h"
#include "src/td/exec.h"
#include "src/td/widths.h"

namespace xtc {

bool VerifyCounterexample(const Transducer& t, const Dtd& din, const Dtd& dout,
                          const Node* tree) {
  if (tree == nullptr || !din.Valid(tree)) return false;
  Arena scratch;
  TreeBuilder builder(&scratch);
  Node* output = Apply(t, tree, &builder);
  return output == nullptr || !dout.Valid(output);
}

StatusOr<TypecheckResult> Typecheck(const Transducer& t, const Dtd& din,
                                    const Dtd& dout,
                                    const TypecheckOptions& options) {
  // Selectors are compiled away first (Theorems 23/29).
  std::optional<Transducer> compiled;
  const Transducer* effective = &t;
  if (t.HasSelectors()) {
    StatusOr<Transducer> c = CompileSelectors(t);
    if (!c.ok()) return c.status();
    compiled = *std::move(c);
    effective = &*compiled;
  }

  // DTD(NFA) schemas: determinize (the PSPACE price), then re-dispatch.
  if (!din.IsDfaDtd() || !dout.IsDfaDtd()) {
    return TypecheckViaDeterminization(*effective, din, dout, options);
  }

  WidthAnalysis widths = AnalyzeWidths(*effective);
  if (widths.dpw_bounded) {
    // T_trac: the Lemma 14 engine (Theorem 15), PTIME for fixed C, K.
    return TypecheckTrac(*effective, din, dout, options);
  }
  if (din.IsRePlusDtd() && dout.IsRePlusDtd()) {
    // Unbounded copying/deletion but RE+ schemas: Theorem 37.
    return TypecheckRePlus(*effective, din, dout, options);
  }
  return UnimplementedError(
      "instance is outside the paper's tractable fragments (unbounded "
      "deletion path width with non-RE+ schemas is PSPACE/coNP-hard; "
      "Theorems 18 and 28) — use TypecheckBruteForce for bounded checking");
}

}  // namespace xtc
