#include "src/core/hardness.h"

#include <algorithm>
#include <deque>
#include <set>

#include "src/base/logging.h"
#include "src/xpath/eval.h"

namespace xtc {
namespace {

void MustSetRule(Transducer* t, std::string_view state,
                 std::string_view symbol, std::string_view rhs) {
  Status s = t->SetRuleFromString(state, symbol, rhs);
  XTC_CHECK_MSG(s.ok(), s.ToString().c_str());
}

// DFA simulating A_1..A_n on #-separated (or terminator-separated) segments
// of a string. States: (i, x) for segment i in state x of A_i; a "done"
// state after all n segments; an accepting "bad" sink once some A_i
// rejected or `ok_symbol` was read. Which end states accept is configured
// by the caller via flags.
Dfa SegmentedSimulationDfa(const std::vector<Dfa>& dfas,
                           const std::vector<int>& delta_symbols,
                           int separator_symbol, int ok_symbol,
                           int num_symbols, bool separator_before_segments,
                           bool partial_final) {
  const int n = static_cast<int>(dfas.size());
  std::vector<Dfa> complete;
  complete.reserve(static_cast<std::size_t>(n));
  for (const Dfa& d : dfas) complete.push_back(d.Completed());

  Dfa out(num_symbols);
  // Layout: per i, a block of complete[i].num_states() states; then done,
  // then bad.
  std::vector<int> offset(static_cast<std::size_t>(n));
  int total = 0;
  for (int i = 0; i < n; ++i) {
    offset[static_cast<std::size_t>(i)] = total;
    total += complete[static_cast<std::size_t>(i)].num_states();
  }
  int done = total;
  int bad = total + 1;
  for (int s = 0; s < total; ++s) out.AddState(partial_final);
  out.AddState(false);  // done
  out.AddState(true);   // bad
  for (int i = 0; i < n; ++i) {
    const Dfa& a = complete[static_cast<std::size_t>(i)];
    for (int x = 0; x < a.num_states(); ++x) {
      int id = offset[static_cast<std::size_t>(i)] + x;
      if (!partial_final) {
        // Theorem 18 variant: the string can end inside the last segment;
        // accept iff the segment is rejected by A_i.
        out.SetFinal(id, !a.final(x));
      }
      for (std::size_t di = 0; di < delta_symbols.size(); ++di) {
        out.SetTransition(id, delta_symbols[di],
                          offset[static_cast<std::size_t>(i)] +
                              a.Step(x, static_cast<int>(di)));
      }
      // Separator: segment ends here.
      int sep_target;
      if (!a.final(x)) {
        sep_target = bad;
      } else {
        sep_target = i + 1 == n
                         ? done
                         : offset[static_cast<std::size_t>(i) + 1] +
                               complete[static_cast<std::size_t>(i) + 1].initial();
      }
      out.SetTransition(id, separator_symbol, sep_target);
      if (ok_symbol >= 0) out.SetTransition(id, ok_symbol, bad);
    }
  }
  // done: further content is ignored; ok still bails out to bad.
  for (std::size_t di = 0; di < delta_symbols.size(); ++di) {
    out.SetTransition(done, delta_symbols[di], done);
  }
  out.SetTransition(done, separator_symbol, done);
  if (ok_symbol >= 0) out.SetTransition(done, ok_symbol, bad);
  // bad: accepting sink.
  for (std::size_t di = 0; di < delta_symbols.size(); ++di) {
    out.SetTransition(bad, delta_symbols[di], bad);
  }
  out.SetTransition(bad, separator_symbol, bad);
  if (ok_symbol >= 0) out.SetTransition(bad, ok_symbol, bad);

  out.SetInitial(offset[0] + complete[0].initial());
  (void)separator_before_segments;
  return out;
}

}  // namespace

PaperExample MakeTheorem18Instance(
    const std::vector<Dfa>& dfas, const std::vector<std::string>& delta_names) {
  XTC_CHECK(!dfas.empty());
  const int n = static_cast<int>(dfas.size());
  PaperExample ex;
  ex.alphabet = std::make_shared<Alphabet>();
  std::vector<int> delta;
  for (const std::string& name : delta_names) {
    delta.push_back(ex.alphabet->Intern(name));
  }
  int hash = ex.alphabet->Intern("#");
  int r = ex.alphabet->Intern("r");
  int ok = ex.alphabet->Intern("ok");
  const int num_symbols = ex.alphabet->size();

  // d_in: r → #; # → # | Δ*.
  ex.din = std::make_shared<Dtd>(ex.alphabet.get(), r);
  ex.din->SetRule(r, Regex::Sym(hash));
  std::vector<RegexPtr> delta_alts;
  for (int d : delta) delta_alts.push_back(Regex::Sym(d));
  ex.din->SetRule(hash, Regex::Alt({Regex::Sym(hash),
                                    Regex::Star(Regex::Alt(delta_alts))}));

  // Transducer: doubling chain of depth m with 2^m >= n.
  int m = 2;
  while ((1 << m) < n) ++m;
  ex.transducer = std::make_shared<Transducer>(ex.alphabet.get());
  int q0 = ex.transducer->AddState("q0");
  for (int i = 1; i <= m; ++i) {
    ex.transducer->AddState("q" + std::to_string(i));
  }
  ex.transducer->SetInitial(q0);
  MustSetRule(ex.transducer.get(), "q0", "r", "r(q1 # q1)");
  for (int i = 1; i < m; ++i) {
    MustSetRule(ex.transducer.get(), "q" + std::to_string(i), "#",
                "q" + std::to_string(i + 1) + " # q" + std::to_string(i + 1));
    for (const std::string& a : delta_names) {
      MustSetRule(ex.transducer.get(), "q" + std::to_string(i), a, "ok");
    }
  }
  MustSetRule(ex.transducer.get(), "q" + std::to_string(m), "#", "ok");
  for (const std::string& a : delta_names) {
    MustSetRule(ex.transducer.get(), "q" + std::to_string(m), a, a);
  }

  // d_out: r's children simulate A_1..A_n on the #-separated segments.
  ex.dout = std::make_shared<Dtd>(ex.alphabet.get(), r);
  ex.dout->SetRuleDfa(
      r, SegmentedSimulationDfa(dfas, delta, hash, ok, num_symbols,
                                /*separator_before_segments=*/false,
                                /*partial_final=*/false));
  return ex;
}

std::vector<int> FirstPrimes(int n) {
  std::vector<int> primes;
  int candidate = 2;
  while (static_cast<int>(primes.size()) < n) {
    bool prime = true;
    for (int p : primes) {
      if (p * p > candidate) break;
      if (candidate % p == 0) {
        prime = false;
        break;
      }
    }
    if (prime) primes.push_back(candidate);
    ++candidate;
  }
  return primes;
}

std::vector<Dfa> Make3CnfUnaryDfas(const std::vector<CnfClause>& clauses,
                                   int num_vars) {
  std::vector<int> primes = FirstPrimes(num_vars);
  std::vector<Dfa> out;
  for (const CnfClause& clause : clauses) {
    // Cycle of length p_a * p_b * p_c; r is accepted iff some literal is
    // satisfied under "x_i true iff r ≡ 0 (mod p_i)".
    long long modulus = 1;
    for (const CnfLiteral& lit : clause) {
      XTC_CHECK(lit.var >= 0 && lit.var < num_vars);
      modulus *= primes[static_cast<std::size_t>(lit.var)];
    }
    Dfa d(1);
    for (long long s = 0; s < modulus; ++s) {
      bool sat = false;
      for (const CnfLiteral& lit : clause) {
        int p = primes[static_cast<std::size_t>(lit.var)];
        bool is_true = (s % p) == 0;
        if (is_true == lit.positive) sat = true;
      }
      d.AddState(sat);
    }
    for (long long s = 0; s < modulus; ++s) {
      d.SetTransition(static_cast<int>(s), 0,
                      static_cast<int>((s + 1) % modulus));
    }
    d.SetInitial(0);
    out.push_back(std::move(d));
  }
  return out;
}

PaperExample MakeTheorem28Instance(const std::vector<Dfa>& unary_dfas) {
  XTC_CHECK(!unary_dfas.empty());
  PaperExample ex;
  ex.alphabet = std::make_shared<Alphabet>();
  int a = ex.alphabet->Intern("a");
  int r = ex.alphabet->Intern("r");
  int hash = ex.alphabet->Intern("#");
  int dollar = ex.alphabet->Intern("$");
  const int num_symbols = ex.alphabet->size();

  // d_in: r → #; # → # | $; $ → a*.
  ex.din = std::make_shared<Dtd>(ex.alphabet.get(), r);
  ex.din->SetRule(r, Regex::Sym(hash));
  ex.din->SetRule(hash, Regex::Alt({Regex::Sym(hash), Regex::Sym(dollar)}));
  ex.din->SetRule(dollar, Regex::Star(Regex::Sym(a)));

  ex.transducer = std::make_shared<Transducer>(ex.alphabet.get());
  int q0 = ex.transducer->AddState("q0");
  ex.transducer->AddState("q1");
  ex.transducer->AddState("q2");
  ex.transducer->AddState("q3");
  ex.transducer->SetInitial(q0);
  MustSetRule(ex.transducer.get(), "q0", "r", "r(<q1, .//#>)");
  MustSetRule(ex.transducer.get(), "q1", "#", "<q2, .//$>");
  MustSetRule(ex.transducer.get(), "q2", "$", "<q3, .//a> $");
  MustSetRule(ex.transducer.get(), "q3", "a", "a");

  // d_out: r's children are k copies of a^m $; simulate A_i on copy i,
  // accept if some copy is rejected or there are fewer than n copies.
  ex.dout = std::make_shared<Dtd>(ex.alphabet.get(), r);
  ex.dout->SetRuleDfa(
      r, SegmentedSimulationDfa(unary_dfas, {a}, dollar, /*ok_symbol=*/-1,
                                num_symbols,
                                /*separator_before_segments=*/false,
                                /*partial_final=*/true));
  return ex;
}

namespace {

// Appends the target step after every selecting literal; `descendant_axis`
// is the axis immediately above the current subexpression.
XPathExprPtr AppendTarget(const XPathExprPtr& e, int target,
                          bool descendant_axis) {
  switch (e->kind) {
    case XPathExpr::Kind::kDisj:
      return XPathExpr::Disj(AppendTarget(e->left, target, descendant_axis),
                             AppendTarget(e->right, target, descendant_axis));
    case XPathExpr::Kind::kChild:
      return XPathExpr::Child(e->left,
                              AppendTarget(e->right, target, false));
    case XPathExpr::Kind::kDescendant:
      return XPathExpr::Descendant(e->left,
                                   AppendTarget(e->right, target, true));
    case XPathExpr::Kind::kFilter:
    case XPathExpr::Kind::kTest:
    case XPathExpr::Kind::kWildcard: {
      XPathExprPtr step = XPathExpr::Test(target);
      return descendant_axis ? XPathExpr::Descendant(e, step)
                             : XPathExpr::Child(e, step);
    }
  }
  XTC_CHECK_MSG(false, "unreachable XPath kind");
  return e;
}

}  // namespace

XPathPatternPtr Lemma26Pattern(const XPathPatternPtr& pattern, int target) {
  return XPathPattern::Make(
      pattern->descendant,
      AppendTarget(pattern->body, target, pattern->descendant));
}

PaperExample MakeTheorem28aInstance(std::shared_ptr<Alphabet> alphabet,
                                    const Dtd& d, const XPathPatternPtr& p1,
                                    const XPathPatternPtr& p2) {
  PaperExample ex;
  ex.alphabet = std::move(alphabet);
  XTC_CHECK(ex.alphabet.get() == d.alphabet());
  int r = *ex.alphabet->Find("r");
  int x1 = *ex.alphabet->Find("x1");
  int x2 = *ex.alphabet->Find("x2");

  // d' (Lemma 26): identical to d but every node additionally carries one
  // x1 and one x2 child leaf; a fresh root r wraps d's start symbol.
  ex.din = std::make_shared<Dtd>(ex.alphabet.get(), r);
  ex.din->SetRule(r, Regex::Sym(d.start()));
  for (int s = 0; s < d.num_symbols(); ++s) {
    if (s == r || s == x1 || s == x2) continue;
    RegexPtr base = d.RuleRegex(s);
    XTC_CHECK_MSG(base != nullptr,
                  "Theorem 28(1) needs regex-backed DTD rules");
    ex.din->SetRule(
        s, Regex::Concat({base, Regex::Sym(x1), Regex::Sym(x2)}));
  }

  XPathPatternPtr p1_prime = Lemma26Pattern(p1, x1);
  XPathPatternPtr p2_prime = Lemma26Pattern(p2, x2);

  ex.transducer = std::make_shared<Transducer>(ex.alphabet.get());
  ex.transducer->AddState("q0");
  ex.transducer->AddState("q1");
  ex.transducer->AddState("q2");
  ex.transducer->SetInitial(0);
  int sel1 = ex.transducer->AddSelector(Selector{p1_prime, std::nullopt});
  int sel2 = ex.transducer->AddSelector(Selector{p2_prime, std::nullopt});
  // The patterns are evaluated from d's root (r's only child), so the
  // selectors sit on the rule for the start symbol.
  ex.transducer->SetRule(0, r,
                         {RhsNode::Label(r, {RhsNode::State(1)})});
  ex.transducer->SetRule(1, d.start(),
                         {RhsNode::Select(2, sel1), RhsNode::Select(2, sel2)});
  ex.transducer->SetRule(2, x1, {RhsNode::Label(x1)});
  ex.transducer->SetRule(2, x2, {RhsNode::Label(x2)});

  // d_out(r) = x2* + x1 x1* x2 x2*: accepted unless P'1 selected something
  // while P'2 selected nothing.
  ex.dout = std::make_shared<Dtd>(ex.alphabet.get(), r);
  Status s_out = ex.dout->SetRule("r", "x2* | (x1 x1* x2 x2*)");
  XTC_CHECK_MSG(s_out.ok(), s_out.ToString().c_str());
  return ex;
}

bool XPathContainedBounded(const XPathPattern& p1, const XPathPattern& p2,
                           const Dtd& d, const BruteForceOptions& bounds) {
  Arena arena;
  TreeBuilder builder(&arena);
  StatusOr<std::vector<Node*>> trees =
      EnumerateValidTrees(d, d.start(), bounds, &builder);
  XTC_CHECK_MSG(trees.ok(), trees.status().ToString().c_str());
  for (Node* t : *trees) {
    std::vector<const Node*> sel1 = EvalXPath(p1, t);
    std::vector<const Node*> sel2 = EvalXPath(p2, t);
    for (const Node* n : sel1) {
      if (std::find(sel2.begin(), sel2.end(), n) == sel2.end()) return false;
    }
  }
  return true;
}

bool DfaIntersectionEmpty(const std::vector<Dfa>& dfas) {
  XTC_CHECK(!dfas.empty());
  std::vector<Dfa> complete;
  for (const Dfa& d : dfas) complete.push_back(d.Completed());
  const int num_symbols = complete[0].num_symbols();
  std::vector<int> start;
  for (const Dfa& d : complete) start.push_back(d.initial());
  std::set<std::vector<int>> seen{start};
  std::deque<std::vector<int>> queue{start};
  while (!queue.empty()) {
    std::vector<int> cur = queue.front();
    queue.pop_front();
    bool all_final = true;
    for (std::size_t i = 0; i < complete.size(); ++i) {
      if (!complete[i].final(cur[i])) {
        all_final = false;
        break;
      }
    }
    if (all_final) return false;
    for (int sym = 0; sym < num_symbols; ++sym) {
      std::vector<int> next(cur.size());
      for (std::size_t i = 0; i < complete.size(); ++i) {
        next[i] = complete[i].Step(cur[i], sym);
      }
      if (seen.insert(next).second) queue.push_back(std::move(next));
    }
  }
  return true;
}

}  // namespace xtc
