#ifndef XTC_CORE_APPROXIMATE_H_
#define XTC_CORE_APPROXIMATE_H_

#include "src/base/status.h"
#include "src/core/typecheck.h"

namespace xtc {

/// Verdict of a sound but incomplete check (the XDuce/CDuce-style
/// typechecking the paper's introduction contrasts with its complete
/// algorithms).
enum class ApproximateVerdict {
  kTypechecks,  ///< proven safe (sound)
  kUnknown,     ///< the over-approximation violates d_out; may be a false
                ///< alarm (incomplete)
};

struct ApproximateResult {
  ApproximateVerdict verdict;
  TypecheckStats stats;
};

/// A fast, sound, incomplete typechecker: for every transducer state p and
/// input symbol b it infers a REGULAR over-approximation of the top strings
/// { top(T^p(t)) | t ∈ L(d_in, b) } — each state occurrence in a template
/// contributes the Kleene closure of its per-child-symbol languages, losing
/// child counts and cross-copy correlation — and checks every produced
/// node's approximated children language against d_out. If the
/// approximation fits, the instance provably typechecks; otherwise the
/// result is kUnknown (complete engines may still prove safety — that gap
/// is exactly the paper's motivation for complete algorithms, and
/// bench_approximate measures it).
///
/// Works for ANY selector-free transducer and any DTD schemas whose rules
/// determinize within `max_dfa_states`. A non-null `budget` governs the
/// determinization and inclusion checks; this engine is the degraded-mode
/// fallback of Typecheck(), so it must itself respect deadlines.
StatusOr<ApproximateResult> TypecheckApproximate(const Transducer& t,
                                                 const Dtd& din,
                                                 const Dtd& dout,
                                                 int max_dfa_states = 1 << 14,
                                                 Budget* budget = nullptr);

}  // namespace xtc

#endif  // XTC_CORE_APPROXIMATE_H_
