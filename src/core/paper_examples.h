#ifndef XTC_CORE_PAPER_EXAMPLES_H_
#define XTC_CORE_PAPER_EXAMPLES_H_

#include <memory>

#include "src/fa/alphabet.h"
#include "src/schema/dtd.h"
#include "src/td/transducer.h"
#include "src/tree/tree.h"

namespace xtc {

/// A bundled instance of the typechecking problem (some components may be
/// absent depending on the example).
struct PaperExample {
  std::shared_ptr<Alphabet> alphabet;
  std::shared_ptr<Transducer> transducer;
  std::shared_ptr<Dtd> din;
  std::shared_ptr<Dtd> dout;
};

/// Example 6: states {p, q} over {a, b, c, d, e}; (p,a)→d(e), (p,b)→d(q),
/// (q,a)→c p, (q,b)→c(p q). Fig. 1 is its XSLT rendering.
PaperExample MakeExample6();

/// The tree of Example 7 / Fig. 2(a): b(b(a b) a).
Node* MakeExample7Tree(Alphabet* alphabet, TreeBuilder* builder);

/// Example 10/11, the book-filtering scenario. `with_summary` selects the
/// second transducer (table of contents plus summary); its output schema is
/// exactly Example 11's DTD and the instance typechecks. Without summary,
/// the output schema is the tight ToC DTD book → title (chapter title
/// title+)+ and the instance also typechecks.
PaperExample MakeBookExample(bool with_summary);

/// Example 12 / Fig. 4: the transducer with copying width 3 and deletion
/// path width 6 (Example 17).
PaperExample MakeExample12();

/// Example 22: the ToC transformation written with an XPath selector
/// ⟨q, .//title⟩ instead of deleting states.
PaperExample MakeExample22();

}  // namespace xtc

#endif  // XTC_CORE_PAPER_EXAMPLES_H_
