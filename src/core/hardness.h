#ifndef XTC_CORE_HARDNESS_H_
#define XTC_CORE_HARDNESS_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "src/core/brute_force.h"
#include "src/core/paper_examples.h"
#include "src/fa/dfa.h"
#include "src/xpath/ast.h"

namespace xtc {

/// Theorem 18: reduces DFA intersection emptiness to typechecking. The
/// returned instance (transducer with deletion and copying width two and
/// finite deletion path width, DTD(DFA) schemas) typechecks iff
/// ∩ L(A_i) = ∅. `dfas` run over symbols 0..|delta_names|-1.
PaperExample MakeTheorem18Instance(const std::vector<Dfa>& dfas,
                                   const std::vector<std::string>& delta_names);

/// A literal of a 3-CNF clause; variables are 0-based.
struct CnfLiteral {
  int var;
  bool positive;
};
using CnfClause = std::array<CnfLiteral, 3>;

/// The first n primes (Lemma 27 encodes assignments as a^r with x_i true
/// iff r ≡ 0 mod p_i).
std::vector<int> FirstPrimes(int n);

/// Lemma 27: one unary DFA per clause (alphabet {a} = symbol 0) such that
/// ∩ L(A_i) ≠ ∅ iff the formula is satisfiable.
std::vector<Dfa> Make3CnfUnaryDfas(const std::vector<CnfClause>& clauses,
                                   int num_vars);

/// Theorem 28(2): reduces unary-DFA intersection emptiness to typechecking
/// with XPath{//} selectors (copying and deletion width one). The instance
/// typechecks iff ∩ L(A_i) = ∅. The returned transducer uses selectors;
/// compiling them away (Theorem 29's construction) yields unbounded
/// deletion path width — that is exactly the coNP-hardness at work.
PaperExample MakeTheorem28Instance(const std::vector<Dfa>& unary_dfas);

/// Reference oracle: emptiness of ∩ L(A_i) by an n-way product BFS
/// (exponential in n; used to validate the reductions on small instances).
bool DfaIntersectionEmpty(const std::vector<Dfa>& dfas);

/// The Lemma 26 pattern transformation: appends a step to `target` after
/// every selecting literal — /ℓ[...] becomes /ℓ[...]/target and //ℓ[...]
/// becomes //ℓ[...]//target — so that "P1 ⊆ P2 under d" becomes "whenever
/// P′1 selects an x1 node, P′2 selects an x2 node" under the d′ that hangs
/// x1 and x2 leaves below every node.
XPathPatternPtr Lemma26Pattern(const XPathPatternPtr& pattern, int target);

/// Theorem 28(1): reduces XPath containment in the presence of a DTD(DFA)
/// to typechecking. The shared alphabet must already intern "r", "x1" and
/// "x2" (fresh symbols unused by `d` and the patterns), and every rule of
/// `d` must be regex-backed. The instance typechecks iff
/// f_{P1}(t, ε) ⊆ f_{P2}(t, ε) for every tree t satisfying d.
PaperExample MakeTheorem28aInstance(std::shared_ptr<Alphabet> alphabet,
                                    const Dtd& d, const XPathPatternPtr& p1,
                                    const XPathPatternPtr& p2);

/// Bounded containment oracle: checks f_{P1}(t, ε) ⊆ f_{P2}(t, ε) on every
/// tree of L(d) within the enumeration bounds. Used to validate the
/// Theorem 28(1) reduction on small instances.
bool XPathContainedBounded(const XPathPattern& p1, const XPathPattern& p2,
                           const Dtd& d, const BruteForceOptions& bounds);

}  // namespace xtc

#endif  // XTC_CORE_HARDNESS_H_
