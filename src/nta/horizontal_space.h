#ifndef XTC_NTA_HORIZONTAL_SPACE_H_
#define XTC_NTA_HORIZONTAL_SPACE_H_

#include <span>
#include <utility>
#include <vector>

#include "src/base/sparse_state_set.h"
#include "src/base/state_set.h"
#include "src/nta/nta.h"

namespace xtc {

/// Per input symbol `a`, all horizontal NFAs delta(q, a) of one NTA embedded
/// into one global state space, so that a set of global states ("h-state")
/// summarizes, for every q simultaneously, where a horizontal run can be.
/// Shared between the eager subset construction (DeterminizeToDtac) and the
/// lazy frontier engine (src/nta/lazy.h), which additionally walks single
/// global states for existential (non-determinized) product components.
struct HorizontalSpace {
  /// offset[q] .. offset[q] + |delta(q, a)| are the global ids of
  /// delta(q, a)'s states; -1 when the transition is absent.
  std::vector<int> offset;
  std::vector<const Nfa*> nfa;
  std::vector<int> owner;                   ///< global id -> q
  std::vector<int> initials;                ///< global ids, sorted
  std::vector<std::pair<int, int>> finals;  ///< (global id, q), id-sorted
  StateSet final_mask;                      ///< over global ids
  int total = 0;

  static HorizontalSpace Build(const Nta& nta, int a);

  /// Calls f(symbol, successor_global_id) for every NFA edge out of the
  /// global state `g`. Edge symbols are the owner NTA's state ids.
  template <typename F>
  void ForEachEdge(int g, F&& f) const {
    const int q = owner[static_cast<std::size_t>(g)];
    const int off = offset[static_cast<std::size_t>(q)];
    for (const auto& [sym, t] :
         nfa[static_cast<std::size_t>(q)]->Edges(g - off)) {
      f(sym, off + t);
    }
  }
};

/// The set of original states q whose horizontal language accepts at the
/// h-state (sorted global-id set) `h`.
std::vector<int> TargetSubset(const HorizontalSpace& sp,
                              std::span<const int> h);

/// Advance the h-state by one child whose possible-state set is `subset`
/// (a packed mask over the original Q).
std::vector<int> StepH(const HorizontalSpace& sp, std::span<const int> h,
                       const StateSet& subset);

/// Allocation-free variant against an adaptive mask: accumulates into the
/// caller's (logically empty) scratch sized to sp.total and writes the
/// sorted successor h-state into `*out`, leaving the scratch empty again.
void StepH(const HorizontalSpace& sp, std::span<const int> h,
           const AdaptiveStateSet& subset, ScratchSet* scratch,
           std::vector<int>* out);

}  // namespace xtc

#endif  // XTC_NTA_HORIZONTAL_SPACE_H_
