#ifndef XTC_NTA_LAZY_H_
#define XTC_NTA_LAZY_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/budget.h"
#include "src/base/sparse_state_set.h"
#include "src/base/status.h"
#include "src/nta/nta.h"
#include "src/tree/hashcons.h"

namespace xtc {

/// Which engine answers NTA product-emptiness queries (DESIGN.md §3c): the
/// lazy frontier engine below (reachable-only, early exit), or the eager
/// reference pipeline (DeterminizeToDtac + Intersect + IsEmptyLanguage).
enum class EmptinessEngine {
  kLazy,
  kEager,
};

/// One factor of a product-emptiness query. Existential components
/// contribute one nondeterministically-chosen run; determinized components
/// are tracked as full state subsets of their Q (on-the-fly subset
/// construction), so `complement` — accept iff NO run of the component
/// accepts — is a polarity flip on the subset, with no materialized
/// completion or complementation.
struct LazyComponent {
  const Nta* nta = nullptr;
  bool determinize = false;
  bool complement = false;  ///< only meaningful with determinize
};

/// A conjunctive product query: is the intersection of the component
/// languages (complemented where flagged) empty? All components must share
/// one tree alphabet (equal num_symbols()). The spec only borrows the NTA
/// pointers; they must outlive the emptiness call.
class LazyProductSpec {
 public:
  /// Adds L(nta) as an existential factor.
  void AddNta(const Nta* nta) { components_.push_back({nta, false, false}); }
  /// Adds L(nta) (or its complement) as a determinized factor.
  void AddDeterminized(const Nta* nta, bool complement) {
    components_.push_back({nta, true, complement});
  }

  const std::vector<LazyComponent>& components() const { return components_; }
  int num_symbols() const {
    return components_.empty() ? 0 : components_.front().nta->num_symbols();
  }

 private:
  std::vector<LazyComponent> components_;
};

/// Exploration counters, reported by both engines so call sites and benches
/// can compare work done. For the eager engine, `configs` is the
/// materialized product state count.
struct LazyStats {
  std::uint64_t configs = 0;     ///< product configurations discovered
  std::uint64_t h_configs = 0;   ///< joint horizontal states discovered
  std::uint64_t det_states = 0;  ///< determinized subset states minted
  std::uint64_t steps = 0;       ///< horizontal successor expansions
  /// Configs dropped at mint time because a live config subsumed them
  /// (antichain pruning, DESIGN.md §3e). Never expanded.
  std::uint64_t pruned_configs = 0;
  /// Live configs displaced by a later, dominating config; their remaining
  /// frontier work was skipped.
  std::uint64_t displaced_configs = 0;
  bool early_exit = false;       ///< stopped at the first accepting config
  bool resumed = false;          ///< warm-started from a LazySnapshot
};

/// The lazy engine's discovered determinized-state tables, exportable on a
/// *completed* exploration and re-importable to warm-start an equal query
/// (src/service/compile_cache stores these as incremental artifacts).
/// Snapshots are only ever taken from successful runs, so a resumed
/// exploration can trust every table; a run that failed mid-way (budget or
/// cap exhaustion) exports nothing and leaves any prior snapshot untouched.
///
/// Thread-ownership: like the SubsetInterner it is built from, a snapshot
/// is written by one thread; sharing read-only copies (e.g. via the compile
/// cache's shared_ptr entries) is safe once published.
struct LazySnapshot {
  /// One per determinized component, in spec order: the interned subsets of
  /// that component's Q, concatenated into `pool` with `offsets` fencing
  /// subset i at [offsets[i], offsets[i+1]).
  struct DetTable {
    std::vector<int> pool;
    std::vector<std::size_t> offsets = {0};
  };
  std::vector<DetTable> det_tables;
  bool complete = false;  ///< exploration ran to fixpoint (verdict is final)
  bool empty = false;     ///< the verdict, valid when complete
  /// Whether the exporting run pruned with the antichain layer. A pruned
  /// fixpoint is sound to resume from with either setting — the tables are
  /// a subset of the unpruned discovery set, and resume only pre-interns
  /// them — but the marker keeps clean-completion re-exports byte-stable
  /// and lets diagnostics attribute table-size differences.
  bool antichain = false;
  std::uint64_t pruned_configs = 0;  ///< prune count at export time

  std::size_t ApproxBytes() const;
};

struct LazyOptions {
  Budget* budget = nullptr;
  /// Cap on product configurations discovered before the engine gives up
  /// with kResourceExhausted (mirrors TypecheckOptions::max_configs).
  int max_configs = 1 << 22;
  /// Cap on joint horizontal states across all symbols.
  int max_h_configs = 1 << 22;
  /// Worker threads for the frontier exploration. 1 (the default) runs the
  /// single-threaded engine — byte-for-byte the PR 4 behaviour. Values > 1
  /// shard the frontier across a worker pool (DESIGN.md §3d): per-worker
  /// SubsetInterner caches over shared concurrent id tables, epoch-based
  /// termination detection, a first-accepting-config early exit that
  /// cancels peers, and budget fuel reconciled at epoch barriers. Verdicts,
  /// witness validity, snapshot export/resume, and failure semantics are
  /// identical to the sequential engine; only wall-clock differs. Clamped
  /// to [1, 64].
  int threads = 1;
  /// Antichain subsumption pruning (DESIGN.md §3e): drop newly minted
  /// configs subsumed by a live config, displace live configs a newcomer
  /// dominates. On by default; the escape hatch exists for differential
  /// testing and for callers that want the full discovery fixpoint (e.g.
  /// maximal snapshot tables). No effect on specs with no determinized
  /// component — equality dedup (the interner) is already maximal pruning
  /// for purely existential products.
  bool antichain = true;
  /// Universe size above which determinized subset masks switch from the
  /// dense word-parallel StateSet to the sorted-sparse representation
  /// (src/base/sparse_state_set.h). Values < 1 mean the default.
  int dense_threshold = kDefaultDenseThreshold;
  /// Warm-start: pre-interns the snapshot's determinized-state tables (and
  /// short-circuits entirely when the snapshot is complete and no witness
  /// is requested). The snapshot must come from an equal spec.
  const LazySnapshot* resume = nullptr;
  /// When non-null and the run completes, receives the discovered tables.
  LazySnapshot* export_snapshot = nullptr;
};

/// The answer to an emptiness query. When a forest was supplied and the
/// product is non-empty, `witness` is a SharedForest id of a tree accepted
/// by every component (modulo complement); materialize it with
/// SharedForest::Materialize.
struct EmptinessOutcome {
  bool empty = false;
  int witness = -1;  ///< SharedForest id, -1 when empty or no forest given
  LazyStats stats;
};

/// On-the-fly emptiness: interleaves subset construction of determinized
/// components, the product with existential components, and bottom-up
/// reachability, discovering only reachable configurations and exiting the
/// moment an accepting one is minted. Budget-governed per successor
/// expansion; fails soft with kResourceExhausted on budget or cap
/// exhaustion, leaving no partial snapshot behind.
StatusOr<EmptinessOutcome> LazyEmptiness(const LazyProductSpec& spec,
                                         SharedForest* forest,
                                         const LazyOptions& options = {});

/// Reference implementation of the same query: materializes DeterminizeToDtac
/// (+ ComplementedDtac) per determinized component, folds Intersect, then
/// runs IsEmptyLanguage / WitnessTree. Same verdicts, eager cost.
StatusOr<EmptinessOutcome> EagerEmptiness(const LazyProductSpec& spec,
                                          SharedForest* forest,
                                          const LazyOptions& options = {});

/// Engine-agnostic handle the typechecking paths program against;
/// constructed per run (thread-compatible, not thread-safe).
class EmptinessOracle {
 public:
  virtual ~EmptinessOracle() = default;
  virtual const char* name() const = 0;
  virtual StatusOr<EmptinessOutcome> Check(const LazyProductSpec& spec,
                                           SharedForest* forest) = 0;
};

std::unique_ptr<EmptinessOracle> MakeEmptinessOracle(
    EmptinessEngine engine, const LazyOptions& options = {});

}  // namespace xtc

#endif  // XTC_NTA_LAZY_H_
