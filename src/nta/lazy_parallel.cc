#include "src/nta/lazy_parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "src/base/antichain.h"
#include "src/base/concurrent_interner.h"
#include "src/base/interner.h"
#include "src/base/logging.h"
#include "src/base/sparse_state_set.h"
#include "src/base/state_set.h"
#include "src/nta/horizontal_space.h"

namespace xtc {
namespace {

// Cap messages shared with (or in the spirit of) the sequential engine, so
// differential tests see the same failure text whichever engine ran.
constexpr char kMsgMaxConfigs[] =
    "lazy emptiness exceeded max_configs product configurations";
constexpr char kMsgMaxH[] =
    "lazy emptiness exceeded max_h_configs horizontal states";
constexpr char kMsgDetTable[] =
    "lazy emptiness exhausted its determinized-state table";
constexpr char kMsgHsubTable[] =
    "lazy emptiness exhausted a horizontal-subset table";
constexpr char kMsgMemoTable[] =
    "lazy emptiness exhausted a horizontal step memo table";

// A slot whose value is published with release/acquire; -1 = unset. Used
// for the TargetSubset and det-step memo cells, whose values are
// deterministic functions of their index, so racing writers store the same
// int and the race is benign by construction.
struct AtomicCell {
  std::atomic<int> v{-1};
};

// The parallel frontier engine (DESIGN.md §3d). Same discovery structure as
// the sequential LazyEngine in lazy.cc — configs, per-symbol joint h-states
// with cursors over the global config list, back-pointers for witnesses —
// but every id table is a shared ConcurrentInterner and the saturation loop
// runs as bulk-synchronous epochs over a worker pool:
//
//  - At each barrier the coordinator snapshots the config count, rescans
//    every h-state cursor, and deals the pending (h-state, cursor window)
//    items into per-worker queues by key-hash ownership.
//  - Workers drain their own queue, then steal from peers via the atomic
//    claim cursor. Joint h-states minted mid-epoch go to the discoverer's
//    private overflow (never stolen — the queues are immutable in-epoch);
//    whatever is left anywhere at the barrier is re-derived from the
//    cursors, so correctness never depends on queues draining.
//  - Termination: a barrier rescan that produces zero items is the
//    fixpoint. First accepting config CASes `found_` and raises `stop_`,
//    which peers poll; the witness is rebuilt after the join.
//  - Tables never grow mid-epoch. A full table raises `pressure_` + `stop_`
//    (ending the epoch early); the coordinator grows at the barrier and the
//    deferred steps retry idempotently. `full` without room to grow is the
//    hard cap — the run fails soft exactly like the sequential engine.
//  - The single-thread Budget is never touched in the hot loop: workers
//    count steps in plain per-thread counters, the coordinator reconciles
//    with Budget::ChargeSteps at each barrier, and a per-worker epoch
//    quantum plus a mid-epoch deadline poll (against the snapshotted
//    deadline instant) bound how stale exhaustion detection can get.
class ParallelEngine {
 public:
  ParallelEngine(const LazyProductSpec& spec, SharedForest* forest,
                 const LazyOptions& options)
      : spec_(spec), forest_(forest), options_(options) {
    nthreads_ = options.threads < 2 ? 2 : options.threads;
    if (nthreads_ > 64) nthreads_ = 64;
    max_configs_ = options.max_configs > 0 ? options.max_configs : 1;
    max_h_ = options.max_h_configs > 0 ? options.max_h_configs : 1;
    if (options.budget != nullptr) {
      deadline_ = options.budget->deadline_instant();
    }

    const auto& comps = spec.components();
    num_components_ = static_cast<int>(comps.size());
    num_symbols_ = spec.num_symbols();
    det_slot_.assign(comps.size(), -1);
    // Side tables are sized to their interner's hard cap (the ConcurrentLog
    // segment directory must cover every reachable id).
    const std::size_t aux_cap =
        static_cast<std::size_t>(max_configs_) +
        static_cast<std::size_t>(max_h_) + 4096;
    for (int i = 0; i < num_components_; ++i) {
      XTC_CHECK_EQ(comps[static_cast<std::size_t>(i)].nta->num_symbols(),
                   num_symbols_);
      if (comps[static_cast<std::size_t>(i)].determinize) {
        det_slot_[static_cast<std::size_t>(i)] =
            static_cast<int>(det_comps_.size());
        det_comps_.emplace_back();
        DetGlobal& dc = det_comps_.back();
        dc.component = i;
        dc.ids = std::make_unique<ConcurrentInterner>(nthreads_, aux_cap, 256);
        dc.masks = std::make_unique<ConcurrentLog<AdaptiveStateSet>>(aux_cap);
        dc.accepting = std::make_unique<ConcurrentLog<unsigned char>>(aux_cap);
      }
    }
    const std::size_t cfg_cap = static_cast<std::size_t>(max_configs_);
    cfg_ids_ = std::make_unique<ConcurrentInterner>(nthreads_, cfg_cap, 4096);
    cfg_acc_ = std::make_unique<ConcurrentLog<unsigned char>>(cfg_cap);
    cfg_sym_ = std::make_unique<ConcurrentLog<int>>(cfg_cap);
    cfg_hid_ = std::make_unique<ConcurrentLog<int>>(cfg_cap);

    dense_threshold_ = options.dense_threshold >= 1 ? options.dense_threshold
                                                    : kDefaultDenseThreshold;
    // Same applicability rule as the sequential engine: nothing to relax in
    // a purely existential product.
    antichain_enabled_ = options.antichain && !det_comps_.empty();
    if (antichain_enabled_) {
      tombs_ = std::make_unique<TombstoneLog>(cfg_cap);
      std::vector<int> ex_positions;
      for (int i = 0; i < num_components_; ++i) {
        if (det_slot_[static_cast<std::size_t>(i)] < 0) {
          ex_positions.push_back(i);
        }
      }
      antichain_.Configure(std::move(ex_positions));
    }

    symbols_.reserve(static_cast<std::size_t>(num_symbols_));
    const std::size_t h_cap = static_cast<std::size_t>(max_h_);
    for (int a = 0; a < num_symbols_; ++a) {
      symbols_.emplace_back();
      SymbolGlobal& sym = symbols_.back();
      sym.spaces.reserve(comps.size());
      for (int i = 0; i < num_components_; ++i) {
        sym.spaces.push_back(HorizontalSpace::Build(
            *comps[static_cast<std::size_t>(i)].nta, a));
      }
      sym.h_ids =
          std::make_unique<ConcurrentInterner>(nthreads_, h_cap, 4096);
      sym.h_prev = std::make_unique<ConcurrentLog<int>>(h_cap);
      sym.h_letter = std::make_unique<ConcurrentLog<int>>(h_cap);
      sym.h_cursor = std::make_unique<ConcurrentLog<int>>(h_cap);
      sym.det.resize(det_comps_.size());
      for (DetHGlobal& dh : sym.det) {
        dh.ids =
            std::make_unique<ConcurrentInterner>(nthreads_, aux_cap, 1024);
        dh.target = std::make_unique<ConcurrentLog<AtomicCell>>(aux_cap);
        dh.memo_keys = std::make_unique<ConcurrentInterner>(
            nthreads_, aux_cap * 4, 4096);
        dh.memo_val =
            std::make_unique<ConcurrentLog<AtomicCell>>(aux_cap * 4);
      }
    }

    workers_.reserve(static_cast<std::size_t>(nthreads_));
    for (int w = 0; w < nthreads_; ++w) {
      workers_.push_back(std::make_unique<WorkerCtx>(w));
      workers_.back()->h_cache.resize(static_cast<std::size_t>(num_symbols_));
      workers_.back()->memo_cache.assign(
          static_cast<std::size_t>(num_symbols_),
          std::vector<L1Cache>(det_comps_.size()));
    }
  }

  ~ParallelEngine() { ShutdownPool(); }

  StatusOr<EmptinessOutcome> Run() {
    // Joins the pool on every return path, so no worker outlives the run.
    struct PoolJoiner {
      ParallelEngine* e;
      ~PoolJoiner() { e->ShutdownPool(); }
    } joiner{this};

    XTC_RETURN_IF_ERROR(Bootstrap());
    while (found_.load(std::memory_order_acquire) < 0) {
      GrowTables();
      if (!BuildQueues()) break;  // fixpoint: nothing left to expand
      stop_.store(false, std::memory_order_relaxed);
      pressure_.store(false, std::memory_order_relaxed);
      RunEpoch();
      std::uint64_t delta = 0;
      for (const auto& w : workers_) delta += w->epoch_steps;
      steps_total_ += delta;
      if (options_.budget != nullptr && delta > 0) {
        XTC_RETURN_IF_ERROR(
            options_.budget->ChargeSteps(delta, "LazyEmptiness"));
      }
      Status failed = TakeFail();
      if (!failed.ok()) return failed;
      // Any surviving pressure_ is resolved by GrowTables at the loop top.
    }
    {
      Status failed = TakeFail();
      if (!failed.ok()) return failed;
    }

    EmptinessOutcome out;
    const int found = found_.load(std::memory_order_acquire);
    out.empty = found < 0;
    if (found >= 0 && forest_ != nullptr) out.witness = BuildWitness(found);
    stats_.configs = static_cast<std::uint64_t>(cfg_ids_->size());
    stats_.h_configs =
        static_cast<std::uint64_t>(total_h_.load(std::memory_order_relaxed));
    for (const DetGlobal& dc : det_comps_) {
      stats_.det_states += static_cast<std::uint64_t>(dc.ids->size());
    }
    stats_.steps = steps_total_;
    for (const auto& w : workers_) {
      stats_.pruned_configs += w->pruned;
      stats_.displaced_configs += w->displaced_count;
    }
    stats_.early_exit = found >= 0;
    stats_.resumed = resumed_;
    out.stats = stats_;
    if (options_.export_snapshot != nullptr) {
      // Clean completion only — every failure path returned above, so the
      // merged global tables are trustworthy and format-compatible with the
      // sequential exporter (id order is insertion order in both).
      LazySnapshot snap;
      snap.det_tables.resize(det_comps_.size());
      for (std::size_t d = 0; d < det_comps_.size(); ++d) {
        LazySnapshot::DetTable& table = snap.det_tables[d];
        const int n = det_comps_[d].ids->size();
        for (int id = 0; id < n; ++id) {
          const std::span<const int> subset = det_comps_[d].ids->Get(id);
          table.pool.insert(table.pool.end(), subset.begin(), subset.end());
          table.offsets.push_back(table.pool.size());
        }
      }
      snap.complete = true;
      snap.empty = out.empty;
      snap.antichain = antichain_enabled_;
      snap.pruned_configs =
          stats_.pruned_configs + stats_.displaced_configs;
      *options_.export_snapshot = std::move(snap);
    }
    return out;
  }

 private:
  static constexpr std::uint64_t kEpochQuantum = 8192;
  static constexpr std::uint64_t kDeadlineStride = 1024;

  struct Item {
    int sym = -1;
    int hid = -1;
  };

  // A worker's private view: an L1 SubsetInterner over each global table so
  // repeat lookups of hot keys never touch the shared CAS slots. Caches
  // only record keys this worker has seen resolve globally, so a hit is
  // always authoritative.
  struct L1Cache {
    SubsetInterner keys;
    std::vector<int> global;  ///< local id -> global value (memo caches)
  };

  struct WorkerCtx {
    explicit WorkerCtx(int idx) : index(idx) {}

    const int index;
    // Dealt by the coordinator at the barrier, immutable in-epoch; claimed
    // (by owner and thieves alike) through the atomic cursor.
    std::vector<Item> queue;
    std::atomic<std::size_t> qhead{0};
    // Joint h-states this worker minted mid-epoch; private, never stolen.
    std::vector<Item> overflow;
    std::uint64_t epoch_steps = 0;

    L1Cache cfg_cache;
    std::vector<L1Cache> h_cache;                 // per symbol
    std::vector<std::vector<L1Cache>> memo_cache;  // [symbol][det slot]

    // Scratch; `key` carries joint h tuples, `cfg_key` config tuples — two
    // buffers because minting a config happens while a joint key is live.
    std::vector<int> key, cfg_key, ex_slots;
    std::vector<std::vector<int>> ex_options;
    std::vector<std::size_t> odometer;

    ScratchSet scratch;          ///< StepDetP successor accumulator
    std::vector<int> step_buf;   ///< reused ExtractSortedAndClear target
    std::vector<int> displaced;  ///< reused antichain Insert out-param
    // Antichain counters; never reset across epochs, summed after the join.
    std::uint64_t pruned = 0;
    std::uint64_t displaced_count = 0;
  };

  struct DetGlobal {
    int component = -1;
    std::unique_ptr<ConcurrentInterner> ids;
    std::unique_ptr<ConcurrentLog<AdaptiveStateSet>> masks;
    std::unique_ptr<ConcurrentLog<unsigned char>> accepting;
  };

  struct DetHGlobal {
    std::unique_ptr<ConcurrentInterner> ids;  ///< subsets of global h ids
    std::unique_ptr<ConcurrentLog<AtomicCell>> target;
    std::unique_ptr<ConcurrentInterner> memo_keys;
    std::unique_ptr<ConcurrentLog<AtomicCell>> memo_val;
  };

  struct SymbolGlobal {
    std::vector<HorizontalSpace> spaces;  ///< per component, read-only shared
    std::vector<DetHGlobal> det;
    std::unique_ptr<ConcurrentInterner> h_ids;
    std::unique_ptr<ConcurrentLog<int>> h_prev;
    std::unique_ptr<ConcurrentLog<int>> h_letter;
    std::unique_ptr<ConcurrentLog<int>> h_cursor;
  };

  // ---- failure / stop channels -------------------------------------------

  void Fail(Status s) {
    {
      std::lock_guard<std::mutex> lock(fail_mu_);
      if (fail_status_.ok()) fail_status_ = std::move(s);
    }
    stop_.store(true, std::memory_order_relaxed);
  }

  Status TakeFail() {
    std::lock_guard<std::mutex> lock(fail_mu_);
    return fail_status_;
  }

  // A table reported `full`: growable tables end the epoch for a barrier
  // Grow(); a table at its hard cap fails the run.
  bool ReportFull(const ConcurrentInterner& table, const char* cap_msg) {
    if (table.NeedsGrow()) {
      pressure_.store(true, std::memory_order_relaxed);
      stop_.store(true, std::memory_order_relaxed);
    } else {
      Fail(ResourceExhaustedError(cap_msg));
    }
    return false;
  }

  void TryMarkFound(int cfg) {
    int expected = -1;
    found_.compare_exchange_strong(expected, cfg, std::memory_order_acq_rel,
                                   std::memory_order_acquire);
    stop_.store(true, std::memory_order_relaxed);
  }

  void PollDeadline() {
    if (deadline_.has_value() &&
        std::chrono::steady_clock::now() > *deadline_) {
      // Just end the epoch; the authoritative trip is the coordinator's
      // ChargeSteps at the barrier (which re-reads the clock).
      stop_.store(true, std::memory_order_relaxed);
    }
  }

  template <typename F>
  void ForEachInterner(F&& f) {
    f(*cfg_ids_);
    for (DetGlobal& dc : det_comps_) f(*dc.ids);
    for (SymbolGlobal& sym : symbols_) {
      f(*sym.h_ids);
      for (DetHGlobal& dh : sym.det) {
        f(*dh.ids);
        f(*dh.memo_keys);
      }
    }
  }

  // Barrier-time growth: resolves any in-epoch pressure and proactively
  // grows tables past half occupancy so pressure rarely develops at all.
  void GrowTables() {
    ForEachInterner([](ConcurrentInterner& t) {
      while (t.CanGrow() && t.NearCapacity()) t.Grow();
    });
  }

  // ---- discovery (mirrors lazy.cc, against the shared tables) ------------

  int InternDetState(WorkerCtx& w, int d, std::span<const int> subset) {
    DetGlobal& dc = det_comps_[static_cast<std::size_t>(d)];
    const LazyComponent& comp =
        spec_.components()[static_cast<std::size_t>(dc.component)];
    const auto res = dc.ids->TryIntern(w.index, subset, [&](int id) {
      bool any_final = false;
      for (int q : subset) any_final = any_final || comp.nta->final(q);
      // Interner keys are sorted subsets, so the adaptive set can take the
      // span as-is.
      dc.masks->Slot(id) =
          AdaptiveStateSet(subset, comp.nta->num_states(), dense_threshold_);
      dc.accepting->Slot(id) =
          (comp.complement ? !any_final : any_final) ? 1 : 0;
    });
    if (res.full) {
      ReportFull(*dc.ids, kMsgDetTable);
      return -1;
    }
    return res.id;
  }

  int InternDetH(WorkerCtx& w, int a, int d, std::span<const int> subset) {
    DetHGlobal& dh = symbols_[static_cast<std::size_t>(a)]
                         .det[static_cast<std::size_t>(d)];
    const auto res = dh.ids->TryIntern(w.index, subset);
    if (res.full) {
      ReportFull(*dh.ids, kMsgHsubTable);
      return -1;
    }
    return res.id;
  }

  // The det-state the h-subset `hsub` emits. The memo cell holds a value
  // that is a pure function of hsub, so racing recomputations store the
  // same id.
  int TargetOfP(WorkerCtx& w, int a, int d, int hsub) {
    SymbolGlobal& sym = symbols_[static_cast<std::size_t>(a)];
    DetHGlobal& dh = sym.det[static_cast<std::size_t>(d)];
    std::atomic<int>& cell = dh.target->Slot(hsub).v;
    const int cached = cell.load(std::memory_order_acquire);
    if (cached >= 0) return cached;
    const int comp = det_comps_[static_cast<std::size_t>(d)].component;
    const std::span<const int> members = dh.ids->Get(hsub);
    const int id = InternDetState(
        w, d,
        TargetSubset(sym.spaces[static_cast<std::size_t>(comp)], members));
    if (id < 0) return -1;
    cell.store(id, std::memory_order_release);
    return id;
  }

  // Deterministic subset step of a det coordinate by a det-state letter;
  // L1-cached per worker, globally memoized behind an atomic cell.
  int StepDetP(WorkerCtx& w, int a, int d, int hsub, int det_letter) {
    L1Cache& cache = w.memo_cache[static_cast<std::size_t>(a)]
                                 [static_cast<std::size_t>(d)];
    const int pair_key[2] = {hsub, det_letter};
    const int local = cache.keys.Find(pair_key);
    if (local >= 0) return cache.global[static_cast<std::size_t>(local)];
    SymbolGlobal& sym = symbols_[static_cast<std::size_t>(a)];
    DetHGlobal& dh = sym.det[static_cast<std::size_t>(d)];
    const auto res = dh.memo_keys->TryIntern(w.index, pair_key);
    if (res.full) {
      ReportFull(*dh.memo_keys, kMsgMemoTable);
      return -1;
    }
    std::atomic<int>& cell = dh.memo_val->Slot(res.id).v;
    int value = cell.load(std::memory_order_acquire);
    if (value < 0) {
      const int comp = det_comps_[static_cast<std::size_t>(d)].component;
      const HorizontalSpace& sp =
          sym.spaces[static_cast<std::size_t>(comp)];
      const AdaptiveStateSet& mask =
          det_comps_[static_cast<std::size_t>(d)].masks->Get(det_letter);
      const std::span<const int> members = dh.ids->Get(hsub);
      w.scratch.EnsureUniverse(sp.total);
      for (int g : members) {
        sp.ForEachEdge(g, [&](int symq, int to) {
          if (mask.Test(symq)) w.scratch.Add(to);
        });
      }
      w.scratch.ExtractSortedAndClear(&w.step_buf);
      const int succ = InternDetH(w, a, d, w.step_buf);
      if (succ < 0) return -1;
      cell.store(succ, std::memory_order_release);
      value = succ;
    }
    cache.keys.Intern(pair_key);
    cache.global.push_back(value);
    return value;
  }

  bool MintConfig(WorkerCtx& w, int a, int hid) {
    if (w.cfg_cache.keys.Find(w.cfg_key) >= 0) return true;
    const auto res = cfg_ids_->TryIntern(w.index, w.cfg_key, [&](int id) {
      bool accepting = true;
      for (int i = 0; i < num_components_ && accepting; ++i) {
        const int d = det_slot_[static_cast<std::size_t>(i)];
        const int coord = w.cfg_key[static_cast<std::size_t>(i)];
        accepting =
            d < 0 ? spec_.components()[static_cast<std::size_t>(i)].nta->final(
                        coord)
                  : det_comps_[static_cast<std::size_t>(d)].accepting->Get(
                        coord) != 0;
      }
      cfg_acc_->Slot(id) = accepting ? 1 : 0;
      cfg_sym_->Slot(id) = a;
      cfg_hid_->Slot(id) = hid;
    });
    if (res.full) return ReportFull(*cfg_ids_, kMsgMaxConfigs);
    w.cfg_cache.keys.Intern(w.cfg_key);
    if (res.inserted) {
      if (cfg_acc_->Get(res.id) != 0) {
        TryMarkFound(res.id);
      } else if (antichain_enabled_) {
        // Only the interning winner offers the config, so each id meets the
        // antichain exactly once. The tombstone is advisory: a peer that
        // steps a config before observing its tombstone does sound extra
        // work (§3e), so no ordering beyond the stripe lock is needed.
        w.displaced.clear();
        const bool pruned = antichain_.Insert(
            res.id, cfg_ids_->Get(res.id),
            [this](std::span<const int> x, std::span<const int> y) {
              return DominatesP(x, y);
            },
            &w.displaced);
        if (pruned) {
          tombs_->Set(res.id);
          ++w.pruned;
        } else {
          for (const int old : w.displaced) {
            if (tombs_->Set(old)) ++w.displaced_count;
          }
        }
      }
    }
    return true;
  }

  // Same subsumption order as the sequential engine (§3e): exact match on
  // existential coordinates, ⊇ per plain det slot, ⊆ per complemented one.
  bool DominatesP(std::span<const int> x, std::span<const int> y) const {
    for (int i = 0; i < num_components_; ++i) {
      const int d = det_slot_[static_cast<std::size_t>(i)];
      const int xi = x[static_cast<std::size_t>(i)];
      const int yi = y[static_cast<std::size_t>(i)];
      if (d < 0) {
        if (xi != yi) return false;
        continue;
      }
      if (xi == yi) continue;
      const DetGlobal& dc = det_comps_[static_cast<std::size_t>(d)];
      const bool complement =
          spec_.components()[static_cast<std::size_t>(dc.component)]
              .complement;
      const AdaptiveStateSet& xm = dc.masks->Get(xi);
      const AdaptiveStateSet& ym = dc.masks->Get(yi);
      if (!(complement ? ym.ContainsAll(xm) : xm.ContainsAll(ym))) {
        return false;
      }
    }
    return true;
  }

  bool TryEmit(WorkerCtx& w, int a, int hid) {
    SymbolGlobal& sym = symbols_[static_cast<std::size_t>(a)];
    const std::span<const int> h = sym.h_ids->Get(hid);  // pointer-stable
    auto& key = w.cfg_key;
    key.assign(static_cast<std::size_t>(num_components_), -1);
    for (int i = 0; i < num_components_; ++i) {
      if (det_slot_[static_cast<std::size_t>(i)] >= 0) continue;
      const HorizontalSpace& sp = sym.spaces[static_cast<std::size_t>(i)];
      const int g = h[static_cast<std::size_t>(i)];
      if (!sp.final_mask.Test(g)) return true;
      key[static_cast<std::size_t>(i)] = sp.owner[static_cast<std::size_t>(g)];
    }
    for (int i = 0; i < num_components_; ++i) {
      const int d = det_slot_[static_cast<std::size_t>(i)];
      if (d < 0) continue;
      const int target = TargetOfP(w, a, d, h[static_cast<std::size_t>(i)]);
      if (target < 0) return false;
      key[static_cast<std::size_t>(i)] = target;
    }
    return MintConfig(w, a, hid);
  }

  bool InternJoint(WorkerCtx& w, int a, int prev, int letter) {
    SymbolGlobal& sym = symbols_[static_cast<std::size_t>(a)];
    L1Cache& cache = w.h_cache[static_cast<std::size_t>(a)];
    if (cache.keys.Find(w.key) >= 0) return true;
    const auto res = sym.h_ids->TryIntern(w.index, w.key, [&](int id) {
      sym.h_prev->Slot(id) = prev;
      sym.h_letter->Slot(id) = letter;
      sym.h_cursor->Slot(id) = 0;
    });
    if (res.full) return ReportFull(*sym.h_ids, kMsgMaxH);
    cache.keys.Intern(w.key);
    if (res.inserted) {
      const int total = 1 + total_h_.fetch_add(1, std::memory_order_relaxed);
      if (total > max_h_) {
        Fail(ResourceExhaustedError(kMsgMaxH));
        return false;
      }
      if (!TryEmit(w, a, res.id)) return false;
      w.overflow.push_back({a, res.id});
    }
    return true;
  }

  bool EnumerateJoint(WorkerCtx& w, int a, int prev, int letter,
                      std::size_t nex) {
    auto& idx = w.odometer;
    idx.assign(nex, 0);
    while (true) {
      if (stop_.load(std::memory_order_relaxed)) return false;
      for (std::size_t j = 0; j < nex; ++j) {
        w.key[static_cast<std::size_t>(w.ex_slots[j])] = w.ex_options[j][idx[j]];
      }
      if (!InternJoint(w, a, prev, letter)) return false;
      std::size_t j = 0;
      for (; j < nex; ++j) {
        if (++idx[j] < w.ex_options[j].size()) break;
        idx[j] = 0;
      }
      if (j == nex) return true;
    }
  }

  bool SeedSymbol(WorkerCtx& w, int a) {
    SymbolGlobal& sym = symbols_[static_cast<std::size_t>(a)];
    auto& key = w.key;
    key.assign(static_cast<std::size_t>(num_components_), -1);
    w.ex_slots.clear();
    std::size_t nex = 0;
    for (int i = 0; i < num_components_; ++i) {
      const int d = det_slot_[static_cast<std::size_t>(i)];
      const HorizontalSpace& sp = sym.spaces[static_cast<std::size_t>(i)];
      if (d >= 0) {
        const int id = InternDetH(w, a, d, sp.initials);
        if (id < 0) return false;
        key[static_cast<std::size_t>(i)] = id;
        continue;
      }
      if (sp.initials.empty()) return true;  // no run roots at `a`
      if (nex == w.ex_options.size()) w.ex_options.emplace_back();
      w.ex_options[nex].assign(sp.initials.begin(), sp.initials.end());
      w.ex_slots.push_back(i);
      ++nex;
    }
    return EnumerateJoint(w, a, -1, -1, nex);
  }

  bool StepJoint(WorkerCtx& w, int a, int hid, int c) {
    SymbolGlobal& sym = symbols_[static_cast<std::size_t>(a)];
    const std::span<const int> h = sym.h_ids->Get(hid);   // pointer-stable
    const std::span<const int> cfg = cfg_ids_->Get(c);    // pointer-stable
    auto& key = w.key;
    key.assign(static_cast<std::size_t>(num_components_), -1);
    w.ex_slots.clear();
    std::size_t nex = 0;
    for (int i = 0; i < num_components_; ++i) {
      const int d = det_slot_[static_cast<std::size_t>(i)];
      if (d >= 0) {
        const int next = StepDetP(w, a, d, h[static_cast<std::size_t>(i)],
                                  cfg[static_cast<std::size_t>(i)]);
        if (next < 0) return false;
        key[static_cast<std::size_t>(i)] = next;
        continue;
      }
      const HorizontalSpace& sp = sym.spaces[static_cast<std::size_t>(i)];
      if (nex == w.ex_options.size()) w.ex_options.emplace_back();
      auto& succ = w.ex_options[nex];
      succ.clear();
      sp.ForEachEdge(h[static_cast<std::size_t>(i)], [&](int symq, int to) {
        if (symq == cfg[static_cast<std::size_t>(i)]) succ.push_back(to);
      });
      if (succ.empty()) return true;  // letter can't extend this run
      std::sort(succ.begin(), succ.end());
      succ.erase(std::unique(succ.begin(), succ.end()), succ.end());
      w.ex_slots.push_back(i);
      ++nex;
    }
    return EnumerateJoint(w, a, hid, c, nex);
  }

  // ---- epochs ------------------------------------------------------------

  // Runs preload + seeding single-threaded on worker 0, growing tables and
  // retrying (idempotently) under pressure.
  Status Bootstrap() {
    while (true) {
      bool ok = Preload();
      for (int a = 0; ok && a < num_symbols_; ++a) {
        if (found_.load(std::memory_order_relaxed) >= 0) break;
        ok = SeedSymbol(*workers_[0], a);
      }
      Status failed = TakeFail();
      if (!failed.ok()) return failed;
      if (ok || found_.load(std::memory_order_relaxed) >= 0) {
        return Status::Ok();
      }
      XTC_CHECK(pressure_.load(std::memory_order_relaxed));
      GrowTables();
      pressure_.store(false, std::memory_order_relaxed);
      stop_.store(false, std::memory_order_relaxed);
    }
  }

  bool Preload() {
    if (options_.resume == nullptr ||
        options_.resume->det_tables.size() != det_comps_.size()) {
      return true;
    }
    resumed_ = true;
    for (std::size_t d = 0; d < det_comps_.size(); ++d) {
      const LazySnapshot::DetTable& table = options_.resume->det_tables[d];
      const Nta* nta =
          spec_.components()[static_cast<std::size_t>(det_comps_[d].component)]
              .nta;
      for (std::size_t i = 0; i + 1 < table.offsets.size(); ++i) {
        const std::span<const int> subset(table.pool.data() + table.offsets[i],
                                          table.offsets[i + 1] -
                                              table.offsets[i]);
        bool valid = true;
        for (int q : subset) valid = valid && q >= 0 && q < nta->num_states();
        if (valid &&
            InternDetState(*workers_[0], static_cast<int>(d), subset) < 0) {
          return false;
        }
      }
    }
    return true;
  }

  // Deals every h-state with pending cursor work into per-worker queues by
  // key-hash ownership; returns false at the fixpoint. Runs between epochs,
  // so the plain cursor reads are ordered by the barrier handshake.
  bool BuildQueues() {
    snapshot_ = cfg_ids_->size();
    for (const auto& w : workers_) {
      w->queue.clear();
      w->qhead.store(0, std::memory_order_relaxed);
      w->overflow.clear();  // leftovers are re-derived from cursors below
      w->epoch_steps = 0;
    }
    bool any = false;
    for (int a = 0; a < num_symbols_; ++a) {
      SymbolGlobal& sym = symbols_[static_cast<std::size_t>(a)];
      const int nh = sym.h_ids->size();
      for (int hid = 0; hid < nh; ++hid) {
        if (sym.h_cursor->Get(hid) >= snapshot_) continue;
        const std::size_t owner =
            sym.h_ids->HashOf(hid) % workers_.size();
        workers_[owner]->queue.push_back({a, hid});
        any = true;
      }
    }
    return any;
  }

  static bool ClaimFrom(WorkerCtx& victim, Item* item) {
    const std::size_t i =
        victim.qhead.fetch_add(1, std::memory_order_acq_rel);
    if (i >= victim.queue.size()) return false;
    *item = victim.queue[i];
    return true;
  }

  // Drains one (h-state, cursor window) item. Returns false when this
  // worker should retire from the epoch; un-advanced cursor positions are
  // re-dealt at the next barrier, and a step aborted mid-way left no
  // partial state (every publication is idempotent), so retrying it is
  // sound.
  bool ProcessItem(WorkerCtx& w, const Item& item) {
    SymbolGlobal& sym = symbols_[static_cast<std::size_t>(item.sym)];
    int& cursor = sym.h_cursor->Slot(item.hid);
    while (cursor < snapshot_) {
      if (stop_.load(std::memory_order_relaxed)) return false;
      // Tombstoned configs never act as letters; skipping costs no step.
      if (antichain_enabled_ && tombs_->Test(cursor)) {
        ++cursor;
        continue;
      }
      if (!StepJoint(w, item.sym, item.hid, cursor)) return false;
      ++cursor;
      ++w.epoch_steps;
      if ((w.epoch_steps & (kDeadlineStride - 1)) == 0) PollDeadline();
      if (w.epoch_steps >= kEpochQuantum) return false;
    }
    return true;
  }

  void EpochBody(WorkerCtx& w) {
    const int n = static_cast<int>(workers_.size());
    while (!stop_.load(std::memory_order_relaxed)) {
      Item item;
      bool got = ClaimFrom(w, &item);
      if (!got && !w.overflow.empty()) {
        item = w.overflow.back();
        w.overflow.pop_back();
        got = true;
      }
      for (int v = 1; !got && v < n; ++v) {
        got = ClaimFrom(*workers_[static_cast<std::size_t>(
                            (w.index + v) % n)],
                        &item);
      }
      if (!got) return;  // nothing visible; the barrier rescan catches strays
      if (!ProcessItem(w, item)) return;
    }
  }

  void EnsurePool() {
    if (!pool_.empty()) return;
    pool_.reserve(static_cast<std::size_t>(nthreads_ - 1));
    for (int w = 1; w < nthreads_; ++w) {
      pool_.emplace_back([this, w] { PoolMain(w); });
    }
  }

  void ShutdownPool() {
    if (pool_.empty()) return;
    {
      std::lock_guard<std::mutex> lock(sync_mu_);
      shutdown_ = true;
    }
    sync_cv_.notify_all();
    for (std::thread& t : pool_) t.join();
    pool_.clear();
    shutdown_ = false;
  }

  void PoolMain(int w) {
    int seen = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(sync_mu_);
        sync_cv_.wait(lock,
                      [&] { return shutdown_ || epoch_generation_ > seen; });
        if (shutdown_) return;
        seen = epoch_generation_;
      }
      EpochBody(*workers_[static_cast<std::size_t>(w)]);
      {
        std::lock_guard<std::mutex> lock(sync_mu_);
        --epoch_running_;
      }
      sync_cv_.notify_all();
    }
  }

  // One barrier-to-barrier round: release the pool, participate as worker
  // 0, wait for quiescence. The mutex handshake is what orders all the
  // plain in-epoch state (queues, cursors, step counters) across epochs.
  void RunEpoch() {
    EnsurePool();
    {
      std::lock_guard<std::mutex> lock(sync_mu_);
      epoch_running_ = nthreads_ - 1;
      ++epoch_generation_;
    }
    sync_cv_.notify_all();
    EpochBody(*workers_[0]);
    std::unique_lock<std::mutex> lock(sync_mu_);
    sync_cv_.wait(lock, [&] { return epoch_running_ == 0; });
  }

  // ---- witness -----------------------------------------------------------

  // Rebuilds the witness tree after the join, walking mint back-pointers.
  // Every child config consumed along a minting chain was interned before
  // the parent config's id was assigned, so children have strictly smaller
  // ids and a single ascending pass builds bottom-up.
  int BuildWitness(int root) {
    std::vector<char> mark(static_cast<std::size_t>(root) + 1, 0);
    std::vector<int> wit(static_cast<std::size_t>(root) + 1, -1);
    std::vector<int> needed;
    std::vector<int> stack = {root};
    mark[static_cast<std::size_t>(root)] = 1;
    while (!stack.empty()) {
      const int c = stack.back();
      stack.pop_back();
      needed.push_back(c);
      const SymbolGlobal& sym =
          symbols_[static_cast<std::size_t>(cfg_sym_->Get(c))];
      for (int cur = cfg_hid_->Get(c); sym.h_prev->Get(cur) >= 0;
           cur = sym.h_prev->Get(cur)) {
        const int child = sym.h_letter->Get(cur);
        XTC_CHECK(child >= 0 && child < c);
        if (!mark[static_cast<std::size_t>(child)]) {
          mark[static_cast<std::size_t>(child)] = 1;
          stack.push_back(child);
        }
      }
    }
    std::sort(needed.begin(), needed.end());
    std::vector<int> children;
    for (const int c : needed) {
      const int a = cfg_sym_->Get(c);
      const SymbolGlobal& sym = symbols_[static_cast<std::size_t>(a)];
      children.clear();
      for (int cur = cfg_hid_->Get(c); sym.h_prev->Get(cur) >= 0;
           cur = sym.h_prev->Get(cur)) {
        children.push_back(
            wit[static_cast<std::size_t>(sym.h_letter->Get(cur))]);
      }
      std::reverse(children.begin(), children.end());
      wit[static_cast<std::size_t>(c)] = forest_->Make(a, children);
    }
    return wit[static_cast<std::size_t>(root)];
  }

  // ---- state -------------------------------------------------------------

  const LazyProductSpec& spec_;
  SharedForest* forest_;
  const LazyOptions& options_;
  int nthreads_ = 2;
  int num_components_ = 0;
  int num_symbols_ = 0;
  int max_configs_ = 1;
  int max_h_ = 1;
  std::optional<std::chrono::steady_clock::time_point> deadline_;

  std::vector<int> det_slot_;  ///< component -> det slot, -1 if existential
  std::vector<DetGlobal> det_comps_;
  std::vector<SymbolGlobal> symbols_;
  std::unique_ptr<ConcurrentInterner> cfg_ids_;
  std::unique_ptr<ConcurrentLog<unsigned char>> cfg_acc_;
  std::unique_ptr<ConcurrentLog<int>> cfg_sym_;  ///< minting symbol
  std::unique_ptr<ConcurrentLog<int>> cfg_hid_;  ///< minting joint h-state

  bool antichain_enabled_ = false;
  int dense_threshold_ = kDefaultDenseThreshold;
  SharedAntichainIndex antichain_;
  std::unique_ptr<TombstoneLog> tombs_;  ///< config id -> subsumed

  std::vector<std::unique_ptr<WorkerCtx>> workers_;
  std::vector<std::thread> pool_;
  std::mutex sync_mu_;
  std::condition_variable sync_cv_;
  int epoch_generation_ = 0;
  int epoch_running_ = 0;
  bool shutdown_ = false;
  int snapshot_ = 0;  ///< config count this epoch steps against

  std::atomic<bool> stop_{false};
  std::atomic<bool> pressure_{false};
  std::atomic<int> found_{-1};
  std::atomic<int> total_h_{0};
  std::mutex fail_mu_;
  Status fail_status_;

  std::uint64_t steps_total_ = 0;
  bool resumed_ = false;
  LazyStats stats_;
};

}  // namespace

StatusOr<EmptinessOutcome> ParallelLazyEmptiness(const LazyProductSpec& spec,
                                                 SharedForest* forest,
                                                 const LazyOptions& options) {
  if (spec.components().empty()) {
    return InvalidArgumentError("empty emptiness product spec");
  }
  ParallelEngine engine(spec, forest, options);
  return engine.Run();
}

}  // namespace xtc
