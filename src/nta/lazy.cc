#include "src/nta/lazy.h"

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "src/base/antichain.h"
#include "src/base/interner.h"
#include "src/base/logging.h"
#include "src/base/sparse_state_set.h"
#include "src/base/state_set.h"
#include "src/nta/analysis.h"
#include "src/nta/determinize.h"
#include "src/nta/horizontal_space.h"
#include "src/nta/lazy_parallel.h"
#include "src/nta/product.h"

namespace xtc {
namespace {

// The frontier engine. One instance per query, single-threaded (it owns
// SubsetInterners; see src/base/README.md).
//
// A *configuration* is a tuple with one coordinate per spec component: the
// root state of one run for an existential component, the exact reachable
// state subset (an interned det-state id) for a determinized component. A
// tree t reaches config c iff every existential coordinate is reachable by
// some run of its component on t and every det coordinate equals det(t) of
// its component — so configs are exactly the product states bottom-up
// reachability would visit, discovered in dependency order.
//
// Per symbol a, a *joint h-state* is a tuple of horizontal positions: a
// single global NFA state (HorizontalSpace embedding) per existential
// component, an interned subset of global states per determinized one.
// Stepping a joint h-state by a config advances every coordinate over the
// same child; a joint h-state whose existential coordinates are all final
// mints the parent config (owner states / TargetSubset). Each h-state
// keeps a cursor into the global config list so the saturation loop only
// expands (h, config) pairs once, and a back-pointer (previous h, config
// consumed), from which a witness tree for each minted config is assembled
// in the SharedForest.
class LazyEngine {
 public:
  LazyEngine(const LazyProductSpec& spec, SharedForest* forest,
             const LazyOptions& options)
      : spec_(spec), forest_(forest), options_(options) {
    const auto& comps = spec.components();
    num_components_ = static_cast<int>(comps.size());
    num_symbols_ = spec.num_symbols();
    det_slot_.assign(comps.size(), -1);
    for (int i = 0; i < num_components_; ++i) {
      XTC_CHECK_EQ(comps[static_cast<std::size_t>(i)].nta->num_symbols(),
                   num_symbols_);
      if (comps[static_cast<std::size_t>(i)].determinize) {
        det_slot_[static_cast<std::size_t>(i)] =
            static_cast<int>(det_comps_.size());
        det_comps_.emplace_back();
        det_comps_.back().component = i;
      }
    }
    symbols_.resize(static_cast<std::size_t>(num_symbols_));
    for (int a = 0; a < num_symbols_; ++a) {
      SymbolData& sym = symbols_[static_cast<std::size_t>(a)];
      sym.spaces.reserve(comps.size());
      for (int i = 0; i < num_components_; ++i) {
        sym.spaces.push_back(HorizontalSpace::Build(
            *comps[static_cast<std::size_t>(i)].nta, a));
      }
      sym.det.resize(det_comps_.size());
    }
    dense_threshold_ = options.dense_threshold >= 1 ? options.dense_threshold
                                                    : kDefaultDenseThreshold;
    // Antichain pruning only relaxes det coordinates; a purely existential
    // product has nothing to relax (interner equality dedup is already the
    // maximal sound pruning there), so skip the index entirely.
    antichain_enabled_ = options.antichain && !det_comps_.empty();
    if (antichain_enabled_) {
      std::vector<int> ex_positions;
      for (int i = 0; i < num_components_; ++i) {
        if (det_slot_[static_cast<std::size_t>(i)] < 0) {
          ex_positions.push_back(i);
        }
      }
      antichain_.Configure(std::move(ex_positions));
    }
  }

  StatusOr<EmptinessOutcome> Run() {
    Preload();
    for (int a = 0; a < num_symbols_ && found_ < 0; ++a) {
      XTC_RETURN_IF_ERROR(SeedSymbol(a));
    }
    bool changed = true;
    while (changed && found_ < 0) {
      changed = false;
      for (int a = 0; a < num_symbols_ && found_ < 0; ++a) {
        SymbolData& sym = symbols_[static_cast<std::size_t>(a)];
        // h_prev grows while we iterate: new h-states minted this pass are
        // expanded in this same pass.
        for (int hi = 0;
             hi < static_cast<int>(sym.h_prev.size()) && found_ < 0; ++hi) {
          while (sym.h_cursor[static_cast<std::size_t>(hi)] <
                     static_cast<int>(cfg_accepting_.size()) &&
                 found_ < 0) {
            const int c = sym.h_cursor[static_cast<std::size_t>(hi)]++;
            // Subsumed configs never act as letters: skipping them (without
            // charging a step or re-arming `changed`) is exactly the pruning
            // DESIGN.md §3e argues sound.
            if (antichain_enabled_ &&
                cfg_pruned_[static_cast<std::size_t>(c)] != 0) {
              continue;
            }
            XTC_RETURN_IF_ERROR(BudgetCheck(options_.budget, "LazyEmptiness"));
            ++stats_.steps;
            XTC_RETURN_IF_ERROR(StepJoint(a, hi, c));
            changed = true;
          }
        }
      }
    }

    EmptinessOutcome out;
    out.empty = found_ < 0;
    if (found_ >= 0 && forest_ != nullptr) {
      out.witness = cfg_witness_[static_cast<std::size_t>(found_)];
    }
    stats_.early_exit = found_ >= 0;
    for (const DetComponent& dc : det_comps_) {
      stats_.det_states += static_cast<std::uint64_t>(dc.ids.size());
    }
    out.stats = stats_;
    if (options_.export_snapshot != nullptr) {
      // Export only on clean completion (this line is unreachable on any
      // budget/cap error path), so snapshots are always trustworthy and a
      // failed retry never observes partial tables.
      LazySnapshot snap;
      snap.det_tables.resize(det_comps_.size());
      for (std::size_t d = 0; d < det_comps_.size(); ++d) {
        LazySnapshot::DetTable& table = snap.det_tables[d];
        for (int id = 0; id < det_comps_[d].ids.size(); ++id) {
          const std::span<const int> subset = det_comps_[d].ids.Get(id);
          table.pool.insert(table.pool.end(), subset.begin(), subset.end());
          table.offsets.push_back(table.pool.size());
        }
      }
      snap.complete = true;
      snap.empty = out.empty;
      snap.antichain = antichain_enabled_;
      snap.pruned_configs =
          stats_.pruned_configs + stats_.displaced_configs;
      *options_.export_snapshot = std::move(snap);
    }
    return out;
  }

 private:
  // Interned state subsets of one determinized component's Q, shared across
  // symbols; ids are the det coordinates of configs.
  struct DetComponent {
    int component = -1;  ///< index into spec components
    SubsetInterner ids;  ///< subsets of the component's Q
    /// id -> subset mask (StepDet letter tests, antichain subsumption);
    /// dense words or sorted-sparse depending on the component's universe
    /// vs dense_threshold_.
    std::vector<AdaptiveStateSet> masks;
    std::vector<bool> accepting;  ///< id -> acceptance after polarity flip
  };

  // Per (symbol, determinized component): interned subsets of the symbol's
  // global horizontal space, with a memoized deterministic step relation.
  struct DetH {
    SubsetInterner ids;        ///< subsets of global ids
    std::vector<int> target;   ///< hsub -> det-state id of TargetSubset (-1
                               ///< until first needed)
    SubsetInterner memo_keys;  ///< {hsub, det-state letter} pairs
    std::vector<int> memo;     ///< pair id -> successor hsub
  };

  struct SymbolData {
    std::vector<HorizontalSpace> spaces;  ///< per component
    std::vector<DetH> det;                ///< per det slot
    SubsetInterner h_ids;                 ///< joint h tuples (k ints)
    std::vector<int> h_prev;              ///< back-pointer h (-1 = initial)
    std::vector<int> h_letter;            ///< config consumed (-1 = initial)
    std::vector<int> h_cursor;            ///< next config id to step by
  };

  void Preload() {
    if (options_.resume == nullptr ||
        options_.resume->det_tables.size() != det_comps_.size()) {
      return;
    }
    stats_.resumed = true;
    for (std::size_t d = 0; d < det_comps_.size(); ++d) {
      const LazySnapshot::DetTable& table = options_.resume->det_tables[d];
      const Nta* nta =
          spec_.components()[static_cast<std::size_t>(det_comps_[d].component)]
              .nta;
      for (std::size_t i = 0; i + 1 < table.offsets.size(); ++i) {
        const std::span<const int> subset(table.pool.data() + table.offsets[i],
                                          table.offsets[i + 1] -
                                              table.offsets[i]);
        bool valid = true;
        for (int q : subset) valid = valid && q >= 0 && q < nta->num_states();
        if (valid) InternDetState(static_cast<int>(d), subset);
      }
    }
  }

  int InternDetState(int d, std::span<const int> subset) {
    DetComponent& dc = det_comps_[static_cast<std::size_t>(d)];
    const int id = dc.ids.Intern(subset);
    if (id < static_cast<int>(dc.masks.size())) return id;
    const LazyComponent& comp =
        spec_.components()[static_cast<std::size_t>(dc.component)];
    bool any_final = false;
    for (int q : subset) any_final = any_final || comp.nta->final(q);
    // Interner keys are sorted subsets, so the adaptive set can take the
    // span as-is.
    dc.masks.emplace_back(subset, comp.nta->num_states(), dense_threshold_);
    dc.accepting.push_back(comp.complement ? !any_final : any_final);
    return id;
  }

  int InternDetH(int a, int d, std::span<const int> subset) {
    DetH& dh = symbols_[static_cast<std::size_t>(a)]
                   .det[static_cast<std::size_t>(d)];
    const int id = dh.ids.Intern(subset);
    if (id == static_cast<int>(dh.target.size())) dh.target.push_back(-1);
    return id;
  }

  // The det-state the subset-of-globals `hsub` emits (memoized).
  int TargetOf(int a, int d, int hsub) {
    SymbolData& sym = symbols_[static_cast<std::size_t>(a)];
    DetH& dh = sym.det[static_cast<std::size_t>(d)];
    if (dh.target[static_cast<std::size_t>(hsub)] < 0) {
      const int comp = det_comps_[static_cast<std::size_t>(d)].component;
      const std::span<const int> span = dh.ids.Get(hsub);
      const std::vector<int> members(span.begin(), span.end());
      dh.target[static_cast<std::size_t>(hsub)] = InternDetState(
          d, TargetSubset(sym.spaces[static_cast<std::size_t>(comp)], members));
    }
    return dh.target[static_cast<std::size_t>(hsub)];
  }

  // Deterministic subset step of a det coordinate by a det-state letter.
  StatusOr<int> StepDet(int a, int d, int hsub, int det_letter) {
    SymbolData& sym = symbols_[static_cast<std::size_t>(a)];
    DetH& dh = sym.det[static_cast<std::size_t>(d)];
    const int pair_key[2] = {hsub, det_letter};
    const int pid = dh.memo_keys.Intern(pair_key);
    if (pid < static_cast<int>(dh.memo.size())) return dh.memo[pid];
    const int comp = det_comps_[static_cast<std::size_t>(d)].component;
    const HorizontalSpace& sp = sym.spaces[static_cast<std::size_t>(comp)];
    const AdaptiveStateSet& mask =
        det_comps_[static_cast<std::size_t>(d)]
            .masks[static_cast<std::size_t>(det_letter)];
    const std::span<const int> span = dh.ids.Get(hsub);
    const std::vector<int> members(span.begin(), span.end());
    scratch_.EnsureUniverse(sp.total);
    for (int g : members) {
      sp.ForEachEdge(g, [&](int symq, int to) {
        if (mask.Test(symq)) scratch_.Add(to);
      });
    }
    scratch_.ExtractSortedAndClear(&step_buf_);
    const int result = InternDetH(a, d, step_buf_);
    dh.memo.push_back(result);
    return result;
  }

  // Interns a joint h tuple, recording back-pointers and minting the parent
  // config when every existential coordinate is horizontally final.
  Status InternJoint(int a, std::span<const int> key, int prev, int letter) {
    SymbolData& sym = symbols_[static_cast<std::size_t>(a)];
    const int id = sym.h_ids.Intern(key);
    if (id < static_cast<int>(sym.h_prev.size())) return Status::Ok();
    if (total_h_ >= options_.max_h_configs) {
      return ResourceExhaustedError(
          "lazy emptiness exceeded max_h_configs horizontal states");
    }
    ++total_h_;
    ++stats_.h_configs;
    sym.h_prev.push_back(prev);
    sym.h_letter.push_back(letter);
    sym.h_cursor.push_back(0);
    return TryEmit(a, id);
  }

  Status TryEmit(int a, int hid) {
    SymbolData& sym = symbols_[static_cast<std::size_t>(a)];
    // Copy out: interners below may grow their pools.
    const std::span<const int> span = sym.h_ids.Get(hid);
    const std::vector<int> h(span.begin(), span.end());
    std::vector<int> key(static_cast<std::size_t>(num_components_));
    for (int i = 0; i < num_components_; ++i) {
      if (det_slot_[static_cast<std::size_t>(i)] >= 0) continue;
      const HorizontalSpace& sp = sym.spaces[static_cast<std::size_t>(i)];
      const int g = h[static_cast<std::size_t>(i)];
      if (!sp.final_mask.Test(g)) return Status::Ok();
      key[static_cast<std::size_t>(i)] = sp.owner[static_cast<std::size_t>(g)];
    }
    for (int i = 0; i < num_components_; ++i) {
      const int d = det_slot_[static_cast<std::size_t>(i)];
      if (d >= 0) {
        key[static_cast<std::size_t>(i)] =
            TargetOf(a, d, h[static_cast<std::size_t>(i)]);
      }
    }
    return MintConfig(a, hid, key);
  }

  Status MintConfig(int a, int hid, std::span<const int> key) {
    const int id = cfg_ids_.Intern(key);
    if (id < static_cast<int>(cfg_accepting_.size())) return Status::Ok();
    if (static_cast<int>(cfg_accepting_.size()) >= options_.max_configs) {
      return ResourceExhaustedError(
          "lazy emptiness exceeded max_configs product configurations");
    }
    ++stats_.configs;
    bool accepting = true;
    for (int i = 0; i < num_components_ && accepting; ++i) {
      const int d = det_slot_[static_cast<std::size_t>(i)];
      const int coord = key[static_cast<std::size_t>(i)];
      accepting =
          d < 0 ? spec_.components()[static_cast<std::size_t>(i)].nta->final(
                      coord)
                : static_cast<bool>(
                      det_comps_[static_cast<std::size_t>(d)]
                          .accepting[static_cast<std::size_t>(coord)]);
    }
    cfg_accepting_.push_back(accepting);
    if (forest_ != nullptr) {
      // Children are the configs consumed along the back-pointer chain (in
      // reverse); their witnesses were recorded when they were minted.
      SymbolData& sym = symbols_[static_cast<std::size_t>(a)];
      std::vector<int> children;
      for (int cur = hid; sym.h_prev[static_cast<std::size_t>(cur)] >= 0;
           cur = sym.h_prev[static_cast<std::size_t>(cur)]) {
        children.push_back(
            cfg_witness_[static_cast<std::size_t>(
                sym.h_letter[static_cast<std::size_t>(cur)])]);
      }
      std::reverse(children.begin(), children.end());
      cfg_witness_.push_back(forest_->Make(a, children));
    } else {
      cfg_witness_.push_back(-1);
    }
    cfg_pruned_.push_back(0);
    if (accepting) {
      // Acceptance decides the run before the antichain ever sees the
      // config, so pruning cannot delay or change the early exit.
      if (found_ < 0) found_ = id;
      return Status::Ok();
    }
    if (antichain_enabled_) {
      displaced_buf_.clear();
      const bool pruned = antichain_.Insert(
          id, key,
          [this](std::span<const int> x, std::span<const int> y) {
            return Dominates(x, y);
          },
          &displaced_buf_);
      if (pruned) {
        cfg_pruned_.back() = 1;
        ++stats_.pruned_configs;
      } else {
        for (const int old : displaced_buf_) {
          // Witness/back-pointer data of displaced configs stays intact —
          // only their remaining frontier work is skipped.
          cfg_pruned_[static_cast<std::size_t>(old)] = 1;
          ++stats_.displaced_configs;
        }
      }
    }
    return Status::Ok();
  }

  // Whether the config keyed `x` subsumes the config keyed `y` (§3e):
  // existential coordinates must match exactly; each determinized subset
  // coordinate of x must be ⊇ its counterpart in y for plain polarity
  // (acceptance = some tracked run accepts, upward-closed) and ⊆ for
  // complemented polarity (acceptance = no tracked run accepts,
  // downward-closed).
  bool Dominates(std::span<const int> x, std::span<const int> y) const {
    for (int i = 0; i < num_components_; ++i) {
      const int d = det_slot_[static_cast<std::size_t>(i)];
      const int xi = x[static_cast<std::size_t>(i)];
      const int yi = y[static_cast<std::size_t>(i)];
      if (d < 0) {
        if (xi != yi) return false;
        continue;
      }
      if (xi == yi) continue;
      const DetComponent& dc = det_comps_[static_cast<std::size_t>(d)];
      const bool complement =
          spec_.components()[static_cast<std::size_t>(dc.component)]
              .complement;
      const AdaptiveStateSet& xm = dc.masks[static_cast<std::size_t>(xi)];
      const AdaptiveStateSet& ym = dc.masks[static_cast<std::size_t>(yi)];
      if (!(complement ? ym.ContainsAll(xm) : xm.ContainsAll(ym))) {
        return false;
      }
    }
    return true;
  }

  // Cross product of the existential successor choices; det coordinates in
  // `key` are already fixed.
  Status EnumerateJoint(int a, std::vector<int>* key,
                        const std::vector<int>& ex_slots,
                        const std::vector<std::vector<int>>& options,
                        int prev, int letter) {
    std::vector<std::size_t> idx(ex_slots.size(), 0);
    while (true) {
      for (std::size_t j = 0; j < ex_slots.size(); ++j) {
        (*key)[static_cast<std::size_t>(ex_slots[j])] = options[j][idx[j]];
      }
      XTC_RETURN_IF_ERROR(InternJoint(a, *key, prev, letter));
      if (found_ >= 0) return Status::Ok();
      std::size_t j = 0;
      for (; j < idx.size(); ++j) {
        if (++idx[j] < options[j].size()) break;
        idx[j] = 0;
      }
      if (j == idx.size()) return Status::Ok();
    }
  }

  Status SeedSymbol(int a) {
    SymbolData& sym = symbols_[static_cast<std::size_t>(a)];
    std::vector<int> key(static_cast<std::size_t>(num_components_), -1);
    std::vector<std::vector<int>> options;
    std::vector<int> ex_slots;
    for (int i = 0; i < num_components_; ++i) {
      const int d = det_slot_[static_cast<std::size_t>(i)];
      const HorizontalSpace& sp = sym.spaces[static_cast<std::size_t>(i)];
      if (d >= 0) {
        key[static_cast<std::size_t>(i)] = InternDetH(a, d, sp.initials);
        continue;
      }
      if (sp.initials.empty()) return Status::Ok();  // no run roots at `a`
      ex_slots.push_back(i);
      options.push_back(sp.initials);
    }
    return EnumerateJoint(a, &key, ex_slots, options, -1, -1);
  }

  Status StepJoint(int a, int hi, int c) {
    SymbolData& sym = symbols_[static_cast<std::size_t>(a)];
    // Copy out: successor interning moves the pools under these spans.
    const std::span<const int> hspan = sym.h_ids.Get(hi);
    const std::vector<int> h(hspan.begin(), hspan.end());
    const std::span<const int> cspan = cfg_ids_.Get(c);
    const std::vector<int> cfg(cspan.begin(), cspan.end());

    std::vector<int> key(static_cast<std::size_t>(num_components_), -1);
    std::vector<std::vector<int>> options;
    std::vector<int> ex_slots;
    for (int i = 0; i < num_components_; ++i) {
      const int d = det_slot_[static_cast<std::size_t>(i)];
      if (d >= 0) {
        XTC_ASSIGN_OR_RETURN(key[static_cast<std::size_t>(i)],
                             StepDet(a, d, h[static_cast<std::size_t>(i)],
                                     cfg[static_cast<std::size_t>(i)]));
        continue;
      }
      const HorizontalSpace& sp = sym.spaces[static_cast<std::size_t>(i)];
      std::vector<int> succ;
      sp.ForEachEdge(h[static_cast<std::size_t>(i)], [&](int symq, int to) {
        if (symq == cfg[static_cast<std::size_t>(i)]) succ.push_back(to);
      });
      if (succ.empty()) return Status::Ok();  // letter can't extend this run
      std::sort(succ.begin(), succ.end());
      succ.erase(std::unique(succ.begin(), succ.end()), succ.end());
      ex_slots.push_back(i);
      options.push_back(std::move(succ));
    }
    return EnumerateJoint(a, &key, ex_slots, options, hi, c);
  }

  const LazyProductSpec& spec_;
  SharedForest* forest_;
  const LazyOptions& options_;
  int num_components_ = 0;
  int num_symbols_ = 0;
  std::vector<int> det_slot_;  ///< component -> det slot, -1 if existential
  std::vector<DetComponent> det_comps_;
  std::vector<SymbolData> symbols_;
  SubsetInterner cfg_ids_;  ///< global config tuples (k ints)
  std::vector<bool> cfg_accepting_;
  std::vector<int> cfg_witness_;  ///< forest id per config, -1 w/o forest
  std::vector<char> cfg_pruned_;  ///< config id -> subsumed, skip as letter
  AntichainIndex antichain_;
  std::vector<int> displaced_buf_;  ///< reused Insert out-param
  bool antichain_enabled_ = false;
  int dense_threshold_ = kDefaultDenseThreshold;
  ScratchSet scratch_;        ///< StepDet successor accumulator
  std::vector<int> step_buf_;  ///< reused ExtractSortedAndClear target
  int total_h_ = 0;
  int found_ = -1;  ///< first accepting config, -1 while none
  LazyStats stats_;
};

class LazyOracle : public EmptinessOracle {
 public:
  explicit LazyOracle(const LazyOptions& options) : options_(options) {}
  const char* name() const override { return "lazy"; }
  StatusOr<EmptinessOutcome> Check(const LazyProductSpec& spec,
                                   SharedForest* forest) override {
    return LazyEmptiness(spec, forest, options_);
  }

 private:
  LazyOptions options_;
};

class EagerOracle : public EmptinessOracle {
 public:
  explicit EagerOracle(const LazyOptions& options) : options_(options) {}
  const char* name() const override { return "eager"; }
  StatusOr<EmptinessOutcome> Check(const LazyProductSpec& spec,
                                   SharedForest* forest) override {
    return EagerEmptiness(spec, forest, options_);
  }

 private:
  LazyOptions options_;
};

}  // namespace

std::size_t LazySnapshot::ApproxBytes() const {
  std::size_t bytes = sizeof(LazySnapshot);
  for (const DetTable& table : det_tables) {
    bytes += sizeof(DetTable) + table.pool.capacity() * sizeof(int) +
             table.offsets.capacity() * sizeof(std::size_t);
  }
  return bytes;
}

StatusOr<EmptinessOutcome> LazyEmptiness(const LazyProductSpec& spec,
                                         SharedForest* forest,
                                         const LazyOptions& options) {
  if (spec.components().empty()) {
    return InvalidArgumentError("empty emptiness product spec");
  }
  if (options.resume != nullptr && options.resume->complete) {
    // The snapshot's verdict is final; only a witness request for a
    // non-empty product needs a (warm-started) re-exploration.
    const bool need_witness = forest != nullptr && !options.resume->empty;
    if (!need_witness) {
      EmptinessOutcome out;
      out.empty = options.resume->empty;
      out.stats.resumed = true;
      if (options.export_snapshot != nullptr) {
        *options.export_snapshot = *options.resume;
      }
      return out;
    }
  }
  if (options.threads > 1) {
    // The parallel engine shares the resume short-circuit above; everything
    // past this point is the same contract, sharded across a worker pool.
    return ParallelLazyEmptiness(spec, forest, options);
  }
  LazyEngine engine(spec, forest, options);
  return engine.Run();
}

StatusOr<EmptinessOutcome> EagerEmptiness(const LazyProductSpec& spec,
                                          SharedForest* forest,
                                          const LazyOptions& options) {
  if (spec.components().empty()) {
    return InvalidArgumentError("empty emptiness product spec");
  }
  const auto& comps = spec.components();
  std::vector<Nta> owned;
  owned.reserve(comps.size());
  for (const LazyComponent& comp : comps) {
    if (!comp.determinize) {
      owned.push_back(*comp.nta);
      continue;
    }
    XTC_ASSIGN_OR_RETURN(
        Nta det,
        DeterminizeToDtac(*comp.nta, options.max_configs, options.budget));
    owned.push_back(comp.complement ? ComplementedDtac(det) : std::move(det));
  }
  Nta product = std::move(owned.front());
  for (std::size_t i = 1; i < owned.size(); ++i) {
    XTC_ASSIGN_OR_RETURN(product,
                         Intersect(product, owned[i], options.budget));
  }
  EmptinessOutcome out;
  out.stats.configs = static_cast<std::uint64_t>(product.num_states());
  out.stats.steps = static_cast<std::uint64_t>(product.Size());
  if (forest != nullptr) {
    XTC_ASSIGN_OR_RETURN(
        std::optional<int> witness,
        WitnessTree(product, forest, nullptr, options.budget));
    out.empty = !witness.has_value();
    out.witness = witness.value_or(-1);
  } else {
    XTC_ASSIGN_OR_RETURN(out.empty, IsEmptyLanguage(product, options.budget));
  }
  return out;
}

std::unique_ptr<EmptinessOracle> MakeEmptinessOracle(
    EmptinessEngine engine, const LazyOptions& options) {
  if (engine == EmptinessEngine::kEager) {
    return std::make_unique<EagerOracle>(options);
  }
  return std::make_unique<LazyOracle>(options);
}

}  // namespace xtc
