#ifndef XTC_NTA_NTA_H_
#define XTC_NTA_NTA_H_

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "src/fa/nfa.h"
#include "src/schema/dtd.h"
#include "src/tree/tree.h"

namespace xtc {

/// A non-deterministic unranked tree automaton NTA(NFA) (Definition 2):
/// states Q, final states F, and per (state, symbol) a horizontal regular
/// string language delta(q, a) over Q, represented by an NFA whose symbols
/// are the tree-automaton state ids. Missing transitions denote the empty
/// language.
class Nta {
 public:
  Nta(int num_symbols, int num_states)
      : num_symbols_(num_symbols),
        num_states_(num_states),
        final_(static_cast<std::size_t>(num_states), false) {}

  int num_symbols() const { return num_symbols_; }
  int num_states() const { return num_states_; }

  void SetFinal(int state, bool final = true);
  bool final(int state) const {
    return final_[static_cast<std::size_t>(state)];
  }

  /// Installs delta(state, symbol); the NFA's alphabet size must equal
  /// num_states().
  void SetTransition(int state, int symbol, Nfa horizontal);

  /// The horizontal language, or nullptr when it is empty.
  const Nfa* Horizontal(int state, int symbol) const;

  const std::map<std::pair<int, int>, Nfa>& transitions() const {
    return delta_;
  }

  /// Paper size measure: |Q| + |Sigma| + sum of horizontal automaton sizes.
  std::size_t Size() const;

  /// States q such that some run on `tree` labels the root q (bottom-up
  /// subset evaluation).
  std::vector<bool> AcceptingStatesAt(const Node* tree) const;

  bool Accepts(const Node* tree) const;

  /// The canonical NTA of a DTD: states are the symbols, delta(a, a) is the
  /// rule language, and the start symbol is the only final state.
  static Nta FromDtd(const Dtd& dtd);

 private:
  int num_symbols_;
  int num_states_;
  std::vector<bool> final_;
  std::map<std::pair<int, int>, Nfa> delta_;
};

}  // namespace xtc

#endif  // XTC_NTA_NTA_H_
