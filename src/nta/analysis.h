#ifndef XTC_NTA_ANALYSIS_H_
#define XTC_NTA_ANALYSIS_H_

#include <optional>
#include <vector>

#include "src/base/budget.h"
#include "src/base/state_set.h"
#include "src/base/status.h"
#include "src/nta/nta.h"
#include "src/tree/hashcons.h"

namespace xtc {

/// States q for which some tree has a run ending in q at its root — the set
/// R computed by the emptiness algorithm of Fig. A.1 (Proposition 4(2)).
/// The governed overloads below checkpoint the budget once per transition
/// examined in the fixpoint loops and fail with kResourceExhausted.
StateSet ReachableStates(const Nta& nta);
StatusOr<StateSet> ReachableStates(const Nta& nta, Budget* budget);

/// Emptiness of L(nta); PTIME (Proposition 4(2), Lemma 3 for DTAc).
bool IsEmptyLanguage(const Nta& nta);
StatusOr<bool> IsEmptyLanguage(const Nta& nta, Budget* budget);

/// Generates (a description of) a tree in L(nta) into `forest`
/// (Proposition 4(3)); nullopt when the language is empty. If
/// `per_state_ids` is non-null it receives, per state, the id of a witness
/// tree reaching that state (-1 if the state is unreachable).
std::optional<int> WitnessTree(const Nta& nta, SharedForest* forest,
                               std::vector<int>* per_state_ids = nullptr);
StatusOr<std::optional<int>> WitnessTree(const Nta& nta, SharedForest* forest,
                                         std::vector<int>* per_state_ids,
                                         Budget* budget);

/// Finiteness of L(nta); PTIME (Proposition 4(1)). Detects horizontal
/// pumping (an infinite horizontal language on a useful state) and vertical
/// pumping (a cycle in the occurs-in-derivation graph of useful states).
bool IsFiniteLanguage(const Nta& nta);
StatusOr<bool> IsFiniteLanguage(const Nta& nta, Budget* budget);

/// Bottom-up determinism: delta(q, a) and delta(q', a) disjoint for q != q'.
bool IsBottomUpDeterministic(const Nta& nta);

/// Completeness: for every a, the union over q of delta(q, a) is Q*.
/// Exponential in the worst case (universality check); intended for
/// moderate automata and tests.
bool IsComplete(const Nta& nta);

/// Adds a sink state to a bottom-up deterministic NTA so that it becomes
/// complete (a DTAc if the input was a DTA). The caller asserts determinism.
Nta CompletedDeterministic(const Nta& nta);

/// Complements a deterministic *complete* NTA by swapping final states.
/// The caller asserts the preconditions (Theorem 20 uses this on DTAc
/// schemas).
Nta ComplementedDtac(const Nta& nta);

}  // namespace xtc

#endif  // XTC_NTA_ANALYSIS_H_
