#include "src/nta/analysis.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/fa/dfa.h"

namespace xtc {

StateSet ReachableStates(const Nta& nta) {
  return *ReachableStates(nta, nullptr);
}

StatusOr<StateSet> ReachableStates(const Nta& nta, Budget* budget) {
  // Fig. A.1: R_1 = {q | epsilon in delta(q, a)}; R_i adds q whenever
  // delta(q, a) meets R_{i-1}^*. We iterate to the fixpoint directly.
  StateSet reached(nta.num_states());
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [key, h] : nta.transitions()) {
      XTC_RETURN_IF_ERROR(BudgetCheck(budget, "ReachableStates"));
      int q = key.first;
      if (reached.Test(q)) continue;
      if (h.AcceptsSomeOver(&reached)) {
        reached.Set(q);
        changed = true;
      }
    }
  }
  return reached;
}

bool IsEmptyLanguage(const Nta& nta) { return *IsEmptyLanguage(nta, nullptr); }

StatusOr<bool> IsEmptyLanguage(const Nta& nta, Budget* budget) {
  XTC_ASSIGN_OR_RETURN(StateSet reached, ReachableStates(nta, budget));
  for (int q = 0; q < nta.num_states(); ++q) {
    if (reached.Test(q) && nta.final(q)) return false;
  }
  return true;
}

std::optional<int> WitnessTree(const Nta& nta, SharedForest* forest,
                               std::vector<int>* per_state_ids) {
  return *WitnessTree(nta, forest, per_state_ids, nullptr);
}

StatusOr<std::optional<int>> WitnessTree(const Nta& nta, SharedForest* forest,
                                         std::vector<int>* per_state_ids,
                                         Budget* budget) {
  // Re-run the reachability fixpoint remembering, for each newly reached
  // state, the symbol and child-state word that witnessed it; build the
  // hash-consed witness trees bottom-up as states get settled.
  std::vector<int> ids(static_cast<std::size_t>(nta.num_states()), -1);
  StateSet reached(nta.num_states());
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [key, h] : nta.transitions()) {
      XTC_RETURN_IF_ERROR(BudgetCheck(budget, "WitnessTree"));
      auto [q, a] = key;
      if (reached.Test(q)) continue;
      std::optional<std::vector<int>> word = h.ShortestAcceptedOver(&reached);
      if (!word.has_value()) continue;
      std::vector<int> kids;
      kids.reserve(word->size());
      for (int child_state : *word) {
        int cid = ids[static_cast<std::size_t>(child_state)];
        XTC_CHECK_GE(cid, 0);
        kids.push_back(cid);
      }
      ids[static_cast<std::size_t>(q)] = forest->Make(a, kids);
      reached.Set(q);
      changed = true;
    }
  }
  if (per_state_ids != nullptr) *per_state_ids = ids;
  for (int q = 0; q < nta.num_states(); ++q) {
    if (reached.Test(q) && nta.final(q)) {
      return std::optional<int>(ids[static_cast<std::size_t>(q)]);
    }
  }
  return std::optional<int>();
}

namespace {

// States that can occur in an accepting run: reachable (inhabited below)
// and co-reachable (extendable above to a final root).
StateSet UsefulStates(const Nta& nta, const StateSet& reached) {
  StateSet co(nta.num_states());
  for (int q = 0; q < nta.num_states(); ++q) {
    if (nta.final(q) && reached.Test(q)) co.Set(q);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [key, h] : nta.transitions()) {
      int p = key.first;
      if (!co.Test(p) || !reached.Test(p)) continue;
      StateSet used = h.SymbolsOnAcceptingPaths(&reached);
      // Word-parallel: fold the whole used-set in and detect growth.
      if (co.UnionWith(used)) changed = true;
    }
  }
  StateSet useful = reached;
  useful.IntersectWith(co);
  return useful;
}

}  // namespace

bool IsFiniteLanguage(const Nta& nta) {
  return *IsFiniteLanguage(nta, nullptr);
}

StatusOr<bool> IsFiniteLanguage(const Nta& nta, Budget* budget) {
  XTC_ASSIGN_OR_RETURN(StateSet reached, ReachableStates(nta, budget));
  StateSet useful = UsefulStates(nta, reached);

  // Horizontal pumping: a useful state with infinitely many usable child
  // strings.
  for (const auto& [key, h] : nta.transitions()) {
    XTC_RETURN_IF_ERROR(BudgetCheck(budget, "IsFiniteLanguage"));
    int q = key.first;
    if (!useful.Test(q)) continue;
    if (h.AcceptsInfinitelyManyOver(&reached)) return false;
  }

  // Vertical pumping: cycle in the occurs-in-derivation graph restricted to
  // useful states.
  std::vector<std::vector<int>> adj(
      static_cast<std::size_t>(nta.num_states()));
  for (const auto& [key, h] : nta.transitions()) {
    XTC_RETURN_IF_ERROR(BudgetCheck(budget, "IsFiniteLanguage"));
    int p = key.first;
    if (!useful.Test(p)) continue;
    StateSet used = h.SymbolsOnAcceptingPaths(&reached);
    used.IntersectWith(useful);
    used.ForEach(
        [&](int q) { adj[static_cast<std::size_t>(p)].push_back(q); });
  }
  enum : char { kWhite, kGray, kBlack };
  std::vector<char> color(static_cast<std::size_t>(nta.num_states()), kWhite);
  std::vector<std::pair<int, std::size_t>> stack;
  for (int root = 0; root < nta.num_states(); ++root) {
    if (!useful.Test(root) ||
        color[static_cast<std::size_t>(root)] != kWhite) {
      continue;
    }
    color[static_cast<std::size_t>(root)] = kGray;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [s, idx] = stack.back();
      if (idx < adj[static_cast<std::size_t>(s)].size()) {
        int t = adj[static_cast<std::size_t>(s)][idx++];
        if (color[static_cast<std::size_t>(t)] == kGray) return false;
        if (color[static_cast<std::size_t>(t)] == kWhite) {
          color[static_cast<std::size_t>(t)] = kGray;
          stack.emplace_back(t, 0);
        }
      } else {
        color[static_cast<std::size_t>(s)] = kBlack;
        stack.pop_back();
      }
    }
  }
  return true;
}

bool IsBottomUpDeterministic(const Nta& nta) {
  for (int a = 0; a < nta.num_symbols(); ++a) {
    for (int q = 0; q < nta.num_states(); ++q) {
      const Nfa* hq = nta.Horizontal(q, a);
      if (hq == nullptr) continue;
      for (int p = q + 1; p < nta.num_states(); ++p) {
        const Nfa* hp = nta.Horizontal(p, a);
        if (hp == nullptr) continue;
        if (!Nfa::Intersection(*hq, *hp).IsEmpty()) return false;
      }
    }
  }
  return true;
}

namespace {

// Union NFA of all horizontal languages for symbol `a` (over num_states
// symbols); empty NFA when none are set.
Nfa HorizontalUnion(const Nta& nta, int a) {
  Nfa acc(nta.num_states());
  bool first = true;
  for (int q = 0; q < nta.num_states(); ++q) {
    const Nfa* h = nta.Horizontal(q, a);
    if (h == nullptr) continue;
    if (first) {
      acc = *h;
      first = false;
    } else {
      acc = Nfa::Union(acc, *h);
    }
  }
  return acc;
}

}  // namespace

bool IsComplete(const Nta& nta) {
  for (int a = 0; a < nta.num_symbols(); ++a) {
    Nfa u = HorizontalUnion(nta, a);
    Dfa d = Dfa::FromNfa(u).Complemented();
    if (!d.IsEmpty()) return false;
  }
  return true;
}

Nta CompletedDeterministic(const Nta& nta) {
  const int n = nta.num_states();
  Nta out(nta.num_symbols(), n + 1);
  for (int q = 0; q < n; ++q) out.SetFinal(q, nta.final(q));
  for (const auto& [key, h] : nta.transitions()) {
    out.SetTransition(key.first, key.second, h.ShiftedSymbols(0, n + 1));
  }
  const int sink = n;
  for (int a = 0; a < nta.num_symbols(); ++a) {
    // delta(sink, a) = (Q ∪ {sink})* minus the union of the existing
    // horizontal languages. Strings mentioning the sink symbol fall into the
    // complement automatically, as no existing language mentions it.
    Nfa u = HorizontalUnion(nta, a).ShiftedSymbols(0, n + 1);
    Dfa comp = Dfa::FromNfa(u).Completed();
    // Completed() guarantees totality over symbols 0..n; complement finals.
    Nfa cnfa = comp.Complemented().ToNfa();
    out.SetTransition(sink, a, std::move(cnfa));
  }
  return out;
}

Nta ComplementedDtac(const Nta& nta) {
  Nta out = nta;
  for (int q = 0; q < nta.num_states(); ++q) {
    out.SetFinal(q, !nta.final(q));
  }
  return out;
}

}  // namespace xtc
