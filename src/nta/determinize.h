#ifndef XTC_NTA_DETERMINIZE_H_
#define XTC_NTA_DETERMINIZE_H_

#include "src/base/budget.h"
#include "src/base/status.h"
#include "src/nta/nta.h"

namespace xtc {

/// Subset construction for unranked tree automata: returns a bottom-up
/// deterministic, complete NTA (a DTAc) equivalent to `nta`. Exponential in
/// the worst case — this is exactly the price the paper's EXPTIME cells
/// charge; `max_states` bounds the determinized state count (and the
/// per-symbol horizontal subset space) and the construction fails with
/// kResourceExhausted beyond it. A non-null `budget` is additionally
/// checkpointed per h-state transition computed in the saturation loop.
StatusOr<Nta> DeterminizeToDtac(const Nta& nta, int max_states,
                                Budget* budget = nullptr);

}  // namespace xtc

#endif  // XTC_NTA_DETERMINIZE_H_
