#ifndef XTC_NTA_LAZY_PARALLEL_H_
#define XTC_NTA_LAZY_PARALLEL_H_

#include "src/base/status.h"
#include "src/nta/lazy.h"
#include "src/tree/hashcons.h"

namespace xtc {

/// The multi-threaded lazy frontier engine (LazyOptions::threads > 1).
/// Internal to src/nta — call sites go through LazyEmptiness, which
/// dispatches here after the shared resume short-circuit. `options.threads`
/// must already be > 1; the engine clamps it to [2, 64].
///
/// Same contract as the sequential engine: same verdicts, witnesses valid
/// against every component, LazySnapshot export only on clean completion
/// (sequential and parallel snapshots are interchangeable — resume
/// re-shards the merged tables), kResourceExhausted on budget/cap
/// exhaustion with no partial snapshot. See DESIGN.md §3d for the
/// sharding, termination-detection, and budget-reconciliation design.
StatusOr<EmptinessOutcome> ParallelLazyEmptiness(const LazyProductSpec& spec,
                                                 SharedForest* forest,
                                                 const LazyOptions& options);

}  // namespace xtc

#endif  // XTC_NTA_LAZY_PARALLEL_H_
