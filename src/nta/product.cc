#include "src/nta/product.h"

#include "src/base/logging.h"

namespace xtc {

Nta Intersect(const Nta& a, const Nta& b) {
  return *Intersect(a, b, nullptr);
}

StatusOr<Nta> Intersect(const Nta& a, const Nta& b, Budget* budget) {
  XTC_CHECK_EQ(a.num_symbols(), b.num_symbols());
  const int na = a.num_states();
  const int nb = b.num_states();
  Nta out(a.num_symbols(), na * nb);
  for (int qa = 0; qa < na; ++qa) {
    for (int qb = 0; qb < nb; ++qb) {
      if (a.final(qa) && b.final(qb)) out.SetFinal(qa * nb + qb);
    }
  }
  for (int sym = 0; sym < a.num_symbols(); ++sym) {
    for (int qa = 0; qa < na; ++qa) {
      const Nfa* ha = a.Horizontal(qa, sym);
      if (ha == nullptr) continue;
      for (int qb = 0; qb < nb; ++qb) {
        const Nfa* hb = b.Horizontal(qb, sym);
        if (hb == nullptr) continue;
        XTC_RETURN_IF_ERROR(BudgetCheck(budget, "Intersect"));
        // Product of the horizontal NFAs reading paired child states.
        Nfa h(na * nb);
        const int mb = hb->num_states();
        h.ReserveStates(ha->num_states() * mb);
        for (int sa = 0; sa < ha->num_states(); ++sa) {
          for (int sb = 0; sb < mb; ++sb) {
            h.AddState(ha->initial(sa) && hb->initial(sb),
                       ha->final(sa) && hb->final(sb));
          }
        }
        for (int sa = 0; sa < ha->num_states(); ++sa) {
          const auto& ea = ha->Edges(sa);
          if (ea.empty()) continue;
          for (int sb = 0; sb < mb; ++sb) {
            const auto& eb = hb->Edges(sb);
            if (eb.empty()) continue;
            // Fill the whole product row at once; AddTransition's per-edge
            // bounds checks would dominate the build otherwise.
            auto& row = h.MutableEdges(sa * mb + sb);
            row.reserve(ea.size() * eb.size());
            for (const auto& [ca, ta] : ea) {
              for (const auto& [cb, tb] : eb) {
                row.emplace_back(ca * nb + cb, ta * mb + tb);
              }
            }
          }
        }
        out.SetTransition(qa * nb + qb, sym, std::move(h));
      }
    }
  }
  return out;
}

Nta DisjointUnion(const Nta& a, const Nta& b) {
  XTC_CHECK_EQ(a.num_symbols(), b.num_symbols());
  const int na = a.num_states();
  const int nb = b.num_states();
  Nta out(a.num_symbols(), na + nb);
  for (int q = 0; q < na; ++q) out.SetFinal(q, a.final(q));
  for (int q = 0; q < nb; ++q) out.SetFinal(na + q, b.final(q));
  for (const auto& [key, h] : a.transitions()) {
    out.SetTransition(key.first, key.second, h.ShiftedSymbols(0, na + nb));
  }
  for (const auto& [key, h] : b.transitions()) {
    out.SetTransition(na + key.first, key.second,
                      h.ShiftedSymbols(na, na + nb));
  }
  return out;
}

}  // namespace xtc
