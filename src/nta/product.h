#ifndef XTC_NTA_PRODUCT_H_
#define XTC_NTA_PRODUCT_H_

#include "src/base/budget.h"
#include "src/base/status.h"
#include "src/nta/nta.h"

namespace xtc {

/// Product automaton with L = L(a) ∩ L(b). States are pairs (encoded as
/// qa * b.num_states() + qb); horizontal languages are products of the
/// operand horizontals with paired child states. Used by Theorem 20
/// (emptiness of B_in ∩ B_out). The governed overload checkpoints per
/// horizontal-product built — the state space is quadratic and each
/// horizontal product can itself be large.
Nta Intersect(const Nta& a, const Nta& b);
StatusOr<Nta> Intersect(const Nta& a, const Nta& b, Budget* budget);

/// Disjoint-union automaton with L = L(a) ∪ L(b): runs stay entirely within
/// one operand's state space.
Nta DisjointUnion(const Nta& a, const Nta& b);

}  // namespace xtc

#endif  // XTC_NTA_PRODUCT_H_
