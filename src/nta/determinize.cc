#include "src/nta/determinize.h"

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "src/base/interner.h"
#include "src/base/logging.h"
#include "src/base/state_set.h"

namespace xtc {
namespace {

// Per input symbol `a`, all horizontal NFAs delta(q, a) are embedded into
// one global state space so that a set of global states ("h-state")
// summarizes, for every q simultaneously, where the horizontal run can be.
struct SymbolSpace {
  // offset[q] .. offset[q] + size[q] are the global ids of delta(q, a)'s
  // states; -1 when the transition is absent.
  std::vector<int> offset;
  std::vector<const Nfa*> nfa;
  std::vector<int> owner;                    // global id -> q
  std::vector<int> initials;                 // global ids
  std::vector<std::pair<int, int>> finals;   // (global id, q)
  int total = 0;
};

SymbolSpace BuildSpace(const Nta& nta, int a) {
  SymbolSpace sp;
  sp.offset.assign(static_cast<std::size_t>(nta.num_states()), -1);
  sp.nfa.assign(static_cast<std::size_t>(nta.num_states()), nullptr);
  std::size_t total_states = 0;
  for (int q = 0; q < nta.num_states(); ++q) {
    const Nfa* h = nta.Horizontal(q, a);
    if (h != nullptr) total_states += static_cast<std::size_t>(h->num_states());
  }
  sp.owner.reserve(total_states);
  for (int q = 0; q < nta.num_states(); ++q) {
    const Nfa* h = nta.Horizontal(q, a);
    if (h == nullptr) continue;
    sp.offset[static_cast<std::size_t>(q)] = sp.total;
    sp.nfa[static_cast<std::size_t>(q)] = h;
    for (int s = 0; s < h->num_states(); ++s) {
      sp.owner.push_back(q);
      if (h->initial(s)) sp.initials.push_back(sp.total + s);
      if (h->final(s)) sp.finals.emplace_back(sp.total + s, q);
    }
    sp.total += h->num_states();
  }
  std::sort(sp.initials.begin(), sp.initials.end());
  return sp;
}

// The set of original states q whose horizontal language accepts at the
// h-state (sorted global-id set) `h`.
std::vector<int> TargetSubset(const SymbolSpace& sp, std::span<const int> h) {
  std::vector<int> subset;
  for (const auto& [g, q] : sp.finals) {
    if (std::binary_search(h.begin(), h.end(), g)) subset.push_back(q);
  }
  std::sort(subset.begin(), subset.end());
  subset.erase(std::unique(subset.begin(), subset.end()), subset.end());
  return subset;
}

// Advance the h-state by one child whose possible-state set is `subset`
// (a packed mask over the original Q).
std::vector<int> StepH(const SymbolSpace& sp, std::span<const int> h,
                       const StateSet& subset) {
  StateSet next(sp.total);
  for (int g : h) {
    const int q = sp.owner[static_cast<std::size_t>(g)];
    const int off = sp.offset[static_cast<std::size_t>(q)];
    const Nfa* nfa = sp.nfa[static_cast<std::size_t>(q)];
    for (const auto& [sym, t] : nfa->Edges(g - off)) {
      if (subset.Test(sym)) next.Set(off + t);
    }
  }
  return next.ToVector();
}

}  // namespace

StatusOr<Nta> DeterminizeToDtac(const Nta& nta, int max_states,
                                Budget* budget) {
  const int num_symbols = nta.num_symbols();
  std::vector<SymbolSpace> spaces;
  spaces.reserve(static_cast<std::size_t>(num_symbols));
  for (int a = 0; a < num_symbols; ++a) spaces.push_back(BuildSpace(nta, a));

  // Interned determinized states (subsets of Q), hashed; interner ids are
  // dense so they double as DTA state ids. det_masks mirrors each subset as
  // a packed mask for the O(1) membership tests in StepH.
  SubsetInterner det_ids;
  std::vector<std::vector<int>> det_states;
  std::vector<StateSet> det_masks;
  auto intern_det = [&](std::vector<int> subset) {
    int id = det_ids.Intern(subset);
    if (id < static_cast<int>(det_states.size())) return id;
    StateSet mask(nta.num_states());
    for (int q : subset) mask.Set(q);
    det_masks.push_back(std::move(mask));
    det_states.push_back(std::move(subset));
    return id;
  };

  // Per symbol: interned h-states and their transition rows (indexed by
  // det-state id; -1 means "not yet computed").
  struct HGraph {
    SubsetInterner ids;
    std::vector<std::vector<int>> states;
    std::vector<std::vector<int>> trans;  // trans[h][det_id] = h'
    std::vector<int> target;              // det id of TargetSubset
  };
  std::vector<HGraph> graphs(static_cast<std::size_t>(num_symbols));

  auto intern_h = [&](int a, std::vector<int> h) {
    HGraph& g = graphs[static_cast<std::size_t>(a)];
    int id = g.ids.Intern(h);
    if (id < static_cast<int>(g.states.size())) return id;
    g.target.push_back(
        intern_det(TargetSubset(spaces[static_cast<std::size_t>(a)], h)));
    g.states.push_back(std::move(h));
    g.trans.emplace_back();
    return id;
  };

  for (int a = 0; a < num_symbols; ++a) {
    intern_h(a, spaces[static_cast<std::size_t>(a)].initials);
  }

  // Saturate: new h-states can mint new det states, which extend every
  // H-graph's alphabet, so loop until nothing changes.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int a = 0; a < num_symbols; ++a) {
      HGraph& g = graphs[static_cast<std::size_t>(a)];
      for (std::size_t h = 0; h < g.states.size(); ++h) {
        g.trans[h].resize(det_states.size(), -1);
        for (std::size_t s = 0; s < det_states.size(); ++s) {
          if (g.trans[h][s] != -1) continue;
          XTC_RETURN_IF_ERROR(BudgetCheck(budget, "DeterminizeToDtac"));
          std::vector<int> next = StepH(spaces[static_cast<std::size_t>(a)],
                                        g.states[h], det_masks[s]);
          int hid = intern_h(a, std::move(next));
          g.trans[h].resize(det_states.size(), -1);  // intern may grow dets
          g.trans[h][s] = hid;
          changed = true;
          if (static_cast<int>(det_states.size()) > max_states ||
              static_cast<int>(g.states.size()) >
                  max_states * std::max(1, nta.num_states())) {
            return ResourceExhaustedError(
                "NTA determinization exceeded the state budget");
          }
        }
      }
    }
  }

  const int n_det = static_cast<int>(det_states.size());
  Nta out(num_symbols, n_det);
  for (int s = 0; s < n_det; ++s) {
    for (int q : det_states[static_cast<std::size_t>(s)]) {
      if (nta.final(q)) {
        out.SetFinal(s);
        break;
      }
    }
  }
  for (int a = 0; a < num_symbols; ++a) {
    const HGraph& g = graphs[static_cast<std::size_t>(a)];
    // One shared transition structure; finals select the target det state.
    for (int s = 0; s < n_det; ++s) {
      bool any_final = false;
      Nfa h(n_det);
      h.ReserveStates(static_cast<int>(g.states.size()));
      for (std::size_t hs = 0; hs < g.states.size(); ++hs) {
        bool is_final = g.target[hs] == s;
        any_final = any_final || is_final;
        h.AddState(hs == 0, is_final);
      }
      if (!any_final) continue;  // empty horizontal language
      for (std::size_t hs = 0; hs < g.states.size(); ++hs) {
        h.ReserveEdges(static_cast<int>(hs), static_cast<std::size_t>(n_det));
        for (int sym = 0; sym < n_det; ++sym) {
          int t = g.trans[hs][static_cast<std::size_t>(sym)];
          XTC_CHECK_GE(t, 0);
          h.AddTransition(static_cast<int>(hs), sym, t);
        }
      }
      out.SetTransition(s, a, std::move(h));
    }
  }
  return out;
}

}  // namespace xtc
