#include "src/nta/determinize.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/base/interner.h"
#include "src/base/logging.h"
#include "src/base/sparse_state_set.h"
#include "src/base/state_set.h"
#include "src/nta/horizontal_space.h"

namespace xtc {

StatusOr<Nta> DeterminizeToDtac(const Nta& nta, int max_states,
                                Budget* budget) {
  const int num_symbols = nta.num_symbols();
  std::vector<HorizontalSpace> spaces;
  spaces.reserve(static_cast<std::size_t>(num_symbols));
  for (int a = 0; a < num_symbols; ++a) {
    spaces.push_back(HorizontalSpace::Build(nta, a));
  }

  // Interned determinized states (subsets of Q), hashed; interner ids are
  // dense so they double as DTA state ids. det_masks mirrors each subset as
  // an adaptive mask (dense words under kDefaultDenseThreshold states,
  // sorted-sparse above) for the membership tests in StepH.
  SubsetInterner det_ids;
  std::vector<std::vector<int>> det_states;
  std::vector<AdaptiveStateSet> det_masks;
  auto intern_det = [&](std::vector<int> subset) {
    int id = det_ids.Intern(subset);
    if (id < static_cast<int>(det_states.size())) return id;
    det_masks.emplace_back(subset, nta.num_states(), kDefaultDenseThreshold);
    det_states.push_back(std::move(subset));
    return id;
  };
  ScratchSet scratch;
  std::vector<int> step_buf;

  // Per symbol: interned h-states and their transition rows (indexed by
  // det-state id; -1 means "not yet computed").
  struct HGraph {
    SubsetInterner ids;
    std::vector<std::vector<int>> states;
    std::vector<std::vector<int>> trans;  // trans[h][det_id] = h'
    std::vector<int> target;              // det id of TargetSubset
  };
  std::vector<HGraph> graphs(static_cast<std::size_t>(num_symbols));

  auto intern_h = [&](int a, std::vector<int> h) {
    HGraph& g = graphs[static_cast<std::size_t>(a)];
    int id = g.ids.Intern(h);
    if (id < static_cast<int>(g.states.size())) return id;
    g.target.push_back(
        intern_det(TargetSubset(spaces[static_cast<std::size_t>(a)], h)));
    g.states.push_back(std::move(h));
    g.trans.emplace_back();
    return id;
  };

  for (int a = 0; a < num_symbols; ++a) {
    intern_h(a, spaces[static_cast<std::size_t>(a)].initials);
  }

  // Saturate: new h-states can mint new det states, which extend every
  // H-graph's alphabet, so loop until nothing changes.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int a = 0; a < num_symbols; ++a) {
      HGraph& g = graphs[static_cast<std::size_t>(a)];
      for (std::size_t h = 0; h < g.states.size(); ++h) {
        g.trans[h].resize(det_states.size(), -1);
        for (std::size_t s = 0; s < det_states.size(); ++s) {
          if (g.trans[h][s] != -1) continue;
          XTC_RETURN_IF_ERROR(BudgetCheck(budget, "DeterminizeToDtac"));
          StepH(spaces[static_cast<std::size_t>(a)], g.states[h],
                det_masks[s], &scratch, &step_buf);
          int hid = intern_h(a, step_buf);
          g.trans[h].resize(det_states.size(), -1);  // intern may grow dets
          g.trans[h][s] = hid;
          changed = true;
          if (static_cast<int>(det_states.size()) > max_states ||
              static_cast<int>(g.states.size()) >
                  max_states * std::max(1, nta.num_states())) {
            return ResourceExhaustedError(
                "NTA determinization exceeded the state budget");
          }
        }
      }
    }
  }

  const int n_det = static_cast<int>(det_states.size());
  Nta out(num_symbols, n_det);
  for (int s = 0; s < n_det; ++s) {
    for (int q : det_states[static_cast<std::size_t>(s)]) {
      if (nta.final(q)) {
        out.SetFinal(s);
        break;
      }
    }
  }
  for (int a = 0; a < num_symbols; ++a) {
    const HGraph& g = graphs[static_cast<std::size_t>(a)];
    // One shared transition structure; finals select the target det state.
    for (int s = 0; s < n_det; ++s) {
      bool any_final = false;
      Nfa h(n_det);
      h.ReserveStates(static_cast<int>(g.states.size()));
      for (std::size_t hs = 0; hs < g.states.size(); ++hs) {
        bool is_final = g.target[hs] == s;
        any_final = any_final || is_final;
        h.AddState(hs == 0, is_final);
      }
      if (!any_final) continue;  // empty horizontal language
      for (std::size_t hs = 0; hs < g.states.size(); ++hs) {
        h.ReserveEdges(static_cast<int>(hs), static_cast<std::size_t>(n_det));
        for (int sym = 0; sym < n_det; ++sym) {
          int t = g.trans[hs][static_cast<std::size_t>(sym)];
          XTC_CHECK_GE(t, 0);
          h.AddTransition(static_cast<int>(hs), sym, t);
        }
      }
      out.SetTransition(s, a, std::move(h));
    }
  }
  return out;
}

}  // namespace xtc
