#include "src/nta/nta.h"

#include "src/base/logging.h"

namespace xtc {

void Nta::SetFinal(int state, bool final) {
  XTC_CHECK(state >= 0 && state < num_states_);
  final_[static_cast<std::size_t>(state)] = final;
}

void Nta::SetTransition(int state, int symbol, Nfa horizontal) {
  XTC_CHECK(state >= 0 && state < num_states_);
  XTC_CHECK(symbol >= 0 && symbol < num_symbols_);
  XTC_CHECK_EQ(horizontal.num_symbols(), num_states_);
  delta_.insert_or_assign({state, symbol}, std::move(horizontal));
}

const Nfa* Nta::Horizontal(int state, int symbol) const {
  auto it = delta_.find({state, symbol});
  return it == delta_.end() ? nullptr : &it->second;
}

std::size_t Nta::Size() const {
  std::size_t total = static_cast<std::size_t>(num_states_) +
                      static_cast<std::size_t>(num_symbols_);
  for (const auto& [key, nfa] : delta_) total += nfa.Size();
  return total;
}

namespace {

// Whether `nfa` accepts some word w1..wn with wi drawn from sets[i].
bool AcceptsSomeChoice(const Nfa& nfa,
                       const std::vector<std::vector<bool>>& sets) {
  std::vector<bool> cur(static_cast<std::size_t>(nfa.num_states()), false);
  for (int s = 0; s < nfa.num_states(); ++s) {
    if (nfa.initial(s)) cur[static_cast<std::size_t>(s)] = true;
  }
  for (const std::vector<bool>& allowed : sets) {
    std::vector<bool> next(static_cast<std::size_t>(nfa.num_states()), false);
    bool any = false;
    for (int s = 0; s < nfa.num_states(); ++s) {
      if (!cur[static_cast<std::size_t>(s)]) continue;
      for (const auto& [sym, t] : nfa.Edges(s)) {
        if (allowed[static_cast<std::size_t>(sym)]) {
          next[static_cast<std::size_t>(t)] = true;
          any = true;
        }
      }
    }
    if (!any) return false;
    cur.swap(next);
  }
  for (int s = 0; s < nfa.num_states(); ++s) {
    if (cur[static_cast<std::size_t>(s)] && nfa.final(s)) return true;
  }
  return false;
}

}  // namespace

std::vector<bool> Nta::AcceptingStatesAt(const Node* tree) const {
  std::vector<std::vector<bool>> child_sets;
  child_sets.reserve(tree->child_count);
  for (const Node* c : tree->Children()) {
    child_sets.push_back(AcceptingStatesAt(c));
  }
  std::vector<bool> out(static_cast<std::size_t>(num_states_), false);
  if (tree->label < 0 || tree->label >= num_symbols_) return out;
  for (int q = 0; q < num_states_; ++q) {
    const Nfa* h = Horizontal(q, tree->label);
    if (h == nullptr) continue;
    if (AcceptsSomeChoice(*h, child_sets)) {
      out[static_cast<std::size_t>(q)] = true;
    }
  }
  return out;
}

bool Nta::Accepts(const Node* tree) const {
  if (tree == nullptr) return false;
  std::vector<bool> states = AcceptingStatesAt(tree);
  for (int q = 0; q < num_states_; ++q) {
    if (states[static_cast<std::size_t>(q)] && final(q)) return true;
  }
  return false;
}

Nta Nta::FromDtd(const Dtd& dtd) {
  const int n = dtd.num_symbols();
  Nta out(n, n);
  out.SetFinal(dtd.start());
  for (int a = 0; a < n; ++a) {
    // delta(a, a) = d(a); the rule NFA is already over symbol ids, which
    // coincide with the state ids of this automaton.
    out.SetTransition(a, a, dtd.RuleNfa(a));
  }
  return out;
}

}  // namespace xtc
