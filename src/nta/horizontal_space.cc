#include "src/nta/horizontal_space.h"

#include <algorithm>

namespace xtc {

HorizontalSpace HorizontalSpace::Build(const Nta& nta, int a) {
  HorizontalSpace sp;
  sp.offset.assign(static_cast<std::size_t>(nta.num_states()), -1);
  sp.nfa.assign(static_cast<std::size_t>(nta.num_states()), nullptr);
  std::size_t total_states = 0;
  for (int q = 0; q < nta.num_states(); ++q) {
    const Nfa* h = nta.Horizontal(q, a);
    if (h != nullptr) total_states += static_cast<std::size_t>(h->num_states());
  }
  sp.owner.reserve(total_states);
  for (int q = 0; q < nta.num_states(); ++q) {
    const Nfa* h = nta.Horizontal(q, a);
    if (h == nullptr) continue;
    sp.offset[static_cast<std::size_t>(q)] = sp.total;
    sp.nfa[static_cast<std::size_t>(q)] = h;
    for (int s = 0; s < h->num_states(); ++s) {
      sp.owner.push_back(q);
      if (h->initial(s)) sp.initials.push_back(sp.total + s);
      if (h->final(s)) sp.finals.emplace_back(sp.total + s, q);
    }
    sp.total += h->num_states();
  }
  std::sort(sp.initials.begin(), sp.initials.end());
  sp.final_mask.Resize(sp.total);
  for (const auto& [g, q] : sp.finals) sp.final_mask.Set(g);
  return sp;
}

std::vector<int> TargetSubset(const HorizontalSpace& sp,
                              std::span<const int> h) {
  std::vector<int> subset;
  for (const auto& [g, q] : sp.finals) {
    if (std::binary_search(h.begin(), h.end(), g)) subset.push_back(q);
  }
  std::sort(subset.begin(), subset.end());
  subset.erase(std::unique(subset.begin(), subset.end()), subset.end());
  return subset;
}

std::vector<int> StepH(const HorizontalSpace& sp, std::span<const int> h,
                       const StateSet& subset) {
  StateSet next(sp.total);
  for (int g : h) {
    sp.ForEachEdge(g, [&](int sym, int to) {
      if (subset.Test(sym)) next.Set(to);
    });
  }
  return next.ToVector();
}

void StepH(const HorizontalSpace& sp, std::span<const int> h,
           const AdaptiveStateSet& subset, ScratchSet* scratch,
           std::vector<int>* out) {
  scratch->EnsureUniverse(sp.total);
  for (int g : h) {
    sp.ForEachEdge(g, [&](int sym, int to) {
      if (subset.Test(sym)) scratch->Add(to);
    });
  }
  scratch->ExtractSortedAndClear(out);
}

}  // namespace xtc
