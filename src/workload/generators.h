#ifndef XTC_WORKLOAD_GENERATORS_H_
#define XTC_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <random>

#include "src/core/paper_examples.h"
#include "src/tree/tree.h"

namespace xtc {

/// Knobs for seeded random instances (property tests sweep seeds).
struct RandomOptions {
  int num_symbols = 3;
  int num_states = 3;
  int dfa_states_per_rule = 3;
  int max_top_width = 3;   ///< max rhs top-level width
  int max_rhs_depth = 2;   ///< max template depth
  bool allow_deletion = true;
  bool allow_copying = true;
  double rule_density = 0.8;  ///< probability that a (state, symbol) rule exists
};

/// A random DTD(DFA) (explicit small random DFAs per rule) over symbols
/// a0..a_{n-1}; the start symbol is a0.
Dtd RandomDfaDtd(std::mt19937* rng, Alphabet* alphabet,
                 const RandomOptions& options);

/// A random DTD(RE+) over the same symbols.
Dtd RandomRePlusDtd(std::mt19937* rng, Alphabet* alphabet,
                    const RandomOptions& options);

/// A random deterministic top-down transducer (selector-free).
Transducer RandomTransducer(std::mt19937* rng, Alphabet* alphabet,
                            const RandomOptions& options);

/// A complete random instance sharing one alphabet. `re_plus` selects
/// DTD(RE+) schemas instead of DTD(DFA).
PaperExample RandomInstance(std::uint32_t seed, const RandomOptions& options,
                            bool re_plus);

/// A uniform random (not necessarily valid) tree, for transducer-semantics
/// tests.
Node* RandomTree(std::mt19937* rng, int num_symbols, int depth, int max_width,
                 TreeBuilder* builder);

}  // namespace xtc

#endif  // XTC_WORKLOAD_GENERATORS_H_
