#include "src/workload/families.h"

#include "src/base/logging.h"

namespace xtc {
namespace {

void MustSetRule(Transducer* t, std::string_view state,
                 std::string_view symbol, std::string_view rhs) {
  Status s = t->SetRuleFromString(state, symbol, rhs);
  XTC_CHECK_MSG(s.ok(), s.ToString().c_str());
}

void MustSetDtdRule(Dtd* d, std::string_view symbol, std::string_view regex) {
  Status s = d->SetRule(symbol, regex);
  XTC_CHECK_MSG(s.ok(), s.ToString().c_str());
}

PaperExample MakeFilterFamily(int n, bool failing) {
  XTC_CHECK_GE(n, 1);
  PaperExample ex;
  ex.alphabet = std::make_shared<Alphabet>();
  ex.alphabet->Intern("root");
  ex.alphabet->Intern("title");
  for (int i = 0; i < n; ++i) {
    ex.alphabet->Intern("sec" + std::to_string(i));
  }
  ex.din = std::make_shared<Dtd>(ex.alphabet.get(), *ex.alphabet->Find("root"));
  MustSetDtdRule(ex.din.get(), "root", "sec0+");
  for (int i = 0; i < n; ++i) {
    std::string rule = "title";
    if (i + 1 < n) rule += " sec" + std::to_string(i + 1) + "*";
    MustSetDtdRule(ex.din.get(), "sec" + std::to_string(i), rule);
  }
  ex.transducer = std::make_shared<Transducer>(ex.alphabet.get());
  int q0 = ex.transducer->AddState("q0");
  ex.transducer->AddState("q");
  ex.transducer->SetInitial(q0);
  MustSetRule(ex.transducer.get(), "q0", "root", "root(q)");
  MustSetRule(ex.transducer.get(), "q", "title", "title");
  for (int i = 0; i < n; ++i) {
    // Recursive deletion without copying: skip every section level.
    MustSetRule(ex.transducer.get(), "q", "sec" + std::to_string(i), "q");
  }
  ex.dout = std::make_shared<Dtd>(ex.alphabet.get(), *ex.alphabet->Find("root"));
  // Every sec0 contributes at least one title; the failing variant demands
  // at least two titles overall, violated by the single-section document.
  MustSetDtdRule(ex.dout.get(), "root", failing ? "title title title*"
                                                : "title+");
  return ex;
}

}  // namespace

PaperExample FilterFamily(int n) { return MakeFilterFamily(n, false); }

PaperExample FailingFilterFamily(int n) { return MakeFilterFamily(n, true); }

PaperExample WidthFamily(int c, int k) {
  XTC_CHECK_GE(c, 1);
  XTC_CHECK_GE(k, 0);
  PaperExample ex;
  ex.alphabet = std::make_shared<Alphabet>();
  ex.alphabet->Intern("r");
  ex.alphabet->Intern("a");
  ex.alphabet->Intern("b");
  ex.din = std::make_shared<Dtd>(ex.alphabet.get(), *ex.alphabet->Find("r"));
  MustSetDtdRule(ex.din.get(), "r", "a?");
  MustSetDtdRule(ex.din.get(), "a", "a?");
  ex.transducer = std::make_shared<Transducer>(ex.alphabet.get());
  int q0 = ex.transducer->AddState("q0");
  for (int i = 1; i <= k; ++i) {
    ex.transducer->AddState("d" + std::to_string(i));
  }
  ex.transducer->AddState("w");
  ex.transducer->AddState("m");
  ex.transducer->SetInitial(q0);
  std::string first = k >= 1 ? "d1" : "w";
  MustSetRule(ex.transducer.get(), "q0", "r", "r(" + first + ")");
  for (int i = 1; i <= k; ++i) {
    // Each chain state deletes with width two: K doubles per level.
    std::string next = i == k ? "w" : "d" + std::to_string(i + 1);
    MustSetRule(ex.transducer.get(), "d" + std::to_string(i), "a",
                next + " " + next);
  }
  std::string copies;
  for (int i = 0; i < c; ++i) copies += (i ? " m" : "m");
  MustSetRule(ex.transducer.get(), "w", "a", "b(" + copies + ")");
  MustSetRule(ex.transducer.get(), "m", "a", "b");
  ex.dout = std::make_shared<Dtd>(ex.alphabet.get(), *ex.alphabet->Find("r"));
  MustSetDtdRule(ex.dout.get(), "r", "b*");
  MustSetDtdRule(ex.dout.get(), "b", "b*");
  return ex;
}

PaperExample RelabFamily(int n) {
  XTC_CHECK_GE(n, 1);
  PaperExample ex;
  ex.alphabet = std::make_shared<Alphabet>();
  ex.alphabet->Intern("r");
  ex.alphabet->Intern("a");
  ex.alphabet->Intern("b");
  ex.din = std::make_shared<Dtd>(ex.alphabet.get(), *ex.alphabet->Find("r"));
  std::string word_a;
  std::string word_b;
  for (int i = 0; i < n; ++i) {
    word_a += (i ? " a" : "a");
    word_b += (i ? " b" : "b");
  }
  MustSetDtdRule(ex.din.get(), "r", word_a);
  ex.transducer = std::make_shared<Transducer>(ex.alphabet.get());
  int q0 = ex.transducer->AddState("q0");
  ex.transducer->AddState("q");
  ex.transducer->SetInitial(q0);
  MustSetRule(ex.transducer.get(), "q0", "r", "r(q)");
  MustSetRule(ex.transducer.get(), "q", "a", "b(q)");
  ex.dout = std::make_shared<Dtd>(ex.alphabet.get(), *ex.alphabet->Find("r"));
  MustSetDtdRule(ex.dout.get(), "r", word_b);
  return ex;
}

PaperExample RePlusCopyFamily(int n) {
  XTC_CHECK_GE(n, 1);
  PaperExample ex;
  ex.alphabet = std::make_shared<Alphabet>();
  ex.alphabet->Intern("r");
  ex.alphabet->Intern("a");
  ex.din = std::make_shared<Dtd>(ex.alphabet.get(), *ex.alphabet->Find("r"));
  MustSetDtdRule(ex.din.get(), "r", "a+");
  ex.transducer = std::make_shared<Transducer>(ex.alphabet.get());
  int q0 = ex.transducer->AddState("q0");
  ex.transducer->AddState("q");
  ex.transducer->SetInitial(q0);
  std::string copies;
  for (int i = 0; i < n; ++i) copies += (i ? " q" : "q");
  MustSetRule(ex.transducer.get(), "q0", "r", "r(" + copies + ")");
  MustSetRule(ex.transducer.get(), "q", "a", "a");
  ex.dout = std::make_shared<Dtd>(ex.alphabet.get(), *ex.alphabet->Find("r"));
  MustSetDtdRule(ex.dout.get(), "r", "a+");
  return ex;
}

PaperExample XPathChainFamily(int n) {
  XTC_CHECK_GE(n, 1);
  PaperExample ex;
  ex.alphabet = std::make_shared<Alphabet>();
  ex.alphabet->Intern("title");
  for (int i = 0; i <= n; ++i) {
    ex.alphabet->Intern("c" + std::to_string(i));
  }
  ex.din = std::make_shared<Dtd>(ex.alphabet.get(), *ex.alphabet->Find("c0"));
  for (int i = 0; i < n; ++i) {
    MustSetDtdRule(ex.din.get(), "c" + std::to_string(i),
                   "c" + std::to_string(i + 1));
  }
  MustSetDtdRule(ex.din.get(), "c" + std::to_string(n), "title");
  ex.transducer = std::make_shared<Transducer>(ex.alphabet.get());
  int q0 = ex.transducer->AddState("q0");
  ex.transducer->AddState("q");
  ex.transducer->SetInitial(q0);
  std::string pattern = ".";
  for (int i = 1; i <= n; ++i) pattern += "/c" + std::to_string(i);
  pattern += "/title";
  MustSetRule(ex.transducer.get(), "q0", "c0", "c0(<q, " + pattern + ">)");
  MustSetRule(ex.transducer.get(), "q", "title", "title");
  ex.dout = std::make_shared<Dtd>(ex.alphabet.get(), *ex.alphabet->Find("c0"));
  MustSetDtdRule(ex.dout.get(), "c0", "title");
  return ex;
}

PaperExample NfaSchemaFamily(int n) {
  XTC_CHECK_GE(n, 1);
  PaperExample ex;
  ex.alphabet = std::make_shared<Alphabet>();
  ex.alphabet->Intern("r");
  ex.alphabet->Intern("a");
  ex.alphabet->Intern("b");
  // (a|b)* a (a|b)^{n-1}: determinizing needs 2^n states.
  std::string lang = "(a|b)* a";
  for (int i = 1; i < n; ++i) lang += " (a|b)";
  ex.din = std::make_shared<Dtd>(ex.alphabet.get(), *ex.alphabet->Find("r"));
  MustSetDtdRule(ex.din.get(), "r", lang);
  ex.transducer = std::make_shared<Transducer>(ex.alphabet.get());
  int q0 = ex.transducer->AddState("q0");
  ex.transducer->AddState("q");
  ex.transducer->SetInitial(q0);
  MustSetRule(ex.transducer.get(), "q0", "r", "r(q)");
  MustSetRule(ex.transducer.get(), "q", "a", "a");
  MustSetRule(ex.transducer.get(), "q", "b", "b");
  ex.dout = std::make_shared<Dtd>(ex.alphabet.get(), *ex.alphabet->Find("r"));
  MustSetDtdRule(ex.dout.get(), "r", lang);
  return ex;
}

}  // namespace xtc
