#include "src/workload/generators.h"

#include "src/base/logging.h"

namespace xtc {
namespace {

int Rand(std::mt19937* rng, int lo, int hi) {  // inclusive bounds
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(*rng);
}

bool Chance(std::mt19937* rng, double p) {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(*rng) < p;
}

void InternSymbols(Alphabet* alphabet, int n) {
  for (int i = 0; i < n; ++i) {
    alphabet->Intern("a" + std::to_string(i));
  }
}

RhsNode RandomRhsNode(std::mt19937* rng, const RandomOptions& options,
                      int depth, bool allow_state) {
  // Leaning on labels keeps outputs interesting; states appear at leaves.
  if (allow_state && depth > 0 && Chance(rng, 0.4)) {
    return RhsNode::State(Rand(rng, 0, options.num_states - 1));
  }
  int label = Rand(rng, 0, options.num_symbols - 1);
  std::vector<RhsNode> children;
  if (depth < options.max_rhs_depth && Chance(rng, 0.6)) {
    int width = Rand(rng, 0, options.max_top_width);
    for (int i = 0; i < width; ++i) {
      children.push_back(RandomRhsNode(rng, options, depth + 1, true));
    }
  }
  return RhsNode::Label(label, std::move(children));
}

}  // namespace

Dtd RandomDfaDtd(std::mt19937* rng, Alphabet* alphabet,
                 const RandomOptions& options) {
  InternSymbols(alphabet, options.num_symbols);
  Dtd dtd(alphabet, *alphabet->Find("a0"));
  for (int s = 0; s < options.num_symbols; ++s) {
    Dfa dfa(alphabet->size());
    for (int i = 0; i < options.dfa_states_per_rule; ++i) {
      dfa.AddState(Chance(rng, 0.5));
    }
    dfa.SetInitial(0);
    for (int i = 0; i < options.dfa_states_per_rule; ++i) {
      for (int sym = 0; sym < options.num_symbols; ++sym) {
        if (Chance(rng, 0.5)) {
          dfa.SetTransition(i, sym,
                            Rand(rng, 0, options.dfa_states_per_rule - 1));
        }
      }
    }
    // Keep leaves possible: initial state accepts with some probability.
    if (Chance(rng, 0.7)) dfa.SetFinal(0);
    dtd.SetRuleDfa(s, std::move(dfa));
  }
  return dtd;
}

Dtd RandomRePlusDtd(std::mt19937* rng, Alphabet* alphabet,
                    const RandomOptions& options) {
  InternSymbols(alphabet, options.num_symbols);
  Dtd dtd(alphabet, *alphabet->Find("a0"));
  for (int s = 0; s < options.num_symbols; ++s) {
    // Only factors with larger symbol index keep the DTD non-recursive and
    // every symbol inhabited.
    std::vector<RegexPtr> factors;
    int len = Rand(rng, 0, 3);
    for (int i = 0; i < len; ++i) {
      if (s + 1 >= options.num_symbols) break;
      int sym = Rand(rng, s + 1, options.num_symbols - 1);
      RegexPtr f = Regex::Sym(sym);
      if (Chance(rng, 0.5)) f = Regex::Plus(f);
      factors.push_back(f);
    }
    dtd.SetRule(s, Regex::Concat(std::move(factors)));
  }
  return dtd;
}

Transducer RandomTransducer(std::mt19937* rng, Alphabet* alphabet,
                            const RandomOptions& options) {
  InternSymbols(alphabet, options.num_symbols);
  Transducer t(alphabet);
  for (int q = 0; q < options.num_states; ++q) {
    t.AddState("q" + std::to_string(q));
  }
  t.SetInitial(0);
  for (int q = 0; q < options.num_states; ++q) {
    for (int a = 0; a < options.num_symbols; ++a) {
      if (q != 0 && !Chance(rng, options.rule_density)) continue;
      RhsHedge rhs;
      if (q == 0) {
        // Initial rules: single label-rooted tree.
        std::vector<RhsNode> children;
        int width = Rand(rng, 0, options.max_top_width);
        for (int i = 0; i < width; ++i) {
          children.push_back(RandomRhsNode(rng, options, 1, true));
        }
        rhs.push_back(
            RhsNode::Label(Rand(rng, 0, options.num_symbols - 1),
                           std::move(children)));
      } else {
        int width = Rand(rng, 0, options.max_top_width);
        int states_used = 0;
        for (int i = 0; i < width; ++i) {
          bool state_ok =
              options.allow_deletion &&
              (options.allow_copying || states_used == 0) &&
              Chance(rng, 0.3);
          if (state_ok) {
            rhs.push_back(
                RhsNode::State(Rand(rng, 0, options.num_states - 1)));
            ++states_used;
          } else {
            rhs.push_back(RandomRhsNode(rng, options, 1,
                                        options.allow_copying));
          }
        }
      }
      t.SetRule(q, a, std::move(rhs));
    }
  }
  return t;
}

PaperExample RandomInstance(std::uint32_t seed, const RandomOptions& options,
                            bool re_plus) {
  std::mt19937 rng(seed);
  PaperExample ex;
  ex.alphabet = std::make_shared<Alphabet>();
  InternSymbols(ex.alphabet.get(), options.num_symbols);
  if (re_plus) {
    ex.din = std::make_shared<Dtd>(
        RandomRePlusDtd(&rng, ex.alphabet.get(), options));
    ex.dout = std::make_shared<Dtd>(
        RandomRePlusDtd(&rng, ex.alphabet.get(), options));
  } else {
    ex.din =
        std::make_shared<Dtd>(RandomDfaDtd(&rng, ex.alphabet.get(), options));
    ex.dout =
        std::make_shared<Dtd>(RandomDfaDtd(&rng, ex.alphabet.get(), options));
  }
  ex.transducer = std::make_shared<Transducer>(
      RandomTransducer(&rng, ex.alphabet.get(), options));
  return ex;
}

Node* RandomTree(std::mt19937* rng, int num_symbols, int depth, int max_width,
                 TreeBuilder* builder) {
  int label = Rand(rng, 0, num_symbols - 1);
  std::vector<Node*> kids;
  if (depth > 1) {
    int width = Rand(rng, 0, max_width);
    for (int i = 0; i < width; ++i) {
      kids.push_back(
          RandomTree(rng, num_symbols, depth - 1, max_width, builder));
    }
  }
  return builder->Make(label, kids);
}

}  // namespace xtc
