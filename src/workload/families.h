#ifndef XTC_WORKLOAD_FAMILIES_H_
#define XTC_WORKLOAD_FAMILIES_H_

#include "src/core/paper_examples.h"

namespace xtc {

/// Scaling families driving the benchmark harness (EXPERIMENTS.md).
/// All families typecheck positively unless noted, so benches measure the
/// full (no-early-exit) cost.

/// Filtering with recursive deletion and no copying (the Example 10 shape):
/// a section hierarchy of `n` distinct levels; the transducer extracts all
/// titles by deleting interior nodes. C = 1, K = 1; |d_in| grows with n.
PaperExample FilterFamily(int n);

/// Copying width `c`, deletion path width `k` (k >= 1, via a chain of
/// non-recursively deleting states): exercises the C·K exponent of
/// Lemma 14.
PaperExample WidthFamily(int c, int k);

/// Relabeling transducer over DTDs with rule DFAs of ~n states each
/// (Theorem 20 / T_del-relab scaling).
PaperExample RelabFamily(int n);

/// Unbounded copying (width n) over DTD(RE+) schemas (Theorem 37 scaling):
/// the trac engine is exponential in n here, the Section 5 engine is not.
PaperExample RePlusCopyFamily(int n);

/// Child-only XPath pattern of length n (Theorem 23 scaling).
PaperExample XPathChainFamily(int n);

/// DTD(NFA) schemas with n-state NFAs whose determinization is exponential
/// (the classic "n-th letter from the end" language): the PSPACE row of
/// Table 1.
PaperExample NfaSchemaFamily(int n);

/// A failing variant of FilterFamily (d_out misses one required title):
/// counterexample-generation workloads (Corollary 38).
PaperExample FailingFilterFamily(int n);

}  // namespace xtc

#endif  // XTC_WORKLOAD_FAMILIES_H_
