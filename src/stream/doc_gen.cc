#include "src/stream/doc_gen.h"

namespace xtc {
namespace {

// Chunks land well under the reader's compaction threshold so the pipeline
// exercises the need-input path many times per document.
constexpr std::size_t kChunkTarget = 3072;

}  // namespace

XmlDocStream::XmlDocStream(const StreamDocSpec& spec) : spec_(spec) {
  if (spec_.nodes == 0) spec_.nodes = 1;
}

int XmlDocStream::ToothDepth() const {
  switch (spec_.shape) {
    case StreamDocSpec::Shape::kWide:
      return 0;
    case StreamDocSpec::Shape::kDeep:
      return kDeepChainDepth;
    case StreamDocSpec::Shape::kMixed:
      // Deterministic variety: depths cycle through [2, kDeepChainDepth).
      return 2 + static_cast<int>((tooth_ * 41 + 7) %
                                  (kDeepChainDepth - 2));
  }
  return 0;
}

int XmlDocStream::ToothItems() const {
  if (spec_.shape == StreamDocSpec::Shape::kMixed) {
    return 1 + static_cast<int>(tooth_ % 4);
  }
  return 1;
}

void XmlDocStream::Step(std::string* out) {
  if (!started_) {
    out->append("<root>");
    started_ = true;
    emitted_ = 1;
    return;
  }
  if (emitted_ < spec_.nodes && !ascending_) {
    if (depth_ < ToothDepth()) {
      out->append("<section>");
      ++emitted_;
      ++depth_;
      if (depth_ == ToothDepth()) items_left_ = ToothItems();
      return;
    }
    if (depth_ == 0) {
      // kWide: an endless run of leaf items directly under the root.
      out->append("<item/>");
      ++emitted_;
      return;
    }
    if (items_left_ > 0 && emitted_ < spec_.nodes) {
      out->append("<item/>");
      ++emitted_;
      --items_left_;
      if (items_left_ > 0) return;
    }
    ascending_ = true;
    return;
  }
  if (depth_ > 0) {
    out->append("</section>");
    --depth_;
    if (depth_ == 0) {
      ascending_ = false;
      ++tooth_;
    }
    return;
  }
  out->append("</root>");
  done_ = true;
}

bool XmlDocStream::Next(std::string* chunk) {
  chunk->clear();
  if (done_) return false;
  while (chunk->size() < kChunkTarget && !done_) Step(chunk);
  bytes_emitted_ += chunk->size();
  return true;
}

std::string RenderDoc(const StreamDocSpec& spec) {
  XmlDocStream stream(spec);
  std::string doc;
  std::string chunk;
  while (stream.Next(&chunk)) doc += chunk;
  return doc;
}

}  // namespace xtc
