#ifndef XTC_STREAM_TRANSFORM_H_
#define XTC_STREAM_TRANSFORM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/budget.h"
#include "src/base/status.h"
#include "src/stream/event_reader.h"
#include "src/td/transducer.h"

namespace xtc {

/// Where streaming output bytes go. The service appends into the response
/// string; tests use the same sink; a future socket transport can stream.
class StreamSink {
 public:
  virtual ~StreamSink() = default;
  virtual Status Append(std::string_view bytes) = 0;
};

/// Appends into a caller-owned string.
class StringSink : public StreamSink {
 public:
  explicit StringSink(std::string* out) : out_(out) {}
  Status Append(std::string_view bytes) override {
    out_->append(bytes);
    return Status::Ok();
  }

 private:
  std::string* out_;
};

/// Streaming execution of a deterministic top-down transducer (Definition
/// 5) over an XML event stream, emitting the output document as XML text
/// (codec ToXml syntax, non-indented) on the fly.
///
/// Each open input element holds one expansion per transducer state
/// processing it: the rule template's label structure is written
/// immediately, and the template's state leaves become "holes" that this
/// element's children fill as their events arrive. The leftmost unfinished
/// hole writes straight through to its parent's output position — for
/// linear (non-copying) rules this chains all the way to the sink, so
/// output streams with O(depth) working memory. Every other hole of a
/// template (copying: the same children translated again) spills into a
/// byte-accounted buffer that is spliced in when the element closes.
/// Copy-spill is bounded by Options::max_spill_bytes; crossing the ceiling
/// fails soft with kResourceExhausted, the same degradation contract as
/// every governed engine (DESIGN.md §3).
///
/// Selectors are rejected at construction (kFailedPrecondition): a ⟨q, P⟩
/// leaf needs subtree navigation a stream cannot replay. The service runs
/// the compiled selector-free form (Theorems 23/29) instead.
///
/// Thread-compatibility: single-thread, like the Budget.
class StreamTransducer {
 public:
  struct Options {
    Budget* budget = nullptr;  ///< checkpointed per event (gated); borrowed
    /// Ceiling on bytes held across all live copy-spill buffers.
    std::size_t max_spill_bytes = std::size_t{16} << 20;
  };

  /// Fails with kFailedPrecondition if `t` uses selectors or has no
  /// initial state. `t` and `sink` are borrowed and must outlive this.
  static StatusOr<std::unique_ptr<StreamTransducer>> Create(
      const Transducer* t, StreamSink* sink);
  static StatusOr<std::unique_ptr<StreamTransducer>> Create(
      const Transducer* t, StreamSink* sink, const Options& options);

  /// Feeds one input event. Errors (spill ceiling, budget, sink) are
  /// sticky.
  Status OnEvent(const XmlEvent& event);

  /// Called once the reader reports kEndOfDocument. Enforces Definition
  /// 5's root restriction: the translation must be exactly one tree
  /// (kFailedPrecondition otherwise, matching the DOM path's message).
  Status Finish();

  std::size_t spill_bytes() const { return spill_bytes_; }
  std::size_t peak_spill_bytes() const { return peak_spill_bytes_; }
  std::uint64_t events() const { return events_; }

 private:
  /// One step of a flattened rule template.
  struct Op {
    enum class Kind { kOpen, kClose, kHole };
    Kind kind;
    int label = -1;  ///< kOpen/kClose: output label; kHole: state
  };
  using FlatTemplate = std::vector<Op>;

  /// An output position. Exactly one target per document is "live" (writes
  /// through to the sink); all others buffer. The self-closing-leaf
  /// bookkeeping (`<a/>` vs `<a>...</a>`) lives here so spliced spill
  /// bytes and streamed bytes serialize identically to codec ToXml.
  struct Target {
    StreamTransducer* owner;
    StreamSink* sink = nullptr;  ///< live target when non-null
    std::string buffer;         ///< spill storage otherwise
    std::vector<int> pending;   ///< opened labels with no content yet
    int open_depth = 0;         ///< committed open elements
    std::uint64_t roots = 0;    ///< top-level trees emitted (root target)

    Status Open(int label);
    Status Close(int label);
    /// Splices a finished spill (a self-contained serialized hedge).
    Status Splice(Target&& spill);
    Status CommitPending();
    Status Write(std::string_view bytes);
  };

  /// One state occurrence awaiting this element's children.
  struct Hole {
    int state;
    Target* target;  ///< borrowed from the frame's expansion storage
  };

  /// One (parent hole state, this element) rule expansion.
  struct Expansion {
    const FlatTemplate* tmpl = nullptr;  ///< null: no rule, empty output
    std::size_t resume = 0;  ///< next op index when the element closes
    Target* out;             ///< the parent hole's target
    std::vector<std::unique_ptr<Target>> spills;  ///< holes beyond the first
    std::vector<Hole> holes;
  };

  struct Frame {
    std::vector<Expansion> expansions;
  };

  StreamTransducer(const Transducer* t, StreamSink* sink,
                   const Options& options);

  const FlatTemplate* TemplateFor(int state, int symbol);
  static void Flatten(const RhsHedge& rhs, FlatTemplate* out);
  Status BeginExpansion(int state, int label, Target* out, Expansion* exp);
  /// Plays `exp`'s template from op `from` until the next hole (returning
  /// its index) or the template's end.
  Status PlayUntilHole(Expansion* exp, std::size_t from, std::size_t* next);
  Status CloseFrame(Frame& frame);
  Status ChargeSpill(std::size_t bytes);
  void ReleaseSpill(std::size_t bytes);

  const Transducer* t_;
  const Options options_;
  BudgetGate gate_;
  Target root_target_;
  std::vector<Frame> frames_;
  std::map<std::pair<int, int>, FlatTemplate> templates_;
  std::size_t spill_bytes_ = 0;
  std::size_t peak_spill_bytes_ = 0;
  std::uint64_t events_ = 0;
  bool root_dispatched_ = false;
  bool finished_ = false;
  Status latched_ = Status::Ok();
};

}  // namespace xtc

#endif  // XTC_STREAM_TRANSFORM_H_
