#ifndef XTC_STREAM_EVENT_READER_H_
#define XTC_STREAM_EVENT_READER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/budget.h"
#include "src/base/status.h"
#include "src/fa/alphabet.h"

namespace xtc {

/// A SAX-style XML event: an element opens or closes. Labels are interned
/// symbol ids (a self-closing `<a/>` yields a kStartElement immediately
/// followed by a kEndElement). There are no other event kinds — the
/// structure-only grammar (src/tree/xml_grammar.h) has no text, attributes,
/// comments or processing instructions.
enum class XmlEventKind { kStartElement, kEndElement };

struct XmlEvent {
  XmlEventKind kind = XmlEventKind::kStartElement;
  int label = -1;
};

/// A pull-based tokenizer producing XmlEvents from chunked input. It
/// implements exactly the grammar of src/tree/xml_grammar.h — the contract
/// shared with codec.cc's ParseXml — but never allocates a tree: working
/// memory is one partial-tag tail (bounded by the longest single tag) plus
/// the open-element label stack, i.e. O(depth), independent of document
/// size. Chunks may split anywhere, including mid-name.
///
/// Usage: Push() chunks as they arrive, Next() until it reports kNeedInput,
/// repeat; call FinishInput() after the last chunk, then Next() until
/// kEndOfDocument. Errors (malformed input, depth fuel, budget exhaustion)
/// are sticky: every later Next() repeats the same Status.
///
/// Thread-compatibility: single-thread only, like the Budget that governs
/// it. One reader consumes one document.
class XmlEventReader {
 public:
  struct Options {
    /// Optional governor: checkpointed once per event, chunk bytes charged
    /// via ChargeBytes. Borrowed; must outlive the reader.
    Budget* budget = nullptr;
  };

  /// Element names are interned into `alphabet` (borrowed). Like the DOM
  /// path, the service feeds a request-private alphabet seeded with the
  /// universe so that unknown document labels get ids past it.
  explicit XmlEventReader(Alphabet* alphabet);
  XmlEventReader(Alphabet* alphabet, const Options& options);

  /// Appends a chunk of document text. May be called any number of times,
  /// with chunks split at arbitrary byte positions.
  void Push(std::string_view chunk);

  /// Declares end of input. A document truncated mid-element surfaces as an
  /// InvalidArgument from the next Next().
  void FinishInput();

  enum class ReadResult {
    kEvent,          ///< `out` holds the next event
    kNeedInput,      ///< a complete tag is not buffered yet; Push more
    kEndOfDocument,  ///< the root element closed and the input is exhausted
  };

  /// Advances the tokenizer. On kEvent, `out` is filled; otherwise `out`
  /// is untouched.
  StatusOr<ReadResult> Next(XmlEvent* out);

  /// Open elements right now (root counts as 1 while open).
  int depth() const { return static_cast<int>(open_.size()); }
  std::uint64_t events() const { return events_; }
  std::uint64_t bytes_consumed() const { return bytes_consumed_; }
  /// High-water mark of depth() over the document so far.
  int max_depth() const { return max_depth_; }

 private:
  StatusOr<ReadResult> NextInner(XmlEvent* out);
  Status Fail(Status status);
  void Discard(std::size_t n);

  Alphabet* alphabet_;
  Budget* budget_;
  std::string buffer_;      ///< unconsumed tail; consumed prefix compacted
  std::size_t pos_ = 0;     ///< consumed prefix of buffer_
  std::vector<int> open_;   ///< label ids of open elements
  bool finished_ = false;   ///< FinishInput called
  bool root_done_ = false;  ///< the root element has closed
  bool pending_end_ = false;  ///< a self-closing tag owes its kEndElement
  int pending_label_ = -1;
  std::uint64_t events_ = 0;
  std::uint64_t bytes_consumed_ = 0;
  int max_depth_ = 0;
  Status latched_ = Status::Ok();
};

}  // namespace xtc

#endif  // XTC_STREAM_EVENT_READER_H_
