#ifndef XTC_STREAM_DOC_GEN_H_
#define XTC_STREAM_DOC_GEN_H_

#include <cstdint>
#include <string>

namespace xtc {

/// Shape and size of a synthetic structure-only XML document. All shapes
/// use the three-symbol vocabulary {root, section, item} and satisfy the
/// stream workload schema (StreamDocSchema in src/service/replay.h):
///
///   root    -> (section | item)*
///   section -> (section | item)*
///   item    -> eps
///
/// `kWide` is one root with `nodes - 1` leaf items (document size grows,
/// depth stays 2). `kDeep` is a sawtooth of section chains, each descending
/// to kDeepChainDepth before closing (depth-heavy, the streaming stack's
/// worst case under the 256-deep grammar fuel). `kMixed` interleaves teeth
/// of varying depth with runs of items at the bottom.
struct StreamDocSpec {
  enum class Shape { kWide, kDeep, kMixed };
  Shape shape = Shape::kWide;
  std::uint64_t nodes = 1000;  ///< total element count, >= 1
};

/// Generates the XML text of a StreamDocSpec document chunk by chunk with
/// O(depth) generator state — the point is feeding multi-megabyte documents
/// to the streaming engines (and the chunked wire protocol) without any
/// component, generator included, ever holding the whole document.
/// Deterministic: the same spec always yields the same byte sequence, so
/// differential tests can replay a doc into both the DOM and stream paths.
class XmlDocStream {
 public:
  /// Deepest section chain a kDeep/kMixed tooth descends to; one below the
  /// shared grammar depth fuel (root occupies one level).
  static constexpr int kDeepChainDepth = 200;

  explicit XmlDocStream(const StreamDocSpec& spec);

  /// Writes the next chunk (a few KiB) into `*chunk`, replacing its
  /// contents. Returns false — leaving `*chunk` empty — once the document
  /// is complete.
  bool Next(std::string* chunk);

  std::uint64_t bytes_emitted() const { return bytes_emitted_; }
  bool done() const { return done_; }

 private:
  void Step(std::string* out);
  int ToothDepth() const;
  int ToothItems() const;

  StreamDocSpec spec_;
  bool started_ = false;
  bool done_ = false;
  std::uint64_t emitted_ = 0;    ///< elements opened so far
  int depth_ = 0;                ///< open section chain below root
  int items_left_ = 0;           ///< items still to emit at this tooth's foot
  bool ascending_ = false;       ///< closing the current tooth
  std::uint64_t tooth_ = 0;      ///< completed teeth (varies kMixed shapes)
  std::uint64_t bytes_emitted_ = 0;
};

/// Accumulates the whole document into one string (tests, the replay
/// request builder — NOT the benches, which feed chunks straight through).
std::string RenderDoc(const StreamDocSpec& spec);

}  // namespace xtc

#endif  // XTC_STREAM_DOC_GEN_H_
