#include "src/stream/transform.h"

#include <utility>

#include "src/base/logging.h"

namespace xtc {

// --- Target ---------------------------------------------------------------

Status StreamTransducer::Target::Write(std::string_view bytes) {
  if (sink != nullptr) return sink->Append(bytes);
  XTC_RETURN_IF_ERROR(owner->ChargeSpill(bytes.size()));
  buffer.append(bytes);
  return Status::Ok();
}

Status StreamTransducer::Target::CommitPending() {
  if (pending.empty()) return Status::Ok();
  // Commits are rare enough (once per non-leaf output element) that the
  // pending stack is at most one deep in practice; a loop keeps it general.
  std::string text;
  for (int label : pending) {
    text.push_back('<');
    text.append(owner->t_->alphabet()->Name(label));
    text.push_back('>');
    ++open_depth;
  }
  pending.clear();
  return Write(text);
}

Status StreamTransducer::Target::Open(int label) {
  XTC_RETURN_IF_ERROR(CommitPending());
  if (open_depth == 0) ++roots;
  pending.push_back(label);
  return Status::Ok();
}

Status StreamTransducer::Target::Close(int label) {
  if (!pending.empty()) {
    // Zero content between Open and Close: serialize the self-closing leaf
    // form, byte-identical to codec ToXml.
    XTC_CHECK_EQ(pending.back(), label);
    pending.pop_back();
    std::string text = "<";
    text.append(owner->t_->alphabet()->Name(label));
    text.append("/>");
    return Write(text);
  }
  XTC_CHECK_GT(open_depth, 0);
  --open_depth;
  std::string text = "</";
  text.append(owner->t_->alphabet()->Name(label));
  text.push_back('>');
  return Write(text);
}

Status StreamTransducer::Target::Splice(Target&& spill) {
  if (spill.buffer.empty()) return Status::Ok();
  XTC_RETURN_IF_ERROR(CommitPending());
  if (open_depth == 0) roots += spill.roots;
  owner->ReleaseSpill(spill.buffer.size());
  std::string bytes = std::move(spill.buffer);
  spill.buffer.clear();
  return Write(bytes);
}

// --- StreamTransducer -----------------------------------------------------

StatusOr<std::unique_ptr<StreamTransducer>> StreamTransducer::Create(
    const Transducer* t, StreamSink* sink) {
  return Create(t, sink, Options());
}

StatusOr<std::unique_ptr<StreamTransducer>> StreamTransducer::Create(
    const Transducer* t, StreamSink* sink, const Options& options) {
  if (t->initial() < 0) {
    return FailedPreconditionError(
        "streaming transducer needs an initial state");
  }
  if (t->HasSelectors()) {
    return FailedPreconditionError(
        "selectors need subtree navigation a stream cannot replay; compile "
        "them away first (Theorems 23/29)");
  }
  return std::unique_ptr<StreamTransducer>(
      new StreamTransducer(t, sink, options));
}

StreamTransducer::StreamTransducer(const Transducer* t, StreamSink* sink,
                                   const Options& options)
    : t_(t), options_(options), gate_(options.budget) {
  root_target_.owner = this;
  root_target_.sink = sink;
}

void StreamTransducer::Flatten(const RhsHedge& rhs, FlatTemplate* out) {
  for (const RhsNode& n : rhs) {
    switch (n.kind) {
      case RhsNode::Kind::kLabel:
        out->push_back(Op{Op::Kind::kOpen, n.label});
        Flatten(n.children, out);
        out->push_back(Op{Op::Kind::kClose, n.label});
        break;
      case RhsNode::Kind::kState:
        out->push_back(Op{Op::Kind::kHole, n.state});
        break;
      case RhsNode::Kind::kSelect:
        // Unreachable: Create rejects selector transducers.
        break;
    }
  }
}

const StreamTransducer::FlatTemplate* StreamTransducer::TemplateFor(
    int state, int symbol) {
  auto key = std::make_pair(state, symbol);
  auto it = templates_.find(key);
  if (it != templates_.end()) return &it->second;
  const RhsHedge* rhs = t_->rule(state, symbol);
  if (rhs == nullptr) return nullptr;
  FlatTemplate flat;
  Flatten(*rhs, &flat);
  return &templates_.emplace(key, std::move(flat)).first->second;
}

Status StreamTransducer::ChargeSpill(std::size_t bytes) {
  spill_bytes_ += bytes;
  if (spill_bytes_ > peak_spill_bytes_) peak_spill_bytes_ = spill_bytes_;
  if (options_.budget != nullptr) options_.budget->ChargeBytes(bytes);
  if (spill_bytes_ > options_.max_spill_bytes) {
    return ResourceExhaustedError(
        "copy-spill exceeds its ceiling (" +
        std::to_string(options_.max_spill_bytes) +
        " bytes): the transducer copies more than this stream can buffer");
  }
  return Status::Ok();
}

void StreamTransducer::ReleaseSpill(std::size_t bytes) {
  spill_bytes_ -= bytes < spill_bytes_ ? bytes : spill_bytes_;
}

Status StreamTransducer::PlayUntilHole(Expansion* exp, std::size_t from,
                                       std::size_t* next) {
  const FlatTemplate& tmpl = *exp->tmpl;
  for (std::size_t i = from; i < tmpl.size(); ++i) {
    switch (tmpl[i].kind) {
      case Op::Kind::kOpen:
        XTC_RETURN_IF_ERROR(exp->out->Open(tmpl[i].label));
        break;
      case Op::Kind::kClose:
        XTC_RETURN_IF_ERROR(exp->out->Close(tmpl[i].label));
        break;
      case Op::Kind::kHole:
        *next = i;
        return Status::Ok();
    }
  }
  *next = tmpl.size();
  return Status::Ok();
}

Status StreamTransducer::BeginExpansion(int state, int label, Target* out,
                                        Expansion* exp) {
  exp->out = out;
  exp->tmpl = TemplateFor(state, label);
  if (exp->tmpl == nullptr) {
    // No (state, symbol) rule: the translation is the empty hedge and the
    // element's children are not processed in this context.
    exp->resume = 0;
    return Status::Ok();
  }
  // Emit the label structure before the first hole now; record every hole
  // so child events can be dispatched as they arrive. The first hole
  // continues in place (streaming); later holes buffer (copy-spill).
  std::size_t first_hole = 0;
  XTC_RETURN_IF_ERROR(PlayUntilHole(exp, 0, &first_hole));
  exp->resume = first_hole < exp->tmpl->size() ? first_hole + 1
                                               : exp->tmpl->size();
  bool first = true;
  for (std::size_t i = first_hole; i < exp->tmpl->size(); ++i) {
    const Op& op = (*exp->tmpl)[i];
    if (op.kind != Op::Kind::kHole) continue;
    if (first) {
      exp->holes.push_back(Hole{op.label, out});
      first = false;
    } else {
      auto spill = std::make_unique<Target>();
      spill->owner = this;
      exp->holes.push_back(Hole{op.label, spill.get()});
      exp->spills.push_back(std::move(spill));
    }
  }
  return Status::Ok();
}

Status StreamTransducer::CloseFrame(Frame& frame) {
  for (Expansion& exp : frame.expansions) {
    if (exp.tmpl == nullptr) continue;
    std::size_t i = exp.resume;
    std::size_t spill_idx = 0;
    while (i < exp.tmpl->size()) {
      std::size_t next = 0;
      XTC_RETURN_IF_ERROR(PlayUntilHole(&exp, i, &next));
      if (next >= exp.tmpl->size()) break;
      // The hole's children translations are complete; splice its spill at
      // its template position.
      XTC_CHECK_LT(spill_idx, exp.spills.size());
      XTC_RETURN_IF_ERROR(
          exp.out->Splice(std::move(*exp.spills[spill_idx])));
      ++spill_idx;
      i = next + 1;
    }
  }
  return Status::Ok();
}

Status StreamTransducer::OnEvent(const XmlEvent& event) {
  if (!latched_.ok()) return latched_;
  ++events_;
  Status s = gate_.Poll("StreamTransducer");
  if (!s.ok()) return latched_ = s;

  if (event.kind == XmlEventKind::kStartElement) {
    Frame frame;
    if (frames_.empty()) {
      if (root_dispatched_) {
        return latched_ = InvalidArgumentError(
                   "unbalanced event stream: second root element");
      }
      root_dispatched_ = true;
      Expansion exp;
      s = BeginExpansion(t_->initial(), event.label, &root_target_, &exp);
      if (!s.ok()) return latched_ = s;
      frame.expansions.push_back(std::move(exp));
    } else {
      Frame& parent = frames_.back();
      for (Expansion& pexp : parent.expansions) {
        for (Hole& hole : pexp.holes) {
          Expansion exp;
          s = BeginExpansion(hole.state, event.label, hole.target, &exp);
          if (!s.ok()) return latched_ = s;
          frame.expansions.push_back(std::move(exp));
        }
      }
    }
    frames_.push_back(std::move(frame));
  } else {
    if (frames_.empty()) {
      return latched_ = InvalidArgumentError(
                 "unbalanced event stream: end without start");
    }
    s = CloseFrame(frames_.back());
    frames_.pop_back();
    if (!s.ok()) return latched_ = s;
  }
  return Status::Ok();
}

Status StreamTransducer::Finish() {
  if (!latched_.ok()) return latched_;
  if (!frames_.empty()) {
    return latched_ =
               InvalidArgumentError("unbalanced event stream at end of input");
  }
  finished_ = true;
  if (root_target_.roots != 1) {
    // Definition 5's root restriction, same message as the DOM path.
    return latched_ = FailedPreconditionError(
               "transducer output at the root is not a single tree");
  }
  return Status::Ok();
}

}  // namespace xtc
