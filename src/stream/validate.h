#ifndef XTC_STREAM_VALIDATE_H_
#define XTC_STREAM_VALIDATE_H_

#include <cstdint>
#include <vector>

#include "src/base/budget.h"
#include "src/base/status.h"
#include "src/schema/dtd.h"
#include "src/stream/event_reader.h"

namespace xtc {

/// Streaming DTD validation (Definition 1) over an XML event stream: one
/// complete content-model DFA state per open element, advanced by each
/// child's label at kStartElement and required to be accepting at
/// kEndElement. Working memory is the frame stack — O(depth), independent
/// of document size — which is the whole point: the DOM path's ceiling is
/// the document, this engine's is the schema.
///
/// Verdict semantics mirror Dtd::Valid byte for byte: the root label must
/// equal the start symbol, every node's child string must match its rule,
/// and labels outside [0, num_symbols) (i.e. document labels past the
/// request universe) invalidate. Schema violations latch `valid() == false`
/// and stop all DFA work, but feeding may continue so the surrounding
/// reader still enforces well-formedness; only budget exhaustion surfaces
/// as a non-ok Status.
///
/// The Dtd must be Compile()d (RuleDfaComplete is a pure read only then);
/// cached service artifacts always are. Thread-compatibility:
/// single-thread, like the Budget.
class StreamValidator {
 public:
  struct Options {
    /// Optional governor, checkpointed per event (gated). Borrowed.
    Budget* budget = nullptr;
  };

  explicit StreamValidator(const Dtd* dtd);
  StreamValidator(const Dtd* dtd, const Options& options);

  /// Feeds one event. Returns non-ok only on budget exhaustion (sticky).
  Status OnEvent(const XmlEvent& event);

  /// Whether everything fed so far still satisfies the DTD. The final
  /// verdict additionally requires the root to have closed: call
  /// AtEndOfDocument() once the reader reports kEndOfDocument.
  bool valid() const { return !invalid_; }

  /// The document-complete verdict (root seen, root closed, all matched).
  bool AtEndOfDocument() const {
    return !invalid_ && root_completed_;
  }

  /// Frames currently held (== open elements); peak is the O(depth) bound.
  int depth() const { return static_cast<int>(frames_.size()); }
  int peak_depth() const { return peak_depth_; }
  std::uint64_t events() const { return events_; }

 private:
  struct Frame {
    const Dfa* dfa;  ///< complete content-model DFA of this element
    int state;       ///< after the children seen so far
  };

  const Dtd* dtd_;
  BudgetGate gate_;
  std::vector<Frame> frames_;
  bool invalid_ = false;
  bool root_seen_ = false;
  bool root_completed_ = false;
  int skip_depth_ = 0;  ///< open elements below an invalidating frame
  int peak_depth_ = 0;
  std::uint64_t events_ = 0;
};

}  // namespace xtc

#endif  // XTC_STREAM_VALIDATE_H_
