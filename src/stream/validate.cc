#include "src/stream/validate.h"

namespace xtc {

StreamValidator::StreamValidator(const Dtd* dtd)
    : StreamValidator(dtd, Options()) {}

StreamValidator::StreamValidator(const Dtd* dtd, const Options& options)
    : dtd_(dtd), gate_(options.budget) {}

Status StreamValidator::OnEvent(const XmlEvent& event) {
  ++events_;
  XTC_RETURN_IF_ERROR(gate_.Poll("StreamValidator"));
  if (invalid_) {
    // Keep the depth bookkeeping honest so a caller can still observe
    // document structure, but never touch another DFA.
    if (event.kind == XmlEventKind::kStartElement) {
      ++skip_depth_;
    } else if (skip_depth_ > 0) {
      --skip_depth_;
    } else if (!frames_.empty()) {
      frames_.pop_back();
    }
    return Status::Ok();
  }
  if (event.kind == XmlEventKind::kStartElement) {
    if (event.label < 0 || event.label >= dtd_->num_symbols()) {
      invalid_ = true;
      ++skip_depth_;
      return Status::Ok();
    }
    if (frames_.empty()) {
      if (root_seen_ || event.label != dtd_->start()) {
        // A second root never arrives from a well-formed reader, but a
        // caller driving events by hand gets the same verdict Valid gives.
        invalid_ = true;
        ++skip_depth_;
        return Status::Ok();
      }
      root_seen_ = true;
    } else {
      // Advance the parent's content model by this child's label. Complete
      // DFAs never step to kDead; a violated rule parks in a non-final
      // sink that the parent's kEndElement check rejects.
      Frame& parent = frames_.back();
      parent.state = parent.dfa->Step(parent.state, event.label);
    }
    frames_.push_back(Frame{&dtd_->RuleDfaComplete(event.label),
                            dtd_->RuleDfaComplete(event.label).initial()});
    if (static_cast<int>(frames_.size()) > peak_depth_) {
      peak_depth_ = static_cast<int>(frames_.size());
    }
  } else {
    if (frames_.empty()) {
      invalid_ = true;  // unbalanced end from a hand-driven caller
      return Status::Ok();
    }
    Frame& top = frames_.back();
    if (top.state == Dfa::kDead || !top.dfa->final(top.state)) {
      invalid_ = true;
    }
    frames_.pop_back();
    if (frames_.empty() && !invalid_) root_completed_ = true;
  }
  return Status::Ok();
}

}  // namespace xtc
