#include "src/stream/event_reader.h"

#include <cctype>

#include "src/tree/xml_grammar.h"

namespace xtc {
namespace {

bool IsSpaceByte(char c) {
  return std::isspace(static_cast<unsigned char>(c));
}

}  // namespace

XmlEventReader::XmlEventReader(Alphabet* alphabet)
    : XmlEventReader(alphabet, Options()) {}

XmlEventReader::XmlEventReader(Alphabet* alphabet, const Options& options)
    : alphabet_(alphabet), budget_(options.budget) {}

void XmlEventReader::Push(std::string_view chunk) {
  if (budget_ != nullptr) budget_->ChargeBytes(chunk.size());
  buffer_.append(chunk);
}

void XmlEventReader::FinishInput() { finished_ = true; }

Status XmlEventReader::Fail(Status status) {
  latched_ = status;
  return latched_;
}

void XmlEventReader::Discard(std::size_t n) {
  pos_ += n;
  bytes_consumed_ += n;
  // Compact once the consumed prefix dominates, so the buffer stays at
  // O(longest tag) instead of O(document).
  if (pos_ > 4096 && pos_ * 2 >= buffer_.size()) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
}

StatusOr<XmlEventReader::ReadResult> XmlEventReader::Next(XmlEvent* out) {
  if (!latched_.ok()) return latched_;
  StatusOr<ReadResult> r = NextInner(out);
  if (!r.ok()) latched_ = r.status();
  if (r.ok() && *r == ReadResult::kEvent) {
    ++events_;
    if (budget_ != nullptr) {
      Status s = budget_->Check("XmlEventReader");
      if (!s.ok()) return Fail(s);
    }
  }
  return r;
}

StatusOr<XmlEventReader::ReadResult> XmlEventReader::NextInner(XmlEvent* out) {
  // A self-closing tag emits its synthesized end event before any further
  // input is consumed.
  if (pending_end_) {
    pending_end_ = false;
    out->kind = XmlEventKind::kEndElement;
    out->label = pending_label_;
    open_.pop_back();
    if (open_.empty()) root_done_ = true;
    return ReadResult::kEvent;
  }

  // Inter-tag whitespace is consumable immediately; everything else waits
  // for a full tag in the buffer.
  while (pos_ < buffer_.size() && IsSpaceByte(buffer_[pos_])) Discard(1);

  if (pos_ >= buffer_.size()) {
    if (!finished_) return ReadResult::kNeedInput;
    if (root_done_) return ReadResult::kEndOfDocument;
    if (open_.empty()) {
      return Fail(InvalidArgumentError("expected '<' at position " +
                                       std::to_string(bytes_consumed_)));
    }
    return Fail(InvalidArgumentError(
        "unexpected end of input inside <" +
        alphabet_->Name(open_.back()) + ">"));
  }

  if (root_done_) {
    return Fail(InvalidArgumentError(
        "trailing characters after root element at position " +
        std::to_string(bytes_consumed_)));
  }
  if (buffer_[pos_] != '<') {
    return Fail(InvalidArgumentError("expected '<' at position " +
                                     std::to_string(bytes_consumed_)));
  }

  // Wait until the whole tag is buffered: tags are tiny (a name plus
  // punctuation), so this is the only lookahead the grammar ever needs and
  // the buffer tail stays bounded by the longest single tag.
  std::size_t close = buffer_.find('>', pos_);
  if (close == std::string::npos) {
    if (!finished_) return ReadResult::kNeedInput;
    return Fail(InvalidArgumentError("unexpected end of input inside a tag"));
  }

  std::size_t p = pos_ + 1;
  bool closing = false;
  if (p < close && buffer_[p] == '/') {
    closing = true;
    ++p;
  }
  std::size_t name_start = p;
  while (p < close && IsXmlNameChar(buffer_[p])) ++p;
  if (p == name_start) {
    return Fail(InvalidArgumentError("expected element name"));
  }
  std::string_view name(buffer_.data() + name_start, p - name_start);
  while (p < close && IsSpaceByte(buffer_[p])) ++p;
  bool self_closing = false;
  if (!closing && p < close && buffer_[p] == '/') {
    self_closing = true;
    ++p;
  }
  if (p != close) {
    return Fail(InvalidArgumentError(
        "expected '>' (attributes and text content are not supported)"));
  }

  if (closing) {
    if (open_.empty() ||
        alphabet_->Name(open_.back()) != name) {
      return Fail(InvalidArgumentError("mismatched closing tag for <" +
                                       std::string(name) + ">"));
    }
    out->kind = XmlEventKind::kEndElement;
    out->label = open_.back();
    open_.pop_back();
    if (open_.empty()) root_done_ = true;
    Discard(close + 1 - pos_);
    return ReadResult::kEvent;
  }

  // Depth fuel (shared contract, src/tree/xml_grammar.h): the open-element
  // stack is this reader's only document-proportional state, and the fuel
  // caps it.
  if (static_cast<int>(open_.size()) >= kMaxXmlDepth) {
    return Fail(InvalidArgumentError("element nesting exceeds depth limit " +
                                     std::to_string(kMaxXmlDepth)));
  }
  int label = alphabet_->Intern(name);
  open_.push_back(label);
  if (static_cast<int>(open_.size()) > max_depth_) {
    max_depth_ = static_cast<int>(open_.size());
  }
  if (self_closing) {
    pending_end_ = true;
    pending_label_ = label;
  }
  out->kind = XmlEventKind::kStartElement;
  out->label = label;
  Discard(close + 1 - pos_);
  return ReadResult::kEvent;
}

}  // namespace xtc
