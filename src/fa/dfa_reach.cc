#include "src/fa/dfa_reach.h"

namespace xtc {

const StateSet& DfaReachability::From(int state) {
  StateSet& cached = from_[static_cast<std::size_t>(state)];
  if (cached.size_bits() != 0) return cached;
  StateSet seen(dfa_->num_states());
  seen.Set(state);
  std::vector<int> frontier = {state};
  while (!frontier.empty()) {
    const int s = frontier.back();
    frontier.pop_back();
    for (int a = 0; a < dfa_->num_symbols(); ++a) {
      const int t = dfa_->Step(s, a);
      if (t == Dfa::kDead || seen.Test(t)) continue;
      seen.Set(t);
      frontier.push_back(t);
    }
  }
  cached = std::move(seen);
  return cached;
}

}  // namespace xtc
