#ifndef XTC_FA_NFA_H_
#define XTC_FA_NFA_H_

#include <cstddef>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "src/base/state_set.h"

namespace xtc {

/// A non-deterministic finite automaton over integer symbols 0..num_symbols-1
/// (Section 2 of the paper). No epsilon transitions; multiple initial states
/// are allowed. Transition storage is sparse, so very large alphabets (e.g.
/// tree-automaton state ids used as string symbols) are cheap. All set-of-
/// states analyses run on the packed word-parallel StateSet kernel; the
/// `allowed` masks are StateSets over the symbol universe.
class Nfa {
 public:
  explicit Nfa(int num_symbols) : num_symbols_(num_symbols) {}

  /// Adds a state and returns its id.
  int AddState(bool initial = false, bool final = false);

  /// Pre-sizes the state tables for `num_states` AddState calls; the
  /// product/embedding constructions know their state count up front.
  void ReserveStates(int num_states);
  /// Pre-sizes the edge list of `state` for `num_edges` AddTransition calls.
  void ReserveEdges(int state, std::size_t num_edges);

  void SetInitial(int state, bool initial = true);
  void SetFinal(int state, bool final = true);
  void AddTransition(int from, int symbol, int to);

  /// The mutable edge list of `state`, for bulk construction loops (NTA
  /// products emit tens of millions of edges) whose indices are correct by
  /// construction; callers must respect the AddTransition invariants
  /// (0 <= symbol < num_symbols, targets in range).
  std::vector<std::pair<int, int>>& MutableEdges(int state) {
    return trans_[state];
  }

  int num_states() const { return static_cast<int>(trans_.size()); }
  int num_symbols() const { return num_symbols_; }
  bool initial(int state) const { return initial_[state]; }
  bool final(int state) const { return final_[state]; }

  /// All (symbol, target) edges out of `state`.
  const std::vector<std::pair<int, int>>& Edges(int state) const {
    return trans_[state];
  }

  /// Paper size measure: |Q| + |Sigma| + total transitions.
  std::size_t Size() const;

  /// Whether the automaton accepts `word`.
  bool Accepts(std::span<const int> word) const;

  bool AcceptsEpsilon() const;

  /// Whether L(N) is empty.
  bool IsEmpty() const { return !AcceptsSomeOver(nullptr); }

  /// Whether the automaton accepts some string all of whose symbols s have
  /// allowed->Test(s) (allowed == nullptr means every symbol is allowed).
  bool AcceptsSomeOver(const StateSet* allowed) const;

  /// A shortest accepted string over the allowed symbols, if any.
  std::optional<std::vector<int>> ShortestAcceptedOver(
      const StateSet* allowed) const;

  /// Symbols that occur on at least one accepting path using only allowed
  /// symbols. Used for DTD inhabitation and tree-automaton reachability.
  StateSet SymbolsOnAcceptingPaths(const StateSet* allowed) const;

  /// Whether infinitely many strings over the allowed symbols are accepted
  /// (i.e. some accepting path goes through a cycle). Used for NTA
  /// finiteness (Proposition 4(1)).
  bool AcceptsInfinitelyManyOver(const StateSet* allowed) const;

  /// Product (intersection) automaton: L = L(a) ∩ L(b).
  static Nfa Intersection(const Nfa& a, const Nfa& b);

  /// Disjoint-union automaton: L = L(a) ∪ L(b).
  static Nfa Union(const Nfa& a, const Nfa& b);

  /// An NFA accepting exactly {word}.
  static Nfa SingleWord(int num_symbols, std::span<const int> word);

  /// A copy over a larger alphabet with every symbol s replaced by
  /// s + offset. Used when embedding tree-automaton horizontal languages
  /// into a combined state space.
  Nfa ShiftedSymbols(int offset, int new_num_symbols) const;

 private:
  // States with an in-edge (or initial) from which a final state is reachable
  // restricted to allowed symbols; helpers below share BFS plumbing.
  StateSet ForwardReachable(const StateSet* allowed) const;
  StateSet BackwardReachable(const StateSet* allowed) const;

  int num_symbols_;
  std::vector<bool> initial_;
  std::vector<bool> final_;
  std::vector<std::vector<std::pair<int, int>>> trans_;
};

}  // namespace xtc

#endif  // XTC_FA_NFA_H_
