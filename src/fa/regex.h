#ifndef XTC_FA_REGEX_H_
#define XTC_FA_REGEX_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"
#include "src/fa/alphabet.h"
#include "src/fa/nfa.h"

namespace xtc {

/// Immutable regular-expression AST over interned symbols. DTD content
/// models (Definition 1) are written as regular expressions and compiled to
/// NFAs/DFAs via the Glushkov position construction.
struct Regex;
using RegexPtr = std::shared_ptr<const Regex>;

struct Regex {
  enum class Kind {
    kEmptySet,  ///< the empty language
    kEpsilon,   ///< {ε}
    kSymbol,    ///< a single alphabet symbol
    kConcat,    ///< children concatenated
    kAlt,       ///< union of children
    kStar,      ///< zero or more
    kPlus,      ///< one or more
    kOpt,       ///< zero or one
  };

  Kind kind = Kind::kEmptySet;
  int symbol = -1;                 ///< for kSymbol
  std::vector<RegexPtr> children;  ///< operands

  static RegexPtr EmptySet();
  static RegexPtr Epsilon();
  static RegexPtr Sym(int symbol);
  static RegexPtr Concat(std::vector<RegexPtr> children);
  static RegexPtr Alt(std::vector<RegexPtr> children);
  static RegexPtr Star(RegexPtr child);
  static RegexPtr Plus(RegexPtr child);
  static RegexPtr Opt(RegexPtr child);
};

/// Parses a regular expression. Syntax: juxtaposition (whitespace or ',')
/// is concatenation, '|' is union, postfix '*', '+', '?', parentheses,
/// '%' denotes epsilon. Symbol names match [A-Za-z0-9_#$.:-]+ and are
/// interned into `alphabet`.
StatusOr<RegexPtr> ParseRegex(std::string_view text, Alphabet* alphabet);

/// Renders the expression back to the parser's syntax.
std::string RegexToString(const Regex& re, const Alphabet& alphabet);

/// Glushkov position automaton; `num_symbols` is the alphabet size of the
/// resulting NFA (must exceed every symbol used in `re`).
Nfa RegexToNfa(const Regex& re, int num_symbols);

/// Whether the Glushkov automaton of `re` is deterministic, i.e. whether the
/// expression is one-unambiguous as required of real-world DTD content
/// models.
bool RegexIsOneUnambiguous(const Regex& re, int num_symbols);

/// Number of AST nodes.
int RegexSize(const Regex& re);

/// Collects the symbols occurring in `re`.
void RegexSymbols(const Regex& re, std::vector<bool>* used);

}  // namespace xtc

#endif  // XTC_FA_REGEX_H_
