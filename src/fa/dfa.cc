#include "src/fa/dfa.h"

#include <algorithm>
#include <deque>
#include <map>
#include <numeric>

#include "src/base/interner.h"
#include "src/base/logging.h"

namespace xtc {

int Dfa::AddState(bool final) {
  int id = num_states();
  final_.push_back(final);
  trans_.emplace_back(num_symbols_, kDead);
  return id;
}

void Dfa::SetFinal(int state, bool final) {
  XTC_CHECK(state >= 0 && state < num_states());
  final_[state] = final;
}

void Dfa::SetTransition(int from, int symbol, int to) {
  XTC_CHECK(from >= 0 && from < num_states());
  XTC_CHECK(symbol >= 0 && symbol < num_symbols_);
  XTC_CHECK(to >= kDead && to < num_states());
  trans_[from][symbol] = to;
}

int Dfa::Step(int state, int symbol) const {
  if (state == kDead) return kDead;
  XTC_CHECK(state >= 0 && state < num_states());
  XTC_CHECK(symbol >= 0 && symbol < num_symbols_);
  return trans_[state][symbol];
}

int Dfa::Run(int state, std::span<const int> word) const {
  for (int sym : word) {
    if (state == kDead) return kDead;
    state = Step(state, sym);
  }
  return state;
}

bool Dfa::Accepts(std::span<const int> word) const {
  int s = Run(initial_, word);
  return s != kDead && final_[s];
}

std::size_t Dfa::Size() const {
  std::size_t edges = 0;
  for (const auto& row : trans_) {
    for (int t : row) {
      if (t != kDead) ++edges;
    }
  }
  return static_cast<std::size_t>(num_states()) +
         static_cast<std::size_t>(num_symbols_) + edges;
}

bool Dfa::IsComplete() const {
  if (initial_ == kDead) return false;
  for (const auto& row : trans_) {
    for (int t : row) {
      if (t == kDead) return false;
    }
  }
  return true;
}

Dfa Dfa::Completed() const {
  Dfa out = *this;
  if (out.initial_ == kDead) {
    out.initial_ = out.AddState(false);
  }
  bool needs_sink = false;
  for (const auto& row : out.trans_) {
    if (std::find(row.begin(), row.end(), kDead) != row.end()) {
      needs_sink = true;
      break;
    }
  }
  if (!needs_sink) return out;
  int sink = out.AddState(false);
  for (auto& row : out.trans_) {
    for (int& t : row) {
      if (t == kDead) t = sink;
    }
  }
  return out;
}

Dfa Dfa::Complemented() const {
  Dfa out = Completed();
  for (int s = 0; s < out.num_states(); ++s) {
    out.final_[s] = !out.final_[s];
  }
  return out;
}

Dfa Dfa::Product(const Dfa& a_in, const Dfa& b_in, BoolOp op) {
  // Ungoverned: with a null budget the governed construction cannot fail.
  return *Product(a_in, b_in, op, nullptr);
}

StatusOr<Dfa> Dfa::Product(const Dfa& a_in, const Dfa& b_in, BoolOp op,
                           Budget* budget) {
  // Complete operands so the pairing never loses track of one side.
  Dfa a = a_in.Completed();
  Dfa b = b_in.Completed();
  Dfa out(a.num_symbols());
  XTC_CHECK_EQ(a.num_symbols(), b.num_symbols());
  // Pair states are interned by hash; interner ids coincide with DFA state
  // ids, so the id sequence doubles as the BFS worklist.
  SubsetInterner ids;
  auto get = [&](int sa, int sb) {
    const int pair[2] = {sa, sb};
    int id = ids.Intern(pair);
    if (id < out.num_states()) return id;  // already materialized
    bool fa = a.final(sa);
    bool fb = b.final(sb);
    bool f = false;
    switch (op) {
      case BoolOp::kAnd:
        f = fa && fb;
        break;
      case BoolOp::kOr:
        f = fa || fb;
        break;
      case BoolOp::kDiff:
        f = fa && !fb;
        break;
    }
    return out.AddState(f);
  };
  out.SetInitial(get(a.initial(), b.initial()));
  for (int from = 0; from < ids.size(); ++from) {
    XTC_RETURN_IF_ERROR(BudgetCheck(budget, "Dfa::Product"));
    // Copy out: the interner pool may reallocate as new pairs are minted.
    const std::span<const int> pair = ids.Get(from);
    const int sa = pair[0];
    const int sb = pair[1];
    for (int sym = 0; sym < a.num_symbols(); ++sym) {
      int ta = a.Step(sa, sym);
      int tb = b.Step(sb, sym);
      out.SetTransition(from, sym, get(ta, tb));
    }
  }
  return out;
}

bool Dfa::IsEmpty() const { return !ShortestAccepted().has_value(); }

std::optional<std::vector<int>> Dfa::ShortestAccepted() const {
  if (initial_ == kDead) return std::nullopt;
  std::vector<int> pred_state(num_states(), -2);
  std::vector<int> pred_sym(num_states(), -1);
  std::deque<int> queue;
  pred_state[initial_] = -1;
  queue.push_back(initial_);
  while (!queue.empty()) {
    int s = queue.front();
    queue.pop_front();
    if (final_[s]) {
      std::vector<int> word;
      for (int cur = s; pred_state[cur] != -1; cur = pred_state[cur]) {
        word.push_back(pred_sym[cur]);
      }
      std::reverse(word.begin(), word.end());
      return word;
    }
    for (int sym = 0; sym < num_symbols_; ++sym) {
      int t = trans_[s][sym];
      if (t == kDead || pred_state[t] != -2) continue;
      pred_state[t] = s;
      pred_sym[t] = sym;
      queue.push_back(t);
    }
  }
  return std::nullopt;
}

bool Dfa::IncludedIn(const Dfa& other) const {
  return Product(*this, other, BoolOp::kDiff).IsEmpty();
}

bool Dfa::EquivalentTo(const Dfa& other) const {
  return IncludedIn(other) && other.IncludedIn(*this);
}

Dfa Dfa::Minimized() const { return *Minimized(nullptr); }

StatusOr<Dfa> Dfa::Minimized(Budget* budget) const {
  Dfa c = Completed();
  // Restrict to states reachable from the initial state.
  std::vector<int> order;
  std::vector<int> index(c.num_states(), -1);
  order.push_back(c.initial());
  index[c.initial()] = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    int s = order[i];
    for (int sym = 0; sym < c.num_symbols(); ++sym) {
      int t = c.trans_[s][sym];
      if (index[t] == -1) {
        index[t] = static_cast<int>(order.size());
        order.push_back(t);
      }
    }
  }
  const int n = static_cast<int>(order.size());
  // Moore refinement on the reachable part.
  std::vector<int> cls(n);
  for (int i = 0; i < n; ++i) cls[i] = c.final_[order[i]] ? 1 : 0;
  bool changed = true;
  std::vector<int> sig;
  while (changed) {
    changed = false;
    SubsetInterner sig_to_cls;
    std::vector<int> next_cls(n);
    for (int i = 0; i < n; ++i) {
      XTC_RETURN_IF_ERROR(BudgetCheck(budget, "Dfa::Minimized"));
      sig.clear();
      sig.reserve(static_cast<std::size_t>(c.num_symbols()) + 1);
      sig.push_back(cls[i]);
      for (int sym = 0; sym < c.num_symbols(); ++sym) {
        sig.push_back(cls[index[c.trans_[order[i]][sym]]]);
      }
      next_cls[i] = sig_to_cls.Intern(sig);
    }
    if (next_cls != cls) {
      changed = true;
      cls = std::move(next_cls);
    }
  }
  int num_classes = *std::max_element(cls.begin(), cls.end()) + 1;
  Dfa out(c.num_symbols());
  for (int k = 0; k < num_classes; ++k) out.AddState(false);
  for (int i = 0; i < n; ++i) {
    if (c.final_[order[i]]) out.SetFinal(cls[i]);
    for (int sym = 0; sym < c.num_symbols(); ++sym) {
      out.SetTransition(cls[i], sym, cls[index[c.trans_[order[i]][sym]]]);
    }
  }
  out.SetInitial(cls[0]);
  return out;
}

Nfa Dfa::ToNfa() const {
  Nfa out(num_symbols_);
  for (int s = 0; s < num_states(); ++s) {
    out.AddState(s == initial_, final_[s]);
  }
  for (int s = 0; s < num_states(); ++s) {
    for (int sym = 0; sym < num_symbols_; ++sym) {
      if (trans_[s][sym] != kDead) out.AddTransition(s, sym, trans_[s][sym]);
    }
  }
  return out;
}

Nfa Dfa::Reverse(const Dfa& d) {
  Nfa out(d.num_symbols());
  for (int s = 0; s < d.num_states(); ++s) {
    out.AddState(d.final(s), s == d.initial());
  }
  for (int s = 0; s < d.num_states(); ++s) {
    for (int sym = 0; sym < d.num_symbols(); ++sym) {
      int t = d.trans_[s][sym];
      if (t != kDead) out.AddTransition(t, sym, s);
    }
  }
  return out;
}

Dfa Dfa::FromNfa(const Nfa& n) { return *FromNfa(n, nullptr); }

StatusOr<Dfa> Dfa::FromNfa(const Nfa& n, Budget* budget) {
  Dfa out(n.num_symbols());
  // Subsets are interned by hash; interner ids coincide with DFA state ids,
  // so iterating ids in order doubles as the BFS worklist.
  SubsetInterner ids;
  auto intern = [&](std::span<const int> set) {
    int id = ids.Intern(set);
    if (id < out.num_states()) return id;  // seen before
    bool f = false;
    for (int s : set) {
      if (n.final(s)) f = true;
    }
    return out.AddState(f);
  };
  std::vector<int> init;
  for (int s = 0; s < n.num_states(); ++s) {
    if (n.initial(s)) init.push_back(s);
  }
  out.SetInitial(intern(init));
  std::vector<int> set;
  for (int from = 0; from < ids.size(); ++from) {
    XTC_RETURN_IF_ERROR(BudgetCheck(budget, "Dfa::FromNfa"));
    // Copy out: the interner pool may reallocate as new subsets are minted.
    const std::span<const int> stored = ids.Get(from);
    set.assign(stored.begin(), stored.end());
    // Collect successors per symbol sparsely.
    std::map<int, std::vector<int>> succ;
    for (int s : set) {
      for (const auto& [sym, t] : n.Edges(s)) {
        succ[sym].push_back(t);
      }
    }
    for (auto& [sym, tos] : succ) {
      std::sort(tos.begin(), tos.end());
      tos.erase(std::unique(tos.begin(), tos.end()), tos.end());
      out.SetTransition(from, sym, intern(tos));
    }
  }
  return out;
}

}  // namespace xtc
