#ifndef XTC_FA_DFA_H_
#define XTC_FA_DFA_H_

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "src/base/budget.h"
#include "src/base/status.h"
#include "src/fa/nfa.h"

namespace xtc {

/// A deterministic finite automaton over integer symbols 0..num_symbols-1.
/// May be partial: missing transitions go to the implicit dead state
/// Dfa::kDead. DTD(DFA) rules (Section 2.2) and output-schema automata
/// (Lemma 14) are represented with this class.
class Dfa {
 public:
  static constexpr int kDead = -1;

  explicit Dfa(int num_symbols) : num_symbols_(num_symbols) {}

  int AddState(bool final = false);
  void SetInitial(int state) { initial_ = state; }
  void SetFinal(int state, bool final = true);
  void SetTransition(int from, int symbol, int to);

  int num_states() const { return static_cast<int>(trans_.size()); }
  int num_symbols() const { return num_symbols_; }
  int initial() const { return initial_; }
  bool final(int state) const { return final_[state]; }

  /// One transition step; `state` may be kDead (stays dead).
  int Step(int state, int symbol) const;

  /// Runs the automaton on `word` starting from `state`; returns the
  /// resulting state (possibly kDead). This is the delta-star used all over
  /// the Lemma 14 construction.
  int Run(int state, std::span<const int> word) const;

  bool Accepts(std::span<const int> word) const;

  /// Paper size measure.
  std::size_t Size() const;

  bool IsComplete() const;

  /// Returns an equivalent complete DFA (adds a sink if needed).
  Dfa Completed() const;

  /// Returns a complete DFA for the complement language.
  Dfa Complemented() const;

  enum class BoolOp { kAnd, kOr, kDiff };

  /// Product construction. For kDiff, accepts L(a) \ L(b); b is completed
  /// internally as needed. The governed overload checkpoints the budget
  /// once per discovered pair state and fails with kResourceExhausted
  /// instead of building an oversized product.
  static Dfa Product(const Dfa& a, const Dfa& b, BoolOp op);
  static StatusOr<Dfa> Product(const Dfa& a, const Dfa& b, BoolOp op,
                               Budget* budget);

  bool IsEmpty() const;
  std::optional<std::vector<int>> ShortestAccepted() const;

  /// Language inclusion L(this) ⊆ L(other).
  bool IncludedIn(const Dfa& other) const;
  bool EquivalentTo(const Dfa& other) const;

  /// Moore partition-refinement minimization (complete result DFA over the
  /// reachable part). The governed overload checkpoints per refinement
  /// signature computed.
  Dfa Minimized() const;
  StatusOr<Dfa> Minimized(Budget* budget) const;

  Nfa ToNfa() const;

  /// Subset construction. The governed overload checkpoints per subset
  /// state interned — the construction is worst-case exponential, so this
  /// is a primary exhaustion site.
  static Nfa Reverse(const Dfa& d);
  static Dfa FromNfa(const Nfa& n);
  static StatusOr<Dfa> FromNfa(const Nfa& n, Budget* budget);

 private:
  int num_symbols_;
  int initial_ = kDead;
  std::vector<bool> final_;
  std::vector<std::vector<int>> trans_;  // trans_[state][symbol]
};

}  // namespace xtc

#endif  // XTC_FA_DFA_H_
