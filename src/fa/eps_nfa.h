#ifndef XTC_FA_EPS_NFA_H_
#define XTC_FA_EPS_NFA_H_

#include <utility>
#include <vector>

#include "src/fa/nfa.h"

namespace xtc {

/// An NFA builder with epsilon edges (symbol -1); Build() eliminates them
/// by forward closure. Constructions that concatenate and splice automata
/// (Lemma 19's D′ substitution, the approximate typechecker's star-
/// substitution) assemble here and convert once.
class EpsNfa {
 public:
  explicit EpsNfa(int num_symbols) : num_symbols_(num_symbols) {}

  int AddState(bool initial = false, bool final = false);
  void SetInitial(int state, bool initial = true);
  void SetFinal(int state, bool final = true);

  /// symbol == -1 adds an epsilon edge.
  void AddEdge(int from, int symbol, int to);

  int num_states() const { return static_cast<int>(edges_.size()); }

  /// Epsilon elimination by forward closure.
  Nfa Build() const;

  /// Builds with initial = {start} and finals = every state whose epsilon
  /// closure contains `end` (so acceptance through trailing epsilon paths
  /// is preserved). Used for sub-languages of a shared automaton.
  Nfa BuildPort(int start, int end) const;

 private:
  std::vector<std::vector<bool>> Closure() const;

  int num_symbols_;
  std::vector<bool> initial_;
  std::vector<bool> final_;
  std::vector<std::vector<std::pair<int, int>>> edges_;
};

}  // namespace xtc

#endif  // XTC_FA_EPS_NFA_H_
