#include "src/fa/eps_nfa.h"

#include "src/base/logging.h"

namespace xtc {

int EpsNfa::AddState(bool initial, bool final) {
  initial_.push_back(initial);
  final_.push_back(final);
  edges_.emplace_back();
  return static_cast<int>(edges_.size()) - 1;
}

void EpsNfa::SetInitial(int state, bool initial) {
  initial_[static_cast<std::size_t>(state)] = initial;
}

void EpsNfa::SetFinal(int state, bool final) {
  final_[static_cast<std::size_t>(state)] = final;
}

void EpsNfa::AddEdge(int from, int symbol, int to) {
  XTC_CHECK(from >= 0 && from < num_states());
  XTC_CHECK(to >= 0 && to < num_states());
  XTC_CHECK(symbol >= -1 && symbol < num_symbols_);
  edges_[static_cast<std::size_t>(from)].emplace_back(symbol, to);
}

std::vector<std::vector<bool>> EpsNfa::Closure() const {
  const int n = num_states();
  std::vector<std::vector<bool>> closure(
      static_cast<std::size_t>(n),
      std::vector<bool>(static_cast<std::size_t>(n), false));
  for (int s = 0; s < n; ++s) {
    std::vector<int> stack{s};
    closure[static_cast<std::size_t>(s)][static_cast<std::size_t>(s)] = true;
    while (!stack.empty()) {
      int cur = stack.back();
      stack.pop_back();
      for (const auto& [sym, to] : edges_[static_cast<std::size_t>(cur)]) {
        if (sym == -1 && !closure[static_cast<std::size_t>(s)]
                                 [static_cast<std::size_t>(to)]) {
          closure[static_cast<std::size_t>(s)][static_cast<std::size_t>(to)] =
              true;
          stack.push_back(to);
        }
      }
    }
  }
  return closure;
}

Nfa EpsNfa::Build() const {
  const int n = num_states();
  std::vector<std::vector<bool>> closure = Closure();
  Nfa out(num_symbols_);
  for (int s = 0; s < n; ++s) {
    bool fin = false;
    for (int u = 0; u < n; ++u) {
      if (closure[static_cast<std::size_t>(s)][static_cast<std::size_t>(u)] &&
          final_[static_cast<std::size_t>(u)]) {
        fin = true;
      }
    }
    out.AddState(initial_[static_cast<std::size_t>(s)], fin);
  }
  for (int s = 0; s < n; ++s) {
    for (int u = 0; u < n; ++u) {
      if (!closure[static_cast<std::size_t>(s)][static_cast<std::size_t>(u)]) {
        continue;
      }
      for (const auto& [sym, to] : edges_[static_cast<std::size_t>(u)]) {
        if (sym != -1) out.AddTransition(s, sym, to);
      }
    }
  }
  return out;
}

Nfa EpsNfa::BuildPort(int start, int end) const {
  const int n = num_states();
  XTC_CHECK(start >= 0 && start < n && end >= 0 && end < n);
  std::vector<std::vector<bool>> closure = Closure();
  Nfa out(num_symbols_);
  for (int s = 0; s < n; ++s) {
    out.AddState(s == start,
                 closure[static_cast<std::size_t>(s)]
                        [static_cast<std::size_t>(end)]);
  }
  for (int s = 0; s < n; ++s) {
    for (int u = 0; u < n; ++u) {
      if (!closure[static_cast<std::size_t>(s)][static_cast<std::size_t>(u)]) {
        continue;
      }
      for (const auto& [sym, to] : edges_[static_cast<std::size_t>(u)]) {
        if (sym != -1) out.AddTransition(s, sym, to);
      }
    }
  }
  return out;
}

}  // namespace xtc
