#include "src/fa/nfa.h"

#include <algorithm>
#include <deque>

#include "src/base/logging.h"

namespace xtc {

int Nfa::AddState(bool initial, bool final) {
  int id = num_states();
  initial_.push_back(initial);
  final_.push_back(final);
  trans_.emplace_back();
  return id;
}

void Nfa::SetInitial(int state, bool initial) {
  XTC_CHECK(state >= 0 && state < num_states());
  initial_[state] = initial;
}

void Nfa::SetFinal(int state, bool final) {
  XTC_CHECK(state >= 0 && state < num_states());
  final_[state] = final;
}

void Nfa::AddTransition(int from, int symbol, int to) {
  XTC_CHECK(from >= 0 && from < num_states());
  XTC_CHECK(to >= 0 && to < num_states());
  XTC_CHECK(symbol >= 0 && symbol < num_symbols_);
  trans_[from].emplace_back(symbol, to);
}

std::size_t Nfa::Size() const {
  std::size_t edges = 0;
  for (const auto& e : trans_) edges += e.size();
  return static_cast<std::size_t>(num_states()) +
         static_cast<std::size_t>(num_symbols_) + edges;
}

bool Nfa::Accepts(std::span<const int> word) const {
  std::vector<bool> cur = initial_;
  std::vector<bool> next(num_states());
  for (int sym : word) {
    std::fill(next.begin(), next.end(), false);
    bool any = false;
    for (int s = 0; s < num_states(); ++s) {
      if (!cur[s]) continue;
      for (const auto& [a, t] : trans_[s]) {
        if (a == sym) {
          next[t] = true;
          any = true;
        }
      }
    }
    if (!any) return false;
    cur.swap(next);
  }
  for (int s = 0; s < num_states(); ++s) {
    if (cur[s] && final_[s]) return true;
  }
  return false;
}

bool Nfa::AcceptsEpsilon() const {
  for (int s = 0; s < num_states(); ++s) {
    if (initial_[s] && final_[s]) return true;
  }
  return false;
}

std::vector<bool> Nfa::ForwardReachable(
    const std::vector<bool>* allowed) const {
  std::vector<bool> seen(num_states(), false);
  std::deque<int> queue;
  for (int s = 0; s < num_states(); ++s) {
    if (initial_[s]) {
      seen[s] = true;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    int s = queue.front();
    queue.pop_front();
    for (const auto& [a, t] : trans_[s]) {
      if (allowed != nullptr && !(*allowed)[a]) continue;
      if (!seen[t]) {
        seen[t] = true;
        queue.push_back(t);
      }
    }
  }
  return seen;
}

std::vector<bool> Nfa::BackwardReachable(
    const std::vector<bool>* allowed) const {
  // Reverse edges once.
  std::vector<std::vector<int>> rev(num_states());
  for (int s = 0; s < num_states(); ++s) {
    for (const auto& [a, t] : trans_[s]) {
      if (allowed != nullptr && !(*allowed)[a]) continue;
      rev[t].push_back(s);
    }
  }
  std::vector<bool> seen(num_states(), false);
  std::deque<int> queue;
  for (int s = 0; s < num_states(); ++s) {
    if (final_[s]) {
      seen[s] = true;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    int s = queue.front();
    queue.pop_front();
    for (int p : rev[s]) {
      if (!seen[p]) {
        seen[p] = true;
        queue.push_back(p);
      }
    }
  }
  return seen;
}

bool Nfa::AcceptsSomeOver(const std::vector<bool>* allowed) const {
  std::vector<bool> fwd = ForwardReachable(allowed);
  for (int s = 0; s < num_states(); ++s) {
    if (fwd[s] && final_[s]) return true;
  }
  return false;
}

std::optional<std::vector<int>> Nfa::ShortestAcceptedOver(
    const std::vector<bool>* allowed) const {
  // BFS from initial states, remembering the (symbol, predecessor) edge.
  std::vector<int> pred_state(num_states(), -1);
  std::vector<int> pred_sym(num_states(), -1);
  std::vector<bool> seen(num_states(), false);
  std::deque<int> queue;
  for (int s = 0; s < num_states(); ++s) {
    if (initial_[s]) {
      seen[s] = true;
      queue.push_back(s);
      if (final_[s]) return std::vector<int>{};
    }
  }
  while (!queue.empty()) {
    int s = queue.front();
    queue.pop_front();
    for (const auto& [a, t] : trans_[s]) {
      if (allowed != nullptr && !(*allowed)[a]) continue;
      if (seen[t]) continue;
      seen[t] = true;
      pred_state[t] = s;
      pred_sym[t] = a;
      if (final_[t]) {
        std::vector<int> word;
        for (int cur = t; pred_state[cur] != -1 || pred_sym[cur] != -1;
             cur = pred_state[cur]) {
          word.push_back(pred_sym[cur]);
        }
        std::reverse(word.begin(), word.end());
        return word;
      }
      queue.push_back(t);
    }
  }
  return std::nullopt;
}

std::vector<bool> Nfa::SymbolsOnAcceptingPaths(
    const std::vector<bool>* allowed) const {
  std::vector<bool> fwd = ForwardReachable(allowed);
  std::vector<bool> bwd = BackwardReachable(allowed);
  std::vector<bool> used(num_symbols_, false);
  for (int s = 0; s < num_states(); ++s) {
    if (!fwd[s]) continue;
    for (const auto& [a, t] : trans_[s]) {
      if (allowed != nullptr && !(*allowed)[a]) continue;
      if (bwd[t]) used[a] = true;
    }
  }
  return used;
}

bool Nfa::AcceptsInfinitelyManyOver(const std::vector<bool>* allowed) const {
  // Infinitely many strings iff a useful state (forward- and backward-
  // reachable) lies on a cycle of useful states. Detect a cycle in the
  // subgraph induced by useful states via iterative DFS colouring.
  std::vector<bool> fwd = ForwardReachable(allowed);
  std::vector<bool> bwd = BackwardReachable(allowed);
  std::vector<bool> useful(num_states());
  for (int s = 0; s < num_states(); ++s) useful[s] = fwd[s] && bwd[s];

  enum : char { kWhite = 0, kGray = 1, kBlack = 2 };
  std::vector<char> color(num_states(), kWhite);
  std::vector<std::pair<int, std::size_t>> stack;
  for (int root = 0; root < num_states(); ++root) {
    if (!useful[root] || color[root] != kWhite) continue;
    color[root] = kGray;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [s, idx] = stack.back();
      if (idx < trans_[s].size()) {
        auto [a, t] = trans_[s][idx++];
        if (allowed != nullptr && !(*allowed)[a]) continue;
        if (!useful[t]) continue;
        if (color[t] == kGray) return true;
        if (color[t] == kWhite) {
          color[t] = kGray;
          stack.emplace_back(t, 0);
        }
      } else {
        color[s] = kBlack;
        stack.pop_back();
      }
    }
  }
  return false;
}

Nfa Nfa::Intersection(const Nfa& a, const Nfa& b) {
  XTC_CHECK_EQ(a.num_symbols(), b.num_symbols());
  Nfa out(a.num_symbols());
  const int nb = b.num_states();
  for (int sa = 0; sa < a.num_states(); ++sa) {
    for (int sb = 0; sb < nb; ++sb) {
      out.AddState(a.initial(sa) && b.initial(sb), a.final(sa) && b.final(sb));
    }
  }
  for (int sa = 0; sa < a.num_states(); ++sa) {
    for (const auto& [sym, ta] : a.Edges(sa)) {
      for (int sb = 0; sb < nb; ++sb) {
        for (const auto& [symb, tb] : b.Edges(sb)) {
          if (sym == symb) {
            out.AddTransition(sa * nb + sb, sym, ta * nb + tb);
          }
        }
      }
    }
  }
  return out;
}

Nfa Nfa::Union(const Nfa& a, const Nfa& b) {
  XTC_CHECK_EQ(a.num_symbols(), b.num_symbols());
  Nfa out(a.num_symbols());
  for (int s = 0; s < a.num_states(); ++s) {
    out.AddState(a.initial(s), a.final(s));
  }
  const int off = a.num_states();
  for (int s = 0; s < b.num_states(); ++s) {
    out.AddState(b.initial(s), b.final(s));
  }
  for (int s = 0; s < a.num_states(); ++s) {
    for (const auto& [sym, t] : a.Edges(s)) out.AddTransition(s, sym, t);
  }
  for (int s = 0; s < b.num_states(); ++s) {
    for (const auto& [sym, t] : b.Edges(s)) {
      out.AddTransition(off + s, sym, off + t);
    }
  }
  return out;
}

Nfa Nfa::ShiftedSymbols(int offset, int new_num_symbols) const {
  Nfa out(new_num_symbols);
  for (int s = 0; s < num_states(); ++s) {
    out.AddState(initial_[s], final_[s]);
  }
  for (int s = 0; s < num_states(); ++s) {
    for (const auto& [sym, t] : trans_[s]) {
      XTC_CHECK_LT(sym + offset, new_num_symbols);
      out.AddTransition(s, sym + offset, t);
    }
  }
  return out;
}

Nfa Nfa::SingleWord(int num_symbols, std::span<const int> word) {
  Nfa out(num_symbols);
  int prev = out.AddState(/*initial=*/true, /*final=*/word.empty());
  for (std::size_t i = 0; i < word.size(); ++i) {
    int next = out.AddState(false, i + 1 == word.size());
    out.AddTransition(prev, word[i], next);
    prev = next;
  }
  return out;
}

}  // namespace xtc
