#include "src/fa/nfa.h"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "src/base/logging.h"

namespace xtc {

int Nfa::AddState(bool initial, bool final) {
  int id = num_states();
  initial_.push_back(initial);
  final_.push_back(final);
  trans_.emplace_back();
  return id;
}

void Nfa::ReserveStates(int num_states) {
  const std::size_t n = static_cast<std::size_t>(num_states);
  initial_.reserve(n);
  final_.reserve(n);
  trans_.reserve(n);
}

void Nfa::ReserveEdges(int state, std::size_t num_edges) {
  trans_[static_cast<std::size_t>(state)].reserve(num_edges);
}

void Nfa::SetInitial(int state, bool initial) {
  XTC_CHECK(state >= 0 && state < num_states());
  initial_[state] = initial;
}

void Nfa::SetFinal(int state, bool final) {
  XTC_CHECK(state >= 0 && state < num_states());
  final_[state] = final;
}

void Nfa::AddTransition(int from, int symbol, int to) {
  XTC_CHECK(from >= 0 && from < num_states());
  XTC_CHECK(to >= 0 && to < num_states());
  XTC_CHECK(symbol >= 0 && symbol < num_symbols_);
  trans_[from].emplace_back(symbol, to);
}

std::size_t Nfa::Size() const {
  std::size_t edges = 0;
  for (const auto& e : trans_) edges += e.size();
  return static_cast<std::size_t>(num_states()) +
         static_cast<std::size_t>(num_symbols_) + edges;
}

bool Nfa::Accepts(std::span<const int> word) const {
  StateSet cur(num_states());
  StateSet next(num_states());
  for (int s = 0; s < num_states(); ++s) {
    if (initial_[s]) cur.Set(s);
  }
  for (int sym : word) {
    next.Clear();
    bool any = false;
    cur.ForEach([&](int s) {
      for (const auto& [a, t] : trans_[s]) {
        if (a == sym) {
          next.Set(t);
          any = true;
        }
      }
    });
    if (!any) return false;
    std::swap(cur, next);
  }
  bool accepted = false;
  cur.ForEach([&](int s) { accepted = accepted || final_[s]; });
  return accepted;
}

bool Nfa::AcceptsEpsilon() const {
  for (int s = 0; s < num_states(); ++s) {
    if (initial_[s] && final_[s]) return true;
  }
  return false;
}

StateSet Nfa::ForwardReachable(const StateSet* allowed) const {
  StateSet seen(num_states());
  std::vector<int> stack;
  stack.reserve(static_cast<std::size_t>(num_states()));
  for (int s = 0; s < num_states(); ++s) {
    if (initial_[s] && seen.TestAndSet(s)) stack.push_back(s);
  }
  while (!stack.empty()) {
    int s = stack.back();
    stack.pop_back();
    for (const auto& [a, t] : trans_[s]) {
      if (allowed != nullptr && !allowed->Test(a)) continue;
      if (seen.TestAndSet(t)) stack.push_back(t);
    }
  }
  return seen;
}

StateSet Nfa::BackwardReachable(const StateSet* allowed) const {
  // Reverse edges once (CSR layout: one flat array plus row offsets).
  const std::size_t n = static_cast<std::size_t>(num_states());
  std::vector<int> in_degree(n, 0);
  for (int s = 0; s < num_states(); ++s) {
    for (const auto& [a, t] : trans_[s]) {
      if (allowed != nullptr && !allowed->Test(a)) continue;
      ++in_degree[static_cast<std::size_t>(t)];
    }
  }
  std::vector<int> row(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) row[i + 1] = row[i] + in_degree[i];
  std::vector<int> rev(static_cast<std::size_t>(row[n]));
  std::vector<int> fill = row;
  for (int s = 0; s < num_states(); ++s) {
    for (const auto& [a, t] : trans_[s]) {
      if (allowed != nullptr && !allowed->Test(a)) continue;
      rev[static_cast<std::size_t>(fill[static_cast<std::size_t>(t)]++)] = s;
    }
  }
  StateSet seen(num_states());
  std::vector<int> stack;
  stack.reserve(n);
  for (int s = 0; s < num_states(); ++s) {
    if (final_[s] && seen.TestAndSet(s)) stack.push_back(s);
  }
  while (!stack.empty()) {
    int s = stack.back();
    stack.pop_back();
    for (int i = row[static_cast<std::size_t>(s)];
         i < row[static_cast<std::size_t>(s) + 1]; ++i) {
      int p = rev[static_cast<std::size_t>(i)];
      if (seen.TestAndSet(p)) stack.push_back(p);
    }
  }
  return seen;
}

bool Nfa::AcceptsSomeOver(const StateSet* allowed) const {
  // Heap-free fast path for up to 64 states: the horizontal NFAs of tree
  // automata are tiny, and emptiness fixpoints probe them millions of
  // times — one word of `seen` plus a frontier word beats two allocations.
  if (num_states() <= 64) {
    std::uint64_t seen = 0;
    std::uint64_t frontier = 0;
    for (int s = 0; s < num_states(); ++s) {
      if (initial_[s]) {
        if (final_[s]) return true;
        seen |= std::uint64_t{1} << s;
        frontier |= std::uint64_t{1} << s;
      }
    }
    while (frontier != 0) {
      const int s = std::countr_zero(frontier);
      frontier &= frontier - 1;
      for (const auto& [a, t] : trans_[s]) {
        if (allowed != nullptr && !allowed->Test(a)) continue;
        const std::uint64_t bit = std::uint64_t{1} << t;
        if ((seen & bit) == 0) {
          if (final_[t]) return true;
          seen |= bit;
          frontier |= bit;
        }
      }
    }
    return false;
  }
  StateSet seen(num_states());
  std::vector<int> stack;
  stack.reserve(static_cast<std::size_t>(num_states()));
  for (int s = 0; s < num_states(); ++s) {
    if (initial_[s]) {
      if (final_[s]) return true;
      if (seen.TestAndSet(s)) stack.push_back(s);
    }
  }
  while (!stack.empty()) {
    int s = stack.back();
    stack.pop_back();
    for (const auto& [a, t] : trans_[s]) {
      if (allowed != nullptr && !allowed->Test(a)) continue;
      if (seen.TestAndSet(t)) {
        if (final_[t]) return true;
        stack.push_back(t);
      }
    }
  }
  return false;
}

std::optional<std::vector<int>> Nfa::ShortestAcceptedOver(
    const StateSet* allowed) const {
  // BFS from initial states, remembering the (symbol, predecessor) edge.
  std::vector<int> pred_state(num_states(), -1);
  std::vector<int> pred_sym(num_states(), -1);
  StateSet seen(num_states());
  std::vector<int> queue;  // FIFO via head cursor
  queue.reserve(static_cast<std::size_t>(num_states()));
  for (int s = 0; s < num_states(); ++s) {
    if (initial_[s]) {
      seen.Set(s);
      queue.push_back(s);
      if (final_[s]) return std::vector<int>{};
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    int s = queue[head];
    for (const auto& [a, t] : trans_[s]) {
      if (allowed != nullptr && !allowed->Test(a)) continue;
      if (!seen.TestAndSet(t)) continue;
      pred_state[t] = s;
      pred_sym[t] = a;
      if (final_[t]) {
        std::vector<int> word;
        for (int cur = t; pred_state[cur] != -1 || pred_sym[cur] != -1;
             cur = pred_state[cur]) {
          word.push_back(pred_sym[cur]);
        }
        std::reverse(word.begin(), word.end());
        return word;
      }
      queue.push_back(t);
    }
  }
  return std::nullopt;
}

StateSet Nfa::SymbolsOnAcceptingPaths(const StateSet* allowed) const {
  StateSet fwd = ForwardReachable(allowed);
  StateSet bwd = BackwardReachable(allowed);
  StateSet used(num_symbols_);
  fwd.ForEach([&](int s) {
    for (const auto& [a, t] : trans_[s]) {
      if (allowed != nullptr && !allowed->Test(a)) continue;
      if (bwd.Test(t)) used.Set(a);
    }
  });
  return used;
}

bool Nfa::AcceptsInfinitelyManyOver(const StateSet* allowed) const {
  // Infinitely many strings iff a useful state (forward- and backward-
  // reachable) lies on a cycle of useful states. Detect a cycle in the
  // subgraph induced by useful states via iterative DFS colouring.
  StateSet useful = ForwardReachable(allowed);
  useful.IntersectWith(BackwardReachable(allowed));

  enum : char { kWhite = 0, kGray = 1, kBlack = 2 };
  std::vector<char> color(num_states(), kWhite);
  std::vector<std::pair<int, std::size_t>> stack;
  for (int root = 0; root < num_states(); ++root) {
    if (!useful.Test(root) || color[root] != kWhite) continue;
    color[root] = kGray;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [s, idx] = stack.back();
      if (idx < trans_[s].size()) {
        auto [a, t] = trans_[s][idx++];
        if (allowed != nullptr && !allowed->Test(a)) continue;
        if (!useful.Test(t)) continue;
        if (color[t] == kGray) return true;
        if (color[t] == kWhite) {
          color[t] = kGray;
          stack.emplace_back(t, 0);
        }
      } else {
        color[s] = kBlack;
        stack.pop_back();
      }
    }
  }
  return false;
}

Nfa Nfa::Intersection(const Nfa& a, const Nfa& b) {
  XTC_CHECK_EQ(a.num_symbols(), b.num_symbols());
  Nfa out(a.num_symbols());
  const int nb = b.num_states();
  out.ReserveStates(a.num_states() * nb);
  for (int sa = 0; sa < a.num_states(); ++sa) {
    for (int sb = 0; sb < nb; ++sb) {
      out.AddState(a.initial(sa) && b.initial(sb), a.final(sa) && b.final(sb));
    }
  }
  for (int sa = 0; sa < a.num_states(); ++sa) {
    for (const auto& [sym, ta] : a.Edges(sa)) {
      for (int sb = 0; sb < nb; ++sb) {
        for (const auto& [symb, tb] : b.Edges(sb)) {
          if (sym == symb) {
            out.AddTransition(sa * nb + sb, sym, ta * nb + tb);
          }
        }
      }
    }
  }
  return out;
}

Nfa Nfa::Union(const Nfa& a, const Nfa& b) {
  XTC_CHECK_EQ(a.num_symbols(), b.num_symbols());
  Nfa out(a.num_symbols());
  out.ReserveStates(a.num_states() + b.num_states());
  for (int s = 0; s < a.num_states(); ++s) {
    out.AddState(a.initial(s), a.final(s));
  }
  const int off = a.num_states();
  for (int s = 0; s < b.num_states(); ++s) {
    out.AddState(b.initial(s), b.final(s));
  }
  for (int s = 0; s < a.num_states(); ++s) {
    out.ReserveEdges(s, a.Edges(s).size());
    for (const auto& [sym, t] : a.Edges(s)) out.AddTransition(s, sym, t);
  }
  for (int s = 0; s < b.num_states(); ++s) {
    out.ReserveEdges(off + s, b.Edges(s).size());
    for (const auto& [sym, t] : b.Edges(s)) {
      out.AddTransition(off + s, sym, off + t);
    }
  }
  return out;
}

Nfa Nfa::ShiftedSymbols(int offset, int new_num_symbols) const {
  Nfa out(new_num_symbols);
  out.ReserveStates(num_states());
  for (int s = 0; s < num_states(); ++s) {
    out.AddState(initial_[s], final_[s]);
  }
  for (int s = 0; s < num_states(); ++s) {
    out.ReserveEdges(s, trans_[s].size());
    for (const auto& [sym, t] : trans_[s]) {
      XTC_CHECK_LT(sym + offset, new_num_symbols);
      out.AddTransition(s, sym + offset, t);
    }
  }
  return out;
}

Nfa Nfa::SingleWord(int num_symbols, std::span<const int> word) {
  Nfa out(num_symbols);
  out.ReserveStates(static_cast<int>(word.size()) + 1);
  int prev = out.AddState(/*initial=*/true, /*final=*/word.empty());
  for (std::size_t i = 0; i < word.size(); ++i) {
    int next = out.AddState(false, i + 1 == word.size());
    out.AddTransition(prev, word[i], next);
    prev = next;
  }
  return out;
}

}  // namespace xtc
