#include "src/fa/regex.h"

#include <algorithm>
#include <cctype>

#include "src/base/logging.h"

namespace xtc {

namespace {

Regex MakeNode(Regex::Kind kind) {
  Regex re;
  re.kind = kind;
  return re;
}

}  // namespace

RegexPtr Regex::EmptySet() {
  return std::make_shared<Regex>(MakeNode(Kind::kEmptySet));
}
RegexPtr Regex::Epsilon() {
  return std::make_shared<Regex>(MakeNode(Kind::kEpsilon));
}
RegexPtr Regex::Sym(int symbol) {
  Regex re = MakeNode(Kind::kSymbol);
  re.symbol = symbol;
  return std::make_shared<Regex>(std::move(re));
}
RegexPtr Regex::Concat(std::vector<RegexPtr> children) {
  if (children.empty()) return Epsilon();
  if (children.size() == 1) return children[0];
  Regex re = MakeNode(Kind::kConcat);
  re.children = std::move(children);
  return std::make_shared<Regex>(std::move(re));
}
RegexPtr Regex::Alt(std::vector<RegexPtr> children) {
  XTC_CHECK(!children.empty());
  if (children.size() == 1) return children[0];
  Regex re = MakeNode(Kind::kAlt);
  re.children = std::move(children);
  return std::make_shared<Regex>(std::move(re));
}
RegexPtr Regex::Star(RegexPtr child) {
  Regex re = MakeNode(Kind::kStar);
  re.children = {std::move(child)};
  return std::make_shared<Regex>(std::move(re));
}
RegexPtr Regex::Plus(RegexPtr child) {
  Regex re = MakeNode(Kind::kPlus);
  re.children = {std::move(child)};
  return std::make_shared<Regex>(std::move(re));
}
RegexPtr Regex::Opt(RegexPtr child) {
  Regex re = MakeNode(Kind::kOpt);
  re.children = {std::move(child)};
  return std::make_shared<Regex>(std::move(re));
}

namespace {

bool IsSymbolChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '#' ||
         c == '$' || c == '.' || c == ':' || c == '-';
}

class Parser {
 public:
  Parser(std::string_view text, Alphabet* alphabet)
      : text_(text), alphabet_(alphabet) {}

  StatusOr<RegexPtr> Parse() {
    StatusOr<RegexPtr> re = ParseAlt();
    if (!re.ok()) return re;
    SkipSpace();
    if (pos_ != text_.size()) {
      return InvalidArgumentError("trailing characters in regex at position " +
                                  std::to_string(pos_));
    }
    return re;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == ',')) {
      ++pos_;
    }
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  StatusOr<RegexPtr> ParseAlt() {
    // Recursion fuel: deeply nested '(' would otherwise overflow the stack
    // on adversarial input (ParseAlt -> ... -> ParsePrimary -> ParseAlt).
    if (++depth_ > kMaxDepth) {
      return InvalidArgumentError("regex nesting exceeds depth limit " +
                                  std::to_string(kMaxDepth));
    }
    DepthGuard guard(this);
    std::vector<RegexPtr> alts;
    StatusOr<RegexPtr> first = ParseConcat();
    if (!first.ok()) return first;
    alts.push_back(*first);
    while (Peek() == '|') {
      ++pos_;
      StatusOr<RegexPtr> next = ParseConcat();
      if (!next.ok()) return next;
      alts.push_back(*next);
    }
    return Regex::Alt(std::move(alts));
  }

  StatusOr<RegexPtr> ParseConcat() {
    std::vector<RegexPtr> parts;
    while (true) {
      char c = Peek();
      if (c == '\0' || c == '|' || c == ')') break;
      StatusOr<RegexPtr> part = ParsePostfix();
      if (!part.ok()) return part;
      parts.push_back(*part);
    }
    return Regex::Concat(std::move(parts));
  }

  StatusOr<RegexPtr> ParsePostfix() {
    StatusOr<RegexPtr> base = ParsePrimary();
    if (!base.ok()) return base;
    RegexPtr re = *base;
    while (true) {
      char c = Peek();
      if (c == '*') {
        ++pos_;
        re = Regex::Star(re);
      } else if (c == '+') {
        ++pos_;
        re = Regex::Plus(re);
      } else if (c == '?') {
        ++pos_;
        re = Regex::Opt(re);
      } else {
        break;
      }
    }
    return re;
  }

  StatusOr<RegexPtr> ParsePrimary() {
    char c = Peek();
    if (c == '(') {
      ++pos_;
      StatusOr<RegexPtr> inner = ParseAlt();
      if (!inner.ok()) return inner;
      if (Peek() != ')') return InvalidArgumentError("expected ')'");
      ++pos_;
      return inner;
    }
    if (c == '%') {
      ++pos_;
      return Regex::Epsilon();
    }
    if (IsSymbolChar(c) && c != '\0') {
      std::size_t start = pos_;
      while (pos_ < text_.size() && IsSymbolChar(text_[pos_])) ++pos_;
      std::string_view name = text_.substr(start, pos_ - start);
      return Regex::Sym(alphabet_->Intern(name));
    }
    return InvalidArgumentError("unexpected character '" + std::string(1, c) +
                                "' in regex");
  }

  static constexpr int kMaxDepth = 256;

  struct DepthGuard {
    explicit DepthGuard(Parser* p) : p_(p) {}
    ~DepthGuard() { --p_->depth_; }
    Parser* p_;
  };

  std::string_view text_;
  Alphabet* alphabet_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void ToStringRec(const Regex& re, const Alphabet& alphabet, int parent_prec,
                 std::string* out) {
  // Precedence: alt(0) < concat(1) < postfix(2).
  switch (re.kind) {
    case Regex::Kind::kEmptySet:
      out->append("(%|%)");  // no dedicated syntax; unused in practice
      break;
    case Regex::Kind::kEpsilon:
      out->push_back('%');
      break;
    case Regex::Kind::kSymbol:
      out->append(alphabet.Name(re.symbol));
      break;
    case Regex::Kind::kConcat: {
      bool paren = parent_prec > 1;
      if (paren) out->push_back('(');
      for (std::size_t i = 0; i < re.children.size(); ++i) {
        if (i > 0) out->push_back(' ');
        ToStringRec(*re.children[i], alphabet, 2, out);
      }
      if (paren) out->push_back(')');
      break;
    }
    case Regex::Kind::kAlt: {
      bool paren = parent_prec > 0;
      if (paren) out->push_back('(');
      for (std::size_t i = 0; i < re.children.size(); ++i) {
        if (i > 0) out->append(" | ");
        ToStringRec(*re.children[i], alphabet, 1, out);
      }
      if (paren) out->push_back(')');
      break;
    }
    case Regex::Kind::kStar:
    case Regex::Kind::kPlus:
    case Regex::Kind::kOpt: {
      ToStringRec(*re.children[0], alphabet, 3, out);
      out->push_back(re.kind == Regex::Kind::kStar   ? '*'
                     : re.kind == Regex::Kind::kPlus ? '+'
                                                     : '?');
      break;
    }
  }
}

// Glushkov bookkeeping: positions are symbol occurrences, numbered from 1.
struct Glushkov {
  bool nullable = false;
  bool empty = false;  // denotes the empty language
  std::vector<int> first;
  std::vector<int> last;
};

void Merge(std::vector<int>* into, const std::vector<int>& from) {
  into->insert(into->end(), from.begin(), from.end());
}

Glushkov BuildGlushkov(const Regex& re, std::vector<int>* pos_symbol,
                       std::vector<std::vector<int>>* follow) {
  switch (re.kind) {
    case Regex::Kind::kEmptySet: {
      Glushkov g;
      g.empty = true;
      return g;
    }
    case Regex::Kind::kEpsilon: {
      Glushkov g;
      g.nullable = true;
      return g;
    }
    case Regex::Kind::kSymbol: {
      int p = static_cast<int>(pos_symbol->size());
      pos_symbol->push_back(re.symbol);
      follow->emplace_back();
      Glushkov g;
      g.first = {p};
      g.last = {p};
      return g;
    }
    case Regex::Kind::kConcat: {
      Glushkov g;
      g.nullable = true;
      for (const RegexPtr& child : re.children) {
        Glushkov c = BuildGlushkov(*child, pos_symbol, follow);
        if (c.empty || g.empty) {
          g.empty = true;
          g.nullable = false;
          g.first.clear();
          g.last.clear();
          continue;
        }
        // follow: every last of the prefix feeds every first of the child.
        for (int l : g.last) Merge(&(*follow)[l], c.first);
        if (g.nullable) Merge(&g.first, c.first);
        if (c.nullable) {
          Merge(&g.last, c.last);
        } else {
          g.last = c.last;
        }
        g.nullable = g.nullable && c.nullable;
      }
      return g;
    }
    case Regex::Kind::kAlt: {
      Glushkov g;
      g.empty = true;
      for (const RegexPtr& child : re.children) {
        Glushkov c = BuildGlushkov(*child, pos_symbol, follow);
        if (c.empty) continue;
        g.empty = false;
        g.nullable = g.nullable || c.nullable;
        Merge(&g.first, c.first);
        Merge(&g.last, c.last);
      }
      return g;
    }
    case Regex::Kind::kStar:
    case Regex::Kind::kPlus:
    case Regex::Kind::kOpt: {
      Glushkov g = BuildGlushkov(*re.children[0], pos_symbol, follow);
      if (g.empty) {
        if (re.kind != Regex::Kind::kPlus) {
          g.empty = false;
          g.nullable = true;
        }
        return g;
      }
      if (re.kind != Regex::Kind::kPlus) g.nullable = true;
      if (re.kind != Regex::Kind::kOpt) {
        for (int l : g.last) Merge(&(*follow)[l], g.first);
      }
      return g;
    }
  }
  XTC_CHECK_MSG(false, "unreachable regex kind");
  return {};
}

}  // namespace

StatusOr<RegexPtr> ParseRegex(std::string_view text, Alphabet* alphabet) {
  return Parser(text, alphabet).Parse();
}

std::string RegexToString(const Regex& re, const Alphabet& alphabet) {
  std::string out;
  ToStringRec(re, alphabet, 0, &out);
  return out;
}

Nfa RegexToNfa(const Regex& re, int num_symbols) {
  std::vector<int> pos_symbol;
  std::vector<std::vector<int>> follow;
  Glushkov g = BuildGlushkov(re, &pos_symbol, &follow);
  Nfa nfa(num_symbols);
  // State 0 is the start; state p+1 represents position p.
  nfa.AddState(/*initial=*/true, /*final=*/!g.empty && g.nullable);
  for (std::size_t p = 0; p < pos_symbol.size(); ++p) {
    nfa.AddState(false, false);
    XTC_CHECK_LT(pos_symbol[p], num_symbols);
  }
  if (g.empty) return nfa;
  for (int p : g.first) nfa.AddTransition(0, pos_symbol[p], p + 1);
  for (std::size_t p = 0; p < follow.size(); ++p) {
    std::vector<int> targets = follow[p];
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
    for (int q : targets) {
      nfa.AddTransition(static_cast<int>(p) + 1, pos_symbol[q], q + 1);
    }
  }
  for (int p : g.last) nfa.SetFinal(p + 1);
  return nfa;
}

bool RegexIsOneUnambiguous(const Regex& re, int num_symbols) {
  Nfa nfa = RegexToNfa(re, num_symbols);
  for (int s = 0; s < nfa.num_states(); ++s) {
    std::vector<std::pair<int, int>> edges = nfa.Edges(s);
    std::sort(edges.begin(), edges.end());
    for (std::size_t i = 1; i < edges.size(); ++i) {
      if (edges[i].first == edges[i - 1].first &&
          edges[i].second != edges[i - 1].second) {
        return false;
      }
    }
  }
  return true;
}

int RegexSize(const Regex& re) {
  int n = 1;
  for (const RegexPtr& child : re.children) n += RegexSize(*child);
  return n;
}

void RegexSymbols(const Regex& re, std::vector<bool>* used) {
  if (re.kind == Regex::Kind::kSymbol) {
    XTC_CHECK_LT(re.symbol, static_cast<int>(used->size()));
    (*used)[re.symbol] = true;
  }
  for (const RegexPtr& child : re.children) RegexSymbols(*child, used);
}

}  // namespace xtc
