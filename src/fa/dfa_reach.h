#ifndef XTC_FA_DFA_REACH_H_
#define XTC_FA_DFA_REACH_H_

#include <vector>

#include "src/base/state_set.h"
#include "src/fa/dfa.h"

namespace xtc {

/// Demand-driven reachability over a DFA's transition graph: From(s) is the
/// set of states reachable from s by any symbol sequence (including s
/// itself), computed by BFS on first request and memoized per source. The
/// Lemma 14 engines use this to enumerate only horizontally *reachable*
/// target states when guessing obligations against an output rule DFA,
/// instead of sweeping every state of the rule — the horizontal counterpart
/// of the lazy vertical frontier in src/nta/lazy.h.
///
/// Borrows the DFA; the caller keeps it alive and unchanged. Thread
/// ownership follows SubsetInterner: one owner thread, no concurrent use
/// (src/base/README.md).
class DfaReachability {
 public:
  explicit DfaReachability(const Dfa* dfa)
      : dfa_(dfa), from_(static_cast<std::size_t>(dfa->num_states())) {}

  /// The reachable-state set of `state`. The reference is valid until the
  /// next From() call on a different source.
  const StateSet& From(int state);

 private:
  const Dfa* dfa_;
  std::vector<StateSet> from_;  ///< empty num_bits-0 sets until computed
};

}  // namespace xtc

#endif  // XTC_FA_DFA_REACH_H_
