#ifndef XTC_FA_ALPHABET_H_
#define XTC_FA_ALPHABET_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/base/logging.h"

namespace xtc {

/// Interns symbol names to dense integer ids. Trees, DTDs, automata and
/// transducers over the same documents share one Alphabet; all automata in
/// this library run over int symbol ids.
class Alphabet {
 public:
  Alphabet() = default;

  /// Returns the id for `name`, creating it if needed.
  int Intern(std::string_view name) {
    auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    int id = static_cast<int>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id for `name` if already interned.
  std::optional<int> Find(std::string_view name) const {
    auto it = ids_.find(std::string(name));
    if (it == ids_.end()) return std::nullopt;
    return it->second;
  }

  const std::string& Name(int id) const {
    XTC_CHECK(id >= 0 && id < static_cast<int>(names_.size()));
    return names_[id];
  }

  int size() const { return static_cast<int>(names_.size()); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, int> ids_;
};

}  // namespace xtc

#endif  // XTC_FA_ALPHABET_H_
