#include "src/td/canonical.h"

#include <algorithm>
#include <vector>

#include "src/base/hash.h"
#include "src/xpath/ast.h"

namespace xtc {
namespace {

void AppendSelector(const Selector& sel, const Alphabet& alphabet,
                    std::string* out) {
  if (sel.pattern != nullptr) {
    out->append("xpath ");
    out->append(PatternToString(*sel.pattern, alphabet));
    return;
  }
  const Dfa& dfa = *sel.dfa;
  out->append("dfa ");
  out->append(std::to_string(dfa.num_states()));
  out->append(" init ");
  out->append(std::to_string(dfa.initial()));
  for (int s = 0; s < dfa.num_states(); ++s) {
    out->push_back(' ');
    out->push_back(dfa.final(s) ? 'f' : '.');
    for (int a = 0; a < dfa.num_symbols(); ++a) {
      const int to = dfa.Step(s, a);
      if (to == Dfa::kDead) continue;
      out->push_back(' ');
      out->append(std::to_string(a));
      out->push_back('>');
      out->append(std::to_string(to));
    }
    out->push_back(';');
  }
}

}  // namespace

std::string CanonicalTransducerText(const Transducer& t) {
  const Alphabet& alphabet = *t.alphabet();
  std::string out = "td-v1\nalphabet";
  for (int s = 0; s < alphabet.size(); ++s) {
    out.push_back(' ');
    out.append(alphabet.Name(s));
  }
  out.append("\nstates");
  for (int q = 0; q < t.num_states(); ++q) {
    out.push_back(' ');
    out.append(t.StateName(q));
  }
  out.append("\ninitial ");
  out.append(t.initial() >= 0 ? t.StateName(t.initial()) : "-");
  out.push_back('\n');
  for (int i = 0; i < t.num_selectors(); ++i) {
    out.append("selector ");
    AppendSelector(t.selector(i), alphabet, &out);
    out.push_back('\n');
  }

  // rules() is keyed by (state id, symbol id); canonical order is by the
  // corresponding names so renamed-but-identical declarations stay distinct
  // while map iteration details never matter.
  std::vector<const std::pair<const std::pair<int, int>, RhsHedge>*> rules;
  for (const auto& entry : t.rules()) rules.push_back(&entry);
  std::sort(rules.begin(), rules.end(), [&](const auto* a, const auto* b) {
    const std::string& sa = t.StateName(a->first.first);
    const std::string& sb = t.StateName(b->first.first);
    if (sa != sb) return sa < sb;
    return alphabet.Name(a->first.second) < alphabet.Name(b->first.second);
  });
  for (const auto* entry : rules) {
    out.append("rule ");
    out.append(t.StateName(entry->first.first));
    out.push_back(' ');
    out.append(alphabet.Name(entry->first.second));
    out.append(" -> ");
    out.append(t.RhsToString(entry->second));
    out.push_back('\n');
  }
  return out;
}

std::uint64_t StructuralTransducerHash(const Transducer& t) {
  return HashBytes(CanonicalTransducerText(t));
}

}  // namespace xtc
