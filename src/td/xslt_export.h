#ifndef XTC_TD_XSLT_EXPORT_H_
#define XTC_TD_XSLT_EXPORT_H_

#include <string>

#include "src/td/transducer.h"

namespace xtc {

/// Renders the transducer as the equivalent XSLT program, one template per
/// rule, exactly in the style of Fig. 1: states become modes, bare states
/// become `<xsl:apply-templates mode="q"/>`, and ⟨q, P⟩ selectors become
/// `<xsl:apply-templates select="..." mode="q"/>`.
std::string ExportXslt(const Transducer& t);

}  // namespace xtc

#endif  // XTC_TD_XSLT_EXPORT_H_
