#ifndef XTC_TD_WIDTHS_H_
#define XTC_TD_WIDTHS_H_

#include <cstdint>
#include <vector>

#include "src/td/transducer.h"

namespace xtc {

/// K values saturate here (the paper bounds intermediate costs by |T|^|T|,
/// which needs |T| log |T| bits; we saturate rather than carry bignums —
/// any saturated transducer is far outside every practical T^{C,K}_trac).
inline constexpr uint64_t kWidthSaturated = uint64_t{1} << 62;

/// The copying/deletion analysis of Section 2.5 and Proposition 16.
struct WidthAnalysis {
  /// C: max number of state/selector occurrences in one sibling sequence.
  int copying_width = 0;

  /// Whether the deletion path width K is finite. It is infinite exactly
  /// when some cycle of the deletion path graph G_T carries an edge of cost
  /// > 1 (copying while recursively deleting).
  bool dpw_bounded = true;

  /// K: the largest cost of a path in G_T (valid when dpw_bounded).
  uint64_t deletion_path_width = 1;

  /// dw(q): max number of states in top(rhs(q, a)) over all a.
  std::vector<int> deletion_width;

  /// Whether the state occurs twice in some deletion path (i.e. lies on a
  /// cycle of the state-level deletion graph).
  std::vector<bool> recursively_deleting;
};

/// Computes C and K (Proposition 16: PTIME via longest path in the cycle-
/// condensed deletion path graph). The transducer must be selector-free;
/// compile selectors away first (Theorems 23/29).
WidthAnalysis AnalyzeWidths(const Transducer& t);

/// Membership in T^{C,K}_trac: dpw_bounded with copying width <= C and
/// deletion path width <= K.
bool IsTrac(const WidthAnalysis& analysis, int max_c, uint64_t max_k);

}  // namespace xtc

#endif  // XTC_TD_WIDTHS_H_
