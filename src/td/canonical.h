#ifndef XTC_TD_CANONICAL_H_
#define XTC_TD_CANONICAL_H_

#include <cstdint>
#include <string>

#include "src/td/transducer.h"

namespace xtc {

/// Canonical text rendering of a transducer, the content address of
/// compiled transducer artifacts (src/service): state names in declaration
/// order, the initial state, each selector (XPath patterns re-rendered from
/// the AST, path DFAs as transition tables), and every rule in
/// (state-name, symbol-name) order with its template re-rendered through
/// RhsToString. Like CanonicalDtdText, the alphabet id->name section pins
/// the symbol universe the artifact was compiled against.
std::string CanonicalTransducerText(const Transducer& t);

/// HashBytes(CanonicalTransducerText(t)).
std::uint64_t StructuralTransducerHash(const Transducer& t);

}  // namespace xtc

#endif  // XTC_TD_CANONICAL_H_
