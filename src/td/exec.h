#ifndef XTC_TD_EXEC_H_
#define XTC_TD_EXEC_H_

#include "src/td/transducer.h"
#include "src/tree/tree.h"

namespace xtc {

/// T^q(t): the translation of `input` in state `state` (Definition 5 plus
/// the Section 4 selector semantics). Returns the output hedge; missing
/// rules yield the empty hedge.
Hedge ApplyState(const Transducer& t, int state, const Node* input,
                 TreeBuilder* builder);

/// T(t) = T^{q0}(t) interpreted as a tree; nullptr when the translation is
/// the empty hedge (no initial rule for the root label).
Node* Apply(const Transducer& t, const Node* input, TreeBuilder* builder);

}  // namespace xtc

#endif  // XTC_TD_EXEC_H_
