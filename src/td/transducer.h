#ifndef XTC_TD_TRANSDUCER_H_
#define XTC_TD_TRANSDUCER_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"
#include "src/fa/alphabet.h"
#include "src/fa/dfa.h"
#include "src/xpath/ast.h"

namespace xtc {

/// A node of a rule's right-hand side: an output label with template
/// children, a bare state (processing all children of the current input
/// node), or a state-selector pair ⟨q, P⟩ (processing the input nodes
/// selected by the XPath pattern or path DFA — Section 4). States and
/// selectors only occur at leaves; output is extended downwards only.
struct RhsNode {
  enum class Kind { kLabel, kState, kSelect };

  Kind kind = Kind::kLabel;
  int label = -1;     ///< kLabel
  int state = -1;     ///< kState / kSelect
  int selector = -1;  ///< kSelect: index into the transducer's selectors
  std::vector<RhsNode> children;  ///< kLabel only

  static RhsNode Label(int label, std::vector<RhsNode> children = {});
  static RhsNode State(int state);
  static RhsNode Select(int state, int selector);
};

using RhsHedge = std::vector<RhsNode>;

/// A node-selection device for ⟨q, P⟩ leaves: an XPath pattern, or a path
/// DFA (T^DFA transducers, Theorem 29).
struct Selector {
  XPathPatternPtr pattern;   ///< set for XPath selectors
  std::optional<Dfa> dfa;    ///< set for DFA selectors
};

/// A deterministic top–down unranked tree transducer (Definition 5),
/// optionally extended with XPath/DFA selectors (Section 4). Rules map
/// (state, input symbol) to an output hedge template. Definition 5 restricts
/// the rule applied at the document root to a single label-rooted tree so
/// that outputs are trees; like the paper's own Example 10 (which reuses its
/// start state on inner symbols with hedge templates), this is enforced at
/// application/typechecking time for the actual root rule only.
class Transducer {
 public:
  explicit Transducer(Alphabet* alphabet) : alphabet_(alphabet) {}

  /// Adds a state; names are used in diagnostics, rule parsing, and XSLT
  /// export modes.
  int AddState(std::string name);

  int num_states() const { return static_cast<int>(state_names_.size()); }
  const std::string& StateName(int state) const;
  std::optional<int> FindState(std::string_view name) const;

  void SetInitial(int state);
  int initial() const { return initial_; }

  int AddSelector(Selector selector);
  const Selector& selector(int id) const;
  int num_selectors() const { return static_cast<int>(selectors_.size()); }

  /// Installs the rule (state, symbol) -> rhs, checking well-formedness
  /// (states/selectors are leaves and in range).
  void SetRule(int state, int symbol, RhsHedge rhs);

  /// Parses and installs a rule. The rhs syntax is the paper's term syntax
  /// where leaf names resolve to states when they match a state name and to
  /// output labels otherwise; ⟨q, P⟩ is written "<q, ./pattern>". Example:
  /// "c(p q)" or "chapter <q, .//title>".
  Status SetRuleFromString(std::string_view state_name,
                           std::string_view symbol_name,
                           std::string_view rhs_text);

  /// The rule's template, or nullptr when there is no (state, symbol) rule
  /// (in which case the transducer outputs the empty hedge).
  const RhsHedge* rule(int state, int symbol) const;

  const std::map<std::pair<int, int>, RhsHedge>& rules() const {
    return rules_;
  }

  Alphabet* alphabet() const { return alphabet_; }

  /// Paper size measure: |Q| + |Sigma| + total rhs nodes.
  std::size_t Size() const;

  /// Whether any rule uses a ⟨q, P⟩ selector.
  bool HasSelectors() const;

  /// Renders a rule template in the input syntax.
  std::string RhsToString(const RhsHedge& rhs) const;

 private:
  void CheckRhs(const RhsHedge& rhs, bool top_level) const;

  Alphabet* alphabet_;
  std::vector<std::string> state_names_;
  std::map<std::string, int, std::less<>> state_ids_;
  int initial_ = -1;
  std::vector<Selector> selectors_;
  std::map<std::pair<int, int>, RhsHedge> rules_;
};

}  // namespace xtc

#endif  // XTC_TD_TRANSDUCER_H_
