#ifndef XTC_TD_COMPILE_SELECTORS_H_
#define XTC_TD_COMPILE_SELECTORS_H_

#include "src/base/status.h"
#include "src/td/transducer.h"

namespace xtc {

/// Compiles every ⟨q, P⟩ selector of `t` away, yielding an equivalent
/// selector-free transducer that simulates each selector's path automaton
/// with deleting states — the constructions of Theorem 23 (XPath{/, *}:
/// only non-recursively deleting states of deletion width one are
/// introduced, so T' stays in T^{C,K}_trac with the same C and K) and of
/// Theorem 29 (DFA selectors / descendant axes on non-deleting transducers:
/// after a selected node the simulation continues below it, in document
/// order). XPath selectors must be filter-free; fails otherwise.
StatusOr<Transducer> CompileSelectors(const Transducer& t);

}  // namespace xtc

#endif  // XTC_TD_COMPILE_SELECTORS_H_
