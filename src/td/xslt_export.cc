#include "src/td/xslt_export.h"

#include "src/xpath/ast.h"

namespace xtc {
namespace {

void Indent(int depth, std::string* out) {
  out->append(static_cast<std::size_t>(depth) * 2, ' ');
}

void RenderRhsNode(const Transducer& t, const RhsNode& n, int depth,
                   std::string* out) {
  const Alphabet& alphabet = *t.alphabet();
  switch (n.kind) {
    case RhsNode::Kind::kLabel:
      Indent(depth, out);
      if (n.children.empty()) {
        out->append("<" + alphabet.Name(n.label) + "/>\n");
      } else {
        out->append("<" + alphabet.Name(n.label) + ">\n");
        for (const RhsNode& c : n.children) {
          RenderRhsNode(t, c, depth + 1, out);
        }
        Indent(depth, out);
        out->append("</" + alphabet.Name(n.label) + ">\n");
      }
      break;
    case RhsNode::Kind::kState:
      Indent(depth, out);
      out->append("<xsl:apply-templates mode=\"" + t.StateName(n.state) +
                  "\"/>\n");
      break;
    case RhsNode::Kind::kSelect: {
      Indent(depth, out);
      const Selector& sel = t.selector(n.selector);
      std::string select =
          sel.pattern != nullptr
              ? PatternToString(*sel.pattern, alphabet)
              : std::string("(: path automaton #") +
                    std::to_string(n.selector) + " :)";
      // XSLT paths are written relative to the context node: drop "./".
      if (select.rfind("./", 0) == 0 && select.rfind(".//", 0) != 0) {
        select = select.substr(2);
      }
      out->append("<xsl:apply-templates select=\"" + select + "\" mode=\"" +
                  t.StateName(n.state) + "\"/>\n");
      break;
    }
  }
}

}  // namespace

std::string ExportXslt(const Transducer& t) {
  std::string out;
  out +=
      "<xsl:stylesheet version=\"1.0\" "
      "xmlns:xsl=\"http://www.w3.org/1999/XSL/Transform\">\n";
  out += "<!-- start the program in mode \"" + t.StateName(t.initial()) +
         "\" -->\n";
  for (const auto& [key, rhs] : t.rules()) {
    const auto& [state, symbol] = key;
    out += "<xsl:template match=\"" + t.alphabet()->Name(symbol) +
           "\" mode=\"" + t.StateName(state) + "\">\n";
    for (const RhsNode& n : rhs) {
      RenderRhsNode(t, n, 1, &out);
    }
    out += "</xsl:template>\n";
  }
  out += "</xsl:stylesheet>\n";
  return out;
}

}  // namespace xtc
