#include "src/td/classes.h"

namespace xtc {
namespace {

int CountStates(const RhsHedge& rhs) {
  int n = 0;
  for (const RhsNode& node : rhs) {
    switch (node.kind) {
      case RhsNode::Kind::kLabel:
        n += CountStates(node.children);
        break;
      case RhsNode::Kind::kState:
      case RhsNode::Kind::kSelect:
        ++n;
        break;
    }
  }
  return n;
}

}  // namespace

bool IsNonDeleting(const Transducer& t) {
  for (const auto& [key, rhs] : t.rules()) {
    for (const RhsNode& node : rhs) {
      if (node.kind == RhsNode::Kind::kState) return false;
    }
  }
  return true;
}

bool IsDelRelab(const Transducer& t) {
  if (t.HasSelectors()) return false;
  for (const auto& [key, rhs] : t.rules()) {
    if (CountStates(rhs) > 1) return false;
  }
  return true;
}

ClassReport ClassifyTransducer(const Transducer& t) {
  ClassReport report;
  report.has_selectors = t.HasSelectors();
  report.non_deleting = IsNonDeleting(t);
  report.del_relab = IsDelRelab(t);
  if (!report.has_selectors) {
    report.widths = AnalyzeWidths(t);
  }
  return report;
}

std::string ClassReportToString(const ClassReport& report) {
  std::string out = "T[";
  out += report.non_deleting ? "nd" : "d";
  if (!report.has_selectors) {
    out += ", cw=" + std::to_string(report.widths.copying_width);
    if (report.widths.dpw_bounded) {
      out += ", K=" + std::to_string(report.widths.deletion_path_width);
    } else {
      out += ", K=unbounded";
    }
  } else {
    out += ", selectors";
  }
  out += "]";
  if (report.del_relab) out += " (del-relab)";
  if (!report.has_selectors && report.widths.dpw_bounded) out += " (trac)";
  return out;
}

}  // namespace xtc
