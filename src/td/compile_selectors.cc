#include "src/td/compile_selectors.h"

#include <map>
#include <vector>

#include "src/base/logging.h"
#include "src/xpath/to_dfa.h"

namespace xtc {
namespace {

// live[d]: a final state is reachable from d in >= 0 steps.
std::vector<bool> LiveStates(const Dfa& dfa) {
  const int n = dfa.num_states();
  std::vector<bool> live(static_cast<std::size_t>(n), false);
  for (int s = 0; s < n; ++s) live[static_cast<std::size_t>(s)] = dfa.final(s);
  bool changed = true;
  while (changed) {
    changed = false;
    for (int s = 0; s < n; ++s) {
      if (live[static_cast<std::size_t>(s)]) continue;
      for (int sym = 0; sym < dfa.num_symbols(); ++sym) {
        int t = dfa.Step(s, sym);
        if (t != Dfa::kDead && live[static_cast<std::size_t>(t)]) {
          live[static_cast<std::size_t>(s)] = true;
          changed = true;
          break;
        }
      }
    }
  }
  return live;
}

struct SelectorAutomaton {
  Dfa dfa;
  std::vector<bool> live;
};

class Compiler {
 public:
  explicit Compiler(const Transducer& t) : t_(t), out_(t.alphabet()) {}

  StatusOr<Transducer> Run() {
    const int num_symbols = t_.alphabet()->size();
    // Copy states and initial.
    for (int q = 0; q < t_.num_states(); ++q) {
      out_.AddState(t_.StateName(q));
    }
    out_.SetInitial(t_.initial());

    // Compile every selector to a path DFA.
    for (int s = 0; s < t_.num_selectors(); ++s) {
      const Selector& sel = t_.selector(s);
      if (sel.pattern != nullptr) {
        StatusOr<Dfa> dfa = XPathToDfa(*sel.pattern, num_symbols);
        if (!dfa.ok()) return dfa.status();
        automata_.push_back({*std::move(dfa), {}});
      } else {
        automata_.push_back({*sel.dfa, {}});
      }
      automata_.back().live = LiveStates(automata_.back().dfa);
    }

    // Rewrite the original rules (discovering used (state, selector) pairs).
    for (const auto& [key, rhs] : t_.rules()) {
      out_.SetRule(key.first, key.second, Rewrite(rhs));
    }

    // Emit simulation rules for the discovered pairs; new pairs can be
    // discovered while rewriting the carried-over templates.
    while (!worklist_.empty()) {
      auto [p, s, d] = worklist_.back();
      worklist_.pop_back();
      EmitSimulationRules(p, s, d);
    }
    return std::move(out_);
  }

 private:
  // The compiled state simulating selector `s` for target state `p` at DFA
  // state `d`; creates it (and schedules its rules) on first use.
  int SimState(int p, int s, int d) {
    auto it = sim_states_.find({p, s, d});
    if (it != sim_states_.end()) return it->second;
    int id = out_.AddState(t_.StateName(p) + "~sel" + std::to_string(s) + "#" +
                           std::to_string(d));
    sim_states_.emplace(std::make_tuple(p, s, d), id);
    worklist_.emplace_back(p, s, d);
    return id;
  }

  RhsHedge Rewrite(const RhsHedge& rhs) {
    RhsHedge out;
    for (const RhsNode& n : rhs) {
      switch (n.kind) {
        case RhsNode::Kind::kLabel: {
          RhsNode copy = RhsNode::Label(n.label, Rewrite(n.children));
          out.push_back(std::move(copy));
          break;
        }
        case RhsNode::Kind::kState:
          out.push_back(n);
          break;
        case RhsNode::Kind::kSelect: {
          const SelectorAutomaton& sa =
              automata_[static_cast<std::size_t>(n.selector)];
          int d0 = sa.dfa.initial();
          if (d0 != Dfa::kDead && sa.live[static_cast<std::size_t>(d0)]) {
            out.push_back(RhsNode::State(SimState(n.state, n.selector, d0)));
          }
          // A dead selector selects nothing: the leaf vanishes.
          break;
        }
      }
    }
    return out;
  }

  void EmitSimulationRules(int p, int s, int d) {
    const SelectorAutomaton& sa = automata_[static_cast<std::size_t>(s)];
    int sim = SimState(p, s, d);
    for (int b = 0; b < t_.alphabet()->size(); ++b) {
      if (b >= sa.dfa.num_symbols()) break;
      int d2 = sa.dfa.Step(d, b);
      if (d2 == Dfa::kDead || !sa.live[static_cast<std::size_t>(d2)]) continue;
      RhsHedge rhs;
      if (sa.dfa.final(d2)) {
        // The b-node is selected: produce rhs(p, b) here...
        const RhsHedge* orig = t_.rule(p, b);
        if (orig != nullptr) {
          RhsHedge rewritten = Rewrite(*orig);
          rhs.insert(rhs.end(), rewritten.begin(), rewritten.end());
        }
      }
      // ...and keep scanning below it if deeper matches are possible.
      bool continues = false;
      for (int c = 0; c < t_.alphabet()->size(); ++c) {
        if (c >= sa.dfa.num_symbols()) break;
        int d3 = sa.dfa.Step(d2, c);
        if (d3 != Dfa::kDead && sa.live[static_cast<std::size_t>(d3)]) {
          continues = true;
          break;
        }
      }
      if (continues) rhs.push_back(RhsNode::State(SimState(p, s, d2)));
      if (!rhs.empty()) out_.SetRule(sim, b, std::move(rhs));
    }
  }

  const Transducer& t_;
  Transducer out_;
  std::vector<SelectorAutomaton> automata_;
  std::map<std::tuple<int, int, int>, int> sim_states_;
  std::vector<std::tuple<int, int, int>> worklist_;
};

}  // namespace

StatusOr<Transducer> CompileSelectors(const Transducer& t) {
  return Compiler(t).Run();
}

}  // namespace xtc
