#include "src/td/exec.h"

#include "src/base/logging.h"
#include "src/xpath/eval.h"

namespace xtc {
namespace {

void ExpandRhsNode(const Transducer& t, const RhsNode& n, const Node* input,
                   TreeBuilder* builder, Hedge* out);

void ExpandRhsHedge(const Transducer& t, const RhsHedge& rhs,
                    const Node* input, TreeBuilder* builder, Hedge* out) {
  for (const RhsNode& n : rhs) ExpandRhsNode(t, n, input, builder, out);
}

void ExpandRhsNode(const Transducer& t, const RhsNode& n, const Node* input,
                   TreeBuilder* builder, Hedge* out) {
  switch (n.kind) {
    case RhsNode::Kind::kLabel: {
      Hedge kids;
      ExpandRhsHedge(t, n.children, input, builder, &kids);
      out->push_back(builder->Make(n.label, kids));
      break;
    }
    case RhsNode::Kind::kState: {
      // The state processes every child of the current input node, in order.
      for (const Node* c : input->Children()) {
        Hedge sub = ApplyState(t, n.state, c, builder);
        out->insert(out->end(), sub.begin(), sub.end());
      }
      break;
    }
    case RhsNode::Kind::kSelect: {
      const Selector& sel = t.selector(n.selector);
      std::vector<const Node*> selected =
          sel.pattern != nullptr ? EvalXPath(*sel.pattern, input)
                                 : EvalDfaSelector(*sel.dfa, input);
      for (const Node* v : selected) {
        Hedge sub = ApplyState(t, n.state, v, builder);
        out->insert(out->end(), sub.begin(), sub.end());
      }
      break;
    }
  }
}

}  // namespace

Hedge ApplyState(const Transducer& t, int state, const Node* input,
                 TreeBuilder* builder) {
  XTC_CHECK(input != nullptr);
  const RhsHedge* rhs = t.rule(state, input->label);
  Hedge out;
  if (rhs == nullptr) return out;
  ExpandRhsHedge(t, *rhs, input, builder, &out);
  return out;
}

Node* Apply(const Transducer& t, const Node* input, TreeBuilder* builder) {
  XTC_CHECK_GE(t.initial(), 0);
  Hedge out = ApplyState(t, t.initial(), input, builder);
  // Definition 5's root restriction: the translation only counts as a tree
  // when the root rule produced exactly one.
  if (out.size() != 1) return nullptr;
  return out[0];
}

}  // namespace xtc
