#include "src/td/widths.h"

#include <algorithm>
#include <map>

#include "src/base/logging.h"

namespace xtc {
namespace {

// Iterative Tarjan SCC over an adjacency list; returns the component id per
// node (ids are in reverse topological order: an edge u->v across components
// has comp[u] > comp[v]).
std::vector<int> TarjanScc(const std::vector<std::vector<int>>& adj) {
  const int n = static_cast<int>(adj.size());
  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<int> stack;
  std::vector<int> comp(static_cast<std::size_t>(n), -1);
  int next_index = 0;
  int next_comp = 0;

  struct Frame {
    int v;
    std::size_t child;
  };
  std::vector<Frame> call;
  for (int root = 0; root < n; ++root) {
    if (index[static_cast<std::size_t>(root)] != -1) continue;
    call.push_back({root, 0});
    index[static_cast<std::size_t>(root)] =
        low[static_cast<std::size_t>(root)] = next_index++;
    stack.push_back(root);
    on_stack[static_cast<std::size_t>(root)] = true;
    while (!call.empty()) {
      Frame& f = call.back();
      if (f.child < adj[static_cast<std::size_t>(f.v)].size()) {
        int w = adj[static_cast<std::size_t>(f.v)][f.child++];
        if (index[static_cast<std::size_t>(w)] == -1) {
          index[static_cast<std::size_t>(w)] =
              low[static_cast<std::size_t>(w)] = next_index++;
          stack.push_back(w);
          on_stack[static_cast<std::size_t>(w)] = true;
          call.push_back({w, 0});
        } else if (on_stack[static_cast<std::size_t>(w)]) {
          low[static_cast<std::size_t>(f.v)] =
              std::min(low[static_cast<std::size_t>(f.v)],
                       index[static_cast<std::size_t>(w)]);
        }
      } else {
        int v = f.v;
        call.pop_back();
        if (!call.empty()) {
          int parent = call.back().v;
          low[static_cast<std::size_t>(parent)] =
              std::min(low[static_cast<std::size_t>(parent)],
                       low[static_cast<std::size_t>(v)]);
        }
        if (low[static_cast<std::size_t>(v)] ==
            index[static_cast<std::size_t>(v)]) {
          while (true) {
            int w = stack.back();
            stack.pop_back();
            on_stack[static_cast<std::size_t>(w)] = false;
            comp[static_cast<std::size_t>(w)] = next_comp;
            if (w == v) break;
          }
          ++next_comp;
        }
      }
    }
  }
  return comp;
}

// Collects the states occurring at the top level of a template hedge
// (kState only: selectors are rejected by AnalyzeWidths) and the sibling-
// sequence state counts anywhere in the template.
void ScanSiblings(const RhsHedge& rhs, int* max_states_in_siblings) {
  int here = 0;
  for (const RhsNode& n : rhs) {
    if (n.kind != RhsNode::Kind::kLabel) ++here;
  }
  *max_states_in_siblings = std::max(*max_states_in_siblings, here);
  for (const RhsNode& n : rhs) {
    if (n.kind == RhsNode::Kind::kLabel) {
      ScanSiblings(n.children, max_states_in_siblings);
    }
  }
}

uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > kWidthSaturated / b) return kWidthSaturated;
  return std::min(a * b, kWidthSaturated);
}

}  // namespace

WidthAnalysis AnalyzeWidths(const Transducer& t) {
  XTC_CHECK_MSG(!t.HasSelectors(),
                "compile selectors away before width analysis");
  WidthAnalysis out;
  out.deletion_width.assign(static_cast<std::size_t>(t.num_states()), 0);
  out.recursively_deleting.assign(static_cast<std::size_t>(t.num_states()),
                                  false);

  // Copying width C and per-rule top-level states.
  std::map<std::pair<int, int>, std::vector<int>> top_states;
  for (const auto& [key, rhs] : t.rules()) {
    ScanSiblings(rhs, &out.copying_width);
    std::vector<int>& tops = top_states[key];
    for (const RhsNode& n : rhs) {
      if (n.kind == RhsNode::Kind::kState) tops.push_back(n.state);
    }
    auto& dw = out.deletion_width[static_cast<std::size_t>(key.first)];
    dw = std::max(dw, static_cast<int>(tops.size()));
  }

  // The deletion path graph G_T (Proposition 16): nodes are rule pairs
  // (q, a); an edge (q,a) -> (q',a') for every top-level state q' of
  // rhs(q, a) and every symbol a' with a rule; edge cost = number of
  // top-level states of rhs(q, a).
  std::vector<std::pair<int, int>> nodes;
  std::map<std::pair<int, int>, int> node_id;
  for (const auto& [key, tops] : top_states) {
    node_id.emplace(key, static_cast<int>(nodes.size()));
    nodes.push_back(key);
  }
  const int n = static_cast<int>(nodes.size());
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  std::vector<int> cost(static_cast<std::size_t>(n), 0);
  for (int v = 0; v < n; ++v) {
    const std::vector<int>& tops = top_states.at(nodes[static_cast<std::size_t>(v)]);
    cost[static_cast<std::size_t>(v)] = static_cast<int>(tops.size());
    for (int q2 : tops) {
      for (const auto& [key2, id2] : node_id) {
        if (key2.first == q2) adj[static_cast<std::size_t>(v)].push_back(id2);
      }
    }
  }

  std::vector<int> comp = TarjanScc(adj);

  // recursively_deleting: state-level deletion graph cycles. A state q is on
  // a cycle iff some (q, a) node has an edge within its SCC (or a self-loop).
  for (int v = 0; v < n; ++v) {
    for (int w : adj[static_cast<std::size_t>(v)]) {
      if (comp[static_cast<std::size_t>(v)] == comp[static_cast<std::size_t>(w)]) {
        out.recursively_deleting[static_cast<std::size_t>(
            nodes[static_cast<std::size_t>(v)].first)] = true;
        // A cycle edge with cost > 1 means copying while recursively
        // deleting: K is unbounded.
        if (cost[static_cast<std::size_t>(v)] > 1) out.dpw_bounded = false;
      }
    }
  }
  if (!out.dpw_bounded) return out;

  // Longest (max-product) path on the condensation G'_T. Every node of a
  // nontrivial SCC has an intra-SCC out-edge, so (having not bailed out
  // above) intra-SCC edges all carry cost 1 and contribute nothing to the
  // product; a component's best value is determined by its cross edges.
  // Tarjan component ids are in reverse topological order, so successors of
  // a component have smaller ids and are already settled.
  int num_comps = 0;
  for (int v = 0; v < n; ++v) {
    num_comps = std::max(num_comps, comp[static_cast<std::size_t>(v)] + 1);
  }
  std::vector<uint64_t> best_comp(static_cast<std::size_t>(num_comps), 1);
  uint64_t k = 1;
  for (int c = 0; c < num_comps; ++c) {
    uint64_t val = 1;
    for (int v = 0; v < n; ++v) {
      if (comp[static_cast<std::size_t>(v)] != c) continue;
      for (int w : adj[static_cast<std::size_t>(v)]) {
        int cw = comp[static_cast<std::size_t>(w)];
        if (cw == c) continue;  // intra-SCC: cost 1, no effect
        uint64_t via =
            SatMul(static_cast<uint64_t>(cost[static_cast<std::size_t>(v)]),
                   best_comp[static_cast<std::size_t>(cw)]);
        val = std::max(val, via);
      }
    }
    best_comp[static_cast<std::size_t>(c)] = val;
    k = std::max(k, val);
  }
  out.deletion_path_width = k;
  return out;
}

bool IsTrac(const WidthAnalysis& analysis, int max_c, uint64_t max_k) {
  return analysis.dpw_bounded && analysis.copying_width <= max_c &&
         analysis.deletion_path_width <= max_k;
}

}  // namespace xtc
