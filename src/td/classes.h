#ifndef XTC_TD_CLASSES_H_
#define XTC_TD_CLASSES_H_

#include <cstdint>
#include <string>

#include "src/td/transducer.h"
#include "src/td/widths.h"

namespace xtc {

/// Whether the transducer is non-deleting (T_nd): no bare state occurs at
/// the top level of any rule template. Selectors ⟨q, P⟩ do not count — the
/// XPath classes T^XPath_nd of Section 4 are defined on top of T_nd.
bool IsNonDeleting(const Transducer& t);

/// Whether the transducer is in T_del-relab (Theorem 20): no selectors and
/// every rule template contains at most one state in total (so deletion
/// width and copying width are both at most one — a mild generalization of
/// relabelings).
bool IsDelRelab(const Transducer& t);

/// Summary of all class memberships used by the paper's scenarios.
struct ClassReport {
  bool has_selectors = false;
  bool non_deleting = false;
  bool del_relab = false;
  WidthAnalysis widths;  // only meaningful when !has_selectors
};

ClassReport ClassifyTransducer(const Transducer& t);

/// Human-readable class line, e.g. "T[d, cw=2, K=6] (trac)".
std::string ClassReportToString(const ClassReport& report);

}  // namespace xtc

#endif  // XTC_TD_CLASSES_H_
