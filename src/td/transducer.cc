#include "src/td/transducer.h"

#include <cctype>

#include "src/base/logging.h"
#include "src/xpath/parser.h"

namespace xtc {

RhsNode RhsNode::Label(int label, std::vector<RhsNode> children) {
  RhsNode n;
  n.kind = Kind::kLabel;
  n.label = label;
  n.children = std::move(children);
  return n;
}

RhsNode RhsNode::State(int state) {
  RhsNode n;
  n.kind = Kind::kState;
  n.state = state;
  return n;
}

RhsNode RhsNode::Select(int state, int selector) {
  RhsNode n;
  n.kind = Kind::kSelect;
  n.state = state;
  n.selector = selector;
  return n;
}

int Transducer::AddState(std::string name) {
  XTC_CHECK_MSG(state_ids_.find(name) == state_ids_.end(),
                "duplicate state name");
  int id = num_states();
  state_ids_.emplace(name, id);
  state_names_.push_back(std::move(name));
  return id;
}

const std::string& Transducer::StateName(int state) const {
  XTC_CHECK(state >= 0 && state < num_states());
  return state_names_[static_cast<std::size_t>(state)];
}

std::optional<int> Transducer::FindState(std::string_view name) const {
  auto it = state_ids_.find(name);
  if (it == state_ids_.end()) return std::nullopt;
  return it->second;
}

void Transducer::SetInitial(int state) {
  XTC_CHECK(state >= 0 && state < num_states());
  initial_ = state;
}

int Transducer::AddSelector(Selector selector) {
  XTC_CHECK((selector.pattern != nullptr) != selector.dfa.has_value());
  selectors_.push_back(std::move(selector));
  return static_cast<int>(selectors_.size()) - 1;
}

const Selector& Transducer::selector(int id) const {
  XTC_CHECK(id >= 0 && id < num_selectors());
  return selectors_[static_cast<std::size_t>(id)];
}

void Transducer::CheckRhs(const RhsHedge& rhs, bool top_level) const {
  (void)top_level;
  for (const RhsNode& n : rhs) {
    switch (n.kind) {
      case RhsNode::Kind::kLabel:
        XTC_CHECK(n.label >= 0);
        CheckRhs(n.children, /*top_level=*/false);
        break;
      case RhsNode::Kind::kState:
        XTC_CHECK(n.state >= 0 && n.state < num_states());
        XTC_CHECK_MSG(n.children.empty(), "states occur at leaves only");
        break;
      case RhsNode::Kind::kSelect:
        XTC_CHECK(n.state >= 0 && n.state < num_states());
        XTC_CHECK(n.selector >= 0 && n.selector < num_selectors());
        XTC_CHECK_MSG(n.children.empty(), "selectors occur at leaves only");
        break;
    }
  }
}

void Transducer::SetRule(int state, int symbol, RhsHedge rhs) {
  XTC_CHECK(state >= 0 && state < num_states());
  XTC_CHECK(symbol >= 0);
  CheckRhs(rhs, /*top_level=*/true);
  rules_.insert_or_assign({state, symbol}, std::move(rhs));
}

const RhsHedge* Transducer::rule(int state, int symbol) const {
  auto it = rules_.find({state, symbol});
  return it == rules_.end() ? nullptr : &it->second;
}

std::size_t Transducer::Size() const {
  std::size_t total = static_cast<std::size_t>(num_states()) +
                      static_cast<std::size_t>(alphabet_->size());
  for (const auto& [key, rhs] : rules_) {
    std::vector<const RhsNode*> stack;
    for (const RhsNode& n : rhs) stack.push_back(&n);
    while (!stack.empty()) {
      const RhsNode* n = stack.back();
      stack.pop_back();
      ++total;
      for (const RhsNode& c : n->children) stack.push_back(&c);
    }
  }
  return total;
}

bool Transducer::HasSelectors() const {
  for (const auto& [key, rhs] : rules_) {
    std::vector<const RhsNode*> stack;
    for (const RhsNode& n : rhs) stack.push_back(&n);
    while (!stack.empty()) {
      const RhsNode* n = stack.back();
      stack.pop_back();
      if (n->kind == RhsNode::Kind::kSelect) return true;
      for (const RhsNode& c : n->children) stack.push_back(&c);
    }
  }
  return false;
}

namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '#' ||
         c == '$' || c == '.' || c == ':' || c == '-';
}

class RhsParser {
 public:
  RhsParser(std::string_view text, Transducer* t) : text_(text), t_(t) {}

  StatusOr<RhsHedge> Parse() {
    RhsHedge hedge;
    SkipSpace();
    while (pos_ < text_.size()) {
      StatusOr<RhsNode> n = ParseNode();
      if (!n.ok()) return n.status();
      hedge.push_back(*std::move(n));
      SkipSpace();
    }
    return hedge;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  StatusOr<RhsNode> ParseNode() {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '<') {
      return ParseSelector();
    }
    std::size_t start = pos_;
    while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
    if (pos_ == start) {
      return InvalidArgumentError("expected a name in rule rhs at position " +
                                  std::to_string(pos_));
    }
    std::string_view name = text_.substr(start, pos_ - start);
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '(') {
      ++pos_;
      std::vector<RhsNode> children;
      SkipSpace();
      while (pos_ < text_.size() && text_[pos_] != ')') {
        StatusOr<RhsNode> c = ParseNode();
        if (!c.ok()) return c;
        children.push_back(*std::move(c));
        SkipSpace();
      }
      if (pos_ >= text_.size()) return InvalidArgumentError("missing ')'");
      ++pos_;
      return RhsNode::Label(t_->alphabet()->Intern(name), std::move(children));
    }
    // Leaf: a state name resolves to a state, anything else to a label.
    std::optional<int> state = t_->FindState(name);
    if (state.has_value()) return RhsNode::State(*state);
    return RhsNode::Label(t_->alphabet()->Intern(name));
  }

  StatusOr<RhsNode> ParseSelector() {
    ++pos_;  // consume '<'
    SkipSpace();
    std::size_t start = pos_;
    while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
    std::optional<int> state = t_->FindState(text_.substr(start, pos_ - start));
    if (!state.has_value()) {
      return InvalidArgumentError("unknown state in selector");
    }
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != ',') {
      return InvalidArgumentError("expected ',' in selector '<q, P>'");
    }
    ++pos_;
    std::size_t pstart = pos_;
    while (pos_ < text_.size() && text_[pos_] != '>') ++pos_;
    if (pos_ >= text_.size()) return InvalidArgumentError("missing '>'");
    StatusOr<XPathPatternPtr> pattern =
        ParseXPath(text_.substr(pstart, pos_ - pstart), t_->alphabet());
    if (!pattern.ok()) return pattern.status();
    ++pos_;  // consume '>'
    int sel = t_->AddSelector(Selector{*pattern, std::nullopt});
    return RhsNode::Select(*state, sel);
  }

  std::string_view text_;
  Transducer* t_;
  std::size_t pos_ = 0;
};

}  // namespace

Status Transducer::SetRuleFromString(std::string_view state_name,
                                     std::string_view symbol_name,
                                     std::string_view rhs_text) {
  std::optional<int> state = FindState(state_name);
  if (!state.has_value()) {
    return InvalidArgumentError("unknown state '" + std::string(state_name) +
                                "'");
  }
  int symbol = alphabet_->Intern(symbol_name);
  StatusOr<RhsHedge> rhs = RhsParser(rhs_text, this).Parse();
  if (!rhs.ok()) return rhs.status();
  SetRule(*state, symbol, *std::move(rhs));
  return Status::Ok();
}

namespace {

void RhsNodeToString(const Transducer& t, const RhsNode& n, std::string* out) {
  switch (n.kind) {
    case RhsNode::Kind::kLabel:
      out->append(t.alphabet()->Name(n.label));
      if (!n.children.empty()) {
        out->push_back('(');
        for (std::size_t i = 0; i < n.children.size(); ++i) {
          if (i > 0) out->push_back(' ');
          RhsNodeToString(t, n.children[i], out);
        }
        out->push_back(')');
      }
      break;
    case RhsNode::Kind::kState:
      out->append(t.StateName(n.state));
      break;
    case RhsNode::Kind::kSelect: {
      out->push_back('<');
      out->append(t.StateName(n.state));
      out->append(", ");
      const Selector& sel = t.selector(n.selector);
      if (sel.pattern != nullptr) {
        out->append(PatternToString(*sel.pattern, *t.alphabet()));
      } else {
        out->append("dfa#" + std::to_string(n.selector));
      }
      out->push_back('>');
      break;
    }
  }
}

}  // namespace

std::string Transducer::RhsToString(const RhsHedge& rhs) const {
  std::string out;
  for (std::size_t i = 0; i < rhs.size(); ++i) {
    if (i > 0) out.push_back(' ');
    RhsNodeToString(*this, rhs[i], &out);
  }
  return out;
}

}  // namespace xtc
