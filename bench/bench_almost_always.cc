// Experiment E8 — Corollary 39: almost-always typechecking (finitely many
// counterexamples) in PTIME via the explicit Lemma 14 automaton and the
// Proposition 4(1) finiteness test.

#include <benchmark/benchmark.h>

#include "src/base/logging.h"
#include "src/core/almost_always.h"
#include "src/workload/families.h"

namespace xtc {
namespace {

void BM_Cor39_TypecheckingInstances(benchmark::State& state) {
  // Typechecking instances are trivially almost-always.
  PaperExample ex = FilterFamily(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    StatusOr<bool> r =
        TypechecksAlmostAlways(*ex.transducer, *ex.din, *ex.dout, 2000000);
    XTC_CHECK_MSG(r.ok(), r.status().ToString().c_str());
    XTC_CHECK(*r);
  }
}
BENCHMARK(BM_Cor39_TypecheckingInstances)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_Cor39_FinitelyManyCounterexamples(benchmark::State& state) {
  // FailingFilterFamily has exactly one violating document (the single-
  // section book): almost-always typechecks although typechecking fails.
  PaperExample ex = FailingFilterFamily(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    StatusOr<bool> r =
        TypechecksAlmostAlways(*ex.transducer, *ex.din, *ex.dout, 2000000);
    XTC_CHECK_MSG(r.ok(), r.status().ToString().c_str());
    XTC_CHECK(*r);
  }
}
BENCHMARK(BM_Cor39_FinitelyManyCounterexamples)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// An instance with infinitely many counterexamples: deleted b-pumps keep
// the violating output r(a) reachable from unboundedly many inputs.
PaperExample InfiniteCexFamily(int n) {
  PaperExample ex;
  ex.alphabet = std::make_shared<Alphabet>();
  ex.alphabet->Intern("r");
  ex.alphabet->Intern("a");
  for (int i = 0; i < n; ++i) ex.alphabet->Intern("b" + std::to_string(i));
  ex.din = std::make_shared<Dtd>(ex.alphabet.get(), 0);
  std::string rule = "a";
  for (int i = 0; i < n; ++i) rule += " b" + std::to_string(i) + "*";
  XTC_CHECK(ex.din->SetRule("r", rule).ok());
  ex.transducer = std::make_shared<Transducer>(ex.alphabet.get());
  ex.transducer->AddState("q0");
  ex.transducer->AddState("q");
  ex.transducer->SetInitial(0);
  XTC_CHECK(ex.transducer->SetRuleFromString("q0", "r", "r(q)").ok());
  XTC_CHECK(ex.transducer->SetRuleFromString("q", "a", "a").ok());
  ex.dout = std::make_shared<Dtd>(ex.alphabet.get(), 0);
  XTC_CHECK(ex.dout->SetRule("r", "a a").ok());  // never satisfied
  return ex;
}

void BM_Cor39_InfinitelyManyCounterexamples(benchmark::State& state) {
  PaperExample ex = InfiniteCexFamily(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    StatusOr<bool> r =
        TypechecksAlmostAlways(*ex.transducer, *ex.din, *ex.dout, 2000000);
    XTC_CHECK_MSG(r.ok(), r.status().ToString().c_str());
    XTC_CHECK(!*r);
  }
}
BENCHMARK(BM_Cor39_InfinitelyManyCounterexamples)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xtc
