// Service-layer throughput: a mixed workload-family batch driven through
// TypecheckService at 1/2/4/8 worker threads, cold cache (a fresh service —
// and thus a fresh compile cache — per iteration) vs warm cache (one
// pre-warmed service reused across iterations, so every artifact lookup
// hits). The cold/warm gap isolates what the content-addressed compile
// cache amortizes — Glushkov + subset construction + completion +
// inhabitation + selector compilation — from the per-request engine work
// that repeats regardless. items_per_second counts requests, so the
// PR acceptance ratio (warm@4 >= 3x cold@1) reads directly off the report.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "src/service/compile_cache.h"
#include "src/service/replay.h"
#include "src/service/service.h"
#include "src/workload/families.h"

namespace xtc {
namespace {

// The mix pairs engine-bound typecheck slices (filter/relab/xpath/nfa at
// sizes whose per-request engine run is cheap) with compile-bound validate
// slices against hostile NFA schemas: determinizing (a|b)*a(a|b)^{n-1}
// costs 2^n DFA states at compile time, while validating a document against
// the compiled artifact is a linear walk. The cold run pays every
// determinization; the warm run hits the content-addressed cache and pays
// only the walks — exactly the gap the cache exists to open. `distinct`
// sizes per family bound the number of cache keys so the warm run is pure
// hits after one pass.
std::vector<ServiceRequest> BenchBatch() {
  struct Slice {
    const char* family;
    int n;
    int count;
    int distinct;
  };
  const Slice kMix[] = {
      {"filter", 6, 8, 4},
      {"relab", 6, 8, 4},
      {"xpath", 6, 8, 4},
      {"nfa", 4, 6, 2},
  };
  std::vector<ServiceRequest> batch;
  int id = 0;
  for (const Slice& slice : kMix) {
    StatusOr<std::vector<ServiceRequest>> sub =
        MakeFamilyBatch(slice.family, slice.n, slice.count, slice.distinct);
    XTC_CHECK_MSG(sub.ok(), sub.status().ToString().c_str());
    for (ServiceRequest& request : *sub) {
      request.id = ++id;
      batch.push_back(std::move(request));
    }
  }
  // Validate slices: n=16 would exceed the determinization state cap, so
  // 13..15 are the heaviest compiles the service accepts.
  for (int n = 13; n <= 15; ++n) {
    StatusOr<SchemaSpec> schema = SerializeSchema(*NfaSchemaFamily(n).din);
    XTC_CHECK_MSG(schema.ok(), schema.status().ToString().c_str());
    std::string tree = "r(";
    for (int i = 0; i < n; ++i) tree += i == 0 ? "a" : " a";
    tree += ")";
    for (int i = 0; i < 4; ++i) {
      ServiceRequest request;
      request.id = ++id;
      request.op = ServiceOp::kValidate;
      request.schema = *schema;
      request.tree = tree;
      batch.push_back(std::move(request));
    }
  }
  return batch;
}

void RunBatch(TypecheckService* service,
              const std::vector<ServiceRequest>& batch) {
  std::vector<std::future<ServiceResponse>> futures;
  futures.reserve(batch.size());
  for (const ServiceRequest& request : batch) {
    futures.push_back(service->Submit(request));
  }
  for (std::future<ServiceResponse>& future : futures) {
    ServiceResponse response = future.get();
    XTC_CHECK_MSG(response.status.ok(), response.status.ToString().c_str());
    benchmark::DoNotOptimize(response.typechecks);
  }
}

TypecheckService::Options ServiceOptions(int threads) {
  TypecheckService::Options options;
  options.num_threads = static_cast<std::size_t>(threads);
  options.queue_capacity = 4096;
  return options;
}

void BM_ServiceColdCache(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const std::vector<ServiceRequest> batch = BenchBatch();
  for (auto _ : state) {
    TypecheckService service(ServiceOptions(threads));
    RunBatch(&service, batch);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_ServiceColdCache)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_ServiceWarmCache(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const std::vector<ServiceRequest> batch = BenchBatch();
  TypecheckService service(ServiceOptions(threads));
  RunBatch(&service, batch);  // warm-up pass populates every cache key
  for (auto _ : state) {
    RunBatch(&service, batch);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_ServiceWarmCache)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// Warm-hit contention: N threads hammer GetOrCompileSchema against ONE
// shared, prewarmed cache over a small key set, so every lookup resolves on
// the lock-free snapshot path. This is the sharded cache's proof row: with
// the old single-mutex table the per-op time grows with thread count (a
// convoy); with snapshot reads it should stay near flat, so the scaling
// ratio N*ns(1)/ns(N) approaches N (ci/cache_gate.py enforces floors on
// multi-core hosts). Thread count rides in Arg() rather than ->Threads()
// because the bench JSON reporter strips /key:value name suffixes, which
// would drop a Threads() count from the row; manual time brackets exactly
// the hammer loop, not thread spawn.
void BM_CacheWarmHitContention(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  constexpr int kKeys = 8;
  constexpr int kOpsPerThread = 4096;
  struct Key {
    SchemaSpec spec;
    std::shared_ptr<Alphabet> alphabet;
  };
  CompileCache cache;
  std::vector<Key> keys;
  for (int n = 3; n < 3 + kKeys; ++n) {
    StatusOr<ServiceRequest> request =
        TypecheckRequestFromExample(FilterFamily(n));
    XTC_CHECK_MSG(request.ok(), request.status().ToString().c_str());
    StatusOr<std::vector<std::string>> universe = CollectUniverse(*request);
    XTC_CHECK_MSG(universe.ok(), universe.status().ToString().c_str());
    Key key;
    key.spec = request->din;
    key.alphabet = cache.GetOrCreateAlphabet(*universe);
    XTC_CHECK(cache.GetOrCompileSchema(key.spec, key.alphabet, nullptr).ok());
    keys.push_back(std::move(key));
  }
  for (auto _ : state) {
    std::atomic<bool> go{false};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&cache, &keys, &go, t] {
        while (!go.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        for (int op = 0; op < kOpsPerThread; ++op) {
          const Key& key = keys[static_cast<std::size_t>(t + op) % kKeys];
          bool hit = false;
          StatusOr<std::shared_ptr<const CompiledSchema>> artifact =
              cache.GetOrCompileSchema(key.spec, key.alphabet, &hit);
          benchmark::DoNotOptimize(artifact);
        }
      });
    }
    auto start = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (std::thread& worker : pool) worker.join();
    state.SetIterationTime(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count());
  }
  state.SetItemsProcessed(state.iterations() * threads * kOpsPerThread);
}
BENCHMARK(BM_CacheWarmHitContention)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->UseManualTime();

}  // namespace
}  // namespace xtc
