// Service-layer throughput: a mixed workload-family batch driven through
// TypecheckService at 1/2/4/8 worker threads, cold cache (a fresh service —
// and thus a fresh compile cache — per iteration) vs warm cache (one
// pre-warmed service reused across iterations, so every artifact lookup
// hits). The cold/warm gap isolates what the content-addressed compile
// cache amortizes — Glushkov + subset construction + completion +
// inhabitation + selector compilation — from the per-request engine work
// that repeats regardless. items_per_second counts requests, so the
// PR acceptance ratio (warm@4 >= 3x cold@1) reads directly off the report.

#include <benchmark/benchmark.h>

#include <future>
#include <utility>
#include <vector>

#include "src/service/replay.h"
#include "src/service/service.h"
#include "src/workload/families.h"

namespace xtc {
namespace {

// The mix pairs engine-bound typecheck slices (filter/relab/xpath/nfa at
// sizes whose per-request engine run is cheap) with compile-bound validate
// slices against hostile NFA schemas: determinizing (a|b)*a(a|b)^{n-1}
// costs 2^n DFA states at compile time, while validating a document against
// the compiled artifact is a linear walk. The cold run pays every
// determinization; the warm run hits the content-addressed cache and pays
// only the walks — exactly the gap the cache exists to open. `distinct`
// sizes per family bound the number of cache keys so the warm run is pure
// hits after one pass.
std::vector<ServiceRequest> BenchBatch() {
  struct Slice {
    const char* family;
    int n;
    int count;
    int distinct;
  };
  const Slice kMix[] = {
      {"filter", 6, 8, 4},
      {"relab", 6, 8, 4},
      {"xpath", 6, 8, 4},
      {"nfa", 4, 6, 2},
  };
  std::vector<ServiceRequest> batch;
  int id = 0;
  for (const Slice& slice : kMix) {
    StatusOr<std::vector<ServiceRequest>> sub =
        MakeFamilyBatch(slice.family, slice.n, slice.count, slice.distinct);
    XTC_CHECK_MSG(sub.ok(), sub.status().ToString().c_str());
    for (ServiceRequest& request : *sub) {
      request.id = ++id;
      batch.push_back(std::move(request));
    }
  }
  // Validate slices: n=16 would exceed the determinization state cap, so
  // 13..15 are the heaviest compiles the service accepts.
  for (int n = 13; n <= 15; ++n) {
    StatusOr<SchemaSpec> schema = SerializeSchema(*NfaSchemaFamily(n).din);
    XTC_CHECK_MSG(schema.ok(), schema.status().ToString().c_str());
    std::string tree = "r(";
    for (int i = 0; i < n; ++i) tree += i == 0 ? "a" : " a";
    tree += ")";
    for (int i = 0; i < 4; ++i) {
      ServiceRequest request;
      request.id = ++id;
      request.op = ServiceOp::kValidate;
      request.schema = *schema;
      request.tree = tree;
      batch.push_back(std::move(request));
    }
  }
  return batch;
}

void RunBatch(TypecheckService* service,
              const std::vector<ServiceRequest>& batch) {
  std::vector<std::future<ServiceResponse>> futures;
  futures.reserve(batch.size());
  for (const ServiceRequest& request : batch) {
    futures.push_back(service->Submit(request));
  }
  for (std::future<ServiceResponse>& future : futures) {
    ServiceResponse response = future.get();
    XTC_CHECK_MSG(response.status.ok(), response.status.ToString().c_str());
    benchmark::DoNotOptimize(response.typechecks);
  }
}

TypecheckService::Options ServiceOptions(int threads) {
  TypecheckService::Options options;
  options.num_threads = static_cast<std::size_t>(threads);
  options.queue_capacity = 4096;
  return options;
}

void BM_ServiceColdCache(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const std::vector<ServiceRequest> batch = BenchBatch();
  for (auto _ : state) {
    TypecheckService service(ServiceOptions(threads));
    RunBatch(&service, batch);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_ServiceColdCache)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_ServiceWarmCache(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const std::vector<ServiceRequest> batch = BenchBatch();
  TypecheckService service(ServiceOptions(threads));
  RunBatch(&service, batch);  // warm-up pass populates every cache key
  for (auto _ : state) {
    RunBatch(&service, batch);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_ServiceWarmCache)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace
}  // namespace xtc
