// Experiment E4 — Theorem 23: XPath{/, *} patterns compile into T_trac
// with linear overhead; typechecking stays PTIME. Sweeps the pattern
// length; also measures the compilation step alone and the Example 22
// instance.

#include <benchmark/benchmark.h>

#include "src/base/logging.h"
#include "src/core/paper_examples.h"
#include "src/core/typecheck.h"
#include "src/td/compile_selectors.h"
#include "src/workload/families.h"

namespace xtc {
namespace {

void BM_Thm23_CompileChain(benchmark::State& state) {
  PaperExample ex = XPathChainFamily(static_cast<int>(state.range(0)));
  std::size_t compiled_size = 0;
  for (auto _ : state) {
    StatusOr<Transducer> compiled = CompileSelectors(*ex.transducer);
    XTC_CHECK_MSG(compiled.ok(), compiled.status().ToString().c_str());
    compiled_size = compiled->Size();
    benchmark::DoNotOptimize(compiled);
  }
  state.counters["|T'|"] = static_cast<double>(compiled_size);
}
BENCHMARK(BM_Thm23_CompileChain)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_Thm23_TypecheckChain(benchmark::State& state) {
  PaperExample ex = XPathChainFamily(static_cast<int>(state.range(0)));
  TypecheckOptions opts;
  opts.want_counterexample = false;
  for (auto _ : state) {
    StatusOr<TypecheckResult> r =
        Typecheck(*ex.transducer, *ex.din, *ex.dout, opts);
    XTC_CHECK_MSG(r.ok(), r.status().ToString().c_str());
    XTC_CHECK(r->typechecks);
  }
}
BENCHMARK(BM_Thm23_TypecheckChain)->Arg(2)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_Thm23_Example22(benchmark::State& state) {
  PaperExample ex = MakeExample22();
  TypecheckOptions opts;
  opts.want_counterexample = false;
  for (auto _ : state) {
    StatusOr<TypecheckResult> r =
        Typecheck(*ex.transducer, *ex.din, *ex.dout, opts);
    XTC_CHECK(r.ok() && r->typechecks);
  }
}
BENCHMARK(BM_Thm23_Example22)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xtc
