// Experiment F4 — Fig. 4 / Example 12 / Proposition 16: computing the
// copying width C and the deletion path width K. Verifies the paper's
// C = 3, K = 6 for Example 12 and measures the analysis on growing
// transducers (longest path in the cycle-condensed deletion path graph).

#include <benchmark/benchmark.h>

#include "src/base/logging.h"
#include "src/core/paper_examples.h"
#include "src/td/widths.h"

namespace xtc {
namespace {

void BM_Fig4_Example12Analysis(benchmark::State& state) {
  PaperExample ex = MakeExample12();
  for (auto _ : state) {
    WidthAnalysis w = AnalyzeWidths(*ex.transducer);
    XTC_CHECK(w.copying_width == 3);
    XTC_CHECK(w.dpw_bounded && w.deletion_path_width == 6);
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_Fig4_Example12Analysis);

void BM_Fig4_ChainScaling(benchmark::State& state) {
  // A deletion chain of n width-2 states: K = 2^n; Proposition 16 stays
  // polynomial because costs multiply along the condensed DAG.
  const int n = static_cast<int>(state.range(0));
  Alphabet alphabet;
  alphabet.Intern("a");
  Transducer t(&alphabet);
  t.AddState("q0");
  for (int i = 1; i <= n; ++i) t.AddState("d" + std::to_string(i));
  t.AddState("w");
  t.SetInitial(0);
  XTC_CHECK(t.SetRuleFromString("q0", "a", "a(d1)").ok());
  for (int i = 1; i <= n; ++i) {
    std::string next = i == n ? "w" : "d" + std::to_string(i + 1);
    XTC_CHECK(t.SetRuleFromString("d" + std::to_string(i), "a",
                                  next + " " + next)
                  .ok());
  }
  XTC_CHECK(t.SetRuleFromString("w", "a", "a").ok());
  for (auto _ : state) {
    WidthAnalysis w = AnalyzeWidths(t);
    XTC_CHECK(w.dpw_bounded);
    benchmark::DoNotOptimize(w);
  }
  WidthAnalysis w = AnalyzeWidths(t);
  state.counters["K"] = static_cast<double>(w.deletion_path_width);
}
BENCHMARK(BM_Fig4_ChainScaling)->Arg(4)->Arg(16)->Arg(56);

void BM_Fig4_CycleDetection(benchmark::State& state) {
  // n recursively deleting width-one states arranged in a ring (the q7/q8
  // pattern of Fig. 4 scaled up): K stays 1, the SCC condensation does the
  // work.
  const int n = static_cast<int>(state.range(0));
  Alphabet alphabet;
  alphabet.Intern("a");
  Transducer t(&alphabet);
  t.AddState("q0");
  for (int i = 1; i <= n; ++i) t.AddState("r" + std::to_string(i));
  t.SetInitial(0);
  XTC_CHECK(t.SetRuleFromString("q0", "a", "a(r1)").ok());
  for (int i = 1; i <= n; ++i) {
    std::string next = "r" + std::to_string(i % n + 1);
    XTC_CHECK(
        t.SetRuleFromString("r" + std::to_string(i), "a", "a " + next).ok());
  }
  for (auto _ : state) {
    WidthAnalysis w = AnalyzeWidths(t);
    XTC_CHECK(w.dpw_bounded && w.deletion_path_width == 1);
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_Fig4_CycleDetection)->Arg(8)->Arg(64)->Arg(256);

}  // namespace
}  // namespace xtc
