// Experiment F2 — Fig. 2: executing the Example 6 transducer. Throughput of
// the transformation substrate on growing input trees (the translation of
// Fig. 2's tree is checked in tests/transducer_test.cc).

#include <benchmark/benchmark.h>

#include "src/core/paper_examples.h"
#include "src/td/exec.h"

namespace xtc {
namespace {

// A full binary tree of the given depth with alternating a/b labels.
Node* FullTree(int depth, int a, int b, TreeBuilder* builder) {
  if (depth <= 1) return builder->Leaf(a);
  Node* child = FullTree(depth - 1, b, a, builder);
  Node* child2 = FullTree(depth - 1, b, a, builder);
  return builder->Make(a, std::vector<Node*>{child, child2});
}

void BM_Fig2_TransformExample6(benchmark::State& state) {
  PaperExample ex = MakeExample6();
  Arena input_arena;
  TreeBuilder input_builder(&input_arena);
  int a = *ex.alphabet->Find("a");
  int b = *ex.alphabet->Find("b");
  // Root the tree at b so the copying rules (p,b)/(q,b) drive the run.
  Node* input = FullTree(static_cast<int>(state.range(0)), b, a,
                         &input_builder);
  std::size_t out_nodes = 0;
  for (auto _ : state) {
    Arena arena;
    TreeBuilder builder(&arena);
    Node* out = Apply(*ex.transducer, input, &builder);
    out_nodes = NodeCount(out);
    benchmark::DoNotOptimize(out);
  }
  state.counters["in_nodes"] = static_cast<double>(NodeCount(input));
  state.counters["out_nodes"] = static_cast<double>(out_nodes);
}
BENCHMARK(BM_Fig2_TransformExample6)->DenseRange(4, 12, 2);

void BM_Fig2_CopyingBlowup(benchmark::State& state) {
  // The copying rule (q, b) -> c(p q) doubles work down b-spines: output
  // size is exponential in the input depth. Series documents the blow-up.
  PaperExample ex = MakeExample6();
  Arena input_arena;
  TreeBuilder input_builder(&input_arena);
  int b = *ex.alphabet->Find("b");
  Node* spine = input_builder.Leaf(b);
  for (int i = 1; i < state.range(0); ++i) {
    spine = input_builder.Make(b, std::vector<Node*>{spine});
  }
  std::size_t out_nodes = 0;
  for (auto _ : state) {
    Arena arena;
    TreeBuilder builder(&arena);
    Node* out = Apply(*ex.transducer, spine, &builder);
    out_nodes = NodeCount(out);
    benchmark::DoNotOptimize(out);
  }
  state.counters["out_nodes"] = static_cast<double>(out_nodes);
}
BENCHMARK(BM_Fig2_CopyingBlowup)->DenseRange(2, 16, 2);

}  // namespace
}  // namespace xtc
