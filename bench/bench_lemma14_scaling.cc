// Experiment E1 — Lemma 14's bound O((|din| · |T|^{CK} · |dout|^{CK})^α):
// polynomial in the schema/transducer sizes for fixed C·K, exponential in
// M = C·K. Ablation A2 pairs the lazy engine with the explicit automaton
// construction (reporting the constructed |B|).

#include <benchmark/benchmark.h>

#include "src/base/logging.h"
#include "src/core/explicit_nta.h"
#include "src/core/trac.h"
#include "src/nta/analysis.h"
#include "src/workload/families.h"

namespace xtc {
namespace {

// Sweep |din| at fixed C = K = 1.
void BM_Lemma14_SchemaSize(benchmark::State& state) {
  PaperExample ex = FilterFamily(static_cast<int>(state.range(0)));
  TypecheckOptions opts;
  opts.want_counterexample = false;
  for (auto _ : state) {
    StatusOr<TypecheckResult> r =
        TypecheckTrac(*ex.transducer, *ex.din, *ex.dout, opts);
    XTC_CHECK(r.ok() && r->typechecks);
  }
  state.counters["|din|"] = static_cast<double>(ex.din->Size());
}
BENCHMARK(BM_Lemma14_SchemaSize)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

// Sweep the copying width C at K = 1: the exponent at work.
void BM_Lemma14_CopyingWidth(benchmark::State& state) {
  PaperExample ex = WidthFamily(static_cast<int>(state.range(0)), 0);
  TypecheckOptions opts;
  opts.want_counterexample = false;
  std::uint64_t configs = 0;
  for (auto _ : state) {
    StatusOr<TypecheckResult> r =
        TypecheckTrac(*ex.transducer, *ex.din, *ex.dout, opts);
    XTC_CHECK(r.ok() && r->typechecks);
    configs = r->stats.configs;
  }
  state.counters["configs"] = static_cast<double>(configs);
}
BENCHMARK(BM_Lemma14_CopyingWidth)->DenseRange(1, 6, 1);

// Sweep the deletion chain depth j (K = 2^j) at C = 2.
void BM_Lemma14_DeletionWidth(benchmark::State& state) {
  PaperExample ex = WidthFamily(2, static_cast<int>(state.range(0)));
  TypecheckOptions opts;
  opts.want_counterexample = false;
  std::uint64_t configs = 0;
  for (auto _ : state) {
    StatusOr<TypecheckResult> r =
        TypecheckTrac(*ex.transducer, *ex.din, *ex.dout, opts);
    XTC_CHECK(r.ok() && r->typechecks);
    configs = r->stats.configs;
  }
  state.counters["K"] = static_cast<double>(uint64_t{1} << state.range(0));
  state.counters["configs"] = static_cast<double>(configs);
}
BENCHMARK(BM_Lemma14_DeletionWidth)->DenseRange(0, 4, 1);

// Ablation A2: the explicit Lemma 14 automaton B vs the lazy engine, with
// the constructed automaton size reported.
void BM_Lemma14_ExplicitConstruction(benchmark::State& state) {
  PaperExample ex = FilterFamily(static_cast<int>(state.range(0)));
  std::uint64_t nta_size = 0;
  for (auto _ : state) {
    StatusOr<Nta> b =
        BuildCounterexampleNta(*ex.transducer, *ex.din, *ex.dout, 2000000);
    XTC_CHECK_MSG(b.ok(), b.status().ToString().c_str());
    XTC_CHECK(IsEmptyLanguage(*b));
    nta_size = b->Size();
    benchmark::DoNotOptimize(b);
  }
  state.counters["|B|"] = static_cast<double>(nta_size);
}
BENCHMARK(BM_Lemma14_ExplicitConstruction)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace xtc
