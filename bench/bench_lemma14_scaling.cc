// Experiment E1 — Lemma 14's bound O((|din| · |T|^{CK} · |dout|^{CK})^α):
// polynomial in the schema/transducer sizes for fixed C·K, exponential in
// M = C·K. Ablation A2 pairs the lazy engine with the explicit automaton
// construction (reporting the constructed |B|).

#include <benchmark/benchmark.h>

#include "src/base/logging.h"
#include "src/core/explicit_nta.h"
#include "src/core/trac.h"
#include "src/nta/analysis.h"
#include "src/nta/lazy.h"
#include "src/workload/families.h"

namespace xtc {
namespace {

// Sweep |din| at fixed C = K = 1.
void BM_Lemma14_SchemaSize(benchmark::State& state) {
  PaperExample ex = FilterFamily(static_cast<int>(state.range(0)));
  TypecheckOptions opts;
  opts.want_counterexample = false;
  for (auto _ : state) {
    StatusOr<TypecheckResult> r =
        TypecheckTrac(*ex.transducer, *ex.din, *ex.dout, opts);
    XTC_CHECK(r.ok() && r->typechecks);
  }
  state.counters["|din|"] = static_cast<double>(ex.din->Size());
}
BENCHMARK(BM_Lemma14_SchemaSize)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

// Sweep the copying width C at K = 1: the exponent at work.
void BM_Lemma14_CopyingWidth(benchmark::State& state) {
  PaperExample ex = WidthFamily(static_cast<int>(state.range(0)), 0);
  TypecheckOptions opts;
  opts.want_counterexample = false;
  std::uint64_t configs = 0;
  for (auto _ : state) {
    StatusOr<TypecheckResult> r =
        TypecheckTrac(*ex.transducer, *ex.din, *ex.dout, opts);
    XTC_CHECK(r.ok() && r->typechecks);
    configs = r->stats.configs;
  }
  state.counters["configs"] = static_cast<double>(configs);
}
BENCHMARK(BM_Lemma14_CopyingWidth)->DenseRange(1, 6, 1);

// Sweep the deletion chain depth j (K = 2^j) at C = 2.
void BM_Lemma14_DeletionWidth(benchmark::State& state) {
  PaperExample ex = WidthFamily(2, static_cast<int>(state.range(0)));
  TypecheckOptions opts;
  opts.want_counterexample = false;
  std::uint64_t configs = 0;
  for (auto _ : state) {
    StatusOr<TypecheckResult> r =
        TypecheckTrac(*ex.transducer, *ex.din, *ex.dout, opts);
    XTC_CHECK(r.ok() && r->typechecks);
    configs = r->stats.configs;
  }
  state.counters["K"] = static_cast<double>(uint64_t{1} << state.range(0));
  state.counters["configs"] = static_cast<double>(configs);
}
BENCHMARK(BM_Lemma14_DeletionWidth)->DenseRange(0, 4, 1);

// Ablation A2: the explicit Lemma 14 automaton B vs the lazy engine, with
// the constructed automaton size reported.
void BM_Lemma14_ExplicitConstruction(benchmark::State& state) {
  PaperExample ex = FilterFamily(static_cast<int>(state.range(0)));
  std::uint64_t nta_size = 0;
  for (auto _ : state) {
    StatusOr<Nta> b =
        BuildCounterexampleNta(*ex.transducer, *ex.din, *ex.dout, 2000000);
    XTC_CHECK_MSG(b.ok(), b.status().ToString().c_str());
    XTC_CHECK(IsEmptyLanguage(*b));
    nta_size = b->Size();
    benchmark::DoNotOptimize(b);
  }
  state.counters["|B|"] = static_cast<double>(nta_size);
}
BENCHMARK(BM_Lemma14_ExplicitConstruction)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// Paired lazy/eager product-emptiness rows on the filter-family schemas,
// shared timing loop, engine chosen by the caller. Verdict agreement is
// asserted once outside the loop; ci/lazy_gate.py enforces the speedup on
// the Inclusion pair's largest parameter.
void RunLemma14Pair(benchmark::State& state, EmptinessEngine engine,
                    const Nta& a, const Nta& b, bool expect_empty) {
  LazyProductSpec spec;
  spec.AddNta(&a);
  spec.AddDeterminized(&b, /*complement=*/true);
  StatusOr<EmptinessOutcome> lazy = LazyEmptiness(spec, nullptr);
  StatusOr<EmptinessOutcome> eager = EagerEmptiness(spec, nullptr);
  XTC_CHECK_MSG(lazy.ok(), lazy.status().ToString().c_str());
  XTC_CHECK_MSG(eager.ok(), eager.status().ToString().c_str());
  XTC_CHECK(lazy->empty == expect_empty && eager->empty == expect_empty);
  for (auto _ : state) {
    StatusOr<EmptinessOutcome> out = engine == EmptinessEngine::kLazy
                                         ? LazyEmptiness(spec, nullptr)
                                         : EagerEmptiness(spec, nullptr);
    XTC_CHECK_MSG(out.ok(), out.status().ToString().c_str());
    benchmark::DoNotOptimize(out->empty);
  }
  state.counters["configs"] = static_cast<double>(lazy->stats.configs);
}

// Gated pair: is L(d_out) ⊆ L(d_in)? It is not (non-empty product) — the
// lazy engine discovers only reachable configurations and exits at the
// first counterexample, while the eager reference determinizes d_in's NTA,
// complements, materializes the product, and decides emptiness afterwards.
void RunLemma14Inclusion(benchmark::State& state, EmptinessEngine engine) {
  PaperExample ex = FilterFamily(static_cast<int>(state.range(0)));
  Nta a = Nta::FromDtd(*ex.dout);
  Nta b = Nta::FromDtd(*ex.din);
  RunLemma14Pair(state, engine, a, b, /*expect_empty=*/false);
}
void BM_Lemma14_InclusionLazy(benchmark::State& state) {
  RunLemma14Inclusion(state, EmptinessEngine::kLazy);
}
void BM_Lemma14_InclusionEager(benchmark::State& state) {
  RunLemma14Inclusion(state, EmptinessEngine::kEager);
}
// MinTime: the small rows run tens of µs/op and feed both the perf-smoke
// compare and ci/lazy_gate.py — a longer window than the suite default
// averages out single-vCPU scheduler noise.
BENCHMARK(BM_Lemma14_InclusionLazy)->Arg(8)->Arg(16)->Arg(32)->MinTime(0.25);
BENCHMARK(BM_Lemma14_InclusionEager)->Arg(8)->Arg(16)->Arg(32)->MinTime(0.25);

// Ungated pair: self-inclusion L(d_in) ⊆ L(d_in) — an "empty" verdict, so
// the lazy engine has no early exit and must saturate; its remaining edge
// (reachable-only discovery, no materialized complement or product) is the
// worst-case floor of the optimization.
void RunLemma14SelfInclusion(benchmark::State& state, EmptinessEngine engine) {
  PaperExample ex = FilterFamily(static_cast<int>(state.range(0)));
  Nta a = Nta::FromDtd(*ex.din);
  RunLemma14Pair(state, engine, a, a, /*expect_empty=*/true);
}
void BM_Lemma14_SelfInclusionLazy(benchmark::State& state) {
  RunLemma14SelfInclusion(state, EmptinessEngine::kLazy);
}
void BM_Lemma14_SelfInclusionEager(benchmark::State& state) {
  RunLemma14SelfInclusion(state, EmptinessEngine::kEager);
}
BENCHMARK(BM_Lemma14_SelfInclusionLazy)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_Lemma14_SelfInclusionEager)->Arg(8)->Arg(16)->Arg(32);

// Scaling rows for ci/parallel_gate.py: params are [n, threads], and the
// threads=1 row runs the sequential engine, so within-bench ratios measure
// the worker pool directly. Two shapes: the early-exit inclusion query
// (latency to the first counterexample) and the saturating self-inclusion
// query (full fixpoint — the shape with real parallel work). The gate only
// enforces ratios when the recorded hardware_concurrency allows them.
void RunLemma14Parallel(benchmark::State& state, bool self) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  PaperExample ex = FilterFamily(n);
  Nta a = Nta::FromDtd(self ? *ex.din : *ex.dout);
  Nta b = Nta::FromDtd(*ex.din);
  LazyProductSpec spec;
  spec.AddNta(&a);
  spec.AddDeterminized(&b, /*complement=*/true);
  LazyOptions options;
  options.threads = threads;
  StatusOr<EmptinessOutcome> reference = LazyEmptiness(spec, nullptr);
  StatusOr<EmptinessOutcome> parallel = LazyEmptiness(spec, nullptr, options);
  XTC_CHECK_MSG(reference.ok(), reference.status().ToString().c_str());
  XTC_CHECK_MSG(parallel.ok(), parallel.status().ToString().c_str());
  XTC_CHECK(reference->empty == parallel->empty &&
            parallel->empty == self);
  for (auto _ : state) {
    StatusOr<EmptinessOutcome> out = LazyEmptiness(spec, nullptr, options);
    XTC_CHECK_MSG(out.ok(), out.status().ToString().c_str());
    benchmark::DoNotOptimize(out->empty);
  }
  state.counters["threads"] = threads;
  state.counters["configs"] = static_cast<double>(parallel->stats.configs);
}
void BM_Lemma14_InclusionParallel(benchmark::State& state) {
  RunLemma14Parallel(state, /*self=*/false);
}
void BM_Lemma14_SelfInclusionParallel(benchmark::State& state) {
  RunLemma14Parallel(state, /*self=*/true);
}
BENCHMARK(BM_Lemma14_InclusionParallel)
    ->Args({32, 1})->Args({32, 2})->Args({32, 4})->Args({32, 8})
    ->MinTime(0.25)->UseRealTime();
BENCHMARK(BM_Lemma14_SelfInclusionParallel)
    ->Args({32, 1})->Args({32, 2})->Args({32, 4})->Args({32, 8})
    ->MinTime(0.25)->UseRealTime();

}  // namespace
}  // namespace xtc
