// Experiment F3 — Fig. 3 / Examples 10-11: the book-filtering scenario.
// Typechecking time for the ToC and ToC+summary transducers against the
// book DTD, plus transformation throughput on grown Fig. 3-style documents.

#include <benchmark/benchmark.h>

#include "src/base/logging.h"
#include "src/core/trac.h"
#include "src/core/paper_examples.h"
#include "src/td/exec.h"
#include "src/workload/families.h"

namespace xtc {
namespace {

void BM_Fig3_TypecheckToc(benchmark::State& state) {
  PaperExample ex = MakeBookExample(/*with_summary=*/false);
  TypecheckOptions opts;
  opts.want_counterexample = false;
  for (auto _ : state) {
    StatusOr<TypecheckResult> r =
        TypecheckTrac(*ex.transducer, *ex.din, *ex.dout, opts);
    XTC_CHECK(r.ok() && r->typechecks);
  }
}
BENCHMARK(BM_Fig3_TypecheckToc);

void BM_Fig3_TypecheckTocWithSummary(benchmark::State& state) {
  PaperExample ex = MakeBookExample(/*with_summary=*/true);
  TypecheckOptions opts;
  opts.want_counterexample = false;
  std::uint64_t configs = 0;
  for (auto _ : state) {
    StatusOr<TypecheckResult> r =
        TypecheckTrac(*ex.transducer, *ex.din, *ex.dout, opts);
    XTC_CHECK(r.ok() && r->typechecks);
    configs = r->stats.configs;
  }
  state.counters["configs"] = static_cast<double>(configs);
}
BENCHMARK(BM_Fig3_TypecheckTocWithSummary);

void BM_Fig3_FilterDepthScaling(benchmark::State& state) {
  // Recursive deletion through n section levels (Example 10's point:
  // unbounded deletion without copying stays PTIME).
  PaperExample ex = FilterFamily(static_cast<int>(state.range(0)));
  TypecheckOptions opts;
  opts.want_counterexample = false;
  for (auto _ : state) {
    StatusOr<TypecheckResult> r =
        TypecheckTrac(*ex.transducer, *ex.din, *ex.dout, opts);
    XTC_CHECK(r.ok() && r->typechecks);
  }
  state.counters["|din|"] = static_cast<double>(ex.din->Size());
}
BENCHMARK(BM_Fig3_FilterDepthScaling)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_Fig3_TransformThroughput(benchmark::State& state) {
  // Fig. 3's document replicated to `n` chapters.
  PaperExample ex = MakeBookExample(true);
  Arena arena;
  TreeBuilder builder(&arena);
  int book = *ex.alphabet->Find("book");
  int title = *ex.alphabet->Find("title");
  int author = *ex.alphabet->Find("author");
  int chapter = *ex.alphabet->Find("chapter");
  int intro = *ex.alphabet->Find("intro");
  int section = *ex.alphabet->Find("section");
  int paragraph = *ex.alphabet->Find("paragraph");
  std::vector<Node*> kids{builder.Leaf(title), builder.Leaf(author)};
  for (int i = 0; i < state.range(0); ++i) {
    Node* sec = builder.Make(
        section, std::vector<Node*>{builder.Leaf(title),
                                    builder.Leaf(paragraph)});
    kids.push_back(builder.Make(
        chapter,
        std::vector<Node*>{builder.Leaf(title), builder.Leaf(intro), sec}));
  }
  Node* doc = builder.Make(book, kids);
  XTC_CHECK(ex.din->Valid(doc));
  for (auto _ : state) {
    Arena out_arena;
    TreeBuilder out_builder(&out_arena);
    Node* out = Apply(*ex.transducer, doc, &out_builder);
    benchmark::DoNotOptimize(out);
  }
  state.counters["chapters"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Fig3_TransformThroughput)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace xtc
