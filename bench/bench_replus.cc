// Experiment E6 / Ablation A1 — Theorem 37: DTD(RE+) schemas admit PTIME
// typechecking for ARBITRARY transducers. The copying width sweep shows the
// crossover the paper predicts: the Lemma 14 engine is exponential in the
// copying width while the Section 5 grammar engine and the Section 6
// t_min/t_vast engine stay polynomial.

#include <benchmark/benchmark.h>

#include "src/base/logging.h"
#include "src/core/minvast.h"
#include "src/core/replus.h"
#include "src/core/trac.h"
#include "src/workload/families.h"

namespace xtc {
namespace {

void BM_RePlus_GrammarEngine(benchmark::State& state) {
  PaperExample ex = RePlusCopyFamily(static_cast<int>(state.range(0)));
  TypecheckOptions opts;
  opts.want_counterexample = false;
  for (auto _ : state) {
    StatusOr<TypecheckResult> r =
        TypecheckRePlus(*ex.transducer, *ex.din, *ex.dout, opts);
    XTC_CHECK(r.ok() && r->typechecks);
  }
  state.counters["copy_width"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RePlus_GrammarEngine)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Arg(32);

void BM_RePlus_MinVastEngine(benchmark::State& state) {
  PaperExample ex = RePlusCopyFamily(static_cast<int>(state.range(0)));
  TypecheckOptions opts;
  opts.want_counterexample = false;
  for (auto _ : state) {
    StatusOr<TypecheckResult> r =
        TypecheckMinVast(*ex.transducer, *ex.din, *ex.dout, opts);
    XTC_CHECK(r.ok() && r->typechecks);
  }
}
BENCHMARK(BM_RePlus_MinVastEngine)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Arg(32);

// Ablation: the same instances through the Lemma 14 engine, which pays
// |dout|^{C·K}. The sweep stops early — that is the point.
void BM_RePlus_Lemma14Comparison(benchmark::State& state) {
  PaperExample ex = RePlusCopyFamily(static_cast<int>(state.range(0)));
  TypecheckOptions opts;
  opts.want_counterexample = false;
  opts.max_configs = 1u << 24;
  for (auto _ : state) {
    StatusOr<TypecheckResult> r =
        TypecheckTrac(*ex.transducer, *ex.din, *ex.dout, opts);
    XTC_CHECK_MSG(r.ok(), r.status().ToString().c_str());
    XTC_CHECK(r->typechecks);
  }
}
BENCHMARK(BM_RePlus_Lemma14Comparison)->Arg(1)->Arg(2)->Arg(4)->Arg(6)
    ->Unit(benchmark::kMillisecond);

// Schema-size scaling at fixed copying width.
void BM_RePlus_SchemaDepth(benchmark::State& state) {
  // A chain DTD(RE+) of depth n with a 3-copying transducer.
  const int n = static_cast<int>(state.range(0));
  PaperExample ex;
  ex.alphabet = std::make_shared<Alphabet>();
  for (int i = 0; i <= n; ++i) ex.alphabet->Intern("s" + std::to_string(i));
  ex.din = std::make_shared<Dtd>(ex.alphabet.get(), 0);
  for (int i = 0; i < n; ++i) {
    XTC_CHECK(ex.din
                  ->SetRule("s" + std::to_string(i),
                            "s" + std::to_string(i + 1) + "+")
                  .ok());
  }
  ex.transducer = std::make_shared<Transducer>(ex.alphabet.get());
  ex.transducer->AddState("q0");
  ex.transducer->AddState("q");
  ex.transducer->SetInitial(0);
  XTC_CHECK(
      ex.transducer->SetRuleFromString("q0", "s0", "s0(q q q)").ok());
  for (int i = 1; i <= n; ++i) {
    XTC_CHECK(ex.transducer
                  ->SetRuleFromString("q", "s" + std::to_string(i),
                                      "s" + std::to_string(i) + "(q q q)")
                  .ok());
  }
  ex.dout = std::make_shared<Dtd>(ex.alphabet.get(), 0);
  for (int i = 0; i < n; ++i) {
    XTC_CHECK(ex.dout
                  ->SetRule("s" + std::to_string(i),
                            "s" + std::to_string(i + 1) + "+")
                  .ok());
  }
  TypecheckOptions opts;
  opts.want_counterexample = false;
  for (auto _ : state) {
    StatusOr<TypecheckResult> r =
        TypecheckRePlus(*ex.transducer, *ex.din, *ex.dout, opts);
    XTC_CHECK_MSG(r.ok(), r.status().ToString().c_str());
    XTC_CHECK(r->typechecks);
  }
}
BENCHMARK(BM_RePlus_SchemaDepth)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace xtc
