// Experiment E2 — Theorem 18: typechecking is PSPACE-hard once a slight
// relaxation of the deletion-path-width bound meets copying width two. The
// reduction from DFA intersection emptiness is run end-to-end: instance
// generation plus complete typechecking. Runtime grows steeply with the
// number of automata (the counterexample hides at depth ~log n with 2^m
// copies) — that steepness IS the reproduced result.

#include <benchmark/benchmark.h>

#include <chrono>

#include "src/base/budget.h"
#include "src/base/logging.h"
#include "src/core/explicit_nta.h"
#include "src/core/hardness.h"
#include "src/core/trac.h"
#include "src/nta/lazy.h"
#include "src/nta/nta.h"
#include "src/workload/families.h"

namespace xtc {
namespace {

Dfa LengthModDfa(int num_symbols, int modulus, int residue) {
  Dfa d(num_symbols);
  for (int i = 0; i < modulus; ++i) d.AddState(i == residue);
  d.SetInitial(0);
  for (int i = 0; i < modulus; ++i) {
    for (int s = 0; s < num_symbols; ++s) {
      d.SetTransition(i, s, (i + 1) % modulus);
    }
  }
  return d;
}

// Pairwise-coprime moduli with residue 1 each: intersection empty iff one
// pair conflicts. We use all-residue-0 (nonempty: the lcm) vs a conflict.
void BM_Thm18_EmptyIntersection(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<Dfa> dfas;
  dfas.push_back(LengthModDfa(1, 2, 0));
  dfas.push_back(LengthModDfa(1, 2, 1));  // conflicts with the first
  for (int i = 2; i < n; ++i) dfas.push_back(LengthModDfa(1, 2, i % 2));
  XTC_CHECK(DfaIntersectionEmpty(dfas));
  PaperExample ex = MakeTheorem18Instance(dfas, {"x"});
  TypecheckOptions opts;
  opts.want_counterexample = false;
  opts.max_configs = 1u << 24;
  for (auto _ : state) {
    StatusOr<TypecheckResult> r =
        TypecheckTrac(*ex.transducer, *ex.din, *ex.dout, opts);
    XTC_CHECK_MSG(r.ok(), r.status().ToString().c_str());
    XTC_CHECK(r->typechecks);
  }
  state.counters["n_dfas"] = n;
}
BENCHMARK(BM_Thm18_EmptyIntersection)->DenseRange(2, 4, 1)
    ->Unit(benchmark::kMillisecond);

void BM_Thm18_NonEmptyIntersection(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<Dfa> dfas;
  // Moduli 2, 3, 3, ... keep the joint witness (the lcm) small; the cost
  // growth comes from the reduction's doubling chain, not the witness.
  dfas.push_back(LengthModDfa(1, 2, 0));
  for (int i = 1; i < n; ++i) dfas.push_back(LengthModDfa(1, 3, 0));
  XTC_CHECK(!DfaIntersectionEmpty(dfas));
  PaperExample ex = MakeTheorem18Instance(dfas, {"x"});
  TypecheckOptions opts;
  opts.want_counterexample = false;
  opts.max_configs = 1u << 24;
  for (auto _ : state) {
    StatusOr<TypecheckResult> r =
        TypecheckTrac(*ex.transducer, *ex.din, *ex.dout, opts);
    XTC_CHECK_MSG(r.ok(), r.status().ToString().c_str());
    XTC_CHECK(!r->typechecks);
  }
  state.counters["n_dfas"] = n;
}
BENCHMARK(BM_Thm18_NonEmptyIntersection)->DenseRange(2, 3, 1)
    ->Unit(benchmark::kMillisecond);

// Paired lazy/eager product-emptiness rows (gated by ci/lazy_gate.py): the
// schema-inclusion query L(d_in) ⊆ L(d_out) posed at the NTA level on the
// Theorem 18 instances. The lazy engine explores reachable configurations
// only and exits at the first counterexample; the eager reference
// determinizes d_out's NTA, complements, materializes the product, and
// decides emptiness afterwards. Verdict agreement between the engines is
// asserted outside the timing loop.
void RunThm18Inclusion(benchmark::State& state, EmptinessEngine engine) {
  const int n = static_cast<int>(state.range(0));
  std::vector<Dfa> dfas;
  dfas.push_back(LengthModDfa(1, 2, 0));
  for (int i = 1; i < n; ++i) dfas.push_back(LengthModDfa(1, 3, 0));
  PaperExample ex = MakeTheorem18Instance(dfas, {"x"});
  Nta a = Nta::FromDtd(*ex.din);
  Nta b = Nta::FromDtd(*ex.dout);
  LazyProductSpec spec;
  spec.AddNta(&a);
  spec.AddDeterminized(&b, /*complement=*/true);
  StatusOr<EmptinessOutcome> lazy = LazyEmptiness(spec, nullptr);
  StatusOr<EmptinessOutcome> eager = EagerEmptiness(spec, nullptr);
  XTC_CHECK_MSG(lazy.ok(), lazy.status().ToString().c_str());
  XTC_CHECK_MSG(eager.ok(), eager.status().ToString().c_str());
  XTC_CHECK(lazy->empty == eager->empty);
  for (auto _ : state) {
    StatusOr<EmptinessOutcome> out = engine == EmptinessEngine::kLazy
                                         ? LazyEmptiness(spec, nullptr)
                                         : EagerEmptiness(spec, nullptr);
    XTC_CHECK_MSG(out.ok(), out.status().ToString().c_str());
    benchmark::DoNotOptimize(out->empty);
  }
  state.counters["empty"] = lazy->empty ? 1 : 0;
  state.counters["configs"] = static_cast<double>(lazy->stats.configs);
}

void BM_Thm18_InclusionLazy(benchmark::State& state) {
  RunThm18Inclusion(state, EmptinessEngine::kLazy);
}
void BM_Thm18_InclusionEager(benchmark::State& state) {
  RunThm18Inclusion(state, EmptinessEngine::kEager);
}
// MinTime: these rows run ~10 µs/op and feed both the perf-smoke compare
// and ci/lazy_gate.py, so they get a longer window than the suite default
// to average out single-vCPU scheduler noise.
BENCHMARK(BM_Thm18_InclusionLazy)->DenseRange(2, 4, 1)
    ->Unit(benchmark::kMillisecond)->MinTime(0.25);
BENCHMARK(BM_Thm18_InclusionEager)->DenseRange(2, 4, 1)
    ->Unit(benchmark::kMillisecond)->MinTime(0.25);

// Scaling rows for ci/parallel_gate.py: the same inclusion query at a
// fixed instance size across worker counts; params are [n_dfas, threads],
// and the threads=1 row is the sequential engine itself, so speedup ratios
// are computed within one bench name. On a single-vCPU host these rows
// measure oversubscription, not scaling — the gate reads the recorded
// hardware_concurrency from BENCH metadata and only enforces ratios when
// the host can physically exhibit them.
void BM_Thm18_InclusionParallel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  std::vector<Dfa> dfas;
  dfas.push_back(LengthModDfa(1, 2, 0));
  for (int i = 1; i < n; ++i) dfas.push_back(LengthModDfa(1, 3, 0));
  PaperExample ex = MakeTheorem18Instance(dfas, {"x"});
  Nta a = Nta::FromDtd(*ex.din);
  Nta b = Nta::FromDtd(*ex.dout);
  LazyProductSpec spec;
  spec.AddNta(&a);
  spec.AddDeterminized(&b, /*complement=*/true);
  LazyOptions options;
  options.threads = threads;
  StatusOr<EmptinessOutcome> reference = LazyEmptiness(spec, nullptr);
  StatusOr<EmptinessOutcome> parallel = LazyEmptiness(spec, nullptr, options);
  XTC_CHECK_MSG(reference.ok(), reference.status().ToString().c_str());
  XTC_CHECK_MSG(parallel.ok(), parallel.status().ToString().c_str());
  XTC_CHECK(reference->empty == parallel->empty);
  for (auto _ : state) {
    StatusOr<EmptinessOutcome> out = LazyEmptiness(spec, nullptr, options);
    XTC_CHECK_MSG(out.ok(), out.status().ToString().c_str());
    benchmark::DoNotOptimize(out->empty);
  }
  state.counters["threads"] = threads;
  state.counters["configs"] = static_cast<double>(parallel->stats.configs);
}
BENCHMARK(BM_Thm18_InclusionParallel)
    ->Args({4, 1})->Args({4, 2})->Args({4, 4})->Args({4, 8})
    ->Unit(benchmark::kMillisecond)->MinTime(0.25)->UseRealTime();

// Governor overhead: the same easy instance with and without a (generous)
// Budget attached. The delta is the cost of the checkpoints plus arena
// byte accounting; the acceptance bar for the governance layer is <= 5%.
PaperExample OverheadInstance(int n) {
  std::vector<Dfa> dfas;
  dfas.push_back(LengthModDfa(1, 2, 0));
  dfas.push_back(LengthModDfa(1, 2, 1));
  for (int i = 2; i < n; ++i) dfas.push_back(LengthModDfa(1, 2, i % 2));
  return MakeTheorem18Instance(dfas, {"x"});
}

void BM_Thm18_Ungoverned(benchmark::State& state) {
  PaperExample ex = OverheadInstance(static_cast<int>(state.range(0)));
  TypecheckOptions opts;
  opts.want_counterexample = false;
  opts.max_configs = 1u << 24;
  for (auto _ : state) {
    StatusOr<TypecheckResult> r =
        TypecheckTrac(*ex.transducer, *ex.din, *ex.dout, opts);
    XTC_CHECK_MSG(r.ok(), r.status().ToString().c_str());
    XTC_CHECK(r->typechecks);
  }
}
BENCHMARK(BM_Thm18_Ungoverned)->DenseRange(2, 4, 1)
    ->Unit(benchmark::kMillisecond);

void BM_Thm18_Governed(benchmark::State& state) {
  PaperExample ex = OverheadInstance(static_cast<int>(state.range(0)));
  std::uint64_t checkpoints = 0;
  for (auto _ : state) {
    // Generous limits: nothing trips, so the loop measures pure checkpoint
    // and byte-accounting cost.
    Budget budget;
    budget.set_deadline(std::chrono::minutes(10));
    budget.set_max_steps(std::uint64_t{1} << 40);
    budget.set_max_bytes(std::uint64_t{1} << 40);
    TypecheckOptions opts;
    opts.want_counterexample = false;
    opts.max_configs = 1u << 24;
    opts.budget = &budget;
    StatusOr<TypecheckResult> r =
        TypecheckTrac(*ex.transducer, *ex.din, *ex.dout, opts);
    XTC_CHECK_MSG(r.ok(), r.status().ToString().c_str());
    XTC_CHECK(r->typechecks);
    checkpoints = budget.checkpoints();
  }
  state.counters["checkpoints"] =
      static_cast<double>(checkpoints);
}
BENCHMARK(BM_Thm18_Governed)->DenseRange(2, 4, 1)
    ->Unit(benchmark::kMillisecond);

// The same overhead question for the explicit Lemma 14 construction, whose
// inner odometer polls the budget through the amortized BudgetGate (one
// checkpoint per 1024 ticks) rather than per tick. The Theorem 18 instances
// are intractable for the explicit construction even at n = 2 (the doubling
// chain is exactly what it cannot compress), so the overhead is measured on
// the filter family, where the construction completes in milliseconds.
void BM_Thm18_UngovernedExplicit(benchmark::State& state) {
  PaperExample ex = FilterFamily(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    StatusOr<Nta> b = BuildCounterexampleNta(*ex.transducer, *ex.din,
                                             *ex.dout, 1 << 21);
    XTC_CHECK_MSG(b.ok(), b.status().ToString().c_str());
    benchmark::DoNotOptimize(b->num_states());
  }
}
BENCHMARK(BM_Thm18_UngovernedExplicit)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_Thm18_GovernedExplicit(benchmark::State& state) {
  PaperExample ex = FilterFamily(static_cast<int>(state.range(0)));
  std::uint64_t checkpoints = 0;
  for (auto _ : state) {
    Budget budget;
    budget.set_deadline(std::chrono::minutes(10));
    budget.set_max_steps(std::uint64_t{1} << 40);
    budget.set_max_bytes(std::uint64_t{1} << 40);
    StatusOr<Nta> b = BuildCounterexampleNta(*ex.transducer, *ex.din,
                                             *ex.dout, 1 << 21, &budget);
    XTC_CHECK_MSG(b.ok(), b.status().ToString().c_str());
    benchmark::DoNotOptimize(b->num_states());
    checkpoints = budget.checkpoints();
  }
  state.counters["checkpoints"] =
      static_cast<double>(checkpoints);
}
BENCHMARK(BM_Thm18_GovernedExplicit)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xtc
