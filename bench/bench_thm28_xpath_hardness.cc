// Experiment E5 — Theorem 28 / Lemma 27: XPath descendant axes make
// typechecking coNP-hard. The Lemma 27 unary-DFA instances (3-CNF via the
// first primes) grow polynomially as automata but their intersection needs
// lcm-sized witnesses; the Theorem 28(2) reduction turns them into
// typechecking instances whose compiled transducers fall outside T_trac.
// The bench measures (a) instance generation, (b) the n-way product oracle
// blow-up, and (c) bounded complete checking on the reduced instances.

#include <benchmark/benchmark.h>

#include "src/base/logging.h"
#include "src/core/brute_force.h"
#include "src/core/hardness.h"
#include "src/td/compile_selectors.h"
#include "src/td/widths.h"

namespace xtc {
namespace {

std::vector<CnfClause> RingFormula(int num_vars) {
  // (x_i ∨ ¬x_{i+1} ∨ x_{i+2}) for all i: satisfiable (all true).
  std::vector<CnfClause> clauses;
  for (int i = 0; i < num_vars; ++i) {
    clauses.push_back(CnfClause{CnfLiteral{i, true},
                                CnfLiteral{(i + 1) % num_vars, false},
                                CnfLiteral{(i + 2) % num_vars, true}});
  }
  return clauses;
}

void BM_Thm28_Lemma27Encoding(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<CnfClause> clauses = RingFormula(n);
  std::size_t total_states = 0;
  for (auto _ : state) {
    std::vector<Dfa> dfas = Make3CnfUnaryDfas(clauses, n);
    total_states = 0;
    for (const Dfa& d : dfas) total_states += d.num_states();
    benchmark::DoNotOptimize(dfas);
  }
  state.counters["dfa_states"] = static_cast<double>(total_states);
}
BENCHMARK(BM_Thm28_Lemma27Encoding)->DenseRange(3, 7, 1);

void BM_Thm28_IntersectionOracle(benchmark::State& state) {
  // The exponential n-way product on the encoded formulas.
  const int n = static_cast<int>(state.range(0));
  std::vector<Dfa> dfas = Make3CnfUnaryDfas(RingFormula(n), n);
  bool empty = true;
  for (auto _ : state) {
    empty = DfaIntersectionEmpty(dfas);
    benchmark::DoNotOptimize(empty);
  }
  XTC_CHECK(!empty);  // the ring formula is satisfiable
}
BENCHMARK(BM_Thm28_IntersectionOracle)->DenseRange(3, 6, 1)
    ->Unit(benchmark::kMillisecond);

void BM_Thm28_ReducedInstanceBoundedCheck(benchmark::State& state) {
  // Complete bounded checking of the Theorem 28(2) instance; the compiled
  // transducer has unbounded deletion path width, so only the brute-force
  // baseline applies — and its cost explodes with the witness size.
  const int n = static_cast<int>(state.range(0));
  std::vector<Dfa> dfas;
  for (int i = 0; i < n; ++i) {
    Dfa d(1);
    int modulus = 2 + i;
    for (int s = 0; s < modulus; ++s) d.AddState(s == 0);
    d.SetInitial(0);
    for (int s = 0; s < modulus; ++s) {
      d.SetTransition(s, 0, (s + 1) % modulus);
    }
    dfas.push_back(std::move(d));
  }
  PaperExample ex = MakeTheorem28Instance(dfas);
  StatusOr<Transducer> compiled = CompileSelectors(*ex.transducer);
  XTC_CHECK(compiled.ok());
  XTC_CHECK(!AnalyzeWidths(*compiled).dpw_bounded);
  BruteForceOptions bf;
  bf.max_depth = 4 + n;
  bf.max_width = 7;
  bf.max_trees = 30000;
  bool found = false;
  for (auto _ : state) {
    StatusOr<TypecheckResult> r =
        TypecheckBruteForce(*compiled, *ex.din, *ex.dout, bf);
    XTC_CHECK(r.ok());
    found = !r->typechecks;
    benchmark::DoNotOptimize(r);
  }
  state.counters["found_cex"] = found ? 1 : 0;
}
BENCHMARK(BM_Thm28_ReducedInstanceBoundedCheck)->DenseRange(1, 3, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xtc
