// Experiment F1 — Fig. 1: rendering transducers as XSLT programs. Measures
// the exporter on the Example 6 transducer and on transducers with growing
// rule sets; prints the Fig. 1 program once as a label check.

#include <benchmark/benchmark.h>

#include "src/base/logging.h"
#include "src/core/paper_examples.h"
#include "src/td/xslt_export.h"

namespace xtc {
namespace {

void BM_Fig1_ExportExample6(benchmark::State& state) {
  PaperExample ex = MakeExample6();
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::string xslt = ExportXslt(*ex.transducer);
    bytes = xslt.size();
    benchmark::DoNotOptimize(xslt);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_Fig1_ExportExample6);

void BM_Fig1_ExportScaling(benchmark::State& state) {
  // n states, one rule each over one symbol.
  const int n = static_cast<int>(state.range(0));
  Alphabet alphabet;
  alphabet.Intern("a");
  Transducer t(&alphabet);
  for (int i = 0; i < n; ++i) t.AddState("q" + std::to_string(i));
  t.SetInitial(0);
  for (int i = 0; i < n; ++i) {
    std::string next = "q" + std::to_string((i + 1) % n);
    Status s = t.SetRuleFromString("q" + std::to_string(i), "a",
                                   "a(" + next + ")");
    XTC_CHECK(s.ok());
  }
  for (auto _ : state) {
    std::string xslt = ExportXslt(t);
    benchmark::DoNotOptimize(xslt);
  }
}
BENCHMARK(BM_Fig1_ExportScaling)->Arg(8)->Arg(64)->Arg(512);

}  // namespace
}  // namespace xtc
