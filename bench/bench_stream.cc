// Streaming vs DOM peak memory and throughput (DESIGN.md §5). Each
// iteration processes one whole generated document of `n` elements. The
// streaming rows feed generator chunks straight into the event reader —
// no component ever holds the document — so their peak_bytes must stay
// flat as n quadruples, while the DOM rows parse the full tree and their
// peak grows with the document. ci/stream_gate.py asserts exactly that on
// the aggregated BENCH json.
//
// Registration order matters for the memory rows: bench_main.cc resets the
// VmHWM high-water mark after each report batch, but heap pages the DOM
// rows touch are not returned to the OS, so the streaming rows run FIRST
// to keep their peaks honest.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <optional>
#include <string>

#include "src/base/arena.h"
#include "src/base/logging.h"
#include "src/fa/alphabet.h"
#include "src/schema/dtd.h"
#include "src/stream/doc_gen.h"
#include "src/stream/event_reader.h"
#include "src/stream/transform.h"
#include "src/stream/validate.h"
#include "src/td/exec.h"
#include "src/td/transducer.h"
#include "src/tree/codec.h"
#include "src/tree/tree.h"

namespace xtc {
namespace {

// Models a socket transport: output bytes leave the process as they are
// produced. Accumulating into a string would reintroduce an O(document)
// buffer and mask the O(depth) claim the rows exist to measure.
class DiscardSink : public StreamSink {
 public:
  Status Append(std::string_view bytes) override {
    bytes_ += bytes.size();
    benchmark::DoNotOptimize(bytes.data());
    return Status::Ok();
  }
  std::uint64_t bytes() const { return bytes_; }

 private:
  std::uint64_t bytes_ = 0;
};

struct StreamDocSchema {
  Alphabet alphabet;
  std::optional<Dtd> dtd;

  StreamDocSchema() {
    int root = alphabet.Intern("root");
    alphabet.Intern("section");
    alphabet.Intern("item");
    dtd.emplace(&alphabet, root);
    XTC_CHECK(dtd->SetRule("root", "(section|item)*").ok());
    XTC_CHECK(dtd->SetRule("section", "(section|item)*").ok());
    XTC_CHECK(dtd->SetRule("item", "%").ok());
    XTC_CHECK(dtd->Compile().ok());
  }

  Transducer MakeIdentity() {
    Transducer t(&alphabet);
    t.SetInitial(t.AddState("m"));
    XTC_CHECK(t.SetRuleFromString("m", "root", "root(m)").ok());
    XTC_CHECK(t.SetRuleFromString("m", "section", "section(m)").ok());
    XTC_CHECK(t.SetRuleFromString("m", "item", "item").ok());
    return t;
  }
};

StreamDocSpec SpecFor(std::int64_t n) {
  return StreamDocSpec{StreamDocSpec::Shape::kWide,
                       static_cast<std::uint64_t>(n)};
}

// Drives one generated document through `on_event`, chunk by chunk.
template <typename OnEvent>
void DriveGenerated(const StreamDocSpec& spec, Alphabet* alphabet,
                    OnEvent&& on_event) {
  XmlDocStream gen(spec);
  XmlEventReader reader(alphabet);
  XmlEvent event;
  std::string chunk;
  while (true) {
    StatusOr<XmlEventReader::ReadResult> r = reader.Next(&event);
    XTC_CHECK_MSG(r.ok(), r.status().ToString().c_str());
    if (*r == XmlEventReader::ReadResult::kEvent) {
      on_event(event);
      continue;
    }
    if (*r == XmlEventReader::ReadResult::kEndOfDocument) break;
    if (gen.Next(&chunk)) {
      reader.Push(chunk);
    } else {
      reader.FinishInput();
    }
  }
}

// --- Streaming rows (registered first; see the header comment) -----------

void BM_StreamValidate(benchmark::State& state) {
  StreamDocSchema schema;
  const StreamDocSpec spec = SpecFor(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    StreamValidator validator(&*schema.dtd);
    DriveGenerated(spec, &schema.alphabet,
                   [&](const XmlEvent& e) { XTC_CHECK(validator.OnEvent(e).ok()); });
    XTC_CHECK(validator.AtEndOfDocument());
    events = validator.events();
  }
  state.counters["events"] = static_cast<double>(events);
}
BENCHMARK(BM_StreamValidate)
    ->Arg(65536)
    ->Arg(131072)
    ->Arg(262144)
    ->Arg(524288);

void BM_StreamTransform(benchmark::State& state) {
  StreamDocSchema schema;
  Transducer t = schema.MakeIdentity();
  const StreamDocSpec spec = SpecFor(state.range(0));
  std::uint64_t bytes_out = 0;
  for (auto _ : state) {
    DiscardSink sink;
    StatusOr<std::unique_ptr<StreamTransducer>> exec =
        StreamTransducer::Create(&t, &sink);
    XTC_CHECK(exec.ok());
    DriveGenerated(spec, &schema.alphabet,
                   [&](const XmlEvent& e) { XTC_CHECK((*exec)->OnEvent(e).ok()); });
    XTC_CHECK((*exec)->Finish().ok());
    XTC_CHECK((*exec)->peak_spill_bytes() == 0);  // identity is linear
    bytes_out = sink.bytes();
  }
  state.counters["bytes_out"] = static_cast<double>(bytes_out);
}
BENCHMARK(BM_StreamTransform)
    ->Arg(65536)
    ->Arg(131072)
    ->Arg(262144)
    ->Arg(524288);

// --- DOM rows (the O(document) baseline) ----------------------------------

void BM_DomValidate(benchmark::State& state) {
  StreamDocSchema schema;
  const std::string doc = RenderDoc(SpecFor(state.range(0)));
  for (auto _ : state) {
    Arena arena;
    TreeBuilder builder(&arena);
    StatusOr<Node*> tree = ParseXml(doc, &schema.alphabet, &builder);
    XTC_CHECK_MSG(tree.ok(), tree.status().ToString().c_str());
    bool valid = schema.dtd->Valid(*tree);
    XTC_CHECK(valid);
    benchmark::DoNotOptimize(valid);
  }
  state.counters["doc_bytes"] = static_cast<double>(doc.size());
}
BENCHMARK(BM_DomValidate)->Arg(65536)->Arg(131072)->Arg(262144)->Arg(524288);

void BM_DomTransform(benchmark::State& state) {
  StreamDocSchema schema;
  Transducer t = schema.MakeIdentity();
  const std::string doc = RenderDoc(SpecFor(state.range(0)));
  std::uint64_t bytes_out = 0;
  for (auto _ : state) {
    Arena arena;
    TreeBuilder builder(&arena);
    StatusOr<Node*> tree = ParseXml(doc, &schema.alphabet, &builder);
    XTC_CHECK_MSG(tree.ok(), tree.status().ToString().c_str());
    Node* out = Apply(t, *tree, &builder);
    XTC_CHECK(out != nullptr);
    std::string xml = ToXml(out, schema.alphabet);
    benchmark::DoNotOptimize(xml.data());
    bytes_out = xml.size();
  }
  state.counters["bytes_out"] = static_cast<double>(bytes_out);
}
BENCHMARK(BM_DomTransform)->Arg(65536)->Arg(131072)->Arg(262144)->Arg(524288);

}  // namespace
}  // namespace xtc
