// Experiment T1 — Table 1: the complexity frontier of typechecking per
// transducer class × schema formalism. The paper's table gives complexity
// classes; this harness regenerates its *shape* with wall-clock series:
//
//   nd/bc × DTD(DFA)      PTIME      -> flat polynomial growth
//   d/bc  × DTD(DFA)      PTIME for T_trac (this paper's Theorem 15)
//   nd/bc × DTD(NFA)      PSPACE     -> exponential via determinization
//   del-relab × DTA       PTIME      (Theorem 20)
//
// Who wins and where the blow-ups live is the reproduction target; see
// EXPERIMENTS.md.

#include <benchmark/benchmark.h>

#include "src/base/logging.h"
#include "src/core/nfa_dtd.h"
#include "src/core/relab.h"
#include "src/core/trac.h"
#include "src/workload/families.h"

namespace xtc {
namespace {

void CheckOk(const StatusOr<TypecheckResult>& r, bool expect) {
  XTC_CHECK_MSG(r.ok(), r.status().ToString().c_str());
  XTC_CHECK(r->typechecks == expect);
}

// Row "nd/bc, DTD(DFA)" — PTIME: relabelings of growing schema size.
void BM_Table1_NdBc_DtdDfa(benchmark::State& state) {
  PaperExample ex = RelabFamily(static_cast<int>(state.range(0)));
  TypecheckOptions opts;
  opts.want_counterexample = false;
  for (auto _ : state) {
    CheckOk(TypecheckTrac(*ex.transducer, *ex.din, *ex.dout, opts), true);
  }
  state.counters["|din|"] = static_cast<double>(ex.din->Size());
}
BENCHMARK(BM_Table1_NdBc_DtdDfa)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// Row "d/bc, DTD(DFA)" — deletion allowed: PTIME for T_trac (Theorem 15).
void BM_Table1_DBc_DtdDfa(benchmark::State& state) {
  PaperExample ex = FilterFamily(static_cast<int>(state.range(0)));
  TypecheckOptions opts;
  opts.want_counterexample = false;
  for (auto _ : state) {
    CheckOk(TypecheckTrac(*ex.transducer, *ex.din, *ex.dout, opts), true);
  }
  state.counters["|din|"] = static_cast<double>(ex.din->Size());
}
BENCHMARK(BM_Table1_DBc_DtdDfa)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

// Row "nd/bc, DTD(NFA)" — PSPACE: complete checking via determinization
// blows up exponentially in n on the "n-th letter from the end" family.
void BM_Table1_NdBc_DtdNfa(benchmark::State& state) {
  PaperExample ex = NfaSchemaFamily(static_cast<int>(state.range(0)));
  TypecheckOptions opts;
  opts.want_counterexample = false;
  for (auto _ : state) {
    StatusOr<TypecheckResult> r = TypecheckViaDeterminization(
        *ex.transducer, *ex.din, *ex.dout, opts, 1 << 20);
    CheckOk(r, true);
  }
}
BENCHMARK(BM_Table1_NdBc_DtdNfa)->DenseRange(2, 10, 2);

// Row "del-relab, DTA" — Theorem 20: PTIME through tree automata.
void BM_Table1_DelRelab_Dta(benchmark::State& state) {
  PaperExample ex = RelabFamily(static_cast<int>(state.range(0)));
  TypecheckOptions opts;
  opts.want_counterexample = false;
  for (auto _ : state) {
    CheckOk(TypecheckDelRelab(*ex.transducer, *ex.din, *ex.dout, opts), true);
  }
}
BENCHMARK(BM_Table1_DelRelab_Dta)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
}  // namespace xtc
