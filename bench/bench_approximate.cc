// Ablation — complete vs. sound-but-incomplete typechecking (the paper's
// introduction contrasts its complete algorithms with the XDuce/CDuce
// style). The approximate checker is faster but returns kUnknown on
// typesafe instances whose safety depends on structure the approximation
// loses; the series below measure both the speed gap and the precision gap.

#include <benchmark/benchmark.h>

#include "src/base/logging.h"
#include "src/core/approximate.h"
#include "src/core/trac.h"
#include "src/workload/families.h"

namespace xtc {
namespace {

void BM_Approx_LooseSchemas(benchmark::State& state) {
  PaperExample ex = WidthFamily(2, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    StatusOr<ApproximateResult> r =
        TypecheckApproximate(*ex.transducer, *ex.din, *ex.dout);
    XTC_CHECK(r.ok());
    XTC_CHECK(r->verdict == ApproximateVerdict::kTypechecks);
  }
}
BENCHMARK(BM_Approx_LooseSchemas)->DenseRange(0, 4, 1);

void BM_Approx_SameInstancesComplete(benchmark::State& state) {
  PaperExample ex = WidthFamily(2, static_cast<int>(state.range(0)));
  TypecheckOptions opts;
  opts.want_counterexample = false;
  for (auto _ : state) {
    StatusOr<TypecheckResult> r =
        TypecheckTrac(*ex.transducer, *ex.din, *ex.dout, opts);
    XTC_CHECK(r.ok() && r->typechecks);
  }
}
BENCHMARK(BM_Approx_SameInstancesComplete)->DenseRange(0, 4, 1);

void BM_Approx_PrecisionGap(benchmark::State& state) {
  // FilterFamily typechecks, but only the complete engine can tell: the
  // approximation conflates the section levels. Count of kUnknown verdicts
  // on typesafe instances = the price of incompleteness.
  int unknown = 0;
  int total = 0;
  for (auto _ : state) {
    unknown = 0;
    total = 0;
    for (int n = 1; n <= 6; ++n) {
      PaperExample ex = FilterFamily(n);
      StatusOr<ApproximateResult> r =
          TypecheckApproximate(*ex.transducer, *ex.din, *ex.dout);
      XTC_CHECK(r.ok());
      ++total;
      if (r->verdict == ApproximateVerdict::kUnknown) ++unknown;
    }
    benchmark::DoNotOptimize(unknown);
  }
  state.counters["unknown_on_safe"] = unknown;
  state.counters["instances"] = total;
}
BENCHMARK(BM_Approx_PrecisionGap)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xtc
