// Shared main for every bench binary. Besides the stock Google Benchmark
// behaviour, `--json` switches the output to a single machine-readable JSON
// array on stdout — one object per benchmark run:
//
//     {"bench": "BM_Lemma14_SchemaSize", "params": [32],
//      "ns_per_op": 431943.2, "peak_bytes": 14680064}
//
// `bench/run_benches.sh` aggregates these across binaries into the BENCH
// json at the repo root, which EXPERIMENTS.md and the CI perf-smoke stage
// consume. Peak memory is the VmHWM high-water mark, reset after each
// report batch (write "5" to /proc/self/clear_refs), so every row reports
// the peak of its own runs rather than the binary-wide maximum; where the
// reset is unsupported it degrades to the old monotone ru_maxrss bound.

#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace {

std::uint64_t RusagePeakBytes() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in kibibytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

std::uint64_t PeakBytes() {
  // VmHWM tracks ru_maxrss but is resettable (see ResetPeak); fall back to
  // getrusage when /proc is unavailable.
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return RusagePeakBytes();
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      unsigned long long value = 0;
      if (std::sscanf(line + 6, "%llu", &value) == 1) kb = value;
      break;
    }
  }
  std::fclose(f);
  return kb != 0 ? kb * 1024 : RusagePeakBytes();
}

// Resets the VmHWM high-water mark to the current RSS so the next report
// batch measures only its own allocations. No-op (monotone peaks, the old
// behaviour) where /proc/self/clear_refs is absent or read-only.
void ResetPeak() {
  FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return;
  std::fputs("5", f);
  std::fclose(f);
}

// Splits "BM_Name/3/17" into the bench name and its numeric params. Params
// set via counters/args always appear as trailing /-separated integers.
void SplitRunName(const std::string& run_name, std::string* bench,
                  std::vector<long long>* params) {
  std::string name = run_name;
  // Benchmarks registered with UseRealTime()/MeasureProcessCPUTime() get a
  // timing-mode suffix after the numeric params; strip it so the params
  // still parse.
  for (const char* suffix :
       {"/real_time", "/process_time", "/manual_time"}) {
    const std::size_t len = std::strlen(suffix);
    if (name.size() > len && name.compare(name.size() - len, len, suffix) == 0) {
      name.resize(name.size() - len);
    }
  }
  // Registration modifiers (MinTime, Iterations, Repetitions, ...) append
  // "/key:value" segments after the numeric params; strip those too so a
  // benchmark keeps its (bench, params) identity when its window changes.
  for (std::size_t slash = name.rfind('/'); slash != std::string::npos;
       slash = name.rfind('/')) {
    if (name.find(':', slash) == std::string::npos) break;
    name.resize(slash);
  }
  const std::string& run = name;
  std::size_t cut = run.size();
  while (cut > 0) {
    const std::size_t slash = run.rfind('/', cut - 1);
    if (slash == std::string::npos) break;
    const std::string piece = run.substr(slash + 1, cut - slash - 1);
    if (piece.empty() ||
        piece.find_first_not_of("0123456789-") != std::string::npos) {
      break;
    }
    params->insert(params->begin(), std::stoll(piece));
    cut = slash;
  }
  *bench = run.substr(0, cut);
}

class JsonLinesReporter : public benchmark::BenchmarkReporter {
 public:
  bool ReportContext(const Context& /*context*/) override { return true; }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      std::string bench;
      std::vector<long long> params;
      SplitRunName(run.benchmark_name(), &bench, &params);
      const double ns_per_op =
          run.iterations == 0
              ? 0.0
              : run.real_accumulated_time /
                    static_cast<double>(run.iterations) * 1e9;
      std::string params_json = "[";
      for (std::size_t i = 0; i < params.size(); ++i) {
        if (i > 0) params_json += ", ";
        params_json += std::to_string(params[i]);
      }
      params_json += "]";
      char line[512];
      std::snprintf(line, sizeof(line),
                    "{\"bench\": \"%s\", \"params\": %s, "
                    "\"ns_per_op\": %.1f, \"peak_bytes\": %llu}",
                    bench.c_str(), params_json.c_str(), ns_per_op,
                    static_cast<unsigned long long>(PeakBytes()));
      lines_.push_back(line);
    }
    // Per-row peaks: drop the high-water mark once this batch is recorded
    // so the next benchmark's rows do not inherit it.
    ResetPeak();
  }

  void Finalize() override {
    std::printf("[\n");
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      std::printf("  %s%s\n", lines_[i].c_str(),
                  i + 1 < lines_.size() ? "," : "");
    }
    std::printf("]\n");
    std::fflush(stdout);
  }

 private:
  std::vector<std::string> lines_;
};

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (json) {
    JsonLinesReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
  } else {
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  return 0;
}
