// Experiment E8 — antichain subsumption pruning (DESIGN.md §3e) on
// large-universe inclusion queries. The shift-register family below is
// built so that the lazy engine's discovery set without pruning holds the
// full union lattice over k generator states (~2^k determinized subsets,
// and the joint horizontal space squares that), while every one of those
// subsets is dominated under the complemented polarity by the singleton
// {q0} minted from the very first leaf — so the antichain layer collapses
// the whole exploration to O(k) live configurations. The On/Off rows are
// paired and gated by ci/antichain_gate.py (>= 2x at the largest common
// parameter). `pad` adds dead states to push the subset-mask universe past
// kDefaultDenseThreshold, so the On rows also exercise the sorted-sparse
// AdaptiveStateSet representation; the Dense rows keep pad = 0 to cover
// the word-parallel path.

#include <benchmark/benchmark.h>

#include "src/base/logging.h"
#include "src/nta/lazy.h"
#include "src/nta/nta.h"

namespace xtc {
namespace {

// Alphabet layout for universe size k: symbol 0 is the unit leaf `u`,
// symbols 1..k are the generator leaves b_i, symbol k+1 is the internal
// node `n` (one or more children).
int NumSymbols(int k) { return k + 2; }

Nfa EpsilonNfa(int alphabet) {
  Nfa nfa(alphabet);
  nfa.AddState(/*initial=*/true, /*final=*/true);
  return nfa;
}

// Sigma* q Sigma* over the live letters 0..k: accepts any child word in
// which some child can carry state q. Edges exist only for live letters —
// pad states never label a child, so their columns would be dead weight.
Nfa ContainsLetterNfa(int alphabet, int live_letters, int q) {
  Nfa nfa(alphabet);
  int s0 = nfa.AddState(/*initial=*/true, /*final=*/false);
  int s1 = nfa.AddState(/*initial=*/false, /*final=*/true);
  for (int c = 0; c < live_letters; ++c) {
    nfa.AddTransition(s0, c, s0);
    nfa.AddTransition(s1, c, s1);
  }
  nfa.AddTransition(s0, q, s1);
  return nfa;
}

// The existential side: one state accepting every tree whose leaves are
// u/b_i and whose n-nodes have at least one child. The >= 1 child floor
// matters: it keeps the determinized side's reachable subsets non-empty
// (q0 runs on every such tree), so the complemented component never
// accepts and the engine must reach the full fixpoint — the bench times
// exploration, not an early exit.
Nta UniversalNta(int k) {
  Nta a(NumSymbols(k), 1);
  a.SetFinal(0);
  for (int s = 0; s <= k; ++s) a.SetTransition(0, s, EpsilonNfa(1));
  Nfa one_or_more(1);
  int s0 = one_or_more.AddState(/*initial=*/true, /*final=*/false);
  int s1 = one_or_more.AddState(/*initial=*/false, /*final=*/true);
  one_or_more.AddTransition(s0, 0, s1);
  one_or_more.AddTransition(s1, 0, s1);
  a.SetTransition(0, k + 1, one_or_more);
  return a;
}

// The determinized side: states q0..qk plus `pad` dead states. q0 (final)
// runs on every tree; q_i additionally marks leaf b_i and propagates up
// through any n-node that has a q_i-capable child. Bottom-up subsets are
// therefore {q0} (leaf u), {q0, q_i} (leaf b_i), and every union
// {q0} ∪ S over S ⊆ {q1..qk} at n-nodes — 2^k reachable subsets, all
// containing the final q0, all supersets of the leaf-u singleton.
Nta ShiftRegisterNta(int k, int pad) {
  const int num_states = k + 1 + pad;
  Nta b(NumSymbols(k), num_states);
  b.SetFinal(0);
  b.SetTransition(0, 0, EpsilonNfa(num_states));
  for (int i = 1; i <= k; ++i) {
    b.SetTransition(0, i, EpsilonNfa(num_states));
    b.SetTransition(i, i, EpsilonNfa(num_states));
  }
  for (int q = 0; q <= k; ++q) {
    b.SetTransition(q, k + 1, ContainsLetterNfa(num_states, k + 1, q));
  }
  return b;
}

void RunAntichainInclusion(benchmark::State& state, bool antichain) {
  const int k = static_cast<int>(state.range(0));
  const int pad = static_cast<int>(state.range(1));
  Nta a = UniversalNta(k);
  Nta b = ShiftRegisterNta(k, pad);
  LazyProductSpec spec;
  spec.AddNta(&a);
  spec.AddDeterminized(&b, /*complement=*/true);
  LazyOptions options;
  options.antichain = antichain;
  // Verdict agreement between the pruned and unpruned engines is asserted
  // outside the timing loop; both must reach the empty fixpoint.
  LazyOptions off;
  off.antichain = false;
  StatusOr<EmptinessOutcome> pruned = LazyEmptiness(spec, nullptr);
  StatusOr<EmptinessOutcome> full = LazyEmptiness(spec, nullptr, off);
  XTC_CHECK_MSG(pruned.ok(), pruned.status().ToString().c_str());
  XTC_CHECK_MSG(full.ok(), full.status().ToString().c_str());
  XTC_CHECK(pruned->empty && full->empty);
  LazyStats stats;
  for (auto _ : state) {
    StatusOr<EmptinessOutcome> out = LazyEmptiness(spec, nullptr, options);
    XTC_CHECK_MSG(out.ok(), out.status().ToString().c_str());
    benchmark::DoNotOptimize(out->empty);
    stats = out->stats;
  }
  state.counters["configs"] = static_cast<double>(stats.configs);
  state.counters["pruned"] =
      static_cast<double>(stats.pruned_configs + stats.displaced_configs);
  state.counters["universe"] = static_cast<double>(b.num_states());
}

// Sparse-universe rows: pad = 4096 dead states push the mask universe past
// kDefaultDenseThreshold (2048), so subset masks run sorted-sparse.
void BM_AntichainInclusion_On(benchmark::State& state) {
  RunAntichainInclusion(state, /*antichain=*/true);
}
void BM_AntichainInclusion_Off(benchmark::State& state) {
  RunAntichainInclusion(state, /*antichain=*/false);
}
BENCHMARK(BM_AntichainInclusion_On)
    ->Args({6, 4096})->Args({8, 4096})->Args({10, 4096})
    ->Unit(benchmark::kMillisecond)->MinTime(0.25);
BENCHMARK(BM_AntichainInclusion_Off)
    ->Args({6, 4096})->Args({8, 4096})->Args({10, 4096})
    ->Unit(benchmark::kMillisecond)->MinTime(0.25);

// Dense-universe rows: the same family inside the word-parallel sweet
// spot. The pruning win is representation-independent; this pair keeps
// the gate honest about that.
void BM_AntichainInclusionDense_On(benchmark::State& state) {
  RunAntichainInclusion(state, /*antichain=*/true);
}
void BM_AntichainInclusionDense_Off(benchmark::State& state) {
  RunAntichainInclusion(state, /*antichain=*/false);
}
BENCHMARK(BM_AntichainInclusionDense_On)
    ->Args({6, 0})->Args({8, 0})->Args({10, 0})
    ->Unit(benchmark::kMillisecond)->MinTime(0.25);
BENCHMARK(BM_AntichainInclusionDense_Off)
    ->Args({6, 0})->Args({8, 0})->Args({10, 0})
    ->Unit(benchmark::kMillisecond)->MinTime(0.25);

}  // namespace
}  // namespace xtc
