#!/usr/bin/env bash
# Runs the paper-experiment benchmarks in --json mode and aggregates their
# output into a single machine-readable file (default: BENCH_pr10.json at
# the repo root). EXPERIMENTS.md documents the format; ci/run_ci.sh compares
# a fresh run against the checked-in snapshot in its perf-smoke stage and
# checks the lazy-vs-eager pairs with ci/lazy_gate.py, the antichain
# subsumption pairs with ci/antichain_gate.py, and the streaming
# peak-memory claims with ci/stream_gate.py.
#
# When xtc_loadgen is built, one gate-mode run (calibrate, unloaded 0.5x,
# overload 2x) is embedded under a top-level "loadgen" key — outside
# "suites", so the perf-smoke row comparison never sees it.
#
# Each binary is run PASSES times and rows are merged by per-row *minimum*
# ns_per_op (maximum peak_bytes): on a single-vCPU box the host can
# time-slice a whole 0.2s measurement window away, so a single pass reads
# 2x slow often enough to fake a perf-smoke regression. The minimum of
# independent passes estimates the uncontended cost, which is the quantity
# the 2x gates are about.
#
# Usage: bench/run_benches.sh [build_dir] [out_json]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
OUT="${2:-$REPO_ROOT/BENCH_pr10.json}"
PASSES="${PASSES:-2}"

BENCHES=(
  bench_lemma14_scaling
  bench_thm18_hardness
  bench_table1_frontier
  bench_thm20_relab
  bench_antichain
  bench_service
  bench_stream
)

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

for b in "${BENCHES[@]}"; do
  bin="$BUILD_DIR/bench/$b"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (run cmake --build $BUILD_DIR first)" >&2
    exit 1
  fi
  for pass in $(seq 1 "$PASSES"); do
    echo "running $b (pass $pass/$PASSES) ..." >&2
    # 0.2s windows: the perf-smoke compare gates 2x on rows as small as a
    # few µs and as large as tens of ms; short windows give the ms-scale
    # rows only 2-3 iterations, where one scheduler hiccup dominates.
    "$bin" --json --benchmark_min_time=0.2 > "$TMP_DIR/$b.$pass.json"
  done
done

LOADGEN_BIN="$BUILD_DIR/src/xtc_loadgen"
if [[ -x "$LOADGEN_BIN" ]]; then
  echo "running xtc_loadgen (gate mode) ..." >&2
  "$LOADGEN_BIN" --threads=2 --duration-s=2 > "$TMP_DIR/loadgen.json" \
    || echo "warning: xtc_loadgen failed; snapshot will omit loadgen" >&2
fi

python3 - "$OUT" "$TMP_DIR" "$PASSES" "${BENCHES[@]}" <<'EOF'
import json
import os
import sys

out_path, tmp_dir, passes, benches = (
    sys.argv[1], sys.argv[2], int(sys.argv[3]), sys.argv[4:])
doc = {"format": "xtc-bench-v1", "suites": {}}
# The *Parallel bench rows carry a [n, threads] parameter pair whose ratios
# only mean anything relative to the physical core count of the recording
# host; ci/parallel_gate.py reads this block and skips its speedup floors
# when the host cannot exhibit them (e.g. the single-vCPU CI box).
doc["metadata"] = {
    "hardware_concurrency": os.cpu_count() or 1,
    "parallel_thread_counts": [1, 2, 4, 8],
}
# Set XTC_TSAN_CLEAN=1 after a green `ctest --preset tsan` pass to record
# that the service-layer concurrency tests ran race-free for this snapshot.
if "XTC_TSAN_CLEAN" in os.environ:
    doc["tsan_clean"] = os.environ["XTC_TSAN_CLEAN"] == "1"
for b in benches:
    merged = {}
    order = []
    for p in range(1, passes + 1):
        with open(f"{tmp_dir}/{b}.{p}.json") as f:
            for row in json.load(f):
                key = (row["bench"], tuple(row["params"]))
                if key not in merged:
                    merged[key] = row
                    order.append(key)
                else:
                    best = merged[key]
                    best["ns_per_op"] = min(best["ns_per_op"], row["ns_per_op"])
                    best["peak_bytes"] = max(best["peak_bytes"],
                                             row["peak_bytes"])
    doc["suites"][b] = [merged[key] for key in order]
loadgen_path = f"{tmp_dir}/loadgen.json"
if os.path.exists(loadgen_path):
    with open(loadgen_path) as f:
        doc["loadgen"] = json.load(f)
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
n = sum(len(v) for v in doc["suites"].values())
print(f"wrote {out_path} ({n} benchmark runs, min over {passes} passes)",
      file=sys.stderr)
EOF
