#!/usr/bin/env bash
# Runs the paper-experiment benchmarks in --json mode and aggregates their
# output into a single machine-readable file (default: BENCH_pr3.json at the
# repo root). EXPERIMENTS.md documents the format; ci/run_ci.sh compares a
# fresh run against the checked-in snapshot in its perf-smoke stage.
#
# Usage: bench/run_benches.sh [build_dir] [out_json]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
OUT="${2:-$REPO_ROOT/BENCH_pr3.json}"

BENCHES=(
  bench_lemma14_scaling
  bench_thm18_hardness
  bench_table1_frontier
  bench_thm20_relab
  bench_service
)

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

for b in "${BENCHES[@]}"; do
  bin="$BUILD_DIR/bench/$b"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (run cmake --build $BUILD_DIR first)" >&2
    exit 1
  fi
  echo "running $b ..." >&2
  "$bin" --json --benchmark_min_time=0.05 > "$TMP_DIR/$b.json"
done

python3 - "$OUT" "$TMP_DIR" "${BENCHES[@]}" <<'EOF'
import json
import os
import sys

out_path, tmp_dir, benches = sys.argv[1], sys.argv[2], sys.argv[3:]
doc = {"format": "xtc-bench-v1", "suites": {}}
# Set XTC_TSAN_CLEAN=1 after a green `ctest --preset tsan` pass to record
# that the service-layer concurrency tests ran race-free for this snapshot.
if "XTC_TSAN_CLEAN" in os.environ:
    doc["tsan_clean"] = os.environ["XTC_TSAN_CLEAN"] == "1"
for b in benches:
    with open(f"{tmp_dir}/{b}.json") as f:
        doc["suites"][b] = json.load(f)
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
n = sum(len(v) for v in doc["suites"].values())
print(f"wrote {out_path} ({n} benchmark runs)", file=sys.stderr)
EOF
