// Experiment E3 — Theorem 20: TC[T_del-relab, DTAc(DFA)] in PTIME. Scaling
// of the full pipeline (Lemma 19 output-language automaton, #-elimination,
// product, emptiness) with schema size, with the intermediate automaton
// sizes reported.

#include <benchmark/benchmark.h>

#include "src/base/logging.h"
#include "src/core/relab.h"
#include "src/core/trac.h"
#include "src/workload/families.h"

namespace xtc {
namespace {

void BM_Thm20_RelabScaling(benchmark::State& state) {
  PaperExample ex = RelabFamily(static_cast<int>(state.range(0)));
  TypecheckOptions opts;
  opts.want_counterexample = false;
  std::uint64_t product_size = 0;
  for (auto _ : state) {
    StatusOr<TypecheckResult> r =
        TypecheckDelRelab(*ex.transducer, *ex.din, *ex.dout, opts);
    XTC_CHECK_MSG(r.ok(), r.status().ToString().c_str());
    XTC_CHECK(r->typechecks);
    product_size = r->stats.nta_size;
  }
  state.counters["|Bin x Bout|"] = static_cast<double>(product_size);
}
BENCHMARK(BM_Thm20_RelabScaling)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_Thm20_FilterViaTreeAutomata(benchmark::State& state) {
  // The ToC-style deleting relabeling over the section hierarchy.
  PaperExample ex = FilterFamily(static_cast<int>(state.range(0)));
  TypecheckOptions opts;
  opts.want_counterexample = false;
  for (auto _ : state) {
    StatusOr<TypecheckResult> r =
        TypecheckDelRelab(*ex.transducer, *ex.din, *ex.dout, opts);
    XTC_CHECK_MSG(r.ok(), r.status().ToString().c_str());
    XTC_CHECK(r->typechecks);
  }
}
BENCHMARK(BM_Thm20_FilterViaTreeAutomata)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Comparison series: the same instances through the Lemma 14 engine (both
// are PTIME here; relative constants are machine-local).
void BM_Thm20_SameInstancesViaLemma14(benchmark::State& state) {
  PaperExample ex = RelabFamily(static_cast<int>(state.range(0)));
  TypecheckOptions opts;
  opts.want_counterexample = false;
  for (auto _ : state) {
    StatusOr<TypecheckResult> r =
        TypecheckTrac(*ex.transducer, *ex.din, *ex.dout, opts);
    XTC_CHECK(r.ok() && r->typechecks);
  }
}
BENCHMARK(BM_Thm20_SameInstancesViaLemma14)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xtc
