// Experiment E7 — Corollary 38: counterexample generation in PTIME. Pairs
// decision-only runs with decision+witness runs across the engines, and
// verifies every produced witness against Definition 8.

#include <benchmark/benchmark.h>

#include "src/base/logging.h"
#include "src/core/minvast.h"
#include "src/core/trac.h"
#include "src/tree/tree.h"
#include "src/workload/families.h"

namespace xtc {
namespace {

void BM_Cor38_DecisionOnly(benchmark::State& state) {
  PaperExample ex = FailingFilterFamily(static_cast<int>(state.range(0)));
  TypecheckOptions opts;
  opts.want_counterexample = false;
  for (auto _ : state) {
    StatusOr<TypecheckResult> r =
        TypecheckTrac(*ex.transducer, *ex.din, *ex.dout, opts);
    XTC_CHECK(r.ok() && !r->typechecks);
  }
}
BENCHMARK(BM_Cor38_DecisionOnly)->Arg(2)->Arg(8)->Arg(32);

void BM_Cor38_WithWitness(benchmark::State& state) {
  PaperExample ex = FailingFilterFamily(static_cast<int>(state.range(0)));
  TypecheckOptions opts;
  std::size_t witness_nodes = 0;
  for (auto _ : state) {
    StatusOr<TypecheckResult> r =
        TypecheckTrac(*ex.transducer, *ex.din, *ex.dout, opts);
    XTC_CHECK(r.ok() && !r->typechecks);
    XTC_CHECK(r->counterexample != nullptr);
    XTC_CHECK(VerifyCounterexample(*ex.transducer, *ex.din, *ex.dout,
                                   r->counterexample));
    witness_nodes = NodeCount(r->counterexample);
  }
  state.counters["witness_nodes"] = static_cast<double>(witness_nodes);
}
BENCHMARK(BM_Cor38_WithWitness)->Arg(2)->Arg(8)->Arg(32);

void BM_Cor38_MinVastWitness(benchmark::State& state) {
  // The Section 6 route: test t_min and t_vast; the witness is one of them.
  PaperExample ex = RePlusCopyFamily(static_cast<int>(state.range(0)));
  // Demand exactly one a: with copying width >= 2 every document violates.
  XTC_CHECK(ex.dout->SetRule("r", "a").ok());
  TypecheckOptions opts;
  for (auto _ : state) {
    StatusOr<TypecheckResult> r =
        TypecheckMinVast(*ex.transducer, *ex.din, *ex.dout, opts);
    XTC_CHECK(r.ok() && !r->typechecks);
    XTC_CHECK(r->counterexample != nullptr);
    XTC_CHECK(VerifyCounterexample(*ex.transducer, *ex.din, *ex.dout,
                                   r->counterexample));
  }
}
BENCHMARK(BM_Cor38_MinVastWitness)->Arg(2)->Arg(8)->Arg(32);

}  // namespace
}  // namespace xtc
