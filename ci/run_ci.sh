#!/usr/bin/env bash
# CI gate: builds the tier-1 suite twice — a plain RelWithDebInfo build and
# an ASan+UBSan build — and runs ctest in both, plus an explicit pass over
# the resource-governance tests (fault-injection sweep, budget semantics,
# malformed-input hardening) under the sanitizers. Any sanitizer report
# aborts the run (abort_on_error=1), so a green exit means zero leaks and
# zero UB across every injected failure point.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-2}"

echo "=== configure + build (RelWithDebInfo) ==="
cmake --preset default >/dev/null
cmake --build --preset default -j "${JOBS}"

echo "=== tier-1 tests (RelWithDebInfo) ==="
ctest --preset default

echo "=== configure + build (ASan + UBSan) ==="
cmake --preset asan >/dev/null
cmake --build --preset asan -j "${JOBS}"

echo "=== tier-1 tests (sanitized) ==="
ctest --preset asan

echo "=== fault-injection sweep (sanitized, verbose) ==="
ctest --preset asan -R "FaultInjection|Budget|Malformed" --output-on-failure

echo "=== perf smoke (Release benches vs checked-in BENCH_pr2.json) ==="
if [[ -f BENCH_pr2.json ]]; then
  cmake --preset release >/dev/null
  cmake --build --preset release -j "${JOBS}" --target \
    bench_lemma14_scaling bench_thm18_hardness bench_table1_frontier \
    bench_thm20_relab
  bench/run_benches.sh build-release /tmp/bench_smoke.json
  python3 ci/perf_compare.py BENCH_pr2.json /tmp/bench_smoke.json 2.0
else
  echo "no BENCH_pr2.json snapshot; skipping perf smoke"
fi

echo "CI: all green"
