#!/usr/bin/env bash
# CI gate: builds the tier-1 suite three times — a plain RelWithDebInfo
# build, an ASan+UBSan build, and a TSan build of the concurrent service
# layer — and runs ctest in each, plus an explicit pass over the
# resource-governance tests (fault-injection sweep, budget semantics,
# malformed-input hardening) under the sanitizers. Any sanitizer report
# aborts the run (abort_on_error=1 / halt_on_error=1), so a green exit
# means zero leaks, zero UB across every injected failure point, and zero
# data races in the multi-threaded typechecking service.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-2}"

echo "=== configure + build (RelWithDebInfo) ==="
cmake --preset default >/dev/null
cmake --build --preset default -j "${JOBS}"

echo "=== tier-1 tests (RelWithDebInfo) ==="
ctest --preset default

echo "=== configure + build (ASan + UBSan) ==="
cmake --preset asan >/dev/null
cmake --build --preset asan -j "${JOBS}"

echo "=== tier-1 tests (sanitized) ==="
ctest --preset asan

echo "=== fault-injection sweep (sanitized, verbose) ==="
ctest --preset asan -R "FaultInjection|Budget|Malformed" --output-on-failure

echo "=== streaming subsystem tests (sanitized, verbose) ==="
ctest --preset asan -R "Stream|XmlEventReader|SharedGrammar|XmlDocStream" \
  --output-on-failure

echo "=== configure + build (TSan, concurrent layers) ==="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "${JOBS}" --target \
  service_test service_stress_test service_overload_test compile_cache_test \
  concurrent_interner_test lazy_determinize_test antichain_test stream_test

echo "=== service + parallel-emptiness concurrency tests (TSan) ==="
ctest --preset tsan -R "Service|CompileCache|ConcurrentInterner|ConcurrentLog|LazyParallel|Antichain|Stream|XmlEventReader|SharedGrammar" \
  --output-on-failure

echo "=== overload smoke (loadgen at 2x sustainable rate) ==="
cmake --preset release >/dev/null
cmake --build --preset release -j "${JOBS}" --target xtc_loadgen
# Best of two: the single-vCPU CI box can time-slice an entire measurement
# window away, making one run read as a latency regression that the gate's
# ratios were never about. Two independent runs must both fail to gate.
overload_ok=0
for attempt in 1 2; do
  if build-release/src/xtc_loadgen --threads=2 --duration-s=2 \
       > /tmp/loadgen_smoke.json \
     && python3 ci/overload_gate.py /tmp/loadgen_smoke.json; then
    overload_ok=1
    break
  fi
  echo "overload smoke attempt ${attempt} failed" >&2
done
[[ "${overload_ok}" == 1 ]]

echo "=== perf smoke (Release benches vs checked-in snapshot) ==="
SNAPSHOT=""
for candidate in BENCH_pr10.json BENCH_pr9.json BENCH_pr8.json BENCH_pr7.json BENCH_pr6.json BENCH_pr4.json BENCH_pr3.json BENCH_pr2.json; do
  if [[ -f "$candidate" ]]; then SNAPSHOT="$candidate"; break; fi
done
if [[ -n "$SNAPSHOT" ]]; then
  cmake --preset release >/dev/null
  cmake --build --preset release -j "${JOBS}" --target \
    bench_lemma14_scaling bench_thm18_hardness bench_table1_frontier \
    bench_thm20_relab bench_antichain bench_service bench_stream
  bench/run_benches.sh build-release /tmp/bench_smoke.json
  # Best-of-N retry: one preempted measurement window on the shared CI box
  # can read as a 2x "regression". A failing first comparison earns one
  # more full bench run; perf_compare.py then takes the min across both
  # fresh files per benchmark, so noise has two chances to get out of the
  # way while a real regression fails both times.
  if ! python3 ci/perf_compare.py "$SNAPSHOT" /tmp/bench_smoke.json 2.0; then
    echo "perf smoke attempt 1 failed; re-running benches" >&2
    bench/run_benches.sh build-release /tmp/bench_smoke2.json
    python3 ci/perf_compare.py "$SNAPSHOT" /tmp/bench_smoke.json \
      /tmp/bench_smoke2.json 2.0
  fi
  echo "=== lazy-vs-eager emptiness gate ==="
  python3 ci/lazy_gate.py /tmp/bench_smoke.json 2.0
  echo "=== antichain subsumption gate ==="
  python3 ci/antichain_gate.py /tmp/bench_smoke.json 2.0
  echo "=== parallel frontier scaling gate ==="
  # The fresh run's metadata records this host's core count; the gate only
  # enforces its speedup floors when the host can physically exhibit them.
  python3 ci/parallel_gate.py /tmp/bench_smoke.json 2.0
  echo "=== streaming O(depth)-memory gate ==="
  python3 ci/stream_gate.py /tmp/bench_smoke.json
  echo "=== sharded-cache warm-hit scaling gate ==="
  # Same core-count guard as the parallel gate: floors only bind when this
  # host records >= 4 cores; otherwise the scaling is reported and passes.
  python3 ci/cache_gate.py /tmp/bench_smoke.json 2.0
else
  echo "no bench snapshot; skipping perf smoke"
fi

echo "CI: all green"
