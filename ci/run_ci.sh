#!/usr/bin/env bash
# CI gate: builds the tier-1 suite twice — a plain RelWithDebInfo build and
# an ASan+UBSan build — and runs ctest in both, plus an explicit pass over
# the resource-governance tests (fault-injection sweep, budget semantics,
# malformed-input hardening) under the sanitizers. Any sanitizer report
# aborts the run (abort_on_error=1), so a green exit means zero leaks and
# zero UB across every injected failure point.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-2}"

echo "=== configure + build (RelWithDebInfo) ==="
cmake --preset default >/dev/null
cmake --build --preset default -j "${JOBS}"

echo "=== tier-1 tests (RelWithDebInfo) ==="
ctest --preset default

echo "=== configure + build (ASan + UBSan) ==="
cmake --preset asan >/dev/null
cmake --build --preset asan -j "${JOBS}"

echo "=== tier-1 tests (sanitized) ==="
ctest --preset asan

echo "=== fault-injection sweep (sanitized, verbose) ==="
ctest --preset asan -R "FaultInjection|Budget|Malformed" --output-on-failure

echo "CI: all green"
