#!/usr/bin/env python3
"""Perf-smoke comparator: fails when a fresh bench run regresses >2x.

Usage: perf_compare.py BASELINE.json FRESH.json [max_ratio]

Both files are run_benches.sh aggregates ({"suites": {bin: [runs...]}}).
Entries are matched on (suite, bench, params); entries present on only one
side are reported but do not fail the gate (benchmarks may be added or
retired). The ratio gate is deliberately loose (default 2x) so scheduler
noise on shared CI machines does not flake the build; real regressions from
algorithmic backsliding are well past it.
"""
import json
import sys


def index(doc):
    out = {}
    for suite, runs in doc.get("suites", {}).items():
        for run in runs:
            out[(suite, run["bench"], tuple(run["params"]))] = run["ns_per_op"]
    return out


def main():
    if len(sys.argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        baseline = index(json.load(f))
    with open(sys.argv[2]) as f:
        fresh = index(json.load(f))
    max_ratio = float(sys.argv[3]) if len(sys.argv) > 3 else 2.0

    regressions = []
    for key, base_ns in sorted(baseline.items()):
        if "Parallel" in key[1] or "Contention" in key[1]:
            # Scaling rows: their timing is a function of the host's core
            # count relative to the snapshot host's, not of the code.
            # ci/parallel_gate.py and ci/cache_gate.py own them (each with
            # a core-count guard).
            print(f"note: {key} skipped (scaling row)")
            continue
        if key not in fresh:
            print(f"note: {key} only in baseline (retired?)")
            continue
        new_ns = fresh[key]
        if base_ns <= 0:
            continue
        ratio = new_ns / base_ns
        marker = " <-- REGRESSION" if ratio > max_ratio else ""
        suite, bench, params = key
        print(f"{suite}:{bench}{list(params)}: "
              f"{base_ns:.0f} -> {new_ns:.0f} ns/op ({ratio:.2f}x){marker}")
        if ratio > max_ratio:
            regressions.append(key)
    for key in sorted(set(fresh) - set(baseline)):
        print(f"note: {key} only in fresh run (new benchmark)")

    if regressions:
        print(f"\nperf-smoke FAILED: {len(regressions)} benchmark(s) "
              f"regressed more than {max_ratio}x", file=sys.stderr)
        return 1
    print(f"\nperf-smoke OK: no regression beyond {max_ratio}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
