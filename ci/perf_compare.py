#!/usr/bin/env python3
"""Perf-smoke comparator: fails when a fresh bench run regresses >2x.

Usage: perf_compare.py BASELINE.json FRESH.json [FRESH2.json ...] [max_ratio]

All files are run_benches.sh aggregates ({"suites": {bin: [runs...]}}).
Entries are matched on (suite, bench, params); entries present on only one
side are reported but do not fail the gate (benchmarks may be added or
retired). Each side is reduced to best-of-N before comparing: duplicate
keys inside one file (repeated passes appended by run_benches.sh) take the
minimum ns/op, and when several FRESH files are given the minimum across
all of them is the fresh number. Min-of-N is the right estimator for a
gate — a benchmark's true cost is its fastest observed run; everything
above that is scheduler noise, and noise can only inflate, never deflate,
a min. The ratio gate stays deliberately loose (default 2x) so shared CI
machines do not flake the build; real regressions from algorithmic
backsliding are well past it.
"""
import json
import sys


def index(doc, out=None):
    """Folds one aggregate into a {key: min ns/op} map.

    run_benches.sh may append repeated passes of the same benchmark to one
    suite list; taking the min here (instead of last-write-wins) makes a
    single noisy pass harmless on either side of the comparison.
    """
    if out is None:
        out = {}
    for suite, runs in doc.get("suites", {}).items():
        for run in runs:
            key = (suite, run["bench"], tuple(run["params"]))
            ns = run["ns_per_op"]
            if key not in out or ns < out[key]:
                out[key] = ns
    return out


def load_into(path, out=None):
    with open(path) as f:
        return index(json.load(f), out)


def main():
    args = sys.argv[1:]
    # Trailing numeric argument is the ratio override; everything before it
    # is a file path (BASELINE first, then one or more FRESH runs).
    max_ratio = 2.0
    if args:
        try:
            max_ratio = float(args[-1])
            args = args[:-1]
        except ValueError:
            pass
    if len(args) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    baseline = load_into(args[0])
    fresh = {}
    for path in args[1:]:
        load_into(path, fresh)

    regressions = []
    for key, base_ns in sorted(baseline.items()):
        if "Parallel" in key[1] or "Contention" in key[1]:
            # Scaling rows: their timing is a function of the host's core
            # count relative to the snapshot host's, not of the code.
            # ci/parallel_gate.py and ci/cache_gate.py own them (each with
            # a core-count guard).
            print(f"note: {key} skipped (scaling row)")
            continue
        if key not in fresh:
            print(f"note: {key} only in baseline (retired?)")
            continue
        new_ns = fresh[key]
        if base_ns <= 0:
            continue
        ratio = new_ns / base_ns
        marker = " <-- REGRESSION" if ratio > max_ratio else ""
        suite, bench, params = key
        print(f"{suite}:{bench}{list(params)}: "
              f"{base_ns:.0f} -> {new_ns:.0f} ns/op ({ratio:.2f}x){marker}")
        if ratio > max_ratio:
            regressions.append(key)
    for key in sorted(set(fresh) - set(baseline)):
        print(f"note: {key} only in fresh run (new benchmark)")

    if regressions:
        print(f"\nperf-smoke FAILED: {len(regressions)} benchmark(s) "
              f"regressed more than {max_ratio}x", file=sys.stderr)
        return 1
    print(f"\nperf-smoke OK: no regression beyond {max_ratio}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
