#!/usr/bin/env python3
"""Enforces warm-hit throughput scaling on the sharded compile cache.

Usage: cache_gate.py BENCH.json [min_scaling_at_4]

BM_CacheWarmHitContention rows carry params [threads]; every lookup in the
bench is a warm hit resolved on the lock-free snapshot path, and ns_per_op
is the manual-timed cost of one iteration (threads * kOpsPerThread
lookups). Per-thread op count is constant across rows, so the throughput
scaling factor at N threads over the single-thread row is

    scaling(N) = N * ns_per_op(1) / ns_per_op(N)

With the old single-mutex table the rows convoy and scaling(N) saturates
near 1; with snapshot reads it should track N. The gate requires
scaling(4) >= `min_scaling_at_4` (default 2.0) and, when the recording
host has >= 8 cores, scaling(8) >= 3.0.

The floors only bind when the recorded hardware_concurrency (written by
bench/run_benches.sh into the snapshot's metadata block) is >= 4: a
single-vCPU host can only measure oversubscription, so there the gate
reports the ratios and passes. Missing rows are always an error — the
gate exists to catch the bench silently disappearing as much as the
scaling regressing.
"""

import json
import sys

SUITE = "bench_service"
BENCH = "BM_CacheWarmHitContention"


def rows_of(doc):
    """threads -> ns_per_op for the contention bench."""
    rows = {}
    for row in doc.get("suites", {}).get(SUITE, []):
        params = row.get("params", [])
        if row.get("bench") == BENCH and len(params) == 1:
            rows[int(params[0])] = float(row["ns_per_op"])
    return rows


def main():
    if len(sys.argv) < 2 or len(sys.argv) > 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        doc = json.load(f)
    floor4 = float(sys.argv[2]) if len(sys.argv) == 3 else 2.0

    cores = int(doc.get("metadata", {}).get("hardware_concurrency", 1))
    enforce = cores >= 4
    if not enforce:
        print(f"cache gate: host recorded {cores} core(s); "
              "reporting scaling without enforcing floors")

    rows = rows_of(doc)
    failures = []
    if not rows:
        failures.append(f"{SUITE}: no [threads] rows for {BENCH}")
    base = rows.get(1)
    if rows and (base is None or base <= 0):
        failures.append(f"{SUITE} {BENCH}: missing threads=1 row")
        base = None

    if base is not None:
        floors = {4: floor4}
        if cores >= 8:
            floors[8] = 3.0
        for threads in sorted(t for t in rows if t > 1):
            ns = rows[threads]
            scaling = threads * base / ns if ns > 0 else 0.0
            floor = floors.get(threads)
            gated = enforce and floor is not None
            tag = "GATE" if gated else "info"
            need = f" (need >= {floor:.2f}x)" if gated else ""
            print(f"[{tag}] {SUITE} {BENCH} threads={threads}: "
                  f"base={base:.0f}ns row={ns:.0f}ns "
                  f"scaling={scaling:.2f}x{need}")
            if gated and scaling < floor:
                failures.append(
                    f"{SUITE} {BENCH} threads={threads}: warm-hit scaling "
                    f"{scaling:.2f}x below the {floor:.2f}x floor")

    if failures:
        print("cache gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("cache gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
