#!/usr/bin/env python3
"""Enforces worker-pool scaling on the parallel emptiness benchmarks.

Usage: parallel_gate.py BENCH.json [min_factor_at_4]

For each (suite, bench) below, rows carry params [n, threads] and the
threads=1 row runs the sequential engine, so within-bench ratios

    seq_ns_per_op / parallel_ns_per_op

measure the worker pool directly. At the largest common n the gate
requires the threads=4 row to clear `min_factor_at_4` (default 2.0) and,
when the recording host has >= 8 cores, the threads=8 row to clear 3.0.

The floors only bind when the recorded hardware_concurrency (written by
bench/run_benches.sh into the snapshot's metadata block) is >= 4: a
single-vCPU host can only measure oversubscription, so there the gate
reports the ratios and passes. Missing rows are always an error — the
gate exists to catch the benches silently disappearing as much as the
scaling regressing.
"""

import json
import sys

# (suite, bench) — params are [n, threads].
BENCHES = [
    ("bench_thm18_hardness", "BM_Thm18_InclusionParallel"),
    ("bench_lemma14_scaling", "BM_Lemma14_InclusionParallel"),
    ("bench_lemma14_scaling", "BM_Lemma14_SelfInclusionParallel"),
]


def rows_of(doc, suite, bench):
    """(n, threads) -> ns_per_op for one bench."""
    rows = {}
    for row in doc.get("suites", {}).get(suite, []):
        params = row.get("params", [])
        if row.get("bench") == bench and len(params) == 2:
            rows[(int(params[0]), int(params[1]))] = float(row["ns_per_op"])
    return rows


def main():
    if len(sys.argv) < 2 or len(sys.argv) > 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        doc = json.load(f)
    floor4 = float(sys.argv[2]) if len(sys.argv) == 3 else 2.0

    cores = int(doc.get("metadata", {}).get("hardware_concurrency", 1))
    enforce = cores >= 4
    if not enforce:
        print(f"parallel gate: host recorded {cores} core(s); "
              "reporting ratios without enforcing speedup floors")

    failures = []
    for suite, bench in BENCHES:
        rows = rows_of(doc, suite, bench)
        ns = sorted({n for (n, _) in rows})
        if not ns:
            failures.append(f"{suite}: no [n, threads] rows for {bench}")
            continue
        n = ns[-1]
        seq = rows.get((n, 1))
        if seq is None or seq <= 0:
            failures.append(f"{suite} {bench}: missing threads=1 row at n={n}")
            continue
        floors = {4: floor4}
        if cores >= 8:
            floors[8] = 3.0
        for threads in sorted(t for (m, t) in rows if m == n and t > 1):
            ratio = seq / rows[(n, threads)] if rows[(n, threads)] > 0 else 0.0
            floor = floors.get(threads)
            gated = enforce and floor is not None
            tag = "GATE" if gated else "info"
            need = f" (need >= {floor:.2f}x)" if gated else ""
            print(f"[{tag}] {suite} {bench} n={n} threads={threads}: "
                  f"seq={seq:.0f}ns par={rows[(n, threads)]:.0f}ns "
                  f"speedup={ratio:.2f}x{need}")
            if gated and ratio < floor:
                failures.append(
                    f"{suite} {bench} n={n} threads={threads}: speedup "
                    f"{ratio:.2f}x below the {floor:.2f}x floor")

    if failures:
        print("parallel gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("parallel gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
