#!/usr/bin/env python3
"""Enforces the antichain-on vs antichain-off speedup on the paired
large-universe inclusion benchmarks (DESIGN.md §3e).

Usage: antichain_gate.py BENCH.json [min_factor]

For each (suite, on_bench, off_bench) pair below, the largest parameter
present in BOTH rows is located and the gate requires

    off_ns_per_op >= min_factor * on_ns_per_op

there (default min_factor 2.0). Smaller parameters are reported for
context but not gated — the pruning win compounds with the subset-lattice
size, so the largest common point is the honest one. Unlike the parallel
and cache gates this one carries no core-count guard and is enforced
unconditionally: both sides of each pair are single-threaded runs of the
same engine on the same instance, so the ratio is count-driven (the Off
side explores ~2^k configurations the On side prunes) and survives any
amount of scheduler noise a shared CI box can produce. A missing suite or
pair is an error: the gate exists to catch the benches silently
disappearing as much as the speedup regressing.
"""

import json
import sys

# (suite, antichain-on bench, antichain-off bench)
PAIRS = [
    ("bench_antichain", "BM_AntichainInclusion_On",
     "BM_AntichainInclusion_Off"),
    ("bench_antichain", "BM_AntichainInclusionDense_On",
     "BM_AntichainInclusionDense_Off"),
]


def rows_of(doc, suite, bench):
    rows = {}
    for row in doc.get("suites", {}).get(suite, []):
        if row.get("bench") == bench:
            rows[tuple(row.get("params", []))] = float(row["ns_per_op"])
    return rows


def main():
    if len(sys.argv) < 2 or len(sys.argv) > 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        doc = json.load(f)
    factor = float(sys.argv[2]) if len(sys.argv) == 3 else 2.0

    failures = []
    for suite, on_bench, off_bench in PAIRS:
        on = rows_of(doc, suite, on_bench)
        off = rows_of(doc, suite, off_bench)
        common = sorted(set(on) & set(off))
        if not common:
            failures.append(f"{suite}: no common params for "
                            f"{on_bench} / {off_bench}")
            continue
        for params in common:
            ratio = off[params] / on[params] if on[params] > 0 else 0.0
            gated = params == common[-1]
            tag = "GATE" if gated else "info"
            print(f"[{tag}] {on_bench} params={list(params)}: "
                  f"on={on[params]:.0f}ns off={off[params]:.0f}ns "
                  f"ratio={ratio:.2f}x (need >= {factor:.2f}x at largest)")
            if gated and ratio < factor:
                failures.append(
                    f"{suite} {on_bench}{list(params)}: off/on ratio "
                    f"{ratio:.2f}x below the {factor:.2f}x floor")

    if failures:
        print("antichain gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("antichain gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
