#!/usr/bin/env python3
"""CI overload smoke: invariants over one xtc_loadgen gate-mode document.

xtc_loadgen (gate mode) calibrates the warm-cache sustainable rate, runs a
warm-only baseline at 0.5x, then the mixed warm/cold/hostile schedule at
2x. This script asserts the overload-resilience contract on its output:

 1. Accounting: offered == ok + shed + failed for every run, per class and
    in total. The harness only exits once every submitted future resolved,
    so together these prove zero requests hung or were dropped.
 2. Warm latency: overloaded warm p99 <= 1.5 x the warm SLO (5 x the
    unloaded p99, floored against timer noise). The service enforces the
    SLO through deadline propagation — predicted misses shed at admission,
    late stragglers fail the in-queue expiry check — so ok-response p99
    must sit at or under the SLO; the 1.5 factor covers the latency
    histogram's power-of-two bucket midpoints.
 3. Tiered degradation: the hostile (Theorem 18 inclusion) class was
    served at the approximate tier at least once, and the overload run
    shed — i.e. admission degraded before it rejected, rather than only
    hard-shedding.

Usage: overload_gate.py loadgen.json
"""

import json
import sys


def fail(msg):
    print(f"overload gate: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_accounting(name, run):
    total = (run["ok"], run["shed"], run["failed"])
    if run["offered"] != sum(total):
        fail(f"{name}: offered={run['offered']} != ok+shed+failed={total}")
    for cls_name, cls in run["classes"].items():
        parts = cls["ok"] + cls["shed"] + cls["failed"]
        if cls["offered"] != parts:
            fail(f"{name}/{cls_name}: offered={cls['offered']} != "
                 f"accounted={parts}")


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        doc = json.load(f)
    if doc.get("format") != "xtc-loadgen-v1":
        fail(f"unexpected format {doc.get('format')!r}")

    for name in ("unloaded", "overload"):
        if name not in doc:
            fail(f"missing run {name!r}")
        check_accounting(name, doc[name])

    overload = doc["overload"]
    warm = overload["classes"]["warm"]
    slo = doc["warm_slo_ms"]
    bound = slo * 1.5
    if warm["ok"] == 0:
        fail("overload: no warm request completed at all")
    if warm["p99_ms"] > bound:
        fail(f"overload warm p99 {warm['p99_ms']:.3f}ms > "
             f"{bound:.3f}ms (1.5 x SLO {slo:.3f}ms)")

    hostile = overload["classes"]["hostile"]
    if hostile["tier_approximate"] < 1:
        fail("overload: hostile class never served at the approximate tier "
             "(admission jumped straight to rejection)")
    if overload["shed"] == 0:
        fail("overload run shed nothing — not actually overloaded; "
             "calibration is suspect")

    print(f"overload gate: OK (warm p99 {warm['p99_ms']:.3f}ms <= "
          f"{bound:.3f}ms, hostile approximate={hostile['tier_approximate']}, "
          f"shed={overload['shed']}/{overload['offered']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
