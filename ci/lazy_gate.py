#!/usr/bin/env python3
"""Enforces the lazy-vs-eager speedup on the paired emptiness benchmarks.

Usage: lazy_gate.py BENCH.json [min_factor]

For each (suite, lazy_bench, eager_bench) pair below, the largest parameter
present in BOTH rows is located and the gate requires

    eager_ns_per_op >= min_factor * lazy_ns_per_op

there (default min_factor 2.0). Smaller parameters are reported for context
but not gated — the lazy engine's advantage compounds with instance size,
so the largest common point is the honest one. A missing suite or pair is
an error: the gate exists to catch the benches silently disappearing as
much as the speedup regressing.
"""

import json
import sys

# (suite, lazy bench, eager bench)
PAIRS = [
    ("bench_thm18_hardness", "BM_Thm18_InclusionLazy", "BM_Thm18_InclusionEager"),
    ("bench_lemma14_scaling", "BM_Lemma14_InclusionLazy", "BM_Lemma14_InclusionEager"),
]


def rows_of(doc, suite, bench):
    rows = {}
    for row in doc.get("suites", {}).get(suite, []):
        if row.get("bench") == bench:
            rows[tuple(row.get("params", []))] = float(row["ns_per_op"])
    return rows


def main():
    if len(sys.argv) < 2 or len(sys.argv) > 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        doc = json.load(f)
    factor = float(sys.argv[2]) if len(sys.argv) == 3 else 2.0

    failures = []
    for suite, lazy_bench, eager_bench in PAIRS:
        lazy = rows_of(doc, suite, lazy_bench)
        eager = rows_of(doc, suite, eager_bench)
        common = sorted(set(lazy) & set(eager))
        if not common:
            failures.append(f"{suite}: no common params for "
                            f"{lazy_bench} / {eager_bench}")
            continue
        for params in common:
            ratio = eager[params] / lazy[params] if lazy[params] > 0 else 0.0
            gated = params == common[-1]
            tag = "GATE" if gated else "info"
            print(f"[{tag}] {suite} params={list(params)}: "
                  f"lazy={lazy[params]:.0f}ns eager={eager[params]:.0f}ns "
                  f"ratio={ratio:.2f}x (need >= {factor:.2f}x at largest)")
            if gated and ratio < factor:
                failures.append(
                    f"{suite} {lazy_bench}{list(params)}: eager/lazy ratio "
                    f"{ratio:.2f}x below the {factor:.2f}x floor")

    if failures:
        print("lazy gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("lazy gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
