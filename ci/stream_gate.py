#!/usr/bin/env python3
"""Enforces the O(depth)-memory claim on the bench_stream suite.

Usage: stream_gate.py BENCH.json

For each (streaming bench, DOM baseline) pair the gate locates the smallest
and largest document sizes present in both rows (the bench registers a
>= 4x span) and requires, over that span:

  1. streaming peak_bytes grows by at most STREAM_FLAT (the streaming path
     holds one DFA state per open element — its peak must not track the
     document);
  2. DOM peak_bytes grows by at least DOM_GROWTH (the baseline builds the
     whole tree, so its peak must track the document — if it stops growing
     the comparison is measuring something else, e.g. a VmHWM reset bug);
  3. at the largest size, streaming ns_per_op <= ns floor of
     1/THROUGHPUT_FLOOR x the DOM row — O(depth) memory must not cost an
     order of magnitude in throughput.

A missing suite or row is an error: the gate exists to catch the benches
silently disappearing as much as the claims regressing.
"""

import json
import sys

STREAM_FLAT = 1.2        # max allowed streaming peak growth over the span
DOM_GROWTH = 2.0         # min required DOM peak growth over the span
THROUGHPUT_FLOOR = 0.5   # streaming ops/s >= this fraction of DOM ops/s

# (streaming bench, DOM baseline) — both live in the bench_stream suite.
PAIRS = [
    ("BM_StreamValidate", "BM_DomValidate"),
    ("BM_StreamTransform", "BM_DomTransform"),
]


def rows_of(doc, bench):
    rows = {}
    for row in doc.get("suites", {}).get("bench_stream", []):
        if row.get("bench") == bench and len(row.get("params", [])) == 1:
            rows[row["params"][0]] = (float(row["ns_per_op"]),
                                      float(row["peak_bytes"]))
    return rows


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        doc = json.load(f)

    failures = []
    for stream_bench, dom_bench in PAIRS:
        stream = rows_of(doc, stream_bench)
        dom = rows_of(doc, dom_bench)
        common = sorted(set(stream) & set(dom))
        if len(common) < 2:
            failures.append(f"bench_stream: need >= 2 common sizes for "
                            f"{stream_bench} / {dom_bench}, got {common}")
            continue
        lo, hi = common[0], common[-1]
        if hi < 4 * lo:
            failures.append(f"{stream_bench}: size span {lo}..{hi} is below "
                            f"the required 4x sweep")

        s_growth = stream[hi][1] / stream[lo][1] if stream[lo][1] else 0.0
        d_growth = dom[hi][1] / dom[lo][1] if dom[lo][1] else 0.0
        speed = dom[hi][0] / stream[hi][0] if stream[hi][0] else 0.0
        print(f"[GATE] {stream_bench} n={lo}..{hi}: "
              f"stream peak {stream[lo][1] / 1e6:.1f}->{stream[hi][1] / 1e6:.1f}MB "
              f"({s_growth:.2f}x, need <= {STREAM_FLAT:.2f}x), "
              f"DOM peak {dom[lo][1] / 1e6:.1f}->{dom[hi][1] / 1e6:.1f}MB "
              f"({d_growth:.2f}x, need >= {DOM_GROWTH:.2f}x), "
              f"throughput {speed:.2f}x DOM "
              f"(need >= {THROUGHPUT_FLOOR:.2f}x)")
        if s_growth > STREAM_FLAT:
            failures.append(f"{stream_bench}: streaming peak grew "
                            f"{s_growth:.2f}x over {lo}->{hi} "
                            f"(limit {STREAM_FLAT:.2f}x) — memory is no "
                            f"longer O(depth)")
        if d_growth < DOM_GROWTH:
            failures.append(f"{dom_bench}: DOM peak grew only "
                            f"{d_growth:.2f}x over {lo}->{hi} "
                            f"(floor {DOM_GROWTH:.2f}x) — baseline is not "
                            f"exercising document-sized memory")
        if speed < THROUGHPUT_FLOOR:
            failures.append(f"{stream_bench}: throughput {speed:.2f}x DOM at "
                            f"n={hi} (floor {THROUGHPUT_FLOOR:.2f}x)")

    if failures:
        print("stream gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("stream gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
