file(REMOVE_RECURSE
  "CMakeFiles/xtc_tree.dir/tree/codec.cc.o"
  "CMakeFiles/xtc_tree.dir/tree/codec.cc.o.d"
  "CMakeFiles/xtc_tree.dir/tree/hashcons.cc.o"
  "CMakeFiles/xtc_tree.dir/tree/hashcons.cc.o.d"
  "CMakeFiles/xtc_tree.dir/tree/tree.cc.o"
  "CMakeFiles/xtc_tree.dir/tree/tree.cc.o.d"
  "libxtc_tree.a"
  "libxtc_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtc_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
