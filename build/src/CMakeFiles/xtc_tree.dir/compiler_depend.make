# Empty compiler generated dependencies file for xtc_tree.
# This may be replaced when dependencies are built.
