
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tree/codec.cc" "src/CMakeFiles/xtc_tree.dir/tree/codec.cc.o" "gcc" "src/CMakeFiles/xtc_tree.dir/tree/codec.cc.o.d"
  "/root/repo/src/tree/hashcons.cc" "src/CMakeFiles/xtc_tree.dir/tree/hashcons.cc.o" "gcc" "src/CMakeFiles/xtc_tree.dir/tree/hashcons.cc.o.d"
  "/root/repo/src/tree/tree.cc" "src/CMakeFiles/xtc_tree.dir/tree/tree.cc.o" "gcc" "src/CMakeFiles/xtc_tree.dir/tree/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xtc_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
