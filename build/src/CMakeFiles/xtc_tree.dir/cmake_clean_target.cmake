file(REMOVE_RECURSE
  "libxtc_tree.a"
)
