file(REMOVE_RECURSE
  "libxtc_nta.a"
)
