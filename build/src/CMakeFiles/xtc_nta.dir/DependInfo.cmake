
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nta/analysis.cc" "src/CMakeFiles/xtc_nta.dir/nta/analysis.cc.o" "gcc" "src/CMakeFiles/xtc_nta.dir/nta/analysis.cc.o.d"
  "/root/repo/src/nta/determinize.cc" "src/CMakeFiles/xtc_nta.dir/nta/determinize.cc.o" "gcc" "src/CMakeFiles/xtc_nta.dir/nta/determinize.cc.o.d"
  "/root/repo/src/nta/nta.cc" "src/CMakeFiles/xtc_nta.dir/nta/nta.cc.o" "gcc" "src/CMakeFiles/xtc_nta.dir/nta/nta.cc.o.d"
  "/root/repo/src/nta/product.cc" "src/CMakeFiles/xtc_nta.dir/nta/product.cc.o" "gcc" "src/CMakeFiles/xtc_nta.dir/nta/product.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xtc_fa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtc_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtc_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtc_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
