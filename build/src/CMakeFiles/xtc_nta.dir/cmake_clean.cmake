file(REMOVE_RECURSE
  "CMakeFiles/xtc_nta.dir/nta/analysis.cc.o"
  "CMakeFiles/xtc_nta.dir/nta/analysis.cc.o.d"
  "CMakeFiles/xtc_nta.dir/nta/determinize.cc.o"
  "CMakeFiles/xtc_nta.dir/nta/determinize.cc.o.d"
  "CMakeFiles/xtc_nta.dir/nta/nta.cc.o"
  "CMakeFiles/xtc_nta.dir/nta/nta.cc.o.d"
  "CMakeFiles/xtc_nta.dir/nta/product.cc.o"
  "CMakeFiles/xtc_nta.dir/nta/product.cc.o.d"
  "libxtc_nta.a"
  "libxtc_nta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtc_nta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
