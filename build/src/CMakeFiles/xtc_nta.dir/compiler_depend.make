# Empty compiler generated dependencies file for xtc_nta.
# This may be replaced when dependencies are built.
