file(REMOVE_RECURSE
  "CMakeFiles/xtc_td.dir/td/classes.cc.o"
  "CMakeFiles/xtc_td.dir/td/classes.cc.o.d"
  "CMakeFiles/xtc_td.dir/td/compile_selectors.cc.o"
  "CMakeFiles/xtc_td.dir/td/compile_selectors.cc.o.d"
  "CMakeFiles/xtc_td.dir/td/exec.cc.o"
  "CMakeFiles/xtc_td.dir/td/exec.cc.o.d"
  "CMakeFiles/xtc_td.dir/td/transducer.cc.o"
  "CMakeFiles/xtc_td.dir/td/transducer.cc.o.d"
  "CMakeFiles/xtc_td.dir/td/widths.cc.o"
  "CMakeFiles/xtc_td.dir/td/widths.cc.o.d"
  "CMakeFiles/xtc_td.dir/td/xslt_export.cc.o"
  "CMakeFiles/xtc_td.dir/td/xslt_export.cc.o.d"
  "libxtc_td.a"
  "libxtc_td.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtc_td.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
