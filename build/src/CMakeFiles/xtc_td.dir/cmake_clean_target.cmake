file(REMOVE_RECURSE
  "libxtc_td.a"
)
