
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/td/classes.cc" "src/CMakeFiles/xtc_td.dir/td/classes.cc.o" "gcc" "src/CMakeFiles/xtc_td.dir/td/classes.cc.o.d"
  "/root/repo/src/td/compile_selectors.cc" "src/CMakeFiles/xtc_td.dir/td/compile_selectors.cc.o" "gcc" "src/CMakeFiles/xtc_td.dir/td/compile_selectors.cc.o.d"
  "/root/repo/src/td/exec.cc" "src/CMakeFiles/xtc_td.dir/td/exec.cc.o" "gcc" "src/CMakeFiles/xtc_td.dir/td/exec.cc.o.d"
  "/root/repo/src/td/transducer.cc" "src/CMakeFiles/xtc_td.dir/td/transducer.cc.o" "gcc" "src/CMakeFiles/xtc_td.dir/td/transducer.cc.o.d"
  "/root/repo/src/td/widths.cc" "src/CMakeFiles/xtc_td.dir/td/widths.cc.o" "gcc" "src/CMakeFiles/xtc_td.dir/td/widths.cc.o.d"
  "/root/repo/src/td/xslt_export.cc" "src/CMakeFiles/xtc_td.dir/td/xslt_export.cc.o" "gcc" "src/CMakeFiles/xtc_td.dir/td/xslt_export.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xtc_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtc_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtc_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtc_fa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtc_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
