# Empty compiler generated dependencies file for xtc_td.
# This may be replaced when dependencies are built.
