# Empty compiler generated dependencies file for xtc_core.
# This may be replaced when dependencies are built.
