
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/almost_always.cc" "src/CMakeFiles/xtc_core.dir/core/almost_always.cc.o" "gcc" "src/CMakeFiles/xtc_core.dir/core/almost_always.cc.o.d"
  "/root/repo/src/core/approximate.cc" "src/CMakeFiles/xtc_core.dir/core/approximate.cc.o" "gcc" "src/CMakeFiles/xtc_core.dir/core/approximate.cc.o.d"
  "/root/repo/src/core/brute_force.cc" "src/CMakeFiles/xtc_core.dir/core/brute_force.cc.o" "gcc" "src/CMakeFiles/xtc_core.dir/core/brute_force.cc.o.d"
  "/root/repo/src/core/explicit_nta.cc" "src/CMakeFiles/xtc_core.dir/core/explicit_nta.cc.o" "gcc" "src/CMakeFiles/xtc_core.dir/core/explicit_nta.cc.o.d"
  "/root/repo/src/core/hardness.cc" "src/CMakeFiles/xtc_core.dir/core/hardness.cc.o" "gcc" "src/CMakeFiles/xtc_core.dir/core/hardness.cc.o.d"
  "/root/repo/src/core/minvast.cc" "src/CMakeFiles/xtc_core.dir/core/minvast.cc.o" "gcc" "src/CMakeFiles/xtc_core.dir/core/minvast.cc.o.d"
  "/root/repo/src/core/nfa_dtd.cc" "src/CMakeFiles/xtc_core.dir/core/nfa_dtd.cc.o" "gcc" "src/CMakeFiles/xtc_core.dir/core/nfa_dtd.cc.o.d"
  "/root/repo/src/core/paper_examples.cc" "src/CMakeFiles/xtc_core.dir/core/paper_examples.cc.o" "gcc" "src/CMakeFiles/xtc_core.dir/core/paper_examples.cc.o.d"
  "/root/repo/src/core/reachable.cc" "src/CMakeFiles/xtc_core.dir/core/reachable.cc.o" "gcc" "src/CMakeFiles/xtc_core.dir/core/reachable.cc.o.d"
  "/root/repo/src/core/relab.cc" "src/CMakeFiles/xtc_core.dir/core/relab.cc.o" "gcc" "src/CMakeFiles/xtc_core.dir/core/relab.cc.o.d"
  "/root/repo/src/core/replus.cc" "src/CMakeFiles/xtc_core.dir/core/replus.cc.o" "gcc" "src/CMakeFiles/xtc_core.dir/core/replus.cc.o.d"
  "/root/repo/src/core/trac.cc" "src/CMakeFiles/xtc_core.dir/core/trac.cc.o" "gcc" "src/CMakeFiles/xtc_core.dir/core/trac.cc.o.d"
  "/root/repo/src/core/typecheck.cc" "src/CMakeFiles/xtc_core.dir/core/typecheck.cc.o" "gcc" "src/CMakeFiles/xtc_core.dir/core/typecheck.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xtc_fa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtc_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtc_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtc_nta.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtc_td.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtc_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtc_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
