file(REMOVE_RECURSE
  "libxtc_core.a"
)
