file(REMOVE_RECURSE
  "CMakeFiles/xtc_core.dir/core/almost_always.cc.o"
  "CMakeFiles/xtc_core.dir/core/almost_always.cc.o.d"
  "CMakeFiles/xtc_core.dir/core/approximate.cc.o"
  "CMakeFiles/xtc_core.dir/core/approximate.cc.o.d"
  "CMakeFiles/xtc_core.dir/core/brute_force.cc.o"
  "CMakeFiles/xtc_core.dir/core/brute_force.cc.o.d"
  "CMakeFiles/xtc_core.dir/core/explicit_nta.cc.o"
  "CMakeFiles/xtc_core.dir/core/explicit_nta.cc.o.d"
  "CMakeFiles/xtc_core.dir/core/hardness.cc.o"
  "CMakeFiles/xtc_core.dir/core/hardness.cc.o.d"
  "CMakeFiles/xtc_core.dir/core/minvast.cc.o"
  "CMakeFiles/xtc_core.dir/core/minvast.cc.o.d"
  "CMakeFiles/xtc_core.dir/core/nfa_dtd.cc.o"
  "CMakeFiles/xtc_core.dir/core/nfa_dtd.cc.o.d"
  "CMakeFiles/xtc_core.dir/core/paper_examples.cc.o"
  "CMakeFiles/xtc_core.dir/core/paper_examples.cc.o.d"
  "CMakeFiles/xtc_core.dir/core/reachable.cc.o"
  "CMakeFiles/xtc_core.dir/core/reachable.cc.o.d"
  "CMakeFiles/xtc_core.dir/core/relab.cc.o"
  "CMakeFiles/xtc_core.dir/core/relab.cc.o.d"
  "CMakeFiles/xtc_core.dir/core/replus.cc.o"
  "CMakeFiles/xtc_core.dir/core/replus.cc.o.d"
  "CMakeFiles/xtc_core.dir/core/trac.cc.o"
  "CMakeFiles/xtc_core.dir/core/trac.cc.o.d"
  "CMakeFiles/xtc_core.dir/core/typecheck.cc.o"
  "CMakeFiles/xtc_core.dir/core/typecheck.cc.o.d"
  "libxtc_core.a"
  "libxtc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
