file(REMOVE_RECURSE
  "libxtc_workload.a"
)
