
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/families.cc" "src/CMakeFiles/xtc_workload.dir/workload/families.cc.o" "gcc" "src/CMakeFiles/xtc_workload.dir/workload/families.cc.o.d"
  "/root/repo/src/workload/generators.cc" "src/CMakeFiles/xtc_workload.dir/workload/generators.cc.o" "gcc" "src/CMakeFiles/xtc_workload.dir/workload/generators.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xtc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtc_nta.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtc_td.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtc_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtc_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtc_fa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtc_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtc_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
