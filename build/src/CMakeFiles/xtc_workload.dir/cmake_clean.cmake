file(REMOVE_RECURSE
  "CMakeFiles/xtc_workload.dir/workload/families.cc.o"
  "CMakeFiles/xtc_workload.dir/workload/families.cc.o.d"
  "CMakeFiles/xtc_workload.dir/workload/generators.cc.o"
  "CMakeFiles/xtc_workload.dir/workload/generators.cc.o.d"
  "libxtc_workload.a"
  "libxtc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
