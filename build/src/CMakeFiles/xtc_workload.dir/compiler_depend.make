# Empty compiler generated dependencies file for xtc_workload.
# This may be replaced when dependencies are built.
