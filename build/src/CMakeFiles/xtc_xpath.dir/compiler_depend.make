# Empty compiler generated dependencies file for xtc_xpath.
# This may be replaced when dependencies are built.
