
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xpath/ast.cc" "src/CMakeFiles/xtc_xpath.dir/xpath/ast.cc.o" "gcc" "src/CMakeFiles/xtc_xpath.dir/xpath/ast.cc.o.d"
  "/root/repo/src/xpath/eval.cc" "src/CMakeFiles/xtc_xpath.dir/xpath/eval.cc.o" "gcc" "src/CMakeFiles/xtc_xpath.dir/xpath/eval.cc.o.d"
  "/root/repo/src/xpath/parser.cc" "src/CMakeFiles/xtc_xpath.dir/xpath/parser.cc.o" "gcc" "src/CMakeFiles/xtc_xpath.dir/xpath/parser.cc.o.d"
  "/root/repo/src/xpath/to_dfa.cc" "src/CMakeFiles/xtc_xpath.dir/xpath/to_dfa.cc.o" "gcc" "src/CMakeFiles/xtc_xpath.dir/xpath/to_dfa.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xtc_fa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtc_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtc_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
