file(REMOVE_RECURSE
  "libxtc_xpath.a"
)
