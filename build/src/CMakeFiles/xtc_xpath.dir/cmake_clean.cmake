file(REMOVE_RECURSE
  "CMakeFiles/xtc_xpath.dir/xpath/ast.cc.o"
  "CMakeFiles/xtc_xpath.dir/xpath/ast.cc.o.d"
  "CMakeFiles/xtc_xpath.dir/xpath/eval.cc.o"
  "CMakeFiles/xtc_xpath.dir/xpath/eval.cc.o.d"
  "CMakeFiles/xtc_xpath.dir/xpath/parser.cc.o"
  "CMakeFiles/xtc_xpath.dir/xpath/parser.cc.o.d"
  "CMakeFiles/xtc_xpath.dir/xpath/to_dfa.cc.o"
  "CMakeFiles/xtc_xpath.dir/xpath/to_dfa.cc.o.d"
  "libxtc_xpath.a"
  "libxtc_xpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtc_xpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
