
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fa/dfa.cc" "src/CMakeFiles/xtc_fa.dir/fa/dfa.cc.o" "gcc" "src/CMakeFiles/xtc_fa.dir/fa/dfa.cc.o.d"
  "/root/repo/src/fa/eps_nfa.cc" "src/CMakeFiles/xtc_fa.dir/fa/eps_nfa.cc.o" "gcc" "src/CMakeFiles/xtc_fa.dir/fa/eps_nfa.cc.o.d"
  "/root/repo/src/fa/nfa.cc" "src/CMakeFiles/xtc_fa.dir/fa/nfa.cc.o" "gcc" "src/CMakeFiles/xtc_fa.dir/fa/nfa.cc.o.d"
  "/root/repo/src/fa/regex.cc" "src/CMakeFiles/xtc_fa.dir/fa/regex.cc.o" "gcc" "src/CMakeFiles/xtc_fa.dir/fa/regex.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xtc_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
