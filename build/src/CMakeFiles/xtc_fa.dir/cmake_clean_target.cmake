file(REMOVE_RECURSE
  "libxtc_fa.a"
)
