file(REMOVE_RECURSE
  "CMakeFiles/xtc_fa.dir/fa/dfa.cc.o"
  "CMakeFiles/xtc_fa.dir/fa/dfa.cc.o.d"
  "CMakeFiles/xtc_fa.dir/fa/eps_nfa.cc.o"
  "CMakeFiles/xtc_fa.dir/fa/eps_nfa.cc.o.d"
  "CMakeFiles/xtc_fa.dir/fa/nfa.cc.o"
  "CMakeFiles/xtc_fa.dir/fa/nfa.cc.o.d"
  "CMakeFiles/xtc_fa.dir/fa/regex.cc.o"
  "CMakeFiles/xtc_fa.dir/fa/regex.cc.o.d"
  "libxtc_fa.a"
  "libxtc_fa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtc_fa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
