# Empty dependencies file for xtc_fa.
# This may be replaced when dependencies are built.
