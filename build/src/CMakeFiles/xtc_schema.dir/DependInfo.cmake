
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schema/dtd.cc" "src/CMakeFiles/xtc_schema.dir/schema/dtd.cc.o" "gcc" "src/CMakeFiles/xtc_schema.dir/schema/dtd.cc.o.d"
  "/root/repo/src/schema/re_plus.cc" "src/CMakeFiles/xtc_schema.dir/schema/re_plus.cc.o" "gcc" "src/CMakeFiles/xtc_schema.dir/schema/re_plus.cc.o.d"
  "/root/repo/src/schema/witness.cc" "src/CMakeFiles/xtc_schema.dir/schema/witness.cc.o" "gcc" "src/CMakeFiles/xtc_schema.dir/schema/witness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xtc_fa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtc_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xtc_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
