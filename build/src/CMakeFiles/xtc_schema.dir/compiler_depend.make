# Empty compiler generated dependencies file for xtc_schema.
# This may be replaced when dependencies are built.
