file(REMOVE_RECURSE
  "CMakeFiles/xtc_schema.dir/schema/dtd.cc.o"
  "CMakeFiles/xtc_schema.dir/schema/dtd.cc.o.d"
  "CMakeFiles/xtc_schema.dir/schema/re_plus.cc.o"
  "CMakeFiles/xtc_schema.dir/schema/re_plus.cc.o.d"
  "CMakeFiles/xtc_schema.dir/schema/witness.cc.o"
  "CMakeFiles/xtc_schema.dir/schema/witness.cc.o.d"
  "libxtc_schema.a"
  "libxtc_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtc_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
