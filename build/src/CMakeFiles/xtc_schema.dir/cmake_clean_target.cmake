file(REMOVE_RECURSE
  "libxtc_schema.a"
)
