# Empty dependencies file for xtc_base.
# This may be replaced when dependencies are built.
