file(REMOVE_RECURSE
  "CMakeFiles/xtc_base.dir/base/arena.cc.o"
  "CMakeFiles/xtc_base.dir/base/arena.cc.o.d"
  "CMakeFiles/xtc_base.dir/base/status.cc.o"
  "CMakeFiles/xtc_base.dir/base/status.cc.o.d"
  "libxtc_base.a"
  "libxtc_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtc_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
