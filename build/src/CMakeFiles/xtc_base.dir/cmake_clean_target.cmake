file(REMOVE_RECURSE
  "libxtc_base.a"
)
