# Empty dependencies file for relab_test.
# This may be replaced when dependencies are built.
