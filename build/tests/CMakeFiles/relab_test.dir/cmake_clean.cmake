file(REMOVE_RECURSE
  "CMakeFiles/relab_test.dir/relab_test.cc.o"
  "CMakeFiles/relab_test.dir/relab_test.cc.o.d"
  "relab_test"
  "relab_test.pdb"
  "relab_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relab_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
