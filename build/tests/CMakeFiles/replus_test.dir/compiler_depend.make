# Empty compiler generated dependencies file for replus_test.
# This may be replaced when dependencies are built.
