file(REMOVE_RECURSE
  "CMakeFiles/replus_test.dir/replus_test.cc.o"
  "CMakeFiles/replus_test.dir/replus_test.cc.o.d"
  "replus_test"
  "replus_test.pdb"
  "replus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
