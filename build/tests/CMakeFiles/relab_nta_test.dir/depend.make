# Empty dependencies file for relab_nta_test.
# This may be replaced when dependencies are built.
