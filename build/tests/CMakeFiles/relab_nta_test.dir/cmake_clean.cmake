file(REMOVE_RECURSE
  "CMakeFiles/relab_nta_test.dir/relab_nta_test.cc.o"
  "CMakeFiles/relab_nta_test.dir/relab_nta_test.cc.o.d"
  "relab_nta_test"
  "relab_nta_test.pdb"
  "relab_nta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relab_nta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
