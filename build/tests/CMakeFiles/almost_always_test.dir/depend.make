# Empty dependencies file for almost_always_test.
# This may be replaced when dependencies are built.
