file(REMOVE_RECURSE
  "CMakeFiles/almost_always_test.dir/almost_always_test.cc.o"
  "CMakeFiles/almost_always_test.dir/almost_always_test.cc.o.d"
  "almost_always_test"
  "almost_always_test.pdb"
  "almost_always_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/almost_always_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
