file(REMOVE_RECURSE
  "CMakeFiles/nta_test.dir/nta_test.cc.o"
  "CMakeFiles/nta_test.dir/nta_test.cc.o.d"
  "nta_test"
  "nta_test.pdb"
  "nta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
