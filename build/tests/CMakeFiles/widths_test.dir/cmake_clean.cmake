file(REMOVE_RECURSE
  "CMakeFiles/widths_test.dir/widths_test.cc.o"
  "CMakeFiles/widths_test.dir/widths_test.cc.o.d"
  "widths_test"
  "widths_test.pdb"
  "widths_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/widths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
