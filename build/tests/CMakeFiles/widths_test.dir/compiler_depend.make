# Empty compiler generated dependencies file for widths_test.
# This may be replaced when dependencies are built.
