# Empty compiler generated dependencies file for fa_property_test.
# This may be replaced when dependencies are built.
