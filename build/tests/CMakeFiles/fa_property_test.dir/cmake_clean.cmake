file(REMOVE_RECURSE
  "CMakeFiles/fa_property_test.dir/fa_property_test.cc.o"
  "CMakeFiles/fa_property_test.dir/fa_property_test.cc.o.d"
  "fa_property_test"
  "fa_property_test.pdb"
  "fa_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fa_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
