file(REMOVE_RECURSE
  "CMakeFiles/explicit_nta_test.dir/explicit_nta_test.cc.o"
  "CMakeFiles/explicit_nta_test.dir/explicit_nta_test.cc.o.d"
  "explicit_nta_test"
  "explicit_nta_test.pdb"
  "explicit_nta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explicit_nta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
