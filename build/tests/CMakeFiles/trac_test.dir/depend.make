# Empty dependencies file for trac_test.
# This may be replaced when dependencies are built.
