file(REMOVE_RECURSE
  "CMakeFiles/trac_test.dir/trac_test.cc.o"
  "CMakeFiles/trac_test.dir/trac_test.cc.o.d"
  "trac_test"
  "trac_test.pdb"
  "trac_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
