# Empty compiler generated dependencies file for eps_nfa_test.
# This may be replaced when dependencies are built.
