file(REMOVE_RECURSE
  "CMakeFiles/eps_nfa_test.dir/eps_nfa_test.cc.o"
  "CMakeFiles/eps_nfa_test.dir/eps_nfa_test.cc.o.d"
  "eps_nfa_test"
  "eps_nfa_test.pdb"
  "eps_nfa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eps_nfa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
