file(REMOVE_RECURSE
  "CMakeFiles/trac_edge_test.dir/trac_edge_test.cc.o"
  "CMakeFiles/trac_edge_test.dir/trac_edge_test.cc.o.d"
  "trac_edge_test"
  "trac_edge_test.pdb"
  "trac_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trac_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
