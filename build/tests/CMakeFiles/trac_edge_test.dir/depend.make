# Empty dependencies file for trac_edge_test.
# This may be replaced when dependencies are built.
