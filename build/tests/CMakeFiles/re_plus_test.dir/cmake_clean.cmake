file(REMOVE_RECURSE
  "CMakeFiles/re_plus_test.dir/re_plus_test.cc.o"
  "CMakeFiles/re_plus_test.dir/re_plus_test.cc.o.d"
  "re_plus_test"
  "re_plus_test.pdb"
  "re_plus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re_plus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
