# Empty compiler generated dependencies file for re_plus_test.
# This may be replaced when dependencies are built.
