file(REMOVE_RECURSE
  "CMakeFiles/reachable_test.dir/reachable_test.cc.o"
  "CMakeFiles/reachable_test.dir/reachable_test.cc.o.d"
  "reachable_test"
  "reachable_test.pdb"
  "reachable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reachable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
