# Empty dependencies file for reachable_test.
# This may be replaced when dependencies are built.
