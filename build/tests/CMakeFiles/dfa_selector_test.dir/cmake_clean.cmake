file(REMOVE_RECURSE
  "CMakeFiles/dfa_selector_test.dir/dfa_selector_test.cc.o"
  "CMakeFiles/dfa_selector_test.dir/dfa_selector_test.cc.o.d"
  "dfa_selector_test"
  "dfa_selector_test.pdb"
  "dfa_selector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfa_selector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
