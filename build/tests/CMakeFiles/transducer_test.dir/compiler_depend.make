# Empty compiler generated dependencies file for transducer_test.
# This may be replaced when dependencies are built.
