# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/arena_test[1]_include.cmake")
include("/root/repo/build/tests/status_test[1]_include.cmake")
include("/root/repo/build/tests/nfa_test[1]_include.cmake")
include("/root/repo/build/tests/dfa_test[1]_include.cmake")
include("/root/repo/build/tests/regex_test[1]_include.cmake")
include("/root/repo/build/tests/tree_test[1]_include.cmake")
include("/root/repo/build/tests/re_plus_test[1]_include.cmake")
include("/root/repo/build/tests/dtd_test[1]_include.cmake")
include("/root/repo/build/tests/nta_test[1]_include.cmake")
include("/root/repo/build/tests/transducer_test[1]_include.cmake")
include("/root/repo/build/tests/widths_test[1]_include.cmake")
include("/root/repo/build/tests/xpath_test[1]_include.cmake")
include("/root/repo/build/tests/trac_test[1]_include.cmake")
include("/root/repo/build/tests/replus_test[1]_include.cmake")
include("/root/repo/build/tests/relab_test[1]_include.cmake")
include("/root/repo/build/tests/explicit_nta_test[1]_include.cmake")
include("/root/repo/build/tests/almost_always_test[1]_include.cmake")
include("/root/repo/build/tests/hardness_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/approximate_test[1]_include.cmake")
include("/root/repo/build/tests/eps_nfa_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/dfa_selector_test[1]_include.cmake")
include("/root/repo/build/tests/alphabet_test[1]_include.cmake")
include("/root/repo/build/tests/trac_edge_test[1]_include.cmake")
include("/root/repo/build/tests/reachable_test[1]_include.cmake")
include("/root/repo/build/tests/fa_property_test[1]_include.cmake")
include("/root/repo/build/tests/relab_nta_test[1]_include.cmake")
