file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_filtering.dir/bench_fig3_filtering.cc.o"
  "CMakeFiles/bench_fig3_filtering.dir/bench_fig3_filtering.cc.o.d"
  "bench_fig3_filtering"
  "bench_fig3_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
