# Empty dependencies file for bench_fig3_filtering.
# This may be replaced when dependencies are built.
