# Empty dependencies file for bench_thm28_xpath_hardness.
# This may be replaced when dependencies are built.
