file(REMOVE_RECURSE
  "CMakeFiles/bench_thm28_xpath_hardness.dir/bench_thm28_xpath_hardness.cc.o"
  "CMakeFiles/bench_thm28_xpath_hardness.dir/bench_thm28_xpath_hardness.cc.o.d"
  "bench_thm28_xpath_hardness"
  "bench_thm28_xpath_hardness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm28_xpath_hardness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
