# Empty compiler generated dependencies file for bench_almost_always.
# This may be replaced when dependencies are built.
