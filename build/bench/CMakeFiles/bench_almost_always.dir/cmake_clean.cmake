file(REMOVE_RECURSE
  "CMakeFiles/bench_almost_always.dir/bench_almost_always.cc.o"
  "CMakeFiles/bench_almost_always.dir/bench_almost_always.cc.o.d"
  "bench_almost_always"
  "bench_almost_always.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_almost_always.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
