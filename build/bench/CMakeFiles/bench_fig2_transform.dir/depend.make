# Empty dependencies file for bench_fig2_transform.
# This may be replaced when dependencies are built.
