# Empty dependencies file for bench_lemma14_scaling.
# This may be replaced when dependencies are built.
