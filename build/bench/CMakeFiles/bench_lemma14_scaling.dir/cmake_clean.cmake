file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma14_scaling.dir/bench_lemma14_scaling.cc.o"
  "CMakeFiles/bench_lemma14_scaling.dir/bench_lemma14_scaling.cc.o.d"
  "bench_lemma14_scaling"
  "bench_lemma14_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma14_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
