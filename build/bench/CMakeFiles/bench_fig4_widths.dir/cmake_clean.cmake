file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_widths.dir/bench_fig4_widths.cc.o"
  "CMakeFiles/bench_fig4_widths.dir/bench_fig4_widths.cc.o.d"
  "bench_fig4_widths"
  "bench_fig4_widths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_widths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
