# Empty compiler generated dependencies file for bench_thm18_hardness.
# This may be replaced when dependencies are built.
