file(REMOVE_RECURSE
  "CMakeFiles/bench_approximate.dir/bench_approximate.cc.o"
  "CMakeFiles/bench_approximate.dir/bench_approximate.cc.o.d"
  "bench_approximate"
  "bench_approximate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_approximate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
