file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_frontier.dir/bench_table1_frontier.cc.o"
  "CMakeFiles/bench_table1_frontier.dir/bench_table1_frontier.cc.o.d"
  "bench_table1_frontier"
  "bench_table1_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
