file(REMOVE_RECURSE
  "CMakeFiles/bench_counterexample.dir/bench_counterexample.cc.o"
  "CMakeFiles/bench_counterexample.dir/bench_counterexample.cc.o.d"
  "bench_counterexample"
  "bench_counterexample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_counterexample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
