file(REMOVE_RECURSE
  "CMakeFiles/bench_replus.dir/bench_replus.cc.o"
  "CMakeFiles/bench_replus.dir/bench_replus.cc.o.d"
  "bench_replus"
  "bench_replus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_replus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
