# Empty dependencies file for bench_replus.
# This may be replaced when dependencies are built.
