# Empty compiler generated dependencies file for bench_thm20_relab.
# This may be replaced when dependencies are built.
