file(REMOVE_RECURSE
  "CMakeFiles/bench_thm20_relab.dir/bench_thm20_relab.cc.o"
  "CMakeFiles/bench_thm20_relab.dir/bench_thm20_relab.cc.o.d"
  "bench_thm20_relab"
  "bench_thm20_relab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm20_relab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
