file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_xslt.dir/bench_fig1_xslt.cc.o"
  "CMakeFiles/bench_fig1_xslt.dir/bench_fig1_xslt.cc.o.d"
  "bench_fig1_xslt"
  "bench_fig1_xslt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_xslt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
