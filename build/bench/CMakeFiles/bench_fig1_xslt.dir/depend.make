# Empty dependencies file for bench_fig1_xslt.
# This may be replaced when dependencies are built.
