file(REMOVE_RECURSE
  "CMakeFiles/bench_thm23_xpath.dir/bench_thm23_xpath.cc.o"
  "CMakeFiles/bench_thm23_xpath.dir/bench_thm23_xpath.cc.o.d"
  "bench_thm23_xpath"
  "bench_thm23_xpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm23_xpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
