# Empty dependencies file for debug_counterexample.
# This may be replaced when dependencies are built.
