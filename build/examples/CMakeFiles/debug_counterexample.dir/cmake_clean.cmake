file(REMOVE_RECURSE
  "CMakeFiles/debug_counterexample.dir/debug_counterexample.cpp.o"
  "CMakeFiles/debug_counterexample.dir/debug_counterexample.cpp.o.d"
  "debug_counterexample"
  "debug_counterexample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_counterexample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
