file(REMOVE_RECURSE
  "CMakeFiles/xpath_toc.dir/xpath_toc.cpp.o"
  "CMakeFiles/xpath_toc.dir/xpath_toc.cpp.o.d"
  "xpath_toc"
  "xpath_toc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpath_toc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
