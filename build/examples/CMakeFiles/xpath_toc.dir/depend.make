# Empty dependencies file for xpath_toc.
# This may be replaced when dependencies are built.
