# Empty dependencies file for book_filter.
# This may be replaced when dependencies are built.
