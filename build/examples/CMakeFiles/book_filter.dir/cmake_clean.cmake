file(REMOVE_RECURSE
  "CMakeFiles/book_filter.dir/book_filter.cpp.o"
  "CMakeFiles/book_filter.dir/book_filter.cpp.o.d"
  "book_filter"
  "book_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/book_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
