# Empty dependencies file for xslt_export.
# This may be replaced when dependencies are built.
