file(REMOVE_RECURSE
  "CMakeFiles/xslt_export.dir/xslt_export.cpp.o"
  "CMakeFiles/xslt_export.dir/xslt_export.cpp.o.d"
  "xslt_export"
  "xslt_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xslt_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
