// The paper's running example (Examples 10 and 11, Fig. 3): filter a book
// document into a table of contents with a summary, and typecheck the
// transformation against Example 11's output DTD.

#include <cstdio>

#include "src/core/paper_examples.h"
#include "src/core/typecheck.h"
#include "src/td/exec.h"
#include "src/td/widths.h"
#include "src/tree/codec.h"

int main() {
  using namespace xtc;

  PaperExample ex = MakeBookExample(/*with_summary=*/true);

  // Fig. 3's document.
  Arena arena;
  TreeBuilder builder(&arena);
  StatusOr<Node*> doc = ParseTerm(
      "book(title author author "
      "chapter(title intro section(title paragraph)) "
      "chapter(title intro section(title paragraph paragraph "
      "section(title paragraph))))",
      ex.alphabet.get(), &builder);
  if (!doc.ok()) return 1;
  std::printf("input satisfies the book DTD: %s\n",
              ex.din->Valid(*doc) ? "yes" : "no");

  Node* out = Apply(*ex.transducer, *doc, &builder);
  std::printf("\ntable of contents + summary:\n%s\n",
              ToXml(out, *ex.alphabet, /*indent=*/true).c_str());
  std::printf("output satisfies Example 11's DTD: %s\n",
              ex.dout->Valid(out) ? "yes" : "no");

  // The static guarantee: EVERY valid book maps to a valid ToC+summary.
  WidthAnalysis widths = AnalyzeWidths(*ex.transducer);
  std::printf(
      "\ntransducer class: copying width C=%d, deletion path width K=%llu\n",
      widths.copying_width,
      static_cast<unsigned long long>(widths.deletion_path_width));
  StatusOr<TypecheckResult> r = Typecheck(*ex.transducer, *ex.din, *ex.dout);
  if (!r.ok()) {
    std::printf("error: %s\n", r.status().ToString().c_str());
    return 1;
  }
  std::printf("typechecks (Theorem 15 / Lemma 14 engine): %s\n",
              r->typechecks ? "yes" : "no");
  std::printf("fixpoint configurations explored: %llu\n",
              static_cast<unsigned long long>(r->stats.configs));
  return 0;
}
