// Quickstart: define a schema pair and a transformation, typecheck it, and
// inspect a counterexample when it fails.
//
// The scenario: a feed of `items` is filtered down to its `entry` titles.

#include <cstdio>

#include "src/core/typecheck.h"
#include "src/fa/alphabet.h"
#include "src/schema/dtd.h"
#include "src/td/exec.h"
#include "src/td/transducer.h"
#include "src/tree/codec.h"

int main() {
  using namespace xtc;

  // 1. Intern the document vocabulary (everything up front: DTDs snapshot
  //    the alphabet).
  Alphabet alphabet;
  for (const char* s : {"feed", "item", "title", "body", "digest"}) {
    alphabet.Intern(s);
  }

  // 2. The input schema: feed -> item+, item -> title body.
  Dtd din(&alphabet, *alphabet.Find("feed"));
  if (!din.SetRule("feed", "item+").ok()) return 1;
  if (!din.SetRule("item", "title body").ok()) return 1;

  // 3. The transformation: keep every item title under a digest root.
  //    (q, item) -> q deletes the item wrapper; recursion does the rest.
  Transducer t(&alphabet);
  t.AddState("q0");
  t.AddState("q");
  t.SetInitial(0);
  if (!t.SetRuleFromString("q0", "feed", "digest(q)").ok()) return 1;
  if (!t.SetRuleFromString("q", "item", "q").ok()) return 1;
  if (!t.SetRuleFromString("q", "title", "title").ok()) return 1;

  // 4. The output schema: digest -> title+.
  Dtd dout(&alphabet, *alphabet.Find("digest"));
  if (!dout.SetRule("digest", "title+").ok()) return 1;

  // 5. Typecheck: every valid feed must produce a valid digest.
  StatusOr<TypecheckResult> ok = Typecheck(t, din, dout);
  if (!ok.ok()) {
    std::printf("error: %s\n", ok.status().ToString().c_str());
    return 1;
  }
  std::printf("digest transformation typechecks: %s\n",
              ok->typechecks ? "yes" : "no");

  // 6. Now tighten the output schema so the instance fails, and look at the
  //    counterexample the checker produces (Corollary 38).
  if (!dout.SetRule("digest", "title title title+").ok()) return 1;
  StatusOr<TypecheckResult> bad = Typecheck(t, din, dout);
  if (!bad.ok()) return 1;
  std::printf("tightened schema typechecks: %s\n",
              bad->typechecks ? "yes" : "no");
  if (!bad->typechecks && bad->counterexample != nullptr) {
    std::printf("counterexample input: %s\n",
                ToTermString(bad->counterexample, alphabet).c_str());
    Arena arena;
    TreeBuilder builder(&arena);
    Node* out = Apply(t, bad->counterexample, &builder);
    std::printf("its translation:      %s\n",
                ToTermString(out, alphabet).c_str());
    std::printf("verified: %s\n",
                VerifyCounterexample(t, din, dout, bad->counterexample)
                    ? "yes"
                    : "no");
  }
  return 0;
}
