// Example 22 / Theorem 23: the table-of-contents transformation written
// with an XPath selector ⟨q, .//title⟩, compiled into a selector-free
// transducer whose deleting states simulate the pattern's path automaton,
// then typechecked with the Lemma 14 engine.

#include <cstdio>

#include "src/core/paper_examples.h"
#include "src/core/typecheck.h"
#include "src/td/compile_selectors.h"
#include "src/td/exec.h"
#include "src/td/widths.h"
#include "src/tree/codec.h"

int main() {
  using namespace xtc;

  PaperExample ex = MakeExample22();
  std::printf("Example 22 rules (with XPath selectors):\n");
  for (const auto& [key, rhs] : ex.transducer->rules()) {
    std::printf("  (%s, %s) -> %s\n",
                ex.transducer->StateName(key.first).c_str(),
                ex.alphabet->Name(key.second).c_str(),
                ex.transducer->RhsToString(rhs).c_str());
  }

  StatusOr<Transducer> compiled = CompileSelectors(*ex.transducer);
  if (!compiled.ok()) {
    std::printf("compile error: %s\n", compiled.status().ToString().c_str());
    return 1;
  }
  std::printf("\ncompiled (Theorem 23) rules:\n");
  for (const auto& [key, rhs] : compiled->rules()) {
    std::printf("  (%s, %s) -> %s\n",
                compiled->StateName(key.first).c_str(),
                ex.alphabet->Name(key.second).c_str(),
                compiled->RhsToString(rhs).c_str());
  }
  WidthAnalysis w = AnalyzeWidths(*compiled);
  std::printf(
      "compiled widths: C=%d, K=%llu (the simulation only adds deleting "
      "states of width one)\n",
      w.copying_width,
      static_cast<unsigned long long>(w.deletion_path_width));

  // Both transducers behave identically.
  Arena arena;
  TreeBuilder builder(&arena);
  StatusOr<Node*> doc = ParseTerm(
      "book(title author chapter(title intro section(title paragraph "
      "section(title paragraph))))",
      ex.alphabet.get(), &builder);
  if (!doc.ok()) return 1;
  Node* out1 = Apply(*ex.transducer, *doc, &builder);
  Node* out2 = Apply(*compiled, *doc, &builder);
  std::printf("\ndirect:   %s\ncompiled: %s\nequal: %s\n",
              ToTermString(out1, *ex.alphabet).c_str(),
              ToTermString(out2, *ex.alphabet).c_str(),
              TreeEqual(out1, out2) ? "yes" : "no");

  StatusOr<TypecheckResult> r = Typecheck(*ex.transducer, *ex.din, *ex.dout);
  if (!r.ok()) {
    std::printf("error: %s\n", r.status().ToString().c_str());
    return 1;
  }
  std::printf("\ntypechecks against the tight ToC schema: %s\n",
              r->typechecks ? "yes" : "no");
  return 0;
}
