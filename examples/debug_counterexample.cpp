// Counterexample generation (Corollary 38): when an instance fails to
// typecheck, the checker produces a witness document, which is exactly what
// a schema author needs to debug the transformation. This example also
// shows almost-always typechecking (Corollary 39): the failing instance
// below has exactly ONE counterexample (the single-section book), so it
// typechecks "almost always" although it does not typecheck.

#include <cstdio>

#include "src/core/almost_always.h"
#include "src/core/typecheck.h"
#include "src/td/exec.h"
#include "src/tree/codec.h"
#include "src/workload/families.h"

int main() {
  using namespace xtc;

  // A filtering pipeline whose output schema demands at least three titles
  // — but a single-section document only yields one.
  PaperExample ex = FailingFilterFamily(3);

  StatusOr<TypecheckResult> r = Typecheck(*ex.transducer, *ex.din, *ex.dout);
  if (!r.ok()) {
    std::printf("error: %s\n", r.status().ToString().c_str());
    return 1;
  }
  std::printf("typechecks: %s\n", r->typechecks ? "yes" : "no");
  if (!r->typechecks && r->counterexample != nullptr) {
    std::printf("\ncounterexample document:\n%s",
                ToXml(r->counterexample, *ex.alphabet, /*indent=*/true)
                    .c_str());
    Arena arena;
    TreeBuilder builder(&arena);
    Node* out = Apply(*ex.transducer, r->counterexample, &builder);
    std::printf("\nits (invalid) translation:\n%s",
                ToXml(out, *ex.alphabet, /*indent=*/true).c_str());
    std::printf("\nverified against Definition 8: %s\n",
                VerifyCounterexample(*ex.transducer, *ex.din, *ex.dout,
                                     r->counterexample)
                    ? "yes"
                    : "no");
  }

  StatusOr<bool> almost =
      TypechecksAlmostAlways(*ex.transducer, *ex.din, *ex.dout);
  if (almost.ok()) {
    std::printf("\nalmost-always typechecks (finitely many "
                "counterexamples)? %s\n",
                *almost ? "yes" : "no");
  }
  return 0;
}
