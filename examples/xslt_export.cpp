// Example 6 / Fig. 1: a tree transducer, its translation of the Fig. 2
// tree, and the equivalent XSLT program the paper prints.

#include <cstdio>

#include "src/core/paper_examples.h"
#include "src/td/exec.h"
#include "src/td/xslt_export.h"
#include "src/tree/codec.h"

int main() {
  using namespace xtc;

  PaperExample ex = MakeExample6();
  std::printf("Example 6 transducer rules:\n");
  for (const auto& [key, rhs] : ex.transducer->rules()) {
    std::printf("  (%s, %s) -> %s\n",
                ex.transducer->StateName(key.first).c_str(),
                ex.alphabet->Name(key.second).c_str(),
                ex.transducer->RhsToString(rhs).c_str());
  }

  Arena arena;
  TreeBuilder builder(&arena);
  Node* t = MakeExample7Tree(ex.alphabet.get(), &builder);
  std::printf("\nFig. 2(a) input tree:  %s\n",
              ToTermString(t, *ex.alphabet).c_str());
  Node* out = Apply(*ex.transducer, t, &builder);
  std::printf("Fig. 2(b) translation: %s\n",
              ToTermString(out, *ex.alphabet).c_str());

  std::printf("\nFig. 1 — the equivalent XSLT program:\n%s",
              ExportXslt(*ex.transducer).c_str());
  return 0;
}
